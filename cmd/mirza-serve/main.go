// Command mirza-serve is the simulation-as-a-service daemon: a hardened
// HTTP/JSON front door over the experiment pipeline. Clients POST
// experiment jobs, poll or long-poll their progress, and fetch the
// resulting canonical run manifest; identical requests are coalesced
// in flight and repeated ones served byte-for-byte from a bounded
// content-addressed cache.
//
// Usage:
//
//	mirza-serve -listen 127.0.0.1:8080
//	mirza-serve -listen :8080 -workers 4 -queue 128 -drain-budget 1m
//
// Quick round trip:
//
//	curl -s -XPOST -d '{"experiment":"fig3","quick":true}' \
//	    'http://127.0.0.1:8080/v1/jobs?wait=1'
//	curl -s http://127.0.0.1:8080/v1/jobs/j1/result
//
// GET /v1/experiments and GET /v1/mitigations enumerate the experiment
// ids and mitigation policies jobs may name. Jobs can also replay
// recorded traces by (server-side) reference and run multi-tenant
// scenarios; both are validated at admission:
//
//	curl -s -XPOST -d '{"experiment":"tracereplay","trace":["examples/traces/stream.trace"],"quick":true}' \
//	    'http://127.0.0.1:8080/v1/jobs?wait=1'
//	curl -s -XPOST -d '{"experiment":"intervm","tenants":"xz:6+attack=edge:2","quick":true}' \
//	    'http://127.0.0.1:8080/v1/jobs?wait=1'
//
// The daemon sheds load with 429 + Retry-After once its admission queue
// is full, reports readiness honestly on /readyz, and drains gracefully
// on SIGTERM/SIGINT: admission stops, queued and in-flight jobs finish
// (or are canceled once -drain-budget expires), metrics are flushed, and
// the process exits 0 on a clean drain. See DESIGN.md §13 for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mirza/internal/cliflags"
	"mirza/internal/serve"
	"mirza/internal/sweep"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8080", "address to serve the HTTP API on (host:port)")
		workers  = flag.Int("workers", 2, "concurrent experiment jobs")
		queue    = flag.Int("queue", 64, "admission queue bound; beyond it submissions are shed with 429")
		cacheEnt = flag.Int("cache-entries", 256, "result cache bound (entries)")
		cacheMB  = flag.Int("cache-mb", 64, "result cache bound (MiB)")
		jobTO    = flag.Duration("job-timeout", 10*time.Minute, "default wall-clock deadline per job")
		maxJobTO = flag.Duration("max-job-timeout", 30*time.Minute, "cap on the per-request timeout_ms")
		drain    = flag.Duration("drain-budget", 30*time.Second, "how long a SIGTERM drain lets work finish before canceling it")
		stall    = flag.Duration("stall-budget", cliflags.DefaultStallBudget, "livelock watchdog budget per simulation (0 = disabled)")
		j        = flag.Int("j", 0, "experiment engine workers per job (0 = GOMAXPROCS)")
		metrics  = flag.String("metrics", "", "write the server's telemetry RunManifest JSON to this path after drain")
		sweepOn  = flag.Bool("sweep", true, "serve POST /v1/sweep: fan a grid spec into the admission queue with NDJSON progress")
		sweepMax = flag.Int("sweep-inflight", 4, "max shards of one fanned sweep in the admission queue at once")
		verbose  = flag.Bool("v", false, "log per-job progress to stderr")
	)
	flag.Parse()
	os.Exit(run(*listen, *workers, *queue, *cacheEnt, *cacheMB, *jobTO, *maxJobTO, *drain, *stall, *j, *metrics, *sweepOn, *sweepMax, *verbose))
}

// run is main minus os.Exit, so deferred cleanup actually runs.
func run(listen string, workers, queue, cacheEnt, cacheMB int, jobTO, maxJobTO, drain, stall time.Duration, j int, metrics string, sweepOn bool, sweepMax int, verbose bool) int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mirza-serve: "+format+"\n", args...)
	}
	warn, err := cliflags.ValidateListen(listen)
	if err != nil {
		logf("%v", err)
		return 2
	}
	if warn != "" {
		logf("%s", warn)
	}
	if j < 0 {
		logf("-j: worker count must be >= 0, got %d", j)
		return 2
	}

	backend := &serve.ExperimentsBackend{
		StallBudget: stall,
		Parallelism: j,
	}
	if verbose {
		backend.Logf = logf
	}
	srv, err := serve.New(serve.Config{
		Backend:           backend,
		Workers:           workers,
		QueueDepth:        queue,
		CacheEntries:      cacheEnt,
		CacheBytes:        int64(cacheMB) << 20,
		DefaultJobTimeout: jobTO,
		MaxJobTimeout:     maxJobTO,
		DrainBudget:       drain,
		Logf:              logf,
	})
	if err != nil {
		logf("%v", err)
		return 2
	}
	if sweepOn {
		// The fan handler lives in internal/sweep (dependency direction
		// sweep → serve) and rides the same admission queue, bounded so a
		// fanned grid shares it with interactive submissions.
		fanCfg := sweep.FanConfig{MaxInFlight: sweepMax}
		if verbose {
			fanCfg.Logf = logf
		}
		srv.Handle("POST /v1/sweep", sweep.FanHandler(srv, fanCfg))
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		logf("listen: %v", err)
		return 1
	}
	// The resolved address matters with port 0; scripts parse this line.
	logf("listening on %s", ln.Addr())

	hsrv := serve.NewHTTPServer("", srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hsrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := 0
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		code = 1
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		logf("signal received; draining (budget %v)", drain)
		if err := srv.Drain(0); err != nil {
			logf("%v", err)
			code = 1
		}
	}

	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("shutdown: %v", err)
	}
	if metrics != "" {
		if err := srv.Manifest().WriteFile(metrics); err != nil {
			logf("writing manifest: %v", err)
			code = 1
		}
	}
	return code
}
