// Command mirza-attack evaluates Rowhammer defenses against worst-case
// attack patterns using the bank-level attack simulator: it drives
// activations at full DRAM speed (one ACT per tRC, REF every tREFI, the
// full ABO protocol) and reports the maximum unmitigated activations any
// victim experienced, against the analytic safe-threshold bounds of
// Section VI.
//
// Usage:
//
//	mirza-attack -defense mirza -trhd 1000 -pattern double-sided -windows 4
//	mirza-attack -defense prac -trhd 500 -pattern circular -rows 32
//	mirza-attack -defense trr -pattern trr-evasion
//	mirza-attack -defense none -pattern double-sided
package main

import (
	"flag"
	"fmt"
	"os"

	"mirza/internal/attack"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
)

func main() {
	var (
		defense = flag.String("defense", "mirza", "mirza | prac | mint-ref | mithril | trr | none")
		trhd    = flag.Int("trhd", 1000, "target double-sided threshold")
		pattern = flag.String("pattern", "double-sided", "single-sided | double-sided | circular | feinting | edge | trr-evasion")
		rows    = flag.Int("rows", 32, "rows for the circular pattern")
		windows = flag.Int("windows", 2, "refresh windows (32ms each) to attack")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g := dram.Default()
	timing := dram.DDR5()
	mapping := dram.StridedR2SA
	model := security.DefaultMINTModel()

	cfg, err := core.ForTRHD(*trhd)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed

	var factory func(sink track.Sink) track.Mitigator
	var bound int
	boundKind := "SafeTRHD"
	switch *defense {
	case "mirza":
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		factory = func(sink track.Sink) track.Mitigator { return core.MustNew(cfg, sink) }
		bound = security.SafeTRHD(cfg, model)
	case "prac":
		timing = dram.PRAC()
		factory = func(sink track.Sink) track.Mitigator {
			return track.NewPRAC(track.PRACConfig{
				Geometry: g, Mapping: mapping, AlertThreshold: track.ATHForTRHD(*trhd),
			}, sink)
		}
		bound = *trhd
	case "mint-ref":
		factory = func(sink track.Sink) track.Mitigator {
			return track.NewMINT(track.MINTConfig{
				Geometry: g, Mapping: mapping,
				Window: security.WindowPerREFs(timing, 1), MitigateEveryREFs: 1, Seed: *seed,
			}, sink)
		}
		bound = model.ToleratedTRHD(security.WindowPerREFs(timing, 1))
	case "mithril":
		factory = func(sink track.Sink) track.Mitigator {
			return track.NewMithril(track.MithrilConfig{
				Geometry: g, Mapping: mapping, Entries: 2048, MitigateEveryREFs: 1,
			}, sink)
		}
		bound = security.DefaultMithrilModel().ToleratedTRHD(security.WindowPerREFs(timing, 1))
	case "trr":
		factory = func(sink track.Sink) track.Mitigator {
			return track.NewTRR(track.TRRConfig{
				Geometry: g, Mapping: mapping, Entries: 28, MitigateEveryREFs: 4,
			}, sink)
		}
		bound = *trhd
		boundKind = "nominal TRHD (TRR has no guarantee)"
	case "none":
		factory = func(sink track.Sink) track.Mitigator { return track.NewNop() }
		bound = *trhd
		boundKind = "nominal TRHD (unprotected)"
	default:
		fatal(fmt.Errorf("unknown defense %q", *defense))
	}

	var pat attack.Pattern
	switch *pattern {
	case "single-sided":
		pat = attack.SingleSided(g, mapping, 3, 500)
	case "double-sided":
		pat = attack.DoubleSided(g, mapping, 3, 500)
	case "circular":
		pat = attack.Circular(g, mapping, 3, *rows)
	case "feinting":
		pat = attack.Feinting(g, mapping, 3, cfg.QueueSize)
	case "edge":
		pat = attack.EdgeDoubleSided(g, mapping, 3, cfg.RegionRows())
	case "trr-evasion":
		rot := make([]int, 0, 16)
		for i := 0; i < 15; i++ {
			rot = append(rot, g.RowAt(mapping, 3, 499+2*(i%2)))
		}
		rot = append(rot, g.RowAt(mapping, 3, 900))
		pat = attack.NewRotation("trr-evasion", rot...)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	sim := attack.NewBankSim(attack.BankSimConfig{
		Geometry: g, Timing: timing, Mapping: mapping, Bank: 0, NewMitigator: factory,
	})
	res := sim.RunWindows(pat, *windows)

	fmt.Printf("defense  : %s (configured for TRHD=%d)\n", sim.Mitigator().Name(), *trhd)
	fmt.Printf("pattern  : %s over %d refresh windows (%v)\n", pat.Name(), *windows, res.Elapsed)
	fmt.Printf("activity : %d ACTs, %d REFs, %d ALERTs, %d mitigations\n",
		res.ACTs, res.REFs, res.Alerts, res.Mitigations)
	fmt.Printf("exposure : max single-sided %d, max double-sided %d unmitigated ACTs\n",
		res.MaxSingleSided, res.MaxDoubleSided)
	fmt.Printf("bound    : %d (%s)\n", bound, boundKind)
	if res.MaxDoubleSided < bound {
		fmt.Println("verdict  : SECURE (exposure stayed below the bound)")
	} else {
		fmt.Println("verdict  : BROKEN (exposure reached the threshold)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirza-attack:", err)
	os.Exit(1)
}
