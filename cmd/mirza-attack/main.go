// Command mirza-attack evaluates Rowhammer defenses against worst-case
// attack patterns using the bank-level attack simulator: it drives
// activations at full DRAM speed (one ACT per tRC, REF every tREFI, the
// full ABO protocol, RFM at the policy's BAT) and reports the maximum
// unmitigated activations any victim experienced, against the analytic
// safe-threshold bounds of Section VI.
//
// Usage:
//
//	mirza-attack -mitigation mirza -trhd 1000 -pattern double-sided -windows 4
//	mirza-attack -mitigation prac:ath=400 -trhd 500 -pattern circular -rows 32
//	mirza-attack -mitigation trr -pattern trr-evasion
//	mirza-attack -mitigation none -pattern double-sided
//	mirza-attack -list-mitigations
//
// Mitigation policies are resolved by name from the registry in
// internal/track (every policy in internal/track/policies is available);
// parameters are overridden inline with -mitigation name:key=val,...
// -defense is kept as an alias for -mitigation.
package main

import (
	"flag"
	"fmt"
	"os"

	"mirza/internal/attack"
	"mirza/internal/cliflags"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register every mitigation policy
)

func main() {
	var (
		mitigation = flag.String("mitigation", "mirza", "mitigation policy, name[:key=val,...] (see -list-mitigations)")
		trhd       = flag.Int("trhd", 1000, "target double-sided threshold")
		pattern    = flag.String("pattern", "double-sided", "single-sided | double-sided | circular | feinting | edge | trr-evasion")
		rows       = flag.Int("rows", 32, "rows for the circular pattern")
		windows    = flag.Int("windows", 2, "refresh windows (32ms each) to attack")
		seed       = flag.Uint64("seed", 1, "random seed")
		listMit    = flag.Bool("list-mitigations", false, "list registered mitigation policies and exit")
	)
	flag.StringVar(mitigation, "defense", *mitigation, "alias for -mitigation")
	flag.Parse()

	if *listMit {
		for _, d := range track.Descriptors() {
			note := ""
			if d.Insecure {
				note = " [no security guarantee]"
			}
			fmt.Printf("%-12s %s%s\n", d.Name, d.Doc, note)
			for _, p := range d.ConfigSchema {
				fmt.Printf("    %-10s %-6s %s\n", p.Key, p.Kind, p.Doc)
			}
		}
		return
	}

	g := dram.Default()
	mapping := dram.StridedR2SA

	name, overrides, err := cliflags.ParseMitigation(*mitigation)
	if err != nil {
		fatal(err)
	}
	built, err := track.Build(name, overrides, track.Config{
		Geometry: g,
		Mapping:  mapping,
		TRHD:     *trhd,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}
	timing := built.Timing()

	var pat attack.Pattern
	switch *pattern {
	case "single-sided":
		pat = attack.SingleSided(g, mapping, 3, 500)
	case "double-sided":
		pat = attack.DoubleSided(g, mapping, 3, 500)
	case "circular":
		pat = attack.Circular(g, mapping, 3, *rows)
	case "feinting", "edge":
		// These patterns target MIRZA's queue and region geometry, so they
		// are parameterized by the paper's configuration for this TRHD.
		cfg, err := core.ForTRHD(*trhd)
		if err != nil {
			fatal(err)
		}
		if *pattern == "feinting" {
			pat = attack.Feinting(g, mapping, 3, cfg.QueueSize)
		} else {
			pat = attack.EdgeDoubleSided(g, mapping, 3, cfg.RegionRows())
		}
	case "trr-evasion":
		rot := make([]int, 0, 16)
		for i := 0; i < 15; i++ {
			rot = append(rot, g.RowAt(mapping, 3, 499+2*(i%2)))
		}
		rot = append(rot, g.RowAt(mapping, 3, 900))
		pat = attack.NewRotation("trr-evasion", rot...)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	sim := attack.NewBankSim(attack.BankSimConfig{
		Geometry: g, Timing: timing, Mapping: mapping, Bank: 0,
		NewMitigator: func(sink track.Sink) track.Mitigator { return built.Factory()(0, sink) },
		RFMEvery:     built.RFMBAT(),
	})
	res := sim.RunWindows(pat, *windows)
	bound := built.Bound()

	fmt.Printf("defense  : %s (configured for TRHD=%d)\n", sim.Mitigator().Name(), *trhd)
	fmt.Printf("pattern  : %s over %d refresh windows (%v)\n", pat.Name(), *windows, res.Elapsed)
	fmt.Printf("activity : %d ACTs, %d REFs, %d RFMs, %d ALERTs, %d mitigations\n",
		res.ACTs, res.REFs, res.RFMs, res.Alerts, res.Mitigations)
	fmt.Printf("exposure : max single-sided %d, max double-sided %d unmitigated ACTs\n",
		res.MaxSingleSided, res.MaxDoubleSided)
	fmt.Printf("bound    : %d (%s)\n", bound.TRHD, bound.Kind)
	if res.MaxDoubleSided < bound.TRHD {
		fmt.Println("verdict  : SECURE (exposure stayed below the bound)")
	} else {
		fmt.Println("verdict  : BROKEN (exposure reached the threshold)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirza-attack:", err)
	os.Exit(1)
}
