// Command mirza-sweep runs fleet-scale experiment sweeps and maintains
// their tamper-evident provenance ledger.
//
// Usage:
//
//	mirza-sweep run    -exp fig3 -seeds 1-8 -ledger runs/fig3 -workers 4
//	mirza-sweep run    -grid grid.json -ledger runs/grid -bench ./bin/mirza-bench
//	mirza-sweep verify -ledger runs/fig3
//	mirza-sweep prove  -ledger runs/fig3 -seq 3
//	mirza-sweep ls     -ledger runs/fig3
//	mirza-sweep table  -ledger runs/fig3
//
// `run` decomposes the grid (experiment × workload × mitigation ×
// seed-range) into deterministic shards executed across mirza-bench
// worker processes, skips shards whose content-addressed key already
// has a cached canonical manifest, and appends the results to the
// Merkle ledger in enumeration order — so the ledger, its head root and
// the rendered table are byte-identical at any -workers count.
//
// `verify` re-reads every byte of the ledger from disk and proves every
// recorded manifest back to the head root; a single flipped byte fails.
// `prove` prints one entry's Merkle inclusion proof; `table` renders
// the EXPERIMENTS.md-style sweep table.
//
// Exit codes: 0 clean, 1 failed (shard failure, verification failure),
// 2 bad usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mirza/internal/provenance"
	"mirza/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var code int
	switch cmd := os.Args[1]; cmd {
	case "run":
		code = cmdRun(os.Args[2:])
	case "verify":
		code = cmdVerify(os.Args[2:])
	case "prove":
		code = cmdProve(os.Args[2:])
	case "ls":
		code = cmdLs(os.Args[2:])
	case "table":
		code = cmdTable(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mirza-sweep: unknown command %q\n\n", cmd)
		usage()
		code = 2
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mirza-sweep <command> [flags]

commands:
  run     execute a sweep grid across worker processes and record it
  verify  re-verify every byte and proof of a recorded ledger
  prove   print the Merkle inclusion proof of one ledger entry
  ls      list a ledger's entries
  table   render a ledger as a markdown sweep table

run 'mirza-sweep <command> -h' for the command's flags`)
}

func fatal(fs *flag.FlagSet, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "mirza-sweep %s: "+format+"\n", append([]any{fs.Name()}, args...)...)
	return 2
}

// parseSeeds parses "1-8" or "3" into an inclusive range.
func parseSeeds(s string) (sweep.SeedRange, error) {
	if s == "" {
		return sweep.SeedRange{}, nil
	}
	from, to, found := strings.Cut(s, "-")
	if !found {
		to = from
	}
	lo, err := strconv.ParseUint(strings.TrimSpace(from), 10, 64)
	if err != nil {
		return sweep.SeedRange{}, fmt.Errorf("-seeds: %q is not N or N-M", s)
	}
	hi, err := strconv.ParseUint(strings.TrimSpace(to), 10, 64)
	if err != nil {
		return sweep.SeedRange{}, fmt.Errorf("-seeds: %q is not N or N-M", s)
	}
	return sweep.SeedRange{From: lo, To: hi}, nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// defaultBench locates mirza-bench: next to this executable, then PATH.
func defaultBench() string {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "mirza-bench")
		if fi, err := os.Stat(cand); err == nil && !fi.IsDir() {
			return cand
		}
	}
	if p, err := exec.LookPath("mirza-bench"); err == nil {
		return p
	}
	return ""
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		gridPath    = fs.String("grid", "", "sweep grid specification JSON (overrides the axis flags)")
		exp         = fs.String("exp", "", "comma-separated experiment ids (axis flags build a grid when -grid is unset)")
		seeds       = fs.String("seeds", "", "seed range, N or N-M inclusive (default: seed 1)")
		workloads   = fs.String("workloads", "", "comma-separated workload axis (default: experiment defaults)")
		mitigations = fs.String("mitigations", "", "comma-separated mitigation-policy axis (default: experiment defaults)")
		quick       = fs.Bool("quick", false, "apply the smoke-run fidelity preset to every shard")
		measureMS   = fs.Float64("measure-ms", 0, "measurement window per shard in ms (0 = default)")
		warmupMS    = fs.Float64("warmup-ms", 0, "warmup per shard in ms (0 = default)")
		windows     = fs.Int("replay-windows", 0, "replayed tREFW windows per shard (0 = default)")
		faults      = fs.String("faults", "", "fault-injection plan applied to every shard")
		audit       = fs.Bool("audit", false, "attach the DDR5 protocol auditor in every shard")
		tenants     = fs.String("tenants", "", "multi-tenant scenario spec for intervm shards")
		trace       = fs.String("trace", "", "comma-separated trace files for tracereplay shards")

		ledgerDir = fs.String("ledger", "", "provenance ledger directory (required)")
		cacheDir  = fs.String("cache", "", "manifest cache directory (default <ledger>/cache; 'none' disables)")
		bench     = fs.String("bench", "", "mirza-bench binary (default: next to mirza-sweep, then $PATH)")
		workers   = fs.Int("workers", 2, "worker processes (output is byte-identical at any value)")
		innerJ    = fs.Int("j", 0, "engine parallelism inside each worker (0 = worker default)")
		retries   = fs.Int("retries", 2, "re-runs of a shard whose worker died of a signal")
		shardTO   = fs.Duration("shard-timeout", 10*time.Minute, "wall-clock bound per shard attempt")
		stall     = fs.Duration("stall-budget", 0, "livelock watchdog budget forwarded to workers (0 = worker default)")
		tablePath = fs.String("table", "", "also write the rendered markdown sweep table to this path")
		verbose   = fs.Bool("v", false, "log per-shard progress to stderr")
	)
	_ = fs.Parse(args)
	if *ledgerDir == "" {
		return fatal(fs, "-ledger is required")
	}

	var g *sweep.Grid
	if *gridPath != "" {
		var err error
		if g, err = sweep.LoadGrid(*gridPath); err != nil {
			return fatal(fs, "%v", err)
		}
	} else {
		sr, err := parseSeeds(*seeds)
		if err != nil {
			return fatal(fs, "%v", err)
		}
		g = &sweep.Grid{
			Experiments:   splitList(*exp),
			Seeds:         sr,
			Workloads:     splitList(*workloads),
			Mitigations:   splitList(*mitigations),
			Quick:         *quick,
			MeasureMS:     *measureMS,
			WarmupMS:      *warmupMS,
			ReplayWindows: *windows,
			Faults:        *faults,
			Audit:         *audit,
			Tenants:       *tenants,
			Trace:         splitList(*trace),
		}
	}

	benchBin := *bench
	if benchBin == "" {
		if benchBin = defaultBench(); benchBin == "" {
			return fatal(fs, "mirza-bench not found next to mirza-sweep or on $PATH; pass -bench")
		}
	}
	cache := *cacheDir
	switch cache {
	case "":
		cache = filepath.Join(*ledgerDir, "cache")
	case "none":
		cache = ""
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	eng, err := sweep.NewEngine(sweep.Options{
		Bench:        benchBin,
		CacheDir:     cache,
		Workers:      *workers,
		InnerJ:       *innerJ,
		Retries:      *retries,
		ShardTimeout: *shardTO,
		StallBudget:  *stall,
		Verbose:      *verbose,
		Logf:         logf,
	})
	if err != nil {
		return fatal(fs, "%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, err := eng.Run(ctx, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep run:", err)
		return 1
	}

	failed := 0
	for _, r := range results {
		switch {
		case r.Err != nil:
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.Shard.ID, r.Err)
		case r.Cached:
			fmt.Printf("cached %-32s %s\n", r.Shard.ID, r.Key[:12])
		default:
			retryNote := ""
			if r.Deaths > 0 {
				retryNote = fmt.Sprintf(" (survived %d worker death(s))", r.Deaths)
			}
			fmt.Printf("ran    %-32s %s%s\n", r.Shard.ID, r.Key[:12], retryNote)
		}
	}

	l, err := provenance.Open(*ledgerDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep run:", err)
		return 1
	}
	head, appended, err := sweep.Record(l, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep run:", err)
		return 1
	}
	fmt.Printf("\nledger %s: %d entries (+%d), root %s\n", *ledgerDir, head.Size, appended, head.Root)
	if *tablePath != "" {
		tbl, err := sweep.Table(l)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mirza-sweep run:", err)
			return 1
		}
		if err := os.WriteFile(*tablePath, []byte(tbl), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mirza-sweep run:", err)
			return 1
		}
	}
	fmt.Printf("%d/%d shards ok in %.1fs\n", len(results)-failed, len(results), time.Since(start).Seconds())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mirza-sweep run: %d shard(s) failed; their keys are not in the ledger (rerun to retry)\n", failed)
		return 1
	}
	return 0
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	ledgerDir := fs.String("ledger", "", "provenance ledger directory (required)")
	_ = fs.Parse(args)
	if *ledgerDir == "" {
		return fatal(fs, "-ledger is required")
	}
	sum, err := sweep.VerifyLedger(*ledgerDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep verify: FAIL:", err)
		return 1
	}
	fmt.Printf("ok: %d entries verified, every inclusion proof checks out\nroot %s\n", sum.Entries, sum.Root)
	return 0
}

func cmdProve(args []string) int {
	fs := flag.NewFlagSet("prove", flag.ExitOnError)
	ledgerDir := fs.String("ledger", "", "provenance ledger directory (required)")
	seq := fs.Int("seq", -1, "entry sequence number to prove")
	key := fs.String("key", "", "entry key to prove (alternative to -seq)")
	_ = fs.Parse(args)
	if *ledgerDir == "" {
		return fatal(fs, "-ledger is required")
	}
	if (*seq < 0) == (*key == "") {
		return fatal(fs, "exactly one of -seq or -key is required")
	}
	l, err := provenance.Open(*ledgerDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep prove:", err)
		return 1
	}
	n := *seq
	if *key != "" {
		e, ok := l.Lookup(*key)
		if !ok {
			fmt.Fprintf(os.Stderr, "mirza-sweep prove: key %s is not in the ledger\n", *key)
			return 1
		}
		n = e.Seq
	}
	if n < 0 || n >= l.Len() {
		fmt.Fprintf(os.Stderr, "mirza-sweep prove: seq %d out of range [0, %d)\n", n, l.Len())
		return 1
	}
	e := l.Entries()[n]
	proof, err := l.Prove(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep prove:", err)
		return 1
	}
	leaf, err := provenance.ParseHash(e.Leaf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep prove:", err)
		return 1
	}
	root := l.Root()
	fmt.Printf("entry %d  %s\n  shard %s\n  leaf  %s\n  tree  %d leaves, root %s\n  path  (leaf-side first):\n",
		e.Seq, e.Key, e.Shard, e.Leaf, l.Len(), root)
	for i, h := range proof {
		fmt.Printf("    [%d] %s\n", i, h)
	}
	if err := provenance.VerifyInclusion(root, leaf, n, l.Len(), proof); err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep prove: FAIL:", err)
		return 1
	}
	fmt.Println("  proof verifies: the recorded manifest is included under the root")
	return 0
}

func cmdLs(args []string) int {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	ledgerDir := fs.String("ledger", "", "provenance ledger directory (required)")
	_ = fs.Parse(args)
	if *ledgerDir == "" {
		return fatal(fs, "-ledger is required")
	}
	l, err := provenance.Open(*ledgerDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep ls:", err)
		return 1
	}
	for _, e := range l.Entries() {
		fmt.Printf("%4d  %-32s %.12s  %.12s\n", e.Seq, e.Shard, e.Key, e.Leaf)
	}
	fmt.Printf("root %s (%d entries)\n", l.Root(), l.Len())
	return 0
}

func cmdTable(args []string) int {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	ledgerDir := fs.String("ledger", "", "provenance ledger directory (required)")
	_ = fs.Parse(args)
	if *ledgerDir == "" {
		return fatal(fs, "-ledger is required")
	}
	l, err := provenance.Open(*ledgerDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep table:", err)
		return 1
	}
	tbl, err := sweep.Table(l)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-sweep table:", err)
		return 1
	}
	fmt.Print(tbl)
	return 0
}
