// Command mirza-bench regenerates the tables and figures of the MIRZA paper
// (HPCA 2026) from the simulator in this repository.
//
// Usage:
//
//	mirza-bench -list
//	mirza-bench -exp table8
//	mirza-bench -exp all -measure-ms 1.5 -workloads fotonik3d,lbm,mcf
//	mirza-bench -exp table8 -faults seed=7,alertdrop=0.5 -timeout 10m
//	mirza-bench -exp intervm -tenants xz:6+attack=edge:2
//	mirza-bench -exp tracereplay -trace examples/traces/stream.trace
//
// Scale flags trade fidelity for time; with no flags the full 24-workload
// Table IV set and the default windows are used (see DESIGN.md for the
// methodology and EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Experiments run under a hardened harness: a panicking or deadline-blown
// experiment is isolated, retried once at reduced fidelity (the result is
// then marked DEGRADED), and summarized instead of killing the run.
// Exit codes: 0 all clean, 1 at least one experiment failed, 3 all
// succeeded but at least one only at degraded fidelity.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mirza/internal/cliflags"
	"mirza/internal/dram"
	"mirza/internal/experiments"
	"mirza/internal/serve"
	"mirza/internal/telemetry"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "all", "experiment id(s) to run (comma-separated), or 'all'")
		measureMS = flag.Float64("measure-ms", 0, "timing-simulation measurement window in ms (0 = default)")
		warmupMS  = flag.Float64("warmup-ms", 0, "timing-simulation warmup in ms (0 = default)")
		windows   = flag.Int("replay-windows", 0, "replayed tREFW windows incl. warmup (0 = default)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 24)")
		quick     = flag.Bool("quick", false, "tiny windows and a 3-workload subset (smoke run)")
		verbose   = flag.Bool("v", false, "log per-run progress to stderr")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline per engine job (0 = none)")
		listen    = flag.String("listen", "", "serve live /metrics, /manifest and /debug/pprof on this address (e.g. :6060)")
		noRetry   = flag.Bool("no-retry", false, "disable the reduced-fidelity retry of failed experiments")
		shardPath = flag.String("shard", "", "worker mode: run one sweep shard from this request JSON file (see mirza-sweep)")
		shardOut  = flag.String("shard-out", "", "worker mode: write the shard's canonical manifest to this path (required with -shard)")
		common    = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	shared, err := common.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-bench:", err)
		os.Exit(2)
	}

	if *shardPath != "" || *shardOut != "" {
		os.Exit(runShard(*shardPath, *shardOut, shared, *timeout, *verbose))
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = opts.Quick()
	}
	if *measureMS > 0 {
		opts.Measure = dram.Time(*measureMS * float64(dram.Millisecond))
	}
	if *warmupMS > 0 {
		opts.Warmup = dram.Time(*warmupMS * float64(dram.Millisecond))
	}
	if *windows >= 2 {
		opts.ReplayWindows = *windows
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	opts.StallBudget = shared.StallBudget
	opts.Parallelism = shared.Parallelism
	opts.Audit = shared.Audit
	opts.Tenants = shared.Tenants
	opts.TraceFiles = shared.TraceFiles
	plan := shared.Faults
	opts.Faults = plan
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	if *verbose {
		opts.Logf = logf
	}

	var reg *telemetry.Registry
	if shared.MetricsPath != "" || *listen != "" {
		reg = telemetry.New()
	}
	opts.Telemetry = reg

	start := time.Now()
	config := map[string]string{
		"exp":            *exp,
		"measure-ms":     strconv.FormatFloat(*measureMS, 'g', -1, 64),
		"warmup-ms":      strconv.FormatFloat(*warmupMS, 'g', -1, 64),
		"replay-windows": strconv.Itoa(*windows),
		"workloads":      *workloads,
		"quick":          strconv.FormatBool(*quick),
		"audit":          strconv.FormatBool(shared.Audit),
		"j":              strconv.Itoa(shared.Parallelism),
		"tenants":        shared.Tenants,
		"trace":          strings.Join(shared.TraceFiles, ","),
	}
	buildManifest := func() *telemetry.RunManifest {
		m := telemetry.NewManifest("mirza-bench", config)
		m.Seed = opts.Seed
		m.FaultPlan = plan.String()
		m.FillFromSnapshot(reg.Snapshot())
		m.WallClockSeconds = time.Since(start).Seconds()
		m.WrittenAt = time.Now().UTC().Format(time.RFC3339)
		return m
	}
	// stopListen gracefully shuts the live endpoint down before exit (a
	// no-op when -listen is unset). The hardened server from
	// internal/serve carries read-header/read/write/idle timeouts, so a
	// slow-loris client or an orphaned socket cannot wedge the process.
	stopListen := func() {}
	if *listen != "" {
		if warn, err := cliflags.ValidateListen(*listen); err != nil {
			fmt.Fprintln(os.Stderr, "mirza-bench:", err)
			os.Exit(2)
		} else if warn != "" {
			logf("%s", warn)
		}
		hsrv := serve.NewHTTPServer(*listen, serve.ObservabilityMux(reg.Snapshot, buildManifest))
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "mirza-bench: listen:", err)
			}
		}()
		stopListen = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = hsrv.Shutdown(ctx)
		}
		logf("serving /metrics, /manifest and /debug/pprof on %s", *listen)
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	suite := experiments.NewSuite(opts, experiments.SuiteConfig{
		Timeout: *timeout,
		NoRetry: *noRetry,
		Logf:    logf,
	})

	// Interrupts cancel cooperatively: running simulations stop at their
	// next event batch, unstarted jobs are canceled, and the summary,
	// manifest and exit code still happen.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var results []experiments.Result
	for _, id := range ids {
		res := suite.RunAll(ctx, []string{id})[0]
		results = append(results, res)
		switch {
		case res.Failed():
			reg.Counter("experiments_total", telemetry.L("status", "failed")).Inc()
		case res.Degraded:
			reg.Counter("experiments_total", telemetry.L("status", "degraded")).Inc()
		default:
			reg.Counter("experiments_total", telemetry.L("status", "ok")).Inc()
		}
		switch {
		case res.Failed():
			fmt.Fprintf(os.Stderr, "FAIL %s after %.1fs: %v\n", res.ID, res.Duration.Seconds(), res.Err)
			if res.Panicked {
				fmt.Fprintln(os.Stderr, res.Stack)
			}
		default:
			fmt.Println(res.Table.Render())
			marker := ""
			if res.Degraded {
				marker = " [DEGRADED: reduced fidelity]"
			}
			// Busy sums every job's wall-clock: an estimate of what a
			// one-worker (-j 1) run would need, hence busy/duration
			// estimates the parallel speedup actually achieved.
			if res.Jobs > 0 && res.Duration > 0 {
				fmt.Printf("(%s took %.1fs%s; %d jobs, %.1fs busy, est speedup %.1fx vs -j 1)\n\n",
					res.ID, res.Duration.Seconds(), marker, res.Jobs,
					res.Busy.Seconds(), res.Busy.Seconds()/res.Duration.Seconds())
			} else {
				fmt.Printf("(%s took %.1fs%s)\n\n", res.ID, res.Duration.Seconds(), marker)
			}
		}
	}

	stopListen()
	if !plan.Empty() {
		fmt.Printf("injected faults: %s (plan %s)\n", suite.Runner().FaultLog().Summary(), plan)
	}
	if shared.MetricsPath != "" {
		if err := buildManifest().WriteFile(shared.MetricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "mirza-bench: writing manifest:", err)
			os.Exit(1)
		}
	}
	// Only print the summary when there is something to report: a clean
	// run's stdout stays byte-identical to the pre-harness output.
	sum := experiments.Summarize(results)
	if !sum.Clean() {
		fmt.Println(sum)
	}
	switch {
	case sum.Failed > 0:
		os.Exit(1)
	case sum.Degraded > 0:
		os.Exit(3)
	}
}

// runShard is the sweep worker mode (-shard/-shard-out): it reads one
// serve.Request JSON file, runs it through the same ExperimentsBackend
// the daemon uses, and writes the canonical run manifest — so a shard
// executed by a worker process is byte-identical to the same request
// served by mirza-serve or cached by mirza-sweep. Exit codes: 0 clean,
// 1 failed, 2 bad request, 3 degraded fidelity (mirza-sweep treats
// anything nonzero as a failed shard).
func runShard(reqPath, outPath string, shared cliflags.Values, engineTimeout time.Duration, verbose bool) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "mirza-bench: shard: "+format+"\n", args...)
		return 1
	}
	if reqPath == "" || outPath == "" {
		fmt.Fprintln(os.Stderr, "mirza-bench: worker mode needs both -shard <request.json> and -shard-out <manifest.json>")
		return 2
	}
	body, err := os.ReadFile(reqPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-bench: shard:", err)
		return 2
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req serve.Request
	if err := dec.Decode(&req); err != nil {
		fmt.Fprintf(os.Stderr, "mirza-bench: shard: %s: %v\n", reqPath, err)
		return 2
	}
	backend := &serve.ExperimentsBackend{
		StallBudget:   shared.StallBudget,
		Parallelism:   shared.Parallelism,
		EngineTimeout: engineTimeout,
	}
	if verbose {
		backend.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	prep, err := backend.Prepare(&req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-bench: shard:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out := backend.Run(ctx, prep)
	if out.Err != "" {
		if out.Panicked {
			fmt.Fprintln(os.Stderr, out.Stack)
		}
		return fail("%s (key %s)", out.Err, prep.Key)
	}
	if err := os.WriteFile(outPath, out.Manifest, 0o644); err != nil {
		return fail("%v", err)
	}
	if out.Degraded {
		fmt.Fprintf(os.Stderr, "mirza-bench: shard %s: DEGRADED fidelity\n", prep.Key)
		return 3
	}
	return 0
}
