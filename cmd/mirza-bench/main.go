// Command mirza-bench regenerates the tables and figures of the MIRZA paper
// (HPCA 2026) from the simulator in this repository.
//
// Usage:
//
//	mirza-bench -list
//	mirza-bench -exp table8
//	mirza-bench -exp all -measure-ms 1.5 -workloads fotonik3d,lbm,mcf
//
// Scale flags trade fidelity for time; with no flags the full 24-workload
// Table IV set and the default windows are used (see DESIGN.md for the
// methodology and EXPERIMENTS.md for recorded paper-vs-measured results).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mirza/internal/dram"
	"mirza/internal/experiments"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "all", "experiment id to run, or 'all'")
		measureMS = flag.Float64("measure-ms", 0, "timing-simulation measurement window in ms (0 = default)")
		warmupMS  = flag.Float64("warmup-ms", 0, "timing-simulation warmup in ms (0 = default)")
		windows   = flag.Int("replay-windows", 0, "replayed tREFW windows incl. warmup (0 = default)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 24)")
		quick     = flag.Bool("quick", false, "tiny windows and a 3-workload subset (smoke run)")
		verbose   = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *measureMS > 0 {
		opts.Measure = dram.Time(*measureMS * float64(dram.Millisecond))
	}
	if *warmupMS > 0 {
		opts.Warmup = dram.Time(*warmupMS * float64(dram.Millisecond))
	}
	if *windows >= 2 {
		opts.ReplayWindows = *windows
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	runner := experiments.NewRunner(opts)
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
