// Command mirza-bench regenerates the tables and figures of the MIRZA paper
// (HPCA 2026) from the simulator in this repository.
//
// Usage:
//
//	mirza-bench -list
//	mirza-bench -exp table8
//	mirza-bench -exp all -measure-ms 1.5 -workloads fotonik3d,lbm,mcf
//	mirza-bench -exp table8 -faults seed=7,alertdrop=0.5 -timeout 10m
//
// Scale flags trade fidelity for time; with no flags the full 24-workload
// Table IV set and the default windows are used (see DESIGN.md for the
// methodology and EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Experiments run under a hardened harness: a panicking or deadline-blown
// experiment is isolated, retried once at reduced fidelity (the result is
// then marked DEGRADED), and summarized instead of killing the run.
// Exit codes: 0 all clean, 1 at least one experiment failed, 3 all
// succeeded but at least one only at degraded fidelity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mirza/internal/dram"
	"mirza/internal/experiments"
	"mirza/internal/fault"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "all", "experiment id(s) to run (comma-separated), or 'all'")
		measureMS = flag.Float64("measure-ms", 0, "timing-simulation measurement window in ms (0 = default)")
		warmupMS  = flag.Float64("warmup-ms", 0, "timing-simulation warmup in ms (0 = default)")
		windows   = flag.Int("replay-windows", 0, "replayed tREFW windows incl. warmup (0 = default)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 24)")
		quick     = flag.Bool("quick", false, "tiny windows and a 3-workload subset (smoke run)")
		verbose   = flag.Bool("v", false, "log per-run progress to stderr")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline per engine job (0 = none)")
		parallel  = flag.Int("j", 0, "worker count for the job engine (0 = GOMAXPROCS; 1 = sequential engine)")
		stall     = flag.Duration("stall-budget", 2*time.Minute, "abort a simulation whose event time stops advancing for this long (0 = disabled)")
		faults    = flag.String("faults", "", "fault-injection plan, e.g. seed=7,bitflip=1e-5,alertdrop=0.2 (see internal/fault)")
		noRetry   = flag.Bool("no-retry", false, "disable the reduced-fidelity retry of failed experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *measureMS > 0 {
		opts.Measure = dram.Time(*measureMS * float64(dram.Millisecond))
	}
	if *warmupMS > 0 {
		opts.Warmup = dram.Time(*warmupMS * float64(dram.Millisecond))
	}
	if *windows >= 2 {
		opts.ReplayWindows = *windows
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	opts.StallBudget = *stall
	opts.Parallelism = *parallel
	plan, err := fault.Parse(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirza-bench:", err)
		os.Exit(2)
	}
	opts.Faults = plan
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	if *verbose {
		opts.Logf = logf
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	suite := experiments.NewSuite(opts, experiments.SuiteConfig{
		Timeout: *timeout,
		NoRetry: *noRetry,
		Logf:    logf,
	})

	var results []experiments.Result
	for _, id := range ids {
		res := suite.RunAll([]string{id})[0]
		results = append(results, res)
		switch {
		case res.Failed():
			fmt.Fprintf(os.Stderr, "FAIL %s after %.1fs: %v\n", res.ID, res.Duration.Seconds(), res.Err)
			if res.Panicked {
				fmt.Fprintln(os.Stderr, res.Stack)
			}
		default:
			fmt.Println(res.Table.Render())
			marker := ""
			if res.Degraded {
				marker = " [DEGRADED: reduced fidelity]"
			}
			// Busy sums every job's wall-clock: an estimate of what a
			// one-worker (-j 1) run would need, hence busy/duration
			// estimates the parallel speedup actually achieved.
			if res.Jobs > 0 && res.Duration > 0 {
				fmt.Printf("(%s took %.1fs%s; %d jobs, %.1fs busy, est speedup %.1fx vs -j 1)\n\n",
					res.ID, res.Duration.Seconds(), marker, res.Jobs,
					res.Busy.Seconds(), res.Busy.Seconds()/res.Duration.Seconds())
			} else {
				fmt.Printf("(%s took %.1fs%s)\n\n", res.ID, res.Duration.Seconds(), marker)
			}
		}
	}

	if !plan.Empty() {
		fmt.Printf("injected faults: %s (plan %s)\n", suite.Runner().FaultLog().Summary(), plan)
	}
	// Only print the summary when there is something to report: a clean
	// run's stdout stays byte-identical to the pre-harness output.
	sum := experiments.Summarize(results)
	if !sum.Clean() {
		fmt.Println(sum)
	}
	switch {
	case sum.Failed > 0:
		os.Exit(1)
	case sum.Degraded > 0:
		os.Exit(3)
	}
}
