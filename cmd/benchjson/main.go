// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON record and enforces the kernel performance gates. It is the
// back half of `make bench-smoke`:
//
//	go test -short -bench=BenchmarkKernel -benchmem ./internal/sim/ |
//	    go run ./cmd/benchjson -out BENCH_kernel.json
//
// Benchmarks whose name contains an "impl=event"/"impl=legacy" segment are
// paired by the rest of their name and reported with the legacy/event
// speedup. Gates (exit status 1 when violated):
//
//   - every impl=event benchmark must report 0 allocs/op (the kernel's
//     zero-allocation contract, also pinned by TestScheduleEventAllocFree);
//   - every pairing must reach -min-speedup (default 1.5).
//
// Only the standard library is used; the parser accepts the textual bench
// format of `go test` (name, iterations, ns/op, then optional -benchmem
// B/op and allocs/op columns).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Comparison pairs an impl=event benchmark with its impl=legacy baseline.
type Comparison struct {
	Name     string  `json:"name"` // pairing key (impl segment removed)
	EventNs  float64 `json:"event_ns_per_op"`
	LegacyNs float64 `json:"legacy_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// Report is the checked-in BENCH_kernel.json schema.
type Report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	MinSpeedup float64      `json:"min_speedup_gate"`
	Benchmarks []Benchmark  `json:"benchmarks"`
	Compared   []Comparison `json:"comparisons"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file ('' = stdout)")
	minSpeedup := flag.Float64("min-speedup", 1.5, "fail unless every event/legacy pairing reaches this speedup")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	rep.MinSpeedup = *minSpeedup
	pair(rep)

	var failures []string
	for _, b := range rep.Benchmarks {
		if strings.Contains(b.Name, "impl=event") && b.AllocsPerOp != 0 {
			failures = append(failures,
				fmt.Sprintf("alloc regression: %s reports %d allocs/op, want 0", b.Name, b.AllocsPerOp))
		}
	}
	for _, c := range rep.Compared {
		if c.Speedup < *minSpeedup {
			failures = append(failures,
				fmt.Sprintf("speedup regression: %s is %.2fx vs legacy, want >= %.2fx", c.Name, c.Speedup, *minSpeedup))
		}
	}
	if len(rep.Compared) == 0 {
		failures = append(failures, "no event/legacy benchmark pairings found in input")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchjson:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks, %d pairings, gates passed -> %s\n",
			len(rep.Benchmarks), len(rep.Compared), *out)
	}
}

func parse(f *os.File) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: trimProcs(fields[0])}
		var err error
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		for i := 4; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// pair matches impl=event results to impl=legacy baselines by the rest of
// their benchmark name.
func pair(rep *Report) {
	type slot struct{ event, legacy *Benchmark }
	slots := map[string]*slot{}
	var order []string
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		key, impl := splitImpl(b.Name)
		if impl == "" {
			continue
		}
		s, ok := slots[key]
		if !ok {
			s = &slot{}
			slots[key] = s
			order = append(order, key)
		}
		if impl == "event" {
			s.event = b
		} else {
			s.legacy = b
		}
	}
	for _, key := range order {
		s := slots[key]
		if s.event == nil || s.legacy == nil || s.event.NsPerOp <= 0 {
			continue
		}
		rep.Compared = append(rep.Compared, Comparison{
			Name:     key,
			EventNs:  s.event.NsPerOp,
			LegacyNs: s.legacy.NsPerOp,
			Speedup:  s.legacy.NsPerOp / s.event.NsPerOp,
		})
	}
}

// splitImpl removes the "impl=<v>" path segment from a benchmark name,
// returning the remaining name and the impl value ("" when absent).
func splitImpl(name string) (key, impl string) {
	parts := strings.Split(name, "/")
	var kept []string
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, "impl="); ok {
			impl = v
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, "/"), impl
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
