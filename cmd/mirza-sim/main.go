// Command mirza-sim runs one workload on the full-system simulator (8
// out-of-order cores, shared DDR5 channel) under a selectable Rowhammer
// mitigation and reports performance and memory-system statistics.
//
// Usage:
//
//	mirza-sim -workload fotonik3d -mitigation mirza -trhd 1000 -ms 2
//	mirza-sim -workload mcf -mitigation prac -trhd 500
//	mirza-sim -workload bc -mitigation mint-rfm -trhd 1000
//	mirza-sim -list-workloads
//
// Mitigations: none, mirza, naive-mirza, prac, mint-rfm, trr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"mirza/internal/core"
	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/fault"
	"mirza/internal/mem"
	"mirza/internal/security"
	"mirza/internal/sim"
	"mirza/internal/trace"
	"mirza/internal/track"
)

func main() {
	var (
		workload   = flag.String("workload", "fotonik3d", "workload name (see -list-workloads)")
		mitigation = flag.String("mitigation", "mirza", "none | mirza | naive-mirza | prac | mint-rfm | trr")
		trhd       = flag.Int("trhd", 1000, "target double-sided Rowhammer threshold")
		ms         = flag.Float64("ms", 2, "simulated milliseconds")
		warmMS     = flag.Float64("warmup-ms", 0.5, "warmup before measurement")
		seed       = flag.Uint64("seed", 1, "random seed")
		listWl     = flag.Bool("list-workloads", false, "list workloads and exit")
		faultsFlag = flag.String("faults", "", "fault-injection plan, e.g. seed=7,alertdrop=0.5 (see internal/fault)")
		stall      = flag.Duration("stall-budget", 2*time.Minute, "abort if simulated time stops advancing for this long (0 = disabled)")
	)
	flag.Parse()

	plan, err := fault.Parse(*faultsFlag)
	if err != nil {
		fatal(err)
	}
	faultLog := fault.NewLog()

	if *listWl {
		for _, w := range trace.Workloads() {
			fmt.Printf("%-10s %-4s MPKI=%-5.1f ACT-PKI=%-5.1f footprint=%dMB\n",
				w.Name, w.Suite, w.MPKI, w.ACTPKI, w.FootprintMB)
		}
		return
	}

	spec, err := trace.Lookup(*workload)
	if err != nil {
		fatal(err)
	}
	gens, err := trace.PerCore(spec, 8, *seed)
	if err != nil {
		fatal(err)
	}

	timing := dram.DDR5()
	bat := 0
	var factory func(sub int, sink track.Sink) track.Mitigator
	g := dram.Default()
	switch *mitigation {
	case "none":
	case "mirza", "naive-mirza":
		cfg, err := core.ForTRHD(*trhd)
		if err != nil {
			fatal(err)
		}
		if *mitigation == "naive-mirza" {
			cfg.FTH = 0
		}
		// Validate here where the error can be reported cleanly; the
		// factory closure below can only panic.
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		factory = func(sub int, sink track.Sink) track.Mitigator {
			c := cfg
			c.Seed = *seed + uint64(sub)
			return core.MustNew(c, sink)
		}
	case "prac":
		timing = dram.PRAC()
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return track.NewPRAC(track.PRACConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				AlertThreshold: track.ATHForTRHD(*trhd),
			}, sink)
		}
	case "mint-rfm":
		w := security.DefaultMINTModel().WindowForTRHD(*trhd)
		bat = w
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return track.NewMINT(track.MINTConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				Window: w, MitigateOnRFM: true, Seed: *seed + uint64(sub),
			}, sink)
		}
	case "trr":
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return track.NewTRR(track.TRRConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				Entries: 28, MitigateEveryREFs: 4,
			}, sink)
		}
	default:
		fatal(fmt.Errorf("unknown mitigation %q", *mitigation))
	}

	if factory != nil && !plan.Empty() {
		inner := factory
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return fault.Wrap(plan, inner(sub, sink), uint64(sub), faultLog)
		}
	}

	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Core: cpu.CoreConfig{MSHR: spec.MLPLimit()},
		Mem: mem.Config{
			Timing:       timing,
			Mapping:      dram.StridedR2SA,
			RFMBAT:       bat,
			NewMitigator: factory,
		},
	}, gens)
	if err != nil {
		fatal(err)
	}

	if *stall > 0 {
		sys.Watchdog = &sim.Watchdog{Budget: *stall}
	}
	warm := dram.Time(*warmMS * float64(dram.Millisecond))
	horizon := warm + dram.Time(*ms*float64(dram.Millisecond))
	if err := sys.RunChecked(warm); err != nil {
		fatalStall(err)
	}
	sys.Snapshot()
	if err := sys.RunChecked(horizon); err != nil {
		fatalStall(err)
	}

	st := sys.MemStats()
	ipcs := sys.IPCs()
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	fmt.Printf("workload   : %s (%s)\n", spec.Name, spec.Suite)
	fmt.Printf("mitigation : %s (TRHD=%d)\n", *mitigation, *trhd)
	fmt.Printf("window     : %v measured after %v warmup\n", sys.Window(), warm)
	fmt.Printf("IPC        : avg %.3f per core (%.3f aggregate)\n", sum/float64(len(ipcs)), sum)
	fmt.Printf("bus util   : %.1f%%\n", sys.BusUtilization())
	fmt.Printf("reads      : %d   writes: %d\n", st.Reads, st.Writes)
	fmt.Printf("ACTs       : %d (ACT-PKI %.1f)\n", st.ACTs, actPKI(st.ACTs, ipcs, sys.Window()))
	fmt.Printf("REFs       : %d   RFMs: %d\n", st.REFs, st.RFMs)
	fmt.Printf("ALERTs     : %d (stall %v)\n", st.Alerts, st.AlertStall)
	fmt.Printf("mitigations: %d aggressor rows (%d victim refreshes)\n", st.Mitigations, st.VictimRows)
	if st.DemandRefreshRows > 0 {
		fmt.Printf("refresh pwr: +%.2f%% (victim rows / demand rows)\n",
			100*float64(st.VictimRows)/float64(st.DemandRefreshRows))
	}
	if !plan.Empty() {
		fmt.Printf("faults     : %s (plan %s)\n", faultLog.Summary(), plan)
	}
}

// fatalStall reports a watchdog abort with its diagnostic snapshot.
func fatalStall(err error) {
	var se *sim.StallError
	if errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "mirza-sim:", se)
		os.Exit(1)
	}
	fatal(err)
}

func actPKI(acts int64, ipcs []float64, window dram.Time) float64 {
	var instr float64
	for _, ipc := range ipcs {
		instr += ipc * float64(window) / 250
	}
	if instr == 0 {
		return 0
	}
	return float64(acts) / instr * 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirza-sim:", err)
	os.Exit(1)
}
