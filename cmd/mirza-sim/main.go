// Command mirza-sim runs one or more workloads on the full-system
// simulator (8 out-of-order cores, shared DDR5 channel) under a selectable
// Rowhammer mitigation and reports performance and memory-system
// statistics.
//
// Usage:
//
//	mirza-sim -workload fotonik3d -mitigation mirza -trhd 1000 -ms 2
//	mirza-sim -workload mcf -mitigation prac:ath=400 -trhd 500
//	mirza-sim -workload fotonik3d,lbm,mcf -j 4
//	mirza-sim -trace dramsim3.trace -mitigation prac
//	mirza-sim -tenants xz:6+attack=edge:2 -mitigation mirza
//	mirza-sim -list-workloads
//	mirza-sim -list-mitigations
//
// Mitigation policies are resolved by name from the registry in
// internal/track (every policy in internal/track/policies is available);
// parameters are overridden inline with -mitigation name:key=val,...
// Run -list-mitigations for names, docs and tunables.
//
// Instead of a synthetic workload the simulator can replay recorded
// traces (-trace, DRAMSim3 "addr cmd cycle" or native NDJSON; see
// internal/tracefile) or run a multi-tenant inter-VM scenario (-tenants,
// see internal/tenant). The three input modes are mutually exclusive.
//
// With a comma-separated -workload list the simulations run as independent
// jobs on -j workers; reports are printed in the order the workloads were
// listed, and each report is identical to what a separate single-workload
// invocation would print (every simulation is seeded by workload identity,
// not execution order).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mirza/internal/audit"
	"mirza/internal/cliflags"
	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/fault"
	"mirza/internal/jobs"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/tenant"
	"mirza/internal/trace"
	"mirza/internal/tracefile"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register every mitigation policy
)

// runConfig carries the flag settings shared by every simulation job.
type runConfig struct {
	built      *track.Built // resolved, validated mitigation policy
	trhd       int
	ms, warmMS float64
	seed       uint64
	plan       fault.Plan
	stall      time.Duration
	audit      bool
	reg        *telemetry.Registry
}

func main() {
	var (
		workload   = flag.String("workload", "fotonik3d", "workload name or comma-separated list (see -list-workloads)")
		mitigation = flag.String("mitigation", "mirza", "mitigation policy, name[:key=val,...] (see -list-mitigations)")
		trhd       = flag.Int("trhd", 1000, "target double-sided Rowhammer threshold")
		ms         = flag.Float64("ms", 2, "simulated milliseconds")
		warmMS     = flag.Float64("warmup-ms", 0.5, "warmup before measurement")
		seed       = flag.Uint64("seed", 1, "random seed")
		listWl     = flag.Bool("list-workloads", false, "list workloads and exit")
		listMit    = flag.Bool("list-mitigations", false, "list registered mitigation policies and exit")
		common     = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	shared, err := common.Resolve()
	if err != nil {
		fatal(err)
	}

	if *listWl {
		for _, w := range trace.Workloads() {
			fmt.Printf("%-10s %-4s MPKI=%-5.1f ACT-PKI=%-5.1f footprint=%dMB\n",
				w.Name, w.Suite, w.MPKI, w.ACTPKI, w.FootprintMB)
		}
		return
	}
	if *listMit {
		listMitigations()
		return
	}

	name, overrides, err := cliflags.ParseMitigation(*mitigation)
	if err != nil {
		fatal(err)
	}
	built, err := track.Build(name, overrides, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     *trhd,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}

	var reg *telemetry.Registry
	if shared.MetricsPath != "" {
		reg = telemetry.New()
	}
	cfg := runConfig{
		built:  built,
		trhd:   *trhd,
		ms:     *ms,
		warmMS: *warmMS,
		seed:   *seed,
		plan:   shared.Faults,
		stall:  shared.StallBudget,
		audit:  shared.Audit,
		reg:    reg,
	}

	// The three input modes are mutually exclusive: an explicit -workload
	// next to -trace or -tenants is almost certainly a confused invocation,
	// so it fails instead of silently ignoring one of them.
	workloadSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workload" {
			workloadSet = true
		}
	})
	if len(shared.TraceFiles) > 0 && shared.Tenants != "" {
		fatal(fmt.Errorf("-trace and -tenants are mutually exclusive"))
	}
	if workloadSet && (len(shared.TraceFiles) > 0 || shared.Tenants != "") {
		fatal(fmt.Errorf("-workload cannot be combined with -trace or -tenants"))
	}

	// Interrupts cancel cooperatively: running simulations stop at their
	// next event batch and unstarted jobs are reported as canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var pool []jobs.Job[string]
	switch {
	case len(shared.TraceFiles) > 0:
		for _, path := range shared.TraceFiles {
			path := path
			pool = append(pool, jobs.Job[string]{
				ID:  path,
				Run: func(ctx context.Context) (string, error) { return runTrace(ctx, path, cfg) },
			})
		}
	case shared.Tenants != "":
		spec := shared.Tenants
		pool = append(pool, jobs.Job[string]{
			ID:  spec,
			Run: func(ctx context.Context) (string, error) { return runTenants(ctx, spec, cfg) },
		})
	default:
		var names []string
		for _, n := range strings.Split(*workload, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			fatal(fmt.Errorf("no workload named"))
		}
		for _, name := range names {
			name := name
			pool = append(pool, jobs.Job[string]{
				ID:  name,
				Run: func(ctx context.Context) (string, error) { return runOne(ctx, name, cfg) },
			})
		}
	}
	results := jobs.RunOnCtx(ctx, jobs.NewPool(jobs.Options{
		Parallelism: shared.Parallelism,
		Telemetry:   reg,
	}), pool)
	exit := 0
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		if res.Err != nil {
			exit = 1
			var se *sim.StallError
			if errors.As(res.Err, &se) {
				fmt.Fprintln(os.Stderr, "mirza-sim:", se)
				continue
			}
			fmt.Fprintln(os.Stderr, "mirza-sim:", res.Err)
			continue
		}
		fmt.Print(res.Value)
	}
	if shared.MetricsPath != "" {
		m := telemetry.NewManifest("mirza-sim", map[string]string{
			"workload":   *workload,
			"trace":      strings.Join(shared.TraceFiles, ","),
			"tenants":    shared.Tenants,
			"mitigation": *mitigation,
			"trhd":       strconv.Itoa(*trhd),
			"ms":         strconv.FormatFloat(*ms, 'g', -1, 64),
			"warmup-ms":  strconv.FormatFloat(*warmMS, 'g', -1, 64),
			"j":          strconv.Itoa(shared.Parallelism),
		})
		m.Seed = *seed
		m.FaultPlan = shared.Faults.String()
		m.FillFromSnapshot(reg.Snapshot())
		m.WallClockSeconds = time.Since(start).Seconds()
		m.WrittenAt = time.Now().UTC().Format(time.RFC3339)
		if err := m.WriteFile(shared.MetricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "mirza-sim: writing manifest:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runOne simulates a single workload and returns its formatted report.
// Everything it touches — trace generators, trackers, the fault log — is
// job-local, so concurrent runOne calls never share state.
func runOne(ctx context.Context, workload string, rc runConfig) (string, error) {
	faultLog := fault.NewLog()
	spec, err := trace.Lookup(workload)
	if err != nil {
		return "", err
	}
	gens, err := trace.PerCore(spec, 8, rc.seed)
	if err != nil {
		return "", err
	}
	sys, warm, err := simulate(ctx, rc, gens, nil, spec.MLPLimit(), "workload", workload, faultLog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload   : %s (%s)\n", spec.Name, spec.Suite)
	writeReport(&sb, rc, sys, warm, faultLog)
	return sb.String(), nil
}

// runTrace replays one recorded trace file, sharded round-robin over the
// cores into a single shared address space.
func runTrace(ctx context.Context, path string, rc runConfig) (string, error) {
	faultLog := fault.NewLog()
	tr, err := tracefile.Load(path, tracefile.Options{})
	if err != nil {
		return "", err
	}
	gens, err := tr.PerCore(8)
	if err != nil {
		return "", err
	}
	// Every shard indexes the recorded stream's one address space.
	asids := make([]int, len(gens))
	sys, warm, err := simulate(ctx, rc, gens, asids, 8, "trace", tr.Name, faultLog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace      : %s (%s, %d ops, sha256 %s)\n",
		tr.Name, tr.Format, len(tr.Ops), tr.Hash[:16])
	writeReport(&sb, rc, sys, warm, faultLog)
	return sb.String(), nil
}

// runTenants runs a multi-tenant scenario: every VM's cores together on
// the shared channel, each VM in its own address space. The per-tenant
// security attribution lives in mirza-bench -exp intervm; this report
// covers the timing side.
func runTenants(ctx context.Context, specStr string, rc runConfig) (string, error) {
	faultLog := fault.NewLog()
	spec, err := tenant.Parse(specStr)
	if err != nil {
		return "", err
	}
	gens, asids, err := spec.Generators(rc.seed)
	if err != nil {
		return "", err
	}
	mshr, err := spec.MLPFor()
	if err != nil {
		return "", err
	}
	sys, warm, err := simulate(ctx, rc, gens, asids, mshr, "tenants", spec.String(), faultLog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "tenants    : %s (%d cores)\n", spec, spec.TotalCores())
	ipcs := sys.IPCs()
	for ti, t := range spec.Tenants {
		var sum float64
		n := 0
		for core, owner := range spec.CoreLayout() {
			if owner == ti {
				sum += ipcs[core]
				n++
			}
		}
		fmt.Fprintf(&sb, "  %-14s %d core(s), avg IPC %.3f\n", t.Name, t.Cores, sum/float64(n))
	}
	writeReport(&sb, rc, sys, warm, faultLog)
	return sb.String(), nil
}

// simulate builds the system for the given generator/ASID layout (nil
// asids = one private address space per core), applies rc's fault plan,
// watchdog and auditor, and runs the warmup plus measurement window.
func simulate(ctx context.Context, rc runConfig, gens []trace.Generator, asids []int,
	mshr int, labelKey, labelVal string, faultLog *fault.Log) (*cpu.System, dram.Time, error) {
	factory := rc.built.Factory()
	if !rc.plan.Empty() {
		inner := factory
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return fault.Wrap(rc.plan, inner(sub, sink), uint64(sub), faultLog)
		}
	}
	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Cores: len(gens),
		Core:  cpu.CoreConfig{MSHR: mshr},
		ASIDs: asids,
		Mem: mem.Config{
			Timing:       rc.built.Timing(),
			Mapping:      dram.StridedR2SA,
			RFMBAT:       rc.built.RFMBAT(),
			NewMitigator: factory,
			Telemetry:    rc.reg,
		},
	}, gens)
	if err != nil {
		return nil, 0, err
	}
	var aud *audit.Auditor
	if rc.audit {
		aud = audit.ForChannel(sys.Channel)
	}
	if rc.stall > 0 {
		sys.Watchdog = &sim.Watchdog{Budget: rc.stall}
	}
	warm := dram.Time(rc.warmMS * float64(dram.Millisecond))
	horizon := warm + dram.Time(rc.ms*float64(dram.Millisecond))
	if err := sys.RunCtx(ctx, warm); err != nil {
		return nil, 0, err
	}
	sys.Snapshot()
	if err := sys.RunCtx(ctx, horizon); err != nil {
		return nil, 0, err
	}
	sys.FlushTelemetry(telemetry.L(labelKey, labelVal))
	if err := aud.Finish(sys.Channel); err != nil {
		return nil, 0, fmt.Errorf("%s: protocol audit: %w", labelVal, err)
	}
	return sys, warm, nil
}

// writeReport appends the statistics block shared by all three modes.
func writeReport(sb *strings.Builder, rc runConfig, sys *cpu.System, warm dram.Time, faultLog *fault.Log) {
	st := sys.MemStats()
	ipcs := sys.IPCs()
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	fmt.Fprintf(sb, "mitigation : %s (TRHD=%d)\n", rc.built.Name(), rc.trhd)
	fmt.Fprintf(sb, "window     : %v measured after %v warmup\n", sys.Window(), warm)
	fmt.Fprintf(sb, "IPC        : avg %.3f per core (%.3f aggregate)\n", sum/float64(len(ipcs)), sum)
	fmt.Fprintf(sb, "bus util   : %.1f%%\n", sys.BusUtilization())
	fmt.Fprintf(sb, "reads      : %d   writes: %d\n", st.Reads, st.Writes)
	fmt.Fprintf(sb, "ACTs       : %d (ACT-PKI %.1f)\n", st.ACTs, actPKI(st.ACTs, ipcs, sys.Window()))
	fmt.Fprintf(sb, "REFs       : %d   RFMs: %d\n", st.REFs, st.RFMs)
	fmt.Fprintf(sb, "ALERTs     : %d (stall %v)\n", st.Alerts, st.AlertStall)
	fmt.Fprintf(sb, "mitigations: %d aggressor rows (%d victim refreshes)\n", st.Mitigations, st.VictimRows)
	if st.DemandRefreshRows > 0 {
		fmt.Fprintf(sb, "refresh pwr: +%.2f%% (victim rows / demand rows)\n",
			100*float64(st.VictimRows)/float64(st.DemandRefreshRows))
	}
	if !rc.plan.Empty() {
		fmt.Fprintf(sb, "faults     : %s (plan %s)\n", faultLog.Summary(), rc.plan)
	}
	if rc.audit {
		fmt.Fprintf(sb, "audit      : clean (0 protocol violations)\n")
	}
}

func actPKI(acts int64, ipcs []float64, window dram.Time) float64 {
	var instr float64
	for _, ipc := range ipcs {
		instr += ipc * float64(window) / 250
	}
	if instr == 0 {
		return 0
	}
	return float64(acts) / instr * 1000
}

// listMitigations prints every registered policy with its tunables.
func listMitigations() {
	for _, d := range track.Descriptors() {
		note := ""
		if d.Insecure {
			note = " [no security guarantee]"
		}
		fmt.Printf("%-12s %s%s\n", d.Name, d.Doc, note)
		for _, p := range d.ConfigSchema {
			fmt.Printf("    %-10s %-6s %s\n", p.Key, p.Kind, p.Doc)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirza-sim:", err)
	os.Exit(1)
}
