package sweep

import (
	"strings"
	"testing"
)

func TestShardEnumerationOrder(t *testing.T) {
	g := &Grid{
		Experiments: []string{"fig3", "table8"},
		Seeds:       SeedRange{From: 1, To: 2},
		Workloads:   []string{"xz", "mcf"},
		Mitigations: []string{"prac"},
	}
	shards, err := g.Shards()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig3/w=xz/m=prac/s=1", "fig3/w=xz/m=prac/s=2",
		"fig3/w=mcf/m=prac/s=1", "fig3/w=mcf/m=prac/s=2",
		"table8/w=xz/m=prac/s=1", "table8/w=xz/m=prac/s=2",
		"table8/w=mcf/m=prac/s=1", "table8/w=mcf/m=prac/s=2",
	}
	if len(shards) != len(want) {
		t.Fatalf("enumerated %d shards, want %d", len(shards), len(want))
	}
	for i, sh := range shards {
		if sh.ID != want[i] || sh.Index != i {
			t.Errorf("shard[%d] = %q (index %d), want %q", i, sh.ID, sh.Index, want[i])
		}
		if !sh.Req.NoRetry {
			t.Errorf("shard[%d] does not force NoRetry", i)
		}
	}
	if shards[0].Req.Workloads[0] != "xz" || shards[2].Req.Workloads[0] != "mcf" {
		t.Errorf("workload axis not threaded into requests")
	}
	if shards[0].Req.Seed != 1 || shards[1].Req.Seed != 2 {
		t.Errorf("seed axis not threaded into requests")
	}
}

func TestShardDefaultAxes(t *testing.T) {
	g := &Grid{Experiments: []string{"fig3"}}
	shards, err := g.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 {
		t.Fatalf("default grid enumerated %d shards, want 1", len(shards))
	}
	sh := shards[0]
	if sh.ID != "fig3/s=1" {
		t.Fatalf("default shard id = %q", sh.ID)
	}
	if sh.Req.Seed != 1 || sh.Req.Workloads != nil || sh.Req.Mitigations != nil {
		t.Fatalf("default shard request = %+v", sh.Req)
	}
}

func TestGridValidation(t *testing.T) {
	cases := []struct {
		name string
		g    Grid
		want string
	}{
		{"no-experiments", Grid{}, "at least one experiment"},
		{"empty-id", Grid{Experiments: []string{" "}}, "empty experiment id"},
		{"zero-from", Grid{Experiments: []string{"fig3"}, Seeds: SeedRange{From: 0, To: 5}}, "both ends"},
		{"inverted", Grid{Experiments: []string{"fig3"}, Seeds: SeedRange{From: 5, To: 2}}, "from=5 > to=2"},
		{"too-many", Grid{Experiments: []string{"fig3"}, Seeds: SeedRange{From: 1, To: MaxShards + 1}}, "above the"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.g.Shards()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Shards() err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestParseGridStrict(t *testing.T) {
	g, err := ParseGrid([]byte(`{"experiments":["fig3"],"seeds":{"from":1,"to":4},"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Seeds.To != 4 || !g.Quick {
		t.Fatalf("parsed grid = %+v", g)
	}
	if _, err := ParseGrid([]byte(`{"experiments":["fig3"],"sneeds":{}}`)); err == nil {
		t.Fatal("accepted an unknown grid field")
	}
	if _, err := ParseGrid([]byte(`{"experiments":["fig3"]}{"again":1}`)); err == nil {
		t.Fatal("accepted trailing data")
	}
}
