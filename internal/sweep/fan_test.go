package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mirza/internal/provenance"
	"mirza/internal/serve"
	"mirza/internal/telemetry"
)

// fanBackend is a scriptable serve.Backend for fan tests: experiment
// names prefixed "bad" fail Prepare, "fail" fail Run, everything else
// yields a small deterministic canonical manifest.
type fanBackend struct{}

func (b *fanBackend) Prepare(req *serve.Request) (*serve.Prepared, error) {
	if strings.HasPrefix(req.Experiment, "bad") {
		return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	config := map[string]string{
		"exp":         req.Experiment,
		"workloads":   strings.Join(req.Workloads, ","),
		"mitigations": strings.Join(req.Mitigations, ","),
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	return &serve.Prepared{
		Req:    req,
		Config: config,
		Seed:   seed,
		Key:    fmt.Sprintf("%s-%d", telemetry.ConfigHash(config), seed),
	}, nil
}

func (b *fanBackend) Run(ctx context.Context, p *serve.Prepared) *serve.Outcome {
	if strings.HasPrefix(p.Req.Experiment, "fail") {
		return &serve.Outcome{Err: "scripted failure"}
	}
	m := telemetry.NewManifest("fake", p.Config)
	m.Seed = p.Seed
	body, err := m.Canonical().JSON()
	if err != nil {
		return &serve.Outcome{Err: err.Error()}
	}
	return &serve.Outcome{Manifest: body}
}

// newFanServer builds a daemon with the fan endpoint mounted, ready to
// receive POST /v1/sweep.
func newFanServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{Backend: &fanBackend{}, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("POST /v1/sweep", FanHandler(srv, FanConfig{MaxInFlight: 3}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Drain(0)
	})
	return srv, ts
}

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, []map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("non-JSON NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, doc)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

func TestFanStreamsShardsInOrder(t *testing.T) {
	_, ts := newFanServer(t)
	resp, lines := postSweep(t, ts, `{"experiments":["alpha","beta"],"seeds":{"from":1,"to":2}}`)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(lines) != 6 { // header + 4 shards + done
		t.Fatalf("got %d NDJSON lines, want 6: %v", len(lines), lines)
	}
	if lines[0]["shards"] != float64(4) {
		t.Fatalf("header line = %v", lines[0])
	}
	wantIDs := []string{"alpha/s=1", "alpha/s=2", "beta/s=1", "beta/s=2"}
	var leaves []provenance.Hash
	for i, want := range wantIDs {
		doc := lines[i+1]
		if doc["index"] != float64(i) || doc["shard"] != want {
			t.Fatalf("shard line %d = %v, want index %d shard %q", i, doc, i, want)
		}
		if e, ok := doc["error"]; ok {
			t.Fatalf("shard %s failed: %v", want, e)
		}
		leaf, err := provenance.ParseHash(doc["leaf"].(string))
		if err != nil {
			t.Fatalf("shard %s leaf: %v", want, err)
		}
		leaves = append(leaves, leaf)
	}
	done := lines[5]
	if done["done"] != true || done["ok"] != float64(4) || done["failed"] != nil && done["failed"] != float64(0) {
		t.Fatalf("done line = %v", done)
	}
	// The streamed root must be the Merkle root over the shard manifests
	// in enumeration order — the same root a local ledger of the same
	// sweep records.
	if got, want := done["root"], provenance.Root(leaves).String(); got != want {
		t.Fatalf("done root = %v, want %s", got, want)
	}
}

func TestFanMatchesBackendManifests(t *testing.T) {
	_, ts := newFanServer(t)
	_, lines := postSweep(t, ts, `{"experiments":["alpha"],"seeds":{"from":3,"to":3}}`)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Recompute the shard's manifest directly through the backend: the
	// fanned leaf must be the leaf hash of those exact bytes.
	b := &fanBackend{}
	prep, err := b.Prepare(&serve.Request{Experiment: "alpha", Seed: 3, NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.Run(context.Background(), prep)
	want := provenance.LeafHash(out.Manifest).String()
	if got := lines[1]["leaf"]; got != want {
		t.Fatalf("fanned leaf = %v, locally recomputed leaf = %s", got, want)
	}
	if got := lines[1]["key"]; got != prep.Key {
		t.Fatalf("fanned key = %v, want %s", got, prep.Key)
	}
}

func TestFanReportsShardFailuresWithoutRoot(t *testing.T) {
	_, ts := newFanServer(t)
	_, lines := postSweep(t, ts, `{"experiments":["alpha","failing"],"seeds":{"from":1,"to":1}}`)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if e, ok := lines[2]["error"].(string); !ok || !strings.Contains(e, "scripted failure") {
		t.Fatalf("failing shard line = %v", lines[2])
	}
	done := lines[3]
	if done["ok"] != float64(1) || done["failed"] != float64(1) {
		t.Fatalf("done line = %v", done)
	}
	if _, ok := done["root"]; ok {
		t.Fatalf("partial sweep must not report a provable root: %v", done)
	}
}

func TestFanRejectsBadGrids(t *testing.T) {
	_, ts := newFanServer(t)
	cases := map[string]string{
		"malformed":      `{"experiments":`,
		"unknown-field":  `{"experiments":["alpha"],"nope":1}`,
		"empty-grid":     `{}`,
		"bad-experiment": `{"experiments":["badx"]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			resp, _ := postSweep(t, ts, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestFanCoalescesAndCaches(t *testing.T) {
	_, ts := newFanServer(t)
	// First sweep populates the daemon cache; an identical second sweep
	// must be served from it with the identical root.
	_, first := postSweep(t, ts, `{"experiments":["alpha"],"seeds":{"from":1,"to":3}}`)
	_, second := postSweep(t, ts, `{"experiments":["alpha"],"seeds":{"from":1,"to":3}}`)
	d1, d2 := first[len(first)-1], second[len(second)-1]
	if d1["root"] != d2["root"] || d1["root"] == nil {
		t.Fatalf("repeated sweep root drifted: %v vs %v", d1["root"], d2["root"])
	}
	cachedAny := false
	for _, doc := range second[1 : len(second)-1] {
		if doc["cached"] == true {
			cachedAny = true
		}
	}
	if !cachedAny {
		t.Fatalf("second sweep hit the cache for no shard: %v", second)
	}
}
