package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"mirza/internal/jobs"
	"mirza/internal/serve"
	"mirza/internal/telemetry"
)

// Options tunes an Engine.
type Options struct {
	// Bench is the mirza-bench binary executed in shard mode
	// (-shard/-shard-out). Required.
	Bench string

	// CacheDir holds validated canonical manifests by content-addressed
	// key; shards whose key is already cached are not re-executed.
	// Empty disables the cache (every shard runs).
	CacheDir string

	// Workers is the process-level parallelism (default 1). The merged
	// output is byte-identical at any value.
	Workers int

	// InnerJ is the -j engine parallelism passed to every worker process
	// (0 = the worker's default). Total load ≈ Workers × InnerJ.
	InnerJ int

	// Retries is how many times a shard whose worker process died of a
	// signal (OOM kill, crash) is re-executed (default 2). Deterministic
	// failures — a nonzero exit — are never retried: the rerun would
	// fail identically.
	Retries int

	// ShardTimeout bounds one shard attempt's wall clock (default 10m).
	ShardTimeout time.Duration

	// StallBudget and Verbose are forwarded to workers
	// (-stall-budget / -v).
	StallBudget time.Duration
	Verbose     bool

	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() error {
	if o.Bench == "" {
		return fmt.Errorf("sweep: Options.Bench (mirza-bench path) is required")
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 10 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// ShardResult is the outcome of one shard, reported at the shard's
// enumeration index.
type ShardResult struct {
	Shard Shard

	// Key is the shard's content-addressed identity
	// (telemetry.ConfigHash(config)+"-"+seed), computed by the same
	// Prepare the daemon uses.
	Key string

	// Manifest is the canonical run manifest bytes (nil on failure) —
	// byte-identical whether produced by a worker process, the daemon,
	// or a previous cached run.
	Manifest []byte

	// Cached marks a shard satisfied from CacheDir without execution.
	Cached bool

	// Deaths counts worker processes that died of a signal before the
	// recorded attempt succeeded.
	Deaths int

	// Err is the shard's terminal failure (nil on success).
	Err error
}

// Engine executes grids across worker processes.
type Engine struct {
	opts Options

	// prep computes shard identities: the daemon's Prepare, so a sweep
	// key equals the serve cache key for the same request. Wall-clock
	// knobs (stall budget, parallelism) are excluded from the hash, so
	// passing them here does not perturb identity.
	prep serve.Backend
}

// NewEngine builds an engine over opts.
func NewEngine(opts Options) (*Engine, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &Engine{
		opts: opts,
		prep: &serve.ExperimentsBackend{StallBudget: opts.StallBudget, Parallelism: opts.InnerJ},
	}, nil
}

// Run enumerates g, executes every shard (cache permitting) and returns
// one result per shard in enumeration order, whatever order the worker
// processes finished in — the jobs-pool contract, lifted to processes.
// Shard failures are reported in the results, not as the returned
// error, so one failed cell never discards a completed grid; the error
// covers grid-level problems (invalid spec, unpreparable shard,
// scratch-dir setup).
func (e *Engine) Run(ctx context.Context, g *Grid) ([]ShardResult, error) {
	shards, err := g.Shards()
	if err != nil {
		return nil, err
	}
	// Prepare every shard up front: identities are needed for cache
	// lookups anyway, and a typo in any cell fails the sweep before the
	// first process starts, like the daemon's 400-before-queue contract.
	keys := make([]string, len(shards))
	for i, sh := range shards {
		req := sh.Req
		prep, err := e.prep.Prepare(&req)
		if err != nil {
			return nil, fmt.Errorf("sweep: shard %s: %w", sh.ID, err)
		}
		keys[i] = prep.Key
	}
	if e.opts.CacheDir != "" {
		if err := os.MkdirAll(e.opts.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	scratch, err := os.MkdirTemp("", "mirza-sweep-")
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	defer os.RemoveAll(scratch)

	js := make([]jobs.Job[ShardResult], len(shards))
	for i := range shards {
		sh, key := shards[i], keys[i]
		js[i] = jobs.Job[ShardResult]{
			ID: sh.ID,
			// Failures travel inside the ShardResult: the pool's
			// fail-fast (built for must-all-succeed simulation batches)
			// would skip every later shard on the first bad cell.
			Run: func(ctx context.Context) (ShardResult, error) {
				return e.runShard(ctx, scratch, sh, key), nil
			},
		}
	}
	results := jobs.RunCtx(ctx, jobs.Options{Parallelism: e.opts.Workers}, js)
	out := make([]ShardResult, len(results))
	for i, r := range results {
		switch {
		case r.Err != nil: // pool-level: cancellation
			out[i] = ShardResult{Shard: shards[i], Key: keys[i], Err: r.Err}
		default:
			out[i] = r.Value
		}
	}
	return out, nil
}

// runShard satisfies one shard: cache, or worker process with
// death-retry.
func (e *Engine) runShard(ctx context.Context, scratch string, sh Shard, key string) ShardResult {
	res := ShardResult{Shard: sh, Key: key}
	if b, ok := e.cachedManifest(key); ok {
		e.opts.Logf("shard %s: cached (%s)", sh.ID, key[:12])
		res.Manifest, res.Cached = b, true
		return res
	}
	reqPath := filepath.Join(scratch, fmt.Sprintf("shard-%d.json", sh.Index))
	outPath := filepath.Join(scratch, fmt.Sprintf("shard-%d.out.json", sh.Index))
	reqBytes, err := json.Marshal(sh.Req)
	if err != nil {
		res.Err = err
		return res
	}
	if err := os.WriteFile(reqPath, reqBytes, 0o644); err != nil {
		res.Err = err
		return res
	}
	for attempt := 0; ; attempt++ {
		manifest, err := e.execShard(ctx, reqPath, outPath)
		if err == nil {
			if verr := validateManifest(manifest, key); verr != nil {
				res.Err = fmt.Errorf("sweep: shard %s: %w", sh.ID, verr)
				return res
			}
			res.Manifest = manifest
			res.Deaths = attempt
			e.storeCached(key, manifest)
			e.opts.Logf("shard %s: done (%s)", sh.ID, key[:12])
			return res
		}
		var death *workerDeathError
		if errors.As(err, &death) && attempt < e.opts.Retries && ctx.Err() == nil {
			// Signal death is environmental (OOM killer, crash, an
			// operator's kill): the deterministic shard is safe to rerun
			// and must produce the identical manifest.
			e.opts.Logf("shard %s: worker died (%v), retry %d/%d", sh.ID, death.signal, attempt+1, e.opts.Retries)
			continue
		}
		res.Err = fmt.Errorf("sweep: shard %s: %w", sh.ID, err)
		res.Deaths = attempt
		return res
	}
}

// workerDeathError marks a worker process killed by a signal rather
// than exiting — the one failure class a rerun can fix.
type workerDeathError struct {
	signal syscall.Signal
}

func (e *workerDeathError) Error() string {
	return fmt.Sprintf("worker process died: signal %v", e.signal)
}

// execShard runs one worker process attempt and returns the manifest
// bytes it wrote.
func (e *Engine) execShard(ctx context.Context, reqPath, outPath string) ([]byte, error) {
	// A fresh output path state per attempt: a dead worker's partial
	// write must not be mistaken for a result.
	_ = os.Remove(outPath)
	actx, cancel := context.WithTimeout(ctx, e.opts.ShardTimeout)
	defer cancel()
	args := []string{"-shard", reqPath, "-shard-out", outPath}
	if e.opts.InnerJ > 0 {
		args = append(args, "-j", strconv.Itoa(e.opts.InnerJ))
	}
	if e.opts.StallBudget > 0 {
		args = append(args, "-stall-budget", e.opts.StallBudget.String())
	}
	if e.opts.Verbose {
		args = append(args, "-v")
	}
	cmd := exec.CommandContext(actx, e.opts.Bench, args...)
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return os.ReadFile(outPath)
	}
	if actx.Err() != nil {
		// The engine's own deadline or cancellation killed the worker:
		// not a worker death, retrying would just burn another timeout.
		return nil, fmt.Errorf("%w (after %v)", actx.Err(), e.opts.ShardTimeout)
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return nil, &workerDeathError{signal: ws.Signal()}
		}
		return nil, fmt.Errorf("worker exited %d: %s", ee.ExitCode(), stderrTail(&stderr))
	}
	return nil, fmt.Errorf("starting worker: %w", err)
}

// stderrTail compresses a worker's stderr into an error-sized excerpt.
func stderrTail(buf *bytes.Buffer) string {
	s := bytes.TrimSpace(buf.Bytes())
	if len(s) == 0 {
		return "(no stderr)"
	}
	const max = 512
	if len(s) > max {
		s = s[len(s)-max:]
	}
	return string(s)
}

// validateManifest checks that manifest bytes answer for key: they
// parse, their config hash and seed reproduce the key, they are not
// degraded, and they re-render canonically to the same bytes (a
// truncated or hand-edited file fails here, not in the ledger).
func validateManifest(manifest []byte, key string) error {
	var m telemetry.RunManifest
	if err := json.Unmarshal(manifest, &m); err != nil {
		return fmt.Errorf("manifest does not parse: %w", err)
	}
	if got := fmt.Sprintf("%s-%d", m.ConfigHash, m.Seed); got != key {
		return fmt.Errorf("manifest answers for key %s, want %s", got, key)
	}
	if telemetry.ConfigHash(m.Config) != m.ConfigHash {
		return fmt.Errorf("manifest config does not hash to its config_hash %s", m.ConfigHash)
	}
	if m.Degraded {
		return fmt.Errorf("manifest is degraded fidelity; a sweep records only clean full-fidelity runs")
	}
	canon, err := m.Canonical().JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(canon, manifest) {
		return fmt.Errorf("manifest bytes are not canonical (wall-clock fields present or formatting drift)")
	}
	return nil
}

// cachedManifest returns the validated cached manifest for key, if any.
// An invalid cache file (truncated write, stale schema, hand edit) is
// treated as a miss and removed, so the shard re-runs instead of
// poisoning the ledger.
func (e *Engine) cachedManifest(key string) ([]byte, bool) {
	if e.opts.CacheDir == "" {
		return nil, false
	}
	path := filepath.Join(e.opts.CacheDir, key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if err := validateManifest(b, key); err != nil {
		e.opts.Logf("cache %s: invalid (%v), re-running", key[:12], err)
		_ = os.Remove(path)
		return nil, false
	}
	return b, true
}

// storeCached records a validated manifest under its key, atomically so
// a crashed sweep never leaves a half-written cache entry.
func (e *Engine) storeCached(key string, manifest []byte) {
	if e.opts.CacheDir == "" {
		return
	}
	path := filepath.Join(e.opts.CacheDir, key+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, manifest, 0o644); err != nil {
		e.opts.Logf("cache %s: %v", key[:12], err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		e.opts.Logf("cache %s: %v", key[:12], err)
	}
}
