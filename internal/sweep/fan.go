package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mirza/internal/provenance"
	"mirza/internal/serve"
)

// FanConfig tunes the POST /v1/sweep handler.
type FanConfig struct {
	// MaxInFlight bounds how many shards of one sweep sit in the
	// daemon's admission queue at once (default 4): a fanned grid
	// shares the queue with interactive submissions instead of
	// monopolizing it, and shed shards back off instead of thundering.
	MaxInFlight int

	// ShedRetries is how many times a shed shard is resubmitted with
	// backoff before it is reported failed (default 8).
	ShedRetries int

	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *FanConfig) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.ShedRetries <= 0 {
		c.ShedRetries = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// fanShardDoc is one NDJSON progress line of a fanned sweep.
type fanShardDoc struct {
	Index     int    `json:"index"`
	Shard     string `json:"shard"`
	Key       string `json:"key"`
	Leaf      string `json:"leaf,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`
}

// fanDoneDoc is the terminal NDJSON line.
type fanDoneDoc struct {
	Done   bool   `json:"done"`
	Shards int    `json:"shards"`
	OK     int    `json:"ok"`
	Failed int    `json:"failed"`
	Root   string `json:"root,omitempty"`
}

// FanHandler returns the POST /v1/sweep handler: it fans a Grid into
// the daemon's admission queue (bounded, so the sweep shares the queue
// instead of flooding it) and streams NDJSON progress — one line per
// shard in enumeration order, then a terminal line whose root is the
// Merkle root over the successful shards' manifests in that order. The
// same manifests at any worker topology produce the same root, so a
// client can compare it against a locally recorded ledger head.
//
// The handler lives here rather than in package serve to keep the
// dependency direction sweep → serve; mount it with
// srv.Handle("POST /v1/sweep", sweep.FanHandler(srv, cfg)).
func FanHandler(srv *serve.Server, cfg FanConfig) http.Handler {
	cfg.setDefaults()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		g, err := ParseGrid(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		shards, err := g.Shards()
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Prepare everything before streaming starts: a bad cell is a
		// structured 400, never a half-streamed sweep.
		preps := make([]*serve.Prepared, len(shards))
		for i := range shards {
			req := shards[i].Req
			prep, err := srv.Prepare(&req)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("shard %s: %v", shards[i].ID, err))
				return
			}
			preps[i] = prep
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			httpError(w, http.StatusInternalServerError, "streaming unsupported")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string]int{"shards": len(shards)})
		fl.Flush()

		cfg.Logf("sweep: fanning %d shards (max %d in flight)", len(shards), cfg.MaxInFlight)
		docs := make([]chan fanShardDoc, len(shards))
		for i := range docs {
			docs[i] = make(chan fanShardDoc, 1)
		}
		sem := make(chan struct{}, cfg.MaxInFlight)
		for i := range shards {
			go func(i int) {
				select {
				case sem <- struct{}{}:
				case <-r.Context().Done():
					docs[i] <- fanShardDoc{Index: i, Shard: shards[i].ID, Key: preps[i].Key, Error: "client gone"}
					return
				}
				defer func() { <-sem }()
				docs[i] <- runFanned(r.Context(), srv, cfg, shards[i], preps[i])
			}(i)
		}

		n := len(shards)
		ok2, failed := 0, 0
		leaves := make([]provenance.Hash, 0, n)
		for i := 0; i < n; i++ {
			doc := <-docs[i]
			if doc.Error == "" {
				ok2++
				leaf, err := provenance.ParseHash(doc.Leaf)
				if err == nil {
					leaves = append(leaves, leaf)
				}
			} else {
				failed++
			}
			if err := enc.Encode(doc); err != nil {
				return // client gone; remaining goroutines release via ctx
			}
			fl.Flush()
		}
		done := fanDoneDoc{Done: true, Shards: n, OK: ok2, Failed: failed}
		if failed == 0 {
			// The root is only meaningful over the complete grid: a
			// partial sweep reports counts, not a provable head.
			done.Root = provenance.Root(leaves).String()
		}
		_ = enc.Encode(done)
		fl.Flush()
	})
}

// runFanned submits one shard and waits for its outcome, with backoff
// on shed.
func runFanned(ctx context.Context, srv *serve.Server, cfg FanConfig, sh Shard, prep *serve.Prepared) fanShardDoc {
	doc := fanShardDoc{Index: sh.Index, Shard: sh.ID, Key: prep.Key}
	var job *serve.Job
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var err error
		job, err = srv.Submit(prep)
		if err == nil {
			break
		}
		if errors.Is(err, serve.ErrShed) && attempt < cfg.ShedRetries && ctx.Err() == nil {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				doc.Error = "client gone"
				return doc
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		doc.Error = err.Error()
		return doc
	}
	doc.Cached, doc.Coalesced = job.Cached, job.Coalesced
	select {
	case <-job.Done():
		job.Release(false)
	case <-ctx.Done():
		job.Release(true)
		doc.Error = "client gone"
		return doc
	}
	out := job.Outcome()
	switch {
	case out == nil:
		doc.Error = "job finished without an outcome"
	case out.Err != "":
		doc.Error = out.Err
	case out.Degraded:
		// A degraded manifest exists but a sweep refuses it, exactly
		// like the process engine does.
		doc.Degraded = true
		doc.Error = "degraded fidelity; sweep records only clean full-fidelity runs"
	default:
		doc.Leaf = provenance.LeafHash(out.Manifest).String()
	}
	return doc
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
