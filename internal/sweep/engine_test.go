package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mirza/internal/provenance"
)

// benchBin is the mirza-bench binary TestMain builds once for every
// engine test; empty when the build failed (tests then skip with the
// recorded error).
var (
	benchBin      string
	benchBuildErr string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sweep-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "mirza-bench")
	cmd := exec.Command("go", "build", "-o", bin, "mirza/cmd/mirza-bench")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		benchBuildErr = fmt.Sprintf("building mirza-bench: %v: %s", err, out)
	} else {
		benchBin = bin
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func needBench(t *testing.T) string {
	t.Helper()
	if benchBin == "" {
		t.Fatalf("mirza-bench unavailable: %s", benchBuildErr)
	}
	return benchBin
}

// quickGrid is a grid cheap enough to execute as real worker processes:
// table1 renders DDR5 timing parameters without a timing simulation.
func quickGrid(from, to uint64) *Grid {
	return &Grid{Experiments: []string{"table1"}, Seeds: SeedRange{From: from, To: to}, Quick: true}
}

// runSweep executes g into a fresh ledger directory and returns it.
func runSweep(t *testing.T, g *Grid, workers int, opts func(*Options)) (string, []ShardResult) {
	t.Helper()
	dir := t.TempDir()
	o := Options{
		Bench:    needBench(t),
		CacheDir: filepath.Join(dir, "cache"),
		Workers:  workers,
	}
	if opts != nil {
		opts(&o)
	}
	eng, err := NewEngine(o)
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(dir, "ledger")
	l, err := provenance.Open(ledgerDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Record(l, results); err != nil {
		t.Fatal(err)
	}
	return ledgerDir, results
}

// readTree maps relative path -> file bytes for a whole directory.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestProcessShardDeterminism is the tentpole guarantee: the merged
// ledger (entry log, head, every recorded manifest) and the rendered
// table are byte-identical whether the shards ran in one process
// sequentially or across four worker processes.
func TestProcessShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("executes worker processes")
	}
	g := quickGrid(1, 3)
	seqDir, seqRes := runSweep(t, g, 1, nil)
	parDir, parRes := runSweep(t, g, 4, nil)

	for i := range seqRes {
		if seqRes[i].Err != nil || parRes[i].Err != nil {
			t.Fatalf("shard %s failed: seq=%v par=%v", seqRes[i].Shard.ID, seqRes[i].Err, parRes[i].Err)
		}
		if !bytes.Equal(seqRes[i].Manifest, parRes[i].Manifest) {
			t.Fatalf("shard %s manifest differs between -workers 1 and -workers 4", seqRes[i].Shard.ID)
		}
	}
	seqTree, parTree := readTree(t, seqDir), readTree(t, parDir)
	if len(seqTree) != len(parTree) {
		t.Fatalf("ledger trees differ in file count: %d vs %d", len(seqTree), len(parTree))
	}
	for rel, b := range seqTree {
		pb, ok := parTree[rel]
		if !ok {
			t.Fatalf("parallel ledger is missing %s", rel)
		}
		if !bytes.Equal(b, pb) {
			t.Fatalf("ledger file %s differs between -workers 1 and -workers 4:\n%s\nvs\n%s", rel, b, pb)
		}
	}
	seqL, err := provenance.Open(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	parL, err := provenance.Open(parDir)
	if err != nil {
		t.Fatal(err)
	}
	seqTbl, err := Table(seqL)
	if err != nil {
		t.Fatal(err)
	}
	parTbl, err := Table(parL)
	if err != nil {
		t.Fatal(err)
	}
	if seqTbl != parTbl {
		t.Fatalf("rendered tables differ:\n%s\nvs\n%s", seqTbl, parTbl)
	}
	if _, err := VerifyLedger(seqDir); err != nil {
		t.Fatalf("VerifyLedger: %v", err)
	}
}

// TestIncrementalRerunSkipsCachedShards: a second run over a grown grid
// executes only the new seeds, and re-recording leaves every existing
// ledger byte untouched.
func TestIncrementalRerunSkipsCachedShards(t *testing.T) {
	if testing.Short() {
		t.Skip("executes worker processes")
	}
	dir := t.TempDir()
	o := Options{Bench: needBench(t), CacheDir: filepath.Join(dir, "cache"), Workers: 2}
	eng, err := NewEngine(o)
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(dir, "ledger")

	first, err := eng.Run(context.Background(), quickGrid(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	l, err := provenance.Open(ledgerDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Record(l, first); err != nil {
		t.Fatal(err)
	}
	before := readTree(t, ledgerDir)

	second, err := eng.Run(context.Background(), quickGrid(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Err != nil {
			t.Fatalf("shard %s: %v", r.Shard.ID, r.Err)
		}
		wantCached := i < 2 // seeds 1 and 2 ran in the first sweep
		if r.Cached != wantCached {
			t.Fatalf("shard %s cached=%v, want %v", r.Shard.ID, r.Cached, wantCached)
		}
	}
	l2, err := provenance.Open(ledgerDir)
	if err != nil {
		t.Fatal(err)
	}
	head, appended, err := Record(l2, second)
	if err != nil {
		t.Fatal(err)
	}
	if appended != 1 || head.Size != 3 {
		t.Fatalf("incremental record appended %d entries to size %d, want +1 to 3", appended, head.Size)
	}
	after := readTree(t, ledgerDir)
	for rel, b := range before {
		if rel == "HEAD.json" || rel == "entries.ndjson" {
			continue // these legitimately grow
		}
		if !bytes.Equal(after[rel], b) {
			t.Fatalf("incremental rerun rewrote %s", rel)
		}
	}
	if !bytes.HasPrefix(after["entries.ndjson"], before["entries.ndjson"]) {
		t.Fatalf("entry log was rewritten, not appended:\n%s\nvs\n%s", before["entries.ndjson"], after["entries.ndjson"])
	}
	if _, err := VerifyLedger(ledgerDir); err != nil {
		t.Fatalf("VerifyLedger after incremental rerun: %v", err)
	}
}

// killingWrapper builds a shell wrapper around mirza-bench that SIGKILLs
// itself on the first attempt per request file, then execs the real
// binary — the worker-death scenario.
func killingWrapper(t *testing.T, markerDir string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench-killer.sh")
	script := `#!/bin/sh
# $1=-shard $2=<request.json> ...
marker="` + markerDir + `/$(basename "$2").killed"
if [ ! -e "$marker" ]; then
  : > "$marker"
  kill -KILL $$
fi
exec "` + needBench(t) + `" "$@"
`
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWorkerDeathRetryYieldsIdenticalManifest: a shard whose worker is
// SIGKILLed mid-flight is retried, and the retried shard's manifest
// hash equals a never-killed run of the same shard.
func TestWorkerDeathRetryYieldsIdenticalManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("executes worker processes")
	}
	g := quickGrid(7, 7)
	_, cleanRes := runSweep(t, g, 1, nil)

	markerDir := t.TempDir()
	wrapper := killingWrapper(t, markerDir)
	var logs []string
	_, killedRes := runSweep(t, g, 1, func(o *Options) {
		o.Bench = wrapper
		o.Logf = func(format string, args ...any) {
			logs = append(logs, fmt.Sprintf(format, args...))
		}
	})

	if killedRes[0].Err != nil {
		t.Fatalf("shard failed despite retry budget: %v", killedRes[0].Err)
	}
	if killedRes[0].Deaths != 1 {
		t.Fatalf("shard survived %d deaths, want exactly 1", killedRes[0].Deaths)
	}
	markers, err := os.ReadDir(markerDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(markers) != 1 {
		t.Fatalf("wrapper killed %d attempts, want 1", len(markers))
	}
	if !bytes.Equal(killedRes[0].Manifest, cleanRes[0].Manifest) {
		t.Fatalf("retried shard manifest differs from the clean run")
	}
	if provenance.LeafHash(killedRes[0].Manifest) != provenance.LeafHash(cleanRes[0].Manifest) {
		t.Fatalf("retried shard leaf hash differs from the clean run")
	}
	found := false
	for _, line := range logs {
		if strings.Contains(line, "worker died") {
			found = true
		}
	}
	if !found {
		t.Fatalf("engine never logged the worker death: %v", logs)
	}
}

// TestDeterministicFailureIsNotRetried: a worker that exits nonzero is
// a deterministic failure — rerunning it would fail identically, so the
// engine must run it exactly once.
func TestDeterministicFailureIsNotRetried(t *testing.T) {
	if testing.Short() {
		t.Skip("executes worker processes")
	}
	countDir := t.TempDir()
	wrapDir := t.TempDir()
	wrapper := filepath.Join(wrapDir, "bench-fail.sh")
	script := `#!/bin/sh
: > "` + countDir + `/attempt-$$"
echo "scripted worker failure" >&2
exit 1
`
	if err := os.WriteFile(wrapper, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Options{Bench: wrapper, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.Run(context.Background(), quickGrid(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "worker exited 1") {
		t.Fatalf("shard error = %v, want a worker-exit failure", results[0].Err)
	}
	if !strings.Contains(results[0].Err.Error(), "scripted worker failure") {
		t.Fatalf("shard error does not carry the worker's stderr: %v", results[0].Err)
	}
	attempts, err := os.ReadDir(countDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 1 {
		t.Fatalf("deterministic failure ran %d times, want exactly 1", len(attempts))
	}
}

// TestInvalidCacheEntryReruns: a corrupted cache file must be treated
// as a miss (and replaced), never recorded.
func TestInvalidCacheEntryReruns(t *testing.T) {
	if testing.Short() {
		t.Skip("executes worker processes")
	}
	dir := t.TempDir()
	o := Options{Bench: needBench(t), CacheDir: filepath.Join(dir, "cache"), Workers: 1}
	eng, err := NewEngine(o)
	if err != nil {
		t.Fatal(err)
	}
	g := quickGrid(1, 1)
	first, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err != nil || first[0].Cached {
		t.Fatalf("first run = %+v", first[0])
	}
	// Corrupt the cache entry.
	path := filepath.Join(o.CacheDir, first[0].Key+".json")
	if err := os.WriteFile(path, []byte("{\"garbage\":true}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if second[0].Cached {
		t.Fatalf("corrupted cache entry was served as a hit")
	}
	if !bytes.Equal(second[0].Manifest, first[0].Manifest) {
		t.Fatalf("rerun after cache corruption produced different bytes")
	}
}
