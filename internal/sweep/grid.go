// Package sweep is the fleet-scale sweep engine: it decomposes a
// declarative grid specification (experiment × workload × mitigation ×
// seed-range) into deterministic, identity-seeded shards, executes them
// across worker processes (mirza-bench in shard mode), and chains the
// resulting canonical run manifests into the tamper-evident
// internal/provenance ledger.
//
// The determinism contract extends the one internal/jobs gives threads
// to processes: every shard is a pure function of its serve.Request
// (content-addressed as telemetry.ConfigHash(config)+"-"+seed, computed
// by the same Prepare the daemon uses), results are gathered and
// ledgered in shard-enumeration order, and therefore the merged ledger,
// head root and rendered table are byte-identical at any -workers
// count — the property `make sweep-check` pins in CI.
//
// Incremental re-runs skip shards whose key already has a validated
// cached canonical manifest, so growing a seed range re-executes only
// the new shards; the ledger refuses to rewrite an existing key with
// different bytes.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mirza/internal/serve"
)

// MaxShards bounds one grid's enumeration: a typo in a seed range
// should fail loudly, not enqueue a million processes.
const MaxShards = 4096

// SeedRange is an inclusive seed interval. The zero value means the
// default seed (1) only. Seed 0 is not enumerable: the CLIs and the
// daemon resolve it to 1, so a range starting at 0 would alias its
// first two shards onto one key.
type SeedRange struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Grid is the declarative sweep specification: the cross product of the
// axes below, sharing the scalar fidelity knobs. Thresholds ride on the
// experiment axis — threshold sweeps (table2, table7, fig3 …) enumerate
// TRHD inside one experiment, so a grid row pins the whole curve.
type Grid struct {
	// Experiments lists experiment ids (mirza-bench -list). Required.
	Experiments []string `json:"experiments"`

	// Seeds is the seed axis (inclusive; zero value = seed 1 only).
	Seeds SeedRange `json:"seeds"`

	// Workloads is the workload axis: one shard per name. Empty means a
	// single shard per (experiment, mitigation, seed) using the
	// experiment's default workload set.
	Workloads []string `json:"workloads,omitempty"`

	// Mitigations is the mitigation-policy axis: one shard per name
	// (internal/track registry). Empty means a single shard using the
	// experiment's default policy grid.
	Mitigations []string `json:"mitigations,omitempty"`

	// Scalar fidelity knobs, applied to every shard. They participate in
	// every shard's content-addressed identity exactly as they do for a
	// daemon job.
	Quick         bool     `json:"quick,omitempty"`
	MeasureMS     float64  `json:"measure_ms,omitempty"`
	WarmupMS      float64  `json:"warmup_ms,omitempty"`
	ReplayWindows int      `json:"replay_windows,omitempty"`
	Faults        string   `json:"faults,omitempty"`
	Audit         bool     `json:"audit,omitempty"`
	Tenants       string   `json:"tenants,omitempty"`
	Trace         []string `json:"trace,omitempty"`
	TimeoutMS     int64    `json:"timeout_ms,omitempty"`
}

// Shard is one enumerated grid cell: a complete daemon-shaped request
// plus its stable identity within the grid.
type Shard struct {
	// Index is the shard's position in enumeration order — the order
	// results are merged and ledgered in, at any worker count.
	Index int

	// ID is the human-readable shard identity, e.g.
	// "fig3/w=xz/m=prac/s=3". It names the shard in logs, the ledger and
	// the sweep table; the content-addressed key is computed from Req.
	ID string

	// Req is the shard's request, identical in shape and semantics to a
	// POST /v1/jobs body. NoRetry is forced on: a sweep wants a loud
	// failure, never a silently degraded row.
	Req serve.Request
}

// ParseGrid decodes a grid from strict JSON (unknown fields are
// errors, like the daemon's request parsing).
func ParseGrid(b []byte) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: grid: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return nil, fmt.Errorf("sweep: grid: trailing data after the JSON document")
	}
	return &g, nil
}

// LoadGrid reads a grid specification file.
func LoadGrid(path string) (*Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	g, err := ParseGrid(b)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return g, nil
}

// validate checks the grid's shape. Axis *values* (experiment ids,
// workload and mitigation names, fault syntax) are validated by Prepare
// per shard, exactly as the daemon validates a request.
func (g *Grid) validate() error {
	if len(g.Experiments) == 0 {
		return fmt.Errorf("sweep: grid needs at least one experiment (try \"fig3\"; mirza-bench -list enumerates all)")
	}
	for _, e := range g.Experiments {
		if strings.TrimSpace(e) == "" {
			return fmt.Errorf("sweep: grid has an empty experiment id")
		}
	}
	s := g.Seeds
	if s.From == 0 && s.To == 0 {
		return nil // default seed
	}
	if s.From == 0 || s.To == 0 {
		return fmt.Errorf("sweep: seed range {%d, %d} must set both ends (seeds start at 1)", s.From, s.To)
	}
	if s.From > s.To {
		return fmt.Errorf("sweep: seed range from=%d > to=%d", s.From, s.To)
	}
	return nil
}

// seeds returns the enumerated seed values.
func (g *Grid) seeds() []uint64 {
	s := g.Seeds
	if s.From == 0 && s.To == 0 {
		return []uint64{1}
	}
	out := make([]uint64, 0, s.To-s.From+1)
	for v := s.From; v <= s.To; v++ {
		out = append(out, v)
	}
	return out
}

// Shards enumerates the grid deterministically: experiments (outer) ×
// workloads × mitigations × seeds (inner), exactly the order the merged
// ledger records. The enumeration itself never runs anything.
func (g *Grid) Shards() ([]Shard, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	seeds := g.Seeds
	if seeds.From == 0 {
		seeds = SeedRange{From: 1, To: 1}
	}
	n := len(g.Experiments) * axisLen(g.Workloads) * axisLen(g.Mitigations) * int(seeds.To-seeds.From+1)
	if n > MaxShards {
		return nil, fmt.Errorf("sweep: grid enumerates %d shards, above the %d bound — narrow an axis", n, MaxShards)
	}
	shards := make([]Shard, 0, n)
	for _, exp := range g.Experiments {
		exp = strings.TrimSpace(exp)
		for _, w := range axis(g.Workloads) {
			for _, m := range axis(g.Mitigations) {
				for _, seed := range g.seeds() {
					id := exp
					if w != "" {
						id += "/w=" + w
					}
					if m != "" {
						id += "/m=" + m
					}
					id += fmt.Sprintf("/s=%d", seed)
					req := serve.Request{
						Experiment:    exp,
						Seed:          seed,
						Quick:         g.Quick,
						MeasureMS:     g.MeasureMS,
						WarmupMS:      g.WarmupMS,
						ReplayWindows: g.ReplayWindows,
						Faults:        g.Faults,
						Audit:         g.Audit,
						Tenants:       g.Tenants,
						Trace:         g.Trace,
						TimeoutMS:     g.TimeoutMS,
						NoRetry:       true,
					}
					if w != "" {
						req.Workloads = []string{w}
					}
					if m != "" {
						req.Mitigations = []string{m}
					}
					shards = append(shards, Shard{Index: len(shards), ID: id, Req: req})
				}
			}
		}
	}
	return shards, nil
}

// axis iterates an optional axis: its values, or one empty slot meaning
// "the experiment's default".
func axis(vals []string) []string {
	if len(vals) == 0 {
		return []string{""}
	}
	return vals
}

func axisLen(vals []string) int {
	if len(vals) == 0 {
		return 1
	}
	return len(vals)
}
