package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"mirza/internal/provenance"
	"mirza/internal/telemetry"
)

// Record appends every successful shard result to the ledger in shard
// enumeration order and publishes the new head. Re-recording an
// already-ledgered key with identical bytes is a no-op; different bytes
// fail (the ledger is append-only). Failed shards are skipped — their
// keys stay absent, so the next run re-executes them.
func Record(l *provenance.Ledger, results []ShardResult) (provenance.Head, int, error) {
	appended := 0
	for _, r := range results {
		if r.Err != nil || r.Manifest == nil {
			continue
		}
		_, added, err := l.Append(r.Manifest, r.Key, r.Shard.ID)
		if err != nil {
			return provenance.Head{}, appended, fmt.Errorf("sweep: recording shard %s: %w", r.Shard.ID, err)
		}
		if added {
			appended++
		}
	}
	head, err := l.Sync()
	if err != nil {
		return provenance.Head{}, appended, err
	}
	return head, appended, nil
}

// VerifySummary reports what a successful ledger verification covered.
type VerifySummary struct {
	Entries int
	Root    string
}

// VerifyLedger is the full `mirza-sweep verify` check over a ledger
// directory: the provenance layer's byte-level verification (entry log,
// record hashes, Merkle root, every inclusion proof) plus the
// sweep-level binding that each record is a clean canonical run
// manifest answering for its entry's key — config hash, seed and fault
// plan included. Any flipped byte anywhere fails loudly.
func VerifyLedger(dir string) (VerifySummary, error) {
	l, err := provenance.Open(dir)
	if err != nil {
		return VerifySummary{}, err
	}
	if err := l.Verify(); err != nil {
		return VerifySummary{}, err
	}
	for _, e := range l.Entries() {
		b, err := l.Record(e.Seq)
		if err != nil {
			return VerifySummary{}, err
		}
		var m telemetry.RunManifest
		if err := json.Unmarshal(b, &m); err != nil {
			return VerifySummary{}, fmt.Errorf("sweep: entry %d (%s): record is not a run manifest: %w", e.Seq, e.Key, err)
		}
		if got := fmt.Sprintf("%s-%d", m.ConfigHash, m.Seed); got != e.Key {
			return VerifySummary{}, fmt.Errorf("sweep: entry %d: manifest answers for key %s, ledger says %s", e.Seq, got, e.Key)
		}
		if telemetry.ConfigHash(m.Config) != m.ConfigHash {
			return VerifySummary{}, fmt.Errorf("sweep: entry %d (%s): manifest config does not hash to its config_hash", e.Seq, e.Key)
		}
		if m.Degraded {
			return VerifySummary{}, fmt.Errorf("sweep: entry %d (%s): degraded-fidelity manifest in the ledger", e.Seq, e.Key)
		}
	}
	return VerifySummary{Entries: l.Len(), Root: l.Root().String()}, nil
}

// Table renders the ledger as a deterministic markdown sweep table: one
// row per entry in seq order, the footer carrying the Merkle root. The
// rendering is a pure function of the ledger contents, so tables from
// sweeps at different worker counts are byte-identical.
func Table(l *provenance.Ledger) (string, error) {
	var sb strings.Builder
	sb.WriteString("| seq | shard | seed | fault plan | config | leaf |\n")
	sb.WriteString("|----:|-------|-----:|------------|--------|------|\n")
	for _, e := range l.Entries() {
		b, err := l.Record(e.Seq)
		if err != nil {
			return "", err
		}
		var m telemetry.RunManifest
		if err := json.Unmarshal(b, &m); err != nil {
			return "", fmt.Errorf("sweep: entry %d: %w", e.Seq, err)
		}
		plan := m.FaultPlan
		if plan == "" {
			plan = "—"
		}
		fmt.Fprintf(&sb, "| %d | %s | %d | %s | `%.12s` | `%.12s` |\n",
			e.Seq, e.Shard, m.Seed, plan, m.ConfigHash, e.Leaf)
	}
	head := l.Head()
	root := head.Root
	if root == "" {
		root = l.Root().String()
	}
	fmt.Fprintf(&sb, "\nLedger root: `%s` over %d entries — every row provable with `mirza-sweep prove`, the whole ledger with `mirza-sweep verify`.\n",
		root, l.Len())
	return sb.String(), nil
}
