package tenant

import (
	"fmt"

	"mirza/internal/trace"
)

// Hammer generator geometry: the attacker allocates one 512MB superblock
// (the vmap contiguity unit) and hammers 256KB row-groups inside it. Each
// group is one DRAM row index across all banks, so alternating groups
// forces a row conflict — an activation — on every access to a bank.
const (
	hammerFootprint = 512 << 20
	groupLines      = 256 * 1024 / trace.LineBytes // lines per row-group
	groupsPerSuper  = hammerFootprint / (256 * 1024)
)

// Hammer is the attacker VM's memory kernel: an endless max-rate stream
// (Gap 0 — a hammer loop is nothing but misses) rotating over a fixed set
// of row-groups of the attacker's own virtual superblock. Translation
// preserves superblock offsets, so virtual group 0 is the physical first
// row of the attacker's allocation and group 2047 the last: AttackEdge
// needs no knowledge of the physical layout to sit right next to other
// tenants' memory.
type Hammer struct {
	name   string
	groups []uint64 // virtual row-group indices under rotation
	idx    int
	off    uint64 // line offset within the group, advanced per rotation
}

var _ trace.Generator = (*Hammer)(nil)

// NewHammer builds the hammer stream for one attacker core. kind is
// AttackEdge or AttackDouble; core offsets the column phase so threads of
// the attacker VM do not replay byte-identical streams.
func NewHammer(kind string, core int) *Hammer {
	h := &Hammer{
		name: fmt.Sprintf("attack=%s#%d", kind, core),
		off:  uint64(core*64) % groupLines,
	}
	switch kind {
	case AttackDouble:
		// Pairs (k, k+256) share a subarray two physical rows apart
		// (256 groups = 2 rows of the 128-group stride): double-sided
		// pressure on the attacker's own interior rows.
		for k := uint64(0); k < 4; k++ {
			h.groups = append(h.groups, k, k+256)
		}
	default: // AttackEdge
		// The first and last rows of the allocation: their outer
		// neighbours belong to whoever owns the adjacent superblocks.
		for k := uint64(0); k < 4; k++ {
			h.groups = append(h.groups, k, groupsPerSuper-1-k)
		}
	}
	return h
}

// Name implements trace.Generator.
func (h *Hammer) Name() string { return h.name }

// FootprintBytes pins the attacker's allocation to one full superblock.
func (h *Hammer) FootprintBytes() uint64 { return hammerFootprint }

// Next implements trace.Generator: back-to-back reads rotating over the
// target groups; the column phase advances each full rotation so the
// stream touches fresh lines while staying in the same rows.
func (h *Hammer) Next(op *trace.Op) {
	g := h.groups[h.idx]
	op.Gap = 0
	op.Line = g*groupLines + h.off
	op.Write = false
	h.idx++
	if h.idx == len(h.groups) {
		h.idx = 0
		h.off = (h.off + 4) % groupLines
	}
}
