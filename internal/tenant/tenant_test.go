package tenant

import (
	"reflect"
	"strings"
	"testing"

	"mirza/internal/dram"
	"mirza/internal/trace"
	"mirza/internal/track"
	_ "mirza/internal/track/policies"
	"mirza/internal/vmap"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
		cores   []int
		names   []string
	}{
		{in: DefaultSpec, cores: []int{6, 2}, names: []string{"xz", "attack=edge"}},
		{in: "xz", cores: []int{1}, names: []string{"xz"}},
		{in: "xz:2+mcf:4+attack=double:2", cores: []int{2, 4, 2}, names: []string{"xz", "mcf", "attack=double"}},
		{in: " xz:1 + attack=edge:1 ", cores: []int{1, 1}, names: []string{"xz", "attack=edge"}},
		{in: "", wantErr: "empty spec"},
		{in: "nosuchworkload:2", wantErr: "nosuchworkload"},
		{in: "xz:0", wantErr: "bad core count"},
		{in: "xz:-1", wantErr: "bad core count"},
		{in: "xz:two", wantErr: "bad core count"},
		{in: "attack=sideways:1", wantErr: "unknown attack kind"},
		{in: "attack=edge:1+attack=double:1", wantErr: "more than one attacker"},
	}
	for _, tc := range cases {
		s, err := Parse(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Parse(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		var cores []int
		for _, tn := range s.Tenants {
			cores = append(cores, tn.Cores)
		}
		if !reflect.DeepEqual(cores, tc.cores) || !reflect.DeepEqual(s.Names(), tc.names) {
			t.Errorf("Parse(%q) = %v/%v want %v/%v", tc.in, cores, s.Names(), tc.cores, tc.names)
		}
		// Canonical round-trip.
		again, err := Parse(s.String())
		if err != nil || again.String() != s.String() {
			t.Errorf("Parse(%q) canonical round-trip: %q -> %q (%v)", tc.in, s.String(), again.String(), err)
		}
	}
}

func TestGeneratorsLayout(t *testing.T) {
	s, err := Parse("xz:2+attack=edge:2")
	if err != nil {
		t.Fatal(err)
	}
	gens, asids, err := s.Generators(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 4 || !reflect.DeepEqual(asids, []int{0, 0, 1, 1}) {
		t.Fatalf("gens=%d asids=%v", len(gens), asids)
	}
	if gens[0].Name() != "xz" || !strings.HasPrefix(gens[2].Name(), "attack=edge#") {
		t.Fatalf("names %q %q", gens[0].Name(), gens[2].Name())
	}
	if s.TotalCores() != 4 || s.Attacker() != 1 {
		t.Fatalf("TotalCores=%d Attacker=%d", s.TotalCores(), s.Attacker())
	}
	if got := s.CoreLayout(); !reflect.DeepEqual(got, []int{0, 0, 1, 1}) {
		t.Fatalf("CoreLayout=%v", got)
	}

	// Solo generators replay the combined run's streams exactly.
	solo, soloASIDs, err := s.SoloGenerators(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 2 || !reflect.DeepEqual(soloASIDs, []int{0, 0}) {
		t.Fatalf("solo gens=%d asids=%v", len(solo), soloASIDs)
	}
	var a, b trace.Op
	for i := 0; i < 100; i++ {
		gens[1].Next(&a)
		solo[1].Next(&b)
		if a != b {
			t.Fatalf("op %d: combined %+v != solo %+v", i, a, b)
		}
	}
}

func TestHammerStream(t *testing.T) {
	h := NewHammer(AttackEdge, 0)
	if h.FootprintBytes() != 512<<20 {
		t.Fatalf("footprint %d", h.FootprintBytes())
	}
	var op trace.Op
	seenGroups := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		h.Next(&op)
		if op.Gap != 0 || op.Write {
			t.Fatalf("op %d = %+v, want max-rate read", i, op)
		}
		if op.Line*trace.LineBytes >= h.FootprintBytes() {
			t.Fatalf("op %d line %d outside the footprint", i, op.Line)
		}
		seenGroups[op.Line/groupLines] = true
	}
	// Edge kind touches first and last groups of the superblock.
	if !seenGroups[0] || !seenGroups[groupsPerSuper-1] {
		t.Fatalf("edge hammer groups %v miss the allocation edges", seenGroups)
	}
	// Deterministic: same construction, same stream.
	h2, h3 := NewHammer(AttackDouble, 1), NewHammer(AttackDouble, 1)
	var x, y trace.Op
	for i := 0; i < 1000; i++ {
		h2.Next(&x)
		h3.Next(&y)
		if x != y {
			t.Fatalf("hammer stream not deterministic at op %d", i)
		}
	}
}

func TestBuildLayoutAttribution(t *testing.T) {
	s, err := Parse(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	g := dram.Default()
	l, err := BuildLayout(s, g.CapacityBytes(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	total := g.CapacityBytes() / vmap.SuperBytes
	if got := uint64(l.Mapper.MappedBlocks()); got < uint64(0.75*float64(total)) {
		t.Fatalf("occupancy %d/%d below fill", got, total)
	}
	b := l.AttackedBlock
	if b == 0 || b == total-1 {
		t.Fatalf("attacked block %d at physical edge", b)
	}
	if owner, ok := l.Mapper.OwnerOf(b * vmap.SuperBytes); !ok || owner != s.Attacker() {
		t.Fatalf("attacked block %d not attacker-owned (owner %d ok=%v)", b, owner, ok)
	}
	// Attribution: rows inside the attacked block are the attacker's,
	// rows of the neighbouring blocks are someone else's.
	inRow := int(b) * rowsPerSuper
	if got := l.OwnerLabel(inRow); got != "attack=edge" {
		t.Fatalf("OwnerLabel(own row) = %q", got)
	}
	if got := l.OwnerLabel(inRow - 1); got == "attack=edge" {
		t.Fatalf("neighbour row attributed to the attacker")
	}
	// The loaded host guarantees at least one allocated neighbour class.
	left, right := l.OwnerLabel(inRow-1), l.OwnerLabel(int(b+1)*rowsPerSuper)
	if left == FreeLabel && right == FreeLabel {
		t.Fatalf("both neighbours free at 75%% occupancy: %q %q", left, right)
	}
}

// buildPolicy adapts a registry policy to the security config.
func buildPolicy(t *testing.T, name string, trhd int) (*track.Built, func(sink track.Sink) track.Mitigator) {
	t.Helper()
	b, err := track.Build(name, nil, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     trhd,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, func(sink track.Sink) track.Mitigator { return b.Factory()(0, sink) }
}

func TestRunSecurityAttribution(t *testing.T) {
	s, err := Parse(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	g := dram.Default()
	l, err := BuildLayout(s, g.CapacityBytes(), 0.75)
	if err != nil {
		t.Fatal(err)
	}

	run := func(policy string) *SecurityResult {
		b, factory := buildPolicy(t, policy, 1000)
		res, err := l.RunSecurity(SecurityConfig{
			Geometry:     g,
			Timing:       b.Timing(),
			Mapping:      dram.StridedR2SA,
			TRHD:         1000,
			Windows:      2,
			RFMEvery:     b.RFMBAT(),
			NewMitigator: factory,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return res
	}

	// Unprotected: the edge attack must escape across the VM boundary.
	none := run("none")
	if none.CrossFlips == 0 {
		t.Fatalf("unprotected edge attack produced no cross-VM flips: %+v (sim %s)", none, none.Sim)
	}
	for label := range none.FlipsByOwner {
		if label == "attack=edge" {
			continue
		}
		if label != "xz" && label != FillLabel && label != FreeLabel {
			t.Fatalf("unknown owner label %q", label)
		}
	}
	// Flip counts agree with the underlying sim.
	sum := 0
	for _, n := range none.FlipsByOwner {
		sum += n
	}
	if sum != none.Sim.Flips || sum != none.CrossFlips+none.SelfFlips {
		t.Fatalf("attribution mismatch: owners=%d sim=%d cross+self=%d",
			sum, none.Sim.Flips, none.CrossFlips+none.SelfFlips)
	}

	// A real mitigation keeps every tenant flip-free.
	prac := run("prac")
	if prac.CrossFlips != 0 || prac.SelfFlips != 0 {
		t.Fatalf("prac leaked flips: %+v", prac.FlipsByOwner)
	}

	// Determinism: same layout + policy, same outcome.
	again := run("none")
	if !reflect.DeepEqual(again.FlipsByOwner, none.FlipsByOwner) || again.Sim != none.Sim {
		t.Fatalf("security run not deterministic:\n%+v\n%+v", none, again)
	}
}
