package tenant

import (
	"fmt"

	"mirza/internal/attack"
	"mirza/internal/dram"
	"mirza/internal/track"
	"mirza/internal/trace"
	"mirza/internal/vmap"
)

// rowGroupBytes is the physical granularity that carries one DRAM row
// index across all banks under the MOP4 layout: row r of every bank holds
// bytes [r*256KB, (r+1)*256KB).
const rowGroupBytes = 256 * 1024

// rowsPerSuper is how many consecutive row indices one vmap superblock
// covers.
const rowsPerSuper = vmap.SuperBytes / rowGroupBytes

// FillLabel is the owner label of background-VM memory, FreeLabel of
// unallocated memory.
const (
	FillLabel = "other-vm"
	FreeLabel = "free"
)

// Layout is the physical placement of a scenario on a loaded host: every
// tenant's footprint first-touch-allocated in spec order, then background
// VMs (the fill tenant) up to the requested occupancy — the steady state
// of a long-running multi-VM machine, where the attacker's allocation has
// real neighbours.
type Layout struct {
	Spec     *Spec
	Mapper   *vmap.Mapper
	FillASID int

	// AttackedBlock is the attacker-owned superblock the security run
	// hammers: the interior block whose physical neighbours are most
	// interesting (victim-owned first, then background, then free).
	AttackedBlock uint64
}

// BuildLayout places the scenario into a physical memory of
// capacityBytes filled to fillFrac occupancy. The spec must contain an
// attacker.
func BuildLayout(s *Spec, capacityBytes uint64, fillFrac float64) (*Layout, error) {
	ai := s.Attacker()
	if ai < 0 {
		return nil, fmt.Errorf("tenant: spec %q has no attacker", s)
	}
	l := &Layout{
		Spec:     s,
		Mapper:   vmap.NewMapper(capacityBytes),
		FillASID: len(s.Tenants),
	}
	for ti, t := range s.Tenants {
		fp := uint64(hammerFootprint)
		if !t.IsAttacker() {
			spec, err := trace.Lookup(t.Workload)
			if err != nil {
				return nil, err
			}
			mb := spec.FootprintMB
			if mb <= 0 {
				mb = 256 // trace.NewSynthetic's default
			}
			fp = uint64(mb) << 20
		}
		for off := uint64(0); off < fp; off += vmap.SuperBytes {
			l.Mapper.Translate(ti, off)
		}
	}
	totalBlocks := capacityBytes / vmap.SuperBytes
	target := uint64(float64(totalBlocks) * fillFrac)
	for v := uint64(0); uint64(l.Mapper.MappedBlocks()) < target && v < totalBlocks; v++ {
		l.Mapper.Translate(l.FillASID, v*vmap.SuperBytes)
	}

	l.AttackedBlock = l.pickAttackedBlock(ai, totalBlocks)
	return l, nil
}

// pickAttackedBlock scans the attacker's interior blocks for the one with
// the most valuable physical neighbours; deterministic given the spec.
func (l *Layout) pickAttackedBlock(attacker int, totalBlocks uint64) uint64 {
	blocks := l.Mapper.BlocksOf(attacker)
	best, bestScore := blocks[0], -1
	for _, b := range blocks {
		if b == 0 || b == totalBlocks-1 {
			continue // edge of physical memory: one neighbour missing
		}
		score := 0
		for _, nb := range []uint64{b - 1, b + 1} {
			switch owner, ok := l.Mapper.OwnerOf(nb * vmap.SuperBytes); {
			case ok && owner != attacker && owner != l.FillASID:
				score += 4 // a named victim VM next door
			case ok && owner == l.FillASID:
				score += 2 // a background VM
			case !ok:
				score++ // free (allocatable to a future victim)
			}
		}
		if score > bestScore {
			best, bestScore = b, score
		}
	}
	return best
}

// Neighbours returns the owner labels of the superblocks physically
// adjacent to the attacked block — the tenants the edge attack reaches.
func (l *Layout) Neighbours() (left, right string) {
	return l.OwnerLabel(int(l.AttackedBlock)*rowsPerSuper - 1),
		l.OwnerLabel(int(l.AttackedBlock+1) * rowsPerSuper)
}

// OwnerLabel names the tenant owning the given DRAM row index.
func (l *Layout) OwnerLabel(row int) string {
	asid, ok := l.Mapper.OwnerOf(uint64(row) * rowGroupBytes)
	switch {
	case !ok:
		return FreeLabel
	case asid == l.FillASID:
		return FillLabel
	default:
		return l.Spec.Tenants[asid].Name
	}
}

// SecurityConfig parameterizes a per-policy inter-VM security run.
type SecurityConfig struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	Mapping  dram.R2SAMapping
	Bank     int
	TRHD     int // per-row double-sided flip threshold
	Windows  int // refresh windows to run
	RFMEvery int
	// NewMitigator builds the defense under test (already fault-wrapped
	// if the caller injects faults).
	NewMitigator func(sink track.Sink) track.Mitigator
}

// SecurityResult is one attack run with per-owner flip attribution.
type SecurityResult struct {
	Pattern string
	Sim     attack.BankSimResult
	// FlipsByOwner counts flip episodes by the label of the tenant
	// owning the flipped victim row.
	FlipsByOwner map[string]int
	// CrossFlips are flips in memory the attacker does not own — escapes
	// across the VM boundary (victim VMs, background VMs, or free memory
	// a future VM would inherit). SelfFlips landed in the attacker's own
	// allocation.
	CrossFlips int
	SelfFlips  int
}

// RunSecurity hammers the attacked block's rows with the spec's attack
// kind against the given mitigation and attributes every flip episode to
// the owner of the flipped row.
func (l *Layout) RunSecurity(cfg SecurityConfig) (*SecurityResult, error) {
	ai := l.Spec.Attacker()
	if ai < 0 {
		return nil, fmt.Errorf("tenant: layout has no attacker")
	}
	kind := l.Spec.Tenants[ai].Attack

	// The attacked block's rows in subarray 0: physical indices
	// [block*rowsPerSuper/128, +16) — contiguous, with the outer
	// neighbours owned by the adjacent superblocks' tenants.
	g := cfg.Geometry
	loIdx := int(l.AttackedBlock) * rowsPerSuper / g.Subarrays()
	hiIdx := loIdx + rowsPerSuper/g.Subarrays() - 1
	var pattern *attack.Rotation
	switch kind {
	case AttackDouble:
		pattern = attack.NewRotation("intervm-double",
			g.RowAt(cfg.Mapping, 0, loIdx), g.RowAt(cfg.Mapping, 0, loIdx+2))
	default: // AttackEdge
		pattern = attack.NewRotation("intervm-edge",
			g.RowAt(cfg.Mapping, 0, loIdx), g.RowAt(cfg.Mapping, 0, hiIdx))
	}

	sim := attack.NewBankSim(attack.BankSimConfig{
		Geometry:     g,
		Timing:       cfg.Timing,
		Mapping:      cfg.Mapping,
		Bank:         cfg.Bank,
		NewMitigator: cfg.NewMitigator,
		RFMEvery:     cfg.RFMEvery,
		RowThreshold: func(int) int { return cfg.TRHD },
	})
	res := &SecurityResult{
		Pattern:      pattern.Name(),
		FlipsByOwner: make(map[string]int),
	}
	attackerName := l.Spec.Tenants[ai].Name
	sim.Disturbance().SetFlipObserver(func(row int) {
		label := l.OwnerLabel(row)
		res.FlipsByOwner[label]++
		if label == attackerName {
			res.SelfFlips++
		} else {
			res.CrossFlips++
		}
	})
	windows := cfg.Windows
	if windows <= 0 {
		windows = 2
	}
	res.Sim = sim.RunWindows(pattern, windows)
	return res, nil
}
