// Package tenant models multi-tenant (inter-VM) RowHammer scenarios: an
// attacker VM hammering its own memory alongside victim VMs running
// ordinary workloads, all sharing banks through the first-touch page
// mapper (internal/vmap).
//
// A tenant is one address space (ASID). Its cores share a virtual layout,
// so a VM's footprint occupies a set of 512MB physical superblocks; under
// the MOP4 layout each 256KB-aligned slice of physical memory is one DRAM
// row index across all banks, so every (bank, row) is owned by exactly
// one tenant — which is what lets a disturbed victim row be attributed to
// the tenant whose data lives there (a cross-VM escape) or to the
// attacker itself (a self flip).
//
// The attacker needs no channel back to physical addresses: superblock
// translation preserves offsets, so hammering the first and last rows of
// its own virtual superblocks lands exactly on the physical edges of its
// allocation — the rows adjacent to other tenants' memory.
package tenant

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mirza/internal/trace"
	"mirza/internal/vmap"
)

// Attack kinds accepted in a spec's "attack=<kind>" entry.
const (
	// AttackEdge hammers the outermost rows of the attacker's own
	// allocation: the disturbed neighbours on the far side belong to
	// whoever owns the adjacent physical superblocks — the cross-VM
	// escape channel.
	AttackEdge = "edge"
	// AttackDouble hammers row pairs two apart inside the allocation,
	// the classic double-sided pattern against the attacker's own rows
	// (maximum tracker pressure, self-owned victims).
	AttackDouble = "double"
)

// Tenant is one VM of a scenario.
type Tenant struct {
	Name     string // display label: workload name or "attack=<kind>"
	Workload string // workload tenants: a trace.Lookup name
	Attack   string // attacker tenants: AttackEdge or AttackDouble
	Cores    int    // cores this VM runs on
}

// IsAttacker reports whether the tenant is the hammering VM.
func (t Tenant) IsAttacker() bool { return t.Attack != "" }

// Spec is a parsed multi-tenant scenario. The tenant index is the ASID.
type Spec struct {
	Tenants []Tenant
}

// DefaultSpec is the scenario used when -tenants gives none: a 6-core
// victim VM running xz next to a 2-core attacker hammering its own
// allocation's edges.
const DefaultSpec = "xz:6+attack=edge:2"

// Parse parses a scenario spec: '+'-separated tenants, each
// "workload[:cores]" or "attack=<kind>[:cores]" (cores default 1), e.g.
// "xz:6+attack=edge:2". At most one attacker is allowed (the attribution
// model distinguishes attacker-owned from victim-owned rows).
func Parse(s string) (*Spec, error) {
	spec := &Spec{}
	attackers := 0
	for _, ent := range strings.Split(s, "+") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		t := Tenant{Cores: 1}
		if i := strings.LastIndex(ent, ":"); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(ent[i+1:]))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("tenant: bad core count in %q (want name:cores with cores >= 1)", ent)
			}
			t.Cores = n
			ent = strings.TrimSpace(ent[:i])
		}
		if kind, ok := strings.CutPrefix(ent, "attack="); ok {
			if kind != AttackEdge && kind != AttackDouble {
				return nil, fmt.Errorf("tenant: unknown attack kind %q (want %s or %s)", kind, AttackEdge, AttackDouble)
			}
			t.Attack = kind
			t.Name = "attack=" + kind
			attackers++
			if attackers > 1 {
				return nil, fmt.Errorf("tenant: more than one attacker in %q", s)
			}
		} else {
			if _, err := trace.Lookup(ent); err != nil {
				return nil, fmt.Errorf("tenant: %w", err)
			}
			t.Workload = ent
			t.Name = ent
		}
		spec.Tenants = append(spec.Tenants, t)
	}
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: empty spec %q", s)
	}
	if len(spec.Tenants) > vmap.MaxASID {
		return nil, fmt.Errorf("tenant: %d tenants exceed the %d address-space limit", len(spec.Tenants), vmap.MaxASID)
	}
	return spec, nil
}

// String renders the spec canonically: re-parsing it yields an equal
// spec, and equal specs render identically (the serve cache keys on it).
func (s *Spec) String() string {
	parts := make([]string, len(s.Tenants))
	for i, t := range s.Tenants {
		parts[i] = fmt.Sprintf("%s:%d", t.Name, t.Cores)
	}
	return strings.Join(parts, "+")
}

// TotalCores is the core count of the combined system.
func (s *Spec) TotalCores() int {
	n := 0
	for _, t := range s.Tenants {
		n += t.Cores
	}
	return n
}

// Attacker returns the attacker tenant's index (ASID), or -1.
func (s *Spec) Attacker() int {
	for i, t := range s.Tenants {
		if t.IsAttacker() {
			return i
		}
	}
	return -1
}

// CoreLayout returns, per core of the combined system, the owning tenant
// index. Cores are laid out in spec order (tenant 0's cores first).
func (s *Spec) CoreLayout() []int {
	var layout []int
	for i, t := range s.Tenants {
		for c := 0; c < t.Cores; c++ {
			layout = append(layout, i)
		}
	}
	return layout
}

// Generators builds the combined system's per-core generator and ASID
// slices. Workload tenants run one seeded copy of their workload per core
// (the VM's threads), all in the tenant's address space; the attacker's
// cores run the hammer stream. Seeds derive from (seed, tenant, core) so
// the streams are identical regardless of how many tenants run alongside.
func (s *Spec) Generators(seed uint64) (gens []trace.Generator, asids []int, err error) {
	for ti, t := range s.Tenants {
		tg, err := s.tenantGens(ti, t, seed)
		if err != nil {
			return nil, nil, err
		}
		gens = append(gens, tg...)
		for range tg {
			asids = append(asids, ti)
		}
	}
	return gens, asids, nil
}

// SoloGenerators builds tenant ti's cores alone (its no-neighbours
// baseline): same generators and address space as in the combined run.
func (s *Spec) SoloGenerators(ti int, seed uint64) (gens []trace.Generator, asids []int, err error) {
	if ti < 0 || ti >= len(s.Tenants) {
		return nil, nil, fmt.Errorf("tenant: index %d out of range", ti)
	}
	tg, err := s.tenantGens(ti, s.Tenants[ti], seed)
	if err != nil {
		return nil, nil, err
	}
	asids = make([]int, len(tg))
	for i := range asids {
		asids[i] = ti
	}
	return tg, asids, nil
}

func (s *Spec) tenantGens(ti int, t Tenant, seed uint64) ([]trace.Generator, error) {
	gens := make([]trace.Generator, t.Cores)
	for c := 0; c < t.Cores; c++ {
		coreSeed := seed + uint64(ti)*0x51eb851f + uint64(c)*0x9E3779B9
		if t.IsAttacker() {
			gens[c] = NewHammer(t.Attack, c)
		} else {
			spec, err := trace.Lookup(t.Workload)
			if err != nil {
				return nil, err
			}
			gens[c] = trace.NewSynthetic(spec, coreSeed)
		}
	}
	return gens, nil
}

// MLPFor returns the MSHR budget for each core: workload tenants use
// their workload's implied memory-level parallelism; attacker cores run
// wide open (16) — a hammer kernel is nothing but outstanding misses.
func (s *Spec) MLPFor() (int, error) {
	mlp := 0
	for _, t := range s.Tenants {
		n := 16
		if !t.IsAttacker() {
			spec, err := trace.Lookup(t.Workload)
			if err != nil {
				return 0, err
			}
			n = spec.MLPLimit()
		}
		if n > mlp {
			mlp = n
		}
	}
	return mlp, nil
}

// Names returns the tenant display names in spec order.
func (s *Spec) Names() []string {
	out := make([]string, len(s.Tenants))
	for i, t := range s.Tenants {
		out[i] = t.Name
	}
	return out
}

// SortedNames returns the names sorted (for deterministic map renders).
func (s *Spec) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
