package replay

import (
	"testing"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/trace"
	"mirza/internal/track"
)

func gens(t *testing.T, name string, n int) []trace.Generator {
	t.Helper()
	spec, err := trace.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := trace.PerCore(spec, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestReplayBasics(t *testing.T) {
	r, err := NewRunner(Config{IPS: 8e9}, gens(t, "mcf", 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	var observed int64
	r.Run(2*dram.Millisecond, func(sub, bank, row int, now dram.Time) {
		observed++
	})
	st := r.Stats()
	var acts, refs int64
	for _, s := range st {
		acts += s.ACTs
		refs += s.REFs
	}
	if acts == 0 || observed != acts {
		t.Fatalf("acts=%d observed=%d", acts, observed)
	}
	// REF cadence: 2ms / 3.9us per sub-channel.
	wantREFs := int64(2 * (2 * dram.Millisecond) / dram.DDR5().TREFI)
	if refs < wantREFs-2 || refs > wantREFs+2 {
		t.Errorf("REFs = %d, want ~%d", refs, wantREFs)
	}
	if r.Now() != 2*dram.Millisecond {
		t.Errorf("now = %v", r.Now())
	}
}

func TestReplayActRateTracksIPS(t *testing.T) {
	// Doubling IPS should roughly double activations per unit time.
	run := func(ips float64) int64 {
		r, err := NewRunner(Config{IPS: ips}, gens(t, "mcf", 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Run(dram.Millisecond, nil)
		var acts int64
		for _, s := range r.Stats() {
			acts += s.ACTs
		}
		return acts
	}
	a := run(4e9)
	b := run(8e9)
	ratio := float64(b) / float64(a)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("ACT ratio for 2x IPS = %.2f, want ~2", ratio)
	}
}

func TestReplayDrivesMitigator(t *testing.T) {
	cfg, _ := core.ForTRHD(1000)
	cfg.FTH = 50 // tiny so alerts occur quickly
	g := dram.Default()
	mits := make([]track.Mitigator, g.SubChannels)
	for i := range mits {
		c := cfg
		c.Seed = uint64(i)
		mits[i] = core.MustNew(c, track.NopSink{})
	}
	r, err := NewRunner(Config{IPS: 8e9}, gens(t, "fotonik3d", 8), mits)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(4*dram.Millisecond, nil)
	var alerts int64
	for _, s := range r.Stats() {
		alerts += s.Alerts
	}
	if alerts == 0 {
		t.Error("tiny-FTH MIRZA should have alerted under fotonik3d")
	}
	m := mits[0].(*core.Mirza)
	if m.Stats.ACTs == 0 || m.Stats.Mitigations == 0 {
		t.Errorf("mitigator unused: %+v", m.Stats)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewRunner(Config{}, gens(t, "mcf", 2), nil); err == nil {
		t.Error("zero IPS must be rejected")
	}
	if _, err := NewRunner(Config{IPS: 1e9}, nil, nil); err == nil {
		t.Error("no generators must be rejected")
	}
	if _, err := NewRunner(Config{IPS: 1e9}, gens(t, "mcf", 1), make([]track.Mitigator, 5)); err == nil {
		t.Error("mitigator count mismatch must be rejected")
	}
}
