package replay

import (
	"testing"

	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/trace"
)

// TestReplayMatchesTimingSimulator is the cross-check that justifies the
// hybrid methodology (DESIGN.md §4): over the same workload, the replayer's
// activation rate must track the cycle-level simulator's within the
// open-row coalescing model's tolerance.
func TestReplayMatchesTimingSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, name := range []string{"mcf", "fotonik3d"} {
		spec, err := trace.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// Timing simulator run.
		gens, _ := trace.PerCore(spec, 8, 5)
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Core: cpu.CoreConfig{MSHR: spec.MLPLimit()},
			Mem:  mem.Config{Mapping: dram.StridedR2SA},
		}, gens)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 500 * dram.Microsecond
		sys.Run(horizon)
		st := sys.Channel.Stats()
		var ips float64
		for _, c := range sys.Cores {
			ips += float64(c.Retired())
		}
		ips /= float64(horizon) / 1e12
		timingACTRate := float64(st.ACTs) / (float64(horizon) / 1e12)

		// Replay run at the measured instruction rate.
		gens2, _ := trace.PerCore(spec, 8, 5)
		r, err := NewRunner(Config{IPS: ips}, gens2, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Run(horizon, nil)
		var acts int64
		for _, s := range r.Stats() {
			acts += s.ACTs
		}
		replayACTRate := float64(acts) / (float64(horizon) / 1e12)

		ratio := replayACTRate / timingACTRate
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("%s: replay ACT rate %.0f/s vs timing %.0f/s (ratio %.2f)",
				name, replayACTRate, timingACTRate, ratio)
		}
	}
}
