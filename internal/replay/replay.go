// Package replay provides a fast, timing-free activation-stream replayer.
//
// The full-system simulator (internal/cpu + internal/mem) is cycle-level
// and therefore expensive for statistics that need one or more complete
// 32ms refresh windows (coarse-grained-filter escape rates, ACTs/subarray
// distributions, ALERT rates, refresh-power overheads). The replayer
// reproduces just the parts those statistics depend on: the per-workload
// activation stream (generators + page mapping + MOP4 decomposition + an
// open-row coalescing filter) on a time axis set by the workload's
// measured instruction rate, interleaved with the REF walk, driving the
// same track.Mitigator implementations as the timing simulator. A short
// timing-simulation run calibrates the instruction rate; the replayer then
// covers refresh windows at a small fraction of the cost, and its warmed
// mitigator state can be carried back into the timing simulator.
package replay

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/trace"
	"mirza/internal/track"
	"mirza/internal/vmap"
)

// Config parameterizes a replay run.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	// IPS is the aggregate instruction rate of all cores (from a timing
	// calibration run); it sets the replay's time axis.
	IPS float64
	// RowOpenWindow is the open-row coalescing window: an access to the
	// row most recently opened in its bank within this window is treated
	// as a row hit rather than a new activation. Default 150ns,
	// calibrated against the timing simulator's ACT rates.
	RowOpenWindow dram.Time
	// ASIDs assigns each core an address space (see cpu.SystemConfig).
	// Nil defaults to one private space per core.
	ASIDs []int
}

func (c *Config) setDefaults() error {
	if c.Geometry.SubChannels == 0 {
		c.Geometry = dram.Default()
	}
	if c.Timing.TRC == 0 {
		c.Timing = dram.DDR5()
	}
	if c.RowOpenWindow == 0 {
		c.RowOpenWindow = 150 * dram.Nanosecond
	}
	if c.IPS <= 0 {
		return fmt.Errorf("replay: IPS must be positive, got %v", c.IPS)
	}
	return c.Geometry.Validate()
}

// Stats accumulates replay counters per sub-channel.
type Stats struct {
	Accesses int64
	ACTs     int64
	REFs     int64
	Alerts   int64
}

// Observer receives every activation the replay produces.
type Observer func(sub, bank, row int, now dram.Time)

type bankRow struct {
	row    int
	lastAt dram.Time
}

// Runner replays workload activation streams into mitigators.
type Runner struct {
	cfg    Config
	gens   []trace.Generator
	mapper *vmap.Mapper
	mits   []track.Mitigator
	asids  []int

	coreInstr []float64 // cumulative instructions per core
	coreOp    []trace.Op
	perCore   float64 // per-core instructions per second

	banks  [][]bankRow // [sub][bank]
	refDue []dram.Time
	refIdx []int

	now   dram.Time
	stats []Stats
}

// NewRunner builds a replayer over one generator per core. mits supplies
// one mitigator per sub-channel (nil entries run unprotected).
func NewRunner(cfg Config, gens []trace.Generator, mits []track.Mitigator) (*Runner, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("replay: need at least one generator")
	}
	if mits == nil {
		mits = make([]track.Mitigator, cfg.Geometry.SubChannels)
	}
	if len(mits) != cfg.Geometry.SubChannels {
		return nil, fmt.Errorf("replay: %d mitigators for %d sub-channels", len(mits), cfg.Geometry.SubChannels)
	}
	asids := cfg.ASIDs
	if asids == nil {
		asids = make([]int, len(gens))
		for i := range asids {
			asids[i] = i
		}
	}
	if len(asids) != len(gens) {
		return nil, fmt.Errorf("replay: %d ASIDs for %d cores", len(asids), len(gens))
	}
	for _, a := range asids {
		if err := vmap.CheckASID(a); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	r := &Runner{
		cfg:       cfg,
		gens:      gens,
		mapper:    vmap.NewMapper(cfg.Geometry.CapacityBytes()),
		mits:      mits,
		asids:     asids,
		coreInstr: make([]float64, len(gens)),
		coreOp:    make([]trace.Op, len(gens)),
		perCore:   cfg.IPS / float64(len(gens)),
		refDue:    make([]dram.Time, cfg.Geometry.SubChannels),
		refIdx:    make([]int, cfg.Geometry.SubChannels),
		stats:     make([]Stats, cfg.Geometry.SubChannels),
	}
	r.banks = make([][]bankRow, cfg.Geometry.SubChannels)
	for sub := range r.banks {
		r.banks[sub] = make([]bankRow, cfg.Geometry.BanksPerSubChannel)
		for b := range r.banks[sub] {
			r.banks[sub][b].row = -1
		}
		r.refDue[sub] = cfg.Timing.TREFI
	}
	for c := range gens {
		// Model the init-phase sequential faulting (see cpu.System).
		if fp, ok := gens[c].(interface{ FootprintBytes() uint64 }); ok {
			for off := uint64(0); off < fp.FootprintBytes(); off += vmap.SuperBytes {
				r.mapper.Translate(asids[c], off)
			}
		}
		r.gens[c].Next(&r.coreOp[c])
		r.coreInstr[c] = float64(r.coreOp[c].Gap + 1)
	}
	return r, nil
}

// Now returns the replay clock.
func (r *Runner) Now() dram.Time { return r.now }

// Stats returns the per-sub-channel counters.
func (r *Runner) Stats() []Stats { return append([]Stats(nil), r.stats...) }

// Mitigators returns the attached mitigators.
func (r *Runner) Mitigators() []track.Mitigator { return r.mits }

// coreTime converts a core's cumulative instruction count to time.
func (r *Runner) coreTime(c int) dram.Time {
	return dram.Time(r.coreInstr[c] / r.perCore * 1e12)
}

// Run replays until the clock reaches the given absolute time. obs may be
// nil.
func (r *Runner) Run(until dram.Time, obs Observer) {
	g := r.cfg.Geometry
	for {
		// Next core event.
		c := 0
		tc := r.coreTime(0)
		for i := 1; i < len(r.coreInstr); i++ {
			if ti := r.coreTime(i); ti < tc {
				c, tc = i, ti
			}
		}
		if tc >= until {
			r.fireREFs(until)
			r.now = until
			return
		}
		r.fireREFs(tc)
		r.now = tc

		op := r.coreOp[c]
		phys := r.mapper.Translate(r.asids[c], op.Line*trace.LineBytes)
		addr := g.Decompose(phys)
		st := &r.stats[addr.SubChannel]
		st.Accesses++

		bk := &r.banks[addr.SubChannel][addr.Bank]
		isACT := bk.row != addr.Row || tc-bk.lastAt > r.cfg.RowOpenWindow
		bk.row, bk.lastAt = addr.Row, tc
		if isACT {
			st.ACTs++
			if mit := r.mits[addr.SubChannel]; mit != nil {
				mit.OnActivate(addr.Bank, addr.Row, tc)
				if mit.WantsALERT() {
					st.Alerts++
					mit.ServiceALERT(tc)
				}
			}
			if obs != nil {
				obs(addr.SubChannel, addr.Bank, addr.Row, tc)
			}
		}

		// Advance the core to its next operation.
		r.gens[c].Next(&r.coreOp[c])
		r.coreInstr[c] += float64(r.coreOp[c].Gap + 1)
	}
}

func (r *Runner) fireREFs(upTo dram.Time) {
	for sub := range r.refDue {
		for r.refDue[sub] <= upTo {
			r.stats[sub].REFs++
			if mit := r.mits[sub]; mit != nil {
				mit.OnREF(r.refIdx[sub], r.refDue[sub]) // 0-based
			}
			r.refIdx[sub]++
			r.refDue[sub] += r.cfg.Timing.TREFI
		}
	}
}
