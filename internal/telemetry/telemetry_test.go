package telemetry

import (
	"math"
	"sync"
	"testing"

	"mirza/internal/stats"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	c := r.Counter("acts_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat", 4, 1)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(2.5)
	if c.Value() != 0 || g.Value() != 0 || h.Total() != 0 {
		t.Error("nil handles must discard updates")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if h.Snapshot().Total() != 0 {
		t.Error("nil histogram snapshot must be empty")
	}
}

func TestHandleIdentity(t *testing.T) {
	r := New()
	a := r.Counter("acts_total", L("sub", "0"))
	b := r.Counter("acts_total", L("sub", "0"))
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	other := r.Counter("acts_total", L("sub", "1"))
	if a == other {
		t.Error("different labels must return different counters")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Errorf("counter = %d, want 3", a.Value())
	}
	// Label order must not matter.
	x := r.Gauge("g", L("a", "1"), L("b", "2"))
	y := r.Gauge("g", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label registration order must not create distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramShapeMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("h", 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram with a different shape must panic")
		}
	}()
	r.Histogram("h", 8, 1)
}

// TestHistogramMatchesStats pins the telemetry histogram's bucketing to
// stats.Histogram.Add: same observations, same buckets, including the
// non-finite clamping contract.
func TestHistogramMatchesStats(t *testing.T) {
	r := New()
	th := r.Histogram("h", 8, 1.0)
	sh := stats.NewHistogram(8, 1.0)
	obs := []float64{0, 0.5, 1, 3.7, 7, 100, -4, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, x := range obs {
		th.Observe(x)
		sh.Add(x)
	}
	got := th.Snapshot()
	if got.Total() != sh.Total() {
		t.Fatalf("total = %d, want %d", got.Total(), sh.Total())
	}
	for i := range sh.Counts {
		if got.Counts[i] != sh.Counts[i] {
			t.Errorf("bucket %d = %d, want %d (stats.Histogram parity)", i, got.Counts[i], sh.Counts[i])
		}
	}
	if q, want := got.Quantile(0.5), sh.Quantile(0.5); q != want {
		t.Errorf("median = %v, want %v", q, want)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race (make check) it proves handles and Snapshot are safe for
// concurrent use, and it checks the totals commute.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("acts_total")
			g := r.Gauge("busy")
			h := r.Histogram("lat", 16, 1, L("worker", string(rune('a'+w))))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 16))
				g.Add(-1)
				if i%100 == 0 {
					_ = r.Snapshot() // live endpoint racing the updates
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("acts_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced add/sub", got)
	}
	snap := r.Snapshot()
	var hTotal int64
	for _, h := range snap.Histograms {
		hTotal += h.Total
	}
	if hTotal != workers*perWorker {
		t.Errorf("histogram observations = %d, want %d", hTotal, workers*perWorker)
	}
}

func TestHistogramSum(t *testing.T) {
	r := New()
	h := r.Histogram("h", 4, 1)
	for _, x := range []float64{1, 2, 3.5, math.NaN(), math.Inf(1)} {
		h.Observe(x)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	// Non-finite observations count but do not pollute the sum.
	if got := snap.Histograms[0].Sum; got != 6.5 {
		t.Errorf("sum = %v, want 6.5", got)
	}
	if got := snap.Histograms[0].Total; got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
}
