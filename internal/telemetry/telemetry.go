// Package telemetry is the simulator's metrics layer: a dependency-free
// registry of atomic counters, gauges and fixed-bucket histograms, plus two
// exporters — a deterministic JSON RunManifest (manifest.go) and Prometheus
// text exposition (prometheus.go).
//
// Design constraints (DESIGN.md §10):
//
//   - Disabled means free. A nil *Registry is the disabled registry: every
//     constructor returns a nil handle and every handle method is nil-safe,
//     so instrumented code carries at most a pointer test on its hot path
//     and simulation output stays byte-identical to an uninstrumented run.
//   - Deterministic totals. Handles are updated with atomic adds, which
//     commute: parallel jobs folding into one shared registry produce the
//     same final values at any worker count. Metrics derived from
//     wall-clock time (job latencies, busy time) are registered through the
//     Wall* constructors and flagged, so deterministic consumers (golden
//     manifests, run-to-run diffs) can drop them — see Snapshot.Canonical.
//   - Live-readable. Snapshot may be called from an HTTP handler while
//     simulations run; it takes the registration lock only to walk the
//     metric list and reads values with atomic loads.
//
// Hot simulation loops do not push per-event atomics: layers accumulate in
// job-local plain counters (e.g. mem.Stats) and flush once into the shared
// registry when a simulation completes (cpu.System.FlushTelemetry), keeping
// the instrumented hot path single-threaded and allocation-free.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mirza/internal/stats"
)

// Label is one metric dimension, e.g. {Key: "sub", Value: "0"}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   kind
	wall   bool // derived from wall-clock time: excluded from canonical snapshots
	sparse bool // interesting only when non-zero: zeros excluded from canonical snapshots

	c *Counter
	g *Gauge
	h *Histogram
}

// key renders the registry map key (name plus sorted labels).
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('|')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// Registry holds the process's metrics. The zero value is not used;
// construct with New. A nil *Registry is the disabled registry: all methods
// are nil-safe and return nil handles whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []*metric // registration-independent: re-sorted on snapshot
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// register returns the existing metric for (name, labels) or creates one.
// Re-registering with a different kind panics: that is a programming error,
// and silently returning a mismatched handle would corrupt both series.
func (r *Registry) register(name string, labels []Label, k kind, make func() *metric) *metric {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := metricKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, k, m.kind))
		}
		return m
	}
	m := make()
	m.name, m.labels, m.kind = name, sorted, k
	r.metrics[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindCounter, func() *metric {
		return &metric{c: &Counter{}}
	}).c
}

// WallCounter is Counter for a value derived from wall-clock time (busy
// milliseconds, elapsed time). Wall metrics are excluded from canonical
// snapshots because they differ between otherwise identical runs.
func (r *Registry) WallCounter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindCounter, func() *metric {
		return &metric{c: &Counter{}, wall: true}
	}).c
}

// SparseCounter is Counter for a series that is interesting only when
// non-zero (e.g. protocol-violation counts): a fixed catalogue of such
// counters can be registered up front for discoverability in raw snapshots
// and Prometheus exposition, while Snapshot.Canonical drops the zero-valued
// ones so golden manifests and run-to-run diffs stay free of all-zero noise.
// Unlike wall metrics, a sparse counter that fires IS canonical — the value
// is deterministic; only its resting zero state is stripped.
func (r *Registry) SparseCounter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindCounter, func() *metric {
		return &metric{c: &Counter{}, sparse: true}
	}).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindGauge, func() *metric {
		return &metric{g: &Gauge{}}
	}).g
}

// Histogram returns the fixed-bucket histogram for (name, labels): buckets
// buckets of the given width, clamping like stats.Histogram (NaN and values
// below the first bucket land in bucket 0, values beyond the last bucket in
// the last). Shape mismatches on re-registration panic.
func (r *Registry) Histogram(name string, buckets int, width float64, labels ...Label) *Histogram {
	return r.histogram(name, buckets, width, false, labels)
}

// WallHistogram is Histogram for wall-clock-derived observations (e.g. job
// latencies); see WallCounter.
func (r *Registry) WallHistogram(name string, buckets int, width float64, labels ...Label) *Histogram {
	return r.histogram(name, buckets, width, true, labels)
}

func (r *Registry) histogram(name string, buckets int, width float64, wall bool, labels []Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets < 1 || width <= 0 {
		panic(fmt.Sprintf("telemetry: histogram %s needs buckets >= 1 and width > 0, got %d, %v", name, buckets, width))
	}
	m := r.register(name, labels, kindHistogram, func() *metric {
		return &metric{h: newHistogram(buckets, width), wall: wall}
	})
	if len(m.h.counts) != buckets || m.h.width != width {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with shape (%d,%v), was (%d,%v)",
			name, buckets, width, len(m.h.counts), m.h.width))
	}
	return m.h
}

// Counter is a monotonically increasing atomic int64. The nil handle (from
// a disabled registry) discards all updates.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (negative deltas are a caller bug but are not checked on
// the hot path).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on the nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 level (queue depth, busy workers, pending
// events). The nil handle discards all updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (use Add/Sub pairs rather than Set when several goroutines
// maintain one level).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on the nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-width-bucket histogram safe for concurrent Observe.
// Its bucketing contract is stats.Histogram's: buckets of equal width
// starting at 0, with NaN/-Inf clamped into the first bucket and +Inf (or
// any overflow) into the last. The nil handle discards observations.
type Histogram struct {
	width  float64
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets int, width float64) *Histogram {
	return &Histogram{width: width, counts: make([]atomic.Int64, buckets)}
}

// Observe records one observation of x.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	last := len(h.counts) - 1
	i := 0
	// Same clamping as stats.Histogram.Add: NaN fails both comparisons
	// and stays in the first bucket.
	if f := x / h.width; f >= float64(last) {
		i = last
	} else if f > 0 {
		i = int(f)
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	if !math.IsNaN(x) && !math.IsInf(x, 0) {
		for {
			old := h.sum.Load()
			if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
				break
			}
		}
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Snapshot copies the histogram into a stats.Histogram, whose Quantile is
// reused for percentile reporting.
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return stats.NewHistogram(1, 1)
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return stats.HistogramFromCounts(h.width, counts)
}
