package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # TYPE line per
// family, histograms expanded into cumulative _bucket{le=...} series plus
// _sum and _count. Metric and label names are sanitized into the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset; label values are escaped.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name, typ string
		series    []func(name string) string
	}
	fams := make(map[string]*family)
	order := []string{}
	add := func(name, typ string, render func(name string) string) {
		name = sanitizeMetricName(name)
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, typ: typ}
			fams[name] = f
			order = append(order, name)
		}
		f.series = append(f.series, render)
	}

	for _, c := range s.Counters {
		c := c
		add(c.Name, "counter", func(name string) string {
			return fmt.Sprintf("%s%s %d\n", name, renderLabels(c.Labels, "", ""), c.Value)
		})
	}
	for _, g := range s.Gauges {
		g := g
		add(g.Name, "gauge", func(name string) string {
			return fmt.Sprintf("%s%s %d\n", name, renderLabels(g.Labels, "", ""), g.Value)
		})
	}
	for _, h := range s.Histograms {
		h := h
		add(h.Name, "histogram", func(name string) string {
			var sb strings.Builder
			var cum int64
			for i, c := range h.Counts {
				cum += c
				le := strconv.FormatFloat(float64(i+1)*h.BucketWidth, 'g', -1, 64)
				if i == len(h.Counts)-1 {
					le = "+Inf"
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", name, renderLabels(h.Labels, "le", le), cum)
			}
			fmt.Fprintf(&sb, "%s_sum%s %s\n", name, renderLabels(h.Labels, "", ""),
				strconv.FormatFloat(h.Sum, 'g', -1, 64))
			fmt.Fprintf(&sb, "%s_count%s %d\n", name, renderLabels(h.Labels, "", ""), h.Total)
			return sb.String()
		})
	}

	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, render := range f.series {
			if _, err := io.WriteString(w, render(name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders {k="v",...} with keys sorted, appending the extra
// (extraKey, extraValue) pair when extraKey is non-empty. Returns "" for an
// empty set.
func renderLabels(labels map[string]string, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	write := func(k, v string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(sanitizeLabelName(k))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(v))
		sb.WriteByte('"')
	}
	for _, k := range keys {
		write(k, labels[k])
	}
	if extraKey != "" {
		write(extraKey, extraValue)
	}
	sb.WriteByte('}')
	return sb.String()
}

// sanitizeMetricName maps name into [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// sanitizeLabelName maps name into [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitize(name, false)
}

func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// PrometheusHandler serves snapshots of src in the text exposition format;
// use it to mount a live /metrics endpoint next to a running suite.
func PrometheusHandler(src func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = src().WritePrometheus(w)
	})
}

// ManifestHandler serves the JSON manifest built by src on each request;
// use it to mount a live /manifest endpoint next to a running suite.
func ManifestHandler(src func() *RunManifest) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		b, err := src().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(b)
	})
}
