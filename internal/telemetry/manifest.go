package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     int64             `json:"value"`
	WallClock bool              `json:"wall_clock,omitempty"`
	Sparse    bool              `json:"sparse,omitempty"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     int64             `json:"value"`
	WallClock bool              `json:"wall_clock,omitempty"`
}

// HistogramValue is one histogram in a Snapshot. Counts are per-bucket
// observation counts (bucket i covers [i*BucketWidth, (i+1)*BucketWidth),
// with under/overflow clamped into the first/last bucket); P50/P90/P99 are
// bucket-midpoint quantile approximations from stats.Histogram.Quantile.
type HistogramValue struct {
	Name        string            `json:"name"`
	Labels      map[string]string `json:"labels,omitempty"`
	BucketWidth float64           `json:"bucket_width"`
	Counts      []int64           `json:"counts"`
	Total       int64             `json:"total"`
	Sum         float64           `json:"sum"`
	P50         float64           `json:"p50"`
	P90         float64           `json:"p90"`
	P99         float64           `json:"p99"`
	WallClock   bool              `json:"wall_clock,omitempty"`
}

// Snapshot is a point-in-time copy of a Registry, sorted by (name, labels)
// so identical registry contents always serialize identically.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current values. It is safe to call while
// metrics are being updated (values are read atomically) and returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	ms := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return metricKey(ms[i].name, ms[i].labels) < metricKey(ms[j].name, ms[j].labels)
	})
	for _, m := range ms {
		labels := labelMap(m.labels)
		switch m.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterValue{
				Name: m.name, Labels: labels, Value: m.c.Value(), WallClock: m.wall,
				Sparse: m.sparse,
			})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeValue{
				Name: m.name, Labels: labels, Value: m.g.Value(), WallClock: m.wall,
			})
		case kindHistogram:
			h := m.h.Snapshot()
			s.Histograms = append(s.Histograms, HistogramValue{
				Name: m.name, Labels: labels,
				BucketWidth: m.h.width, Counts: h.Counts, Total: h.Total(),
				Sum:       math.Float64frombits(m.h.sum.Load()),
				P50:       h.Quantile(0.50),
				P90:       h.Quantile(0.90),
				P99:       h.Quantile(0.99),
				WallClock: m.wall,
			})
		}
	}
	return s
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// CounterTotal sums every counter series named name (across all label
// sets). Missing names return 0.
func (s Snapshot) CounterTotal(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// GaugeTotal sums every gauge series named name (across all label sets).
// Missing names return 0.
func (s Snapshot) GaugeTotal(name string) int64 {
	var total int64
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
		}
	}
	return total
}

// Canonical returns the snapshot with every wall-clock-flagged metric
// removed, along with sparse counters still at zero: what remains is a pure
// function of (config, seed, fault plan) and can be golden-tested or diffed
// between runs. A non-zero sparse counter (a protocol violation fired) is
// kept — that difference is exactly what a run diff should surface.
func (s Snapshot) Canonical() Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if c.WallClock || (c.Sparse && c.Value == 0) {
			continue
		}
		out.Counters = append(out.Counters, c)
	}
	for _, g := range s.Gauges {
		if !g.WallClock {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if !h.WallClock {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// ManifestSchemaVersion identifies the RunManifest JSON layout; bump it on
// incompatible field changes so downstream consumers can dispatch.
const ManifestSchemaVersion = 1

// RunManifest is the machine-readable record of one simulator run: the
// configuration that produced it (hashed for quick equality checks), the
// seed and fault plan, simulated- and wall-time totals, and the full metric
// snapshot. Two runs with the same config, seed and fault plan produce
// identical manifests modulo the wall-clock fields — compare with
// Canonical, which zeroes WallClockSeconds/WrittenAt and drops wall-clock
// metrics.
type RunManifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`

	// Config is the flattened run configuration; ConfigHash is the SHA-256
	// of its sorted key=value rendering (see ConfigHash).
	Config     map[string]string `json:"config"`
	ConfigHash string            `json:"config_hash"`

	Seed      uint64 `json:"seed"`
	FaultPlan string `json:"fault_plan,omitempty"`

	// Degraded marks a manifest produced by a reduced-fidelity retry after
	// the full-fidelity attempt failed (see experiments.Result.Degraded).
	// Consumers must not compare a degraded manifest against full-fidelity
	// runs, and result caches must not store it under the full-fidelity
	// config hash.
	Degraded bool `json:"degraded,omitempty"`

	// SimulatedPS is total simulated picoseconds summed over every
	// simulation the run executed (the sim_time_total_ps counter).
	SimulatedPS int64 `json:"simulated_time_ps"`

	// Wall-clock fields: excluded from determinism guarantees.
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	WrittenAt        string  `json:"written_at,omitempty"`

	Metrics Snapshot `json:"metrics"`
}

// NewManifest builds a manifest skeleton for tool over config, computing
// the config hash. The caller fills Seed, FaultPlan, timing fields and
// Metrics before writing.
func NewManifest(tool string, config map[string]string) *RunManifest {
	return &RunManifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          tool,
		Config:        config,
		ConfigHash:    ConfigHash(config),
	}
}

// ConfigHash returns the SHA-256 hex digest of the sorted key=value
// rendering of config: a stable fingerprint for "same configuration".
func ConfigHash(config map[string]string) string {
	keys := make([]string, 0, len(config))
	for k := range config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, config[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FillFromSnapshot stores snap and derives SimulatedPS from its
// sim_time_total_ps counter.
func (m *RunManifest) FillFromSnapshot(snap Snapshot) {
	m.Metrics = snap
	m.SimulatedPS = snap.CounterTotal("sim_time_total_ps")
}

// Canonical returns a copy with every wall-clock field zeroed and every
// wall-clock metric dropped: the deterministic core of the manifest, used
// by golden tests and run-to-run comparison.
func (m *RunManifest) Canonical() *RunManifest {
	out := *m
	out.WallClockSeconds = 0
	out.WrittenAt = ""
	out.Metrics = m.Metrics.Canonical()
	return &out
}

// JSON renders the manifest as indented JSON. Encoding is deterministic:
// struct fields have a fixed order and Go's encoder sorts map keys.
func (m *RunManifest) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest JSON to path (0644).
func (m *RunManifest) WriteFile(path string) error {
	b, err := m.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadManifest loads a manifest written by WriteFile (for tests and
// trajectory tooling that diffs snapshots across runs).
func ReadManifest(path string) (*RunManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m RunManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("telemetry: parsing manifest %s: %w", path, err)
	}
	return &m, nil
}

// String summarizes the manifest for logs.
func (m *RunManifest) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s manifest (config %s", m.Tool, m.ConfigHash[:min(12, len(m.ConfigHash))])
	fmt.Fprintf(&sb, ", seed %d, %d counters, %d gauges, %d histograms)",
		m.Seed, len(m.Metrics.Counters), len(m.Metrics.Gauges), len(m.Metrics.Histograms))
	return sb.String()
}
