package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// populate builds a registry the way two "identical runs" would: same
// deterministic metrics, different wall-clock metrics.
func populate(wallMS int64) *Registry {
	r := New()
	r.Counter("mem_acts_total", L("sub", "1")).Add(700)
	r.Counter("mem_acts_total", L("sub", "0")).Add(500)
	r.Counter("sim_time_total_ps", L("sub", "0")).Add(2_000_000)
	r.Counter("sim_time_total_ps", L("sub", "1")).Add(3_000_000)
	r.Gauge("jobs_queue_depth").Set(0)
	h := r.Histogram("mem_bank_acts_per_ref", 4, 2)
	for _, x := range []float64{1, 3, 3, 5} {
		h.Observe(x)
	}
	r.WallCounter("jobs_busy_ms_total").Add(wallMS)
	r.WallHistogram("jobs_latency_ms", 4, 10).Observe(float64(wallMS))
	return r
}

func TestSnapshotSortedAndStable(t *testing.T) {
	snap := populate(123).Snapshot()
	var names []string
	for _, c := range snap.Counters {
		names = append(names, c.Name+"|"+c.Labels["sub"])
	}
	want := []string{
		"jobs_busy_ms_total|", "mem_acts_total|0", "mem_acts_total|1",
		"sim_time_total_ps|0", "sim_time_total_ps|1",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("counter order = %v, want %v (sorted by name then labels)", names, want)
	}
	if got := snap.CounterTotal("sim_time_total_ps"); got != 5_000_000 {
		t.Errorf("CounterTotal = %d, want 5000000", got)
	}
	if got := snap.CounterTotal("absent"); got != 0 {
		t.Errorf("CounterTotal(absent) = %d, want 0", got)
	}
}

func TestManifestCanonicalDeterminism(t *testing.T) {
	build := func(wallMS int64) []byte {
		m := NewManifest("mirza-test", map[string]string{"exp": "fig3", "j": "8"})
		m.Seed = 1
		m.FaultPlan = "seed=7,alertdrop=0.3"
		m.FillFromSnapshot(populate(wallMS).Snapshot())
		m.WallClockSeconds = float64(wallMS) / 1000
		m.WrittenAt = "2026-08-06T00:00:00Z"
		b, err := m.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(123), build(99999)
	if !bytes.Equal(a, b) {
		t.Errorf("canonical manifests differ across wall-clock variation:\n%s\nvs\n%s", a, b)
	}
	// Wall-clock metrics and fields must be gone from the canonical form.
	if bytes.Contains(a, []byte("jobs_busy_ms_total")) || bytes.Contains(a, []byte("jobs_latency_ms")) {
		t.Error("canonical manifest still contains wall-clock metrics")
	}
	var m RunManifest
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatal(err)
	}
	if m.WallClockSeconds != 0 || m.WrittenAt != "" {
		t.Error("canonical manifest must zero wall-clock fields")
	}
	if m.SimulatedPS != 5_000_000 {
		t.Errorf("simulated_time_ps = %d, want 5000000", m.SimulatedPS)
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("schema_version = %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
}

func TestConfigHash(t *testing.T) {
	a := ConfigHash(map[string]string{"a": "1", "b": "2"})
	b := ConfigHash(map[string]string{"b": "2", "a": "1"})
	if a != b {
		t.Error("config hash must be independent of map iteration order")
	}
	if c := ConfigHash(map[string]string{"a": "1", "b": "3"}); c == a {
		t.Error("different configs must hash differently")
	}
	if len(a) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(a))
	}
}

func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := NewManifest("mirza-test", map[string]string{"exp": "all"})
	m.FillFromSnapshot(populate(5).Snapshot())
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tool != "mirza-test" || b.ConfigHash != m.ConfigHash {
		t.Errorf("round-trip mismatch: tool %q hash %q", b.Tool, b.ConfigHash)
	}
}
