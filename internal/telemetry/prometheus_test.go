package telemetry

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("mem_acts_total", L("sub", "0")).Add(10)
	r.Counter("mem_acts_total", L("sub", "1")).Add(20)
	r.Gauge("jobs_queue_depth").Set(3)
	h := r.Histogram("job_ms", 3, 10)
	h.Observe(5)
	h.Observe(15)
	h.Observe(999) // clamps into the last (+Inf) bucket

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mem_acts_total counter\n",
		`mem_acts_total{sub="0"} 10` + "\n",
		`mem_acts_total{sub="1"} 20` + "\n",
		"# TYPE jobs_queue_depth gauge\n",
		"jobs_queue_depth 3\n",
		"# TYPE job_ms histogram\n",
		`job_ms_bucket{le="10"} 1` + "\n",
		`job_ms_bucket{le="20"} 2` + "\n",
		`job_ms_bucket{le="+Inf"} 3` + "\n",
		"job_ms_sum 1019\n",
		"job_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with several series.
	if got := strings.Count(out, "# TYPE mem_acts_total"); got != 1 {
		t.Errorf("mem_acts_total TYPE lines = %d, want 1", got)
	}
	// Every non-comment line must match the exposition grammar.
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.e+-]+(e[0-9+-]+)?$`)
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("line %q does not match the exposition grammar", l)
		}
	}
}

func TestSanitization(t *testing.T) {
	r := New()
	r.Counter("track.mitigations/total", L("policy", `MoPAC(p=0.010,ATH=512)`)).Inc()
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "track_mitigations_total") {
		t.Errorf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `policy="MoPAC(p=0.010,ATH=512)"`) {
		t.Errorf("label value mangled:\n%s", out)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escaped = %q", got)
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := New()
	r.Counter("up").Inc()
	srv := httptest.NewServer(PrometheusHandler(r.Snapshot))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "up 1") {
		t.Errorf("body = %q", buf[:n])
	}
}
