// Package cpu models the processor side of the baseline system (Table III):
// eight 4-wide out-of-order cores with 392-entry reorder buffers driven by
// trace generators, a shared 16MB 16-way last-level cache, and the glue
// that turns cache misses into memory-controller requests. Slowdown in the
// MIRZA evaluation is a memory-system effect — the ROB-occupancy model
// captures how much memory latency the cores can hide, which is what
// converts RFM/ALERT stalls and PRAC timing inflation into IPC loss.
package cpu

import (
	"fmt"
)

// LLCConfig configures the shared last-level cache.
type LLCConfig struct {
	Bytes     int // total capacity (default 16 MiB)
	Ways      int // associativity (default 16)
	LineBytes int // line size (default 64)
}

func (c *LLCConfig) setDefaults() {
	if c.Bytes == 0 {
		c.Bytes = 16 << 20
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
}

// LLCStats counts cache activity.
type LLCStats struct {
	Hits       int64
	Misses     int64
	Writebacks int64
}

type llcLine struct {
	tag   uint64
	stamp uint64
	valid bool
	dirty bool
}

// LLC is a set-associative writeback cache with LRU replacement, shared by
// all cores (single-threaded simulation, so no locking).
type LLC struct {
	cfg   LLCConfig
	sets  [][]llcLine
	clock uint64
	Stats LLCStats
}

// NewLLC builds a cache from cfg.
func NewLLC(cfg LLCConfig) (*LLC, error) {
	cfg.setDefaults()
	lines := cfg.Bytes / cfg.LineBytes
	if lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cpu: %d lines not divisible by %d ways", lines, cfg.Ways)
	}
	numSets := lines / cfg.Ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cpu: set count %d must be a power of two", numSets)
	}
	l := &LLC{cfg: cfg}
	l.sets = make([][]llcLine, numSets)
	backing := make([]llcLine, numSets*cfg.Ways)
	for i := range l.sets {
		l.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return l, nil
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit           bool
	Writeback     bool
	WritebackPhys uint64 // physical byte address of the evicted dirty line
}

// Access performs a lookup/fill for the physical byte address phys. Misses
// allocate; dirty evictions are reported for the caller to issue as write
// requests.
func (l *LLC) Access(phys uint64, write bool) AccessResult {
	lineAddr := phys / uint64(l.cfg.LineBytes)
	setIdx := lineAddr & uint64(len(l.sets)-1)
	tag := lineAddr >> uint(log2(len(l.sets)))
	set := l.sets[setIdx]
	l.clock++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].stamp = l.clock
			if write {
				set[i].dirty = true
			}
			l.Stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	l.Stats.Misses++

	// Choose a victim: an invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	res := AccessResult{}
	if set[victim].valid && set[victim].dirty {
		l.Stats.Writebacks++
		evicted := set[victim].tag<<uint(log2(len(l.sets))) | setIdx
		res.Writeback = true
		res.WritebackPhys = evicted * uint64(l.cfg.LineBytes)
	}
	set[victim] = llcLine{tag: tag, stamp: l.clock, valid: true, dirty: write}
	return res
}

// MPKI returns misses per kilo-instruction given retired instructions.
func (s LLCStats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
