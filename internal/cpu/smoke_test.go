package cpu

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/trace"
)

// TestSmokeEndToEnd runs a short full-system simulation and sanity-checks
// that the machine makes progress, refreshes on schedule, and produces a
// plausible activation stream.
func TestSmokeEndToEnd(t *testing.T) {
	spec, err := trace.Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	gens, err := trace.PerCore(spec, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Mem: mem.Config{}}, gens)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 2 * dram.Millisecond
	sys.Run(horizon)

	st := sys.Channel.Stats()
	if st.Reads == 0 || st.ACTs == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	// Both sub-channels refresh every tREFI: 2ms/3.9us ~ 512 REFs each.
	wantREFs := int64(2 * horizon / dram.DDR5().TREFI)
	if st.REFs < wantREFs*9/10 || st.REFs > wantREFs*11/10 {
		t.Errorf("REFs = %d, want about %d", st.REFs, wantREFs)
	}
	var retired int64
	for _, c := range sys.Cores {
		retired += c.Retired()
	}
	if retired == 0 {
		t.Fatal("cores retired nothing")
	}
	ipc := sys.IPCs()
	t.Logf("ACTs=%d reads=%d writes=%d REFs=%d retired=%d IPC0=%.3f busUtil=%.1f%%",
		st.ACTs, st.Reads, st.Writes, st.REFs, retired, ipc[0], sys.BusUtilization())

	actPKI := float64(st.ACTs) / float64(retired) * 1000
	if actPKI <= 0 {
		t.Errorf("ACT-PKI = %v, want > 0", actPKI)
	}
	t.Logf("MPKI-equivalent=%.1f ACT-PKI=%.1f (targets %.1f / %.1f)",
		float64(st.Reads)/float64(retired)*1000, actPKI, spec.MPKI, spec.ACTPKI)
}
