package cpu

import (
	"context"
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/trace"
	"mirza/internal/vmap"
)

// SystemConfig assembles the full-system simulation.
type SystemConfig struct {
	Cores int        // number of cores (default 8)
	Core  CoreConfig // per-core parameters
	Mem   mem.Config // channel configuration

	// ASIDs assigns each core an address space for translation. Nil keeps
	// the historical default — one private space per core (asid = core
	// index), the rate-mode setup. Multi-tenant runs group cores into
	// shared spaces (e.g. [0,0,0,1,1]: cores 0-2 are one VM, 3-4 another),
	// and trace replays put every shard of one recorded stream in one
	// space. Length must equal Cores; values are bounds-checked.
	ASIDs []int

	// UseLLC inserts the shared last-level cache between the cores and
	// the memory controller. The calibrated Table IV workloads model the
	// post-LLC miss stream directly, so experiments leave this false;
	// raw-access studies and the cache examples set it.
	UseLLC bool
	LLC    LLCConfig
}

// System is a complete simulated machine: kernel, cores, optional LLC,
// page mapper and one DDR5 channel.
type System struct {
	Kernel  *sim.Kernel
	Channel *mem.Channel
	Cores   []*Core
	Mapper  *vmap.Mapper
	LLC     *LLC

	// Watchdog, when non-nil, lets RunChecked abort a stalled simulation
	// (no event-time progress within the wall-clock budget) instead of
	// spinning forever. Run ignores it.
	Watchdog *sim.Watchdog

	memSnapshot  mem.Stats
	posSnapshot  []int64
	snapshotTime dram.Time
}

// NewSystem builds a system running one generator per core.
func NewSystem(cfg SystemConfig, gens []trace.Generator) (*System, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if len(gens) != cfg.Cores {
		return nil, fmt.Errorf("cpu: %d generators for %d cores", len(gens), cfg.Cores)
	}
	asids := cfg.ASIDs
	if asids == nil {
		asids = make([]int, cfg.Cores)
		for i := range asids {
			asids[i] = i
		}
	}
	if len(asids) != cfg.Cores {
		return nil, fmt.Errorf("cpu: %d ASIDs for %d cores", len(asids), cfg.Cores)
	}
	for _, a := range asids {
		if err := vmap.CheckASID(a); err != nil {
			return nil, fmt.Errorf("cpu: %w", err)
		}
	}
	cfg.Core.setDefaults()

	k := &sim.Kernel{}
	ch, err := mem.NewChannel(k, cfg.Mem)
	if err != nil {
		return nil, err
	}
	s := &System{
		Kernel:  k,
		Channel: ch,
		Mapper:  vmap.NewMapper(ch.Geometry().CapacityBytes()),
	}
	if cfg.UseLLC {
		s.LLC, err = NewLLC(cfg.LLC)
		if err != nil {
			return nil, err
		}
	}
	translate := func(core int, vaddr uint64) uint64 {
		return s.Mapper.Translate(asids[core], vaddr)
	}
	submit := func(r *mem.Request) { s.Channel.Submit(r) }
	for i := 0; i < cfg.Cores; i++ {
		prefault(s.Mapper, asids[i], gens[i])
		s.Cores = append(s.Cores, NewCore(i, cfg.Core, k, gens[i], translate, submit, s.LLC))
	}
	s.posSnapshot = make([]int64, cfg.Cores)
	return s, nil
}

// prefault models the application's initialization sweep: the footprint is
// touched in virtual-address order, so the clock-style allocator hands out
// physically sequential blocks and virtual locality survives physically.
func prefault(m *vmap.Mapper, asid int, gen trace.Generator) {
	fp, ok := gen.(interface{ FootprintBytes() uint64 })
	if !ok {
		return
	}
	for off := uint64(0); off < fp.FootprintBytes(); off += vmap.SuperBytes {
		m.Translate(asid, off)
	}
}

// Run starts (or resumes) all cores and advances simulation to the given
// absolute time.
func (s *System) Run(until dram.Time) {
	s.start()
	s.Kernel.RunUntil(until)
}

// RunChecked is Run under the system's Watchdog: it returns a
// *sim.StallError with a diagnostic snapshot if simulated time stops
// advancing for longer than the watchdog's wall-clock budget. With a nil
// Watchdog it is identical to Run (and never fails).
func (s *System) RunChecked(until dram.Time) error {
	return s.RunCtx(context.Background(), until)
}

// RunCtx is RunChecked under a context: cancellation is polled between
// event batches, so job deadlines and -timeout stop a simulation mid-run
// instead of only at run boundaries. On cancellation it returns ctx.Err()
// with the system left resumable.
func (s *System) RunCtx(ctx context.Context, until dram.Time) error {
	s.start()
	return s.Kernel.RunUntilCtx(ctx, until, s.Watchdog)
}

func (s *System) start() {
	if s.Kernel.Now() == 0 && s.snapshotTime == 0 {
		for _, c := range s.Cores {
			c.Start()
		}
	}
}

// Snapshot marks the beginning of a measurement window: IPCs and MemStats
// report deltas from the most recent snapshot.
func (s *System) Snapshot() {
	for _, c := range s.Cores {
		c.SyncClock(s.Kernel.Now())
	}
	s.snapshotTime = s.Kernel.Now()
	s.memSnapshot = s.Channel.Stats()
	for i, c := range s.Cores {
		s.posSnapshot[i] = c.Retired()
	}
}

// IPCs returns each core's IPC over the current measurement window.
func (s *System) IPCs() []float64 {
	for _, c := range s.Cores {
		c.SyncClock(s.Kernel.Now())
	}
	elapsed := s.Kernel.Now() - s.snapshotTime
	out := make([]float64, len(s.Cores))
	if elapsed <= 0 {
		return out
	}
	for i, c := range s.Cores {
		cycles := float64(elapsed) / float64(c.cfg.CycleTime)
		out[i] = float64(c.Retired()-s.posSnapshot[i]) / cycles
	}
	return out
}

// MemStats returns channel counters accumulated over the current
// measurement window.
func (s *System) MemStats() mem.Stats {
	return s.Channel.Stats().Sub(s.memSnapshot)
}

// FlushTelemetry folds the run's counters — channel, trackers, kernel,
// watchdog — into the channel's configured telemetry registry. Call it
// exactly once, after the simulation completes; with telemetry disabled it
// is a no-op.
func (s *System) FlushTelemetry(extra ...telemetry.Label) {
	reg := s.Channel.Telemetry()
	if !reg.Enabled() {
		return
	}
	s.Channel.FlushTelemetry(extra...)
	reg.Counter("sim_events_executed_total", extra...).Add(int64(s.Kernel.Executed()))
	// Add, not Set: parallel jobs flush in nondeterministic order, and sums
	// commute where a last-writer-wins Set would not.
	reg.Gauge("sim_events_pending", extra...).Add(int64(s.Kernel.Pending()))
	reg.Counter("sim_time_total_ps", extra...).Add(int64(s.Kernel.Now()))
	reg.Counter("sim_watchdog_samples_total", extra...).Add(int64(s.Watchdog.Samples()))
}

// Window returns the length of the current measurement window.
func (s *System) Window() dram.Time { return s.Kernel.Now() - s.snapshotTime }

// BusUtilization returns the data-bus utilisation over the measurement
// window, in percent, averaged across sub-channels.
func (s *System) BusUtilization() float64 {
	w := s.Window()
	if w <= 0 {
		return 0
	}
	st := s.MemStats()
	subs := float64(s.Channel.Geometry().SubChannels)
	return 100 * float64(st.BusBusy) / (float64(w) * subs)
}
