package cpu

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/trace"
)

func TestLLCBasics(t *testing.T) {
	l, err := NewLLC(LLCConfig{Bytes: 1 << 20, Ways: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r := l.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := l.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if l.Stats.Hits != 1 || l.Stats.Misses != 1 {
		t.Errorf("stats = %+v", l.Stats)
	}
}

func TestLLCWritebackOnDirtyEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, tiny cache so evictions are easy.
	l, err := NewLLC(LLCConfig{Bytes: 8192, Ways: 2}) // 64 sets
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(64 * 64) // same set every 4KB
	l.Access(0, true)            // dirty
	l.Access(setStride, false)
	r := l.Access(2*setStride, false) // evicts line 0 (LRU)
	if !r.Writeback || r.WritebackPhys != 0 {
		t.Errorf("expected writeback of line 0: %+v", r)
	}
	if l.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", l.Stats.Writebacks)
	}
	// Clean evictions produce no writeback.
	r = l.Access(3*setStride, false)
	if r.Writeback {
		t.Error("clean eviction must not write back")
	}
}

func TestLLCLRU(t *testing.T) {
	l, _ := NewLLC(LLCConfig{Bytes: 8192, Ways: 2})
	setStride := uint64(64 * 64)
	l.Access(0, false)
	l.Access(setStride, false)
	l.Access(0, false)           // refresh line 0
	l.Access(2*setStride, false) // evicts setStride (LRU)
	if r := l.Access(0, false); !r.Hit {
		t.Error("LRU should have kept the recently used line")
	}
	if r := l.Access(setStride, false); r.Hit {
		t.Error("LRU victim should be gone")
	}
}

func TestLLCConfigValidation(t *testing.T) {
	if _, err := NewLLC(LLCConfig{Bytes: 1000, Ways: 3}); err == nil {
		t.Error("bad geometry must be rejected")
	}
}

// fixedGen replays a fixed op sequence, then repeats the last op forever.
type fixedGen struct {
	ops []trace.Op
	i   int
}

func (f *fixedGen) Next(op *trace.Op) {
	if f.i < len(f.ops) {
		*op = f.ops[f.i]
		f.i++
		return
	}
	*op = trace.Op{Gap: 1 << 20, Line: 0}
}
func (f *fixedGen) Name() string { return "fixed" }

func TestCoreROBStall(t *testing.T) {
	// One core issuing two dependent far-apart misses: the second miss is
	// beyond the ROB from the first, so the core must stall until the
	// first returns.
	k := &sim.Kernel{}
	ch, err := mem.NewChannel(k, mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := &fixedGen{ops: []trace.Op{
		{Gap: 0, Line: 0},
		{Gap: 1000, Line: 1 << 20}, // > 392 instructions later
	}}
	core := NewCore(0, CoreConfig{}, k, gen,
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch.Submit(r) }, nil)
	core.Start()
	k.RunUntil(dram.Microsecond)
	// Both ops issued; retirement includes the gap instructions.
	if core.Reads != 2 {
		t.Fatalf("reads = %d", core.Reads)
	}
	if core.Retired() < 1000 {
		t.Errorf("retired = %d", core.Retired())
	}
}

func TestCoreIPCBoundedByWidth(t *testing.T) {
	k := &sim.Kernel{}
	ch, _ := mem.NewChannel(k, mem.Config{})
	// Pure compute: gigantic gaps, no memory pressure -> IPC ~ Width.
	gen := &fixedGen{}
	core := NewCore(0, CoreConfig{}, k, gen,
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch.Submit(r) }, nil)
	core.Start()
	k.RunUntil(100 * dram.Microsecond)
	core.SyncClock(k.Now())
	ipc := core.IPC(k.Now())
	if ipc < 3.8 || ipc > 4.05 {
		t.Errorf("compute-bound IPC = %.2f, want ~4", ipc)
	}
}

func TestSystemWeightedWindows(t *testing.T) {
	spec, err := trace.Lookup("xz")
	if err != nil {
		t.Fatal(err)
	}
	gens, err := trace.PerCore(spec, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Mem: mem.Config{}}, gens)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200 * dram.Microsecond)
	sys.Snapshot()
	sys.Run(400 * dram.Microsecond)
	ipcs := sys.IPCs()
	for i, v := range ipcs {
		if v <= 0 || v > 4 {
			t.Errorf("core %d IPC = %v", i, v)
		}
	}
	st := sys.MemStats()
	if st.ACTs <= 0 || st.REFs <= 0 {
		t.Errorf("window stats: %+v", st)
	}
	if sys.Window() != 200*dram.Microsecond {
		t.Errorf("window = %v", sys.Window())
	}
	if bu := sys.BusUtilization(); bu <= 0 || bu > 100 {
		t.Errorf("bus util = %v", bu)
	}
}

func TestSystemWithLLC(t *testing.T) {
	spec, _ := trace.Lookup("xalancbmk")
	gens, _ := trace.PerCore(spec, 2, 3)
	sys, err := NewSystem(SystemConfig{
		Cores:  2,
		Mem:    mem.Config{},
		UseLLC: true,
		LLC:    LLCConfig{Bytes: 1 << 20},
	}, gens)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * dram.Microsecond)
	if sys.LLC.Stats.Hits == 0 || sys.LLC.Stats.Misses == 0 {
		t.Errorf("LLC unused: %+v", sys.LLC.Stats)
	}
	// Memory traffic must be the miss stream, not the access stream.
	st := sys.Channel.Stats()
	if st.Reads > sys.LLC.Stats.Misses {
		t.Errorf("reads %d > misses %d", st.Reads, sys.LLC.Stats.Misses)
	}
}

func TestGeneratorMismatchRejected(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Cores: 8}, nil); err == nil {
		t.Error("missing generators must be rejected")
	}
}
