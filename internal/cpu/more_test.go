package cpu

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/trace"
)

func TestCoreMSHRLimit(t *testing.T) {
	// With MSHR=1 every miss serializes: two independent misses complete
	// roughly one full memory latency apart.
	k := &sim.Kernel{}
	ch, _ := mem.NewChannel(k, mem.Config{})
	gen := &fixedGen{ops: []trace.Op{
		{Gap: 0, Line: 0},
		{Gap: 0, Line: 1 << 22}, // different bank/row
	}}
	core := NewCore(0, CoreConfig{MSHR: 1}, k, gen,
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch.Submit(r) }, nil)
	core.Start()
	k.RunUntil(10 * dram.Microsecond)
	if core.Reads != 2 {
		t.Fatalf("reads = %d", core.Reads)
	}
	// With generous MSHRs the same two misses overlap: compare bus stats.
	k2 := &sim.Kernel{}
	ch2, _ := mem.NewChannel(k2, mem.Config{})
	gen2 := &fixedGen{ops: []trace.Op{
		{Gap: 0, Line: 0},
		{Gap: 0, Line: 1 << 22},
	}}
	core2 := NewCore(0, CoreConfig{MSHR: 8}, k2, gen2,
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch2.Submit(r) }, nil)
	core2.Start()
	k2.RunUntil(10 * dram.Microsecond)
	if core2.Reads != 2 {
		t.Fatalf("reads = %d", core2.Reads)
	}
}

func TestIPCZeroAtStart(t *testing.T) {
	k := &sim.Kernel{}
	ch, _ := mem.NewChannel(k, mem.Config{})
	core := NewCore(0, CoreConfig{}, k, &fixedGen{},
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch.Submit(r) }, nil)
	if core.IPC(0) != 0 {
		t.Error("IPC at t=0 must be 0")
	}
}

func TestSyncClockIdempotent(t *testing.T) {
	k := &sim.Kernel{}
	ch, _ := mem.NewChannel(k, mem.Config{})
	core := NewCore(0, CoreConfig{}, k, &fixedGen{},
		func(c int, v uint64) uint64 { return v },
		func(r *mem.Request) { ch.Submit(r) }, nil)
	core.Start()
	k.RunUntil(10 * dram.Microsecond)
	core.SyncClock(k.Now())
	p1 := core.Retired()
	core.SyncClock(k.Now())
	if core.Retired() != p1 {
		t.Error("repeated SyncClock at the same instant must not advance")
	}
	// Advancing the clock without events must advance retirement at the
	// issue rate (compute-bound generator).
	k.RunUntil(20 * dram.Microsecond)
	core.SyncClock(k.Now())
	if core.Retired() <= p1 {
		t.Error("SyncClock should account the elapsed compute issue")
	}
}

func TestSystemRateModeWorkloads(t *testing.T) {
	// Every Table IV workload must run end-to-end for a short slice
	// without deadlock (broad integration sweep).
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, name := range []string{"blender", "tc", "mix_4"} {
		spec, err := trace.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		gens, err := trace.PerCore(spec, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(SystemConfig{
			Core: CoreConfig{MSHR: spec.MLPLimit()},
			Mem:  mem.Config{},
		}, gens)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(100 * dram.Microsecond)
		var retired int64
		for _, c := range sys.Cores {
			retired += c.Retired()
		}
		if retired == 0 {
			t.Errorf("%s: no progress", name)
		}
		if sys.Channel.Stats().REFs == 0 {
			t.Errorf("%s: no refreshes", name)
		}
	}
}
