package cpu

import (
	"math"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/trace"
)

// CoreConfig parameterizes one out-of-order core (Table III defaults).
type CoreConfig struct {
	Width     int       // retire width, instructions per cycle (4)
	ROB       int       // reorder-buffer entries (392)
	MSHR      int       // maximum outstanding misses (16)
	CycleTime dram.Time // clock period (250ps at 4GHz)
}

func (c *CoreConfig) setDefaults() {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.ROB == 0 {
		c.ROB = 392
	}
	if c.MSHR == 0 {
		c.MSHR = 16
	}
	if c.CycleTime == 0 {
		c.CycleTime = 250 * dram.Picosecond
	}
}

// missEntry is one outstanding LLC-miss read. The memory request is
// embedded and its Done callback is the entry's own complete method, bound
// once when the entry is first allocated: a core recycles entries through
// a free list, so steady-state misses allocate nothing.
type missEntry struct {
	c    *Core
	pos  int64
	done bool
	req  mem.Request
}

// complete is the request-completion callback (the former Done closure).
func (e *missEntry) complete(at dram.Time) {
	c := e.c
	e.done = true
	if !c.waiting {
		return
	}
	// The front-end was stalled; its issue clock resumes now.
	if c.outstanding.front().done {
		c.resume(at)
		return
	}
	// MSHR-stalled cores can resume on any completion.
	c.popDone()
	if c.outstanding.len() < c.cfg.MSHR {
		c.resume(at)
	}
}

// missRing is the outstanding-miss window: a fixed-capacity FIFO ring
// sized to the MSHR count at construction. The former slice held the same
// bound on live entries but advanced through its backing array with
// outstanding = outstanding[1:], so every few hundred misses the append
// hit the array's end and reallocated — the last steady-state allocation
// on the fig3 hot path.
type missRing struct {
	buf  []*missEntry
	head int
	n    int
}

func (r *missRing) init(capacity int) { r.buf = make([]*missEntry, capacity) }
func (r *missRing) len() int          { return r.n }
func (r *missRing) front() *missEntry { return r.buf[r.head] }

// push appends e; the caller guarantees len() < cap (the MSHR stall).
func (r *missRing) push(e *missEntry) {
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

// popFront removes and returns the oldest entry, clearing its slot.
func (r *missRing) popFront() *missEntry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// writeReq is a pooled posted-write request (writeback traffic). The
// memory controller invokes Done synchronously when it accepts a write, at
// which point the request has left the command queue and is free to reuse.
type writeReq struct {
	c   *Core
	req mem.Request
}

func (w *writeReq) recycle(dram.Time) { w.c.writePool = append(w.c.writePool, w) }

// Core is a trace-driven core with an ROB-occupancy stall model: it issues
// instructions at Width per cycle, sends loads that miss the LLC to the
// memory controller, and stalls when the oldest incomplete load falls ROB
// instructions behind the issue point (or when MSHRs are exhausted).
type Core struct {
	id  int
	cfg CoreConfig
	k   *sim.Kernel
	gen trace.Generator

	translate func(core int, vaddr uint64) uint64
	submit    func(r *mem.Request)
	llc       *LLC

	pos   int64     // instructions issued (our retirement proxy)
	posAt dram.Time // simulation time at which pos was reached

	outstanding missRing
	waiting     bool // stalled on ROB head or MSHRs

	// wakeEv is the persistent timed-wake event (replaces the former
	// sleeping flag + one-shot closure): Scheduled() doubles as the
	// "a timed wake is pending" predicate.
	wakeEv sim.Event

	entryPool []*missEntry // recycled outstanding-miss entries
	writePool []*writeReq  // recycled posted-write requests

	haveOp bool
	op     trace.Op
	opPos  int64

	Reads  int64
	Writes int64
}

// NewCore builds a core. translate maps a core-virtual byte address to a
// physical one; submit hands requests to the memory channel; llc may be nil
// to drive the generator's miss stream directly at the controller (the
// calibrated mode used for the paper's workloads, whose Table IV MPKI
// already reflects a shared 16MB LLC).
func NewCore(id int, cfg CoreConfig, k *sim.Kernel, gen trace.Generator,
	translate func(core int, vaddr uint64) uint64, submit func(r *mem.Request), llc *LLC) *Core {
	cfg.setDefaults()
	c := &Core{id: id, cfg: cfg, k: k, gen: gen, translate: translate, submit: submit, llc: llc}
	c.outstanding.init(cfg.MSHR)
	c.wakeEv.Bind((*coreWake)(c))
	return c
}

// coreWake adapts a Core to sim.Handler for its timed-wake event.
type coreWake Core

func (w *coreWake) Fire(dram.Time) { (*Core)(w).run() }

// Start begins execution.
func (c *Core) Start() { c.run() }

// Retired returns the number of instructions issued/retired.
func (c *Core) Retired() int64 { return c.pos }

// IPC returns instructions per cycle over the period from start to now.
func (c *Core) IPC(now dram.Time) float64 {
	if now <= 0 {
		return 0
	}
	cycles := float64(now) / float64(c.cfg.CycleTime)
	return float64(c.pos) / cycles
}

// issueTime returns the front-end time to issue n instructions.
func (c *Core) issueTime(n int64) dram.Time {
	return dram.Time(n) * c.cfg.CycleTime / dram.Time(c.cfg.Width)
}

func (c *Core) run() {
	now := c.k.Now()
	c.waiting = false
	for {
		c.popDone()
		if !c.haveOp {
			c.gen.Next(&c.op)
			c.opPos = c.pos + c.op.Gap + 1 // the access is an instruction too
			c.haveOp = true
		}

		limit := int64(math.MaxInt64)
		if c.outstanding.len() > 0 {
			limit = c.outstanding.front().pos + int64(c.cfg.ROB)
		}
		target := c.opPos
		if limit < target {
			target = limit
		}
		if target > c.pos {
			readyAt := c.posAt + c.issueTime(target-c.pos)
			if readyAt > now {
				// Issuing up to target takes front-end time: advance only
				// the instructions that fit by now (so IPC accounting is
				// exact at any instant) and continue at a timed wake.
				fit := int64(now-c.posAt) * int64(c.cfg.Width) / int64(c.cfg.CycleTime)
				if fit > 0 {
					c.pos += fit
					c.posAt += c.issueTime(fit)
				}
				if !c.wakeEv.Scheduled() {
					c.k.ScheduleEvent(&c.wakeEv, readyAt)
				}
				return
			}
			c.pos = target
			c.posAt = readyAt
		}
		if c.pos < c.opPos {
			// ROB full: resume when the oldest miss returns.
			c.waiting = true
			return
		}

		// At the memory operation.
		if !c.op.Write && c.outstanding.len() >= c.cfg.MSHR {
			c.waiting = true
			return
		}
		c.issueMemOp(now)
		c.haveOp = false
	}
}

// SyncClock advances the retirement accounting to time now (applying any
// issue progress since the last event) without changing scheduling. Called
// at measurement boundaries, where the clock may sit between core events.
func (c *Core) SyncClock(now dram.Time) {
	if c.waiting || !c.wakeEv.Scheduled() || !c.haveOp || now <= c.posAt {
		return
	}
	limit := int64(math.MaxInt64)
	if c.outstanding.len() > 0 {
		limit = c.outstanding.front().pos + int64(c.cfg.ROB)
	}
	target := c.opPos
	if limit < target {
		target = limit
	}
	fit := int64(now-c.posAt) * int64(c.cfg.Width) / int64(c.cfg.CycleTime)
	if c.pos+fit > target {
		fit = target - c.pos
	}
	if fit > 0 {
		c.pos += fit
		c.posAt += c.issueTime(fit)
	}
}

// resume restarts the stalled front-end: its issue clock continues at the
// completion time of the miss that unblocked it.
func (c *Core) resume(at dram.Time) {
	if c.posAt < at {
		c.posAt = at
	}
	c.run()
}

// newEntry takes a miss entry from the free list (or allocates one on
// first use, binding the completion callback once).
func (c *Core) newEntry() *missEntry {
	if n := len(c.entryPool); n > 0 {
		e := c.entryPool[n-1]
		c.entryPool = c.entryPool[:n-1]
		e.done = false
		return e
	}
	e := &missEntry{c: c}
	e.req.Done = e.complete
	return e
}

// newWrite takes a posted-write request from the free list; its Done
// recycles it as soon as the controller accepts the write.
func (c *Core) newWrite(addr uint64) *mem.Request {
	var w *writeReq
	if n := len(c.writePool); n > 0 {
		w = c.writePool[n-1]
		c.writePool = c.writePool[:n-1]
	} else {
		w = &writeReq{c: c}
		w.req.Done = w.recycle
	}
	w.req.Addr = addr
	w.req.Write = true
	return &w.req
}

func (c *Core) issueMemOp(now dram.Time) {
	phys := c.translate(c.id, c.op.Line*trace.LineBytes)
	write := c.op.Write

	if c.llc != nil {
		res := c.llc.Access(phys, write)
		if res.Writeback {
			c.Writes++
			c.submit(c.newWrite(res.WritebackPhys))
		}
		if res.Hit {
			return // hit latency is hidden by the OoO window
		}
		write = false // fills are reads; the dirty bit lives in the cache
	}

	if write {
		// Posted write (writeback traffic): no ROB occupancy.
		c.Writes++
		c.submit(c.newWrite(phys))
		return
	}

	c.Reads++
	entry := c.newEntry()
	entry.pos = c.pos
	entry.req.Addr = phys
	c.outstanding.push(entry)
	c.submit(&entry.req)
}

func (c *Core) popDone() {
	for c.outstanding.len() > 0 && c.outstanding.front().done {
		// The entry's completion has fired and it has left the window:
		// safe to recycle.
		c.entryPool = append(c.entryPool, c.outstanding.popFront())
	}
}
