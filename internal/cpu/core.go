package cpu

import (
	"math"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/trace"
)

// CoreConfig parameterizes one out-of-order core (Table III defaults).
type CoreConfig struct {
	Width     int       // retire width, instructions per cycle (4)
	ROB       int       // reorder-buffer entries (392)
	MSHR      int       // maximum outstanding misses (16)
	CycleTime dram.Time // clock period (250ps at 4GHz)
}

func (c *CoreConfig) setDefaults() {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.ROB == 0 {
		c.ROB = 392
	}
	if c.MSHR == 0 {
		c.MSHR = 16
	}
	if c.CycleTime == 0 {
		c.CycleTime = 250 * dram.Picosecond
	}
}

type missEntry struct {
	pos  int64
	done bool
}

// Core is a trace-driven core with an ROB-occupancy stall model: it issues
// instructions at Width per cycle, sends loads that miss the LLC to the
// memory controller, and stalls when the oldest incomplete load falls ROB
// instructions behind the issue point (or when MSHRs are exhausted).
type Core struct {
	id  int
	cfg CoreConfig
	k   *sim.Kernel
	gen trace.Generator

	translate func(core int, vaddr uint64) uint64
	submit    func(r *mem.Request)
	llc       *LLC

	pos   int64     // instructions issued (our retirement proxy)
	posAt dram.Time // simulation time at which pos was reached

	outstanding []*missEntry
	waiting     bool // stalled on ROB head or MSHRs
	sleeping    bool // a timed wake event is pending

	haveOp bool
	op     trace.Op
	opPos  int64

	Reads  int64
	Writes int64
}

// NewCore builds a core. translate maps a core-virtual byte address to a
// physical one; submit hands requests to the memory channel; llc may be nil
// to drive the generator's miss stream directly at the controller (the
// calibrated mode used for the paper's workloads, whose Table IV MPKI
// already reflects a shared 16MB LLC).
func NewCore(id int, cfg CoreConfig, k *sim.Kernel, gen trace.Generator,
	translate func(core int, vaddr uint64) uint64, submit func(r *mem.Request), llc *LLC) *Core {
	cfg.setDefaults()
	return &Core{id: id, cfg: cfg, k: k, gen: gen, translate: translate, submit: submit, llc: llc}
}

// Start begins execution.
func (c *Core) Start() { c.run() }

// Retired returns the number of instructions issued/retired.
func (c *Core) Retired() int64 { return c.pos }

// IPC returns instructions per cycle over the period from start to now.
func (c *Core) IPC(now dram.Time) float64 {
	if now <= 0 {
		return 0
	}
	cycles := float64(now) / float64(c.cfg.CycleTime)
	return float64(c.pos) / cycles
}

// issueTime returns the front-end time to issue n instructions.
func (c *Core) issueTime(n int64) dram.Time {
	return dram.Time(n) * c.cfg.CycleTime / dram.Time(c.cfg.Width)
}

func (c *Core) run() {
	now := c.k.Now()
	c.waiting = false
	for {
		c.popDone()
		if !c.haveOp {
			c.gen.Next(&c.op)
			c.opPos = c.pos + c.op.Gap + 1 // the access is an instruction too
			c.haveOp = true
		}

		limit := int64(math.MaxInt64)
		if len(c.outstanding) > 0 {
			limit = c.outstanding[0].pos + int64(c.cfg.ROB)
		}
		target := c.opPos
		if limit < target {
			target = limit
		}
		if target > c.pos {
			readyAt := c.posAt + c.issueTime(target-c.pos)
			if readyAt > now {
				// Issuing up to target takes front-end time: advance only
				// the instructions that fit by now (so IPC accounting is
				// exact at any instant) and continue at a timed wake.
				fit := int64(now-c.posAt) * int64(c.cfg.Width) / int64(c.cfg.CycleTime)
				if fit > 0 {
					c.pos += fit
					c.posAt += c.issueTime(fit)
				}
				if !c.sleeping {
					c.sleeping = true
					c.k.Schedule(readyAt, c.timedWake)
				}
				return
			}
			c.pos = target
			c.posAt = readyAt
		}
		if c.pos < c.opPos {
			// ROB full: resume when the oldest miss returns.
			c.waiting = true
			return
		}

		// At the memory operation.
		if !c.op.Write && len(c.outstanding) >= c.cfg.MSHR {
			c.waiting = true
			return
		}
		c.issueMemOp(now)
		c.haveOp = false
	}
}

// SyncClock advances the retirement accounting to time now (applying any
// issue progress since the last event) without changing scheduling. Called
// at measurement boundaries, where the clock may sit between core events.
func (c *Core) SyncClock(now dram.Time) {
	if c.waiting || c.sleeping == false || !c.haveOp || now <= c.posAt {
		return
	}
	limit := int64(math.MaxInt64)
	if len(c.outstanding) > 0 {
		limit = c.outstanding[0].pos + int64(c.cfg.ROB)
	}
	target := c.opPos
	if limit < target {
		target = limit
	}
	fit := int64(now-c.posAt) * int64(c.cfg.Width) / int64(c.cfg.CycleTime)
	if c.pos+fit > target {
		fit = target - c.pos
	}
	if fit > 0 {
		c.pos += fit
		c.posAt += c.issueTime(fit)
	}
}

func (c *Core) timedWake() {
	c.sleeping = false
	c.run()
}

func (c *Core) issueMemOp(now dram.Time) {
	phys := c.translate(c.id, c.op.Line*trace.LineBytes)
	write := c.op.Write

	if c.llc != nil {
		res := c.llc.Access(phys, write)
		if res.Writeback {
			c.Writes++
			c.submit(&mem.Request{Addr: res.WritebackPhys, Write: true})
		}
		if res.Hit {
			return // hit latency is hidden by the OoO window
		}
		write = false // fills are reads; the dirty bit lives in the cache
	}

	if write {
		// Posted write (writeback traffic): no ROB occupancy.
		c.Writes++
		c.submit(&mem.Request{Addr: phys, Write: true})
		return
	}

	c.Reads++
	entry := &missEntry{pos: c.pos}
	c.outstanding = append(c.outstanding, entry)
	c.submit(&mem.Request{
		Addr: phys,
		Done: func(at dram.Time) {
			entry.done = true
			if !c.waiting {
				return
			}
			// The front-end was stalled; its issue clock resumes now.
			resume := func() {
				if c.posAt < at {
					c.posAt = at
				}
				c.run()
			}
			if c.outstanding[0].done {
				resume()
				return
			}
			// MSHR-stalled cores can resume on any completion.
			c.popDone()
			if len(c.outstanding) < c.cfg.MSHR {
				resume()
			}
		},
	})
}

func (c *Core) popDone() {
	for len(c.outstanding) > 0 && c.outstanding[0].done {
		c.outstanding = c.outstanding[1:]
	}
}
