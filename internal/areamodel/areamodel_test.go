package areamodel

import (
	"math"
	"testing"
)

func TestCounterBits(t *testing.T) {
	cases := map[int]int{1500: 11, 1501: 11, 3331: 12, 661: 10, 8187: 13, 0: 1, 1: 1}
	for v, want := range cases {
		if got := CounterBits(v); got != want {
			t.Errorf("CounterBits(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPRACBitsPerRow(t *testing.T) {
	// Table X: 10 bits at 1K, 9 at 500, 8 at 250.
	cases := map[int]int{1000: 10, 500: 9, 250: 8}
	for trhd, want := range cases {
		if got := PRACBitsPerRow(trhd); got != want {
			t.Errorf("PRACBitsPerRow(%d) = %d, want %d", trhd, got, want)
		}
	}
}

func TestCompareSubarrayMatchesTableX(t *testing.T) {
	// TRHD=1K: 11-bit SRAM vs 10Kb DRAM => 45.45x.
	cmp := CompareSubarray(1000, 11, 1024)
	if cmp.PRACDRAMBits != 10240 {
		t.Errorf("PRAC bits = %d", cmp.PRACDRAMBits)
	}
	if math.Abs(cmp.AreaRatio-46.5) > 1.5 {
		t.Errorf("ratio = %v, want ~45-46x", cmp.AreaRatio)
	}
	// TRHD=500: 20-bit SRAM vs 9Kb DRAM => 23x.
	cmp = CompareSubarray(500, 20, 1024)
	if math.Abs(cmp.AreaRatio-23) > 1 {
		t.Errorf("ratio = %v, want ~22.5-23x", cmp.AreaRatio)
	}
	// TRHD=250: 36-bit SRAM vs 8Kb DRAM => 11.4x.
	cmp = CompareSubarray(250, 36, 1024)
	if math.Abs(cmp.AreaRatio-11.3) > 0.7 {
		t.Errorf("ratio = %v, want ~11.2-11.4x", cmp.AreaRatio)
	}
}

func TestCellAreas(t *testing.T) {
	if DRAMBitsArea(100) != 600 {
		t.Error("DRAM cell must be 6F^2")
	}
	if SRAMBitsArea(100) != 12000 {
		t.Error("SRAM cell must be 120F^2")
	}
}

func TestStorageHelpers(t *testing.T) {
	if got := MithrilBytesPerBank(2048); got != 7168 {
		t.Errorf("Mithril 2K entries = %d bytes, want 7168 (7KB, Section VIII.A)", got)
	}
	if got := TRRBytesPerBank(28); got != 84 {
		t.Errorf("TRR 28 entries = %d bytes, want 84 (Table XII)", got)
	}
	if got := MINTBytesPerBank(6, 17); got != 20 {
		t.Errorf("MINT+DMQ = %d bytes, want 20 (Table XII)", got)
	}
}
