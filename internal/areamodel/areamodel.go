// Package areamodel implements the cell-area comparison the paper uses for
// Table X and the storage accounting of Tables VII and XII: DRAM cells cost
// 6F^2 and SRAM cells 120F^2 (F = feature size), per the simple model of
// Dorrance et al. and Weste & Harris that the paper cites.
package areamodel

import "math/bits"

// Cell areas in units of F^2.
const (
	DRAMCellF2 = 6
	SRAMCellF2 = 120
)

// DRAMBitsArea returns the area of n DRAM cells in F^2.
func DRAMBitsArea(n int) float64 { return float64(n) * DRAMCellF2 }

// SRAMBitsArea returns the area of n SRAM cells in F^2.
func SRAMBitsArea(n int) float64 { return float64(n) * SRAMCellF2 }

// CounterBits returns the number of bits needed to represent values
// 0..maxValue.
func CounterBits(maxValue int) int {
	if maxValue <= 0 {
		return 1
	}
	return bits.Len(uint(maxValue))
}

// PRACBitsPerRow returns the PRAC counter width provisioned per DRAM row
// for a given Rowhammer threshold: the counter must count up to the ALERT
// threshold, which scales with TRH. The paper's Table X uses 10 bits at
// TRHD=1K, 9 bits at 500, and 8 bits at 250 — one bit per halving.
func PRACBitsPerRow(trhd int) int {
	return CounterBits(trhd - 1)
}

// SubarrayComparison is one row of Table X: the per-subarray area of
// MIRZA's filter state versus PRAC's per-row counters.
type SubarrayComparison struct {
	TRHD          int
	MIRZASRAMBits int     // RCT bits serving one subarray
	PRACDRAMBits  int     // counter bits across the subarray's rows
	AreaRatio     float64 // PRAC area / MIRZA area
}

// CompareSubarray computes the Table X comparison for a target TRHD, given
// MIRZA's RCT bits per subarray (counter width x counters-per-subarray) and
// the subarray's row count.
func CompareSubarray(trhd, mirzaBitsPerSubarray, rowsPerSubarray int) SubarrayComparison {
	pracBits := PRACBitsPerRow(trhd) * rowsPerSubarray
	return SubarrayComparison{
		TRHD:          trhd,
		MIRZASRAMBits: mirzaBitsPerSubarray,
		PRACDRAMBits:  pracBits,
		AreaRatio:     DRAMBitsArea(pracBits) / SRAMBitsArea(mirzaBitsPerSubarray),
	}
}

// MithrilBytesPerBank returns the SRAM bytes of a Mithril-style tracker
// with the given entries (28 bits each per the paper: row id + counter).
func MithrilBytesPerBank(entries int) int {
	return (entries*28 + 7) / 8
}

// TRRBytesPerBank returns the SRAM bytes of the DDR4 TRR comparison point
// in Table XII: 3 bytes per entry (row id + counter).
func TRRBytesPerBank(entries int) int { return entries * 3 }

// MINTBytesPerBank returns the SRAM bytes of MINT with a Delayed Mitigation
// Queue as configured for Table XII (20 bytes per bank in the paper).
func MINTBytesPerBank(queueEntries, rowBits int) int {
	// Sampler state (window counter, target, selected row) plus the
	// delayed-mitigation queue entries.
	samplerBits := 2*16 + rowBits + 1
	queueBits := queueEntries * (rowBits + 1)
	return (samplerBits + queueBits + 7) / 8
}
