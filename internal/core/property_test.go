package core

import (
	"testing"
	"testing/quick"

	"mirza/internal/stats"
	"mirza/internal/track"
)

// TestPropertyAccountingInvariant: for any activation stream, every ACT is
// either filtered or escaped, and escaped splits into queue hits, window
// observations and (selections + drops) consistently.
func TestPropertyAccountingInvariant(t *testing.T) {
	f := func(seed uint64, serviceMod uint8) bool {
		cfg, _ := ForTRHD(1000)
		cfg.FTH = 20
		cfg.Seed = seed
		m := MustNew(cfg, track.NopSink{})
		rng := stats.NewRNG(seed)
		mod := int(serviceMod%7) + 2
		for i := 0; i < 5000; i++ {
			row := m.cfg.Geometry.RowAt(cfg.Mapping, rng.Intn(16), rng.Intn(64))
			m.OnActivate(0, row, 0)
			if i%mod == 0 && m.WantsALERT() {
				m.ServiceALERT(0)
			}
			if i%97 == 0 {
				m.OnREF(i/97%8192, 0)
			}
		}
		s := m.Stats
		if s.Filtered+s.Escaped != s.ACTs {
			return false
		}
		if s.Selections+s.DroppedSel+s.QueueHits > s.Escaped {
			return false
		}
		return s.Mitigations <= s.Selections
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRCTNeverExceedsSaturation: RCT counters are bounded by FTH+1
// under any stream and reset policy.
func TestPropertyRCTNeverExceedsSaturation(t *testing.T) {
	f := func(seed uint64, policy uint8) bool {
		cfg, _ := ForTRHD(1000)
		cfg.FTH = 50
		cfg.Seed = seed
		cfg.ResetPolicy = ResetPolicy(policy % 3)
		m := MustNew(cfg, track.NopSink{})
		rng := stats.NewRNG(seed ^ 7)
		ref := 0
		for i := 0; i < 8000; i++ {
			row := m.cfg.Geometry.RowAt(cfg.Mapping, rng.Intn(4), rng.Intn(1024))
			m.OnActivate(0, row, 0)
			if rng.Intn(10) == 0 {
				m.OnREF(ref%8192, 0)
				ref++
			}
			if m.WantsALERT() {
				m.ServiceALERT(0)
			}
		}
		for region := 0; region < cfg.Regions; region++ {
			if m.RegionCount(0, region) > cfg.FTH+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQueueUniqueAndBounded: MIRZA-Q never holds duplicates and
// never exceeds its capacity; tardiness only grows while queued.
func TestPropertyQueueUniqueAndBounded(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, _ := ForTRHD(1000)
		cfg.FTH = 0
		cfg.Seed = seed
		m := MustNew(cfg, track.NopSink{})
		rng := stats.NewRNG(seed ^ 99)
		for i := 0; i < 6000; i++ {
			row := m.cfg.Geometry.RowAt(cfg.Mapping, rng.Intn(8), rng.Intn(32))
			m.OnActivate(0, row, 0)
			if rng.Intn(20) == 0 && m.WantsALERT() {
				m.ServiceALERT(0)
			}
			snap := m.QueueSnapshot(0)
			if len(snap) > cfg.QueueSize {
				return false
			}
			seen := map[int]bool{}
			for _, e := range snap {
				if seen[e.Row] || e.Tardiness < 1 {
					return false
				}
				seen[e.Row] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterminism: identical seeds and streams give identical
// statistics regardless of when they run.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64) MirzaStats {
		cfg, _ := ForTRHD(500)
		cfg.FTH = 50 // engage the randomized stage heavily
		cfg.Seed = seed
		m := MustNew(cfg, track.NopSink{})
		rng := stats.NewRNG(123)
		for i := 0; i < 20000; i++ {
			row := m.cfg.Geometry.RowAt(cfg.Mapping, rng.Intn(4), rng.Intn(64))
			m.OnActivate(rng.Intn(4), row, 0)
			if m.WantsALERT() {
				m.ServiceALERT(0)
			}
		}
		return m.Stats
	}
	if run(7) != run(7) {
		t.Error("same seed must reproduce identical stats")
	}
	if run(7) == run(8) {
		t.Error("different seeds should diverge")
	}
}
