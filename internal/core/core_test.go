package core

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/track"
)

func TestConfigPresetsMatchTableVII(t *testing.T) {
	cases := []struct {
		trhd, fth, w, regions, sram int
	}{
		{500, 660, 8, 256, 340},
		{1000, 1500, 12, 128, 196},
		{2000, 3330, 16, 64, 116},
		{4800, 8186, 36, 32, 72},
	}
	for _, c := range cases {
		cfg, err := ForTRHD(c.trhd)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("TRHD=%d: %v", c.trhd, err)
		}
		if cfg.FTH != c.fth || cfg.MINTWindow != c.w || cfg.Regions != c.regions {
			t.Errorf("TRHD=%d: got FTH=%d W=%d regions=%d, want %d/%d/%d",
				c.trhd, cfg.FTH, cfg.MINTWindow, cfg.Regions, c.fth, c.w, c.regions)
		}
		if got := cfg.SRAMBytesPerBank(); got != c.sram {
			t.Errorf("TRHD=%d: SRAM/bank = %d bytes, want %d (Table VII)", c.trhd, got, c.sram)
		}
	}
	if _, err := ForTRHD(123); err == nil {
		t.Error("unknown threshold should error")
	}
}

func TestConfigValidation(t *testing.T) {
	base, _ := ForTRHD(1000)
	bad := base
	bad.MINTWindow = 3
	if err := bad.Validate(); err == nil {
		t.Error("W < 4 must be rejected (Section V.D)")
	}
	bad = base
	bad.Regions = 100 // does not divide 128
	if err := bad.Validate(); err == nil {
		t.Error("regions not dividing subarrays must be rejected")
	}
	bad = base
	bad.QueueSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero queue must be rejected")
	}
}

func TestRegionMapping(t *testing.T) {
	g := dram.Default()
	// 128 regions = 1 per subarray, strided mapping.
	cfg, _ := ForTRHD(1000)
	if cfg.RegionRows() != 1024 {
		t.Fatalf("RegionRows = %d", cfg.RegionRows())
	}
	for _, row := range []int{0, 1, 127, 128, 131071} {
		want := g.Subarray(dram.StridedR2SA, row)
		if got := cfg.regionOf(row); got != want {
			t.Errorf("row %d: region %d, want subarray %d", row, got, want)
		}
	}
	// 256 regions = 2 per subarray: physical halves of each subarray.
	cfg500, _ := ForTRHD(500)
	saRows := g.SubarrayRows
	rLow := g.RowAt(dram.StridedR2SA, 3, 10)        // physical idx 10 -> lower half
	rHigh := g.RowAt(dram.StridedR2SA, 3, saRows-1) // upper half
	if cfg500.regionOf(rLow) != 3*2 {
		t.Errorf("lower half region = %d, want %d", cfg500.regionOf(rLow), 6)
	}
	if cfg500.regionOf(rHigh) != 3*2+1 {
		t.Errorf("upper half region = %d, want %d", cfg500.regionOf(rHigh), 7)
	}
	// 64 regions = 2 subarrays per region.
	cfg2k, _ := ForTRHD(2000)
	r0 := g.RowAt(dram.StridedR2SA, 0, 5)
	r1 := g.RowAt(dram.StridedR2SA, 1, 5)
	r2 := g.RowAt(dram.StridedR2SA, 2, 5)
	if cfg2k.regionOf(r0) != cfg2k.regionOf(r1) {
		t.Error("subarrays 0 and 1 should share a region at 64 regions")
	}
	if cfg2k.regionOf(r0) == cfg2k.regionOf(r2) {
		t.Error("subarrays 0 and 2 should not share a region at 64 regions")
	}
}

func TestEdgeNeighborRegion(t *testing.T) {
	cfg, _ := ForTRHD(500) // 256 regions: 2 per subarray, boundary at idx 512
	g := cfg.Geometry
	// Row at physical index 511 (last of region 2k) must also bump region 2k+1.
	row := g.RowAt(cfg.Mapping, 7, 511)
	if nb := cfg.edgeNeighborRegion(row); nb != 7*2+1 {
		t.Errorf("edge 511: neighbor region %d, want %d", nb, 15)
	}
	// Row at physical index 512 (first of upper region) must bump the lower.
	row = g.RowAt(cfg.Mapping, 7, 512)
	if nb := cfg.edgeNeighborRegion(row); nb != 7*2 {
		t.Errorf("edge 512: neighbor region %d, want %d", nb, 14)
	}
	// Interior rows and subarray-edge rows have no neighbor region.
	if nb := cfg.edgeNeighborRegion(g.RowAt(cfg.Mapping, 7, 100)); nb != -1 {
		t.Errorf("interior row has neighbor region %d", nb)
	}
	if nb := cfg.edgeNeighborRegion(g.RowAt(cfg.Mapping, 7, 0)); nb != -1 {
		t.Errorf("subarray edge row has neighbor region %d", nb)
	}
	// Regions >= subarray size: no edge handling needed.
	cfg1k, _ := ForTRHD(1000)
	if nb := cfg1k.edgeNeighborRegion(12345); nb != -1 {
		t.Errorf("whole-subarray regions should have no edge neighbors, got %d", nb)
	}
}

func TestQueueSemantics(t *testing.T) {
	q := NewQueue(4)
	if q.Full() || q.Len() != 0 {
		t.Fatal("fresh queue state wrong")
	}
	for i, row := range []int{10, 20, 30} {
		if !q.Insert(row) {
			t.Fatalf("insert %d failed", row)
		}
		if q.Len() != i+1 {
			t.Fatalf("len = %d", q.Len())
		}
	}
	if q.Insert(20) {
		t.Error("duplicate insert must fail (no duplicates, Section IV.A)")
	}
	if _, ok := q.Touch(20); !ok {
		t.Error("touch of queued row failed")
	}
	if tard, _ := q.Touch(20); tard != 3 {
		t.Errorf("tardiness = %d, want 3 (insert=1 + two touches)", tard)
	}
	if !q.Insert(40) || !q.Full() {
		t.Error("queue should fill at 4 entries")
	}
	if q.Insert(50) {
		t.Error("insert into full queue must fail")
	}
	// TakeMax returns the highest-tardiness entry.
	e, ok := q.TakeMax()
	if !ok || e.Row != 20 || e.Tardiness != 3 {
		t.Errorf("TakeMax = %+v", e)
	}
	if q.Full() || q.Len() != 3 {
		t.Error("TakeMax should free a slot")
	}
}

// newTestMirza builds a small-geometry MIRZA for fast unit tests.
func newTestMirza(t *testing.T, mutate func(*Config)) (*Mirza, *track.CountingSink) {
	t.Helper()
	cfg, err := ForTRHD(1000)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sink := &track.CountingSink{}
	m, err := New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	return m, sink
}

func TestFilteringAbsorbsBelowFTH(t *testing.T) {
	m, _ := newTestMirza(t, nil)
	row := m.Config().Geometry.RowAt(m.Config().Mapping, 0, 100)
	region := m.Config().regionOf(row)
	for i := 0; i < m.Config().FTH; i++ {
		m.OnActivate(0, row, 0)
	}
	if m.Stats.Escaped != 0 {
		t.Fatalf("escaped %d ACTs below FTH", m.Stats.Escaped)
	}
	if got := m.RegionCount(0, region); got != m.Config().FTH {
		t.Fatalf("region count = %d, want %d", got, m.Config().FTH)
	}
	// Counter saturates at FTH+1; further ACTs escape.
	for i := 0; i < 100; i++ {
		m.OnActivate(0, row, 0)
	}
	if got := m.RegionCount(0, region); got != m.Config().FTH+1 {
		t.Errorf("region counter = %d, want saturation at FTH+1", got)
	}
	// First post-FTH ACT increments to FTH+1 and is still filtered; the
	// remaining 99 escape.
	if m.Stats.Escaped != 99 {
		t.Errorf("escaped = %d, want 99", m.Stats.Escaped)
	}
}

func TestMINTSelectionRateIsOneInW(t *testing.T) {
	m, _ := newTestMirza(t, func(c *Config) { c.FTH = 0; c.QTH = 1 << 30 })
	g := m.Config().Geometry
	// With FTH=0 the first ACT to the region is filtered (counter 0<=0 ->
	// increment), everything after escapes. Use many distinct rows so the
	// queue-touch path stays cold, and drain the queue whenever MIRZA asks
	// for an ALERT so insertions never drop.
	const n = 120000
	for i := 0; i < n; i++ {
		m.OnActivate(0, g.RowAt(m.Config().Mapping, i%128, (i/128)%1024), 0)
		if m.WantsALERT() {
			m.ServiceALERT(0)
		}
	}
	if m.Stats.DroppedSel != 0 {
		t.Fatalf("%d selections dropped", m.Stats.DroppedSel)
	}
	rate := float64(m.Stats.Selections) / float64(m.Stats.Escaped)
	want := 1.0 / float64(m.Config().MINTWindow)
	if rate < want*0.9 || rate > want*1.1 {
		t.Errorf("selection rate = %v, want ~%v", rate, want)
	}
}

func TestQueueFullRaisesALERTAndServiceDrains(t *testing.T) {
	m, sink := newTestMirza(t, func(c *Config) { c.FTH = 0; c.MINTWindow = 4 })
	g := m.Config().Geometry
	i := 0
	for !m.WantsALERT() && i < 100000 {
		m.OnActivate(0, g.RowAt(m.Config().Mapping, i%128, (i/128)%1000), 0)
		i++
	}
	if !m.WantsALERT() {
		t.Fatal("queue never filled / ALERT never requested")
	}
	if len(m.QueueSnapshot(0)) != m.Config().QueueSize {
		t.Fatalf("queue holds %d entries at ALERT, want full %d",
			len(m.QueueSnapshot(0)), m.Config().QueueSize)
	}
	m.ServiceALERT(0)
	if sink.Mitigations == 0 {
		t.Fatal("service mitigated nothing")
	}
	if sink.VictimRows != sink.Mitigations*int64(track.MitigationVictims) {
		t.Errorf("victims = %d for %d mitigations", sink.VictimRows, sink.Mitigations)
	}
	if len(m.QueueSnapshot(0)) != m.Config().QueueSize-1 {
		t.Errorf("service should drain exactly one entry per bank")
	}
	if m.WantsALERT() {
		t.Error("ALERT should clear once no queue is full")
	}
}

func TestTardinessBeyondQTHRaisesALERT(t *testing.T) {
	m, _ := newTestMirza(t, func(c *Config) { c.FTH = 0; c.MINTWindow = 4 })
	g := m.Config().Geometry
	// Drive ACTs until some row enters the queue.
	i := 0
	for len(m.QueueSnapshot(0)) == 0 && i < 100000 {
		m.OnActivate(0, g.RowAt(m.Config().Mapping, i%128, (i/128)%1000), 0)
		i++
	}
	entries := m.QueueSnapshot(0)
	if len(entries) == 0 {
		t.Fatal("nothing entered the queue")
	}
	row := entries[0].Row
	for j := 0; j <= m.Config().QTH; j++ {
		m.OnActivate(0, row, 0)
	}
	if !m.WantsALERT() {
		t.Error("tardiness beyond QTH must raise ALERT")
	}
	snap := m.QueueSnapshot(0)
	if snap[0].Tardiness <= m.Config().QTH {
		t.Errorf("tardiness = %d, want > QTH=%d", snap[0].Tardiness, m.Config().QTH)
	}
	// Service must pick the highest-tardiness entry.
	var mitigated []int
	m2 := m // alias for closure clarity
	_ = m2
	m.ServiceALERT(0)
	for _, e := range m.QueueSnapshot(0) {
		mitigated = append(mitigated, e.Row)
		if e.Row == row {
			t.Error("highest-tardiness row should have been mitigated first")
		}
	}
}

func TestRefreshWalkResetsRCT(t *testing.T) {
	m, _ := newTestMirza(t, nil)
	cfg := m.Config()
	g := cfg.Geometry
	row := g.RowAt(cfg.Mapping, 0, 100)
	region := cfg.regionOf(row)
	for i := 0; i < 500; i++ {
		m.OnActivate(0, row, 0)
	}
	if m.RegionCount(0, region) != 500 {
		t.Fatal("precondition failed")
	}
	// Walk one full refresh window of REFs.
	for k := 0; k < g.REFsPerWindow(); k++ {
		m.OnREF(k, 0)
	}
	if got := m.RegionCount(0, region); got != 0 {
		t.Errorf("region count after full refresh window = %d, want 0", got)
	}
}

// The Appendix B reset-policy scenarios. Eager reset (clear at the first
// REF of the region) is broken by targeting a row refreshed late in the
// region: FTH-1 activations land just before the first REF and FTH-1 more
// between the first and last REF, all filtered. Lazy reset (clear at the
// last REF) is broken symmetrically by targeting a row refreshed early.
// Safe reset (RRC hand-off) must let activations escape filtering in both
// scenarios.

func TestEagerResetScenario(t *testing.T) {
	for _, policy := range []ResetPolicy{EagerReset, SafeReset} {
		m, _ := newTestMirza(t, func(c *Config) { c.ResetPolicy = policy })
		cfg := m.Config()
		g := cfg.Geometry
		// Target a row refreshed at the END of region 0's refresh.
		row := g.RowAt(cfg.Mapping, 0, g.SubarrayRows-1)

		for i := 0; i < cfg.FTH-1; i++ { // just before the region's first REF
			m.OnActivate(0, row, 0)
		}
		m.OnREF(0, 0)                    // region 0 refresh begins
		for i := 0; i < cfg.FTH-1; i++ { // between first and last REF
			m.OnActivate(0, row, 0)
		}
		for k := 1; k < g.REFsPerSubarray(); k++ {
			m.OnREF(k, 0)
		}

		if policy == EagerReset {
			if m.Stats.Escaped != 0 {
				t.Errorf("eager: expected the full 2(FTH-1) ACTs filtered (the insecurity), %d escaped", m.Stats.Escaped)
			}
		} else {
			if m.Stats.Escaped == 0 {
				t.Error("safe reset must not filter 2(FTH-1) activations")
			}
		}
	}
}

func TestLazyResetScenario(t *testing.T) {
	for _, policy := range []ResetPolicy{LazyReset, SafeReset} {
		m, _ := newTestMirza(t, func(c *Config) { c.ResetPolicy = policy })
		cfg := m.Config()
		g := cfg.Geometry
		// Target a row refreshed at the START of region 0's refresh.
		row := g.RowAt(cfg.Mapping, 0, 0)

		m.OnREF(0, 0)                    // the row itself is refreshed here
		for i := 0; i < cfg.FTH-1; i++ { // between first and last REF
			m.OnActivate(0, row, 0)
		}
		for k := 1; k < g.REFsPerSubarray(); k++ { // region refresh completes
			m.OnREF(k, 0)
		}
		for i := 0; i < cfg.FTH-1; i++ { // after the (lazy) reset
			m.OnActivate(0, row, 0)
		}

		if policy == LazyReset {
			if m.Stats.Escaped != 0 {
				t.Errorf("lazy: expected the full 2(FTH-1) ACTs filtered (the insecurity), %d escaped", m.Stats.Escaped)
			}
		} else {
			if m.Stats.Escaped == 0 {
				t.Error("safe reset must not filter 2(FTH-1) activations")
			}
		}
	}
}

func TestEdgeRowDoubleIncrement(t *testing.T) {
	m, _ := newTestMirza(t, func(c *Config) {
		// 256 regions: boundary inside each subarray.
		c.Regions = 256
		c.FTH = 660
	})
	cfg := m.Config()
	g := cfg.Geometry
	row := g.RowAt(cfg.Mapping, 0, 511) // last row of region 0
	m.OnActivate(0, row, 0)
	if m.Stats.EdgeDouble != 1 {
		t.Fatalf("edge double increments = %d, want 1", m.Stats.EdgeDouble)
	}
	if m.RegionCount(0, 0) != 1 || m.RegionCount(0, 1) != 1 {
		t.Errorf("both boundary regions must be incremented: %d, %d",
			m.RegionCount(0, 0), m.RegionCount(0, 1))
	}
}

func TestResetStatsPreservesState(t *testing.T) {
	m, _ := newTestMirza(t, nil)
	row := m.Config().Geometry.RowAt(m.Config().Mapping, 0, 10)
	for i := 0; i < 100; i++ {
		m.OnActivate(0, row, 0)
	}
	region := m.Config().regionOf(row)
	before := m.RegionCount(0, region)
	m.ResetStats()
	if m.Stats.ACTs != 0 {
		t.Error("stats not reset")
	}
	if m.RegionCount(0, region) != before {
		t.Error("ResetStats must not clear RCT state")
	}
}
