// Package core implements MIRZA (Mitigating Rowhammer with Randomization and
// ALERT), the paper's primary contribution: a low-cost reactive in-DRAM
// mitigation combining
//
//   - a Region Count Table (RCT) performing Coarse-Grained Filtering (CGF),
//     which exempts >99% of benign activations from mitigation,
//   - a MINT single-entry randomized sampler over the activations that
//     escape filtering,
//   - a small per-bank queue (MIRZA-Q) with tardiness counters, and
//   - the ALERT-Back-Off (ABO) protocol to reactively obtain mitigation time.
//
// The package also implements the safe RCT reset of Appendix B (via the
// Refreshed-Region-Counter), together with the insecure eager/lazy variants
// used to demonstrate why safe reset is needed.
package core

import (
	"fmt"
	"math/bits"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// ResetPolicy selects how RCT counters are cleared as their region is
// refreshed (Appendix B).
type ResetPolicy int

const (
	// SafeReset copies the RCT entry into the Refreshed-Region-Counter
	// (RRC) when the region's refresh begins, clears the RCT entry, and
	// updates/consults both while the region is mid-refresh. This is
	// MIRZA's secure policy.
	SafeReset ResetPolicy = iota
	// EagerReset clears the RCT entry at the first REF of the region.
	// INSECURE: a row refreshed late in the region can accrue up to
	// 2*(FTH-1) activations without participating in mitigation.
	EagerReset
	// LazyReset clears the RCT entry at the last REF of the region.
	// INSECURE, symmetric to EagerReset for rows refreshed early.
	LazyReset
)

// String implements fmt.Stringer.
func (p ResetPolicy) String() string {
	switch p {
	case SafeReset:
		return "safe"
	case EagerReset:
		return "eager"
	case LazyReset:
		return "lazy"
	default:
		return fmt.Sprintf("ResetPolicy(%d)", int(p))
	}
}

// Config holds all MIRZA design parameters for one sub-channel.
type Config struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping // Row-to-Subarray mapping (strided by default)

	Regions int // RCT entries per bank (regions per bank)
	FTH     int // Filtering Threshold: RCT counts <= FTH are filtered

	MINTWindow int // W: MINT selects 1 of W escaping activations
	QueueSize  int // MIRZA-Q entries per bank (default 4)
	QTH        int // Queue Tardiness Threshold (default 16)

	ResetPolicy ResetPolicy
	Seed        uint64

	// TargetTRHD records the double-sided Rowhammer threshold this
	// configuration was provisioned for (documentation/reporting only).
	TargetTRHD int
}

// DefaultQueueSize and DefaultQTH are the paper's defaults (Section VI.C).
const (
	DefaultQueueSize = 4
	DefaultQTH       = 16
)

// ForTRHD returns the paper's MIRZA configuration (Table VII) for a target
// double-sided threshold. Supported thresholds: 500, 1000, 2000, and 4800
// (the Table XII current-device configuration).
func ForTRHD(trhd int) (Config, error) {
	c := Config{
		Geometry:    dram.Default(),
		Mapping:     dram.StridedR2SA,
		QueueSize:   DefaultQueueSize,
		QTH:         DefaultQTH,
		ResetPolicy: SafeReset,
		TargetTRHD:  trhd,
	}
	switch trhd {
	case 500:
		c.FTH, c.MINTWindow, c.Regions = 660, 8, 256
	case 1000:
		c.FTH, c.MINTWindow, c.Regions = 1500, 12, 128
	case 2000:
		c.FTH, c.MINTWindow, c.Regions = 3330, 16, 64
	case 4800:
		// Table XII: current-threshold configuration with 32 regions and
		// no victim refreshes under REF; FTH chosen to fill the 13-bit
		// counter budget (72 bytes/bank).
		c.FTH, c.MINTWindow, c.Regions = 8186, 36, 32
	default:
		return Config{}, fmt.Errorf("core: no preset MIRZA configuration for TRHD=%d (supported: 500, 1000, 2000, 4800)", trhd)
	}
	return c, nil
}

// Validate reports an error if the configuration is unusable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	s := c.Geometry.Subarrays()
	switch {
	case c.Regions < 1:
		return fmt.Errorf("core: Regions must be >= 1, got %d", c.Regions)
	case c.Regions <= s && s%c.Regions != 0:
		return fmt.Errorf("core: Regions=%d must divide subarrays=%d", c.Regions, s)
	case c.Regions > s && c.Regions%s != 0:
		return fmt.Errorf("core: Regions=%d must be a multiple of subarrays=%d", c.Regions, s)
	case c.Regions > s && c.Geometry.SubarrayRows*s/c.Regions < c.Geometry.RowsPerREF:
		return fmt.Errorf("core: region smaller than one REF burst")
	case c.FTH < 0:
		return fmt.Errorf("core: FTH must be >= 0, got %d", c.FTH)
	case c.MINTWindow < 1:
		return fmt.Errorf("core: MINT window must be >= 1, got %d", c.MINTWindow)
	case c.MINTWindow < 4:
		// Section V.D: up to 4 ACTs can land between consecutive ALERTs
		// while each ALERT drains only one MIRZA-Q entry per bank, so
		// steady-state insertion must not exceed one per ALERT.
		return fmt.Errorf("core: MINT window must be >= 4 to bound insertions per ALERT (Section V.D), got %d", c.MINTWindow)
	case c.QueueSize < 1:
		return fmt.Errorf("core: queue size must be >= 1, got %d", c.QueueSize)
	case c.QTH < 1:
		return fmt.Errorf("core: QTH must be >= 1, got %d", c.QTH)
	}
	return nil
}

// RegionRows returns the number of rows per region.
func (c Config) RegionRows() int {
	return c.Geometry.RowsPerBank / c.Regions
}

// CounterBits returns the width of one RCT counter: it must represent
// values 0..FTH+1 (the counter saturates at FTH+1).
func (c Config) CounterBits() int {
	return bits.Len(uint(c.FTH + 1))
}

// FixedSRAMBytes is the per-bank overhead besides the RCT: the MIRZA-Q
// (17-bit row id, byte-wide tardiness counter and a valid bit per entry),
// the MINT sampler state (7-bit window count and target, captured row id,
// valid bit), and the RRC register with 11 bits of refresh-position
// bookkeeping. It comes to 20 bytes for the default 4-entry queue,
// matching the paper's 196-byte total at TRHD=1K (176B RCT + 20B).
func (c Config) FixedSRAMBytes() int {
	rowBits := bits.Len(uint(c.Geometry.RowsPerBank - 1))
	queueBits := c.QueueSize * (rowBits + 8 + 1)
	mintBits := 2*7 + rowBits + 1 // count, target, selected row, valid
	rrcBits := c.CounterBits() + 11
	return (queueBits + mintBits + rrcBits + 7) / 8
}

// SRAMBytesPerBank returns the total per-bank SRAM requirement:
// Regions counters of CounterBits each, plus the fixed overhead.
// For the Table VII presets this returns 340/196/116 bytes for TRHD
// 500/1000/2000 and 72 bytes for the TRHD=4800 configuration.
func (c Config) SRAMBytesPerBank() int {
	rct := (c.Regions*c.CounterBits() + 7) / 8
	return rct + c.FixedSRAMBytes()
}

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("MIRZA(TRHD=%d FTH=%d W=%d regions=%d Q=%d QTH=%d %s-R2SA %s-reset)",
		c.TargetTRHD, c.FTH, c.MINTWindow, c.Regions, c.QueueSize, c.QTH, c.Mapping, c.ResetPolicy)
}

// regionOf returns the RCT region of a logical row, derived from its
// physical placement: whole subarrays group into a region when
// Regions <= subarrays, and a subarray splits into equal physical-index
// stripes when Regions > subarrays.
func (c Config) regionOf(row int) int {
	g := c.Geometry
	sa := g.Subarray(c.Mapping, row)
	s := g.Subarrays()
	if c.Regions <= s {
		return sa / (s / c.Regions)
	}
	perSA := c.Regions / s
	regionRows := g.SubarrayRows / perSA
	return sa*perSA + g.PhysicalIndex(c.Mapping, row)/regionRows
}

// edgeNeighborRegion returns the adjacent region whose counter must also be
// incremented when row sits on an intra-subarray region boundary (footnote
// 3 of Section VI.B: a victim at a region edge would otherwise let both
// aggressors of a double-sided pair accrue FTH each). It returns -1 when
// the row is not an edge row or regions are not smaller than a subarray.
func (c Config) edgeNeighborRegion(row int) int {
	g := c.Geometry
	s := g.Subarrays()
	if c.Regions <= s {
		return -1
	}
	perSA := c.Regions / s
	regionRows := g.SubarrayRows / perSA
	idx := g.PhysicalIndex(c.Mapping, row)
	within := idx % regionRows
	sa := g.Subarray(c.Mapping, row)
	base := sa * perSA
	switch {
	case within == 0 && idx > 0:
		return base + idx/regionRows - 1
	case within == regionRows-1 && idx < g.SubarrayRows-1:
		return base + idx/regionRows + 1
	default:
		return -1
	}
}

// newRNG derives the package RNG from the seed.
func (c Config) newRNG() *stats.RNG {
	return stats.NewRNG(c.Seed ^ 0x4d49525a41) // "MIRZA"
}

var _ = track.MitigationVictims // package coupling documented in mirza.go
