package core

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// MirzaStats collects the per-sub-channel counters the experiments consume.
type MirzaStats struct {
	ACTs         int64 // all activations observed
	Filtered     int64 // activations absorbed by the RCT (count <= FTH)
	Escaped      int64 // activations that escaped filtering
	QueueHits    int64 // escaped ACTs whose row was already queued
	Selections   int64 // rows captured by MINT and inserted in MIRZA-Q
	DroppedSel   int64 // MINT selections lost to a full queue (adversarial timing only)
	Mitigations  int64 // rows mitigated via ALERT service
	AlertsRaised int64 // distinct ALERT requests raised
	EdgeDouble   int64 // edge-row double increments of the RCT
}

// EscapeProbability returns Escaped/ACTs (the CGF escape probability used
// in Tables VI, VIII and IX).
func (s MirzaStats) EscapeProbability() float64 {
	if s.ACTs == 0 {
		return 0
	}
	return float64(s.Escaped) / float64(s.ACTs)
}

// MitigationRate returns Mitigations/ACTs (the mitigation overhead of
// Table VIII).
func (s MirzaStats) MitigationRate() float64 {
	if s.ACTs == 0 {
		return 0
	}
	return float64(s.Mitigations) / float64(s.ACTs)
}

// bankState is the per-bank portion of MIRZA: the RCT column, the MINT
// sampler, and the MIRZA-Q.
type bankState struct {
	rct   []int32 // region counters, saturating at FTH+1
	rrc   int32   // Refreshed-Region-Counter (safe reset, Appendix B)
	queue *Queue
	mint  *track.MINTSampler
}

// Mirza implements track.Mitigator for one sub-channel. Structures are
// replicated per bank as in Figure 8; the ALERT request is channel-wide.
type Mirza struct {
	cfg  Config
	sink track.Sink

	banks []bankState
	// refreshingRegion is the region currently mid-refresh (-1 if none);
	// REF proceeds in lockstep across banks so one value suffices, while
	// the RRC value itself is per bank.
	refreshingRegion int

	want  bool
	Stats MirzaStats
}

var _ track.Mitigator = (*Mirza)(nil)

// New builds a MIRZA mitigator from cfg, reporting mitigations to sink
// (which may be nil).
func New(cfg Config, sink track.Sink) (*Mirza, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		sink = track.NopSink{}
	}
	m := &Mirza{cfg: cfg, sink: sink, refreshingRegion: -1}
	rng := cfg.newRNG()
	m.banks = make([]bankState, cfg.Geometry.BanksPerSubChannel)
	for i := range m.banks {
		m.banks[i] = bankState{
			rct:   make([]int32, cfg.Regions),
			queue: NewQueue(cfg.QueueSize),
			mint:  track.NewMINTSampler(cfg.MINTWindow, rng.Split()),
		}
	}
	return m, nil
}

// MustNew is New, panicking on configuration errors. It is a convenience
// for tests, examples and factory closures whose configuration has already
// passed Config.Validate; library code that can return an error should use
// New, leaving runner-level panic recovery as the backstop rather than the
// error handler.
func MustNew(cfg Config, sink track.Sink) *Mirza {
	m, err := New(cfg, sink)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration the mitigator was built with.
func (m *Mirza) Config() Config { return m.cfg }

// Name implements track.Mitigator.
func (m *Mirza) Name() string { return m.cfg.String() }

// OnActivate implements track.Mitigator. It realizes the three-case
// operation of Section V.B:
//  1. RCT counter <= FTH: increment it (filtered, no mitigation work);
//  2. counter beyond FTH and row already queued: bump its tardiness;
//  3. counter beyond FTH and row not queued: participate in MINT selection
//     and, if selected, enter MIRZA-Q.
func (m *Mirza) OnActivate(bank, row int, now dram.Time) {
	m.Stats.ACTs++
	b := &m.banks[bank]
	region := m.cfg.regionOf(row)

	filtered := m.bumpRegion(b, region)
	if nb := m.cfg.edgeNeighborRegion(row); nb >= 0 {
		m.Stats.EdgeDouble++
		// The edge-row rule increments the neighbor region as well; the
		// filtering outcome is decided by the row's own region.
		m.bumpRegion(b, nb)
	}
	if filtered {
		m.Stats.Filtered++
		return
	}
	m.Stats.Escaped++

	if t, ok := b.queue.Touch(row); ok {
		m.Stats.QueueHits++
		if t > m.cfg.QTH {
			m.raiseALERT()
		}
		return
	}

	if b.mint.ObserveRolling(row) {
		if b.queue.Insert(row) {
			m.Stats.Selections++
			if b.queue.Full() {
				m.raiseALERT()
			}
		} else {
			// A selection with a full queue can only happen under
			// adversarial timing while an ALERT is already outstanding
			// (Validate enforces W >= 4, which bounds steady-state
			// insertions to one per ALERT, Section V.D).
			m.Stats.DroppedSel++
			m.raiseALERT()
		}
	}
}

// bumpRegion applies the RCT counting rule to region of bank b and reports
// whether the activation is filtered. While the region is mid-refresh the
// Refreshed-Region-Counter both receives the update and decides filtering
// (safe reset, Appendix B).
func (m *Mirza) bumpRegion(b *bankState, region int) (filtered bool) {
	fth := int32(m.cfg.FTH)
	if m.cfg.ResetPolicy == SafeReset && region == m.refreshingRegion {
		if b.rct[region] <= fth {
			b.rct[region]++
		}
		if b.rrc <= fth {
			b.rrc++
			return true
		}
		return false
	}
	if b.rct[region] <= fth {
		b.rct[region]++
		return true
	}
	return false
}

func (m *Mirza) raiseALERT() {
	if !m.want {
		m.want = true
		m.Stats.AlertsRaised++
	}
}

// WantsALERT implements track.Mitigator.
func (m *Mirza) WantsALERT() bool { return m.want }

// OnREF implements track.Mitigator: it advances the refresh sequence and
// applies the configured RCT reset policy at region boundaries.
func (m *Mirza) OnREF(refIndex int, now dram.Time) {
	g := m.cfg.Geometry
	t := g.RefreshTargetOf(refIndex)

	perSA := 1
	if m.cfg.Regions > g.Subarrays() {
		perSA = m.cfg.Regions / g.Subarrays()
	}
	regionRows := g.SubarrayRows / perSA
	var region int
	if m.cfg.Regions <= g.Subarrays() {
		region = t.Subarray / (g.Subarrays() / m.cfg.Regions)
	} else {
		region = t.Subarray*perSA + t.FirstIdx/regionRows
	}

	// Region refresh boundaries. A region's refresh begins when the REF
	// covers its first physical row and ends when it covers its last.
	// With Regions <= subarrays a region spans several subarrays: it
	// begins at the first REF of its first subarray and ends at the last
	// REF of its last subarray.
	saPerRegion := 1
	if m.cfg.Regions < g.Subarrays() {
		saPerRegion = g.Subarrays() / m.cfg.Regions
	}
	beginsRegion := t.FirstIdx%regionRows == 0 && (perSA > 1 || (t.FirstOfSA && t.Subarray%saPerRegion == 0))
	endsRegion := (t.LastIdx+1)%regionRows == 0 && (perSA > 1 || (t.LastOfSA && t.Subarray%saPerRegion == saPerRegion-1))
	if perSA > 1 {
		beginsRegion = t.FirstIdx%regionRows == 0
		endsRegion = (t.LastIdx+1)%regionRows == 0
	}

	switch m.cfg.ResetPolicy {
	case SafeReset:
		if beginsRegion {
			m.refreshingRegion = region
			for i := range m.banks {
				m.banks[i].rrc = m.banks[i].rct[region]
				m.banks[i].rct[region] = 0
			}
		}
		if endsRegion && m.refreshingRegion == region {
			m.refreshingRegion = -1
		}
	case EagerReset:
		if beginsRegion {
			for i := range m.banks {
				m.banks[i].rct[region] = 0
			}
		}
	case LazyReset:
		if endsRegion {
			for i := range m.banks {
				m.banks[i].rct[region] = 0
			}
		}
	}
}

// OnRFM implements track.Mitigator. MIRZA performs no proactive mitigation
// under RFM (Table XII: zero refresh cannibalization), but an unsolicited
// opportunity still drains the queue for robustness when a memory
// controller is configured with both RFM and MIRZA.
func (m *Mirza) OnRFM(bank int, now dram.Time) {
	m.mitigateBank(bank, now)
	m.recomputeWant()
}

// ServiceALERT implements track.Mitigator: every bank mitigates its
// highest-tardiness queued entry.
func (m *Mirza) ServiceALERT(now dram.Time) {
	for bank := range m.banks {
		m.mitigateBank(bank, now)
	}
	m.recomputeWant()
}

func (m *Mirza) mitigateBank(bank int, now dram.Time) {
	e, ok := m.banks[bank].queue.TakeMax()
	if !ok {
		return
	}
	m.Stats.Mitigations++
	m.sink.RowMitigated(bank, e.Row, track.MitigationVictims, now)
}

func (m *Mirza) recomputeWant() {
	for i := range m.banks {
		b := &m.banks[i]
		if b.queue.Full() || b.queue.MaxTardiness() > m.cfg.QTH {
			m.want = true
			return
		}
	}
	m.want = false
}

// RegionCount returns bank's RCT value for region (tests/tools).
func (m *Mirza) RegionCount(bank, region int) int {
	return int(m.banks[bank].rct[region])
}

// QueueSnapshot returns the valid MIRZA-Q entries of bank (tests/tools).
func (m *Mirza) QueueSnapshot(bank int) []QueueEntry {
	return m.banks[bank].queue.Entries()
}

// InjectStateFault implements track.StateInjector: it flips one bit of
// MIRZA's per-bank SRAM state. Most upsets land in the RCT (it dominates
// the SRAM budget — 176 of 196 bytes at TRHD=1K), so seven in eight flips
// corrupt a random region counter; the rest hit the MIRZA-Q tardiness
// counters (or the RRC while a refresh is mid-region). A downward RCT flip
// re-opens the filter for an already-hot region; an upward flip leaks
// benign activations into MINT selection — exactly the tracker-state
// corruption the fault harness is built to measure.
func (m *Mirza) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(m.banks))
	b := &m.banks[bank]
	if rng.Intn(8) == 0 {
		if n := b.queue.Len(); n > 0 {
			bit := rng.Intn(8) // tardiness counters are byte-wide
			row, _ := b.queue.FlipTardinessBit(rng.Intn(n), bit)
			return fmt.Sprintf("mirzaq[bank=%d][row=%d] tardiness bit %d", bank, row, bit)
		}
		if m.refreshingRegion >= 0 {
			bit := rng.Intn(m.cfg.CounterBits())
			b.rrc ^= 1 << bit
			return fmt.Sprintf("rrc[bank=%d] bit %d", bank, bit)
		}
		// Queue empty and no refresh in flight: fall through to the RCT.
	}
	region := rng.Intn(len(b.rct))
	bit := rng.Intn(m.cfg.CounterBits())
	b.rct[region] ^= 1 << bit
	return fmt.Sprintf("rct[bank=%d][region=%d] bit %d", bank, region, bit)
}

// ResetStats zeroes the statistics counters, preserving all tracker state
// (RCT counters, queues, MINT windows). Used when a warmed-up mitigator is
// carried from the replay phase into the timing simulation.
func (m *Mirza) ResetStats() { m.Stats = MirzaStats{} }

// TrackStats implements track.StatsSource, mapping MIRZA's counters onto
// the common vocabulary: insertions are MINT selections entering the
// MIRZA-Q and evictions are selections dropped by a full queue.
func (m *Mirza) TrackStats() track.Stats {
	return track.Stats{
		ACTs:         m.Stats.ACTs,
		Mitigations:  m.Stats.Mitigations,
		AlertsWanted: m.Stats.AlertsRaised,
		Insertions:   m.Stats.Selections,
		Evictions:    m.Stats.DroppedSel,
	}
}
