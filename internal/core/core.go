package core
