package core

// QueueEntry is one MIRZA-Q slot: a row selected by MINT awaiting
// mitigation, with a tardiness counter tracking the activations the row has
// received since entering the queue.
type QueueEntry struct {
	Row       int
	Tardiness int
	Valid     bool
}

// Queue is the per-bank MIRZA-Q: a small buffer (default 4 entries) that
// decouples MINT's selections from ALERT servicing, so one channel-wide
// ALERT can mitigate one row in every bank (Section IV.A). Rows are unique
// within the queue.
type Queue struct {
	entries []QueueEntry
	valid   int
}

// NewQueue creates a queue with n slots.
func NewQueue(n int) *Queue {
	return &Queue{entries: make([]QueueEntry, n)}
}

// Len returns the number of valid entries.
func (q *Queue) Len() int { return q.valid }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.entries) }

// Full reports whether every slot is occupied.
func (q *Queue) Full() bool { return q.valid == len(q.entries) }

// Touch increments the tardiness counter of row if it is queued, returning
// the updated counter and true; otherwise it returns 0, false.
func (q *Queue) Touch(row int) (tardiness int, ok bool) {
	for i := range q.entries {
		if q.entries[i].Valid && q.entries[i].Row == row {
			q.entries[i].Tardiness++
			return q.entries[i].Tardiness, true
		}
	}
	return 0, false
}

// Contains reports whether row is queued.
func (q *Queue) Contains(row int) bool {
	for i := range q.entries {
		if q.entries[i].Valid && q.entries[i].Row == row {
			return true
		}
	}
	return false
}

// Insert adds row with an initial tardiness of 1 (Section V.A). It returns
// false if the queue is full or the row is already present.
func (q *Queue) Insert(row int) bool {
	if q.Contains(row) {
		return false
	}
	for i := range q.entries {
		if !q.entries[i].Valid {
			q.entries[i] = QueueEntry{Row: row, Tardiness: 1, Valid: true}
			q.valid++
			return true
		}
	}
	return false
}

// MaxTardiness returns the largest tardiness among valid entries (0 if
// empty).
func (q *Queue) MaxTardiness() int {
	max := 0
	for i := range q.entries {
		if q.entries[i].Valid && q.entries[i].Tardiness > max {
			max = q.entries[i].Tardiness
		}
	}
	return max
}

// TakeMax removes and returns the valid entry with the highest tardiness
// counter — the entry mitigated on an ALERT (Section V.A).
func (q *Queue) TakeMax() (QueueEntry, bool) {
	best := -1
	for i := range q.entries {
		if !q.entries[i].Valid {
			continue
		}
		if best < 0 || q.entries[i].Tardiness > q.entries[best].Tardiness {
			best = i
		}
	}
	if best < 0 {
		return QueueEntry{}, false
	}
	e := q.entries[best]
	q.entries[best] = QueueEntry{}
	q.valid--
	return e, true
}

// FlipTardinessBit flips one bit of the tardiness counter of the n-th
// valid entry (0-based), modeling a transient SRAM upset in the MIRZA-Q.
// It returns the affected row and true, or false when fewer than n+1
// entries are valid.
func (q *Queue) FlipTardinessBit(n, bit int) (row int, ok bool) {
	for i := range q.entries {
		if !q.entries[i].Valid {
			continue
		}
		if n > 0 {
			n--
			continue
		}
		q.entries[i].Tardiness ^= 1 << bit
		return q.entries[i].Row, true
	}
	return 0, false
}

// Entries returns a snapshot of the valid entries (for tests and tools).
func (q *Queue) Entries() []QueueEntry {
	out := make([]QueueEntry, 0, q.valid)
	for _, e := range q.entries {
		if e.Valid {
			out = append(out, e)
		}
	}
	return out
}
