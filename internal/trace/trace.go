// Package trace provides synthetic workload generators that stand in for
// the paper's SimPoint traces of SPEC CPU2017 and GAP (Section III.B).
//
// The real traces are not available, so each workload is modeled as a
// parameterized stochastic stream of last-level-cache misses calibrated to
// the published per-workload statistics in Table IV: L3 MPKI, activations
// per kilo-instruction (via the streaming/row-locality and writeback mix),
// and the mean and spread of activations per subarray per refresh window
// (via footprint and hot-set skew). The paper's conclusions depend on these
// aggregate statistics — activation rate, row-buffer locality, and spatial
// spread over subarrays — rather than on instruction-level behaviour, so
// matching them preserves the shape of every experiment.
package trace

import (
	"fmt"
	"math"

	"mirza/internal/stats"
)

// Op is one memory operation of a trace: Gap non-memory instructions
// followed by a 64-byte access to virtual line address Line.
type Op struct {
	Gap   int64  // instructions executed before this access
	Line  uint64 // virtual line index (byte address = Line * 64)
	Write bool
}

// LineBytes is the access granularity.
const LineBytes = 64

// rowGroupLines is the number of lines in one 256KB "row-group" (the unit
// of physical memory that shares a DRAM row index across all banks under
// the MOP4 layout), and hotStride is the row-group distance that lands in
// the same subarray under strided R2SA (one subarray per 128 rows).
const (
	rowGroupLines = 256 * 1024 / LineBytes
	hotStride     = 128
	// groupsPerHotUnit spreads each hot unit's pressure over several
	// same-subarray row-groups, keeping per-row activation counts benign.
	groupsPerHotUnit = 8
)

// Generator produces an endless stream of memory operations.
type Generator interface {
	// Next fills op with the next operation.
	Next(op *Op)
	// Name identifies the workload.
	Name() string
}

// WorkloadSpec describes one benchmark's published characteristics
// (Table IV) plus the synthetic parameters derived from them.
type WorkloadSpec struct {
	Name  string
	Suite string // "GAP", "SPEC" or "MIX"

	// Published targets from Table IV.
	MPKI      float64 // L3 misses per kilo-instruction
	ACTPKI    float64 // DRAM activations per kilo-instruction
	BusUtil   float64 // data-bus utilisation, percent
	ActSAMean float64 // ACTs per subarray per tREFW (mean)
	ActSASdev float64 // ACTs per subarray per tREFW (std dev)

	// Synthetic knobs.
	FootprintMB int      // per-core resident working set
	MixOf       []string // component workloads (MIX suite only)
}

// streamShare is the expected activations per access for a streamed access
// under the MOP4 layout (4 consecutive lines per row visit => ~1 ACT per 4
// lines when the scheduler keeps the row open).
const streamShare = 0.25

// derived returns the internal generator parameters implied by the spec.
func (w WorkloadSpec) derived() (streamFrac, wbFrac, hotFrac float64, hotPages int) {
	r := 1.0
	if w.MPKI > 0 {
		r = w.ACTPKI / w.MPKI
	}
	if r < 1 {
		streamFrac = (1 - r) / (1 - streamShare)
		if streamFrac > 0.97 {
			streamFrac = 0.97
		}
	} else {
		// More activations than misses: write-back traffic dominates.
		streamFrac = 0.10
	}
	expACT := streamFrac*streamShare + (1 - streamFrac)
	// streamFrac is the share of accesses; bursts of 4 mean the burst-start
	// probability is streamFrac/(4-3*streamFrac).
	streamFrac = streamFrac / (4 - 3*streamFrac)
	wbFrac = r - expACT
	if wbFrac < 0 {
		wbFrac = 0
	}
	if wbFrac > 0.9 {
		wbFrac = 0.9
	}

	// Hot-set skew calibrated to the target sigma/mu of ACTs/subarray:
	// a hot set of K pages scattered over S subarrays contributes
	// relative spread ~ hotFrac / sqrt(K/S).
	ratio := 0.3
	if w.ActSAMean > 0 {
		ratio = w.ActSASdev / w.ActSAMean
	}
	hotFrac = ratio + 0.2
	if hotFrac > 0.6 {
		hotFrac = 0.6
	}
	// The hot set size that yields the target spread: hot pressure lands
	// on a Poisson(K/subarrays) number of units per subarray, so the
	// per-subarray sigma/mu is hotShare*sqrt(subarrays/K) with
	// hotShare ~ 0.9*hotFrac after stream/writeback dilution. Solving for
	// the target ratio gives K.
	const subarrays = 128
	hotShare := 0.9 * hotFrac
	hotPages = int(subarrays * (hotShare / ratio) * (hotShare / ratio))
	if hotPages < 4 {
		hotPages = 4
	}
	return streamFrac, wbFrac, hotFrac, hotPages
}

// Synthetic is the standard workload generator.
type Synthetic struct {
	spec WorkloadSpec
	rng  *stats.RNG

	footprintLines uint64
	meanGap        float64
	streamFrac     float64
	wbFrac         float64
	hotFrac        float64
	hotUnits       [][]uint64 // per-unit row-group indices (one subarray class each)

	cursors   []uint64 // streaming cursors (line indices)
	curIdx    int
	burstLeft int // remaining lines of the current 4-line MOP burst

	recent    []uint64 // ring of recently touched lines (writeback pool)
	recentIdx int

	pendingWB   bool
	pendingLine uint64
}

var _ Generator = (*Synthetic)(nil)

// NewSynthetic builds a generator for spec seeded with seed.
func NewSynthetic(spec WorkloadSpec, seed uint64) *Synthetic {
	if spec.MPKI <= 0 {
		panic(fmt.Sprintf("trace: workload %q needs MPKI > 0", spec.Name))
	}
	if spec.FootprintMB <= 0 {
		spec.FootprintMB = 256
	}
	g := &Synthetic{
		spec:           spec,
		rng:            stats.NewRNG(seed ^ hashName(spec.Name)),
		footprintLines: uint64(spec.FootprintMB) * 1024 * 1024 / LineBytes,
		meanGap:        1000 / spec.MPKI,
		recent:         make([]uint64, 1024),
	}
	var hotPages int
	g.streamFrac, g.wbFrac, g.hotFrac, hotPages = spec.derived()

	// Hot units are groups of four 256KB row-groups spaced 128 row-groups
	// apart: under both R2SA mappings the four land in one subarray, so a
	// unit concentrates per-subarray pressure (the sigma of Table IV)
	// while spreading it over 4x64 bank-rows, keeping per-row activation
	// counts benign (real workloads do not hammer single rows, which is
	// why PRAC sees no ALERTs at benign thresholds).
	groups := g.footprintLines / rowGroupLines
	if groups < groupsPerHotUnit*hotStride {
		groups = groupsPerHotUnit * hotStride // tiny footprints: wraparound
	}
	// The hot set is part of the program's data-structure layout, so in
	// rate mode every copy shares it (same binary, same virtual layout):
	// its placement derives from the workload name alone, while access
	// ordering uses the per-core seed. Each unit's row-groups share one
	// stride-class (subarray) but scatter across the class's physical
	// range, so the pressure covers the subarray rather than one corner.
	structural := stats.NewRNG(hashName(spec.Name) ^ 0x484f54)
	classes := groups / hotStride
	if classes < 1 {
		classes = 1
	}
	g.hotUnits = make([][]uint64, hotPages)
	for i := range g.hotUnits {
		base := uint64(structural.Int63n(int64(hotStride)))
		unit := make([]uint64, groupsPerHotUnit)
		for k := range unit {
			unit[k] = base + uint64(structural.Int63n(int64(classes)))*hotStride
		}
		g.hotUnits[i] = unit
	}
	g.cursors = make([]uint64, 4)
	for i := range g.cursors {
		g.cursors[i] = uint64(g.rng.Int63n(int64(g.footprintLines)))
	}
	for i := range g.recent {
		g.recent[i] = uint64(g.rng.Int63n(int64(g.footprintLines)))
	}
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.spec.Name }

// FootprintBytes returns the generator's resident working-set size. The
// simulators prefault this range sequentially (modeling an application's
// initialization sweep), so the clock-style frame allocator produces a
// near-identity mapping and the workload's virtual spatial structure
// survives physically — the condition under which Table IV's per-subarray
// statistics arise.
func (g *Synthetic) FootprintBytes() uint64 { return g.footprintLines * LineBytes }

// Spec returns the workload specification.
func (g *Synthetic) Spec() WorkloadSpec { return g.spec }

// Next implements Generator.
func (g *Synthetic) Next(op *Op) {
	if g.pendingWB {
		g.pendingWB = false
		op.Gap = 0
		op.Line = g.pendingLine
		op.Write = true
		return
	}
	op.Gap = g.sampleGap()
	op.Line = g.sampleLine()
	op.Write = false

	g.recent[g.recentIdx] = op.Line
	g.recentIdx = (g.recentIdx + 1) % len(g.recent)

	if g.wbFrac > 0 && g.rng.Float64() < g.wbFrac {
		g.pendingWB = true
		g.pendingLine = g.recent[g.rng.Intn(len(g.recent))]
	}
}

// sampleGap draws a bursty inter-miss gap with the calibrated mean: 60% of
// misses arrive in tight clusters (memory-level parallelism), the rest in
// long computation stretches.
func (g *Synthetic) sampleGap() int64 {
	var mean float64
	if g.rng.Float64() < 0.6 {
		mean = 0.25 * g.meanGap
	} else {
		mean = 2.125 * g.meanGap
	}
	gap := int64(-mean * math.Log(1-g.rng.Float64()))
	if gap < 0 {
		gap = 0
	}
	return gap
}

func (g *Synthetic) sampleLine() uint64 {
	// Streaming accesses arrive as aligned 4-line bursts matching the MOP4
	// group, which is what lets the scheduler serve them from one open-row
	// visit (the source of the workloads' ACT-PKI < MPKI).
	if g.burstLeft > 0 {
		g.burstLeft--
		c := (g.curIdx + len(g.cursors) - 1) % len(g.cursors)
		g.cursors[c] = (g.cursors[c] + 1) % g.footprintLines
		return g.cursors[c]
	}
	u := g.rng.Float64()
	switch {
	case u < g.streamFrac:
		c := g.curIdx
		g.curIdx = (g.curIdx + 1) % len(g.cursors)
		if g.rng.Intn(64) == 0 {
			g.cursors[c] = uint64(g.rng.Int63n(int64(g.footprintLines)))
		}
		// Align to the next MOP group and burst through it.
		g.cursors[c] = (g.cursors[c] + 3) / 4 * 4 % g.footprintLines
		g.burstLeft = 3
		return g.cursors[c]
	case u < g.streamFrac+(1-g.streamFrac)*g.hotFrac:
		// Hot-set access: a random line within one of the unit's four
		// same-subarray row-groups.
		unit := g.hotUnits[g.rng.Intn(len(g.hotUnits))]
		group := unit[g.rng.Intn(len(unit))]
		line := group*rowGroupLines + uint64(g.rng.Int63n(rowGroupLines))
		return line % g.footprintLines
	default:
		// Cold random access over the whole footprint.
		return uint64(g.rng.Int63n(int64(g.footprintLines)))
	}
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ImpliedIPS returns the aggregate instruction rate (instructions/second,
// all cores) implied by the workload's published Table IV statistics: the
// ACTs/subarray mean fixes the channel activation rate per refresh window,
// and ACT-PKI converts that to instructions. This anchors the synthetic
// system's speed to the paper's.
func (w WorkloadSpec) ImpliedIPS() float64 {
	if w.ACTPKI <= 0 || w.ActSAMean <= 0 {
		return 8e9
	}
	const subarrays, banks = 128, 64
	actsPerSec := w.ActSAMean * subarrays * banks / 0.032
	return actsPerSec * 1000 / w.ACTPKI
}

// MLPLimit returns the per-core outstanding-miss budget (MSHRs) that makes
// the simulated cores reach the workload's implied instruction rate under a
// typical loaded memory latency: MLP = IPS/cores * MPKI/1000 * latency.
// Pointer-chasing workloads (mcf, omnetpp) land near 2-4; streaming ones
// saturate the cap.
func (w WorkloadSpec) MLPLimit() int {
	const cores, loadedLatency = 8.0, 120e-9
	mlp := w.ImpliedIPS() / cores * (w.MPKI / 1000) * loadedLatency
	n := int(mlp + 0.5)
	if n < 3 {
		n = 3
	}
	if n > 16 {
		n = 16
	}
	return n
}
