package trace

import "fmt"

// Workloads returns the 24 evaluation workloads of Table IV: the six GAP
// graph benchmarks, the twelve SPEC CPU2017 benchmarks with L3 MPKI >= 1,
// and the six mixes. The published columns (MPKI, ACT-PKI, bus utilisation,
// ACTs/subarray mu +/- sigma) are carried as calibration targets.
func Workloads() []WorkloadSpec {
	return []WorkloadSpec{
		// GAP suite.
		{Name: "bc", Suite: "GAP", MPKI: 58.8, ACTPKI: 29.7, BusUtil: 82.0, ActSAMean: 572, ActSASdev: 191, FootprintMB: 1024},
		{Name: "bfs", Suite: "GAP", MPKI: 30.9, ACTPKI: 16.1, BusUtil: 80.6, ActSAMean: 642, ActSASdev: 278, FootprintMB: 1024},
		{Name: "cc", Suite: "GAP", MPKI: 57.9, ACTPKI: 51.5, BusUtil: 77.7, ActSAMean: 1037, ActSASdev: 542, FootprintMB: 2048},
		{Name: "pr", Suite: "GAP", MPKI: 57.7, ACTPKI: 29.5, BusUtil: 83.1, ActSAMean: 620, ActSASdev: 204, FootprintMB: 1536},
		{Name: "sssp", Suite: "GAP", MPKI: 27.2, ACTPKI: 13.0, BusUtil: 79.9, ActSAMean: 518, ActSASdev: 149, FootprintMB: 1024},
		{Name: "tc", Suite: "GAP", MPKI: 87.8, ACTPKI: 40.7, BusUtil: 85.5, ActSAMean: 558, ActSASdev: 118, FootprintMB: 512},

		// SPEC CPU2017 (MPKI >= 1).
		{Name: "blender", Suite: "SPEC", MPKI: 1.1, ACTPKI: 0.7, BusUtil: 16.0, ActSAMean: 84, ActSASdev: 46, FootprintMB: 128},
		{Name: "bwaves", Suite: "SPEC", MPKI: 41.6, ACTPKI: 15.5, BusUtil: 77.8, ActSAMean: 680, ActSASdev: 224, FootprintMB: 768},
		{Name: "cactuBSSN", Suite: "SPEC", MPKI: 3.5, ACTPKI: 3.3, BusUtil: 44.6, ActSAMean: 395, ActSASdev: 242, FootprintMB: 384},
		{Name: "cam4", Suite: "SPEC", MPKI: 3.7, ACTPKI: 2.9, BusUtil: 42.1, ActSAMean: 267, ActSASdev: 204, FootprintMB: 512},
		{Name: "fotonik3d", Suite: "SPEC", MPKI: 26.6, ACTPKI: 34.1, BusUtil: 62.3, ActSAMean: 1469, ActSASdev: 388, FootprintMB: 256},
		{Name: "lbm", Suite: "SPEC", MPKI: 27.7, ACTPKI: 39.5, BusUtil: 64.4, ActSAMean: 1413, ActSASdev: 343, FootprintMB: 384},
		{Name: "mcf", Suite: "SPEC", MPKI: 19.0, ACTPKI: 12.6, BusUtil: 76.9, ActSAMean: 1056, ActSASdev: 465, FootprintMB: 1536},
		{Name: "omnetpp", Suite: "SPEC", MPKI: 9.2, ACTPKI: 11.4, BusUtil: 54.3, ActSAMean: 1015, ActSASdev: 445, FootprintMB: 192},
		{Name: "parest", Suite: "SPEC", MPKI: 26.5, ACTPKI: 12.8, BusUtil: 84.6, ActSAMean: 965, ActSASdev: 440, FootprintMB: 384},
		{Name: "roms", Suite: "SPEC", MPKI: 7.8, ACTPKI: 5.1, BusUtil: 58.5, ActSAMean: 551, ActSASdev: 279, FootprintMB: 512},
		{Name: "xalancbmk", Suite: "SPEC", MPKI: 1.6, ACTPKI: 2.3, BusUtil: 26.1, ActSAMean: 281, ActSASdev: 169, FootprintMB: 192},
		{Name: "xz", Suite: "SPEC", MPKI: 5.2, ACTPKI: 8.3, BusUtil: 48.1, ActSAMean: 914, ActSASdev: 523, FootprintMB: 256},

		// Mixes: one component per core in the 8-core rate-mode system.
		{Name: "mix_1", Suite: "MIX", MPKI: 18.6, ACTPKI: 17.0, BusUtil: 72.7, ActSAMean: 1085, ActSASdev: 397,
			MixOf: []string{"mcf", "lbm", "fotonik3d", "omnetpp", "parest", "bwaves", "xz", "roms"}},
		{Name: "mix_2", Suite: "MIX", MPKI: 22.6, ACTPKI: 18.6, BusUtil: 68.4, ActSAMean: 956, ActSASdev: 304,
			MixOf: []string{"cc", "mcf", "bwaves", "lbm", "cam4", "parest", "omnetpp", "xz"}},
		{Name: "mix_3", Suite: "MIX", MPKI: 15.1, ACTPKI: 18.6, BusUtil: 62.3, ActSAMean: 1006, ActSASdev: 375,
			MixOf: []string{"bc", "fotonik3d", "mcf", "cactuBSSN", "xz", "omnetpp", "roms", "cam4"}},
		{Name: "mix_4", Suite: "MIX", MPKI: 10.0, ACTPKI: 19.1, BusUtil: 57.7, ActSAMean: 1074, ActSASdev: 373,
			MixOf: []string{"lbm", "omnetpp", "xz", "cam4", "roms", "xalancbmk", "fotonik3d", "cactuBSSN"}},
		{Name: "mix_5", Suite: "MIX", MPKI: 12.3, ACTPKI: 23.4, BusUtil: 52.4, ActSAMean: 1182, ActSASdev: 370,
			MixOf: []string{"fotonik3d", "lbm", "mcf", "omnetpp", "xz", "parest", "cam4", "roms"}},
		{Name: "mix_6", Suite: "MIX", MPKI: 13.6, ACTPKI: 18.7, BusUtil: 62.9, ActSAMean: 1008, ActSASdev: 340,
			MixOf: []string{"bfs", "lbm", "omnetpp", "xz", "cactuBSSN", "parest", "roms", "xalancbmk"}},
	}
}

// Lookup returns the spec named name.
func Lookup(name string) (WorkloadSpec, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("trace: unknown workload %q", name)
}

// WorkloadNames returns the names of all 24 workloads in Table IV order.
func WorkloadNames() []string {
	specs := Workloads()
	names := make([]string, len(specs))
	for i, w := range specs {
		names[i] = w.Name
	}
	return names
}

// PerCore builds one generator per core for spec: rate mode runs the same
// workload on every core (distinct seeds); a MIX workload assigns its
// components to cores round-robin.
func PerCore(spec WorkloadSpec, cores int, seed uint64) ([]Generator, error) {
	gens := make([]Generator, cores)
	if spec.Suite != "MIX" {
		for i := range gens {
			gens[i] = NewSynthetic(spec, seed+uint64(i)*0x9E3779B9)
		}
		return gens, nil
	}
	if len(spec.MixOf) == 0 {
		return nil, fmt.Errorf("trace: mix %q has no components", spec.Name)
	}
	for i := range gens {
		comp, err := Lookup(spec.MixOf[i%len(spec.MixOf)])
		if err != nil {
			return nil, err
		}
		gens[i] = NewSynthetic(comp, seed+uint64(i)*0x9E3779B9)
	}
	return gens, nil
}
