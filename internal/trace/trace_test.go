package trace

import (
	"testing"
	"testing/quick"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/vmap"
)

func TestWorkloadTableComplete(t *testing.T) {
	specs := Workloads()
	if len(specs) != 24 {
		t.Fatalf("%d workloads, want 24 (Table IV)", len(specs))
	}
	suites := map[string]int{}
	for _, w := range specs {
		suites[w.Suite]++
		if w.MPKI <= 0 || w.ACTPKI <= 0 || w.ActSAMean <= 0 {
			t.Errorf("%s: incomplete targets %+v", w.Name, w)
		}
	}
	if suites["GAP"] != 6 || suites["SPEC"] != 12 || suites["MIX"] != 6 {
		t.Errorf("suite counts = %v, want GAP=6 SPEC=12 MIX=6", suites)
	}
	// Published averages (Table IV bottom row).
	var mpki, actpki float64
	for _, w := range specs {
		mpki += w.MPKI
		actpki += w.ACTPKI
	}
	if m := mpki / 24; m < 23 || m > 26 {
		t.Errorf("avg MPKI = %.1f, table says 24.4", m)
	}
	if a := actpki / 24; a < 17 || a > 20 {
		t.Errorf("avg ACT-PKI = %.1f, table says 18.5", a)
	}
}

func TestLookupAndNames(t *testing.T) {
	if _, err := Lookup("fotonik3d"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("doom"); err == nil {
		t.Error("unknown workload must error")
	}
	if len(WorkloadNames()) != 24 {
		t.Error("names incomplete")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := Lookup("mcf")
	a := NewSynthetic(spec, 5)
	b := NewSynthetic(spec, 5)
	var oa, ob Op
	for i := 0; i < 10000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		if oa != ob {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestGeneratorMPKI(t *testing.T) {
	for _, name := range []string{"bc", "xz", "blender"} {
		spec, _ := Lookup(name)
		g := NewSynthetic(spec, 3)
		var op Op
		var instr, reads int64
		for reads < 40000 {
			g.Next(&op)
			instr += op.Gap + 1
			if !op.Write {
				reads++
			}
		}
		mpki := float64(reads) / float64(instr) * 1000
		if mpki < spec.MPKI*0.93 || mpki > spec.MPKI*1.07 {
			t.Errorf("%s: generated MPKI %.2f, want %.1f +/- 7%%", name, mpki, spec.MPKI)
		}
	}
}

func TestGeneratorWriteShare(t *testing.T) {
	// fotonik3d has ACT-PKI > MPKI: the surplus is writeback traffic.
	spec, _ := Lookup("fotonik3d")
	g := NewSynthetic(spec, 3)
	var op Op
	var writes, total int64
	for total < 100000 {
		g.Next(&op)
		total++
		if op.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("write-heavy workload generated no writes")
	}
	// bc (ACT-PKI < MPKI) is read-dominated.
	spec2, _ := Lookup("bc")
	g2 := NewSynthetic(spec2, 3)
	writes = 0
	for i := 0; i < 100000; i++ {
		g2.Next(&op)
		if op.Write {
			writes++
		}
	}
	if writes > 10000 {
		t.Errorf("bc generated %d writes of 100000 ops", writes)
	}
}

func TestGeneratorFootprintBounds(t *testing.T) {
	spec, _ := Lookup("omnetpp") // 192MB
	g := NewSynthetic(spec, 9)
	limit := g.FootprintBytes() / LineBytes
	f := func(_ uint8) bool {
		var op Op
		g.Next(&op)
		return op.Line < limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHotStructureSharedAcrossSeeds(t *testing.T) {
	spec, _ := Lookup("xz")
	a := NewSynthetic(spec, 1)
	b := NewSynthetic(spec, 999)
	if len(a.hotUnits) != len(b.hotUnits) {
		t.Fatal("hot set sizes differ")
	}
	for i := range a.hotUnits {
		for k := range a.hotUnits[i] {
			if a.hotUnits[i][k] != b.hotUnits[i][k] {
				t.Fatal("hot structure must be seed-independent (rate mode shares the binary layout)")
			}
		}
	}
}

func TestHotUnitsShareSubarrayClass(t *testing.T) {
	spec, _ := Lookup("fotonik3d")
	g := NewSynthetic(spec, 1)
	for _, unit := range g.hotUnits {
		class := unit[0] % hotStride
		for _, grp := range unit {
			if grp%hotStride != class {
				t.Fatalf("hot unit mixes stride classes: %v", unit)
			}
		}
	}
}

func TestSubarraySpreadMatchesTargets(t *testing.T) {
	// End-to-end: generator -> prefaulted mapper -> MOP decompose ->
	// strided subarray. The per-subarray access spread must land near the
	// workload's published sigma/mu.
	for _, name := range []string{"fotonik3d", "bc"} {
		spec, _ := Lookup(name)
		g := NewSynthetic(spec, 1)
		geom := dram.Default()
		m := vmap.NewMapper(geom.CapacityBytes())
		for off := uint64(0); off < g.FootprintBytes(); off += vmap.SuperBytes {
			m.Translate(0, off)
		}
		counts := make([]int64, geom.Subarrays())
		var op Op
		for i := 0; i < 500000; i++ {
			g.Next(&op)
			a := geom.Decompose(m.Translate(0, op.Line*LineBytes))
			counts[geom.Subarray(dram.StridedR2SA, a.Row)]++
		}
		var agg stats.Running
		for _, c := range counts {
			agg.Add(float64(c))
		}
		got := agg.StdDev() / agg.Mean()
		want := spec.ActSASdev / spec.ActSAMean
		if got < want*0.5 || got > want*1.8 {
			t.Errorf("%s: access sigma/mu = %.3f, target %.3f", name, got, want)
		}
	}
}

func TestImpliedIPSAndMLP(t *testing.T) {
	for _, name := range []string{"bc", "fotonik3d", "xz", "blender"} {
		spec, _ := Lookup(name)
		ips := spec.ImpliedIPS()
		if ips < 1e9 || ips > 200e9 {
			t.Errorf("%s: implied IPS %.2g implausible", name, ips)
		}
		mlp := spec.MLPLimit()
		if mlp < 3 || mlp > 16 {
			t.Errorf("%s: MLP %d out of range", name, mlp)
		}
	}
	// Low-MPKI compute-bound workloads need only the floor budget.
	blender, _ := Lookup("blender")
	if blender.MLPLimit() > 4 {
		t.Errorf("blender MLP %d, want near the floor", blender.MLPLimit())
	}
}

func TestPerCoreMixes(t *testing.T) {
	mix, _ := Lookup("mix_1")
	gens, err := PerCore(mix, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, g := range gens {
		names[g.Name()] = true
	}
	if len(names) < 4 {
		t.Errorf("mix should assign distinct components per core, got %v", names)
	}
	// Rate mode: same name, distinct streams.
	spec, _ := Lookup("lbm")
	gens, _ = PerCore(spec, 4, 1)
	var a, b Op
	gens[0].Next(&a)
	gens[1].Next(&b)
	if gens[0].Name() != "lbm" || gens[1].Name() != "lbm" {
		t.Error("rate mode names wrong")
	}
	same := true
	for i := 0; i < 100; i++ {
		gens[0].Next(&a)
		gens[1].Next(&b)
		if a != b {
			same = false
			break
		}
	}
	if same {
		t.Error("rate-mode copies should have distinct access streams")
	}
}
