package trace

import "fmt"

// Ops replays a fixed operation sequence in an endless loop. It is the
// bridge between recorded traces (internal/tracefile) and the simulators:
// anything that can produce a []Op slice becomes a Generator
// indistinguishable from the synthetic workloads, so the cycle-level
// system and the fast replayer run it with zero hot-path changes.
type Ops struct {
	name     string
	ops      []Op
	idx      int
	maxLine  uint64
	haveLine bool
}

var _ Generator = (*Ops)(nil)

// NewOps wraps ops (which must be non-empty) in a looping generator. The
// slice is retained, not copied; callers must not mutate it afterwards.
func NewOps(name string, ops []Op) (*Ops, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace: %s: empty operation sequence", name)
	}
	g := &Ops{name: name, ops: ops}
	for i := range ops {
		if !g.haveLine || ops[i].Line > g.maxLine {
			g.maxLine = ops[i].Line
			g.haveLine = true
		}
	}
	return g, nil
}

// Name implements Generator.
func (g *Ops) Name() string { return g.name }

// Len returns the length of one replay loop.
func (g *Ops) Len() int { return len(g.ops) }

// FootprintBytes returns the touched virtual range, rounded up to the OS
// page so the simulators prefault exactly the lines the trace will visit.
func (g *Ops) FootprintBytes() uint64 {
	bytes := (g.maxLine + 1) * LineBytes
	const page = 4096
	return (bytes + page - 1) / page * page
}

// Next implements Generator: it replays the sequence, wrapping to the
// start when exhausted. The wrap is seamless — the first operation's Gap
// is reused, so the replayed stream is exactly periodic and deterministic.
func (g *Ops) Next(op *Op) {
	*op = g.ops[g.idx]
	g.idx++
	if g.idx == len(g.ops) {
		g.idx = 0
	}
}
