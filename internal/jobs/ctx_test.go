package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// A canceled batch context stops cooperative jobs mid-run and keeps
// not-yet-started jobs from running at all, while still returning one
// Result per job in submission order.
func TestRunOnCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	js := make([]Job[int], 8)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (int, error) {
			started.Add(1)
			<-release
			<-ctx.Done()
			return 0, ctx.Err()
		}}
	}
	p := NewPool(Options{Parallelism: 2})
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	results := RunOnCtx(ctx, p, js)

	if len(results) != len(js) {
		t.Fatalf("got %d results, want %d", len(results), len(js))
	}
	canceled := 0
	for i, r := range results {
		if r.Skipped {
			continue
		}
		if !r.Canceled {
			t.Fatalf("result %d: not canceled: %+v", i, r)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no canceled results")
	}
	if got := p.Stats().Canceled; got != int64(canceled) {
		t.Fatalf("Stats().Canceled = %d, want %d", got, canceled)
	}
}

// A job that ignores its context is abandoned on cancellation, exactly as
// the per-job deadline abandons a stuck job.
func TestRunOnCtxAbandonsUncooperativeJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	block := make(chan struct{})
	defer close(block)
	js := []Job[int]{{ID: "stubborn", Run: func(context.Context) (int, error) {
		<-block
		return 1, nil
	}}}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	results := RunCtx(ctx, Options{Parallelism: 1}, js)
	if !results[0].Canceled || !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("result = %+v, want canceled", results[0])
	}
}

// The per-job deadline still reports ErrTimeout in the exact pre-context
// format, and is distinguishable from batch cancellation.
func TestPerJobDeadlineStillErrTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	js := []Job[int]{{ID: "stuck", Run: func(context.Context) (int, error) {
		<-block
		return 0, nil
	}}}
	results := Run(Options{Parallelism: 1, Timeout: 20 * time.Millisecond}, js)
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", results[0].Err)
	}
	if results[0].Canceled {
		t.Fatalf("deadline must not mark Canceled: %+v", results[0])
	}
	want := fmt.Sprintf("job stuck: %v after %v", ErrTimeout, 20*time.Millisecond)
	if results[0].Err.Error() != want {
		t.Fatalf("err = %q, want %q", results[0].Err, want)
	}
}

// A cooperative job that returns its context's error because the per-job
// deadline fired (not the batch) reports ErrTimeout, not Canceled.
func TestCooperativeDeadlineMapsToErrTimeout(t *testing.T) {
	js := []Job[int]{{ID: "coop", Run: func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}}}
	results := Run(Options{Parallelism: 1, Timeout: 10 * time.Millisecond}, js)
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", results[0].Err)
	}
	if results[0].Canceled {
		t.Fatalf("per-job deadline must not mark Canceled: %+v", results[0])
	}
}
