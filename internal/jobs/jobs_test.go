package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mirza/internal/telemetry"
)

func ids(n int) []Job[int] {
	js := make([]Job[int], n)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) { return i * i, nil }}
	}
	return js
}

func TestOrderedResultsAtAnyParallelism(t *testing.T) {
	for _, p := range []int{1, 2, 8, 0} {
		res := Run(Options{Parallelism: p}, ids(37))
		if err := FirstError(res); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range Values(res) {
			if v != i*i {
				t.Fatalf("p=%d: result %d = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if res := Run(Options{}, []Job[string]{}); len(res) != 0 {
		t.Fatalf("empty job list: %v", res)
	}
	res := Run(Options{Parallelism: 4}, []Job[string]{{ID: "one", Run: func(context.Context) (string, error) { return "ok", nil }}})
	if res[0].Value != "ok" || res[0].Err != nil || res[0].Duration < 0 {
		t.Fatalf("single job: %+v", res[0])
	}
}

func TestFailureSkipsLaterJobsSequentially(t *testing.T) {
	var ran int32
	js := make([]Job[int], 10)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return 0, errors.New("boom")
			}
			return i, nil
		}}
	}
	res := Run(Options{Parallelism: 1}, js)
	if int(ran) != 4 {
		t.Errorf("sequential fail-fast ran %d jobs, want 4", ran)
	}
	err := FirstError(res)
	if err == nil || !strings.Contains(err.Error(), "j3") {
		t.Fatalf("first error = %v, want j3", err)
	}
	for i := 4; i < 10; i++ {
		if !res[i].Skipped {
			t.Errorf("job %d should be skipped after failure", i)
		}
	}
}

func TestLowestFailingIndexDeterministicInParallel(t *testing.T) {
	// Jobs 2 and 7 both fail; job 2 must always be the reported error
	// because jobs submitted before a failure always complete.
	js := make([]Job[int], 12)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			if i == 2 || i == 7 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		}}
	}
	for trial := 0; trial < 20; trial++ {
		res := Run(Options{Parallelism: 6}, js)
		err := FirstError(res)
		if err == nil || !strings.Contains(err.Error(), "fail-2") {
			t.Fatalf("trial %d: first error = %v, want fail-2", trial, err)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	js := []Job[int]{
		{ID: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "boom", Run: func(context.Context) (int, error) { panic("deliberate") }},
	}
	res := Run(Options{Parallelism: 2}, js)
	if res[0].Err != nil || res[0].Value != 1 {
		t.Fatalf("healthy job affected: %+v", res[0])
	}
	if res[1].Err == nil || !res[1].Panicked {
		t.Fatalf("panic not converted to error: %+v", res[1])
	}
	if !strings.Contains(res[1].Err.Error(), "deliberate") || !strings.Contains(res[1].Stack, "goroutine") {
		t.Errorf("panic diagnostics incomplete: err=%v stack=%q", res[1].Err, res[1].Stack)
	}
}

func TestPerJobTimeout(t *testing.T) {
	js := []Job[int]{
		{ID: "fast", Run: func(context.Context) (int, error) { return 7, nil }},
		{ID: "stuck", Run: func(context.Context) (int, error) { time.Sleep(2 * time.Second); return 0, nil }},
	}
	start := time.Now()
	res := Run(Options{Parallelism: 1, Timeout: 50 * time.Millisecond}, js)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout did not abandon the stuck job (took %v)", elapsed)
	}
	if res[0].Err != nil || res[0].Value != 7 {
		t.Fatalf("fast job: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrTimeout) {
		t.Fatalf("stuck job error = %v, want ErrTimeout", res[1].Err)
	}
}

func TestPoolStatsAccumulateAcrossBatches(t *testing.T) {
	p := NewPool(Options{Parallelism: 2})
	js := make([]Job[int], 6)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			if i == 5 {
				return 0, errors.New("boom")
			}
			return i, nil
		}}
	}
	RunOn(p, js)
	RunOn(p, ids(4))
	s := p.Stats()
	if s.Submitted != 10 {
		t.Errorf("Submitted = %d, want 10", s.Submitted)
	}
	if s.Failed != 1 {
		t.Errorf("Failed = %d, want 1", s.Failed)
	}
	if s.Completed+s.Skipped != 9 {
		t.Errorf("Completed+Skipped = %d, want 9", s.Completed+s.Skipped)
	}
	if s.Ran() != s.Completed+s.Failed {
		t.Errorf("Ran() = %d, want %d", s.Ran(), s.Completed+s.Failed)
	}
	if s.BusyWorkers != 0 || s.QueueDepth != 0 {
		t.Errorf("idle pool reports busy=%d queue=%d", s.BusyWorkers, s.QueueDepth)
	}
	if s.Busy <= 0 {
		t.Errorf("Busy = %v, want > 0", s.Busy)
	}
}

func TestPoolTelemetryMirrors(t *testing.T) {
	reg := telemetry.New()
	p := NewPool(Options{Parallelism: 3, Telemetry: reg})
	js := make([]Job[int], 8)
	for i := range js {
		i := i
		js[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			time.Sleep(time.Millisecond)
			if i == 7 {
				return 0, errors.New("boom")
			}
			return i, nil
		}}
	}
	RunOn(p, js)
	snap := reg.Snapshot()
	s := p.Stats()
	if got := snap.CounterTotal("jobs_submitted_total"); got != s.Submitted {
		t.Errorf("jobs_submitted_total = %d, want %d", got, s.Submitted)
	}
	if got := snap.CounterTotal("jobs_completed_total"); got != s.Completed {
		t.Errorf("jobs_completed_total = %d, want %d", got, s.Completed)
	}
	if got := snap.CounterTotal("jobs_failed_total"); got != s.Failed {
		t.Errorf("jobs_failed_total = %d, want %d", got, s.Failed)
	}
	if got := snap.CounterTotal("jobs_skipped_total"); got != s.Skipped {
		t.Errorf("jobs_skipped_total = %d, want %d", got, s.Skipped)
	}
	for _, g := range snap.Gauges {
		if g.Value != 0 {
			t.Errorf("gauge %s = %d after drain, want 0", g.Name, g.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "jobs_latency_ms" {
			if h.Total != s.Ran() {
				t.Errorf("jobs_latency_ms count = %d, want %d", h.Total, s.Ran())
			}
			if !h.WallClock {
				t.Error("jobs_latency_ms must be flagged wall-clock")
			}
		}
	}
}

func TestRunMatchesRunOnSemantics(t *testing.T) {
	// Run is sugar over a fresh pool; telemetry-free pools must not
	// allocate registry state.
	res := Run(Options{Parallelism: 2}, ids(5))
	if err := FirstError(res); err != nil {
		t.Fatal(err)
	}
	if got := TotalBusy(res); got < 0 {
		t.Errorf("TotalBusy = %v", got)
	}
}

func TestTotalBusy(t *testing.T) {
	js := make([]Job[int], 4)
	for i := range js {
		js[i] = Job[int]{ID: "sleep", Run: func(context.Context) (int, error) {
			time.Sleep(10 * time.Millisecond)
			return 0, nil
		}}
	}
	res := Run(Options{Parallelism: 4}, js)
	if busy := TotalBusy(res); busy < 40*time.Millisecond {
		t.Errorf("TotalBusy = %v, want >= 40ms", busy)
	}
}
