// Package jobs provides a deterministic worker pool for embarrassingly
// parallel simulation jobs.
//
// The experiment pipeline decomposes into independent units — one
// (workload, timing, mitigator-factory, seed) simulation each — whose
// results must not depend on how many workers execute them. The pool
// therefore guarantees:
//
//   - Results are gathered in submission order, whatever order jobs
//     finish in. Aggregation done over the returned slice is identical at
//     any parallelism (including floating-point accumulation order).
//   - A failure at submission index i prevents jobs after i that have not
//     yet started from starting (they are marked Skipped). Jobs submitted
//     before i always run to completion, so the lowest failing index — and
//     with one worker the exact fail-fast behaviour of a sequential loop —
//     is deterministic.
//   - A panicking job becomes an error Result carrying the recovered stack
//     instead of taking down the process.
//   - An optional per-job wall-clock deadline abandons a stuck job (its
//     goroutine keeps running against job-local state) and reports
//     ErrTimeout, so one livelocked simulation cannot hang a whole sweep.
//
// Jobs must be self-contained: shared state they touch has to be safe for
// concurrent use (see the single-flight calibration layer in
// internal/experiments for the canonical pattern).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mirza/internal/telemetry"
)

// ErrTimeout is wrapped into a Result's Err when a job exceeds the
// per-job deadline.
var ErrTimeout = errors.New("job deadline exceeded")

// Job is one independent unit of work. Run must be a pure function of the
// job's identity (plus concurrency-safe shared caches): the pool may
// execute it on any worker at any time before its result is gathered.
type Job[T any] struct {
	// ID names the job in errors ("fig3/mcf/trhd=500/mint").
	ID string

	// Run produces the job's result. It is called at most once. The
	// context carries the batch's cancellation plus the per-job deadline;
	// long-running jobs should poll it at convenient checkpoints
	// (sim.Kernel.RunUntilCtx does) so cancellation is cooperative rather
	// than only abandoning the goroutine.
	Run func(ctx context.Context) (T, error)
}

// Result is the outcome of one job, reported at the job's submission
// index.
type Result[T any] struct {
	ID    string
	Value T
	Err   error

	// Skipped marks a job that never started because an earlier-indexed
	// job had already failed.
	Skipped bool

	// Canceled marks a job stopped by the batch context — either never
	// started (Duration zero) or cut off mid-run. Err then wraps
	// ctx.Err(). Cancellation is wall-clock dependent, so a canceled
	// batch makes no determinism promises beyond result ordering.
	Canceled bool

	// Panicked marks an Err produced from a recovered panic; Stack then
	// carries the goroutine's stack trace.
	Panicked bool
	Stack    string

	// Duration is the job's wall-clock execution time (zero if skipped).
	Duration time.Duration
}

// Options tunes a pool.
type Options struct {
	// Parallelism is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// 1 reproduces a strictly sequential loop exactly.
	Parallelism int

	// Timeout, when positive, bounds each job's wall-clock execution. A
	// job that exceeds it is abandoned and reported with ErrTimeout.
	Timeout time.Duration

	// Telemetry, when non-nil, mirrors the pool's accounting into the
	// registry: jobs_{submitted,completed,failed,skipped}_total counters,
	// jobs_{queue_depth,busy_workers} gauges, and the wall-clock
	// jobs_latency_ms histogram / jobs_busy_ms_total counter. Live
	// endpoints read these while a suite runs.
	Telemetry *telemetry.Registry
}

// PoolStats is a snapshot of a pool's accounting, valid across concurrent
// RunOn batches. Busy sums the wall-clock execution time of every job that
// ran — an estimate of what a one-worker run would need.
type PoolStats struct {
	Submitted int64 // jobs handed to RunOn
	Completed int64 // jobs that ran and returned without error
	Failed    int64 // jobs that ran and errored (incl. panics and timeouts)
	Skipped   int64 // jobs never started because an earlier index failed
	Canceled  int64 // jobs stopped by the batch context

	BusyWorkers int64 // jobs executing right now
	QueueDepth  int64 // jobs submitted but not yet started

	Busy time.Duration
}

// Ran returns how many jobs actually executed.
func (s PoolStats) Ran() int64 { return s.Completed + s.Failed }

// Pool executes job batches and accounts for them. One Pool may serve many
// RunOn calls (sequentially or concurrently); its counters accumulate over
// its whole lifetime, which is what makes Stats the single source of truth
// for "jobs run / busy time / speedup" reporting.
type Pool struct {
	opts Options

	submitted, completed, failed, skipped, canceled atomic.Int64
	busyWorkers, queueDepth                         atomic.Int64
	busyNS                                          atomic.Int64

	// telemetry mirrors (nil handles when Options.Telemetry is nil).
	mSubmitted, mCompleted, mFailed, mSkipped, mCanceled *telemetry.Counter
	mBusyMS                                              *telemetry.Counter
	gBusy, gQueue                                        *telemetry.Gauge
	hLatency                                             *telemetry.Histogram
}

// NewPool builds a pool over opts.
func NewPool(opts Options) *Pool {
	p := &Pool{opts: opts}
	reg := opts.Telemetry
	p.mSubmitted = reg.Counter("jobs_submitted_total")
	p.mCompleted = reg.Counter("jobs_completed_total")
	p.mFailed = reg.Counter("jobs_failed_total")
	p.mSkipped = reg.Counter("jobs_skipped_total")
	p.mCanceled = reg.Counter("jobs_canceled_total")
	p.mBusyMS = reg.WallCounter("jobs_busy_ms_total")
	p.gBusy = reg.Gauge("jobs_busy_workers")
	p.gQueue = reg.Gauge("jobs_queue_depth")
	// 100ms buckets up to 12s, overflow clamped into the last bucket.
	p.hLatency = reg.WallHistogram("jobs_latency_ms", 120, 100)
	return p
}

// Stats snapshots the pool's accounting.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Submitted:   p.submitted.Load(),
		Completed:   p.completed.Load(),
		Failed:      p.failed.Load(),
		Skipped:     p.skipped.Load(),
		Canceled:    p.canceled.Load(),
		BusyWorkers: p.busyWorkers.Load(),
		QueueDepth:  p.queueDepth.Load(),
		Busy:        time.Duration(p.busyNS.Load()),
	}
}

// Run executes jobs on a fresh single-batch pool and returns one Result
// per job in submission order. It never panics and always returns
// len(jobs) results.
func Run[T any](opts Options, jobs []Job[T]) []Result[T] {
	return RunOn(NewPool(opts), jobs)
}

// RunCtx is Run under a batch context: see RunOnCtx.
func RunCtx[T any](ctx context.Context, opts Options, jobs []Job[T]) []Result[T] {
	return RunOnCtx(ctx, NewPool(opts), jobs)
}

// RunOn executes a batch of jobs on pool p with the same ordering and
// fail-fast guarantees as Run, folding the batch into p's accounting.
func RunOn[T any](p *Pool, jobs []Job[T]) []Result[T] {
	return RunOnCtx(context.Background(), p, jobs)
}

// RunOnCtx is RunOn under a batch context. When ctx is canceled (or its
// deadline passes), running jobs see it through their Run context and
// not-yet-started jobs are returned as Canceled without running; RunOnCtx
// still returns len(jobs) results and still gathers in submission order.
func RunOnCtx[T any](ctx context.Context, p *Pool, jobs []Job[T]) []Result[T] {
	n := len(jobs)
	results := make([]Result[T], n)
	if n == 0 {
		return results
	}
	workers := p.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	p.submitted.Add(int64(n))
	p.mSubmitted.Add(int64(n))
	p.queueDepth.Add(int64(n))
	p.gQueue.Add(int64(n))

	// minFail is the lowest submission index that has failed so far
	// (n = none). Jobs with a higher index that have not started yet are
	// skipped; lower-indexed jobs are unaffected, so the final value is
	// independent of worker count.
	minFail := int64(n)

	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				p.queueDepth.Add(-1)
				p.gQueue.Add(-1)
				if int64(i) > atomic.LoadInt64(&minFail) {
					results[i] = Result[T]{ID: jobs[i].ID, Skipped: true}
					p.skipped.Add(1)
					p.mSkipped.Inc()
					continue
				}
				if ctx.Err() != nil {
					results[i] = Result[T]{
						ID:       jobs[i].ID,
						Err:      fmt.Errorf("job %s: %w", jobs[i].ID, ctx.Err()),
						Canceled: true,
					}
					p.canceled.Add(1)
					p.mCanceled.Inc()
					storeMin(&minFail, int64(i))
					continue
				}
				p.busyWorkers.Add(1)
				p.gBusy.Add(1)
				results[i] = execute(ctx, jobs[i], p.opts.Timeout)
				p.busyWorkers.Add(-1)
				p.gBusy.Add(-1)
				d := results[i].Duration
				p.busyNS.Add(int64(d))
				p.mBusyMS.Add(d.Milliseconds())
				p.hLatency.Observe(float64(d) / float64(time.Millisecond))
				switch {
				case results[i].Canceled:
					p.canceled.Add(1)
					p.mCanceled.Inc()
					storeMin(&minFail, int64(i))
				case results[i].Err != nil:
					p.failed.Add(1)
					p.mFailed.Inc()
					storeMin(&minFail, int64(i))
				default:
					p.completed.Add(1)
					p.mCompleted.Inc()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// execute runs one job in its own goroutine so a deadline or cancellation
// can abandon it; panics are converted to errors. The job's context layers
// the per-job deadline over the batch context, so cooperative jobs stop on
// whichever fires first; uncooperative ones are abandoned (they only touch
// job-local state and their eventual send lands in the buffered channel).
func execute[T any](ctx context.Context, job Job[T], timeout time.Duration) Result[T] {
	start := time.Now()
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	done := make(chan Result[T], 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- Result[T]{
					ID:       job.ID,
					Err:      fmt.Errorf("job %s panicked: %v", job.ID, p),
					Panicked: true,
					Stack:    string(debug.Stack()),
				}
			}
		}()
		v, err := job.Run(jctx)
		res := Result[T]{ID: job.ID, Value: v, Err: err}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				res.Canceled = ctx.Err() != nil
				if !res.Canceled {
					// The per-job deadline, reported in timeout terms.
					res.Err = fmt.Errorf("job %s: %w after %v", job.ID, ErrTimeout, timeout)
					done <- res
					return
				}
			}
			res.Err = fmt.Errorf("job %s: %w", job.ID, err)
		}
		done <- res
	}()

	var res Result[T]
	if jctx.Done() == nil {
		res = <-done
	} else {
		select {
		case res = <-done:
		case <-jctx.Done():
			if ctx.Err() != nil {
				res = Result[T]{
					ID:       job.ID,
					Err:      fmt.Errorf("job %s: %w", job.ID, ctx.Err()),
					Canceled: true,
				}
			} else {
				res = Result[T]{ID: job.ID, Err: fmt.Errorf("job %s: %w after %v", job.ID, ErrTimeout, timeout)}
			}
		}
	}
	res.Duration = time.Since(start)
	return res
}

// storeMin atomically lowers *addr to v if v is smaller.
func storeMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// FirstError returns the error of the lowest-indexed failed result (nil
// when every job succeeded). Skipped results never carry errors, so this
// is the same error a sequential fail-fast loop would have returned.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Values extracts the result values in submission order. It must only be
// used after FirstError returned nil (skipped/failed slots hold zero
// values).
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out
}

// TotalBusy sums the per-job execution durations: an estimate of the
// wall-clock a one-worker run would need, used to report speedup.
func TotalBusy[T any](results []Result[T]) time.Duration {
	var d time.Duration
	for i := range results {
		d += results[i].Duration
	}
	return d
}
