// Package jobs provides a deterministic worker pool for embarrassingly
// parallel simulation jobs.
//
// The experiment pipeline decomposes into independent units — one
// (workload, timing, mitigator-factory, seed) simulation each — whose
// results must not depend on how many workers execute them. The pool
// therefore guarantees:
//
//   - Results are gathered in submission order, whatever order jobs
//     finish in. Aggregation done over the returned slice is identical at
//     any parallelism (including floating-point accumulation order).
//   - A failure at submission index i prevents jobs after i that have not
//     yet started from starting (they are marked Skipped). Jobs submitted
//     before i always run to completion, so the lowest failing index — and
//     with one worker the exact fail-fast behaviour of a sequential loop —
//     is deterministic.
//   - A panicking job becomes an error Result carrying the recovered stack
//     instead of taking down the process.
//   - An optional per-job wall-clock deadline abandons a stuck job (its
//     goroutine keeps running against job-local state) and reports
//     ErrTimeout, so one livelocked simulation cannot hang a whole sweep.
//
// Jobs must be self-contained: shared state they touch has to be safe for
// concurrent use (see the single-flight calibration layer in
// internal/experiments for the canonical pattern).
package jobs

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is wrapped into a Result's Err when a job exceeds the
// per-job deadline.
var ErrTimeout = errors.New("job deadline exceeded")

// Job is one independent unit of work. Run must be a pure function of the
// job's identity (plus concurrency-safe shared caches): the pool may
// execute it on any worker at any time before its result is gathered.
type Job[T any] struct {
	// ID names the job in errors ("fig3/mcf/trhd=500/mint").
	ID string

	// Run produces the job's result. It is called at most once.
	Run func() (T, error)
}

// Result is the outcome of one job, reported at the job's submission
// index.
type Result[T any] struct {
	ID    string
	Value T
	Err   error

	// Skipped marks a job that never started because an earlier-indexed
	// job had already failed.
	Skipped bool

	// Panicked marks an Err produced from a recovered panic; Stack then
	// carries the goroutine's stack trace.
	Panicked bool
	Stack    string

	// Duration is the job's wall-clock execution time (zero if skipped).
	Duration time.Duration
}

// Options tunes a Run call.
type Options struct {
	// Parallelism is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// 1 reproduces a strictly sequential loop exactly.
	Parallelism int

	// Timeout, when positive, bounds each job's wall-clock execution. A
	// job that exceeds it is abandoned and reported with ErrTimeout.
	Timeout time.Duration
}

// Run executes jobs on a worker pool and returns one Result per job in
// submission order. It never panics and always returns len(jobs) results.
func Run[T any](opts Options, jobs []Job[T]) []Result[T] {
	n := len(jobs)
	results := make([]Result[T], n)
	if n == 0 {
		return results
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// minFail is the lowest submission index that has failed so far
	// (n = none). Jobs with a higher index that have not started yet are
	// skipped; lower-indexed jobs are unaffected, so the final value is
	// independent of worker count.
	minFail := int64(n)

	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if int64(i) > atomic.LoadInt64(&minFail) {
					results[i] = Result[T]{ID: jobs[i].ID, Skipped: true}
					continue
				}
				results[i] = execute(jobs[i], opts.Timeout)
				if results[i].Err != nil {
					storeMin(&minFail, int64(i))
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// execute runs one job in its own goroutine so a deadline can abandon it;
// panics are converted to errors.
func execute[T any](job Job[T], timeout time.Duration) Result[T] {
	start := time.Now()
	done := make(chan Result[T], 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- Result[T]{
					ID:       job.ID,
					Err:      fmt.Errorf("job %s panicked: %v", job.ID, p),
					Panicked: true,
					Stack:    string(debug.Stack()),
				}
			}
		}()
		v, err := job.Run()
		if err != nil {
			err = fmt.Errorf("job %s: %w", job.ID, err)
		}
		done <- Result[T]{ID: job.ID, Value: v, Err: err}
	}()

	var res Result[T]
	if timeout <= 0 {
		res = <-done
	} else {
		select {
		case res = <-done:
		case <-time.After(timeout):
			// The goroutine is abandoned; it only touches job-local state
			// and its eventual send lands in the buffered channel.
			res = Result[T]{ID: job.ID, Err: fmt.Errorf("job %s: %w after %v", job.ID, ErrTimeout, timeout)}
		}
	}
	res.Duration = time.Since(start)
	return res
}

// storeMin atomically lowers *addr to v if v is smaller.
func storeMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// FirstError returns the error of the lowest-indexed failed result (nil
// when every job succeeded). Skipped results never carry errors, so this
// is the same error a sequential fail-fast loop would have returned.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Values extracts the result values in submission order. It must only be
// used after FirstError returned nil (skipped/failed slots hold zero
// values).
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out
}

// TotalBusy sums the per-job execution durations: an estimate of the
// wall-clock a one-worker run would need, used to report speedup.
func TotalBusy[T any](results []Result[T]) time.Duration {
	var d time.Duration
	for i := range results {
		d += results[i].Duration
	}
	return d
}
