package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolSaturationAndMidDrainCancel fills a pool far beyond its worker
// count, lets exactly one wave of jobs finish, cancels the batch while
// the second wave is mid-run, and then audits every guarantee at once:
// submission-order gather, Canceled results wrapping ctx.Err for the
// running wave, Skipped-or-Canceled (never run) for the tail, lifetime
// pool accounting, and zero leaked goroutines.
func TestPoolSaturationAndMidDrainCancel(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	const (
		n       = 64
		workers = 4
	)
	var started atomic.Int64
	release := make(chan struct{}, n)
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			ID: fmt.Sprintf("job-%02d", i),
			Run: func(ctx context.Context) (int, error) {
				started.Add(1)
				select {
				case <-release:
					return i, nil
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			},
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := NewPool(Options{Parallelism: workers})
	resc := make(chan []Result[int], 1)
	go func() { resc <- RunOnCtx(ctx, pool, jobs) }()

	waitStarted := func(want int64) {
		deadline := time.Now().Add(5 * time.Second)
		for started.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("only %d jobs started, want %d", started.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Wave 1: the first `workers` jobs occupy every worker (the queue
	// holds the other 60) ...
	waitStarted(workers)
	if got := started.Load(); got != workers {
		t.Fatalf("%d jobs started with %d workers before any release", got, workers)
	}
	// ... and are released to complete, which starts wave 2 ...
	for i := 0; i < workers; i++ {
		release <- struct{}{}
	}
	waitStarted(2 * workers)
	// ... which is canceled mid-run. Nothing further may start.
	cancel()

	var results []Result[int]
	select {
	case results = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("RunOnCtx did not return after cancellation")
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	if got := started.Load(); got != 2*workers {
		t.Errorf("%d jobs started, want exactly %d (cancel must stop admissions)", got, 2*workers)
	}

	// Submission-order gather: result i is job i, whatever its fate.
	for i, r := range results {
		if r.ID != fmt.Sprintf("job-%02d", i) {
			t.Fatalf("result %d holds %q; gather order broken", i, r.ID)
		}
	}
	// Wave 1 completed cleanly with its own value.
	for i := 0; i < workers; i++ {
		r := results[i]
		if r.Err != nil || r.Canceled || r.Skipped || r.Value != i {
			t.Errorf("wave-1 job %d: %+v, want clean completion", i, r)
		}
	}
	// Wave 2 was cut off mid-run: Canceled, wrapping context.Canceled,
	// with real execution time on the clock.
	for i := workers; i < 2*workers; i++ {
		r := results[i]
		if !r.Canceled || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("wave-2 job %d: Canceled=%v Err=%v, want canceled wrapping ctx.Err", i, r.Canceled, r.Err)
		}
		if r.Skipped || r.Duration <= 0 {
			t.Errorf("wave-2 job %d: Skipped=%v Duration=%v, want ran-then-canceled", i, r.Skipped, r.Duration)
		}
	}
	// The tail never ran. Whether a slot reads as Canceled (worker saw
	// ctx.Err first) or Skipped (worker saw the lowered fail index first)
	// is a benign worker-timing race; running is what would be a bug.
	for i := 2 * workers; i < n; i++ {
		r := results[i]
		if !r.Canceled && !r.Skipped {
			t.Errorf("tail job %d: %+v, want Canceled or Skipped", i, r)
		}
		if r.Duration != 0 {
			t.Errorf("tail job %d has Duration %v; it must never have run", i, r.Duration)
		}
		if r.Canceled && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("tail job %d: canceled but Err=%v", i, r.Err)
		}
	}

	// Lifetime accounting adds up exactly.
	st := pool.Stats()
	if st.Submitted != n || st.Completed != int64(workers) {
		t.Errorf("stats: submitted=%d completed=%d, want %d/%d", st.Submitted, st.Completed, n, workers)
	}
	if st.Canceled < int64(workers) || st.Canceled+st.Skipped != n-int64(workers) {
		t.Errorf("stats: canceled=%d skipped=%d, want canceled >= %d and canceled+skipped == %d",
			st.Canceled, st.Skipped, workers, n-workers)
	}
	if st.Failed != 0 || st.BusyWorkers != 0 || st.QueueDepth != 0 {
		t.Errorf("stats after drain: failed=%d busy=%d queue=%d, want all zero", st.Failed, st.BusyWorkers, st.QueueDepth)
	}
	if st.Ran() != int64(workers) {
		t.Errorf("Ran() = %d, want %d (canceled mid-run jobs are not completions)", st.Ran(), workers)
	}

	// Zero leaked goroutines: workers and job shims all unwind. The
	// count settles asynchronously, so retry briefly before declaring a
	// leak.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolSaturationRunsAllWithoutCancel is the control: the same
// saturated pool, never canceled, must run all jobs to completion in
// submission order.
func TestPoolSaturationRunsAllWithoutCancel(t *testing.T) {
	const n = 48
	pool := NewPool(Options{Parallelism: 3})
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) { return i * i, nil }}
	}
	results := RunOnCtx(context.Background(), pool, jobs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	for i, v := range Values(results) {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	st := pool.Stats()
	if st.Completed != n || st.Canceled != 0 || st.Skipped != 0 {
		t.Errorf("stats: %+v", st)
	}
}
