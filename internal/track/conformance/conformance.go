// Package conformance runs every registered mitigation policy through a
// common battery of behavioural checks: the bank-level attack-pattern
// security sweep, fault-injection robustness (no panics, deterministic
// replay), telemetry-counter sanity against a counting sink, and a short
// audited full-system run under the DDR5 protocol auditor.
//
// The harness is what makes the registry's one-file-defense promise safe:
// a new policy registered in internal/track/policies is automatically
// swept by `make conformance` (and CI) with zero per-policy test code.
// Policies whose descriptor is marked Insecure (trr, none) still run every
// check but are exempt from the security-bound verdict.
package conformance

import (
	"context"
	"fmt"

	"mirza/internal/attack"
	"mirza/internal/audit"
	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/fault"
	"mirza/internal/mem"
	"mirza/internal/telemetry"
	"mirza/internal/trace"
	"mirza/internal/track"
)

// Options tunes the sweep's cost. The zero value selects the full battery:
// TRHD 1000, seed 1, 2 refresh windows per attack pattern, all patterns,
// audit included.
type Options struct {
	TRHD      int      // configured threshold (default 1000)
	Seed      uint64   // base seed (default 1)
	Windows   int      // refresh windows per attack pattern (default 2)
	Patterns  []string // subset of Patterns() to run (default: all)
	SkipAudit bool     // skip the audited full-system run (short mode)
}

func (o Options) normalized() Options {
	if o.TRHD == 0 {
		o.TRHD = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Windows == 0 {
		o.Windows = 2
	}
	if len(o.Patterns) == 0 {
		o.Patterns = Patterns()
	}
	return o
}

// Violation records one conformance failure.
type Violation struct {
	Policy string // registered policy name
	Check  string // "build" | "security" | "faults" | "stats" | "audit"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s", v.Policy, v.Check, v.Detail)
}

// Patterns lists the attack patterns of the security sweep.
func Patterns() []string { return []string{"single-sided", "double-sided", "circular"} }

func patternFor(name string, g dram.Geometry, m dram.R2SAMapping) (attack.Pattern, error) {
	switch name {
	case "single-sided":
		return attack.SingleSided(g, m, 3, 500), nil
	case "double-sided":
		return attack.DoubleSided(g, m, 3, 500), nil
	case "circular":
		return attack.Circular(g, m, 3, 32), nil
	}
	return nil, fmt.Errorf("conformance: unknown pattern %q", name)
}

// CheckAll sweeps every registered policy and returns the violations,
// grouped by registration order.
func CheckAll(opt Options) []Violation {
	var out []Violation
	for _, name := range track.Names() {
		out = append(out, Check(name, opt)...)
	}
	return out
}

// Check runs the full battery against one policy.
func Check(policy string, opt Options) []Violation {
	opt = opt.normalized()
	env := track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     opt.TRHD,
		Seed:     opt.Seed,
	}
	b, err := track.Build(policy, nil, env)
	if err != nil {
		return []Violation{{Policy: policy, Check: "build", Detail: err.Error()}}
	}

	var out []Violation
	out = append(out, checkSecurity(b, opt)...)
	out = append(out, checkFaults(b, opt)...)
	out = append(out, checkStats(b, opt)...)
	if !opt.SkipAudit {
		out = append(out, checkAudit(b, opt)...)
	}
	return out
}

// guard converts a panic in a check into a violation instead of killing
// the whole sweep.
func guard(policy, check string, out *[]Violation, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			*out = append(*out, Violation{
				Policy: policy, Check: check,
				Detail: fmt.Sprintf("panic: %v", r),
			})
		}
	}()
	fn()
}

// checkSecurity drives the bank-level attack simulator with each pattern
// at full DRAM speed (REF, ABO and the policy's RFM cadence all modelled)
// and asserts the maximum double-sided exposure stays below the policy's
// declared bound. Insecure policies run the sweep — they must still not
// panic — but skip the verdict.
func checkSecurity(b *track.Built, opt Options) (out []Violation) {
	bound := b.Bound()
	for _, pname := range opt.Patterns {
		pname := pname
		guard(b.Name(), "security", &out, func() {
			pat, err := patternFor(pname, dram.Default(), dram.StridedR2SA)
			if err != nil {
				out = append(out, Violation{Policy: b.Name(), Check: "security", Detail: err.Error()})
				return
			}
			sim := attack.NewBankSim(attack.BankSimConfig{
				Geometry: dram.Default(), Timing: b.Timing(),
				Mapping: dram.StridedR2SA, Bank: 0,
				NewMitigator: func(sink track.Sink) track.Mitigator { return b.Factory()(0, sink) },
				RFMEvery:     b.RFMBAT(),
			})
			res := sim.RunWindows(pat, opt.Windows)
			if b.Insecure() {
				return
			}
			if res.MaxDoubleSided >= bound.TRHD {
				out = append(out, Violation{
					Policy: b.Name(), Check: "security",
					Detail: fmt.Sprintf("%s: max double-sided exposure %d reached bound %d (%s); %s",
						pname, res.MaxDoubleSided, bound.TRHD, bound.Kind, res),
				})
			}
			if res.Mitigations == 0 && res.Alerts == 0 && res.RFMs == 0 {
				out = append(out, Violation{
					Policy: b.Name(), Check: "security",
					Detail: fmt.Sprintf("%s: no mitigation activity over %d windows of attack (%s)",
						pname, opt.Windows, res),
				})
			}
		})
	}
	return out
}

// checkFaults wraps the policy in a fault-injection plan exercising every
// mitigator-facing fault class (state bit flips through StateInjector,
// ALERT drops and duplicates, RFM drops) and asserts the attacked run
// neither panics nor diverges between two identically seeded replays.
func checkFaults(b *track.Built, opt Options) (out []Violation) {
	plan, err := fault.Parse("seed=7,bitflip=5e-5,alertdrop=0.2,alertdup=0.05,rfmdrop=0.2")
	if err != nil {
		return []Violation{{Policy: b.Name(), Check: "faults", Detail: "bad plan: " + err.Error()}}
	}
	run := func() (res attack.BankSimResult, faults int64) {
		log := fault.NewLog()
		sim := attack.NewBankSim(attack.BankSimConfig{
			Geometry: dram.Default(), Timing: b.Timing(),
			Mapping: dram.StridedR2SA, Bank: 0,
			NewMitigator: func(sink track.Sink) track.Mitigator {
				return fault.Wrap(plan, b.Factory()(0, sink), 0, log)
			},
			RFMEvery: b.RFMBAT(),
		})
		pat := attack.DoubleSided(dram.Default(), dram.StridedR2SA, 3, 500)
		return sim.RunWindows(pat, 1), log.Total()
	}
	guard(b.Name(), "faults", &out, func() {
		res1, n1 := run()
		res2, n2 := run()
		if res1 != res2 || n1 != n2 {
			out = append(out, Violation{
				Policy: b.Name(), Check: "faults",
				Detail: fmt.Sprintf("non-deterministic under identical fault plan: %s / %d faults vs %s / %d faults",
					res1, n1, res2, n2),
			})
		}
	})
	return out
}

// checkStats drives a known activation mix into a fresh instance and
// cross-checks the policy's own Stats counters — the numbers FlushTelemetry
// publishes — against ground truth: ACTs seen must equal ACTs issued, and
// the tracker-side mitigation count must match what the sink observed.
func checkStats(b *track.Built, opt Options) (out []Violation) {
	guard(b.Name(), "stats", &out, func() {
		sink := &track.CountingSink{}
		m, err := b.NewMitigator(0, sink)
		if err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "stats", Detail: err.Error()})
			return
		}
		g := dram.Default()
		t := b.Timing()
		r1 := g.RowAt(dram.StridedR2SA, 3, 499)
		r2 := g.RowAt(dram.StridedR2SA, 3, 501)
		bat := b.RFMBAT()

		const n = 5000
		var now dram.Time
		refIndex, sinceREF, sinceRFM := 0, 0, 0
		for i := 0; i < n; i++ {
			row := r1
			if i%2 == 1 {
				row = r2
			}
			m.OnActivate(0, row, now)
			now += t.TRC
			if m.WantsALERT() {
				now += t.ABOStall
				m.ServiceALERT(now)
			}
			if sinceRFM++; bat > 0 && sinceRFM >= bat {
				sinceRFM = 0
				m.OnRFM(0, now)
				now += t.TRFM
			}
			if sinceREF++; sinceREF >= 84 { // ~tREFI/tRC activations per REF slot
				sinceREF = 0
				m.OnREF(refIndex, now)
				refIndex++
				now += t.TRFC
			}
		}

		src := track.Source(m)
		if src == nil {
			out = append(out, Violation{
				Policy: b.Name(), Check: "stats",
				Detail: "policy exposes no StatsSource; telemetry and the auditor cannot see it",
			})
			return
		}
		s := src.TrackStats()
		if s.ACTs != n {
			out = append(out, Violation{
				Policy: b.Name(), Check: "stats",
				Detail: fmt.Sprintf("Stats.ACTs = %d after %d activations", s.ACTs, n),
			})
		}
		if s.Mitigations != sink.Mitigations {
			out = append(out, Violation{
				Policy: b.Name(), Check: "stats",
				Detail: fmt.Sprintf("Stats.Mitigations = %d but sink observed %d", s.Mitigations, sink.Mitigations),
			})
		}

		// The same numbers must round-trip through the telemetry registry.
		reg := telemetry.New()
		track.FlushTelemetry(reg, m)
		snap := reg.Snapshot()
		if got := snap.CounterTotal("track_acts_total"); got != s.ACTs {
			out = append(out, Violation{
				Policy: b.Name(), Check: "stats",
				Detail: fmt.Sprintf("track_acts_total = %d, want %d", got, s.ACTs),
			})
		}
		if got := snap.CounterTotal("track_mitigations_total"); got != s.Mitigations {
			out = append(out, Violation{
				Policy: b.Name(), Check: "stats",
				Detail: fmt.Sprintf("track_mitigations_total = %d, want %d", got, s.Mitigations),
			})
		}
	})
	return out
}

// checkAudit runs a short full-system simulation (the same path mirza-sim
// takes) with the PR 5 protocol auditor attached and requires a clean
// audit: every mitigation the policy reports must reconcile with the
// channel-side command stream and DDR5 timing books.
func checkAudit(b *track.Built, opt Options) (out []Violation) {
	guard(b.Name(), "audit", &out, func() {
		spec, err := trace.Lookup("fotonik3d")
		if err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "audit", Detail: err.Error()})
			return
		}
		gens, err := trace.PerCore(spec, 8, opt.Seed)
		if err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "audit", Detail: err.Error()})
			return
		}
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Core: cpu.CoreConfig{MSHR: spec.MLPLimit()},
			Mem: mem.Config{
				Timing:       b.Timing(),
				Mapping:      dram.StridedR2SA,
				RFMBAT:       b.RFMBAT(),
				NewMitigator: b.Factory(),
			},
		}, gens)
		if err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "audit", Detail: err.Error()})
			return
		}
		aud := audit.ForChannel(sys.Channel)
		horizon := dram.Time(0.2 * float64(dram.Millisecond))
		if err := sys.RunCtx(context.Background(), horizon); err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "audit", Detail: "run: " + err.Error()})
			return
		}
		if err := aud.Finish(sys.Channel); err != nil {
			out = append(out, Violation{Policy: b.Name(), Check: "audit", Detail: err.Error()})
		}
	})
	return out
}
