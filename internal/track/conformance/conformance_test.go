package conformance

import (
	"strings"
	"testing"

	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register every mitigation policy
)

// options picks the battery size: the full sweep normally, a reduced one
// (single pattern, one window, no full-system audit) under -short.
func options(t *testing.T) Options {
	t.Helper()
	if testing.Short() {
		return Options{Windows: 1, Patterns: []string{"double-sided"}, SkipAudit: true}
	}
	return Options{}
}

// TestRegisteredPoliciesConform is the gate new defenses must pass: every
// name in the registry goes through the security sweep, fault-injection
// replay, stats sanity, and (full mode) the audited system run.
func TestRegisteredPoliciesConform(t *testing.T) {
	opt := options(t)
	names := track.Names()
	if len(names) < 10 {
		t.Fatalf("registry has only %d policies: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, v := range Check(name, opt) {
				t.Errorf("conformance violation: %s", v)
			}
		})
	}
}

func TestCheckUnknownPolicy(t *testing.T) {
	vs := Check("definitely-not-registered", Options{})
	if len(vs) != 1 || vs[0].Check != "build" {
		t.Fatalf("Check(unknown) = %v, want one build violation", vs)
	}
	if !strings.Contains(vs[0].Detail, "unknown mitigation") {
		t.Fatalf("violation detail %q does not explain the unknown name", vs[0].Detail)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Policy: "prac", Check: "security", Detail: "boom"}
	if got := v.String(); got != "prac [security]: boom" {
		t.Fatalf("Violation.String() = %q", got)
	}
}
