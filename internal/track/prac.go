package track

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
)

// PRACConfig configures the PRAC+ABO mitigator.
type PRACConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	// AlertThreshold (ATH) is the per-row activation count at which the
	// device asserts ALERT-Back-Off. Following MOAT (ASPLOS'25), a target
	// double-sided threshold TRHD is tolerated with ATH comfortably below
	// TRHD/2 minus the ACTs an attacker can land during the ABO protocol.
	AlertThreshold int
}

// ATHForTRHD returns a MOAT-style ALERT threshold for a target TRHD: half
// the threshold (each aggressor of a double-sided pair accrues its own
// count) minus slack for the activations that land between ALERT assertion
// and mitigation (prologue ACTs plus the queue-drain worst case).
func ATHForTRHD(trhd int) int {
	const slack = 8 // ABO_ACTS worst case, Section VI.A/Fig 10
	ath := trhd/2 - slack
	if ath < 1 {
		ath = 1
	}
	return ath
}

// PRAC models Per-Row Activation Counting with ALERT-Back-Off, in the style
// of MOAT: every row has an activation counter (stored in the DRAM array;
// here plain memory), incremented on each ACT. When any counter reaches the
// ALERT threshold the device asserts ALERT; servicing the ALERT mitigates
// the offending row in each bank and resets its counter. Counters reset
// when their row is refreshed.
//
// The performance cost of PRAC comes from its inflated timings (dram.PRAC),
// which the memory controller applies when this mitigator is selected; the
// tracker itself is mitigation-silent for benign workloads at the paper's
// thresholds.
type PRAC struct {
	cfg      PRACConfig
	sink     Sink
	counters [][]uint16 // [bank][row]
	pending  [][]int    // rows at/above ATH awaiting mitigation, per bank
	want     bool
	Stats    Stats
}

var _ Mitigator = (*PRAC)(nil)

// NewPRAC builds a PRAC+ABO mitigator.
func NewPRAC(cfg PRACConfig, sink Sink) *PRAC {
	if sink == nil {
		sink = NopSink{}
	}
	if cfg.AlertThreshold < 1 {
		panic(fmt.Sprintf("track: PRAC alert threshold must be >= 1, got %d", cfg.AlertThreshold))
	}
	p := &PRAC{cfg: cfg, sink: sink}
	banks := cfg.Geometry.BanksPerSubChannel
	p.counters = make([][]uint16, banks)
	p.pending = make([][]int, banks)
	for b := range p.counters {
		p.counters[b] = make([]uint16, cfg.Geometry.RowsPerBank)
	}
	return p
}

// Name implements Mitigator.
func (p *PRAC) Name() string { return fmt.Sprintf("PRAC+ABO(ATH=%d)", p.cfg.AlertThreshold) }

// OnActivate implements Mitigator.
func (p *PRAC) OnActivate(bank, row int, now dram.Time) {
	p.Stats.ACTs++
	c := p.counters[bank]
	if int(c[row]) >= p.cfg.AlertThreshold {
		// Already pending; nothing more to record (saturate).
		return
	}
	c[row]++
	if int(c[row]) >= p.cfg.AlertThreshold {
		p.pending[bank] = append(p.pending[bank], row)
		p.Stats.Insertions++
		if !p.want {
			p.want = true
			p.Stats.AlertsWanted++
		}
	}
}

// WantsALERT implements Mitigator.
func (p *PRAC) WantsALERT() bool { return p.want }

// OnREF implements Mitigator: the rows refreshed by this REF have their
// counters cleared in every bank.
func (p *PRAC) OnREF(refIndex int, now dram.Time) {
	g := p.cfg.Geometry
	t := g.RefreshTargetOf(refIndex)
	for idx := t.FirstIdx; idx <= t.LastIdx; idx++ {
		row := g.RowAt(p.cfg.Mapping, t.Subarray, idx)
		for b := range p.counters {
			if int(p.counters[b][row]) >= p.cfg.AlertThreshold {
				p.removePending(b, row)
			}
			p.counters[b][row] = 0
		}
	}
	p.recomputeWant()
}

// OnRFM implements Mitigator: PRAC uses reactive mitigation only, but an
// unsolicited RFM opportunity still drains one pending row for the bank.
func (p *PRAC) OnRFM(bank int, now dram.Time) {
	p.Stats.RFMs++
	p.mitigateOne(bank, now)
	p.recomputeWant()
}

// ServiceALERT implements Mitigator: each bank mitigates one pending row.
func (p *PRAC) ServiceALERT(now dram.Time) {
	for b := range p.pending {
		p.mitigateOne(b, now)
	}
	p.recomputeWant()
}

func (p *PRAC) mitigateOne(bank int, now dram.Time) {
	q := p.pending[bank]
	if len(q) == 0 {
		return
	}
	row := q[0]
	p.pending[bank] = q[1:]
	p.counters[bank][row] = 0
	p.Stats.Mitigations++
	p.sink.RowMitigated(bank, row, MitigationVictims, now)
}

func (p *PRAC) removePending(bank, row int) {
	q := p.pending[bank]
	for i, r := range q {
		if r == row {
			p.pending[bank] = append(q[:i], q[i+1:]...)
			p.Stats.Evictions++
			return
		}
	}
}

// TrackStats implements StatsSource.
func (p *PRAC) TrackStats() Stats { return p.Stats }

func (p *PRAC) recomputeWant() {
	for _, q := range p.pending {
		if len(q) > 0 {
			if !p.want {
				p.want = true
				p.Stats.AlertsWanted++
			}
			return
		}
	}
	p.want = false
}

// InjectStateFault implements StateInjector: it flips one low-order bit of
// a random row's activation counter in a random bank, modeling a transient
// upset of a PRAC counter stored in the DRAM array. A downward flip hides
// real activations from the tracker; an upward flip can push a benign row
// over the ALERT threshold without the crossing ever being observed by
// OnActivate (the counter saturates silently) — both are the corruptions
// whose effect on the security margin the fault harness measures.
func (p *PRAC) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(p.counters))
	row := rng.Intn(len(p.counters[bank]))
	bit := rng.Intn(12) // ATH values need at most 12 bits
	p.counters[bank][row] ^= 1 << bit
	return fmt.Sprintf("prac[bank=%d][row=%d] bit %d", bank, row, bit)
}

// MaxCounter returns the largest per-row counter value currently held in
// bank (useful for tests and attack analyses).
func (p *PRAC) MaxCounter(bank int) int {
	max := 0
	for _, c := range p.counters[bank] {
		if int(c) > max {
			max = int(c)
		}
	}
	return max
}
