package track

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mirza/internal/dram"
)

// This file is the mitigation registry: defenses register a Descriptor by
// name, and every consumer (both CLIs, the experiment grids, the serve
// admission path, the conformance harness) resolves policies through
// Lookup/Build instead of hand-rolled construction switches. A new defense
// is one self-contained file: implement Mitigator, call Register from an
// init(), and the full scenario battery (attack sweep, fault injection,
// telemetry, audit) picks it up automatically.

// Params is a flat string-keyed parameter bag. Defaults come from a
// Descriptor's DefaultConfig; user overrides (the `-mitigation
// name:key=val,...` syntax) are merged on top after validation against the
// Descriptor's ConfigSchema.
type Params map[string]string

// Int returns the named parameter as an int.
func (p Params) Int(key string) (int, error) {
	s, err := p.Str(key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("param %q: %q is not an integer", key, s)
	}
	return v, nil
}

// Uint64 returns the named parameter as a uint64.
func (p Params) Uint64(key string) (uint64, error) {
	s, err := p.Str(key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("param %q: %q is not an unsigned integer", key, s)
	}
	return v, nil
}

// Float returns the named parameter as a float64.
func (p Params) Float(key string) (float64, error) {
	s, err := p.Str(key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("param %q: %q is not a number", key, s)
	}
	return v, nil
}

// Bool returns the named parameter as a bool ("true"/"false"/"1"/"0").
func (p Params) Bool(key string) (bool, error) {
	s, err := p.Str(key)
	if err != nil {
		return false, err
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("param %q: %q is not a bool", key, s)
	}
	return v, nil
}

// Str returns the named parameter as a raw string.
func (p Params) Str(key string) (string, error) {
	s, ok := p[key]
	if !ok {
		return "", fmt.Errorf("param %q: not set", key)
	}
	return s, nil
}

// clone returns a copy so callers cannot mutate shared state.
func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// ParamKind names the value syntax of one parameter, used to validate
// overrides before construction and rendered in listings (-list-mitigations,
// GET /mitigations).
type ParamKind string

// Parameter kinds.
const (
	IntParam    ParamKind = "int"
	UintParam   ParamKind = "uint"
	FloatParam  ParamKind = "float"
	BoolParam   ParamKind = "bool"
	StringParam ParamKind = "string"
)

func (k ParamKind) check(val string) error {
	var err error
	switch k {
	case IntParam:
		_, err = strconv.Atoi(val)
	case UintParam:
		_, err = strconv.ParseUint(val, 10, 64)
	case FloatParam:
		_, err = strconv.ParseFloat(val, 64)
	case BoolParam:
		_, err = strconv.ParseBool(val)
	case StringParam:
		return nil
	default:
		return fmt.Errorf("unknown param kind %q", string(k))
	}
	if err != nil {
		return fmt.Errorf("not a valid %s", string(k))
	}
	return nil
}

// ParamSpec documents one tunable of a registered defense.
type ParamSpec struct {
	Key  string    `json:"key"`
	Kind ParamKind `json:"kind"`
	Doc  string    `json:"doc"`
}

// Config is the environment a Descriptor's hooks close over: the DRAM
// geometry and row-to-subarray mapping, the double-sided Rowhammer
// threshold the defense must be provisioned for, the run seed, the
// sub-channel index of the instance under construction, and the merged
// parameter bag.
type Config struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	TRHD     int    // target double-sided Rowhammer threshold
	Seed     uint64 // run seed; implementations derive per-sub-channel seeds
	Sub      int    // sub-channel index of the instance being built
	Params   Params
}

// Bound is the disturbance level a defense guarantees to stay under, with a
// human-readable derivation kind ("SafeTRHD", "nominal TRHD", ...). The
// attack CLI and the conformance harness compare observed max double-sided
// disturbance against TRHD.
type Bound struct {
	TRHD int
	Kind string
}

// Descriptor registers one defense. Only Name and New are mandatory; nil
// hooks fall back to documented defaults.
type Descriptor struct {
	// Name is the canonical registry key (matched case-insensitively).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Insecure marks designs with no deterministic security guarantee
	// (Nop, TRR): the conformance harness skips the bound verdict for
	// them, and listings flag them.
	Insecure bool
	// ConfigSchema documents every parameter the policy accepts. Override
	// keys outside the schema are rejected at Build time.
	ConfigSchema []ParamSpec
	// DefaultConfig derives the default parameter bag from the
	// environment (Table-I provisioning lives here, in exactly one
	// place). Nil means the policy has no parameters.
	DefaultConfig func(cfg Config) (Params, error)
	// New constructs one sub-channel instance wired to sink.
	New func(cfg Config, sink Sink) (Mitigator, error)
	// Timing returns the DRAM timing the memory controller must use with
	// this defense (PRAC-enabled parts have a longer tRC). Nil means
	// standard DDR5.
	Timing func(cfg Config) dram.Timing
	// RFMBAT returns the Bank Activation Threshold at which the memory
	// controller issues RFM commands, or 0 for no RFMs. Nil means 0.
	RFMBAT func(cfg Config) (int, error)
	// Bound returns the guaranteed disturbance bound. Nil means the
	// nominal TRHD.
	Bound func(cfg Config) (Bound, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Descriptor{} // keyed by lowercase name
)

// Register adds a defense to the registry. It panics on an empty or
// already-registered name (case-insensitive) or a nil New hook — these are
// programming errors in the registering package's init().
func Register(d Descriptor) {
	if strings.TrimSpace(d.Name) == "" {
		panic("track: Register with empty name")
	}
	if strings.ContainsAny(d.Name, ":,= \t\n") {
		panic(fmt.Sprintf("track: Register name %q contains reserved characters", d.Name))
	}
	if d.New == nil {
		panic(fmt.Sprintf("track: Register(%q) with nil New", d.Name))
	}
	key := strings.ToLower(d.Name)
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := registry[key]; ok {
		panic(fmt.Sprintf("track: duplicate Register(%q) (already registered as %q)", d.Name, prev.Name))
	}
	registry[key] = d
}

// Names returns the canonical names of all registered defenses, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for _, d := range registry {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// Descriptors returns all registered descriptors sorted by name.
func Descriptors() []Descriptor {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ds := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

// Lookup resolves a defense by name, case-insensitively. An unknown name
// yields an error that lists every registered policy.
func Lookup(name string) (Descriptor, error) {
	registryMu.RLock()
	d, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	registryMu.RUnlock()
	if ok {
		return d, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "track: unknown mitigation %q; registered mitigations:", name)
	for _, d := range Descriptors() {
		fmt.Fprintf(&b, "\n  %-12s %s", d.Name, d.Doc)
	}
	return Descriptor{}, errors.New(b.String())
}

// Built is a validated, ready-to-instantiate defense: the parameter bag is
// merged and schema-checked, a trial construction has succeeded, and the
// derived memory-controller settings (timing, RFM BAT, security bound) are
// resolved. One Built fans out to any number of per-sub-channel instances.
type Built struct {
	desc   Descriptor
	cfg    Config // Params merged; Sub is set per NewMitigator call
	timing dram.Timing
	bat    int
	bound  Bound
}

// Build resolves name, merges overrides over the policy's DefaultConfig,
// validates keys and value syntax against the ConfigSchema, and proves the
// configuration constructible with a trial instantiation. env.Params is
// ignored; pass overrides explicitly.
func Build(name string, overrides map[string]string, env Config) (*Built, error) {
	d, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	params := Params{}
	if d.DefaultConfig != nil {
		params, err = d.DefaultConfig(env)
		if err != nil {
			return nil, fmt.Errorf("track: %s: %w", d.Name, err)
		}
		params = params.clone()
	}
	specs := make(map[string]ParamSpec, len(d.ConfigSchema))
	for _, s := range d.ConfigSchema {
		specs[s.Key] = s
	}
	for k, v := range overrides {
		spec, ok := specs[k]
		if !ok {
			return nil, fmt.Errorf("track: %s has no param %q; known params: %s",
				d.Name, k, schemaKeys(d.ConfigSchema))
		}
		if err := spec.Kind.check(v); err != nil {
			return nil, fmt.Errorf("track: %s: param %q: value %q: %v", d.Name, k, v, err)
		}
		params[k] = v
	}
	env.Params = params
	env.Sub = 0
	if _, err := d.New(env, NopSink{}); err != nil {
		return nil, fmt.Errorf("track: %s: %w", d.Name, err)
	}
	b := &Built{desc: d, cfg: env, timing: dram.DDR5(), bound: Bound{env.TRHD, "nominal TRHD"}}
	if d.Timing != nil {
		b.timing = d.Timing(env)
	}
	if d.RFMBAT != nil {
		if b.bat, err = d.RFMBAT(env); err != nil {
			return nil, fmt.Errorf("track: %s: %w", d.Name, err)
		}
	}
	if d.Bound != nil {
		if b.bound, err = d.Bound(env); err != nil {
			return nil, fmt.Errorf("track: %s: %w", d.Name, err)
		}
	}
	return b, nil
}

func schemaKeys(schema []ParamSpec) string {
	if len(schema) == 0 {
		return "(none)"
	}
	keys := make([]string, len(schema))
	for i, s := range schema {
		keys[i] = s.Key
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Name returns the canonical registered name.
func (b *Built) Name() string { return b.desc.Name }

// Doc returns the policy's one-line description.
func (b *Built) Doc() string { return b.desc.Doc }

// Insecure reports whether the policy carries no security guarantee.
func (b *Built) Insecure() bool { return b.desc.Insecure }

// Params returns a copy of the merged parameter bag.
func (b *Built) Params() Params { return b.cfg.Params.clone() }

// Timing returns the DRAM timing to drive the defense with.
func (b *Built) Timing() dram.Timing { return b.timing }

// RFMBAT returns the memory controller's RFM Bank Activation Threshold
// (0 = no RFMs).
func (b *Built) RFMBAT() int { return b.bat }

// Bound returns the guaranteed disturbance bound.
func (b *Built) Bound() Bound { return b.bound }

// NewMitigator constructs the instance for one sub-channel.
func (b *Built) NewMitigator(sub int, sink Sink) (Mitigator, error) {
	cfg := b.cfg
	cfg.Sub = sub
	cfg.Params = b.cfg.Params // shared read-only after Build
	m, err := b.desc.New(cfg, sink)
	if err != nil {
		return nil, fmt.Errorf("track: %s: %w", b.desc.Name, err)
	}
	return m, nil
}

// Factory adapts the Built to the factory shape the simulators consume. The
// configuration was already proven constructible at Build time, so a
// construction error here is a programming bug and panics.
func (b *Built) Factory() func(sub int, sink Sink) Mitigator {
	return func(sub int, sink Sink) Mitigator {
		m, err := b.NewMitigator(sub, sink)
		if err != nil {
			panic(fmt.Sprintf("track: %s: construction failed after successful Build: %v", b.desc.Name, err))
		}
		return m
	}
}
