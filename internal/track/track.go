// Package track defines the in-DRAM Rowhammer mitigation interface shared by
// every tracker in this repository (MINT, MINT+RFM, PRAC+ABO/MOAT, Mithril,
// TRR, and MIRZA from internal/core), plus the baseline implementations.
//
// A Mitigator models the per-sub-channel mitigation logic of a DRAM device:
// it observes every activation and refresh, may use proactive mitigation
// opportunities (REF or RFM), and may reactively request an ALERT-Back-Off.
// Both the full-system performance simulator (internal/mem) and the
// bank-level attack simulator (internal/attack) drive the same interface, so
// the code whose security is analyzed is the code whose performance is
// measured.
package track

import (
	"mirza/internal/dram"
	"mirza/internal/stats"
)

// Sink receives mitigation events. The performance simulator plugs in an
// energy-accounting sink; the attack simulator plugs in a sink that clears
// per-victim disturbance counters.
type Sink interface {
	// RowMitigated reports that aggressor row in bank was mitigated at
	// time now by refreshing the physically adjacent victim rows
	// (victims counts the rows refreshed, typically 4: +/-1 and +/-2).
	RowMitigated(bank, row, victims int, now dram.Time)
}

// NopSink discards mitigation events.
type NopSink struct{}

// RowMitigated implements Sink.
func (NopSink) RowMitigated(bank, row, victims int, now dram.Time) {}

// CountingSink tallies mitigation events; it satisfies Sink.
type CountingSink struct {
	Mitigations int64 // aggressor rows mitigated
	VictimRows  int64 // victim rows refreshed
}

// RowMitigated implements Sink.
func (s *CountingSink) RowMitigated(bank, row, victims int, now dram.Time) {
	s.Mitigations++
	s.VictimRows += int64(victims)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(bank, row, victims int, now dram.Time)

// RowMitigated implements Sink.
func (f FuncSink) RowMitigated(bank, row, victims int, now dram.Time) {
	f(bank, row, victims, now)
}

// Mitigator is the in-DRAM mitigation logic for one sub-channel (all of its
// banks). Implementations must be deterministic given their seed.
type Mitigator interface {
	// Name identifies the design (for reports).
	Name() string

	// OnActivate observes an ACT to (bank, row) at time now. This is
	// called for every activation the device performs, including the
	// attacker's.
	OnActivate(bank, row int, now dram.Time)

	// WantsALERT reports whether the device is currently requesting an
	// ALERT-Back-Off. The memory controller polls this after each
	// activation and after servicing a previous ALERT.
	WantsALERT() bool

	// OnREF observes the refIndex-th REF command (0-based position in
	// the refresh walk; all banks refresh the same physical row range in
	// lockstep). Proactive designs may take a
	// mitigation opportunity here; designs with refresh-synchronized
	// state (PRAC counters, MIRZA's RCT) reset it here.
	OnREF(refIndex int, now dram.Time)

	// OnRFM grants bank a proactive mitigation opportunity (the memory
	// controller issued an RFM because the bank's activation counter
	// reached the Bank Activation Threshold).
	OnRFM(bank int, now dram.Time)

	// ServiceALERT is invoked when the ALERT's back-off RFM executes:
	// every bank with pending mitigation work mitigates one entry.
	ServiceALERT(now dram.Time)
}

// StateInjector is the fault-injection hook on a Mitigator: trackers that
// expose their SRAM state to the internal/fault harness implement it. One
// call models a single transient upset — it flips one pseudo-randomly
// chosen bit of internal tracker state (an RCT counter, a sampler window
// position, a per-row activation counter, ...), drawing every choice from
// rng so the injected-fault sequence is deterministic for a given seed.
// The returned string describes the flip for fault logs.
//
// Implementations must corrupt silently: no panic, no resynchronization —
// the point is to observe how the mitigation degrades.
type StateInjector interface {
	InjectStateFault(rng *stats.RNG) string
}

// MitigationVictims is the number of victim rows refreshed per aggressor
// mitigation (two on each side, per Section V.A of the paper).
const MitigationVictims = 4

// Stats are counters common to all trackers, embedded by implementations.
//
// Insertions and Evictions describe tracker-state turnover in whatever
// unit the policy maintains: table entries for TRR/Mithril, captured
// sampler selections for MINT, pending-ALERT rows for PRAC/MoPAC, queue
// entries for MIRZA. An eviction is an entry removed without being
// mitigated (capacity replacement or a demand refresh clearing it).
type Stats struct {
	ACTs         int64 // activations observed
	Mitigations  int64 // aggressor rows mitigated
	AlertsWanted int64 // distinct ALERT requests raised
	RFMs         int64 // RFM opportunities received
	Insertions   int64 // entries inserted into tracker state
	Evictions    int64 // entries removed without mitigation
}

// StatsSource is implemented by trackers that expose their common
// counters; telemetry flushing walks a Mitigator's Unwrap chain looking
// for it, so decorators (like the fault-injection wrapper) stay
// transparent.
type StatsSource interface {
	TrackStats() Stats
}
