package track

import "mirza/internal/telemetry"

// FlushTelemetry folds m's common counters into reg as
// track_*_total counters labelled with the tracker's policy name plus any
// extra labels (typically the sub-channel). It walks the Unwrap chain so
// decorators such as the fault-injection wrapper stay transparent; a
// mitigator that never exposes StatsSource flushes nothing. Call it once
// per simulation, after the run completes: counters are cumulative, so a
// second flush would double-count.
func FlushTelemetry(reg *telemetry.Registry, m Mitigator, extra ...telemetry.Label) {
	if !reg.Enabled() || m == nil {
		return
	}
	policy := m.Name()
	src := statsSource(m)
	if src == nil {
		return
	}
	s := src.TrackStats()
	labels := append([]telemetry.Label{telemetry.L("policy", policy)}, extra...)
	reg.Counter("track_acts_total", labels...).Add(s.ACTs)
	reg.Counter("track_mitigations_total", labels...).Add(s.Mitigations)
	reg.Counter("track_alerts_wanted_total", labels...).Add(s.AlertsWanted)
	reg.Counter("track_rfms_total", labels...).Add(s.RFMs)
	reg.Counter("track_insertions_total", labels...).Add(s.Insertions)
	reg.Counter("track_evictions_total", labels...).Add(s.Evictions)
}

// Source resolves m (or anything it decorates, walking the Unwrap chain) to
// its StatsSource; nil when nothing in the chain exposes one. The protocol
// auditor uses it to compare tracker-side mitigation counts against the
// channel-side counters without being fooled by decorators.
func Source(m Mitigator) StatsSource { return statsSource(m) }

// statsSource resolves m (or anything it decorates) to a StatsSource.
func statsSource(m Mitigator) StatsSource {
	for m != nil {
		if src, ok := m.(StatsSource); ok {
			return src
		}
		u, ok := m.(interface{ Unwrap() Mitigator })
		if !ok {
			return nil
		}
		m = u.Unwrap()
	}
	return nil
}
