package track

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
)

// MoPACConfig configures the MoPAC-style probabilistic PRAC baseline.
type MoPACConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	// SampleProb is the probability an activation updates its row's
	// counter (MoPAC's p; each sampled update adds 1/p to keep the
	// estimate unbiased).
	SampleProb float64
	// AlertThreshold is the estimated count that raises ALERT. Because
	// counting is probabilistic, the threshold must be derated from the
	// deterministic ATH by a sampling-slack margin.
	AlertThreshold int
	Seed           uint64
}

// MoPAC models MoPAC (ISCA'25), the related-work design that reduces PRAC's
// timing overhead by updating per-row counters probabilistically: only a
// p-fraction of activations pay the counter-update (so tRC/tRP stay near
// baseline), and each sampled update increments by 1/p. The price is
// sampling noise: the ALERT threshold must be derated, and the DRAM-array
// counter area remains (Section X). It is included as an extension
// baseline for the design-space ablations.
type MoPAC struct {
	cfg      MoPACConfig
	sink     Sink
	rng      *stats.RNG
	inc      int
	counters [][]int32
	pending  [][]int
	want     bool
	Stats    Stats
}

var _ Mitigator = (*MoPAC)(nil)

// MoPACDeratedATH returns an ALERT threshold for a target TRHD under
// sampling probability p: the deterministic budget shrunk by a
// concentration margin of ~4 standard deviations of the binomial estimate.
func MoPACDeratedATH(trhd int, p float64) int {
	base := ATHForTRHD(trhd)
	if p <= 0 || p >= 1 {
		return base
	}
	// Var of the estimate after n true ACTs is n(1-p)/p; at n=base the
	// standard deviation in counted units is sqrt(base*(1-p)/p).
	slack := 4 * sqrtf(float64(base)*(1-p)/p)
	ath := base - int(slack)
	if ath < 1 {
		ath = 1
	}
	return ath
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// NewMoPAC builds the MoPAC baseline.
func NewMoPAC(cfg MoPACConfig, sink Sink) *MoPAC {
	if sink == nil {
		sink = NopSink{}
	}
	if cfg.SampleProb <= 0 || cfg.SampleProb > 1 {
		panic(fmt.Sprintf("track: MoPAC sample probability %v out of (0,1]", cfg.SampleProb))
	}
	if cfg.AlertThreshold < 1 {
		panic("track: MoPAC alert threshold must be >= 1")
	}
	m := &MoPAC{
		cfg:  cfg,
		sink: sink,
		rng:  stats.NewRNG(cfg.Seed ^ 0x4d6f504143),
		inc:  int(1/cfg.SampleProb + 0.5),
	}
	banks := cfg.Geometry.BanksPerSubChannel
	m.counters = make([][]int32, banks)
	m.pending = make([][]int, banks)
	for b := range m.counters {
		m.counters[b] = make([]int32, cfg.Geometry.RowsPerBank)
	}
	return m
}

// Name implements Mitigator.
func (m *MoPAC) Name() string {
	return fmt.Sprintf("MoPAC(p=%.3f,ATH=%d)", m.cfg.SampleProb, m.cfg.AlertThreshold)
}

// OnActivate implements Mitigator.
func (m *MoPAC) OnActivate(bank, row int, now dram.Time) {
	m.Stats.ACTs++
	if m.rng.Float64() >= m.cfg.SampleProb {
		return
	}
	c := m.counters[bank]
	if int(c[row]) >= m.cfg.AlertThreshold {
		return
	}
	c[row] += int32(m.inc)
	if int(c[row]) >= m.cfg.AlertThreshold {
		m.pending[bank] = append(m.pending[bank], row)
		m.Stats.Insertions++
		if !m.want {
			m.want = true
			m.Stats.AlertsWanted++
		}
	}
}

// WantsALERT implements Mitigator.
func (m *MoPAC) WantsALERT() bool { return m.want }

// OnREF implements Mitigator.
func (m *MoPAC) OnREF(refIndex int, now dram.Time) {
	g := m.cfg.Geometry
	t := g.RefreshTargetOf(refIndex)
	for idx := t.FirstIdx; idx <= t.LastIdx; idx++ {
		row := g.RowAt(m.cfg.Mapping, t.Subarray, idx)
		for b := range m.counters {
			if int(m.counters[b][row]) >= m.cfg.AlertThreshold {
				m.removePending(b, row)
			}
			m.counters[b][row] = 0
		}
	}
	m.recomputeWant()
}

// OnRFM implements Mitigator.
func (m *MoPAC) OnRFM(bank int, now dram.Time) {
	m.Stats.RFMs++
	m.mitigateOne(bank, now)
	m.recomputeWant()
}

// ServiceALERT implements Mitigator.
func (m *MoPAC) ServiceALERT(now dram.Time) {
	for b := range m.pending {
		m.mitigateOne(b, now)
	}
	m.recomputeWant()
}

func (m *MoPAC) mitigateOne(bank int, now dram.Time) {
	q := m.pending[bank]
	if len(q) == 0 {
		return
	}
	row := q[0]
	m.pending[bank] = q[1:]
	m.counters[bank][row] = 0
	m.Stats.Mitigations++
	m.sink.RowMitigated(bank, row, MitigationVictims, now)
}

func (m *MoPAC) removePending(bank, row int) {
	q := m.pending[bank]
	for i, r := range q {
		if r == row {
			m.pending[bank] = append(q[:i], q[i+1:]...)
			m.Stats.Evictions++
			return
		}
	}
}

// TrackStats implements StatsSource.
func (m *MoPAC) TrackStats() Stats { return m.Stats }

func (m *MoPAC) recomputeWant() {
	for _, q := range m.pending {
		if len(q) > 0 {
			if !m.want {
				m.want = true
				m.Stats.AlertsWanted++
			}
			return
		}
	}
	m.want = false
}
