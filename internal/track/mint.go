package track

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
)

// MINTSampler is the Minimalist In-DRAM Tracker of Qureshi et al. (MICRO'24)
// for a single bank: a single-entry tracker that, between two consecutive
// mitigation opportunities, selects exactly one of the next W activations
// uniformly at random (Figure 2 of the MIRZA paper).
type MINTSampler struct {
	w        int
	rng      *stats.RNG
	count    int // activations observed in the current window
	target   int // 1-based index of the activation to capture
	selected int
	hasSel   bool
}

// NewMINTSampler returns a sampler with window size w drawing from rng.
func NewMINTSampler(w int, rng *stats.RNG) *MINTSampler {
	if w < 1 {
		panic(fmt.Sprintf("track: MINT window must be >= 1, got %d", w))
	}
	s := &MINTSampler{w: w, rng: rng}
	s.reset()
	return s
}

// Window returns the sampler's window size W.
func (s *MINTSampler) Window() int { return s.w }

func (s *MINTSampler) reset() {
	s.count = 0
	s.target = 1 + s.rng.Intn(s.w)
	s.hasSel = false
}

// Observe feeds one activation of row into the current window.
func (s *MINTSampler) Observe(row int) {
	s.count++
	if s.count == s.target {
		s.selected = row
		s.hasSel = true
	}
}

// Selected returns the currently captured row, if any, without consuming it.
func (s *MINTSampler) Selected() (row int, ok bool) {
	return s.selected, s.hasSel
}

// ObserveRolling feeds one activation into a fixed-length window of exactly
// W activations and reports whether this activation is the window's
// selection. When the window completes, a fresh window (with a new random
// target) begins automatically. This is the mode MIRZA uses: each group of
// W escaping activations yields exactly one selection, so the selection
// probability is exactly 1/W (Section V.A).
func (s *MINTSampler) ObserveRolling(row int) (selected bool) {
	s.count++
	selected = s.count == s.target
	if s.count >= s.w {
		s.reset()
	}
	return selected
}

// Take consumes the current selection (if any) and starts a fresh window.
// It returns the selected row and whether one had been captured: if fewer
// than target activations arrived before the mitigation opportunity, there
// is nothing to mitigate.
func (s *MINTSampler) Take() (row int, ok bool) {
	row, ok = s.selected, s.hasSel
	s.reset()
	return row, ok
}

// MINTConfig configures the proactive MINT mitigator.
type MINTConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	Window   int // W: activations per mitigation window
	// MitigateEveryREFs, if > 0, takes a mitigation opportunity at every
	// k-th REF command (in-DRAM TRR-style mitigation under REF).
	MitigateEveryREFs int
	// MitigateOnRFM, if true, takes a mitigation opportunity whenever the
	// memory controller issues an RFM to a bank (the MINT+RFM baseline of
	// Figure 3; the MC issues RFM every Window activations per bank).
	MitigateOnRFM bool
	Seed          uint64
}

// MINT is the proactive randomized tracker baseline: one MINTSampler per
// bank, mitigating at REF and/or RFM opportunities. It never requests
// ALERT (it is a purely proactive design).
type MINT struct {
	cfg      MINTConfig
	sink     Sink
	samplers []*MINTSampler
	Stats    Stats
}

var _ Mitigator = (*MINT)(nil)

// NewMINT builds the proactive MINT baseline.
func NewMINT(cfg MINTConfig, sink Sink) *MINT {
	if sink == nil {
		sink = NopSink{}
	}
	root := stats.NewRNG(cfg.Seed ^ 0x4d494e54) // "MINT"
	m := &MINT{cfg: cfg, sink: sink}
	m.samplers = make([]*MINTSampler, cfg.Geometry.BanksPerSubChannel)
	for i := range m.samplers {
		m.samplers[i] = NewMINTSampler(cfg.Window, root.Split())
	}
	return m
}

// Name implements Mitigator.
func (m *MINT) Name() string { return fmt.Sprintf("MINT-%d", m.cfg.Window) }

// OnActivate implements Mitigator.
func (m *MINT) OnActivate(bank, row int, now dram.Time) {
	m.Stats.ACTs++
	s := m.samplers[bank]
	s.Observe(row)
	if s.hasSel && s.count == s.target {
		// This activation is the one the window captured.
		m.Stats.Insertions++
	}
}

// WantsALERT implements Mitigator; proactive MINT never asserts ALERT.
func (m *MINT) WantsALERT() bool { return false }

// OnREF implements Mitigator.
func (m *MINT) OnREF(refIndex int, now dram.Time) {
	k := m.cfg.MitigateEveryREFs
	if k <= 0 || refIndex%k != 0 {
		return
	}
	for bank := range m.samplers {
		m.mitigate(bank, now)
	}
}

// OnRFM implements Mitigator.
func (m *MINT) OnRFM(bank int, now dram.Time) {
	m.Stats.RFMs++
	if m.cfg.MitigateOnRFM {
		m.mitigate(bank, now)
	}
}

// ServiceALERT implements Mitigator; proactive MINT never gets here, but a
// service opportunity is still honoured for robustness.
func (m *MINT) ServiceALERT(now dram.Time) {
	for bank := range m.samplers {
		m.mitigate(bank, now)
	}
}

// InjectStateFault implements StateInjector: it flips one bit of a random
// bank's sampler state — the window position or the random target — the
// two SRAM fields a transient upset can reach in a MINT implementation.
func (m *MINT) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(m.samplers))
	return m.samplers[bank].injectFault(bank, rng)
}

// injectFault flips one bit of the sampler's 7-bit count or target field
// (see core.Config.FixedSRAMBytes for the field widths).
func (s *MINTSampler) injectFault(bank int, rng *stats.RNG) string {
	bit := rng.Intn(7)
	if rng.Intn(2) == 0 {
		s.count ^= 1 << bit
		return fmt.Sprintf("mint[bank=%d].count bit %d", bank, bit)
	}
	s.target ^= 1 << bit
	return fmt.Sprintf("mint[bank=%d].target bit %d", bank, bit)
}

func (m *MINT) mitigate(bank int, now dram.Time) {
	row, ok := m.samplers[bank].Take()
	if !ok {
		return
	}
	m.Stats.Mitigations++
	m.sink.RowMitigated(bank, row, MitigationVictims, now)
}

// TrackStats implements StatsSource.
func (m *MINT) TrackStats() Stats { return m.Stats }
