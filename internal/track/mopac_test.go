package track

import (
	"math"
	"testing"

	"mirza/internal/dram"
)

func TestMoPACEstimateUnbiased(t *testing.T) {
	m := NewMoPAC(MoPACConfig{
		Geometry: dram.Default(), Mapping: dram.StridedR2SA,
		SampleProb: 0.25, AlertThreshold: 1 << 30, Seed: 3,
	}, nil)
	row := 777
	const n = 40000
	for i := 0; i < n; i++ {
		m.OnActivate(0, row, 0)
	}
	got := float64(m.counters[0][row])
	if math.Abs(got-n) > 0.05*n {
		t.Errorf("estimated count %v after %d ACTs, want within 5%%", got, n)
	}
}

func TestMoPACAlertsNearDeratedThreshold(t *testing.T) {
	ath := MoPACDeratedATH(1000, 0.125)
	base := ATHForTRHD(1000)
	if ath >= base {
		t.Fatalf("derated ATH %d must be below deterministic %d", ath, base)
	}
	m := NewMoPAC(MoPACConfig{
		Geometry: dram.Default(), Mapping: dram.StridedR2SA,
		SampleProb: 0.125, AlertThreshold: ath, Seed: 9,
	}, nil)
	row := 4242
	acts := 0
	for !m.WantsALERT() && acts < 4*base {
		m.OnActivate(0, row, 0)
		acts++
	}
	if !m.WantsALERT() {
		t.Fatalf("no ALERT after %d ACTs (ATH %d)", acts, ath)
	}
	// The alert must land below the deterministic budget (security) and
	// above a handful of activations (not trigger-happy).
	if acts > base+base/4 {
		t.Errorf("ALERT after %d ACTs, deterministic budget is %d", acts, base)
	}
	if acts < ath/4 {
		t.Errorf("ALERT after only %d ACTs", acts)
	}
	sink := &CountingSink{}
	m.sink = sink
	m.ServiceALERT(0)
	if sink.Mitigations != 1 {
		t.Errorf("mitigations = %d", sink.Mitigations)
	}
}

func TestMoPACRefreshResets(t *testing.T) {
	g := dram.Default()
	m := NewMoPAC(MoPACConfig{
		Geometry: g, Mapping: dram.StridedR2SA,
		SampleProb: 1, AlertThreshold: 100, Seed: 1,
	}, nil)
	row := g.RowAt(dram.StridedR2SA, 0, 0)
	for i := 0; i < 100; i++ {
		m.OnActivate(0, row, 0)
	}
	if !m.WantsALERT() {
		t.Fatal("p=1 MoPAC should behave deterministically")
	}
	m.OnREF(0, 0)
	if m.WantsALERT() {
		t.Error("refresh of the row must clear the pending alert")
	}
	if m.counters[0][row] != 0 {
		t.Error("counter not reset")
	}
}
