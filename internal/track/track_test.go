package track

import (
	"testing"
	"testing/quick"

	"mirza/internal/dram"
	"mirza/internal/stats"
)

func TestMINTSamplerWindowSemantics(t *testing.T) {
	rng := stats.NewRNG(1)
	s := NewMINTSampler(4, rng)
	// Fig 2: exactly one of every W observed rows is selected, uniformly.
	counts := map[int]int{}
	const windows = 50000
	for w := 0; w < windows; w++ {
		sel := -1
		for i := 0; i < 4; i++ {
			if s.ObserveRolling(i) {
				if sel >= 0 {
					t.Fatal("two selections in one window")
				}
				sel = i
			}
		}
		if sel < 0 {
			t.Fatal("no selection in a full window")
		}
		counts[sel]++
	}
	for i := 0; i < 4; i++ {
		frac := float64(counts[i]) / windows
		if frac < 0.23 || frac > 0.27 {
			t.Errorf("position %d selected %.3f of windows, want ~0.25", i, frac)
		}
	}
}

func TestMINTSamplerTake(t *testing.T) {
	s := NewMINTSampler(8, stats.NewRNG(2))
	// With fewer observations than the target, Take may return nothing;
	// after W observations it must have captured something.
	for i := 0; i < 8; i++ {
		s.Observe(100 + i)
	}
	row, ok := s.Take()
	if !ok || row < 100 || row > 107 {
		t.Fatalf("Take = %d, %v", row, ok)
	}
	// Take resets the window.
	if _, ok := s.Take(); ok {
		t.Error("second Take without observations should be empty")
	}
}

func TestMINTSamplerDeterminism(t *testing.T) {
	a := NewMINTSampler(12, stats.NewRNG(7))
	b := NewMINTSampler(12, stats.NewRNG(7))
	for i := 0; i < 10000; i++ {
		if a.ObserveRolling(i) != b.ObserveRolling(i) {
			t.Fatal("same seed must give identical selections")
		}
	}
}

func TestMINTProactiveMitigatesOnRFM(t *testing.T) {
	sink := &CountingSink{}
	m := NewMINT(MINTConfig{
		Geometry:      dram.Default(),
		Window:        12,
		MitigateOnRFM: true,
		Seed:          3,
	}, sink)
	// Feed a window's worth of ACTs, then an RFM opportunity.
	for i := 0; i < 12; i++ {
		m.OnActivate(0, 1000+i, 0)
	}
	m.OnRFM(0, 0)
	if sink.Mitigations != 1 {
		t.Fatalf("mitigations = %d, want 1", sink.Mitigations)
	}
	if sink.VictimRows != int64(MitigationVictims) {
		t.Errorf("victims = %d, want %d", sink.VictimRows, MitigationVictims)
	}
	if m.WantsALERT() {
		t.Error("proactive MINT must never request ALERT")
	}
}

func TestMINTMitigateEveryREFs(t *testing.T) {
	sink := &CountingSink{}
	m := NewMINT(MINTConfig{
		Geometry:          dram.Default(),
		Window:            4,
		MitigateEveryREFs: 4,
		Seed:              5,
	}, sink)
	for ref := 0; ref < 16; ref++ {
		for i := 0; i < 8; i++ {
			m.OnActivate(0, i, 0)
		}
		m.OnREF(ref, 0)
	}
	// Mitigation opportunities at REF 0, 4, 8, 12 = 4 (REF 0 has a
	// captured row because 8 ACTs preceded it).
	if sink.Mitigations != 4 {
		t.Errorf("mitigations = %d, want 4", sink.Mitigations)
	}
}

func TestPRACCountsAndAlerts(t *testing.T) {
	sink := &CountingSink{}
	p := NewPRAC(PRACConfig{
		Geometry:       dram.Default(),
		Mapping:        dram.StridedR2SA,
		AlertThreshold: 100,
	}, sink)
	row := 5000
	for i := 0; i < 99; i++ {
		p.OnActivate(3, row, 0)
	}
	if p.WantsALERT() {
		t.Fatal("ALERT before threshold")
	}
	p.OnActivate(3, row, 0)
	if !p.WantsALERT() {
		t.Fatal("no ALERT at threshold")
	}
	p.ServiceALERT(0)
	if sink.Mitigations != 1 {
		t.Fatalf("mitigations = %d", sink.Mitigations)
	}
	if p.WantsALERT() {
		t.Error("ALERT should clear after service")
	}
	if p.MaxCounter(3) != 0 {
		t.Error("mitigated row's counter should reset")
	}
}

func TestPRACRefreshResetsCounters(t *testing.T) {
	g := dram.Default()
	p := NewPRAC(PRACConfig{Geometry: g, Mapping: dram.StridedR2SA, AlertThreshold: 1000}, nil)
	// Row at subarray 0, physical index 0 is refreshed by REF 0.
	row := g.RowAt(dram.StridedR2SA, 0, 0)
	for i := 0; i < 500; i++ {
		p.OnActivate(0, row, 0)
	}
	if p.MaxCounter(0) != 500 {
		t.Fatalf("counter = %d", p.MaxCounter(0))
	}
	p.OnREF(0, 0)
	if p.MaxCounter(0) != 0 {
		t.Errorf("counter after refresh = %d, want 0", p.MaxCounter(0))
	}
}

func TestPRACPendingClearedByRefresh(t *testing.T) {
	g := dram.Default()
	p := NewPRAC(PRACConfig{Geometry: g, Mapping: dram.StridedR2SA, AlertThreshold: 10}, nil)
	row := g.RowAt(dram.StridedR2SA, 0, 1)
	for i := 0; i < 10; i++ {
		p.OnActivate(0, row, 0)
	}
	if !p.WantsALERT() {
		t.Fatal("no alert")
	}
	p.OnREF(0, 0) // refreshes physical rows 0..15 of subarray 0, incl. the row
	if p.WantsALERT() {
		t.Error("refresh of the offending row should clear the pending ALERT")
	}
}

func TestATHForTRHD(t *testing.T) {
	if ath := ATHForTRHD(1000); ath <= 0 || ath > 500 {
		t.Errorf("ATH(1000) = %d", ath)
	}
	if ATHForTRHD(2) != 1 {
		t.Errorf("tiny threshold must clamp to 1, got %d", ATHForTRHD(2))
	}
}

func TestSpaceSavingOverestimates(t *testing.T) {
	// Property: Space-Saving never underestimates a row's true count.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ss := newSpaceSaving(8)
		truth := map[int]int64{}
		for i := 0; i < 2000; i++ {
			row := rng.Intn(40)
			truth[row]++
			ss.observe(row)
		}
		for _, e := range ss.entries {
			if e.count < truth[e.row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMithrilTracksHeavyHitter(t *testing.T) {
	sink := &CountingSink{}
	m := NewMithril(MithrilConfig{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		Entries:  16,
	}, sink)
	// One hot row among noise: the mitigation opportunity must pick it.
	rng := stats.NewRNG(9)
	hot := 4242
	var mitigated []int
	m2 := NewMithril(MithrilConfig{
		Geometry: dram.Default(), Mapping: dram.StridedR2SA, Entries: 16,
	}, FuncSink(func(bank, row, victims int, now dram.Time) {
		mitigated = append(mitigated, row)
	}))
	_ = m
	for i := 0; i < 5000; i++ {
		m2.OnActivate(0, hot, 0)
		m2.OnActivate(0, rng.Intn(100000), 0)
	}
	m2.OnRFM(0, 0) // no MitigateOnRFM configured: no-op
	if len(mitigated) != 0 {
		t.Fatal("RFM without MitigateOnRFM must not mitigate")
	}
	m2.ServiceALERT(0)
	if len(mitigated) != 1 || mitigated[0] != hot {
		t.Fatalf("mitigated %v, want the hot row %d", mitigated, hot)
	}
}

// TestTRRSamplerEvasion demonstrates the insecurity Table XII reports: an
// attacker who knows the deterministic sampling period parks a decoy
// activation on every sampled slot, so the aggressor is hammered thousands
// of times yet never enters the tracker and is never mitigated.
func TestTRRSamplerEvasion(t *testing.T) {
	var mitigated []int
	tr := NewTRR(TRRConfig{
		Geometry:          dram.Default(),
		Mapping:           dram.StridedR2SA,
		Entries:           28,
		MitigateEveryREFs: 4,
		SampleEvery:       16,
	}, FuncSink(func(bank, row, victims int, now dram.Time) {
		mitigated = append(mitigated, row)
	}))
	if !tr.Insecure() {
		t.Fatal("TRR must self-report as insecure")
	}
	aggressor := 99999
	ref := 0
	for round := 0; round < 3000; round++ {
		// 15 hammers in the sampler's shadow, then a decoy on the
		// sampled slot.
		for i := 0; i < 15; i++ {
			tr.OnActivate(0, aggressor, 0)
		}
		tr.OnActivate(0, 1000+round%32, 0)
		if round%25 == 0 {
			tr.OnREF(ref, 0)
			ref += 4
		}
	}
	for _, r := range mitigated {
		if r == aggressor {
			t.Fatal("sampler-evading pattern should keep the aggressor unmitigated")
		}
	}
	if len(mitigated) == 0 {
		t.Error("TRR should have mitigated decoys at REF opportunities")
	}
	// Sanity: benign-style uniform traffic IS tracked and mitigated.
	var benignMitigated []int
	tr2 := NewTRR(TRRConfig{
		Geometry: dram.Default(), Mapping: dram.StridedR2SA,
		Entries: 28, MitigateEveryREFs: 1,
	}, FuncSink(func(bank, row, victims int, now dram.Time) {
		benignMitigated = append(benignMitigated, row)
	}))
	hot := 777
	for i := 0; i < 10000; i++ {
		tr2.OnActivate(0, hot, 0)
	}
	tr2.OnREF(0, 0)
	if len(benignMitigated) != 1 || benignMitigated[0] != hot {
		t.Errorf("uniform hammering should be tracked: %v", benignMitigated)
	}
}

func TestNopBaseline(t *testing.T) {
	n := NewNop()
	n.OnActivate(0, 1, 0)
	n.OnREF(0, 0)
	n.OnRFM(0, 0)
	n.ServiceALERT(0)
	if n.WantsALERT() {
		t.Error("Nop wants ALERT")
	}
	if n.Stats.ACTs != 1 || n.Stats.RFMs != 1 {
		t.Errorf("stats = %+v", n.Stats)
	}
}

func TestCountingSinkAndFuncSink(t *testing.T) {
	s := &CountingSink{}
	s.RowMitigated(0, 1, 4, 0)
	s.RowMitigated(0, 2, 4, 0)
	if s.Mitigations != 2 || s.VictimRows != 8 {
		t.Errorf("sink = %+v", s)
	}
	called := 0
	FuncSink(func(bank, row, victims int, now dram.Time) { called++ }).RowMitigated(0, 0, 0, 0)
	if called != 1 {
		t.Error("FuncSink not invoked")
	}
}
