package track

import (
	"fmt"
	"strings"
	"testing"

	"mirza/internal/dram"
)

func testEnv() Config {
	return Config{Geometry: dram.Default(), Mapping: dram.StridedR2SA, TRHD: 1000, Seed: 1}
}

// testDescriptor registers a toy policy under a unique name and returns it.
func testDescriptor(t *testing.T, name string) Descriptor {
	t.Helper()
	d := Descriptor{
		Name: name,
		Doc:  "test policy",
		ConfigSchema: []ParamSpec{
			{Key: "entries", Kind: IntParam, Doc: "entries"},
			{Key: "p", Kind: FloatParam, Doc: "probability"},
		},
		DefaultConfig: func(cfg Config) (Params, error) {
			return Params{"entries": "28", "p": "0.5"}, nil
		},
		New: func(cfg Config, sink Sink) (Mitigator, error) {
			n, err := cfg.Params.Int("entries")
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("entries must be >= 1, got %d", n)
			}
			return NewNop(), nil
		},
	}
	Register(d)
	return d
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "empty name", func() { Register(Descriptor{Name: "  "}) })
	mustPanic(t, "nil New", func() { Register(Descriptor{Name: "reg-test-nilnew"}) })
	mustPanic(t, "reserved chars", func() {
		Register(Descriptor{Name: "bad:name", New: func(Config, Sink) (Mitigator, error) { return NewNop(), nil }})
	})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	testDescriptor(t, "reg-test-dup")
	mustPanic(t, "exact duplicate", func() { testDescriptor(t, "reg-test-dup") })
	// Duplicate detection is case-insensitive.
	mustPanic(t, "case-insensitive duplicate", func() { testDescriptor(t, "Reg-Test-DUP") })
}

func TestLookupCaseInsensitive(t *testing.T) {
	testDescriptor(t, "reg-test-case")
	for _, name := range []string{"reg-test-case", "REG-TEST-CASE", "Reg-Test-Case", "  reg-test-case "} {
		d, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if d.Name != "reg-test-case" {
			t.Fatalf("Lookup(%q) resolved %q", name, d.Name)
		}
	}
}

func TestLookupUnknownNameError(t *testing.T) {
	testDescriptor(t, "reg-test-known")
	_, err := Lookup("definitely-not-registered")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{
		`unknown mitigation "definitely-not-registered"`,
		"registered mitigations:",
		"reg-test-known",
		"test policy",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestNamesSortedAndCanonical(t *testing.T) {
	testDescriptor(t, "reg-test-zz")
	testDescriptor(t, "reg-test-aa")
	names := Names()
	ia, iz := -1, -1
	for i, n := range names {
		if n == "reg-test-aa" {
			ia = i
		}
		if n == "reg-test-zz" {
			iz = i
		}
	}
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("Names() = %v: want reg-test-aa before reg-test-zz", names)
	}
}

func TestBuildDefaultsAndOverrides(t *testing.T) {
	testDescriptor(t, "reg-test-build")
	b, err := Build("REG-TEST-BUILD", nil, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Params().Int("entries"); got != 28 {
		t.Fatalf("default entries = %d, want 28", got)
	}
	if b.Name() != "reg-test-build" {
		t.Fatalf("Name() = %q", b.Name())
	}
	if b.Timing() != dram.DDR5() {
		t.Fatal("nil Timing hook should default to DDR5")
	}
	if b.RFMBAT() != 0 {
		t.Fatalf("nil RFMBAT hook should default to 0, got %d", b.RFMBAT())
	}
	if bd := b.Bound(); bd.TRHD != 1000 || bd.Kind != "nominal TRHD" {
		t.Fatalf("nil Bound hook gave %+v", bd)
	}

	b, err = Build("reg-test-build", map[string]string{"entries": "7"}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Params().Int("entries"); got != 7 {
		t.Fatalf("override entries = %d, want 7", got)
	}
	if got, _ := b.Params().Float("p"); got != 0.5 {
		t.Fatalf("untouched default p = %v, want 0.5", got)
	}
	if m := b.Factory()(0, nil); m == nil {
		t.Fatal("Factory returned nil mitigator")
	}
}

func TestBuildRejectsBadOverrides(t *testing.T) {
	testDescriptor(t, "reg-test-bad")
	cases := []struct {
		name      string
		overrides map[string]string
		wantErr   string
	}{
		{"unknown key", map[string]string{"bogus": "1"}, `has no param "bogus"`},
		{"unknown key lists schema", map[string]string{"bogus": "1"}, "entries, p"},
		{"bad int", map[string]string{"entries": "many"}, "not a valid int"},
		{"bad float", map[string]string{"p": "half"}, "not a valid float"},
		{"constructor rejects", map[string]string{"entries": "0"}, "entries must be >= 1"},
		{"unknown name", nil, "unknown mitigation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name := "reg-test-bad"
			if tc.name == "unknown name" {
				name = "reg-test-missing"
			}
			_, err := Build(name, tc.overrides, testEnv())
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Build error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"i": "-3", "u": "42", "f": "0.25", "b": "true", "s": "hello"}
	if v, err := p.Int("i"); err != nil || v != -3 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := p.Uint64("u"); err != nil || v != 42 {
		t.Errorf("Uint64 = %d, %v", v, err)
	}
	if v, err := p.Float("f"); err != nil || v != 0.25 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if v, err := p.Bool("b"); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if v, err := p.Str("s"); err != nil || v != "hello" {
		t.Errorf("Str = %q, %v", v, err)
	}
	if _, err := p.Int("missing"); err == nil {
		t.Error("Int(missing): want error")
	}
	if _, err := p.Int("s"); err == nil {
		t.Error("Int on non-integer: want error")
	}
	if _, err := p.Uint64("i"); err == nil {
		t.Error("Uint64 on negative: want error")
	}
	if _, err := p.Bool("s"); err == nil {
		t.Error("Bool on non-bool: want error")
	}
}
