package track

import (
	"container/heap"
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
)

// spaceSaving is a Space-Saving frequent-items summary: the counter-based
// tracking core used by Mithril-style in-DRAM trackers. It maintains k
// (row, count) entries; a miss with a full table replaces the minimum-count
// entry and inherits min+1, which upper-bounds every row's true activation
// count and is what gives counter-based trackers their security guarantee.
type spaceSaving struct {
	entries []ssEntry
	index   map[int]int // row -> position in entries (heap slot)
	k       int
}

type ssEntry struct {
	row   int
	count int64
}

// heap.Interface over entries ordered by count (min-heap).
func (s *spaceSaving) Len() int           { return len(s.entries) }
func (s *spaceSaving) Less(i, j int) bool { return s.entries[i].count < s.entries[j].count }
func (s *spaceSaving) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.index[s.entries[i].row] = i
	s.index[s.entries[j].row] = j
}
func (s *spaceSaving) Push(x any) {
	e := x.(ssEntry)
	s.index[e.row] = len(s.entries)
	s.entries = append(s.entries, e)
}
func (s *spaceSaving) Pop() any {
	n := len(s.entries)
	e := s.entries[n-1]
	s.entries = s.entries[:n-1]
	delete(s.index, e.row)
	return e
}

func newSpaceSaving(k int) *spaceSaving {
	return &spaceSaving{k: k, index: make(map[int]int, k)}
}

// observe records one activation of row, reporting whether a new entry was
// inserted and whether an existing one was evicted for it.
func (s *spaceSaving) observe(row int) (inserted, evicted bool) {
	if i, ok := s.index[row]; ok {
		s.entries[i].count++
		heap.Fix(s, i)
		return false, false
	}
	if len(s.entries) < s.k {
		heap.Push(s, ssEntry{row: row, count: 1})
		return true, false
	}
	// Replace the minimum entry; the newcomer inherits min+1.
	min := s.entries[0]
	delete(s.index, min.row)
	s.entries[0] = ssEntry{row: row, count: min.count + 1}
	s.index[row] = 0
	heap.Fix(s, 0)
	return true, true
}

// takeMax removes and returns the entry with the highest count.
func (s *spaceSaving) takeMax() (ssEntry, bool) {
	if len(s.entries) == 0 {
		return ssEntry{}, false
	}
	best := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count > s.entries[best].count {
			best = i
		}
	}
	e := s.entries[best]
	// Remove by swapping with the last element and re-fixing.
	last := len(s.entries) - 1
	s.Swap(best, last)
	s.entries = s.entries[:last]
	delete(s.index, e.row)
	if best < len(s.entries) {
		heap.Fix(s, best)
	}
	return e, true
}

// drop removes row from the summary if present (e.g. its count was cleared
// by a demand refresh), reporting whether an entry was removed.
func (s *spaceSaving) drop(row int) bool {
	i, ok := s.index[row]
	if !ok {
		return false
	}
	last := len(s.entries) - 1
	s.Swap(i, last)
	s.entries = s.entries[:last]
	delete(s.index, row)
	if i < len(s.entries) {
		heap.Fix(s, i)
	}
	return true
}

// MithrilConfig configures the Mithril-style counter tracker.
type MithrilConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	Entries  int // tracking entries per bank (2K in the paper's comparison)
	// MitigateEveryREFs takes a mitigation opportunity every k REFs.
	MitigateEveryREFs int
	// MitigateOnRFM takes a mitigation opportunity on RFM.
	MitigateOnRFM bool
}

// Mithril is a counter-based proactive in-DRAM tracker in the style of
// Mithril (HPCA'22): a Space-Saving summary with Entries counters per bank,
// mitigating the maximum-count entry at each proactive opportunity. It
// provides a deterministic security bound at the cost of large SRAM
// (Table II and Section VIII.A of the MIRZA paper).
type Mithril struct {
	cfg    MithrilConfig
	sink   Sink
	tables []*spaceSaving
	Stats  Stats
}

var _ Mitigator = (*Mithril)(nil)

// NewMithril builds the Mithril-style baseline.
func NewMithril(cfg MithrilConfig, sink Sink) *Mithril {
	if sink == nil {
		sink = NopSink{}
	}
	if cfg.Entries < 1 {
		panic(fmt.Sprintf("track: Mithril needs >= 1 entry, got %d", cfg.Entries))
	}
	m := &Mithril{cfg: cfg, sink: sink}
	m.tables = make([]*spaceSaving, cfg.Geometry.BanksPerSubChannel)
	for i := range m.tables {
		m.tables[i] = newSpaceSaving(cfg.Entries)
	}
	return m
}

// Name implements Mitigator.
func (m *Mithril) Name() string { return fmt.Sprintf("Mithril-%d", m.cfg.Entries) }

// OnActivate implements Mitigator.
func (m *Mithril) OnActivate(bank, row int, now dram.Time) {
	m.Stats.ACTs++
	inserted, evicted := m.tables[bank].observe(row)
	if inserted {
		m.Stats.Insertions++
	}
	if evicted {
		m.Stats.Evictions++
	}
}

// WantsALERT implements Mitigator; Mithril is proactive.
func (m *Mithril) WantsALERT() bool { return false }

// OnREF implements Mitigator.
func (m *Mithril) OnREF(refIndex int, now dram.Time) {
	g := m.cfg.Geometry
	t := g.RefreshTargetOf(refIndex)
	for idx := t.FirstIdx; idx <= t.LastIdx; idx++ {
		row := g.RowAt(m.cfg.Mapping, t.Subarray, idx)
		for _, tab := range m.tables {
			if tab.drop(row) {
				m.Stats.Evictions++
			}
		}
	}
	k := m.cfg.MitigateEveryREFs
	if k > 0 && refIndex%k == 0 {
		for bank := range m.tables {
			m.mitigate(bank, now)
		}
	}
}

// OnRFM implements Mitigator.
func (m *Mithril) OnRFM(bank int, now dram.Time) {
	m.Stats.RFMs++
	if m.cfg.MitigateOnRFM {
		m.mitigate(bank, now)
	}
}

// ServiceALERT implements Mitigator.
func (m *Mithril) ServiceALERT(now dram.Time) {
	for bank := range m.tables {
		m.mitigate(bank, now)
	}
}

// InjectStateFault implements StateInjector: it flips one bit of a random
// Space-Saving entry's count in a random bank and restores the heap
// invariant (the hardware analogue is a corrupted counter that the
// comparator network keeps consuming as if it were genuine).
func (m *Mithril) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(m.tables))
	tab := m.tables[bank]
	if len(tab.entries) == 0 {
		return fmt.Sprintf("mithril[bank=%d] empty (no-op)", bank)
	}
	i := rng.Intn(len(tab.entries))
	bit := rng.Intn(16)
	row := tab.entries[i].row
	tab.entries[i].count ^= 1 << bit
	heap.Fix(tab, i)
	return fmt.Sprintf("mithril[bank=%d][row=%d] bit %d", bank, row, bit)
}

func (m *Mithril) mitigate(bank int, now dram.Time) {
	e, ok := m.tables[bank].takeMax()
	if !ok {
		return
	}
	m.Stats.Mitigations++
	m.sink.RowMitigated(bank, e.row, MitigationVictims, now)
}

// TrackStats implements StatsSource.
func (m *Mithril) TrackStats() Stats { return m.Stats }
