package policies

// Graphene (Park et al., MICRO'20) in one self-contained file: the
// Misra-Gries frequent-item counter table with a spillover counter, reset
// every tREFW. Registration at the bottom wires it into the registry so it
// picks up the attack sweep, fault injection, telemetry and audit paths
// automatically.

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// GrapheneConfig configures the Graphene baseline.
type GrapheneConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	// Threshold T: a tracked row is mitigated whenever its estimated
	// count reaches a multiple of T.
	Threshold int
	// Entries is the counter-table capacity per bank (Graphene's
	// provisioning: W/T + 1 with W the max ACTs per bank per tREFW).
	Entries int
}

type grapheneEntry struct {
	row   int
	count int
}

type grapheneBank struct {
	rows    map[int]int // row -> index into entries
	entries []grapheneEntry
	spill   int // spillover counter: ACTs to untracked rows
}

// Graphene is the per-sub-channel tracker: one counter table per bank. It
// mitigates inline (piggybacked adjacent-row refresh) and never requests
// ALERT. The Misra-Gries invariant — any row's true count is at most its
// table estimate plus the spillover counter, and an untracked row's count
// is at most the spillover counter — bounds every row's unmitigated
// activations by 2T per reset window when the table holds W/T + 1 entries.
type Graphene struct {
	cfg   GrapheneConfig
	sink  track.Sink
	banks []grapheneBank
	Stats track.Stats
}

var (
	_ track.Mitigator     = (*Graphene)(nil)
	_ track.StatsSource   = (*Graphene)(nil)
	_ track.StateInjector = (*Graphene)(nil)
)

// NewGraphene builds the Graphene baseline.
func NewGraphene(cfg GrapheneConfig, sink track.Sink) (*Graphene, error) {
	if cfg.Threshold < 1 {
		return nil, fmt.Errorf("graphene: threshold must be >= 1, got %d", cfg.Threshold)
	}
	if cfg.Entries < 1 {
		return nil, fmt.Errorf("graphene: entries must be >= 1, got %d", cfg.Entries)
	}
	if sink == nil {
		sink = track.NopSink{}
	}
	g := &Graphene{cfg: cfg, sink: sink}
	g.banks = make([]grapheneBank, cfg.Geometry.BanksPerSubChannel)
	for i := range g.banks {
		g.banks[i].rows = make(map[int]int)
	}
	return g, nil
}

// Name implements track.Mitigator.
func (g *Graphene) Name() string {
	return fmt.Sprintf("Graphene(T=%d,N=%d)", g.cfg.Threshold, g.cfg.Entries)
}

// OnActivate implements track.Mitigator: the Misra-Gries update of the
// reference algorithm — hit increments, miss inserts while there is room,
// and a miss against a full table bumps the spillover counter and swaps it
// with the minimum entry once it catches up.
func (g *Graphene) OnActivate(bank, row int, now dram.Time) {
	g.Stats.ACTs++
	b := &g.banks[bank]
	if i, ok := b.rows[row]; ok {
		b.entries[i].count++
		g.maybeMitigate(bank, &b.entries[i], now)
		return
	}
	if len(b.entries) < g.cfg.Entries {
		b.rows[row] = len(b.entries)
		b.entries = append(b.entries, grapheneEntry{row: row, count: b.spill + 1})
		g.Stats.Insertions++
		g.maybeMitigate(bank, &b.entries[len(b.entries)-1], now)
		return
	}
	b.spill++
	min := 0
	for i := 1; i < len(b.entries); i++ {
		if b.entries[i].count < b.entries[min].count {
			min = i
		}
	}
	if b.spill >= b.entries[min].count {
		e := &b.entries[min]
		delete(b.rows, e.row)
		b.rows[row] = min
		e.row = row
		e.count, b.spill = b.spill, e.count
		g.Stats.Insertions++
		g.Stats.Evictions++
		g.maybeMitigate(bank, e, now)
	}
}

func (g *Graphene) maybeMitigate(bank int, e *grapheneEntry, now dram.Time) {
	if e.count > 0 && e.count%g.cfg.Threshold == 0 {
		g.Stats.Mitigations++
		g.sink.RowMitigated(bank, e.row, track.MitigationVictims, now)
	}
}

// WantsALERT implements track.Mitigator; Graphene never asserts ALERT.
func (g *Graphene) WantsALERT() bool { return false }

// OnREF implements track.Mitigator: the tables and spillover counters reset
// at every tREFW boundary (the reference algorithm's reset window).
func (g *Graphene) OnREF(refIndex int, now dram.Time) {
	if refIndex%g.cfg.Geometry.REFsPerWindow() != 0 {
		return
	}
	for i := range g.banks {
		b := &g.banks[i]
		if n := len(b.entries); n > 0 {
			g.Stats.Evictions += int64(n)
			b.entries = b.entries[:0]
			b.rows = make(map[int]int)
		}
		b.spill = 0
	}
}

// OnRFM implements track.Mitigator; Graphene does not use RFM.
func (g *Graphene) OnRFM(bank int, now dram.Time) { g.Stats.RFMs++ }

// ServiceALERT implements track.Mitigator; never reached (no ALERT), kept
// as a no-op for interface robustness.
func (g *Graphene) ServiceALERT(now dram.Time) {}

// TrackStats implements track.StatsSource.
func (g *Graphene) TrackStats() track.Stats { return g.Stats }

// InjectStateFault implements track.StateInjector: it flips one bit of a
// random bank's spillover counter or of a random table entry's count.
func (g *Graphene) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(g.banks))
	b := &g.banks[bank]
	bit := rng.Intn(16)
	if len(b.entries) == 0 || rng.Intn(4) == 0 {
		b.spill ^= 1 << bit
		if b.spill < 0 {
			b.spill = 0
		}
		return fmt.Sprintf("graphene[bank=%d].spill bit %d", bank, bit)
	}
	i := rng.Intn(len(b.entries))
	b.entries[i].count ^= 1 << bit
	return fmt.Sprintf("graphene[bank=%d].entry[%d].count bit %d", bank, i, bit)
}

func init() {
	track.Register(track.Descriptor{
		Name: "graphene",
		Doc:  "Graphene Misra-Gries counter table with spillover, reset per tREFW (MICRO'20)",
		ConfigSchema: []track.ParamSpec{
			{Key: "threshold", Kind: track.IntParam, Doc: "table threshold T (default TRHD/4)"},
			{Key: "entries", Kind: track.IntParam, Doc: "table entries per bank; 0 derives W/T + 1 (default 0)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"threshold": itoa(cfg.TRHD / 4), "entries": "0"}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			t, err := cfg.Params.Int("threshold")
			if err != nil {
				return nil, err
			}
			entries, err := cfg.Params.Int("entries")
			if err != nil {
				return nil, err
			}
			if t < 1 {
				return nil, fmt.Errorf("threshold must be >= 1, got %d", t)
			}
			if entries == 0 {
				entries = dram.DDR5().MaxACTsPerBankPerTREFW()/t + 1
			}
			return NewGraphene(GrapheneConfig{
				Geometry:  cfg.Geometry,
				Mapping:   cfg.Mapping,
				Threshold: t,
				Entries:   entries,
			}, sink)
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			t, err := cfg.Params.Int("threshold")
			if err != nil {
				return track.Bound{}, err
			}
			// Each aggressor of a double-sided pair is mitigated at every
			// multiple of T, so a victim sees at most 2(T-1) + spillover
			// slack < 4T unmitigated activations per reset window.
			return track.Bound{TRHD: 4 * t, Kind: fmt.Sprintf("Graphene guarantee 4T (T=%d)", t)}, nil
		},
	})
}
