package policies

// Loaded Dice ("Solving the Non-Selection Problem for Scalable
// Probabilistic RowHammer Defense", PAPERS.md) in one self-contained file.
// MINT picks a random target index up front, so a mitigation opportunity
// that arrives before the target is reached finds nothing selected — the
// non-selection problem. Loaded Dice instead keeps a live selection at all
// times with escalating capture odds: the k-th activation since the last
// mitigation replaces the current selection with probability 1/k. Every
// activation in the window is selected with equal probability and a
// selection always exists after the first ACT, so every RFM opportunity
// performs useful work.

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// LoadedDiceConfig configures the Loaded Dice baseline.
type LoadedDiceConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	// Window is the RFM cadence W: the memory controller grants one
	// mitigation every W activations per bank.
	Window int
	Seed   uint64
}

type diceBank struct {
	rng      *stats.RNG
	acts     int // activations since the last mitigation opportunity
	selected int
	hasSel   bool
}

// LoadedDice holds one reservoir selector per bank and mitigates on RFM.
// It is purely proactive: no ALERTs, no table state beyond one row id and
// one activation count per bank.
type LoadedDice struct {
	cfg   LoadedDiceConfig
	sink  track.Sink
	banks []diceBank
	Stats track.Stats
}

var (
	_ track.Mitigator     = (*LoadedDice)(nil)
	_ track.StatsSource   = (*LoadedDice)(nil)
	_ track.StateInjector = (*LoadedDice)(nil)
)

// NewLoadedDice builds the Loaded Dice baseline.
func NewLoadedDice(cfg LoadedDiceConfig, sink track.Sink) (*LoadedDice, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("loaded-dice: window must be >= 1, got %d", cfg.Window)
	}
	if sink == nil {
		sink = track.NopSink{}
	}
	root := stats.NewRNG(cfg.Seed ^ 0x44494345) // "DICE"
	d := &LoadedDice{cfg: cfg, sink: sink}
	d.banks = make([]diceBank, cfg.Geometry.BanksPerSubChannel)
	for i := range d.banks {
		d.banks[i].rng = root.Split()
	}
	return d, nil
}

// Name implements track.Mitigator.
func (d *LoadedDice) Name() string { return fmt.Sprintf("LoadedDice-%d", d.cfg.Window) }

// OnActivate implements track.Mitigator: reservoir capture with
// probability 1/k for the k-th ACT since the last opportunity.
func (d *LoadedDice) OnActivate(bank, row int, now dram.Time) {
	d.Stats.ACTs++
	b := &d.banks[bank]
	if b.acts < 0 {
		b.acts = 0 // recover silently from injected-fault corruption
	}
	b.acts++
	if b.rng.Intn(b.acts) == 0 {
		b.selected = row
		b.hasSel = true
		d.Stats.Insertions++
	}
}

// WantsALERT implements track.Mitigator; Loaded Dice is purely proactive.
func (d *LoadedDice) WantsALERT() bool { return false }

// OnREF implements track.Mitigator; no refresh-synchronized state.
func (d *LoadedDice) OnREF(refIndex int, now dram.Time) {}

// OnRFM implements track.Mitigator: the RFM is the mitigation opportunity.
func (d *LoadedDice) OnRFM(bank int, now dram.Time) {
	d.Stats.RFMs++
	d.take(bank, now)
}

// ServiceALERT implements track.Mitigator; never requested, but honored for
// robustness like the other proactive designs.
func (d *LoadedDice) ServiceALERT(now dram.Time) {
	for bank := range d.banks {
		d.take(bank, now)
	}
}

func (d *LoadedDice) take(bank int, now dram.Time) {
	b := &d.banks[bank]
	if !b.hasSel {
		return
	}
	row := b.selected
	b.hasSel = false
	b.acts = 0
	d.Stats.Mitigations++
	d.sink.RowMitigated(bank, row, track.MitigationVictims, now)
}

// TrackStats implements track.StatsSource.
func (d *LoadedDice) TrackStats() track.Stats { return d.Stats }

// InjectStateFault implements track.StateInjector: one bit of a random
// bank's activation count or captured row id flips.
func (d *LoadedDice) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(d.banks))
	b := &d.banks[bank]
	if rng.Intn(2) == 0 {
		bit := rng.Intn(11)
		b.acts ^= 1 << bit
		return fmt.Sprintf("loaded-dice[bank=%d].acts bit %d", bank, bit)
	}
	bit := rng.Intn(17)
	b.selected ^= 1 << bit
	if b.selected >= d.cfg.Geometry.RowsPerBank || b.selected < 0 {
		b.selected &= d.cfg.Geometry.RowsPerBank - 1
	}
	return fmt.Sprintf("loaded-dice[bank=%d].selected bit %d", bank, bit)
}

func init() {
	track.Register(track.Descriptor{
		Name: "loaded-dice",
		Doc:  "Loaded Dice reservoir selector: non-selection-free probabilistic mitigation on RFM",
		ConfigSchema: []track.ParamSpec{
			{Key: "window", Kind: track.IntParam, Doc: "RFM cadence W = RFM BAT (default WindowForTRHD(TRHD))"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			w := security.DefaultMINTModel().WindowForTRHD(cfg.TRHD)
			return track.Params{"window": itoa(w)}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return nil, err
			}
			return NewLoadedDice(LoadedDiceConfig{
				Geometry: cfg.Geometry,
				Mapping:  cfg.Mapping,
				Window:   w,
				Seed:     cfg.Seed + uint64(cfg.Sub)*31,
			}, sink)
		},
		RFMBAT: func(cfg track.Config) (int, error) {
			return cfg.Params.Int("window")
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return track.Bound{}, err
			}
			// Selection is uniform over the at-most-W ACTs between RFMs,
			// so the per-ACT selection probability is >= MINT's 1/W and
			// the MINT analytic bound applies.
			return track.Bound{
				TRHD: security.DefaultMINTModel().ToleratedTRHD(w),
				Kind: fmt.Sprintf("MINT analytic tolerated TRHD at W=%d (non-selection-free)", w),
			}, nil
		},
	})
}
