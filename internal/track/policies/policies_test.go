package policies

import (
	"fmt"
	"testing"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
)

func buildDefault(t *testing.T, name string, trhd int) *track.Built {
	t.Helper()
	b, err := track.Build(name, nil, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     trhd,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return b
}

// TestDefaultsMatchTableI pins every registration's DefaultConfig to the
// provisioning the bespoke construction sites used before the registry:
// Table-I parameters must live in exactly one place and keep their values.
func TestDefaultsMatchTableI(t *testing.T) {
	const trhd = 1000
	mint := security.DefaultMINTModel()
	mirzaCfg, err := core.ForTRHD(trhd)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]string{
		"prac":     {"ath": fmt.Sprint(track.ATHForTRHD(trhd))},
		"mint-rfm": {"window": fmt.Sprint(mint.WindowForTRHD(trhd))},
		"mint-ref": {"window": fmt.Sprint(security.WindowPerREFs(dram.DDR5(), 1)), "every": "1"},
		"trr":      {"entries": "28", "every": "4", "sample": "16"},
		"mithril":  {"entries": "2048", "every": "1"},
		"mopac":    {"p": "0.1", "ath": "0"},
		"mirza": {
			"fth":     fmt.Sprint(mirzaCfg.FTH),
			"window":  fmt.Sprint(mirzaCfg.MINTWindow),
			"regions": fmt.Sprint(mirzaCfg.Regions),
			"queue":   fmt.Sprint(mirzaCfg.QueueSize),
			"qth":     fmt.Sprint(mirzaCfg.QTH),
			"reset":   mirzaCfg.ResetPolicy.String(),
		},
		"naive-mirza": {"fth": "0"},
	}
	for name, params := range want {
		b := buildDefault(t, name, trhd)
		got := b.Params()
		for key, val := range params {
			if got[key] != val {
				t.Errorf("%s: default %s = %q, want %q", name, key, got[key], val)
			}
		}
	}
}

// TestTimingAndRFMOverlays pins which policies demand the PRAC timing
// overlay and which drive the memory controller's RFM cadence.
func TestTimingAndRFMOverlays(t *testing.T) {
	const trhd = 1000
	pracTRC := dram.PRAC().TRC
	ddr5TRC := dram.DDR5().TRC
	for _, name := range []string{"prac", "mopac"} {
		if got := buildDefault(t, name, trhd).Timing().TRC; got != pracTRC {
			t.Errorf("%s: TRC = %v, want PRAC overlay %v", name, got, pracTRC)
		}
	}
	for _, name := range []string{"none", "mint-ref", "trr", "mithril", "mirza", "graphene", "oracle"} {
		if got := buildDefault(t, name, trhd).Timing().TRC; got != ddr5TRC {
			t.Errorf("%s: TRC = %v, want plain DDR5 %v", name, got, ddr5TRC)
		}
	}
	w := security.DefaultMINTModel().WindowForTRHD(trhd)
	for _, name := range []string{"mint-rfm", "loaded-dice"} {
		if got := buildDefault(t, name, trhd).RFMBAT(); got != w {
			t.Errorf("%s: RFMBAT = %d, want MINT window %d", name, got, w)
		}
	}
	for _, name := range []string{"prac", "mirza", "graphene", "oracle", "none"} {
		if got := buildDefault(t, name, trhd).RFMBAT(); got != 0 {
			t.Errorf("%s: RFMBAT = %d, want 0 (no RFM cadence)", name, got)
		}
	}
}

// TestBoundsAreMeaningful checks each secure policy declares a positive
// bound of the right analytic family, and insecure ones are flagged.
func TestBoundsAreMeaningful(t *testing.T) {
	const trhd = 1000
	cases := map[string]int{
		"prac":        trhd,           // deterministic: provisioned TRHD
		"oracle":      2 * (trhd / 2), // 2T at threshold T
		"graphene":    4 * (trhd / 4), // Misra-Gries 4T
		"mirza":       0,              // SafeTRHD, positive
		"mint-rfm":    0,              // MINT analytic, positive
		"loaded-dice": 0,              // MINT analytic, positive
	}
	for name, exact := range cases {
		b := buildDefault(t, name, trhd)
		bound := b.Bound()
		if bound.TRHD <= 0 {
			t.Errorf("%s: bound %d not positive", name, bound.TRHD)
		}
		if exact != 0 && bound.TRHD != exact {
			t.Errorf("%s: bound = %d, want %d", name, bound.TRHD, exact)
		}
		if b.Insecure() {
			t.Errorf("%s: unexpectedly flagged insecure", name)
		}
	}
	for _, name := range []string{"none", "trr"} {
		if !buildDefault(t, name, trhd).Insecure() {
			t.Errorf("%s: not flagged insecure", name)
		}
	}
}

// TestInstancesExposeStats ensures every registered policy's instance is
// visible to telemetry and the auditor.
func TestInstancesExposeStats(t *testing.T) {
	for _, name := range track.Names() {
		b := buildDefault(t, name, 1000)
		m, err := b.NewMitigator(0, track.NopSink{})
		if err != nil {
			t.Fatalf("%s: NewMitigator: %v", name, err)
		}
		if m.Name() == "" {
			t.Errorf("%s: instance has an empty Name()", name)
		}
		if track.Source(m) == nil {
			t.Errorf("%s: instance exposes no StatsSource", name)
		}
	}
}
