package policies

// Oracle is the perfect-knowledge upper bound (the OracleRH idea from
// Ramulator2, SNIPPETS.md snippet 2): it keeps an exact activation counter
// for every row and mitigates an aggressor inline the moment it reaches
// TRHD/2 — the latest moment any defense may act while still keeping every
// double-sided victim under TRHD. It issues no ALERTs, needs no RFMs, and
// performs the minimum possible number of mitigations, so its slowdown is
// the floor every realistic tracker is compared against.

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// OracleConfig configures the oracle upper bound.
type OracleConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	// Threshold is the exact per-row count at which the aggressor is
	// mitigated (TRHD/2 for double-sided safety).
	Threshold int
}

// Oracle tracks every row of every bank exactly.
type Oracle struct {
	cfg      OracleConfig
	sink     track.Sink
	counters [][]uint16 // [bank][row]
	Stats    track.Stats
}

var (
	_ track.Mitigator     = (*Oracle)(nil)
	_ track.StatsSource   = (*Oracle)(nil)
	_ track.StateInjector = (*Oracle)(nil)
)

// NewOracle builds the oracle upper bound.
func NewOracle(cfg OracleConfig, sink track.Sink) (*Oracle, error) {
	if cfg.Threshold < 1 || cfg.Threshold > 0xffff {
		return nil, fmt.Errorf("oracle: threshold must be in [1, 65535], got %d", cfg.Threshold)
	}
	if sink == nil {
		sink = track.NopSink{}
	}
	o := &Oracle{cfg: cfg, sink: sink}
	o.counters = make([][]uint16, cfg.Geometry.BanksPerSubChannel)
	for i := range o.counters {
		o.counters[i] = make([]uint16, cfg.Geometry.RowsPerBank)
	}
	return o, nil
}

// Name implements track.Mitigator.
func (o *Oracle) Name() string { return fmt.Sprintf("Oracle(T=%d)", o.cfg.Threshold) }

// OnActivate implements track.Mitigator: exact counting, inline mitigation
// at the threshold.
func (o *Oracle) OnActivate(bank, row int, now dram.Time) {
	o.Stats.ACTs++
	c := o.counters[bank]
	c[row]++
	if int(c[row]) >= o.cfg.Threshold {
		c[row] = 0
		o.Stats.Mitigations++
		o.sink.RowMitigated(bank, row, track.MitigationVictims, now)
	}
}

// WantsALERT implements track.Mitigator; the oracle never stalls the bus.
func (o *Oracle) WantsALERT() bool { return false }

// OnREF implements track.Mitigator: a demand refresh resets the disturbance
// of the refreshed rows, so their counters clear (same bookkeeping as PRAC).
func (o *Oracle) OnREF(refIndex int, now dram.Time) {
	g := o.cfg.Geometry
	target := g.RefreshTargetOf(refIndex)
	for idx := target.FirstIdx; idx <= target.LastIdx; idx++ {
		row := g.RowAt(o.cfg.Mapping, target.Subarray, idx)
		for bank := range o.counters {
			o.counters[bank][row] = 0
		}
	}
}

// OnRFM implements track.Mitigator; the oracle does not need RFM.
func (o *Oracle) OnRFM(bank int, now dram.Time) { o.Stats.RFMs++ }

// ServiceALERT implements track.Mitigator; never requested.
func (o *Oracle) ServiceALERT(now dram.Time) {}

// TrackStats implements track.StatsSource.
func (o *Oracle) TrackStats() track.Stats { return o.Stats }

// InjectStateFault implements track.StateInjector: one bit of one exact
// counter flips (the oracle's "SRAM" is the full counter array).
func (o *Oracle) InjectStateFault(rng *stats.RNG) string {
	bank := rng.Intn(len(o.counters))
	row := rng.Intn(len(o.counters[bank]))
	bit := rng.Intn(16)
	o.counters[bank][row] ^= 1 << bit
	return fmt.Sprintf("oracle[bank=%d].counter[row=%d] bit %d", bank, row, bit)
}

func init() {
	track.Register(track.Descriptor{
		Name: "oracle",
		Doc:  "oracle upper bound: exact per-row counters, inline mitigation at TRHD/2",
		ConfigSchema: []track.ParamSpec{
			{Key: "threshold", Kind: track.IntParam, Doc: "mitigate a row at this exact count (default TRHD/2)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"threshold": itoa(cfg.TRHD / 2)}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			t, err := cfg.Params.Int("threshold")
			if err != nil {
				return nil, err
			}
			return NewOracle(OracleConfig{
				Geometry:  cfg.Geometry,
				Mapping:   cfg.Mapping,
				Threshold: t,
			}, sink)
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			t, err := cfg.Params.Int("threshold")
			if err != nil {
				return track.Bound{}, err
			}
			// Both aggressors of a double-sided pair are mitigated at
			// exactly T, so a victim never accrues 2T.
			return track.Bound{TRHD: 2 * t, Kind: fmt.Sprintf("oracle guarantee 2T (T=%d)", t)}, nil
		},
	})
}
