package policies

import (
	"fmt"

	"mirza/internal/core"
	"mirza/internal/security"
	"mirza/internal/track"
)

// mirzaSchema documents the MIRZA tunables shared by the mirza and
// naive-mirza registrations. Defaults come from core.ForTRHD (Table VII).
var mirzaSchema = []track.ParamSpec{
	{Key: "fth", Kind: track.IntParam, Doc: "Filtering Threshold (RCT counts <= FTH are filtered)"},
	{Key: "window", Kind: track.IntParam, Doc: "MINT window W over escaping activations"},
	{Key: "regions", Kind: track.IntParam, Doc: "RCT regions per bank"},
	{Key: "queue", Kind: track.IntParam, Doc: "MIRZA-Q entries per bank (default 4)"},
	{Key: "qth", Kind: track.IntParam, Doc: "queue tardiness threshold (default 16)"},
	{Key: "reset", Kind: track.StringParam, Doc: "RCT reset policy: safe | eager | lazy (default safe)"},
}

func mirzaDefaults(cfg track.Config, naive bool) (track.Params, error) {
	c, err := core.ForTRHD(cfg.TRHD)
	if err != nil {
		return nil, err
	}
	if naive {
		c.FTH = 0 // no coarse-grained filtering: every ACT reaches the sampler
	}
	return track.Params{
		"fth":     itoa(c.FTH),
		"window":  itoa(c.MINTWindow),
		"regions": itoa(c.Regions),
		"queue":   itoa(c.QueueSize),
		"qth":     itoa(c.QTH),
		"reset":   c.ResetPolicy.String(),
	}, nil
}

// mirzaConfig assembles and validates a core.Config from the merged
// parameter bag.
func mirzaConfig(cfg track.Config) (core.Config, error) {
	c := core.Config{
		Geometry:   cfg.Geometry,
		Mapping:    cfg.Mapping,
		Seed:       cfg.Seed + uint64(cfg.Sub),
		TargetTRHD: cfg.TRHD,
	}
	var err error
	if c.FTH, err = cfg.Params.Int("fth"); err != nil {
		return core.Config{}, err
	}
	if c.MINTWindow, err = cfg.Params.Int("window"); err != nil {
		return core.Config{}, err
	}
	if c.Regions, err = cfg.Params.Int("regions"); err != nil {
		return core.Config{}, err
	}
	if c.QueueSize, err = cfg.Params.Int("queue"); err != nil {
		return core.Config{}, err
	}
	if c.QTH, err = cfg.Params.Int("qth"); err != nil {
		return core.Config{}, err
	}
	reset, err := cfg.Params.Str("reset")
	if err != nil {
		return core.Config{}, err
	}
	switch reset {
	case "safe":
		c.ResetPolicy = core.SafeReset
	case "eager":
		c.ResetPolicy = core.EagerReset
	case "lazy":
		c.ResetPolicy = core.LazyReset
	default:
		return core.Config{}, fmt.Errorf("param %q: %q is not one of safe, eager, lazy", "reset", reset)
	}
	if err := c.Validate(); err != nil {
		return core.Config{}, err
	}
	return c, nil
}

func registerMirza(name, doc string, naive bool) {
	track.Register(track.Descriptor{
		Name:         name,
		Doc:          doc,
		ConfigSchema: mirzaSchema,
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return mirzaDefaults(cfg, naive)
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			c, err := mirzaConfig(cfg)
			if err != nil {
				return nil, err
			}
			return core.New(c, sink)
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			c, err := mirzaConfig(cfg)
			if err != nil {
				return track.Bound{}, err
			}
			return track.Bound{
				TRHD: security.SafeTRHD(c, security.DefaultMINTModel()),
				Kind: "SafeTRHD",
			}, nil
		},
	})
}

func init() {
	registerMirza("mirza", "MIRZA: RCT coarse-grained filtering + MINT sampling + MIRZA-Q + ALERT back-off", false)
	registerMirza("naive-mirza", "MIRZA without coarse-grained filtering (FTH=0): sampler sees every ACT", true)
}
