// Package policies registers every mitigation policy in the repository with
// the track registry. Consumers that resolve defenses by name (the CLIs,
// the experiment grids, serve admission, the conformance harness)
// blank-import this package; internal/track itself stays free of policy
// wiring so implementations may depend on internal/core and
// internal/security without import cycles.
//
// Each registration is the single source of truth for that policy's Table-I
// provisioning: default parameters, the DRAM timing it requires, the RFM
// Bank Activation Threshold the memory controller must honor, and the
// analytic security bound the attack sweep checks against.
package policies

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
)

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func init() {
	track.Register(track.Descriptor{
		Name:     "none",
		Doc:      "no mitigation (unprotected baseline)",
		Insecure: true,
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			return track.NewNop(), nil
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			return track.Bound{TRHD: cfg.TRHD, Kind: "nominal TRHD (unprotected)"}, nil
		},
	})

	track.Register(track.Descriptor{
		Name: "prac",
		Doc:  "PRAC per-row activation counters + ALERT back-off at ATH (MOAT-style)",
		ConfigSchema: []track.ParamSpec{
			{Key: "ath", Kind: track.IntParam, Doc: "ALERT threshold (default ATHForTRHD(TRHD) = TRHD/2 - 8)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"ath": itoa(track.ATHForTRHD(cfg.TRHD))}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			ath, err := cfg.Params.Int("ath")
			if err != nil {
				return nil, err
			}
			if ath < 1 {
				return nil, fmt.Errorf("ath must be >= 1, got %d", ath)
			}
			return track.NewPRAC(track.PRACConfig{
				Geometry:       cfg.Geometry,
				Mapping:        cfg.Mapping,
				AlertThreshold: ath,
			}, sink), nil
		},
		// PRAC-enabled parts pay the longer tRC of the counter update.
		Timing: func(cfg track.Config) dram.Timing { return dram.PRAC() },
		Bound: func(cfg track.Config) (track.Bound, error) {
			return track.Bound{TRHD: cfg.TRHD, Kind: "provisioned TRHD (deterministic ATH+ABO)"}, nil
		},
	})

	track.Register(track.Descriptor{
		Name: "mint-rfm",
		Doc:  "proactive MINT sampler, mitigating on MC RFMs issued every W ACTs per bank",
		ConfigSchema: []track.ParamSpec{
			{Key: "window", Kind: track.IntParam, Doc: "MINT window W = RFM BAT (default WindowForTRHD(TRHD))"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			w := security.DefaultMINTModel().WindowForTRHD(cfg.TRHD)
			return track.Params{"window": itoa(w)}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return nil, err
			}
			if w < 1 {
				return nil, fmt.Errorf("window must be >= 1, got %d", w)
			}
			return track.NewMINT(track.MINTConfig{
				Geometry:      cfg.Geometry,
				Mapping:       cfg.Mapping,
				Window:        w,
				MitigateOnRFM: true,
				Seed:          cfg.Seed + uint64(cfg.Sub)*31,
			}, sink), nil
		},
		RFMBAT: func(cfg track.Config) (int, error) {
			return cfg.Params.Int("window")
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return track.Bound{}, err
			}
			return track.Bound{
				TRHD: security.DefaultMINTModel().ToleratedTRHD(w),
				Kind: fmt.Sprintf("MINT analytic tolerated TRHD at W=%d", w),
			}, nil
		},
	})

	track.Register(track.Descriptor{
		Name: "mint-ref",
		Doc:  "proactive MINT sampler, mitigating under every k-th REF command",
		ConfigSchema: []track.ParamSpec{
			{Key: "window", Kind: track.IntParam, Doc: "MINT window W (default: max ACTs between mitigations at every=1)"},
			{Key: "every", Kind: track.IntParam, Doc: "mitigate at every k-th REF (default 1)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{
				"window": itoa(security.WindowPerREFs(dram.DDR5(), 1)),
				"every":  "1",
			}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return nil, err
			}
			every, err := cfg.Params.Int("every")
			if err != nil {
				return nil, err
			}
			if w < 1 || every < 1 {
				return nil, fmt.Errorf("window and every must be >= 1, got window=%d every=%d", w, every)
			}
			return track.NewMINT(track.MINTConfig{
				Geometry:          cfg.Geometry,
				Mapping:           cfg.Mapping,
				Window:            w,
				MitigateEveryREFs: every,
				Seed:              cfg.Seed + uint64(cfg.Sub)*31,
			}, sink), nil
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			w, err := cfg.Params.Int("window")
			if err != nil {
				return track.Bound{}, err
			}
			return track.Bound{
				TRHD: security.DefaultMINTModel().ToleratedTRHD(w),
				Kind: fmt.Sprintf("MINT analytic tolerated TRHD at W=%d", w),
			}, nil
		},
	})

	track.Register(track.Descriptor{
		Name:     "trr",
		Doc:      "sampled TRR-style counter table, mitigating under REF (no security guarantee)",
		Insecure: true,
		ConfigSchema: []track.ParamSpec{
			{Key: "entries", Kind: track.IntParam, Doc: "tracker table entries per bank (default 28)"},
			{Key: "every", Kind: track.IntParam, Doc: "mitigate at every k-th REF (default 4)"},
			{Key: "sample", Kind: track.IntParam, Doc: "observe every k-th ACT only (default 16)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"entries": "28", "every": "4", "sample": "16"}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			entries, err := cfg.Params.Int("entries")
			if err != nil {
				return nil, err
			}
			every, err := cfg.Params.Int("every")
			if err != nil {
				return nil, err
			}
			sample, err := cfg.Params.Int("sample")
			if err != nil {
				return nil, err
			}
			if entries < 1 || every < 1 || sample < 1 {
				return nil, fmt.Errorf("entries, every and sample must be >= 1, got %d/%d/%d", entries, every, sample)
			}
			return track.NewTRR(track.TRRConfig{
				Geometry:          cfg.Geometry,
				Mapping:           cfg.Mapping,
				Entries:           entries,
				MitigateEveryREFs: every,
				SampleEvery:       sample,
			}, sink), nil
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			return track.Bound{TRHD: cfg.TRHD, Kind: "nominal TRHD (TRR has no guarantee)"}, nil
		},
	})

	track.Register(track.Descriptor{
		Name: "mithril",
		Doc:  "Mithril-style Space-Saving counter tracker, mitigating under REF",
		ConfigSchema: []track.ParamSpec{
			{Key: "entries", Kind: track.IntParam, Doc: "Space-Saving entries per bank (default 2048)"},
			{Key: "every", Kind: track.IntParam, Doc: "mitigate at every k-th REF (default 1)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"entries": "2048", "every": "1"}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			entries, err := cfg.Params.Int("entries")
			if err != nil {
				return nil, err
			}
			every, err := cfg.Params.Int("every")
			if err != nil {
				return nil, err
			}
			if entries < 1 || every < 1 {
				return nil, fmt.Errorf("entries and every must be >= 1, got %d/%d", entries, every)
			}
			return track.NewMithril(track.MithrilConfig{
				Geometry:          cfg.Geometry,
				Mapping:           cfg.Mapping,
				Entries:           entries,
				MitigateEveryREFs: every,
			}, sink), nil
		},
		Bound: func(cfg track.Config) (track.Bound, error) {
			every, err := cfg.Params.Int("every")
			if err != nil {
				return track.Bound{}, err
			}
			w := security.WindowPerREFs(dram.DDR5(), every)
			return track.Bound{
				TRHD: security.DefaultMithrilModel().ToleratedTRHD(w),
				Kind: fmt.Sprintf("Mithril analytic tolerated TRHD at W=%d", w),
			}, nil
		},
	})

	track.Register(track.Descriptor{
		Name: "mopac",
		Doc:  "MoPAC probabilistic PRAC counting with 4-sigma derated ATH",
		ConfigSchema: []track.ParamSpec{
			{Key: "p", Kind: track.FloatParam, Doc: "per-ACT counter-update sample probability in (0,1] (default 0.1)"},
			{Key: "ath", Kind: track.IntParam, Doc: "ALERT threshold; 0 derives MoPACDeratedATH(TRHD, p) (default 0)"},
		},
		DefaultConfig: func(cfg track.Config) (track.Params, error) {
			return track.Params{"p": "0.1", "ath": "0"}, nil
		},
		New: func(cfg track.Config, sink track.Sink) (track.Mitigator, error) {
			p, err := cfg.Params.Float("p")
			if err != nil {
				return nil, err
			}
			ath, err := cfg.Params.Int("ath")
			if err != nil {
				return nil, err
			}
			if p <= 0 || p > 1 {
				return nil, fmt.Errorf("p must be in (0,1], got %v", p)
			}
			if ath == 0 {
				ath = track.MoPACDeratedATH(cfg.TRHD, p)
			}
			if ath < 1 {
				return nil, fmt.Errorf("ath must be >= 1, got %d", ath)
			}
			return track.NewMoPAC(track.MoPACConfig{
				Geometry:       cfg.Geometry,
				Mapping:        cfg.Mapping,
				SampleProb:     p,
				AlertThreshold: ath,
				Seed:           cfg.Seed + uint64(cfg.Sub)*31,
			}, sink), nil
		},
		Timing: func(cfg track.Config) dram.Timing { return dram.PRAC() },
		Bound: func(cfg track.Config) (track.Bound, error) {
			return track.Bound{TRHD: cfg.TRHD, Kind: "provisioned TRHD (probabilistic, 4-sigma derated ATH)"}, nil
		},
	})
}
