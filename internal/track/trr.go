package track

import (
	"fmt"

	"mirza/internal/dram"
)

// TRRConfig configures the DDR4-style Targeted Row Refresh baseline.
type TRRConfig struct {
	Geometry dram.Geometry
	Mapping  dram.R2SAMapping
	Entries  int // tracker entries per bank (reverse-engineered 4-28)
	// MitigateEveryREFs takes a mitigation opportunity every k REFs
	// (the paper's comparison uses one mitigation per 4 REF).
	MitigateEveryREFs int
	// SampleEvery models TRR's activation sampling: only every k-th
	// activation to a bank updates the tracker (default 16). Deterministic
	// sampling is what TRRespass/Blacksmith-style patterns exploit: an
	// attacker who knows the period parks decoy activations on the sampled
	// slots and hammers the aggressor in the shadow of the sampler.
	SampleEvery int
}

// TRR models the in-DRAM Targeted Row Refresh trackers shipped in DDR4
// devices (Section X, Table XII): a small table of (row, counter) entries
// fed by a deterministic activation sampler. A sampled hit increments the
// counter; a sampled miss inserts into a free slot or evicts the
// minimum-count entry without inheriting its count. The sampling is why
// TRR is not secure: an attacker who knows the sampler's period aligns
// decoy activations with the sampled slots so the aggressor is never even
// observed (the TRRespass/Blacksmith pattern family). The Insecure method
// and the attack tests demonstrate this.
type TRR struct {
	cfg      TRRConfig
	sink     Sink
	tables   [][]trrEntry
	actCount []int64
	Stats    Stats
}

type trrEntry struct {
	row   int
	count int64
}

var _ Mitigator = (*TRR)(nil)

// NewTRR builds the TRR baseline.
func NewTRR(cfg TRRConfig, sink Sink) *TRR {
	if sink == nil {
		sink = NopSink{}
	}
	if cfg.Entries < 1 {
		panic(fmt.Sprintf("track: TRR needs >= 1 entry, got %d", cfg.Entries))
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	t := &TRR{cfg: cfg, sink: sink}
	t.tables = make([][]trrEntry, cfg.Geometry.BanksPerSubChannel)
	t.actCount = make([]int64, cfg.Geometry.BanksPerSubChannel)
	return t
}

// Name implements Mitigator.
func (t *TRR) Name() string { return fmt.Sprintf("TRR-%d", t.cfg.Entries) }

// Insecure documents that this tracker has no security guarantee.
func (t *TRR) Insecure() bool { return true }

// OnActivate implements Mitigator.
func (t *TRR) OnActivate(bank, row int, now dram.Time) {
	t.Stats.ACTs++
	t.actCount[bank]++
	if t.actCount[bank]%int64(t.cfg.SampleEvery) != 0 {
		return // not sampled: the tracker never sees this activation
	}
	table := t.tables[bank]
	for i := range table {
		if table[i].row == row {
			table[i].count++
			return
		}
	}
	if len(table) < t.cfg.Entries {
		t.tables[bank] = append(table, trrEntry{row: row, count: 1})
		t.Stats.Insertions++
		return
	}
	// Evict the minimum-count entry; the newcomer starts at 1 (the
	// insecure part: no count inheritance).
	min := 0
	for i := 1; i < len(table); i++ {
		if table[i].count < table[min].count {
			min = i
		}
	}
	table[min] = trrEntry{row: row, count: 1}
	t.Stats.Evictions++
	t.Stats.Insertions++
}

// WantsALERT implements Mitigator; TRR is proactive.
func (t *TRR) WantsALERT() bool { return false }

// OnREF implements Mitigator.
func (t *TRR) OnREF(refIndex int, now dram.Time) {
	g := t.cfg.Geometry
	target := g.RefreshTargetOf(refIndex)
	for idx := target.FirstIdx; idx <= target.LastIdx; idx++ {
		row := g.RowAt(t.cfg.Mapping, target.Subarray, idx)
		for b := range t.tables {
			t.dropRow(b, row)
		}
	}
	k := t.cfg.MitigateEveryREFs
	if k > 0 && refIndex%k == 0 {
		for bank := range t.tables {
			t.mitigate(bank, now)
		}
	}
}

// OnRFM implements Mitigator.
func (t *TRR) OnRFM(bank int, now dram.Time) {
	t.Stats.RFMs++
	t.mitigate(bank, now)
}

// ServiceALERT implements Mitigator.
func (t *TRR) ServiceALERT(now dram.Time) {
	for bank := range t.tables {
		t.mitigate(bank, now)
	}
}

func (t *TRR) dropRow(bank, row int) {
	table := t.tables[bank]
	for i := range table {
		if table[i].row == row {
			t.tables[bank] = append(table[:i], table[i+1:]...)
			t.Stats.Evictions++
			return
		}
	}
}

// TrackStats implements StatsSource.
func (t *TRR) TrackStats() Stats { return t.Stats }

func (t *TRR) mitigate(bank int, now dram.Time) {
	table := t.tables[bank]
	if len(table) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(table); i++ {
		if table[i].count > table[best].count {
			best = i
		}
	}
	row := table[best].row
	t.tables[bank] = append(table[:best], table[best+1:]...)
	t.Stats.Mitigations++
	t.sink.RowMitigated(bank, row, MitigationVictims, now)
}

// Nop is the unprotected baseline: it observes traffic and does nothing.
type Nop struct {
	Stats Stats
}

var _ Mitigator = (*Nop)(nil)

// NewNop returns the no-mitigation baseline.
func NewNop() *Nop { return &Nop{} }

// Name implements Mitigator.
func (n *Nop) Name() string { return "Unprotected" }

// OnActivate implements Mitigator.
func (n *Nop) OnActivate(bank, row int, now dram.Time) { n.Stats.ACTs++ }

// WantsALERT implements Mitigator.
func (n *Nop) WantsALERT() bool { return false }

// OnREF implements Mitigator.
func (n *Nop) OnREF(refIndex int, now dram.Time) {}

// OnRFM implements Mitigator.
func (n *Nop) OnRFM(bank int, now dram.Time) { n.Stats.RFMs++ }

// ServiceALERT implements Mitigator.
func (n *Nop) ServiceALERT(now dram.Time) {}

// TrackStats implements StatsSource.
func (n *Nop) TrackStats() Stats { return n.Stats }
