// Package fault is a deterministic, seed-driven fault-injection harness
// for the Rowhammer mitigation stack. It stresses exactly the regimes the
// paper's security story depends on — ALERT storms, tracker-state
// corruption, suppressed mitigation opportunities, weak rows with
// depressed thresholds — without touching the happy path: a run with an
// empty Plan is bit-identical to a run without the harness (Wrap returns
// the mitigator unchanged and no random number is ever drawn).
//
// The harness has three parts:
//
//   - Plan declares what to inject (rates, a seed, an optional active
//     window). Plans parse from the compact "key=value,..." syntax used by
//     the mirza-bench/mirza-sim -faults flag.
//   - Wrap interposes a Plan between a driver (internal/mem, internal/
//     replay, internal/attack) and a track.Mitigator: it can flip bits of
//     tracker SRAM through the track.StateInjector hook, drop/delay/
//     duplicate the ALERT signal, and suppress RFM opportunities.
//   - WeakRowModel assigns deterministically chosen rows a depressed
//     Rowhammer threshold for the attack simulator's security criterion.
//
// Every decision draws from an RNG derived from Plan.Seed and the wrapped
// instance's stream id, so the injected-fault sequence is a pure function
// of (plan, seed, workload): reruns reproduce faults exactly.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// Plan declares a fault-injection campaign. The zero value injects
// nothing. All rates are probabilities in [0, 1].
type Plan struct {
	// Seed drives every random choice the harness makes. Wrapped
	// instances fold their stream id into it, so sub-channels see
	// independent but reproducible fault streams.
	Seed uint64

	// BitFlipRate is the per-activation probability of flipping one bit
	// of tracker SRAM state (via track.StateInjector; trackers that do
	// not expose state are unaffected).
	BitFlipRate float64

	// AlertDropRate is the per-assertion probability that a requested
	// ALERT is masked: the memory controller does not see the signal for
	// DropACTs activations, after which the (still pending) request is
	// re-evaluated as a fresh assertion.
	AlertDropRate float64

	// DropACTs is how many activations a dropped ALERT stays masked
	// before the persistent device state re-raises it (default 256).
	DropACTs int

	// AlertDelayACTs delays every ALERT assertion by this many
	// activations before the controller sees it (0 = no delay).
	AlertDelayACTs int

	// AlertDupRate is the per-activation probability of forcing a
	// spurious ALERT: the controller runs the full back-off protocol for
	// a device that had nothing urgent to mitigate.
	AlertDupRate float64

	// RFMDropRate is the probability that a proactive RFM opportunity is
	// swallowed before the tracker observes it.
	RFMDropRate float64

	// WeakRowRate is the fraction of rows with a depressed Rowhammer
	// threshold, and WeakRowFactor the multiplier (in (0,1]) applied to
	// the base threshold for those rows. They parameterize WeakRows and
	// do not affect Wrap.
	WeakRowRate   float64
	WeakRowFactor float64

	// Start and End bound the window of simulated time during which
	// injection is active. End == 0 means no upper bound.
	Start, End dram.Time
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return !p.wrapsMitigator() && p.WeakRowRate == 0
}

// wrapsMitigator reports whether any mitigator-side fault is enabled.
func (p Plan) wrapsMitigator() bool {
	return p.BitFlipRate > 0 || p.AlertDropRate > 0 || p.AlertDelayACTs > 0 ||
		p.AlertDupRate > 0 || p.RFMDropRate > 0
}

// Validate reports an error if the plan is unusable.
func (p Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"bitflip", p.BitFlipRate},
		{"alertdrop", p.AlertDropRate},
		{"alertdup", p.AlertDupRate},
		{"rfmdrop", p.RFMDropRate},
		{"weakrows", p.WeakRowRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if p.AlertDelayACTs < 0 {
		return fmt.Errorf("fault: alertdelay must be >= 0, got %d", p.AlertDelayACTs)
	}
	if p.DropACTs < 0 {
		return fmt.Errorf("fault: dropacts must be >= 0, got %d", p.DropACTs)
	}
	if p.WeakRowRate > 0 && (p.WeakRowFactor <= 0 || p.WeakRowFactor > 1) {
		return fmt.Errorf("fault: weakfactor %v outside (0,1]", p.WeakRowFactor)
	}
	if p.End != 0 && p.End <= p.Start {
		return fmt.Errorf("fault: window end %v not after start %v", p.End, p.Start)
	}
	return nil
}

// active reports whether injection is enabled at simulated time now.
func (p Plan) active(now dram.Time) bool {
	return now >= p.Start && (p.End == 0 || now < p.End)
}

// String renders the plan in the Parse syntax (empty string for an empty
// plan).
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if p.Seed != 0 {
		add("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.BitFlipRate > 0 {
		add("bitflip", ff(p.BitFlipRate))
	}
	if p.AlertDropRate > 0 {
		add("alertdrop", ff(p.AlertDropRate))
	}
	if p.DropACTs > 0 {
		add("dropacts", strconv.Itoa(p.DropACTs))
	}
	if p.AlertDelayACTs > 0 {
		add("alertdelay", strconv.Itoa(p.AlertDelayACTs))
	}
	if p.AlertDupRate > 0 {
		add("alertdup", ff(p.AlertDupRate))
	}
	if p.RFMDropRate > 0 {
		add("rfmdrop", ff(p.RFMDropRate))
	}
	if p.WeakRowRate > 0 {
		add("weakrows", ff(p.WeakRowRate))
		add("weakfactor", ff(p.WeakRowFactor))
	}
	if p.Start > 0 {
		add("start-ms", ff(float64(p.Start)/float64(dram.Millisecond)))
	}
	if p.End > 0 {
		add("end-ms", ff(float64(p.End)/float64(dram.Millisecond)))
	}
	return strings.Join(parts, ",")
}

// Parse builds a Plan from the "key=value,..." syntax of the -faults
// flag, e.g. "seed=7,bitflip=1e-5,alertdrop=0.2,alertdelay=32". Keys:
// seed, bitflip, alertdrop, dropacts, alertdelay, alertdup, rfmdrop,
// weakrows, weakfactor, start-ms, end-ms. An empty string parses to the
// empty plan.
func Parse(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is not key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "bitflip":
			p.BitFlipRate, err = strconv.ParseFloat(val, 64)
		case "alertdrop":
			p.AlertDropRate, err = strconv.ParseFloat(val, 64)
		case "dropacts":
			p.DropACTs, err = strconv.Atoi(val)
		case "alertdelay":
			p.AlertDelayACTs, err = strconv.Atoi(val)
		case "alertdup":
			p.AlertDupRate, err = strconv.ParseFloat(val, 64)
		case "rfmdrop":
			p.RFMDropRate, err = strconv.ParseFloat(val, 64)
		case "weakrows":
			p.WeakRowRate, err = strconv.ParseFloat(val, 64)
		case "weakfactor":
			p.WeakRowFactor, err = strconv.ParseFloat(val, 64)
		case "start-ms", "end-ms":
			var ms float64
			ms, err = strconv.ParseFloat(val, 64)
			if err == nil {
				t := dram.Time(ms * float64(dram.Millisecond))
				if key == "start-ms" {
					p.Start = t
				} else {
					p.End = t
				}
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown key %q (known: seed, bitflip, alertdrop, dropacts, alertdelay, alertdup, rfmdrop, weakrows, weakfactor, start-ms, end-ms)", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value for %q: %v", key, err)
		}
	}
	if p.WeakRowRate > 0 && p.WeakRowFactor == 0 {
		p.WeakRowFactor = 0.5
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Kind classifies an injected fault.
type Kind int

const (
	BitFlip Kind = iota
	AlertDrop
	AlertDelay
	AlertDup
	RFMDrop
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bitflip"
	case AlertDrop:
		return "alert-drop"
	case AlertDelay:
		return "alert-delay"
	case AlertDup:
		return "alert-dup"
	case RFMDrop:
		return "rfm-drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event records one injected fault.
type Event struct {
	Kind   Kind
	At     dram.Time
	Stream uint64 // the wrapped instance that injected it
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v@%v stream=%d", e.Kind, e.At, e.Stream)
	}
	return fmt.Sprintf("%v@%v stream=%d %s", e.Kind, e.At, e.Stream, e.Detail)
}

// logCap bounds the retained per-event detail; totals keep counting past
// it.
const logCap = 512

// Log aggregates the faults injected by every wrapper sharing it. It is
// not safe for concurrent use: share one Log per single-threaded
// simulation run (the experiment engine gives each job its own Log and
// folds them together afterwards with Merge, in job-submission order).
type Log struct {
	events []Event
	counts [numKinds]int64
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

func (l *Log) add(e Event) {
	if l == nil {
		return
	}
	l.counts[e.Kind]++
	if len(l.events) < logCap {
		l.events = append(l.events, e)
	}
}

// Events returns the retained events (at most the first 512) in injection
// order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Total returns the number of faults injected across all kinds.
func (l *Log) Total() int64 {
	if l == nil {
		return 0
	}
	var t int64
	for _, c := range l.counts {
		t += c
	}
	return t
}

// Count returns the number of faults of one kind.
func (l *Log) Count(k Kind) int64 {
	if l == nil || k < 0 || k >= numKinds {
		return 0
	}
	return l.counts[k]
}

// Merge folds other into l: counts add in full, and other's retained
// events append in order until l's retention cap. Because both the
// per-run cap and the per-job caps are prefix truncations, merging
// per-job logs in submission order yields byte-identical contents to one
// shared log written by a sequential run.
func (l *Log) Merge(other *Log) {
	if l == nil || other == nil {
		return
	}
	for k, c := range other.counts {
		l.counts[k] += c
	}
	if room := logCap - len(l.events); room > 0 {
		ev := other.events
		if len(ev) > room {
			ev = ev[:room]
		}
		l.events = append(l.events, ev...)
	}
}

// Summary renders "kind=count" pairs for the kinds that fired, sorted by
// name ("none" when nothing fired).
func (l *Log) Summary() string {
	if l.Total() == 0 {
		return "none"
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if l.counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%v=%d", k, l.counts[k]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Wrap interposes plan between a driver and mitigator m. When the plan
// enables no mitigator-side fault, m itself is returned — the wrapped and
// unwrapped configurations are then trivially bit-identical. stream
// distinguishes instances (e.g. the sub-channel index) so each wrapper
// draws an independent deterministic RNG stream; log may be nil.
func Wrap(plan Plan, m track.Mitigator, stream uint64, log *Log) track.Mitigator {
	if !plan.wrapsMitigator() {
		return m
	}
	if plan.DropACTs == 0 {
		plan.DropACTs = 256
	}
	si, _ := m.(track.StateInjector)
	return &wrapped{
		m:      m,
		plan:   plan,
		si:     si,
		rng:    stats.NewRNG(mix(plan.Seed, stream)),
		log:    log,
		stream: stream,
	}
}

// wrapped is the fault-injecting Mitigator decorator.
type wrapped struct {
	m      track.Mitigator
	plan   Plan
	si     track.StateInjector
	rng    *stats.RNG
	log    *Log
	stream uint64

	now      dram.Time // last simulated time observed on any callback
	asserted bool      // an ALERT assertion has been classified
	maskACTs int       // activations the current assertion stays hidden
	dropped  bool      // the current mask came from a drop (re-arm after)
	forced   bool      // spurious ALERT in force
}

var _ track.Mitigator = (*wrapped)(nil)

// Name implements track.Mitigator; the underlying name is preserved so
// reports stay comparable across fault campaigns.
func (w *wrapped) Name() string { return w.m.Name() }

// Unwrap returns the decorated mitigator (for tests and tools).
func (w *wrapped) Unwrap() track.Mitigator { return w.m }

// OnActivate implements track.Mitigator. Per-activation faults (bit
// flips, spurious ALERTs) are decided before the activation reaches the
// tracker; mask countdowns for dropped/delayed ALERTs advance here.
func (w *wrapped) OnActivate(bank, row int, now dram.Time) {
	w.now = now
	if w.plan.active(now) {
		if w.plan.BitFlipRate > 0 && w.si != nil && w.rng.Float64() < w.plan.BitFlipRate {
			w.log.add(Event{BitFlip, now, w.stream, w.si.InjectStateFault(w.rng)})
		}
		if w.plan.AlertDupRate > 0 && !w.forced && w.rng.Float64() < w.plan.AlertDupRate {
			w.forced = true
			w.log.add(Event{AlertDup, now, w.stream, ""})
		}
	}
	w.m.OnActivate(bank, row, now)
	if w.maskACTs > 0 {
		w.maskACTs--
		if w.maskACTs == 0 && w.dropped {
			// The dropped pulse expired: the persistent want state is
			// re-evaluated as a fresh assertion on the next poll.
			w.asserted = false
			w.dropped = false
		}
	}
}

// WantsALERT implements track.Mitigator. Each new underlying assertion is
// classified exactly once: dropped (masked for DropACTs activations, then
// re-raised), delayed (masked for AlertDelayACTs activations), or passed
// through. Spurious assertions from AlertDupRate short-circuit to true.
func (w *wrapped) WantsALERT() bool {
	if w.forced {
		return true
	}
	if !w.m.WantsALERT() {
		w.asserted = false
		w.maskACTs = 0
		w.dropped = false
		return false
	}
	if !w.asserted {
		w.asserted = true
		switch {
		case !w.plan.active(w.now):
			// Outside the injection window assertions pass untouched.
		case w.plan.AlertDropRate > 0 && w.rng.Float64() < w.plan.AlertDropRate:
			w.maskACTs = w.plan.DropACTs
			w.dropped = true
			w.log.add(Event{AlertDrop, w.now, w.stream, fmt.Sprintf("masked for %d ACTs", w.maskACTs)})
		case w.plan.AlertDelayACTs > 0:
			w.maskACTs = w.plan.AlertDelayACTs
			w.log.add(Event{AlertDelay, w.now, w.stream, fmt.Sprintf("delayed %d ACTs", w.maskACTs)})
		}
	}
	return w.maskACTs == 0
}

// OnREF implements track.Mitigator (refresh is never suppressed: demand
// refresh failures are outside the threat model).
func (w *wrapped) OnREF(refIndex int, now dram.Time) {
	w.now = now
	w.m.OnREF(refIndex, now)
}

// OnRFM implements track.Mitigator, possibly swallowing the opportunity.
func (w *wrapped) OnRFM(bank int, now dram.Time) {
	w.now = now
	if w.plan.RFMDropRate > 0 && w.plan.active(now) && w.rng.Float64() < w.plan.RFMDropRate {
		w.log.add(Event{RFMDrop, now, w.stream, fmt.Sprintf("bank=%d", bank)})
		return
	}
	w.m.OnRFM(bank, now)
}

// ServiceALERT implements track.Mitigator. Servicing clears any spurious
// assertion; real service always reaches the tracker.
func (w *wrapped) ServiceALERT(now dram.Time) {
	w.now = now
	w.forced = false
	w.m.ServiceALERT(now)
}

// WeakRowModel deterministically assigns a depressed Rowhammer threshold
// to a fraction of rows ("weak rows": cells whose retention/disturbance
// margin sits in the tail of the process distribution). Row weakness is a
// pure hash of (Seed, row), so every component of a run agrees on which
// rows are weak without shared state.
type WeakRowModel struct {
	Rate    float64 // fraction of weak rows
	Factor  float64 // threshold multiplier in (0,1]
	Seed    uint64
	BaseTRH int // nominal threshold for normal rows
}

// WeakRows builds the model for a base threshold, or nil when the plan
// declares no weak rows.
func (p Plan) WeakRows(baseTRH int) *WeakRowModel {
	if p.WeakRowRate <= 0 {
		return nil
	}
	f := p.WeakRowFactor
	if f <= 0 || f > 1 {
		f = 0.5
	}
	return &WeakRowModel{Rate: p.WeakRowRate, Factor: f, Seed: p.Seed, BaseTRH: baseTRH}
}

// IsWeak reports whether row is a weak row.
func (m *WeakRowModel) IsWeak(row int) bool {
	if m == nil {
		return false
	}
	// Map the hash to [0,1) the same way stats.RNG.Float64 does.
	u := float64(mix(m.Seed^0x57454b52 /* "WEKR" */, uint64(row))>>11) / float64(1<<53)
	return u < m.Rate
}

// ThresholdOf returns the row's effective threshold: BaseTRH, depressed
// by Factor for weak rows (never below 1).
func (m *WeakRowModel) ThresholdOf(row int) int {
	if !m.IsWeak(row) {
		return m.BaseTRH
	}
	t := int(float64(m.BaseTRH) * m.Factor)
	if t < 1 {
		t = 1
	}
	return t
}

// mix folds a stream id into a seed with splitmix64 so distinct streams
// yield decorrelated RNGs.
func mix(seed, stream uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
