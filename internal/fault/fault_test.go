package fault

import (
	"fmt"
	"reflect"
	"testing"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// fakeMitigator is a minimal tracker for exercising the wrapper: it wants
// an ALERT whenever its pending count is positive, raises one pending unit
// every alertEvery activations, and clears one on service. It implements
// StateInjector by counting calls.
type fakeMitigator struct {
	alertEvery int
	acts       int
	pending    int
	rfms       int
	services   int
	injects    int
}

func (f *fakeMitigator) Name() string { return "fake" }
func (f *fakeMitigator) OnActivate(bank, row int, now dram.Time) {
	f.acts++
	if f.alertEvery > 0 && f.acts%f.alertEvery == 0 {
		f.pending++
	}
}
func (f *fakeMitigator) WantsALERT() bool              { return f.pending > 0 }
func (f *fakeMitigator) OnREF(i int, now dram.Time)    {}
func (f *fakeMitigator) OnRFM(bank int, now dram.Time) { f.rfms++ }
func (f *fakeMitigator) ServiceALERT(now dram.Time) {
	f.services++
	if f.pending > 0 {
		f.pending--
	}
}
func (f *fakeMitigator) InjectStateFault(rng *stats.RNG) string {
	f.injects++
	return fmt.Sprintf("fake inject %d", f.injects)
}

func TestParseRoundTrip(t *testing.T) {
	in := "seed=7,bitflip=1e-05,alertdrop=0.2,dropacts=64,alertdelay=32,alertdup=0.01,rfmdrop=0.5,weakrows=0.001,weakfactor=0.25,start-ms=1,end-ms=5"
	p, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 7 || p.BitFlipRate != 1e-5 || p.AlertDropRate != 0.2 ||
		p.DropACTs != 64 || p.AlertDelayACTs != 32 || p.AlertDupRate != 0.01 ||
		p.RFMDropRate != 0.5 || p.WeakRowRate != 0.001 || p.WeakRowFactor != 0.25 {
		t.Fatalf("fields wrong: %+v", p)
	}
	if p.Start != dram.Millisecond || p.End != 5*dram.Millisecond {
		t.Fatalf("window wrong: start=%v end=%v", p.Start, p.End)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", p.String(), err)
	}
	if p2 != p {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, p2)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	p, err := Parse("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty string: plan=%+v err=%v", p, err)
	}
	for _, bad := range []string{
		"nosuchkey=1",
		"bitflip",                   // not key=value
		"bitflip=x",                 // bad float
		"bitflip=1.5",               // rate out of range
		"alertdelay=-3",             // negative
		"weakrows=0.1,weakfactor=2", // factor out of range
		"start-ms=5,end-ms=1",       // inverted window
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error, got nil", bad)
		}
	}
}

func TestWrapEmptyPlanReturnsSameMitigator(t *testing.T) {
	m := &fakeMitigator{alertEvery: 10}
	for _, p := range []Plan{{}, {Seed: 42}, {WeakRowRate: 0.5, WeakRowFactor: 0.5}} {
		if got := Wrap(p, m, 0, NewLog()); got != track.Mitigator(m) {
			t.Fatalf("Wrap with plan %+v: want the mitigator unchanged, got %T", p, got)
		}
	}
}

// drive runs a fixed activation/poll/service/RFM schedule against a
// wrapped mitigator and returns the fault log plus the count of ALERTs the
// driver observed and serviced.
func drive(t *testing.T, plan Plan, stream uint64, acts int) (*Log, int, *fakeMitigator) {
	t.Helper()
	fake := &fakeMitigator{alertEvery: 50}
	log := NewLog()
	m := Wrap(plan, fake, stream, log)
	if m == track.Mitigator(fake) {
		t.Fatal("plan should have wrapped the mitigator")
	}
	serviced := 0
	for i := 0; i < acts; i++ {
		now := dram.Time(i) * 45 * dram.Nanosecond
		m.OnActivate(i%4, i%1024, now)
		if m.WantsALERT() {
			m.ServiceALERT(now)
			serviced++
		}
		if i%97 == 0 {
			m.OnRFM(i%4, now)
		}
		if i%200 == 0 {
			m.OnREF(i/200, now)
		}
	}
	return log, serviced, fake
}

func TestFaultSequenceDeterminism(t *testing.T) {
	plan := Plan{
		Seed:           123,
		BitFlipRate:    0.01,
		AlertDropRate:  0.5,
		DropACTs:       32,
		AlertDupRate:   0.005,
		RFMDropRate:    0.3,
		AlertDelayACTs: 4,
	}
	logA, servicedA, _ := drive(t, plan, 3, 5000)
	logB, servicedB, _ := drive(t, plan, 3, 5000)
	if !reflect.DeepEqual(logA.Events(), logB.Events()) {
		t.Fatal("same plan+seed+stream: event sequences differ")
	}
	if servicedA != servicedB {
		t.Fatalf("same plan: serviced %d vs %d", servicedA, servicedB)
	}
	if logA.Total() == 0 {
		t.Fatal("plan injected nothing")
	}

	logC, _, _ := drive(t, plan, 4, 5000)
	if reflect.DeepEqual(logA.Events(), logC.Events()) {
		t.Fatal("different streams produced identical fault sequences")
	}
	plan2 := plan
	plan2.Seed = 124
	logD, _, _ := drive(t, plan2, 3, 5000)
	if reflect.DeepEqual(logA.Events(), logD.Events()) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestAlertDropMasksAndRearms(t *testing.T) {
	fake := &fakeMitigator{}
	m := Wrap(Plan{Seed: 1, AlertDropRate: 1, DropACTs: 3}, fake, 0, nil)
	fake.pending = 1 // device wants an ALERT
	if m.WantsALERT() {
		t.Fatal("assertion with drop rate 1 should be masked")
	}
	// The mask expires after DropACTs activations, then the persistent
	// want state is re-evaluated (and dropped again, rate is 1).
	for i := 0; i < 3; i++ {
		if m.WantsALERT() {
			t.Fatalf("ACT %d: still masked", i)
		}
		m.OnActivate(0, 0, 0)
	}
	if m.WantsALERT() {
		t.Fatal("re-evaluated assertion should be dropped again at rate 1")
	}
}

func TestAlertDelay(t *testing.T) {
	fake := &fakeMitigator{}
	m := Wrap(Plan{Seed: 1, AlertDelayACTs: 2}, fake, 0, nil)
	fake.pending = 1
	if m.WantsALERT() {
		t.Fatal("assertion should be delayed")
	}
	m.OnActivate(0, 0, 0)
	if m.WantsALERT() {
		t.Fatal("assertion should still be delayed after 1 ACT")
	}
	m.OnActivate(0, 0, 0)
	if !m.WantsALERT() {
		t.Fatal("assertion should be visible after the delay expires")
	}
	m.ServiceALERT(0)
	if fake.services != 1 {
		t.Fatalf("service did not reach the tracker: %d", fake.services)
	}
	if m.WantsALERT() {
		t.Fatal("want should clear once the tracker is satisfied")
	}
}

func TestAlertDupForcedUntilServiced(t *testing.T) {
	fake := &fakeMitigator{}
	log := NewLog()
	m := Wrap(Plan{Seed: 1, AlertDupRate: 1}, fake, 0, log)
	m.OnActivate(0, 0, 0)
	if !m.WantsALERT() {
		t.Fatal("dup rate 1: expected a spurious ALERT")
	}
	m.ServiceALERT(0)
	if fake.services != 1 {
		t.Fatal("spurious ALERT service must still reach the tracker")
	}
	if m.WantsALERT() {
		t.Fatal("servicing should clear the spurious assertion")
	}
	if log.Count(AlertDup) != 1 {
		t.Fatalf("want 1 alert-dup event, got %d", log.Count(AlertDup))
	}
}

func TestRFMDropSuppressesOpportunity(t *testing.T) {
	fake := &fakeMitigator{}
	log := NewLog()
	m := Wrap(Plan{Seed: 1, RFMDropRate: 1}, fake, 0, log)
	for i := 0; i < 5; i++ {
		m.OnRFM(i, dram.Time(i))
	}
	if fake.rfms != 0 {
		t.Fatalf("all RFMs should be swallowed, tracker saw %d", fake.rfms)
	}
	if log.Count(RFMDrop) != 5 {
		t.Fatalf("want 5 rfm-drop events, got %d", log.Count(RFMDrop))
	}
}

func TestWindowGating(t *testing.T) {
	plan := Plan{Seed: 1, RFMDropRate: 1, Start: 10 * dram.Nanosecond, End: 20 * dram.Nanosecond}
	fake := &fakeMitigator{}
	m := Wrap(plan, fake, 0, nil)
	m.OnRFM(0, 5*dram.Nanosecond)  // before window: passes
	m.OnRFM(0, 15*dram.Nanosecond) // inside: dropped
	m.OnRFM(0, 25*dram.Nanosecond) // after: passes
	if fake.rfms != 2 {
		t.Fatalf("want 2 RFMs delivered, got %d", fake.rfms)
	}
}

func TestBitFlipUsesStateInjector(t *testing.T) {
	fake := &fakeMitigator{}
	log := NewLog()
	m := Wrap(Plan{Seed: 9, BitFlipRate: 1}, fake, 0, log)
	for i := 0; i < 10; i++ {
		m.OnActivate(0, i, dram.Time(i))
	}
	if fake.injects != 10 {
		t.Fatalf("want 10 injections, got %d", fake.injects)
	}
	if log.Count(BitFlip) != 10 {
		t.Fatalf("want 10 bitflip events, got %d", log.Count(BitFlip))
	}
	if ev := log.Events(); ev[0].Detail != "fake inject 1" {
		t.Fatalf("event detail not threaded through: %q", ev[0].Detail)
	}
}

func TestLogCapAndSummary(t *testing.T) {
	log := NewLog()
	for i := 0; i < logCap+100; i++ {
		log.add(Event{Kind: BitFlip, At: dram.Time(i)})
	}
	log.add(Event{Kind: RFMDrop})
	if got := len(log.Events()); got != logCap {
		t.Fatalf("retained %d events, want cap %d", got, logCap)
	}
	if log.Count(BitFlip) != logCap+100 || log.Total() != logCap+101 {
		t.Fatalf("counts wrong: bitflip=%d total=%d", log.Count(BitFlip), log.Total())
	}
	if s := log.Summary(); s != "bitflip=612 rfm-drop=1" {
		t.Fatalf("summary: %q", s)
	}
	if s := NewLog().Summary(); s != "none" {
		t.Fatalf("empty summary: %q", s)
	}
}

func TestWeakRowModel(t *testing.T) {
	plan := Plan{Seed: 5, WeakRowRate: 0.01, WeakRowFactor: 0.5}
	m := plan.WeakRows(1000)
	if m == nil {
		t.Fatal("want a model")
	}
	weak := 0
	const rows = 100000
	for r := 0; r < rows; r++ {
		if m.IsWeak(r) {
			weak++
			if got := m.ThresholdOf(r); got != 500 {
				t.Fatalf("weak row %d threshold %d, want 500", r, got)
			}
		} else if got := m.ThresholdOf(r); got != 1000 {
			t.Fatalf("normal row %d threshold %d, want 1000", r, got)
		}
	}
	// 1% of 100k rows, binomial stddev ~31: accept a generous band.
	if weak < 800 || weak > 1200 {
		t.Fatalf("weak fraction off: %d/%d", weak, rows)
	}
	// Deterministic: a second model from the same plan agrees everywhere.
	m2 := plan.WeakRows(1000)
	for r := 0; r < 1000; r++ {
		if m.IsWeak(r) != m2.IsWeak(r) {
			t.Fatalf("row %d weakness not deterministic", r)
		}
	}
	if (Plan{}).WeakRows(1000) != nil {
		t.Fatal("no weak rows declared: want nil model")
	}
}
