package experiments

import (
	"fmt"

	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/telemetry"
	"mirza/internal/tenant"
	"mirza/internal/track"
	"mirza/internal/trace"
)

// intervmPolicies is the default mitigation grid of the inter-VM study:
// the unprotected reference (which shows the cross-VM escape channel the
// attribution measures), the paper's two reference trackers, the
// strongest external baseline, and MIRZA itself.
var intervmPolicies = []string{"none", "prac", "mint-rfm", "graphene", "mirza"}

// intervmFill is the modeled host occupancy: a long-running multi-VM
// machine is mostly allocated, which is what gives the attacker's
// superblock real neighbours to disturb.
const intervmFill = 0.75

// InterVM evaluates the multi-tenant scenario of Options.Tenants (victim
// VMs running workloads next to an attacker VM hammering its own
// allocation) across the mitigation grid. Per policy it reports each
// tenant's slowdown against running alone on the same cores, the
// attack-side activity, and the security outcome with every flip episode
// attributed to the tenant owning the flipped row — cross-VM escapes
// versus the attacker's self-flips.
func (r *Runner) InterVM() (*Table, error) {
	specStr := r.opts.Tenants
	if specStr == "" {
		specStr = tenant.DefaultSpec
	}
	spec, err := tenant.Parse(specStr)
	if err != nil {
		return nil, err
	}
	if spec.Attacker() < 0 {
		return nil, fmt.Errorf("intervm: tenant spec %q has no attacker (add attack=%s or attack=%s)",
			specStr, tenant.AttackEdge, tenant.AttackDouble)
	}
	policies := r.opts.Mitigations
	if len(policies) == 0 {
		policies = intervmPolicies
	}
	mshr, err := spec.MLPFor()
	if err != nil {
		return nil, err
	}
	const trhd = 1000

	// Stage 1: per-tenant solo references — each VM alone on its cores,
	// unprotected, same generators and address space as the shared run.
	var solos []job[*timingResult]
	for ti := range spec.Tenants {
		ti := ti
		solos = append(solos, job[*timingResult]{
			id: fmt.Sprintf("intervm/solo/%d-%s", ti, spec.Tenants[ti].Name),
			run: func(x *Exec) (*timingResult, error) {
				x.r.opts.Logf("intervm solo %s", spec.Tenants[ti].Name)
				gens, asids, err := spec.SoloGenerators(ti, x.r.opts.Seed)
				if err != nil {
					return nil, err
				}
				return x.runTenantTiming(gens, asids, mshr, dram.DDR5(), 0, nil)
			},
		})
	}
	soloRes, err := runJobs(r, solos)
	if err != nil {
		return nil, err
	}

	// The physical placement is policy-independent and read-only during
	// the security runs: build it once, share it across jobs.
	layout, err := tenant.BuildLayout(spec, dram.Default().CapacityBytes(), intervmFill)
	if err != nil {
		return nil, err
	}

	// Stage 2: one job per policy — the shared run (all VMs together
	// under the mitigation) plus the attributed security run.
	type cell struct {
		sds   []float64 // per-tenant slowdown vs solo
		stats mem.Stats
		sec   *tenant.SecurityResult
		bound int
	}
	layoutOf := spec.CoreLayout()
	var js []job[cell]
	for pi, policy := range policies {
		pi, policy := pi, policy
		js = append(js, job[cell]{
			id: fmt.Sprintf("intervm/%s", policy),
			run: func(x *Exec) (cell, error) {
				x.r.opts.Logf("intervm %s under %s", spec, policy)
				b, err := x.buildPolicy(policy, trhd, nil)
				if err != nil {
					return cell{}, err
				}
				gens, asids, err := spec.Generators(x.r.opts.Seed)
				if err != nil {
					return cell{}, err
				}
				res, err := x.runTenantTiming(gens, asids, mshr, b.Timing(), b.RFMBAT(), b.Factory())
				if err != nil {
					return cell{}, err
				}
				c := cell{stats: res.Stats, bound: b.Bound().TRHD}
				for ti := range spec.Tenants {
					c.sds = append(c.sds, tenantSlowdown(layoutOf, ti, soloRes[ti].IPCs, res.IPCs))
				}

				factory := b.Factory()
				c.sec, err = layout.RunSecurity(tenant.SecurityConfig{
					Geometry: dram.Default(),
					Timing:   b.Timing(),
					Mapping:  dram.StridedR2SA,
					TRHD:     trhd,
					Windows:  x.r.opts.ReplayWindows,
					RFMEvery: b.RFMBAT(),
					NewMitigator: func(sink track.Sink) track.Mitigator {
						return x.wrapMit(factory(0, sink), uint64(100+pi))
					},
				})
				if err != nil {
					return cell{}, err
				}
				return c, nil
			},
		})
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "intervm",
		Title: fmt.Sprintf("Inter-VM scenario %s at TRHD=%d (slowdown vs each VM alone; flips attributed to the victim row's owner)",
			spec, trhd),
	}
	t.Columns = []string{"Policy"}
	for _, name := range spec.Names() {
		t.Columns = append(t.Columns, "SD "+name)
	}
	t.Columns = append(t.Columns, "ALERTs", "Mitigations", "xVM flips", "self flips", "maxDS", "Bound")
	for pi, policy := range policies {
		c := cells[pi]
		row := []string{policy}
		for _, sd := range c.sds {
			row = append(row, f2(sd)+"%")
		}
		row = append(row, d(c.stats.Alerts), d(c.stats.Mitigations),
			d(int64(c.sec.CrossFlips)), d(int64(c.sec.SelfFlips)),
			d(int64(c.sec.Sim.MaxDoubleSided)), d(int64(c.bound)))
		t.AddRow(row...)
	}
	left, right := layout.Neighbours()
	t.Notes = append(t.Notes,
		fmt.Sprintf("attack pattern %s on the attacker's superblock %d of a %.0f%%-occupied host (physical neighbours: %s below, %s above)",
			cells[0].sec.Pattern, layout.AttackedBlock, 100*intervmFill, left, right),
		"SD columns compare each VM's per-core IPC against the same VM running alone (unprotected) on its cores",
		"xVM flips landed in memory the attacker does not own (victim VMs, background VMs, free); self flips in its own allocation")
	return t, nil
}

// tenantSlowdown is the per-tenant weighted slowdown: the mean over the
// tenant's cores of shared-run IPC over solo IPC, as a percent loss.
func tenantSlowdown(layout []int, ti int, solo, shared []float64) float64 {
	var ws float64
	n := 0
	si := 0
	for core, owner := range layout {
		if owner != ti {
			continue
		}
		if si < len(solo) && solo[si] > 0 && core < len(shared) {
			ws += shared[core] / solo[si]
			n++
		}
		si++
	}
	if n == 0 {
		return 0
	}
	return 100 * (1 - ws/float64(n))
}

// runTenantTiming is runTiming for an explicit generator/ASID layout: the
// shared multi-VM system (or one VM alone) instead of a named workload's
// rate-mode copies.
func (x *Exec) runTenantTiming(gens []trace.Generator, asids []int, mshr int,
	timing dram.Timing, bat int,
	factory func(sub int, sink track.Sink) track.Mitigator) (*timingResult, error) {
	r := x.r
	if factory != nil {
		inner := factory
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return x.wrapMit(inner(sub, sink), uint64(sub))
		}
	}
	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Cores: len(gens),
		Core:  cpu.CoreConfig{MSHR: mshr},
		ASIDs: asids,
		Mem: mem.Config{
			Timing:       timing,
			Mapping:      dram.StridedR2SA,
			RFMBAT:       bat,
			NewMitigator: factory,
			Telemetry:    r.opts.Telemetry,
		},
	}, gens)
	if err != nil {
		return nil, err
	}
	sys.Watchdog = r.watchdog()
	aud := r.attachAudit(sys)
	if err := sys.RunCtx(x.context(), r.opts.Warmup); err != nil {
		return nil, fmt.Errorf("intervm warmup: %w", err)
	}
	sys.Snapshot()
	if err := sys.RunCtx(x.context(), r.opts.Warmup+r.opts.Measure); err != nil {
		return nil, fmt.Errorf("intervm measure: %w", err)
	}
	sys.FlushTelemetry(telemetry.L("layer", "intervm"))
	if err := aud.Finish(sys.Channel); err != nil {
		return nil, fmt.Errorf("intervm audit: %w", err)
	}
	return &timingResult{IPCs: sys.IPCs(), Stats: sys.MemStats(), Window: sys.Window()}, nil
}
