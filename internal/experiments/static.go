package experiments

import (
	"fmt"

	"mirza/internal/areamodel"
	"mirza/internal/attack"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/energy"
	"mirza/internal/security"
)

// Table1 reproduces Table I: the DDR5 timing parameters and the PRAC
// overlay.
func (r *Runner) Table1() (*Table, error) {
	base, prac := dram.DDR5(), dram.PRAC()
	t := &Table{
		ID:      "table1",
		Title:   "DRAM timings (DDR5 6000AN) with PRAC overlay",
		Columns: []string{"Parameter", "Description", "Value", "PRAC"},
	}
	row := func(name, desc string, a, b dram.Time) {
		pracCell := ""
		if a != b {
			pracCell = b.String()
		}
		t.AddRow(name, desc, a.String(), pracCell)
	}
	row("tRCD", "time for performing ACT", base.TRCD, prac.TRCD)
	row("tRP", "time to precharge an open row", base.TRP, prac.TRP)
	row("tRAS", "time between activate and precharge", base.TRAS, prac.TRAS)
	row("tRC", "time between successive ACTs", base.TRC, prac.TRC)
	row("tREFW", "refresh period", base.TREFW, prac.TREFW)
	row("tREFI", "time between successive REF cmds", base.TREFI, prac.TREFI)
	row("tRFC", "execution time for REF command", base.TRFC, prac.TRFC)
	t.Notes = append(t.Notes,
		fmt.Sprintf("ALERT: %v prologue + %v stall = %v total", base.ABOPrologue, base.ABOStall, base.ALERTLatency()),
		fmt.Sprintf("bounded-refresh mitigation: %v per aggressor row", base.TMitigation))
	return t, nil
}

// Table2 reproduces Table II: the TRHD tolerated by proactive MINT and
// Mithril as the mitigation rate varies, with refresh cannibalization.
func (r *Runner) Table2() (*Table, error) {
	tm := dram.DDR5()
	mint := security.DefaultMINTModel()
	mith := security.DefaultMithrilModel()
	t := &Table{
		ID:    "table2",
		Title: "TRHD tolerated by MINT and Mithril vs mitigation rate",
		Columns: []string{"Mitigation Rate", "Refresh Cannibalization",
			"Window W", "MINT (1-entry/bank)", "Mithril (2K-entry/bank)"},
	}
	for _, refs := range []int{1, 2, 4, 8} {
		w := security.WindowPerREFs(tm, refs)
		t.AddRow(
			fmt.Sprintf("1 aggressor per %d REF", refs),
			fmt.Sprintf("%.1f%%", 100*energy.Cannibalization(tm, float64(refs))),
			d(int64(w)),
			d(int64(mint.ToleratedTRHD(w))),
			d(int64(mith.ToleratedTRHD(w))),
		)
	}
	t.Notes = append(t.Notes,
		"paper: MINT 1.5K/2.9K/5.8K/11.6K; Mithril 1K/1.7K/2.9K/5.4K; cannibalization 68/34/17/8.5%")
	return t, nil
}

// Table7 reproduces Table VII: the MIRZA configurations per target TRHD,
// with the SRAM budget and the analytic safety bound.
func (r *Runner) Table7() (*Table, error) {
	model := security.DefaultMINTModel()
	t := &Table{
		ID:    "table7",
		Title: "MIRZA configurations for target TRHD",
		Columns: []string{"TRHD", "FTH", "MINT-W", "Regions/Bank",
			"SRAM/Bank (B)", "SafeTRHD (model)"},
	}
	for _, trhd := range []int{2000, 1000, 500} {
		cfg, err := core.ForTRHD(trhd)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(int64(trhd)), d(int64(cfg.FTH)), d(int64(cfg.MINTWindow)),
			d(int64(cfg.Regions)), d(int64(cfg.SRAMBytesPerBank())),
			d(int64(security.SafeTRHD(cfg, model))))
	}
	t.Notes = append(t.Notes, "paper SRAM/bank: 116/196/340 bytes")
	return t, nil
}

// Table10 reproduces Table X: relative area of MIRZA vs PRAC per subarray.
func (r *Runner) Table10() (*Table, error) {
	t := &Table{
		ID:      "table10",
		Title:   "Relative area of MIRZA and PRAC (per subarray)",
		Columns: []string{"TRHD", "MIRZA (SRAM bits/SA)", "PRAC (DRAM bits/SA)", "PRAC/MIRZA area"},
	}
	model := security.DefaultMINTModel()
	g := dram.Default()
	cases := []struct {
		trhd         int
		regionsPerSA int
		window       int
	}{
		{1000, 1, 12},
		{500, 2, 8},
		{250, 4, 4},
	}
	for _, c := range cases {
		fth := security.FTHForTRHD(c.trhd, c.window, core.DefaultQueueSize, core.DefaultQTH, model)
		// Use the paper's preset FTH where one exists (it fixes the
		// counter width the paper reports).
		if cfg, err := core.ForTRHD(c.trhd); err == nil {
			fth = cfg.FTH
		}
		bits := areamodel.CounterBits(fth+1) * c.regionsPerSA
		cmp := areamodel.CompareSubarray(c.trhd, bits, g.SubarrayRows)
		t.AddRow(d(int64(c.trhd)),
			fmt.Sprintf("%d-bit SRAM", cmp.MIRZASRAMBits),
			fmt.Sprintf("%d-bit DRAM", cmp.PRACDRAMBits),
			fmt.Sprintf("%.1fx", cmp.AreaRatio))
	}
	mirzaSRAM, err := sramBytesPerBank(1000)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: 45x / 22.5x / 11.2x more area for PRAC",
		fmt.Sprintf("Mithril comparison: 2K entries x 28b = %d bytes/bank vs MIRZA %d bytes/bank",
			areamodel.MithrilBytesPerBank(2048), mirzaSRAM))
	return t, nil
}

// sramBytesPerBank returns MIRZA's SRAM budget for a preset TRHD,
// propagating (rather than panicking on) an unknown threshold so the
// hardened runner's panic recovery stays a backstop, not the handler.
func sramBytesPerBank(trhd int) (int, error) {
	cfg, err := core.ForTRHD(trhd)
	if err != nil {
		return 0, fmt.Errorf("experiments: SRAM budget for TRHD=%d: %w", trhd, err)
	}
	return cfg.SRAMBytesPerBank(), nil
}

// Table11 reproduces Table XI (and the Figure 12 kernel): relative ACT
// throughput and slowdown of a benign application under the RCT-priming
// performance attack.
func (r *Runner) Table11() (*Table, error) {
	m := attack.NewPerfAttackModel(dram.DDR5())
	t := &Table{
		ID:      "table11",
		Title:   "Relative ACT throughput and slowdown under performance attack",
		Columns: []string{"MINT-W", "ACT-Throughput", "Slowdown"},
	}
	for _, w := range []int{16, 12, 8} {
		t.AddRow(d(int64(w)),
			fmt.Sprintf("%.1f%%", 100*m.RelativeThroughput(w)),
			fmt.Sprintf("%.2fx", m.Slowdown(w)))
	}
	t.Notes = append(t.Notes,
		"paper: 63.4%/55.9%/44.5% and 1.6x/1.8x/2.25x",
		fmt.Sprintf("ALERT-saturated bound: %.1fx; RCT priming costs %.2f%% of a tREFW at FTH=1500",
			m.AlertOnlySlowdown(), 100*attack.PrimingFraction(dram.DDR5(), 1500)))
	return t, nil
}

// Table12 reproduces Table XII: storage and mitigation overhead of TRR,
// MINT and MIRZA at the current threshold of 4.8K.
func (r *Runner) Table12() (*Table, error) {
	tm := dram.DDR5()
	mirzaCfg, err := core.ForTRHD(4800)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table12",
		Title:   "Storage and mitigation overhead at TRHD=4.8K",
		Columns: []string{"Tracker", "Storage (per bank)", "Secure Tracking?", "Refresh Cannibalization"},
	}
	t.AddRow("TRR",
		fmt.Sprintf("%d bytes", areamodel.TRRBytesPerBank(28)),
		"No",
		fmt.Sprintf("%.0f%%", 100*energy.Cannibalization(tm, 4)))
	t.AddRow("MINT",
		fmt.Sprintf("%d bytes", areamodel.MINTBytesPerBank(6, 17)),
		"Yes",
		fmt.Sprintf("%.0f%%", 100*energy.Cannibalization(tm, 3)))
	t.AddRow("MIRZA",
		fmt.Sprintf("%d bytes", mirzaCfg.SRAMBytesPerBank()),
		"Yes",
		"0%")
	t.Notes = append(t.Notes,
		"paper: TRR 84B/No/17%, MINT 20B/Yes/23%, MIRZA 72B/Yes/0%",
		"TRR insecurity and MINT/MIRZA security are demonstrated by the attack-simulation tests")
	return t, nil
}

// Fig1c summarizes the headline comparison of Figure 1(c): mitigation rate
// vs MINT and area vs PRAC at TRHD=1K.
func (r *Runner) Fig1c() (*Table, error) {
	t8, err := r.Table8()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig1c",
		Title:   "MIRZA headline comparison (TRHD=1K)",
		Columns: []string{"Metric", "Value", "Paper"},
	}
	// Mitigation reduction is the TRHD=1000 row of Table VIII.
	for _, row := range t8.Rows {
		if row[0] == "1000" {
			t.AddRow("Mitigations vs MINT", row[4], "28.5x fewer")
		}
	}
	cfg, _ := core.ForTRHD(1000)
	bits := areamodel.CounterBits(cfg.FTH + 1)
	cmp := areamodel.CompareSubarray(1000, bits, dram.Default().SubarrayRows)
	t.AddRow("Area vs PRAC", fmt.Sprintf("%.0fx lower", cmp.AreaRatio), "45x lower")
	t.AddRow("SRAM per bank", fmt.Sprintf("%d bytes", cfg.SRAMBytesPerBank()), "196 bytes")
	sp := energy.DefaultSRAMPower()
	t.AddRow("SRAM power", fmt.Sprintf("%.2f%% of chip power", 100*sp.RelativeOverhead()), "~0.25%")
	return t, nil
}
