package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"mirza/internal/jobs"
	"mirza/internal/sim"
)

// Result is the outcome of one hardened experiment run.
type Result struct {
	ID    string
	Table *Table // nil when the experiment failed outright

	// Err is the terminal error (nil on success, including degraded
	// success). Panics are converted to errors; Stack then carries the
	// recovered goroutine's stack trace.
	Err      error
	Panicked bool
	Stack    string

	// Degraded marks a result produced by the reduced-fidelity retry
	// after the full-fidelity attempt failed. Degraded tables carry a
	// "DEGRADED" note and must not be compared against full-fidelity runs.
	Degraded bool

	// Canceled marks a failure observed after the suite context was done:
	// the experiment was cut short (or never started) by cancellation or a
	// deadline rather than failing on its own. Served jobs use it to
	// report "canceled" instead of a generic failure, and cancellation is
	// never retried, so a Canceled result is always attempt 1's.
	Canceled bool

	// Attempts is how many attempts were made (1 or 2).
	Attempts int
	Duration time.Duration

	// Jobs is how many engine jobs the experiment ran; Busy is their
	// summed wall-clock — an estimate of a one-worker (-j 1) run's
	// duration, used to report parallel speedup.
	Jobs int
	Busy time.Duration
}

// Failed reports whether the experiment produced no usable table.
func (r Result) Failed() bool { return r.Err != nil }

// ErrTimeout is wrapped into Result.Err when an engine job exceeds the
// suite's per-job deadline. It aliases jobs.ErrTimeout so errors.Is
// matches at either layer.
var ErrTimeout = jobs.ErrTimeout

// SuiteConfig tunes the hardened runner.
type SuiteConfig struct {
	// Timeout is the wall-clock deadline per engine job (0 = none). It is
	// enforced inside the job pool: a stuck simulation is abandoned and
	// only its job fails, scaling naturally with Options.Parallelism
	// instead of racing one shared per-experiment clock.
	Timeout time.Duration

	// NoRetry disables the reduced-fidelity retry after a failed attempt.
	NoRetry bool

	// Logf receives harness progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Suite runs experiments with panic isolation, per-experiment deadlines
// and graceful degradation. A panicking or timed-out experiment becomes an
// error Result instead of taking the process down; after such a failure
// the shared Runner is discarded (a timed-out attempt's goroutine may
// still be mutating it) and subsequent experiments get a fresh one.
type Suite struct {
	opts   Options
	cfg    SuiteConfig
	runner *Runner
}

// NewSuite builds a hardened runner over opts. The suite deadline is
// plumbed into the job engine as Options.JobTimeout.
func NewSuite(opts Options, cfg SuiteConfig) *Suite {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Timeout > 0 {
		opts.JobTimeout = cfg.Timeout
	}
	return &Suite{opts: opts, cfg: cfg}
}

// Runner returns the current shared Runner, building it on first use.
// After a failed attempt the previous Runner has been discarded, so
// callers must not cache the returned pointer across Run calls.
func (s *Suite) Runner() *Runner {
	if s.runner == nil {
		s.runner = NewRunner(s.opts)
	}
	return s.runner
}

// RunAll looks up and runs each experiment id in order, never panicking
// and never returning early: every id yields exactly one Result. A
// canceled ctx stops running simulations cooperatively; remaining ids
// still yield Results (failing fast with the context's error).
func (s *Suite) RunAll(ctx context.Context, ids []string) []Result {
	out := make([]Result, 0, len(ids))
	for _, id := range ids {
		exp, err := Lookup(id)
		if err != nil {
			out = append(out, Result{ID: id, Err: err, Attempts: 0})
			continue
		}
		out = append(out, s.Run(ctx, exp))
	}
	return out
}

// Run executes one experiment under the harness: the attempt runs in its
// own goroutine with panic recovery and the configured deadline; on
// failure the experiment is retried once at reduced fidelity (halved
// measurement window, halved replay windows) and the result flagged
// Degraded.
func (s *Suite) Run(ctx context.Context, exp Experiment) Result {
	start := time.Now()
	res := Result{ID: exp.ID, Attempts: 1}

	a := s.attempt(ctx, exp, s.Runner())
	res.Table, res.Err, res.Panicked, res.Stack = a.table, a.err, a.panicked, a.stack
	res.Jobs, res.Busy = a.jobs, a.busy
	if res.Err == nil {
		res.Duration = time.Since(start)
		return res
	}

	// The failed attempt may have left the Runner mid-mutation (a
	// timed-out goroutine is still running against it); replace it.
	s.runner = nil
	if ctx.Err() != nil {
		// A canceled suite must not burn time on retries.
		res.Canceled = true
		res.Duration = time.Since(start)
		return res
	}
	s.cfg.Logf("%s failed (%v); %s", exp.ID, res.Err, map[bool]string{true: "no retry", false: "retrying at reduced fidelity"}[s.cfg.NoRetry])
	if s.cfg.NoRetry {
		res.Duration = time.Since(start)
		return res
	}

	res.Attempts = 2
	retry := s.attempt(ctx, exp, NewRunner(s.degradedOptions()))
	res.Jobs += retry.jobs
	res.Busy += retry.busy
	if retry.err != nil {
		// Keep the first attempt's error as primary; note the retry's.
		res.Err = fmt.Errorf("%w (degraded retry also failed: %v)", res.Err, retry.err)
		res.Duration = time.Since(start)
		return res
	}
	firstErr := res.Err
	res.Table, res.Err, res.Panicked, res.Stack = retry.table, nil, false, ""
	res.Degraded = true
	if res.Table != nil {
		res.Table.Notes = append(res.Table.Notes,
			fmt.Sprintf("DEGRADED: full-fidelity attempt failed (%v); rerun at halved fidelity", firstErr))
	}
	res.Duration = time.Since(start)
	return res
}

// degradedOptions halves the expensive fidelity knobs for the retry.
func (s *Suite) degradedOptions() Options {
	o := s.opts
	o.Measure /= 2
	o.Warmup /= 2
	if o.ReplayWindows > 2 {
		o.ReplayWindows = max(2, o.ReplayWindows/2)
	}
	return o
}

type attemptOutcome struct {
	table    *Table
	err      error
	panicked bool
	stack    string
	jobs     int
	busy     time.Duration
}

// attempt runs the experiment once, converting a panic into an error with
// a stack trace. Deadlines are enforced per job inside the engine (see
// SuiteConfig.Timeout); a timed-out job surfaces here as an ordinary
// experiment error wrapping ErrTimeout. The recover backstops panics in
// enumeration/aggregation code — panics inside jobs are already converted
// by the pool.
func (s *Suite) attempt(ctx context.Context, exp Experiment, runner *Runner) (out attemptOutcome) {
	runner.WithContext(ctx)
	j0, b0 := runner.JobStats()
	defer func() {
		if p := recover(); p != nil {
			out = attemptOutcome{
				err:      fmt.Errorf("experiment %s panicked: %v", exp.ID, p),
				panicked: true,
				stack:    string(debug.Stack()),
			}
		}
		j1, b1 := runner.JobStats()
		out.jobs, out.busy = j1-j0, b1-b0
	}()
	t, err := exp.Run(runner)
	if err != nil {
		err = fmt.Errorf("experiment %s: %w", exp.ID, err)
	}
	return attemptOutcome{table: t, err: err}
}

// Summary aggregates a batch of Results.
type Summary struct {
	OK       int
	Degraded int
	Failed   int
	Stalled  int // failures whose cause was a watchdog stall
	Errors   []string
}

// Summarize folds results into a Summary.
func Summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		switch {
		case r.Failed():
			s.Failed++
			var stall *sim.StallError
			if errors.As(r.Err, &stall) {
				s.Stalled++
			}
			s.Errors = append(s.Errors, fmt.Sprintf("%s: %v", r.ID, r.Err))
		case r.Degraded:
			s.Degraded++
		default:
			s.OK++
		}
	}
	return s
}

// Clean reports whether every experiment succeeded at full fidelity.
func (s Summary) Clean() bool { return s.Failed == 0 && s.Degraded == 0 }

// String renders a one-line summary plus one line per failure.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d ok, %d degraded, %d failed", s.OK, s.Degraded, s.Failed)
	if s.Stalled > 0 {
		fmt.Fprintf(&sb, " (%d stalled)", s.Stalled)
	}
	for _, e := range s.Errors {
		fmt.Fprintf(&sb, "\n  FAIL %s", e)
	}
	return sb.String()
}
