// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a typed Table that
// cmd/mirza-bench renders; bench_test.go at the repository root exposes one
// testing.B benchmark per experiment.
//
// Methodology (see DESIGN.md): slowdown experiments run the cycle-level
// full-system simulator (internal/cpu + internal/mem) over a measurement
// window after warmup, with MIRZA's Region Count Table pre-warmed by the
// fast replayer so the short timing window sees steady-state filtering.
// Statistics that need full 32ms refresh windows (filter escape rates,
// ACTs/subarray distributions, ALERT rates, refresh power) come from the
// replayer directly, driving the same track.Mitigator implementations.
package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"mirza/internal/audit"
	"mirza/internal/core"
	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/fault"
	"mirza/internal/jobs"
	"mirza/internal/mem"
	"mirza/internal/replay"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/trace"
	"mirza/internal/track"
)

// Options scales the experiments. The defaults favour fidelity; tests and
// quick runs shrink them.
type Options struct {
	Seed uint64

	// Warmup and Measure bound the timing-simulation windows.
	Warmup  dram.Time
	Measure dram.Time

	// ReplayWindows is how many tREFW refresh windows the replayer covers;
	// the first is warmup, the rest are measured.
	ReplayWindows int

	// CalibrationWindow is the timing-sim horizon used to measure each
	// workload's instruction rate for the replayer's time axis.
	CalibrationWindow dram.Time

	// Workloads restricts the workload set (nil = all 24 of Table IV).
	Workloads []string

	// Mitigations restricts the policy grid of the baseline-comparison
	// experiment to these registered mitigation names (nil = the default
	// set). Names are resolved through the internal/track registry; an
	// unknown name fails the experiment with the registry's descriptive
	// error. Experiments that reproduce a specific paper figure ignore
	// this and keep their published policy mix.
	Mitigations []string

	// Cores is the rate-mode width (default 8).
	Cores int

	// Tenants is the multi-tenant scenario spec of the intervm experiment
	// family (tenant.Parse grammar, e.g. "xz:6+attack=edge:2"). Empty
	// selects tenant.DefaultSpec.
	Tenants string

	// TraceFiles are recorded trace files (internal/tracefile formats)
	// the tracereplay experiment drives through the timing simulator.
	// Empty renders that experiment as an informational no-op table.
	TraceFiles []string

	// Faults declares a fault-injection campaign threaded through every
	// mitigator the experiments build. The zero value injects nothing and
	// leaves all outputs bit-identical to an unfaulted run.
	Faults fault.Plan

	// StallBudget, when positive, arms a watchdog on every timing
	// simulation: if simulated time stops advancing for this much
	// wall-clock time the run aborts with a *sim.StallError diagnostic
	// instead of spinning forever. Each job arms its own watchdog
	// instance, so one stalled simulation never trips another's budget.
	StallBudget time.Duration

	// Parallelism is the worker count of the job engine: every experiment
	// decomposes into independent (workload, timing, mitigator-factory,
	// seed) jobs executed on this many workers, with results gathered in
	// submission order. 0 defaults to runtime.GOMAXPROCS(0), overridable
	// through MIRZA_PARALLELISM; 1 reproduces the strictly sequential
	// engine exactly (see DESIGN.md §9 for the determinism contract).
	Parallelism int

	// JobTimeout, when positive, is the wall-clock deadline per job. A
	// job that exceeds it is abandoned and its experiment fails with a
	// jobs.ErrTimeout-wrapped error.
	JobTimeout time.Duration

	// Audit, when true, attaches the DDR5 protocol auditor
	// (internal/audit) to every simulated channel — baselines, MLP
	// calibration and protected timing runs alike — and fails the
	// enclosing job with the auditor's Violation diagnostics if the
	// command stream breaks a timing invariant or an end-of-run
	// conservation check. Off by default: the auditor shadows every
	// command and costs measurable simulation throughput.
	Audit bool

	// Telemetry, when non-nil, collects run metrics: per-sub-channel
	// memory counters, tracker stats, kernel totals, and the job engine's
	// live gauges. All deterministic metrics are identical for identical
	// (options, seed) regardless of Parallelism — counter folds commute.
	// nil (the default) keeps every hot path telemetry-free and all
	// outputs byte-identical to earlier versions.
	Telemetry *telemetry.Registry

	// Logf receives progress lines. setDefaults installs a no-op when nil,
	// so callers may invoke it unconditionally. It may be called from
	// concurrent jobs and must be safe for concurrent use.
	Logf func(format string, args ...any)
}

// DefaultOptions returns full-fidelity settings, overridable through the
// environment: MIRZA_MEASURE_MS, MIRZA_WARMUP_MS, MIRZA_REPLAY_WINDOWS,
// MIRZA_WORKLOADS (comma-separated).
func DefaultOptions() Options {
	o := Options{
		Seed:              1,
		Warmup:            dram.Millisecond / 2,
		Measure:           3 * dram.Millisecond / 2,
		ReplayWindows:     2,
		CalibrationWindow: dram.Millisecond,
		Cores:             8,
	}
	if v := os.Getenv("MIRZA_MEASURE_MS"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			o.Measure = dram.Time(f * float64(dram.Millisecond))
		}
	}
	if v := os.Getenv("MIRZA_WARMUP_MS"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
			o.Warmup = dram.Time(f * float64(dram.Millisecond))
		}
	}
	if v := os.Getenv("MIRZA_REPLAY_WINDOWS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 2 {
			o.ReplayWindows = n
		}
	}
	if v := os.Getenv("MIRZA_WORKLOADS"); v != "" {
		o.Workloads = strings.Split(v, ",")
	}
	return o
}

// envParallelism reads MIRZA_PARALLELISM (0 when unset or invalid).
func envParallelism() int {
	if v := os.Getenv("MIRZA_PARALLELISM"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// Quick shrinks o to smoke-run scale: tiny timing and calibration
// windows, the minimum replay coverage, and a 3-workload subset. Every
// knob Quick does not touch (seed, faults, parallelism, telemetry, ...)
// carries over, so callers configure once and modify:
//
//	opts := experiments.DefaultOptions()
//	opts.Faults = plan
//	opts = opts.Quick()
func (o Options) Quick() Options {
	o.Warmup = 100 * dram.Microsecond
	o.Measure = 300 * dram.Microsecond
	o.ReplayWindows = 2
	o.CalibrationWindow = 300 * dram.Microsecond
	o.Workloads = []string{"fotonik3d", "xz", "bc"}
	o.Cores = 8
	return o
}

func (o *Options) setDefaults() {
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.Warmup == 0 {
		o.Warmup = dram.Millisecond / 2
	}
	if o.Measure == 0 {
		o.Measure = dram.Millisecond
	}
	if o.ReplayWindows < 2 {
		o.ReplayWindows = 2
	}
	if o.CalibrationWindow == 0 {
		o.CalibrationWindow = dram.Millisecond
	}
	if o.Parallelism == 0 {
		if n := envParallelism(); n > 0 {
			o.Parallelism = n
		} else {
			o.Parallelism = runtime.GOMAXPROCS(0)
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// workloadSpecs resolves the selected workload set.
func (o *Options) workloadSpecs() ([]trace.WorkloadSpec, error) {
	if len(o.Workloads) == 0 {
		return trace.Workloads(), nil
	}
	var out []trace.WorkloadSpec
	for _, name := range o.Workloads {
		w, err := trace.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Runner holds the state shared by every job of every experiment in one
// process: the options, the single-flight per-workload calibration layer
// (baselines and MLP budgets), and the merged fault log. All exported
// methods are safe for concurrent use by parallel jobs.
type Runner struct {
	opts Options

	// mu guards the calibration maps. Baseline computation itself runs
	// outside the lock under a per-workload once, so two jobs needing the
	// same workload baseline block on one computation instead of running
	// it twice (single-flight).
	mu           sync.Mutex
	baselines    map[string]*baselineEntry
	mlp          map[string]int // calibrated per-workload MSHR budget
	calibrations map[string]int // times each workload's baseline was computed

	// faultLog is the merged log of faults injected under opts.Faults:
	// per-job logs folded in deterministic job-submission order.
	faultLog *fault.Log

	// pool executes every experiment job and is the single source of
	// truth for the jobs/busy/speedup accounting (and, when telemetry is
	// enabled, the live jobs_* metrics).
	pool *jobs.Pool

	// runCtx governs every simulation the runner starts: job batches run
	// under it and kernels poll it between event batches, so -timeout and
	// suite deadlines cancel cooperatively. nil means context.Background.
	runCtx context.Context
}

// baselineEntry is the single-flight slot for one workload's baseline.
type baselineEntry struct {
	once sync.Once
	b    *Baseline
	err  error
}

// NewRunner builds a Runner over opts.
func NewRunner(opts Options) *Runner {
	opts.setDefaults()
	return &Runner{
		opts:         opts,
		baselines:    make(map[string]*baselineEntry),
		mlp:          make(map[string]int),
		calibrations: make(map[string]int),
		faultLog:     fault.NewLog(),
		pool: jobs.NewPool(jobs.Options{
			Parallelism: opts.Parallelism,
			Timeout:     opts.JobTimeout,
			Telemetry:   opts.Telemetry,
		}),
	}
}

// Options returns the runner's effective options.
func (r *Runner) Options() Options { return r.opts }

// WithContext makes ctx govern every subsequent experiment the runner
// executes: not-yet-started jobs are canceled and running simulations stop
// at their next event-batch boundary once ctx is done. It returns r for
// chaining and must not be called while experiments are running.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.runCtx = ctx
	return r
}

// context returns the runner's governing context (Background by default).
func (r *Runner) context() context.Context {
	if r.runCtx == nil {
		return context.Background()
	}
	return r.runCtx
}

// FaultLog returns the merged log of faults injected so far under
// Options.Faults (empty for an empty plan). Per-job logs are folded into
// it in job-submission order, so its contents are independent of
// Parallelism. It must not be read while experiments are running.
func (r *Runner) FaultLog() *fault.Log { return r.faultLog }

// JobStats returns how many jobs the runner has executed and their summed
// wall-clock durations — an estimate of the time a -j 1 run would need.
// It reads the job pool's accounting, the same numbers the jobs_* metrics
// expose.
func (r *Runner) JobStats() (n int, busy time.Duration) {
	s := r.pool.Stats()
	return int(s.Ran()), s.Busy
}

// PoolStats exposes the full job-engine accounting (for live endpoints).
func (r *Runner) PoolStats() jobs.PoolStats { return r.pool.Stats() }

// mlpFor returns the calibrated MSHR budget for a workload, if recorded.
func (r *Runner) mlpFor(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.mlp[name]
	return m, ok
}

// watchdog builds a stall watchdog from the options (nil when disabled).
// Each call returns a fresh instance: watchdogs are armed per job, never
// shared between concurrently running simulations.
func (r *Runner) watchdog() *sim.Watchdog {
	if r.opts.StallBudget <= 0 {
		return nil
	}
	return &sim.Watchdog{Budget: r.opts.StallBudget}
}

// Exec is the execution context of one job: the shared Runner plus
// job-isolated state (the fault log). Simulations always run through an
// Exec so that parallel jobs never share a mutable log or RNG, which is
// what keeps parallel output bit-identical to sequential (fault RNG
// streams are keyed by (plan seed, stream id) — job identity — not by
// execution order).
type Exec struct {
	r   *Runner
	log *fault.Log

	// ctx is the job's context (batch cancellation plus per-job
	// deadline); simulations run under it via cpu.System.RunCtx.
	ctx context.Context
}

// newExec returns a context with a fresh fault log. Jobs get one each
// from the engine; direct (non-engine) callers such as tests use one per
// single-threaded run.
func (r *Runner) newExec() *Exec {
	return &Exec{r: r, log: fault.NewLog(), ctx: r.context()}
}

// context returns the job's governing context (the runner's by default).
func (x *Exec) context() context.Context {
	if x.ctx == nil {
		return x.r.context()
	}
	return x.ctx
}

// Baseline resolves the (cached) unprotected reference for name via the
// shared single-flight layer.
func (x *Exec) Baseline(name string) (*Baseline, error) {
	return x.r.Baseline(name)
}

// wrapMit interposes the configured fault plan on one mitigator instance;
// with an empty plan it returns m unchanged.
func (x *Exec) wrapMit(m track.Mitigator, stream uint64) track.Mitigator {
	return fault.Wrap(x.r.opts.Faults, m, stream, x.log)
}

// wrapMits fault-wraps a mitigator slice in place (streams base+i).
func (x *Exec) wrapMits(mits []track.Mitigator, base uint64) {
	for i := range mits {
		mits[i] = x.wrapMit(mits[i], base+uint64(i))
	}
}

// Baseline holds the unprotected reference run of one workload.
type Baseline struct {
	Spec    trace.WorkloadSpec
	IPCs    []float64
	IPS     float64 // aggregate instructions per second
	MPKI    float64 // misses (reads) per kilo-instruction, measured
	ACTPKI  float64 // activations per kilo-instruction, measured
	BusUtil float64 // percent
	Stats   mem.Stats
	Window  dram.Time
}

// timingResult is one protected timing-simulation run.
type timingResult struct {
	IPCs   []float64
	Stats  mem.Stats
	Window dram.Time
}

// newSystem builds a full system for spec, with a job-private watchdog.
func (x *Exec) newSystem(spec trace.WorkloadSpec, timing dram.Timing, bat int,
	factory func(sub int, sink track.Sink) track.Mitigator) (*cpu.System, error) {
	r := x.r
	gens, err := trace.PerCore(spec, r.opts.Cores, r.opts.Seed)
	if err != nil {
		return nil, err
	}
	mlp, ok := r.mlpFor(spec.Name)
	if !ok {
		mlp = spec.MLPLimit()
	}
	if factory != nil {
		inner := factory
		factory = func(sub int, sink track.Sink) track.Mitigator {
			return x.wrapMit(inner(sub, sink), uint64(sub))
		}
	}
	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Cores: r.opts.Cores,
		Core:  cpu.CoreConfig{MSHR: mlp},
		Mem: mem.Config{
			Timing:       timing,
			Mapping:      dram.StridedR2SA,
			RFMBAT:       bat,
			NewMitigator: factory,
			Telemetry:    r.opts.Telemetry,
		},
	}, gens)
	if err != nil {
		return nil, err
	}
	sys.Watchdog = r.watchdog()
	return sys, nil
}

// attachAudit installs the protocol auditor on sys's channel when Options
// .Audit is set; the nil return when disabled is safe to Finish.
func (r *Runner) attachAudit(sys *cpu.System) *audit.Auditor {
	if !r.opts.Audit {
		return nil
	}
	return audit.ForChannel(sys.Channel)
}

// Baseline runs (or returns the cached) unprotected reference for name.
// Concurrent callers needing the same workload single-flight onto one
// computation; the computation's RNG streams derive only from (spec,
// options), so the result is bit-identical to the sequential engine's no
// matter which job triggers it first.
func (r *Runner) Baseline(name string) (*Baseline, error) {
	r.mu.Lock()
	e, ok := r.baselines[name]
	if !ok {
		e = &baselineEntry{}
		r.baselines[name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.b, e.err = r.computeBaseline(name) })
	return e.b, e.err
}

// computeBaseline performs the uncached baseline run. It executes inside
// the workload's single-flight once, so it never runs twice for one name.
func (r *Runner) computeBaseline(name string) (*Baseline, error) {
	spec, err := trace.Lookup(name)
	if err != nil {
		return nil, err
	}
	mlp, err := r.calibrateMLP(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.calibrations[name]++
	r.mu.Unlock()
	r.opts.Logf("baseline %s (%v warmup + %v measure, MLP=%d)", name, r.opts.Warmup, r.opts.Measure, mlp)
	// Baselines are unprotected (no mitigator), so the throwaway Exec's
	// fault log can never record anything.
	sys, err := r.newExec().newSystem(spec, dram.DDR5(), 0, nil)
	if err != nil {
		return nil, err
	}
	aud := r.attachAudit(sys)
	if err := sys.RunCtx(r.context(), r.opts.Warmup); err != nil {
		return nil, fmt.Errorf("baseline %s warmup: %w", name, err)
	}
	sys.Snapshot()
	if err := sys.RunCtx(r.context(), r.opts.Warmup+r.opts.Measure); err != nil {
		return nil, fmt.Errorf("baseline %s measure: %w", name, err)
	}
	sys.FlushTelemetry(telemetry.L("layer", "baseline"))
	if err := aud.Finish(sys.Channel); err != nil {
		return nil, fmt.Errorf("baseline %s audit: %w", name, err)
	}

	b := &Baseline{
		Spec:    spec,
		IPCs:    sys.IPCs(),
		BusUtil: sys.BusUtilization(),
		Stats:   sys.MemStats(),
		Window:  sys.Window(),
	}
	var instr float64
	for _, ipc := range b.IPCs {
		instr += ipc
	}
	cycles := float64(b.Window) / 250 // 250ps CPU cycle
	totalInstr := instr * cycles
	b.IPS = totalInstr / (float64(b.Window) / 1e12)
	if totalInstr > 0 {
		b.MPKI = float64(b.Stats.Reads) / totalInstr * 1000
		b.ACTPKI = float64(b.Stats.ACTs) / totalInstr * 1000
	}
	return b, nil
}

// calibrateMLP searches the small integer MSHR budget whose measured
// instruction rate lands closest to the workload's Table IV-implied rate
// (so the activation-per-subarray statistics match the paper's scale).
// It runs inside the baseline single-flight, so each workload calibrates
// exactly once per Runner.
func (r *Runner) calibrateMLP(spec trace.WorkloadSpec) (int, error) {
	if m, ok := r.mlpFor(spec.Name); ok {
		return m, nil
	}
	target := spec.ImpliedIPS()
	measure := func(mlp int) (float64, error) {
		gens, err := trace.PerCore(spec, r.opts.Cores, r.opts.Seed+99)
		if err != nil {
			return 0, err
		}
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Cores: r.opts.Cores,
			Core:  cpu.CoreConfig{MSHR: mlp},
			Mem:   mem.Config{Mapping: dram.StridedR2SA},
		}, gens)
		if err != nil {
			return 0, err
		}
		sys.Watchdog = r.watchdog()
		aud := r.attachAudit(sys)
		if err := sys.RunCtx(r.context(), r.opts.CalibrationWindow/4); err != nil {
			return 0, fmt.Errorf("calibration %s: %w", spec.Name, err)
		}
		sys.Snapshot()
		if err := sys.RunCtx(r.context(), r.opts.CalibrationWindow); err != nil {
			return 0, fmt.Errorf("calibration %s: %w", spec.Name, err)
		}
		if err := aud.Finish(sys.Channel); err != nil {
			return 0, fmt.Errorf("calibration %s audit: %w", spec.Name, err)
		}
		var ips float64
		for _, ipc := range sys.IPCs() {
			ips += ipc * 4e9
		}
		return ips, nil
	}
	best := spec.MLPLimit()
	bestIPS, err := measure(best)
	if err != nil {
		return 0, err
	}
	for iter := 0; iter < 4; iter++ {
		ratio := bestIPS / target
		if ratio > 0.88 && ratio < 1.14 {
			break
		}
		next := best
		if ratio >= 1.14 {
			next--
		} else {
			next++
		}
		if next < 2 || next > 16 {
			break
		}
		ips, err := measure(next)
		if err != nil {
			return 0, err
		}
		if abs64(ips-target) >= abs64(bestIPS-target) {
			break
		}
		best, bestIPS = next, ips
	}
	r.opts.Logf("calibrated %s: MLP=%d (IPS %.2fG vs target %.2fG)", spec.Name, best, bestIPS/1e9, target/1e9)
	r.mu.Lock()
	r.mlp[spec.Name] = best
	r.mu.Unlock()
	return best, nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// runTiming executes a protected timing simulation for workload name.
func (x *Exec) runTiming(name string, timing dram.Timing, bat int,
	factory func(sub int, sink track.Sink) track.Mitigator) (*timingResult, error) {
	spec, err := trace.Lookup(name)
	if err != nil {
		return nil, err
	}
	sys, err := x.newSystem(spec, timing, bat, factory)
	if err != nil {
		return nil, err
	}
	aud := x.r.attachAudit(sys)
	if err := sys.RunCtx(x.context(), x.r.opts.Warmup); err != nil {
		return nil, fmt.Errorf("timing %s warmup: %w", name, err)
	}
	sys.Snapshot()
	if err := sys.RunCtx(x.context(), x.r.opts.Warmup+x.r.opts.Measure); err != nil {
		return nil, fmt.Errorf("timing %s measure: %w", name, err)
	}
	sys.FlushTelemetry(telemetry.L("layer", "timing"))
	if err := aud.Finish(sys.Channel); err != nil {
		return nil, fmt.Errorf("timing %s audit: %w", name, err)
	}
	return &timingResult{IPCs: sys.IPCs(), Stats: sys.MemStats(), Window: sys.Window()}, nil
}

// slowdownVs returns the percent slowdown of res against the baseline:
// 100 * (1 - normalized weighted speedup).
func slowdownVs(base *Baseline, res *timingResult) float64 {
	if len(base.IPCs) != len(res.IPCs) || len(base.IPCs) == 0 {
		return 0
	}
	var ws float64
	for i := range base.IPCs {
		if base.IPCs[i] > 0 {
			ws += res.IPCs[i] / base.IPCs[i]
		}
	}
	ws /= float64(len(base.IPCs))
	return 100 * (1 - ws)
}

// mirzaMits builds one MIRZA instance per sub-channel.
func mirzaMits(cfg core.Config, seed uint64) ([]*core.Mirza, error) {
	g := cfg.Geometry
	out := make([]*core.Mirza, g.SubChannels)
	for i := range out {
		c := cfg
		c.Seed = seed + uint64(i)*977
		m, err := core.New(c, track.NopSink{})
		if err != nil {
			return nil, fmt.Errorf("experiments: building MIRZA for sub-channel %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// warmMirza replays one refresh window of the workload through fresh MIRZA
// instances and returns them (stats reset) for use in the timing simulator.
// The warm-up replay runs under the configured fault plan so the warmed
// state carries any injected corruption into the measured phase.
func (x *Exec) warmMirza(name string, cfg core.Config) ([]*core.Mirza, error) {
	r := x.r
	base, err := r.Baseline(name)
	if err != nil {
		return nil, err
	}
	gens, err := trace.PerCore(base.Spec, r.opts.Cores, r.opts.Seed+7)
	if err != nil {
		return nil, err
	}
	mits, err := mirzaMits(cfg, r.opts.Seed)
	if err != nil {
		return nil, err
	}
	asMit := make([]track.Mitigator, len(mits))
	for i, m := range mits {
		asMit[i] = m
	}
	x.wrapMits(asMit, 100)
	run, err := replay.NewRunner(replay.Config{IPS: base.IPS}, gens, asMit)
	if err != nil {
		return nil, err
	}
	run.Run(dram.DDR5().TREFW, nil)
	for _, m := range mits {
		m.ResetStats()
	}
	return mits, nil
}

// replayRun replays workload name for the configured number of refresh
// windows against per-sub-channel mitigators, returning the measured
// (post-warmup) per-sub-channel stats and total measured time.
func (x *Exec) replayRun(name string, mits []track.Mitigator, obs replay.Observer) (warm, measured []replay.Stats, measuredTime dram.Time, err error) {
	r := x.r
	base, err := r.Baseline(name)
	if err != nil {
		return nil, nil, 0, err
	}
	gens, err := trace.PerCore(base.Spec, r.opts.Cores, r.opts.Seed+13)
	if err != nil {
		return nil, nil, 0, err
	}
	if mits != nil {
		mits = append([]track.Mitigator(nil), mits...)
		x.wrapMits(mits, 200)
	}
	run, err := replay.NewRunner(replay.Config{IPS: base.IPS}, gens, mits)
	if err != nil {
		return nil, nil, 0, err
	}
	tREFW := dram.DDR5().TREFW
	run.Run(tREFW, nil) // warmup window
	warm = run.Stats()
	measuredTime = dram.Time(r.opts.ReplayWindows-1) * tREFW
	run.Run(tREFW+measuredTime, obs)
	measured = run.Stats()
	for i := range measured {
		measured[i].Accesses -= warm[i].Accesses
		measured[i].ACTs -= warm[i].ACTs
		measured[i].REFs -= warm[i].REFs
		measured[i].Alerts -= warm[i].Alerts
	}
	if reg := r.opts.Telemetry; reg.Enabled() {
		for i, m := range mits {
			track.FlushTelemetry(reg, m,
				telemetry.L("layer", "replay"), telemetry.L("sub", strconv.Itoa(i)))
		}
	}
	return warm, measured, measuredTime, nil
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func d(v int64) string    { return strconv.FormatInt(v, 10) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
