package experiments

import (
	"fmt"
	"path/filepath"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/tracefile"
)

// tracereplayPolicies is the default grid when Options.Mitigations is
// empty: the unprotected reference, the paper's reactive tracker, and
// MIRZA.
var tracereplayPolicies = []string{"none", "prac", "mirza"}

// tracereplayMSHR is the per-core outstanding-miss budget for recorded
// traces: external request streams carry no Table IV statistics to
// calibrate against, so replays run with ample memory-level parallelism
// and let the recorded gaps pace the stream.
const tracereplayMSHR = 8

// TraceReplay drives each Options.TraceFiles trace (DRAMSim3 or native
// NDJSON, sharded round-robin over the cores into one shared address
// space) through the timing simulator under each mitigation of the grid,
// reporting the memory-system activity the external workload provokes.
// With no trace files configured it renders an informational table
// instead of failing, so the full experiment sweep stays runnable.
func (r *Runner) TraceReplay() (*Table, error) {
	t := &Table{
		ID:    "tracereplay",
		Title: "Recorded-trace replay through the timing simulator",
		Columns: []string{"Trace", "Ops", "Policy", "IPC", "ACTs", "Row hit%",
			"ALERTs", "Mitigations", "Bus util"},
	}
	if len(r.opts.TraceFiles) == 0 {
		t.Notes = append(t.Notes, "no trace files configured: pass -trace FILE (or Options.TraceFiles) to replay recorded workloads")
		return t, nil
	}
	policies := r.opts.Mitigations
	if len(policies) == 0 {
		policies = tracereplayPolicies
	}
	const trhd = 1000

	// Parse every file up front (strict mode): admission errors carry the
	// file and line, and the manifest hash pins the content replayed.
	traces := make([]*tracefile.Trace, len(r.opts.TraceFiles))
	for i, path := range r.opts.TraceFiles {
		tr, err := tracefile.Load(path, tracefile.Options{})
		if err != nil {
			return nil, err
		}
		traces[i] = tr
		r.opts.Logf("trace %s: %s", path, tr.ManifestJSON())
	}

	type cell struct {
		ipc     float64
		stats   mem.Stats
		busUtil float64
		window  dram.Time
	}
	var js []job[cell]
	for _, tr := range traces {
		for _, policy := range policies {
			tr, policy := tr, policy
			js = append(js, job[cell]{
				id: fmt.Sprintf("tracereplay/%s/%s", tr.Name, policy),
				run: func(x *Exec) (cell, error) {
					x.r.opts.Logf("tracereplay %s under %s", tr.Name, policy)
					b, err := x.buildPolicy(policy, trhd, nil)
					if err != nil {
						return cell{}, err
					}
					gens, err := tr.PerCore(x.r.opts.Cores)
					if err != nil {
						return cell{}, err
					}
					// Every shard indexes the recorded stream's single
					// address space.
					asids := make([]int, len(gens))
					res, err := x.runTenantTiming(gens, asids, tracereplayMSHR,
						b.Timing(), b.RFMBAT(), b.Factory())
					if err != nil {
						return cell{}, err
					}
					c := cell{stats: res.Stats, window: res.Window}
					for _, ipc := range res.IPCs {
						c.ipc += ipc
					}
					c.ipc /= float64(len(res.IPCs))
					if res.Window > 0 {
						c.busUtil = 100 * float64(res.Stats.BusBusy) / float64(res.Window) /
							float64(dram.Default().SubChannels)
					}
					return c, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for ti, tr := range traces {
		for pi, policy := range policies {
			c := cells[ti*len(policies)+pi]
			hitPct := 0.0
			if cols := c.stats.RowHits + c.stats.RowMisses; cols > 0 {
				hitPct = 100 * float64(c.stats.RowHits) / float64(cols)
			}
			t.AddRow(tr.Name, d(int64(len(tr.Ops))), policy,
				f3(c.ipc), d(c.stats.ACTs), f1(hitPct),
				d(c.stats.Alerts), d(c.stats.Mitigations), f1(c.busUtil)+"%")
		}
	}
	for i, tr := range traces {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s format, sha256 %s (%s)",
			tr.Name, tr.Format, tr.Hash[:16], filepath.Base(r.opts.TraceFiles[i])))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("traces shard round-robin over %d cores into one shared address space; recorded cycle deltas pace each shard", r.opts.Cores))
	return t, nil
}
