package experiments

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/track"
)

// baselinePolicies are the registered mitigation policies the baseline
// comparison sweeps, in presentation order: the paper's two reference
// trackers first, then the three one-file baselines the registry made
// cheap to add (Graphene's Misra-Gries counter table, the perfect-
// knowledge oracle, and Loaded Dice's probabilistic selector).
var baselinePolicies = []string{"prac", "mint-rfm", "graphene", "oracle", "loaded-dice"}

// Baselines compares every baseline defense at TRHD=1000 on equal footing:
// same workloads, same channel, everything resolved by name through the
// mitigation registry. One job per (policy, workload) timing simulation;
// each row reports the workload-average slowdown, mitigation and ALERT
// activity, refresh-power overhead, and the policy's analytic security
// bound at this provisioning.
func (r *Runner) Baselines() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	policies := r.opts.Mitigations
	if len(policies) == 0 {
		policies = baselinePolicies
	}
	const trhd = 1000
	t := &Table{
		ID:    "baselines",
		Title: fmt.Sprintf("Baseline defenses at TRHD=%d (workload averages)", trhd),
		Columns: []string{"Policy", "Slowdown", "Mitigations", "ALERTs",
			"Refresh power", "Bound (TRHD)"},
	}
	type cell struct {
		sd           float64
		mits, alerts int64
		rp           float64
	}
	var js []job[cell]
	for _, policy := range policies {
		for _, spec := range specs {
			policy, spec := policy, spec
			js = append(js, job[cell]{
				id: fmt.Sprintf("baselines/%s/%s", policy, spec.Name),
				run: func(x *Exec) (cell, error) {
					x.r.opts.Logf("baselines %s %s", policy, spec.Name)
					sd, res, err := x.runPolicy(spec.Name, policy, trhd)
					if err != nil {
						return cell{}, err
					}
					c := cell{sd: sd, mits: res.Stats.Mitigations, alerts: res.Stats.Alerts}
					if res.Stats.DemandRefreshRows > 0 {
						c.rp = 100 * float64(res.Stats.VictimRows) / float64(res.Stats.DemandRefreshRows)
					}
					return c, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	n := float64(len(specs))
	for pi, policy := range policies {
		b, err := track.Build(policy, nil, track.Config{
			Geometry: dram.Default(),
			Mapping:  dram.StridedR2SA,
			TRHD:     trhd,
			Seed:     r.opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		var sdSum, rpSum float64
		var mits, alerts int64
		for si := range specs {
			c := cells[pi*len(specs)+si]
			sdSum += c.sd
			rpSum += c.rp
			mits += c.mits
			alerts += c.alerts
		}
		t.AddRow(b.Name(), f2(sdSum/n)+"%",
			d(mits/int64(len(specs))), d(alerts/int64(len(specs))),
			f2(rpSum/n)+"%", d(int64(b.Bound().TRHD)))
	}
	t.Notes = append(t.Notes,
		"oracle is the perfect-knowledge upper bound: exact per-row counters, mitigation exactly at threshold",
		"graphene provisions its counter table for the worst-case ACT rate (Misra-Gries guarantee 4T)",
		"loaded-dice piggybacks probabilistic selection on the RFM cadence (non-selection-free, MINT-style bound)")
	return t, nil
}
