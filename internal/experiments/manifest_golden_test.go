package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mirza/internal/fault"
	"mirza/internal/telemetry"
)

// runManifest runs the fig3 golden case with telemetry enabled at the given
// parallelism and returns the canonical (wall-clock-free) manifest JSON.
func runManifest(t *testing.T, parallelism int) []byte {
	t.Helper()
	reg := telemetry.New()
	opts := goldenOptions([]string{"xz"}, fault.Plan{})
	opts.Parallelism = parallelism
	opts.Telemetry = reg

	exp, err := Lookup("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(NewRunner(opts)); err != nil {
		t.Fatalf("fig3: %v", err)
	}

	m := telemetry.NewManifest("golden", map[string]string{
		"exp":       "fig3",
		"workloads": "xz",
	})
	m.Seed = opts.Seed
	m.FaultPlan = opts.Faults.String()
	m.FillFromSnapshot(reg.Snapshot())
	data, err := m.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenManifest pins the enabled-telemetry contract: a same-seed run
// produces an identical manifest modulo wall-clock fields, at any
// parallelism, down to the bytes recorded in testdata.
func TestGoldenManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden manifest runs a full experiment; skipped in -short")
	}
	seq := runManifest(t, 1)
	par := runManifest(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("canonical manifest differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s", seq, par)
	}

	path := filepath.Join("testdata", "golden_manifest_fig3.json")
	if *updateGolden {
		if err := os.WriteFile(path, seq, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(seq, want) {
		t.Errorf("manifest drifted from golden %s:\n-- got --\n%s\n-- want --\n%s", path, seq, want)
	}
}
