package experiments

// The job engine: every experiment decomposes into independent jobs (one
// self-contained (workload, timing, mitigator-factory, seed) simulation
// each) executed on a worker pool of Options.Parallelism workers.
//
// Determinism contract (DESIGN.md §9):
//
//   - Jobs are enumerated in the same order the old sequential engine
//     iterated its loops, and results are gathered in submission order, so
//     aggregation (including floating-point accumulation) is bit-identical
//     at any parallelism.
//   - Every RNG stream a job consumes is keyed by the job's identity
//     (workload spec, sub-channel index, fixed stream ids folded into
//     Options.Seed), never by execution order.
//   - Each job writes injected faults to its own fault.Log; the engine
//     merges the logs into Runner.FaultLog in submission order, which
//     reproduces the sequential log exactly (both are prefix-truncations
//     at the same retention cap).
//   - Shared per-workload state (baselines, MLP calibration) lives behind
//     the Runner's single-flight layer, and its computation draws only on
//     job-order-independent streams.
//
// With Parallelism == 1 the pool degrades to the strictly sequential
// engine: same execution order, same fail-fast behaviour, same output
// bytes.

import (
	"context"
	"errors"

	"mirza/internal/jobs"
)

// job is one experiment-internal unit of work producing a T.
type job[T any] struct {
	id  string
	run func(x *Exec) (T, error)
}

// runJobs executes experiment jobs on the engine and gathers their values
// in submission order. Each job receives a fresh Exec (job-isolated fault
// log); the logs of all jobs that ran are merged into the runner's shared
// log in submission order. The returned error is the lowest-submission-
// index failure, matching a sequential fail-fast loop.
func runJobs[T any](r *Runner, js []job[T]) ([]T, error) {
	execs := make([]*Exec, len(js))
	pool := make([]jobs.Job[T], len(js))
	for i := range js {
		i := i
		execs[i] = r.newExec()
		pool[i] = jobs.Job[T]{
			ID: js[i].id,
			Run: func(ctx context.Context) (T, error) {
				execs[i].ctx = ctx
				return js[i].run(execs[i])
			},
		}
	}
	results := jobs.RunOnCtx(r.context(), r.pool, pool)
	for i := range results {
		if results[i].Skipped || results[i].Canceled {
			continue
		}
		// A timed-out job was abandoned: its goroutine may still be
		// writing the job log, so that log must not be touched. (A
		// canceled job's goroutine may likewise still be unwinding.)
		if !errors.Is(results[i].Err, jobs.ErrTimeout) {
			r.faultLog.Merge(execs[i].log)
		}
	}
	if err := jobs.FirstError(results); err != nil {
		return nil, err
	}
	return jobs.Values(results), nil
}
