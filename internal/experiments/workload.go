package experiments

import (
	"fmt"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/replay"
	"mirza/internal/security"
	"mirza/internal/stats"
	"mirza/internal/trace"
	"mirza/internal/track"
)

// probeSet is a passive fan-out Mitigator: it feeds every probe MIRZA
// instance the same ACT/REF stream but never requests ALERTs (probes'
// queues are irrelevant; only their filtering statistics are read).
type probeSet struct {
	probes []*core.Mirza
}

var _ track.Mitigator = (*probeSet)(nil)

func (p *probeSet) Name() string { return "probe-set" }
func (p *probeSet) OnActivate(bank, row int, now dram.Time) {
	for _, m := range p.probes {
		m.OnActivate(bank, row, now)
	}
}
func (p *probeSet) WantsALERT() bool { return false }
func (p *probeSet) OnREF(refIndex int, now dram.Time) {
	for _, m := range p.probes {
		m.OnREF(refIndex, now)
	}
}
func (p *probeSet) OnRFM(bank int, now dram.Time) {}
func (p *probeSet) ServiceALERT(now dram.Time)    {}

// Table4 reproduces Table IV: the workload characteristics, measured from
// the simulator (MPKI and ACT-PKI from the timing baseline; ACTs/subarray
// per tREFW from the replayer). One job per workload.
func (r *Runner) Table4() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table4",
		Title: "Workload characteristics (measured vs Table IV targets)",
		Columns: []string{"Workload", "MPKI", "ACT-PKI", "Bus Util (%)",
			"ACT/SA mean", "ACT/SA sigma", "paper mean+/-sigma"},
	}
	type cell struct {
		base       *Baseline
		mean, sdev float64
	}
	js := make([]job[cell], 0, len(specs))
	for _, spec := range specs {
		spec := spec
		js = append(js, job[cell]{
			id: "table4/" + spec.Name,
			run: func(x *Exec) (cell, error) {
				base, err := x.Baseline(spec.Name)
				if err != nil {
					return cell{}, err
				}
				mean, sdev, err := x.actsPerSubarray(spec.Name)
				if err != nil {
					return cell{}, err
				}
				return cell{base, mean, sdev}, nil
			},
		})
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	var avgMPKI, avgACT, avgBus, avgMean, avgSdev float64
	for i, spec := range specs {
		c := cells[i]
		t.AddRow(spec.Name, f1(c.base.MPKI), f1(c.base.ACTPKI), f1(c.base.BusUtil),
			f1(c.mean), f1(c.sdev),
			fmt.Sprintf("%.0f +/- %.0f", spec.ActSAMean, spec.ActSASdev))
		avgMPKI += c.base.MPKI
		avgACT += c.base.ACTPKI
		avgBus += c.base.BusUtil
		avgMean += c.mean
		avgSdev += c.sdev
	}
	n := float64(len(specs))
	t.AddRow("Average", f1(avgMPKI/n), f1(avgACT/n), f1(avgBus/n),
		f1(avgMean/n), f1(avgSdev/n), "806 +/- 309")
	t.Notes = append(t.Notes, "paper averages: MPKI 24.4, ACT-PKI 18.5, bus util 63.4%")
	return t, nil
}

// actsPerSubarray replays the workload and returns the mean and standard
// deviation of activations per subarray per tREFW (strided R2SA), averaged
// over banks.
func (x *Exec) actsPerSubarray(name string) (mean, sdev float64, err error) {
	g := dram.Default()
	counts := make([][]int64, g.SubChannels*g.BanksPerSubChannel)
	for i := range counts {
		counts[i] = make([]int64, g.Subarrays())
	}
	_, _, measuredTime, err := x.replayRun(name, nil, func(sub, bank, row int, now dram.Time) {
		counts[sub*g.BanksPerSubChannel+bank][g.Subarray(dram.StridedR2SA, row)]++
	})
	if err != nil {
		return 0, 0, err
	}
	// The observer saw only the measured windows (replayRun attaches it
	// after warmup); normalize to one tREFW.
	scale := float64(dram.DDR5().TREFW) / float64(measuredTime)
	var agg stats.Running
	for _, bank := range counts {
		for _, c := range bank {
			agg.Add(float64(c) * scale)
		}
	}
	return agg.Mean(), agg.StdDev(), nil
}

// Fig6 reproduces Figure 6: average ACTs per subarray per tREFW for every
// workload against the worst-case single-bank bound. One job per workload.
func (r *Runner) Fig6() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Avg ACTs/subarray per tREFW vs worst case",
		Columns: []string{"Workload", "ACTs/subarray/tREFW", "paper"},
	}
	js := make([]job[float64], 0, len(specs))
	for _, spec := range specs {
		spec := spec
		js = append(js, job[float64]{
			id: "fig6/" + spec.Name,
			run: func(x *Exec) (float64, error) {
				mean, _, err := x.actsPerSubarray(spec.Name)
				return mean, err
			},
		})
	}
	means, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	var sum float64
	for i, spec := range specs {
		sum += means[i]
		t.AddRow(spec.Name, f1(means[i]), f1(spec.ActSAMean))
	}
	t.AddRow("Average", f1(sum/float64(len(specs))), "806")
	worst := dram.DDR5().MaxACTsPerBankPerTREFW()
	t.AddRow("Worst-case (one subarray)", d(int64(worst)), "621K")
	t.Notes = append(t.Notes, "workloads sit 2-3 orders of magnitude below the worst case, which is what makes CGF effective")
	return t, nil
}

// Table6 reproduces Table VI: the fraction of activations filtered by CGF
// under sequential vs strided row-to-subarray mapping, as FTH varies. One
// job per workload; each job replays the workload once through a probe
// fan-out covering every (mapping, FTH) pair.
func (r *Runner) Table6() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	fths := []int{1400, 1500, 1600, 1700}
	mappings := []dram.R2SAMapping{dram.SequentialR2SA, dram.StridedR2SA}
	g := dram.Default()

	// One job returns, per (mapping, fth) in enumeration order, the
	// (acts, filtered) deltas aggregated over sub-channels.
	type agg struct{ acts, filtered int64 }
	js := make([]job[[]agg], 0, len(specs))
	for _, spec := range specs {
		spec := spec
		js = append(js, job[[]agg]{
			id: "table6/" + spec.Name,
			run: func(x *Exec) ([]agg, error) {
				r := x.r
				r.opts.Logf("table6 %s", spec.Name)
				mits := make([]track.Mitigator, g.SubChannels)
				index := make(map[dram.R2SAMapping]map[int][]*core.Mirza)
				for _, m := range mappings {
					index[m] = make(map[int][]*core.Mirza)
				}
				for sub := range mits {
					var probes []*core.Mirza
					for _, m := range mappings {
						for _, fth := range fths {
							cfg, err := core.ForTRHD(1000)
							if err != nil {
								return nil, err
							}
							cfg.Mapping = m
							cfg.FTH = fth
							cfg.Seed = r.opts.Seed + uint64(sub)
							probe, err := core.New(cfg, track.NopSink{})
							if err != nil {
								return nil, fmt.Errorf("table6 probe (FTH=%d): %w", fth, err)
							}
							probes = append(probes, probe)
							index[m][fth] = append(index[m][fth], probe)
						}
					}
					mits[sub] = x.wrapMit(&probeSet{probes: probes}, uint64(300+sub))
				}

				// Warm one window, snapshot, measure the rest.
				snapshot := func() map[*core.Mirza]core.MirzaStats {
					out := make(map[*core.Mirza]core.MirzaStats)
					for _, m := range mappings {
						for _, fth := range fths {
							for _, p := range index[m][fth] {
								out[p] = p.Stats
							}
						}
					}
					return out
				}
				base, err := r.Baseline(spec.Name)
				if err != nil {
					return nil, err
				}
				gens, err := trace.PerCore(base.Spec, r.opts.Cores, r.opts.Seed+13)
				if err != nil {
					return nil, err
				}
				run, err := replay.NewRunner(replay.Config{IPS: base.IPS}, gens, mits)
				if err != nil {
					return nil, err
				}
				tREFW := dram.DDR5().TREFW
				run.Run(tREFW, nil)
				snap := snapshot()
				run.Run(dram.Time(r.opts.ReplayWindows)*tREFW, nil)
				var out []agg
				for _, m := range mappings {
					for _, fth := range fths {
						var a agg
						for _, p := range index[m][fth] {
							delta := p.Stats
							prev := snap[p]
							a.acts += delta.ACTs - prev.ACTs
							a.filtered += delta.Filtered - prev.Filtered
						}
						out = append(out, a)
					}
				}
				return out, nil
			},
		})
	}
	perSpec, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	// sums[mapping][fth], aggregated over workloads in submission order.
	sums := make(map[dram.R2SAMapping]map[int]*agg)
	for _, m := range mappings {
		sums[m] = make(map[int]*agg)
		for _, fth := range fths {
			sums[m][fth] = &agg{}
		}
	}
	for _, cells := range perSpec {
		i := 0
		for _, m := range mappings {
			for _, fth := range fths {
				sums[m][fth].acts += cells[i].acts
				sums[m][fth].filtered += cells[i].filtered
				i++
			}
		}
	}

	t := &Table{
		ID:    "table6",
		Title: "Effectiveness of coarse-grained filtering (TRHD=1K geometry)",
		Columns: []string{"FTH", "Sequential filtered", "Sequential remaining",
			"Strided filtered", "Strided remaining"},
	}
	for _, fth := range fths {
		seq := sums[dram.SequentialR2SA][fth]
		str := sums[dram.StridedR2SA][fth]
		pct := func(a *agg) (fil, rem float64) {
			if a.acts == 0 {
				return 0, 0
			}
			fil = 100 * float64(a.filtered) / float64(a.acts)
			return fil, 100 - fil
		}
		sf, sr := pct(seq)
		tf, tr := pct(str)
		t.AddRow(d(int64(fth)),
			f2(sf)+"%", f2(sr)+"%",
			f2(tf)+"%", f2(tr)+"%")
	}
	t.Notes = append(t.Notes,
		"paper at FTH=1500: sequential 5.55% filtered, strided 99.12% filtered (0.88% remaining)")
	return t, nil
}

// mirzaReplayCounts warms MIRZA for cfg, replays the workload and returns
// the accumulated tracker counters (one self-contained replay job body).
func (x *Exec) mirzaReplayCounts(name string, cfg core.Config) (acts, escaped, mitig int64, err error) {
	mits, err := x.warmMirza(name, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	asMit := make([]track.Mitigator, len(mits))
	for i, m := range mits {
		asMit[i] = m
	}
	if _, _, _, err := x.replayRun(name, asMit, nil); err != nil {
		return 0, 0, 0, err
	}
	for _, m := range mits {
		acts += m.Stats.ACTs
		escaped += m.Stats.Escaped
		mitig += m.Stats.Mitigations
	}
	return acts, escaped, mitig, nil
}

// Table8 reproduces Table VIII: the mitigation overhead of MINT vs MIRZA.
// One job per (TRHD, workload) replay.
func (r *Runner) Table8() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	model := security.DefaultMINTModel()
	t := &Table{
		ID:    "table8",
		Title: "Mitigation overhead of MINT vs MIRZA",
		Columns: []string{"TRHD", "MINT (1/W)", "MIRZA escape prob",
			"MIRZA rate", "Difference"},
	}
	trhds := []int{2000, 1000, 500}
	type counts struct{ acts, escaped, mitig int64 }
	var js []job[counts]
	for _, trhd := range trhds {
		cfg, err := core.ForTRHD(trhd)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			cfg, spec := cfg, spec
			js = append(js, job[counts]{
				id: fmt.Sprintf("table8/trhd=%d/%s", trhd, spec.Name),
				run: func(x *Exec) (counts, error) {
					acts, escaped, mitig, err := x.mirzaReplayCounts(spec.Name, cfg)
					return counts{acts, escaped, mitig}, err
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for ti, trhd := range trhds {
		var acts, escaped, mitig int64
		for si := range specs {
			c := cells[ti*len(specs)+si]
			acts += c.acts
			escaped += c.escaped
			mitig += c.mitig
		}
		mintW := model.WindowForTRHD(trhd)
		escape := float64(escaped) / float64(acts)
		rate := float64(mitig) / float64(acts)
		diff := 0.0
		if rate > 0 {
			diff = (1.0 / float64(mintW)) / rate
		}
		t.AddRow(d(int64(trhd)),
			fmt.Sprintf("1/%d", mintW),
			fmt.Sprintf("1/%.0f", 1/escape),
			fmt.Sprintf("1/%.0f", 1/rate),
			fmt.Sprintf("%.1fx", diff))
	}
	t.Notes = append(t.Notes,
		"paper: 1/96 vs 1/12016 (125x), 1/48 vs 1/1368 (28.5x), 1/24 vs 1/240 (10x)")
	return t, nil
}

// Fig11b reproduces Figure 11(b): ALERTs per 100xtREFI per sub-channel for
// MIRZA and PRAC. One job per (workload, tracker-config) replay.
func (r *Runner) Fig11b() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	tREFI := dram.DDR5().TREFI
	t := &Table{
		ID:      "fig11b",
		Title:   "ALERTs per 100xtREFI (per sub-channel)",
		Columns: []string{"Workload", "MIRZA-500", "MIRZA-1K", "MIRZA-2K", "PRAC"},
	}
	g := dram.Default()
	trhds := []int{500, 1000, 2000}

	// alertRate converts measured replay stats to the figure's rate.
	alertRate := func(measured []replay.Stats, mt dram.Time) float64 {
		var alerts int64
		for _, s := range measured {
			alerts += s.Alerts
		}
		return float64(alerts) / float64(len(measured)) / (float64(mt) / float64(tREFI)) * 100
	}

	// Per workload: three MIRZA configurations then PRAC, in the order
	// the sequential engine ran them.
	const perSpec = 4
	var js []job[float64]
	for _, spec := range specs {
		spec := spec
		for _, trhd := range trhds {
			trhd := trhd
			js = append(js, job[float64]{
				id: fmt.Sprintf("fig11b/%s/mirza-%d", spec.Name, trhd),
				run: func(x *Exec) (float64, error) {
					cfg, _ := core.ForTRHD(trhd)
					mits, err := x.warmMirza(spec.Name, cfg)
					if err != nil {
						return 0, err
					}
					asMit := make([]track.Mitigator, len(mits))
					for j, m := range mits {
						asMit[j] = m
					}
					_, measured, mt, err := x.replayRun(spec.Name, asMit, nil)
					if err != nil {
						return 0, err
					}
					return alertRate(measured, mt), nil
				},
			})
		}
		js = append(js, job[float64]{
			id: "fig11b/" + spec.Name + "/prac",
			run: func(x *Exec) (float64, error) {
				b, err := x.buildPolicy("prac", 1000, nil)
				if err != nil {
					return 0, err
				}
				pracMits := make([]track.Mitigator, g.SubChannels)
				for j := range pracMits {
					pracMits[j] = b.Factory()(j, track.NopSink{})
				}
				_, measured, mt, err := x.replayRun(spec.Name, pracMits, nil)
				if err != nil {
					return 0, err
				}
				return alertRate(measured, mt), nil
			},
		})
	}
	rates, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	avg := make([]float64, perSpec)
	for si, spec := range specs {
		row := []string{spec.Name}
		for c := 0; c < perSpec; c++ {
			rate := rates[si*perSpec+c]
			avg[c] += rate
			row = append(row, f2(rate))
		}
		t.AddRow(row...)
	}
	n := float64(len(specs))
	t.AddRow("Average", f2(avg[0]/n), f2(avg[1]/n), f2(avg[2]/n), f2(avg[3]/n))
	t.Notes = append(t.Notes, "paper average at TRHD=1K: MIRZA 2.16, PRAC ~0")
	return t, nil
}

// Fig13 reproduces Figure 13: the refresh-power overhead of MINT vs MIRZA.
// One job per (TRHD, workload) replay.
func (r *Runner) Fig13() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	model := security.DefaultMINTModel()
	g := dram.Default()
	t := &Table{
		ID:      "fig13",
		Title:   "Refresh power overhead (victim-refresh rows / demand-refresh rows)",
		Columns: []string{"TRHD", "MINT+RFM", "MIRZA", "paper MINT", "paper MIRZA"},
	}
	paperMINT := map[int]string{500: "16.4%", 1000: "8.2%", 2000: "4.1%"}
	trhds := []int{500, 1000, 2000}
	type counts struct{ acts, mirzaVictims, demandRows int64 }
	var js []job[counts]
	for _, trhd := range trhds {
		cfg, _ := core.ForTRHD(trhd)
		for _, spec := range specs {
			cfg, spec := cfg, spec
			js = append(js, job[counts]{
				id: fmt.Sprintf("fig13/trhd=%d/%s", trhd, spec.Name),
				run: func(x *Exec) (counts, error) {
					mits, err := x.warmMirza(spec.Name, cfg)
					if err != nil {
						return counts{}, err
					}
					asMit := make([]track.Mitigator, len(mits))
					for i, m := range mits {
						asMit[i] = m
					}
					snapMit := make([]int64, len(mits))
					for i, m := range mits {
						snapMit[i] = m.Stats.Mitigations
					}
					_, measured, _, err := x.replayRun(spec.Name, asMit, nil)
					if err != nil {
						return counts{}, err
					}
					var c counts
					for i, m := range mits {
						c.mirzaVictims += (m.Stats.Mitigations - snapMit[i]) * track.MitigationVictims
					}
					for _, s := range measured {
						c.acts += s.ACTs
						c.demandRows += s.REFs * int64(g.RowsPerREF) * int64(g.BanksPerSubChannel)
					}
					return c, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for ti, trhd := range trhds {
		mintW := model.WindowForTRHD(trhd)
		var acts, mirzaVictims, demandRows int64
		for si := range specs {
			c := cells[ti*len(specs)+si]
			acts += c.acts
			mirzaVictims += c.mirzaVictims
			demandRows += c.demandRows
		}
		mintVictims := acts / int64(mintW) * track.MitigationVictims
		t.AddRow(d(int64(trhd)),
			fmt.Sprintf("%.1f%%", 100*float64(mintVictims)/float64(demandRows)),
			fmt.Sprintf("%.2f%%", 100*float64(mirzaVictims)/float64(demandRows)),
			paperMINT[trhd],
			"~0.3% at 1K")
	}
	t.Notes = append(t.Notes,
		"MINT+RFM mitigates every W activations (4 victim rows each); MIRZA mitigates only queue drains")
	return t, nil
}
