package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/fault"
	"mirza/internal/sim"
	"mirza/internal/track"
)

func quickOpts() Options {
	return Options{
		Seed:              1,
		Warmup:            50 * dram.Microsecond,
		Measure:           150 * dram.Microsecond,
		ReplayWindows:     2,
		CalibrationWindow: 150 * dram.Microsecond,
		Workloads:         []string{"xz"},
	}
}

func TestHarnessPanicRecovery(t *testing.T) {
	s := NewSuite(quickOpts(), SuiteConfig{NoRetry: true})
	res := s.Run(context.Background(), Experiment{
		ID: "boom",
		Run: func(r *Runner) (*Table, error) {
			panic("deliberate test panic")
		},
	})
	if !res.Failed() || !res.Panicked {
		t.Fatalf("want panicked failure, got %+v", res)
	}
	if !strings.Contains(res.Err.Error(), "deliberate test panic") {
		t.Errorf("error lacks panic value: %v", res.Err)
	}
	if !strings.Contains(res.Stack, "goroutine") {
		t.Errorf("stack trace missing: %q", res.Stack)
	}
	if s.runner != nil {
		t.Error("failed attempt must discard the shared runner")
	}
}

func TestHarnessTimeout(t *testing.T) {
	// The suite deadline is enforced per engine job: a stuck simulation
	// job is abandoned and its experiment fails with ErrTimeout.
	s := NewSuite(quickOpts(), SuiteConfig{Timeout: 30 * time.Millisecond, NoRetry: true})
	res := s.Run(context.Background(), Experiment{
		ID: "slow",
		Run: func(r *Runner) (*Table, error) {
			_, err := runJobs(r, []job[int]{{
				id: "slow/stuck",
				run: func(x *Exec) (int, error) {
					time.Sleep(500 * time.Millisecond)
					return 0, nil
				},
			}})
			if err != nil {
				return nil, err
			}
			return &Table{ID: "slow"}, nil
		},
	})
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", res.Err)
	}
	if res.Panicked || res.Table != nil {
		t.Fatalf("unexpected result: %+v", res)
	}
	if s.runner != nil {
		t.Error("timed-out attempt must discard the shared runner")
	}
}

func TestHarnessDegradedRetry(t *testing.T) {
	opts := quickOpts()
	s := NewSuite(opts, SuiteConfig{})
	res := s.Run(context.Background(), Experiment{
		ID: "flaky",
		Run: func(r *Runner) (*Table, error) {
			if r.Options().Measure == opts.Measure {
				return nil, fmt.Errorf("full fidelity fails")
			}
			return &Table{ID: "flaky", Title: "ok", Columns: []string{"c"}}, nil
		},
	})
	if res.Failed() {
		t.Fatalf("degraded retry should have succeeded: %v", res.Err)
	}
	if !res.Degraded || res.Attempts != 2 {
		t.Fatalf("want degraded 2-attempt result, got %+v", res)
	}
	found := false
	for _, n := range res.Table.Notes {
		if strings.Contains(n, "DEGRADED") {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded table lacks the DEGRADED note: %v", res.Table.Notes)
	}
}

func TestHarnessRetryBothFail(t *testing.T) {
	s := NewSuite(quickOpts(), SuiteConfig{})
	res := s.Run(context.Background(), Experiment{
		ID:  "hopeless",
		Run: func(r *Runner) (*Table, error) { return nil, fmt.Errorf("always fails") },
	})
	if !res.Failed() || res.Degraded {
		t.Fatalf("want plain failure, got %+v", res)
	}
	if !strings.Contains(res.Err.Error(), "degraded retry also failed") {
		t.Errorf("error should mention the failed retry: %v", res.Err)
	}
}

func TestHarnessCanceledContext(t *testing.T) {
	s := NewSuite(quickOpts(), SuiteConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.Run(ctx, Experiment{
		ID: "doomed",
		Run: func(r *Runner) (*Table, error) {
			_, err := runJobs(r, []job[int]{{
				id:  "doomed/job",
				run: func(x *Exec) (int, error) { return 0, nil },
			}})
			if err != nil {
				return nil, err
			}
			return &Table{ID: "doomed"}, nil
		},
	})
	if !res.Failed() || !res.Canceled {
		t.Fatalf("want canceled failure, got %+v", res)
	}
	if res.Attempts != 1 || res.Degraded {
		t.Fatalf("cancellation must never be retried: %+v", res)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled: %v", res.Err)
	}
}

func TestRunAllAndSummarize(t *testing.T) {
	s := NewSuite(quickOpts(), SuiteConfig{NoRetry: true})
	results := s.RunAll(context.Background(), []string{"table1", "no-such-experiment"})
	if len(results) != 2 {
		t.Fatalf("want 2 results, got %d", len(results))
	}
	if results[0].Failed() {
		t.Fatalf("table1 should succeed: %v", results[0].Err)
	}
	if !results[1].Failed() {
		t.Fatal("unknown id should fail")
	}
	sum := Summarize(results)
	if sum.OK != 1 || sum.Failed != 1 || sum.Degraded != 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.Clean() {
		t.Error("summary with a failure is not clean")
	}
	if !strings.Contains(sum.String(), "FAIL no-such-experiment") {
		t.Errorf("summary lacks failure line: %q", sum.String())
	}
}

func TestSummarizeDetectsStalls(t *testing.T) {
	stall := &sim.StallError{Now: 5 * dram.Microsecond, Stalled: time.Second, Pending: 3}
	results := []Result{{ID: "x", Err: fmt.Errorf("experiment x: %w", stall)}}
	sum := Summarize(results)
	if sum.Stalled != 1 {
		t.Fatalf("watchdog stall not detected: %+v", sum)
	}
}

// replayMitigations measures xz through MIRZA-500 on the replayer under
// opts, returning serviced ALERTs and mitigations plus the fault log.
func replayMitigations(t *testing.T, opts Options) (alerts, mitig int64, log *fault.Log) {
	t.Helper()
	r := NewRunner(opts)
	x := r.newExec()
	cfg, err := core.ForTRHD(500)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	mits, err := x.warmMirza("xz", cfg)
	if err != nil {
		t.Fatal(err)
	}
	asMit := make([]track.Mitigator, len(mits))
	for i, m := range mits {
		asMit[i] = m
	}
	_, measured, _, err := x.replayRun("xz", asMit, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range measured {
		alerts += s.Alerts
	}
	for _, m := range mits {
		mitig += m.Stats.Mitigations
	}
	return alerts, mitig, x.log
}

func TestEmptyPlanIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs are slow")
	}
	// A zero plan and a plan with only a seed (still empty: no rates) must
	// leave the whole pipeline untouched and deterministic.
	optsA := quickOpts()
	optsB := quickOpts()
	optsB.Faults = fault.Plan{Seed: 99}
	aAlerts, aMitig, aLog := replayMitigations(t, optsA)
	bAlerts, bMitig, bLog := replayMitigations(t, optsB)
	if aAlerts != bAlerts || aMitig != bMitig {
		t.Fatalf("empty plan changed outputs: alerts %d vs %d, mitigations %d vs %d",
			aAlerts, bAlerts, aMitig, bMitig)
	}
	if aLog.Total() != 0 || bLog.Total() != 0 {
		t.Fatalf("empty plans must inject nothing: %d / %d", aLog.Total(), bLog.Total())
	}
	if aMitig == 0 {
		t.Fatal("expected some mitigations at TRHD=500 (test is vacuous otherwise)")
	}
}

func TestFaultPlanDegradesMitigation(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs are slow")
	}
	clean := quickOpts()
	faulted := quickOpts()
	faulted.Faults = fault.Plan{Seed: 7, AlertDropRate: 1, DropACTs: 100000}
	cAlerts, cMitig, _ := replayMitigations(t, clean)
	fAlerts, fMitig, fLog := replayMitigations(t, faulted)
	if cAlerts == 0 || cMitig == 0 {
		t.Fatalf("clean run shows no mitigation activity (alerts=%d mitig=%d)", cAlerts, cMitig)
	}
	if fAlerts >= cAlerts {
		t.Errorf("dropping every ALERT did not reduce serviced alerts: %d vs %d", fAlerts, cAlerts)
	}
	if fMitig >= cMitig {
		t.Errorf("dropping every ALERT did not reduce mitigations: %d vs %d", fMitig, cMitig)
	}
	if fLog.Count(fault.AlertDrop) == 0 {
		t.Error("fault log recorded no alert drops")
	}
	// Same faulted plan twice: identical degraded outcome (determinism).
	fAlerts2, fMitig2, fLog2 := replayMitigations(t, faulted)
	if fAlerts != fAlerts2 || fMitig != fMitig2 || fLog.Total() != fLog2.Total() {
		t.Errorf("faulted run not deterministic: alerts %d/%d mitig %d/%d faults %d/%d",
			fAlerts, fAlerts2, fMitig, fMitig2, fLog.Total(), fLog2.Total())
	}
	if !reflect.DeepEqual(fLog.Events(), fLog2.Events()) {
		t.Error("fault event sequences differ between identical runs")
	}
}
