package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mirza/internal/fault"
)

// renderExperiment runs one experiment on a fresh Runner and returns the
// rendered table.
func renderExperiment(t *testing.T, id string, opts Options) string {
	t.Helper()
	exp, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	table, err := exp.Run(NewRunner(opts))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return table.Render()
}

// TestInterVMDeterminism pins the ISSUE's acceptance criterion for the
// multi-tenant scenario: the rendered table is a pure function of the
// options — independent of worker count — and reruns byte-identically.
func TestInterVMDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	opts := goldenOptions(nil, fault.Plan{})
	opts.Tenants = "xz:1+attack=edge:1"
	opts.Mitigations = []string{"prac", "mirza"}
	seq := renderExperiment(t, "intervm", opts)

	opts.Parallelism = 8
	par := renderExperiment(t, "intervm", opts)
	if seq != par {
		t.Errorf("-j 8 intervm table diverged from -j 1\nseq:\n%s\npar:\n%s", seq, par)
	}
	if again := renderExperiment(t, "intervm", opts); again != par {
		t.Errorf("intervm rerun diverged\nfirst:\n%s\nsecond:\n%s", par, again)
	}
}

// TestTraceReplayDeterminism: the same trace file replayed twice (and at
// -j 1 vs -j 8) renders byte-identically, and with no traces configured
// the experiment degrades to an informational table instead of failing.
func TestTraceReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	path := filepath.Join(t.TempDir(), "loop.trace")
	var body strings.Builder
	for i := 0; i < 64; i++ {
		// 64 lines striding 4KB apart, re-read in a loop by the generator.
		cmd := "READ"
		if i%4 == 3 {
			cmd = "WRITE"
		}
		fmt.Fprintf(&body, "0x%x %s %d\n", i*4096, cmd, i*5)
	}
	if err := os.WriteFile(path, []byte(body.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := goldenOptions(nil, fault.Plan{})
	opts.Cores = 4
	opts.TraceFiles = []string{path}
	opts.Mitigations = []string{"none", "prac"}
	seq := renderExperiment(t, "tracereplay", opts)

	opts.Parallelism = 8
	par := renderExperiment(t, "tracereplay", opts)
	if seq != par {
		t.Errorf("-j 8 tracereplay table diverged from -j 1\nseq:\n%s\npar:\n%s", seq, par)
	}
	if again := renderExperiment(t, "tracereplay", opts); again != par {
		t.Errorf("tracereplay rerun diverged\nfirst:\n%s\nsecond:\n%s", par, again)
	}

	opts.TraceFiles = nil
	if got := renderExperiment(t, "tracereplay", opts); got == "" {
		t.Error("empty TraceFiles should still render an informational table")
	}
}
