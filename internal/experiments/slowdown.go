package experiments

import (
	"fmt"

	"mirza/internal/attack"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register every mitigation policy
)

// buildPolicy resolves a registered mitigation policy for this run's seed.
// Table-I provisioning (windows, thresholds, timing, RFM BAT) lives in the
// policy's registry Descriptor, not here.
func (x *Exec) buildPolicy(policy string, trhd int, overrides map[string]string) (*track.Built, error) {
	return track.Build(policy, overrides, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     trhd,
		Seed:     x.r.opts.Seed,
	})
}

// runPolicy measures one registered policy's slowdown for one workload at a
// target TRHD, resolving construction, timing and RFM cadence through the
// mitigation registry.
func (x *Exec) runPolicy(name, policy string, trhd int) (slowdown float64, res *timingResult, err error) {
	base, err := x.Baseline(name)
	if err != nil {
		return 0, nil, err
	}
	b, err := x.buildPolicy(policy, trhd, nil)
	if err != nil {
		return 0, nil, err
	}
	res, err = x.runTiming(name, b.Timing(), b.RFMBAT(), b.Factory())
	if err != nil {
		return 0, nil, err
	}
	return slowdownVs(base, res), res, nil
}

// runMINTRFM measures the MINT+RFM slowdown and refresh power for one
// workload at a target TRHD.
func (x *Exec) runMINTRFM(name string, trhd int) (slowdown, refreshPower float64, err error) {
	sd, res, err := x.runPolicy(name, "mint-rfm", trhd)
	if err != nil {
		return 0, 0, err
	}
	return sd, 100 * float64(res.Stats.VictimRows) / float64(res.Stats.DemandRefreshRows), nil
}

// runPRAC measures the PRAC+ABO slowdown for one workload.
func (x *Exec) runPRAC(name string, trhd int) (slowdown float64, err error) {
	sd, _, err := x.runPolicy(name, "prac", trhd)
	return sd, err
}

// runMIRZA measures the MIRZA slowdown for one workload with a pre-warmed
// Region Count Table.
func (x *Exec) runMIRZA(name string, cfg core.Config) (slowdown float64, res *timingResult, err error) {
	base, err := x.Baseline(name)
	if err != nil {
		return 0, nil, err
	}
	warmed, err := x.warmMirza(name, cfg)
	if err != nil {
		return 0, nil, err
	}
	factory := func(sub int, sink track.Sink) track.Mitigator {
		// Reuse the warmed instance; redirect its mitigation events to
		// the channel's sink via a fresh wrapper is unnecessary — the
		// channel counts mitigations through its own sink, which the
		// warmed instance does not have. Count via stats instead.
		return warmed[sub]
	}
	res, err = x.runTiming(name, dram.DDR5(), 0, factory)
	if err != nil {
		return 0, nil, err
	}
	return slowdownVs(base, res), res, nil
}

// Fig3 reproduces Figure 3: slowdown and refresh power overhead of the
// proactive MINT+RFM baseline vs reactive PRAC+ABO at TRHD 500/1K/2K.
// One job per (TRHD, workload); each job runs the MINT and PRAC timing
// simulations back to back, as the sequential engine did.
func (r *Runner) Fig3() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig3",
		Title: "Slowdown and refresh power: MINT+RFM vs PRAC+ABO",
		Columns: []string{"TRHD", "MINT slowdown", "MINT refresh power",
			"PRAC slowdown", "paper (MINT sd/rp, PRAC sd)"},
	}
	paper := map[int]string{
		500:  "11.1% / 16.4%, 6.5%",
		1000: "5.8% / 8.2%, 6.5%",
		2000: "2.9% / 4.1%, 6.5%",
	}
	trhds := []int{500, 1000, 2000}
	type cell struct{ sd, rp, prac float64 }
	var js []job[cell]
	for _, trhd := range trhds {
		for _, spec := range specs {
			trhd, spec := trhd, spec
			js = append(js, job[cell]{
				id: fmt.Sprintf("fig3/trhd=%d/%s", trhd, spec.Name),
				run: func(x *Exec) (cell, error) {
					x.r.opts.Logf("fig3 %s TRHD=%d", spec.Name, trhd)
					sd, rp, err := x.runMINTRFM(spec.Name, trhd)
					if err != nil {
						return cell{}, err
					}
					prac, err := x.runPRAC(spec.Name, trhd)
					if err != nil {
						return cell{}, err
					}
					return cell{sd, rp, prac}, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for ti, trhd := range trhds {
		var sdSum, rpSum, pracSum float64
		for si := range specs {
			c := cells[ti*len(specs)+si]
			sdSum += c.sd
			rpSum += c.rp
			pracSum += c.prac
		}
		n := float64(len(specs))
		t.AddRow(d(int64(trhd)),
			f2(sdSum/n)+"%", f2(rpSum/n)+"%", f2(pracSum/n)+"%", paper[trhd])
	}
	return t, nil
}

// Fig11a reproduces Figure 11(a): per-workload slowdown of MIRZA (three
// configurations) and PRAC+ABO, normalized to the unprotected baseline.
// Per workload: three MIRZA jobs (TRHD 500/1K/2K) then one PRAC job.
func (r *Runner) Fig11a() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11a",
		Title:   "Slowdown of MIRZA and PRAC+ABO (% vs unprotected)",
		Columns: []string{"Workload", "MIRZA-500", "MIRZA-1K", "MIRZA-2K", "PRAC"},
	}
	const perSpec = 4
	var js []job[float64]
	for _, spec := range specs {
		spec := spec
		for _, trhd := range []int{500, 1000, 2000} {
			trhd := trhd
			js = append(js, job[float64]{
				id: fmt.Sprintf("fig11a/%s/mirza-%d", spec.Name, trhd),
				run: func(x *Exec) (float64, error) {
					x.r.opts.Logf("fig11a %s", spec.Name)
					cfg, _ := core.ForTRHD(trhd)
					cfg.Seed = x.r.opts.Seed
					sd, _, err := x.runMIRZA(spec.Name, cfg)
					return sd, err
				},
			})
		}
		js = append(js, job[float64]{
			id: "fig11a/" + spec.Name + "/prac",
			run: func(x *Exec) (float64, error) {
				return x.runPRAC(spec.Name, 1000)
			},
		})
	}
	vals, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, perSpec)
	for si, spec := range specs {
		row := []string{spec.Name}
		for c := 0; c < perSpec; c++ {
			sums[c] += vals[si*perSpec+c]
			row = append(row, f2(vals[si*perSpec+c])+"%")
		}
		t.AddRow(row...)
	}
	n := float64(len(specs))
	t.AddRow("Average", f2(sums[0]/n)+"%", f2(sums[1]/n)+"%", f2(sums[2]/n)+"%", f2(sums[3]/n)+"%")
	t.Notes = append(t.Notes, "paper averages: MIRZA 1.43% / 0.36% / 0.05%, PRAC 6.5%")
	return t, nil
}

// Table5 reproduces Table V: slowdown of Naive MIRZA (no coarse-grained
// filtering: FTH=0) as the MIRZA-Q size varies, for MINT windows 24/48/96.
// One job per (MINT-W, Q, workload) timing simulation.
func (r *Runner) Table5() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	queueSizes := []int{1, 2, 4, 8}
	windows := []int{24, 48, 96}
	t := &Table{
		ID:      "table5",
		Title:   "Naive MIRZA (MINT+ABO, no filtering) slowdown vs MIRZA-Q size",
		Columns: []string{"MINT-W", "Q=1", "Q=2", "Q=4", "Q=8", "paper (Q=4)"},
	}
	paper := map[int]string{24: "10.95%", 48: "5.81%", 96: "3.08%"}
	var js []job[float64]
	for _, w := range windows {
		for _, q := range queueSizes {
			for _, spec := range specs {
				w, q, spec := w, q, spec
				js = append(js, job[float64]{
					id: fmt.Sprintf("table5/w=%d/q=%d/%s", w, q, spec.Name),
					run: func(x *Exec) (float64, error) {
						x.r.opts.Logf("table5 %s W=%d Q=%d", spec.Name, w, q)
						base, err := x.Baseline(spec.Name)
						if err != nil {
							return 0, err
						}
						cfg, err := core.ForTRHD(1000)
						if err != nil {
							return 0, err
						}
						cfg.FTH = 0 // naive: every activation participates
						cfg.MINTWindow = w
						cfg.QueueSize = q
						cfg.Seed = x.r.opts.Seed
						// Validate here where an error can be returned; inside the
						// factory closure MustNew can only panic (the job engine's
						// recovery is the backstop for that).
						if err := cfg.Validate(); err != nil {
							return 0, fmt.Errorf("table5 W=%d Q=%d: %w", w, q, err)
						}
						factory := func(sub int, sink track.Sink) track.Mitigator {
							c := cfg
							c.Seed += uint64(sub) * 131
							return core.MustNew(c, sink)
						}
						res, err := x.runTiming(spec.Name, dram.DDR5(), 0, factory)
						if err != nil {
							return 0, err
						}
						return slowdownVs(base, res), nil
					},
				})
			}
		}
	}
	vals, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, w := range windows {
		row := []string{d(int64(w))}
		for range queueSizes {
			var sum float64
			for range specs {
				sum += vals[i]
				i++
			}
			row = append(row, f2(sum/float64(len(specs)))+"%")
		}
		row = append(row, paper[w])
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Q=1 column is 64-152%: a single-entry queue forces an ALERT for every selection")
	return t, nil
}

// Table9 reproduces Table IX: MIRZA's slowdown and remaining-activation
// fraction at TRHD=1K as the (MINT-W, FTH) pair varies. One job per
// (MINT-W, workload): the timing run plus the escape-fraction replay.
func (r *Runner) Table9() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	model := security.DefaultMINTModel()
	t := &Table{
		ID:      "table9",
		Title:   "MIRZA sensitivity at TRHD=1K: FTH vs MINT-W",
		Columns: []string{"MINT-W", "FTH", "SRAM/Bank (B)", "Slowdown (%)", "Remaining ACTs (%)", "paper (sd/rem)"},
	}
	paper := map[int]string{4: "0.10/0.06", 8: "0.13/0.21", 12: "0.36/0.88", 16: "0.60/2.29"}
	windows := []int{4, 8, 12, 16}
	cfgs := make([]core.Config, len(windows))
	for i, w := range windows {
		cfg, _ := core.ForTRHD(1000)
		cfg.MINTWindow = w
		if w == 12 {
			// The paper's default configuration.
			cfg.FTH = 1500
		} else {
			cfg.FTH = security.FTHForTRHD(1000, w, cfg.QueueSize, cfg.QTH, model)
		}
		cfg.Seed = r.opts.Seed
		cfgs[i] = cfg
	}
	type cell struct {
		sd            float64
		acts, escaped int64
	}
	var js []job[cell]
	for wi, w := range windows {
		cfg := cfgs[wi]
		for _, spec := range specs {
			w, cfg, spec := w, cfg, spec
			js = append(js, job[cell]{
				id: fmt.Sprintf("table9/w=%d/%s", w, spec.Name),
				run: func(x *Exec) (cell, error) {
					x.r.opts.Logf("table9 %s W=%d FTH=%d", spec.Name, w, cfg.FTH)
					sd, _, err := x.runMIRZA(spec.Name, cfg)
					if err != nil {
						return cell{}, err
					}
					// Escape fraction from a replay pass.
					mits, err := x.warmMirza(spec.Name, cfg)
					if err != nil {
						return cell{}, err
					}
					asMit := make([]track.Mitigator, len(mits))
					for i, m := range mits {
						asMit[i] = m
					}
					if _, _, _, err := x.replayRun(spec.Name, asMit, nil); err != nil {
						return cell{}, err
					}
					c := cell{sd: sd}
					for _, m := range mits {
						c.acts += m.Stats.ACTs
						c.escaped += m.Stats.Escaped
					}
					return c, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for wi, w := range windows {
		var sdSum float64
		var acts, escaped int64
		for si := range specs {
			c := cells[wi*len(specs)+si]
			sdSum += c.sd
			acts += c.acts
			escaped += c.escaped
		}
		n := float64(len(specs))
		t.AddRow(d(int64(w)), d(int64(cfgs[wi].FTH)), d(int64(cfgs[wi].SRAMBytesPerBank())),
			f2(sdSum/n), f2(100*float64(escaped)/float64(acts)), paper[w])
	}
	t.Notes = append(t.Notes,
		"higher FTH filters more but needs a smaller W to stay safe at TRHD=1K; lower W raises ALERT frequency")
	return t, nil
}

// Table13 reproduces Table XIII (Appendix A): average and worst-case
// (performance-attack) slowdown for PRAC, MINT+RFM and MIRZA. One job per
// (TRHD, workload) running the three trackers back to back.
func (r *Runner) Table13() (*Table, error) {
	specs, err := r.opts.workloadSpecs()
	if err != nil {
		return nil, err
	}
	pm := attack.NewPerfAttackModel(dram.DDR5())
	t := &Table{
		ID:      "table13",
		Title:   "Average and worst-case slowdown (Appendix A)",
		Columns: []string{"TRHD", "Tracker", "Perf-attack slowdown", "Average slowdown", "paper (atk/avg)"},
	}
	paper := map[string]string{
		"500/PRAC": "1.2x/6.5%", "500/MINT": "1.4x/10.95%", "500/MIRZA": "2.25x/1.43%",
		"1000/PRAC": "1.1x/6.5%", "1000/MINT": "1.2x/5.81%", "1000/MIRZA": "1.8x/0.36%",
		"2000/PRAC": "1.05x/6.5%", "2000/MINT": "1.1x/3.08%", "2000/MIRZA": "1.6x/0.05%",
	}
	trhds := []int{500, 1000, 2000}
	type cell struct{ prac, mint, mirza float64 }
	cfgs := make([]core.Config, len(trhds))
	for i, trhd := range trhds {
		cfg, _ := core.ForTRHD(trhd)
		cfg.Seed = r.opts.Seed
		cfgs[i] = cfg
	}
	var js []job[cell]
	for ti, trhd := range trhds {
		cfg := cfgs[ti]
		for _, spec := range specs {
			trhd, cfg, spec := trhd, cfg, spec
			js = append(js, job[cell]{
				id: fmt.Sprintf("table13/trhd=%d/%s", trhd, spec.Name),
				run: func(x *Exec) (cell, error) {
					x.r.opts.Logf("table13 %s TRHD=%d", spec.Name, trhd)
					prac, err := x.runPRAC(spec.Name, trhd)
					if err != nil {
						return cell{}, err
					}
					mint, _, err := x.runMINTRFM(spec.Name, trhd)
					if err != nil {
						return cell{}, err
					}
					mirza, _, err := x.runMIRZA(spec.Name, cfg)
					if err != nil {
						return cell{}, err
					}
					return cell{prac, mint, mirza}, nil
				},
			})
		}
	}
	cells, err := runJobs(r, js)
	if err != nil {
		return nil, err
	}
	for ti, trhd := range trhds {
		var pracSum, mintSum, mirzaSum float64
		for si := range specs {
			c := cells[ti*len(specs)+si]
			pracSum += c.prac
			mintSum += c.mint
			mirzaSum += c.mirza
		}
		n := float64(len(specs))
		pracAtk, mintAtk := attack.BaselineAttackSlowdowns(trhd)
		key := fmt.Sprintf("%d/", trhd)
		t.AddRow(d(int64(trhd)), "PRAC+ABO", fmt.Sprintf("%.2fx", pracAtk), f2(pracSum/n)+"%", paper[key+"PRAC"])
		t.AddRow("", "MINT+RFM", fmt.Sprintf("%.2fx", mintAtk), f2(mintSum/n)+"%", paper[key+"MINT"])
		t.AddRow("", "MIRZA", fmt.Sprintf("%.2fx", pm.Slowdown(cfgs[ti].MINTWindow)), f2(mirzaSum/n)+"%", paper[key+"MIRZA"])
	}
	return t, nil
}
