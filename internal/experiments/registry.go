package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment couples an experiment ID with its generator.
type Experiment struct {
	ID          string
	Description string
	Run         func(r *Runner) (*Table, error)
}

// All returns every experiment, in the paper's order.
func All() []Experiment {
	return []Experiment{
		{"table1", "DDR5 timing parameters with the PRAC overlay", (*Runner).Table1},
		{"table2", "TRHD tolerated by proactive MINT/Mithril vs mitigation rate", (*Runner).Table2},
		{"fig3", "slowdown and refresh power of MINT+RFM vs PRAC+ABO", (*Runner).Fig3},
		{"table4", "workload characteristics (measured vs published)", (*Runner).Table4},
		{"table5", "Naive MIRZA slowdown vs MIRZA-Q size", (*Runner).Table5},
		{"fig6", "average ACTs/subarray per tREFW vs worst case", (*Runner).Fig6},
		{"table6", "coarse-grained filtering: sequential vs strided R2SA", (*Runner).Table6},
		{"table7", "MIRZA configurations and SRAM budget per TRHD", (*Runner).Table7},
		{"table8", "mitigation overhead of MINT vs MIRZA", (*Runner).Table8},
		{"table9", "MIRZA sensitivity: FTH vs MINT-W at TRHD=1K", (*Runner).Table9},
		{"table10", "relative area of MIRZA vs PRAC per subarray", (*Runner).Table10},
		{"fig11a", "per-workload slowdown of MIRZA and PRAC", (*Runner).Fig11a},
		{"fig11b", "ALERTs per 100xtREFI for MIRZA and PRAC", (*Runner).Fig11b},
		{"table11", "performance-attack throughput model (Figure 12 kernel)", (*Runner).Table11},
		{"fig13", "refresh power overhead of MINT vs MIRZA", (*Runner).Fig13},
		{"table12", "TRR/MINT/MIRZA at the current threshold (4.8K)", (*Runner).Table12},
		{"table13", "average and worst-case slowdown (Appendix A)", (*Runner).Table13},
		{"fig1c", "headline summary: mitigations vs MINT, area vs PRAC", (*Runner).Fig1c},
		{"baselines", "baseline defenses (Graphene, Oracle, Loaded Dice) vs PRAC and MINT", (*Runner).Baselines},
		{"intervm", "multi-tenant inter-VM scenario: per-tenant slowdown and attributed flips", (*Runner).InterVM},
		{"tracereplay", "recorded traces (DRAMSim3/NDJSON) replayed through the timing simulator", (*Runner).TraceReplay},
	}
}

// Lookup returns the experiment with the given ID. Matching is
// case-insensitive ("Table8" and "TABLE8" find "table8"); on a miss the
// error lists every known experiment with its description.
func Lookup(id string) (Experiment, error) {
	all := All()
	for _, e := range all {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiments: unknown id %q; known experiments:", id)
	for _, e := range all {
		fmt.Fprintf(&sb, "\n  %-8s %s", e.ID, e.Description)
	}
	return Experiment{}, fmt.Errorf("%s", sb.String())
}
