package experiments

import (
	"strings"
	"testing"

	"mirza/internal/dram"
)

// quickRunner returns a Runner with one small workload and tiny windows so
// every experiment path executes in CI time.
func quickRunner() *Runner {
	return NewRunner(Options{
		Seed:              1,
		Warmup:            50 * dram.Microsecond,
		Measure:           150 * dram.Microsecond,
		ReplayWindows:     2,
		CalibrationWindow: 150 * dram.Microsecond,
		Workloads:         []string{"xz"},
	})
}

func TestStaticExperiments(t *testing.T) {
	r := quickRunner()
	for _, id := range []string{"table1", "table2", "table7", "table10", "table11", "table12"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		table, err := exp.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 || len(table.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if !strings.Contains(table.Render(), table.Title) {
			t.Errorf("%s: render lacks title", id)
		}
	}
}

func TestTable7Values(t *testing.T) {
	table, err := quickRunner().Table7()
	if err != nil {
		t.Fatal(err)
	}
	// The SRAM column must carry the paper's 116/196/340 bytes.
	want := map[string]string{"2000": "116", "1000": "196", "500": "340"}
	for _, row := range table.Rows {
		if sram, ok := want[row[0]]; ok && row[4] != sram {
			t.Errorf("TRHD=%s: SRAM %s, want %s", row[0], row[4], sram)
		}
	}
}

func TestBaselineCachingAndCalibration(t *testing.T) {
	r := quickRunner()
	b1, err := r.Baseline("xz")
	if err != nil {
		t.Fatal(err)
	}
	if b1.IPS <= 0 || b1.MPKI <= 0 {
		t.Fatalf("bad baseline: %+v", b1)
	}
	b2, _ := r.Baseline("xz")
	if b1 != b2 {
		t.Error("baseline should be cached (same pointer)")
	}
	if _, ok := r.mlp["xz"]; !ok {
		t.Error("calibration should have recorded an MLP")
	}
	if _, err := r.Baseline("nosuchworkload"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestWorkloadExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("replay experiments are slow")
	}
	r := quickRunner()
	for _, id := range []string{"table4", "fig6"} {
		exp, _ := Lookup(id)
		table, err := exp.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) < 2 {
			t.Errorf("%s: too few rows", id)
		}
	}
}

func TestSlowdownExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments are slow")
	}
	x := quickRunner().newExec()
	sd, rp, err := x.runMINTRFM("xz", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sd < -2 || sd > 60 {
		t.Errorf("MINT+RFM slowdown = %v%%, implausible", sd)
	}
	if rp <= 0 || rp > 50 {
		t.Errorf("refresh power = %v%%, implausible", rp)
	}
	prac, err := x.runPRAC("xz", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prac < -2 || prac > 40 {
		t.Errorf("PRAC slowdown = %v%%", prac)
	}
}

func TestBaselinesExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments are slow")
	}
	table, err := quickRunner().Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(baselinePolicies) {
		t.Fatalf("got %d rows, want one per policy (%d)", len(table.Rows), len(baselinePolicies))
	}
	for i, policy := range baselinePolicies {
		if got := table.Rows[i][0]; !strings.Contains(strings.ToLower(got), policy[:4]) {
			t.Errorf("row %d policy = %q, want %q", i, got, policy)
		}
		if bound := table.Rows[i][5]; bound == "0" {
			t.Errorf("%s: zero security bound", policy)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil {
		t.Error("bogus id should error")
	}
	if len(All()) != 21 {
		t.Errorf("expected 21 experiments, got %d", len(All()))
	}
}

func TestRenderAlignment(t *testing.T) {
	table := &Table{
		ID: "x", Title: "t",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"row1", "2"}, {"r", "22222"}},
		Notes:   []string{"hello"},
	}
	out := table.Render()
	if !strings.Contains(out, "note: hello") {
		t.Error("notes missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Error("too few lines")
	}
}
