package attack

import (
	"mirza/internal/dram"
)

// PerfAttackModel is the analytic ACT-throughput model of Section IX: a
// benign application striping reads over 16 banks (one activation per 3ns
// of bus time) shares the channel with an attacker running the Figure 12
// kernel — a circular pattern inside one primed RCT region that forces one
// ALERT per MINT-W escaping activations, doing 3 activations in each ALERT
// prologue and W-3 outside it (paced by tRC on the attacked bank).
type PerfAttackModel struct {
	Timing dram.Timing
	// BenignACTTime is the benign workload's steady-state time per
	// activation when unattacked (3ns: bus-limited).
	BenignACTTime dram.Time
}

// NewPerfAttackModel returns the model with the paper's parameters.
func NewPerfAttackModel(t dram.Timing) PerfAttackModel {
	return PerfAttackModel{Timing: t, BenignACTTime: 3 * dram.Nanosecond}
}

// AlertOnlySlowdown returns the slowdown of the benign application when the
// channel sustains back-to-back ALERTs (Section IX.A): the application can
// activate during the first prologue portion (180ns - tRC) and stalls for
// the remaining 350ns, i.e. ~44.7 activations per 530ns instead of one per
// 3ns — a ~3.8x slowdown.
func (m PerfAttackModel) AlertOnlySlowdown() float64 {
	usable := m.Timing.ABOPrologue - m.Timing.TRC
	period := m.Timing.ALERTLatency()
	actsPerPeriod := float64(usable) / float64(m.BenignACTTime)
	base := float64(period) / float64(m.BenignACTTime)
	return base / actsPerPeriod
}

// RelativeThroughput returns the benign application's ACT throughput under
// the Figure 12 attack with MINT window w, relative to its unattacked
// throughput (Table XI: ~63%/56%/45% for W = 16/12/8).
func (m PerfAttackModel) RelativeThroughput(w int) float64 {
	if w < 4 {
		w = 4
	}
	t := m.Timing
	// One attack period: the 530ns ALERT (attacker lands 3 prologue ACTs)
	// plus W-3 attacker activations paced at tRC on its bank.
	outside := dram.Time(w-3) * t.TRC
	period := t.ALERTLatency() + outside

	// Benign activations: during the usable prologue, plus the outside
	// phase minus the attacker's own bus slots.
	prologueActs := float64(t.ABOPrologue-t.TRC) / float64(m.BenignACTTime)
	outsideActs := float64(outside-dram.Time(w-3)*m.BenignACTTime) / float64(m.BenignACTTime)
	unattacked := float64(period) / float64(m.BenignACTTime)
	return (prologueActs + outsideActs) / unattacked
}

// Slowdown returns the worst-case slowdown factor under the performance
// attack (the reciprocal of RelativeThroughput).
func (m PerfAttackModel) Slowdown(w int) float64 {
	rt := m.RelativeThroughput(w)
	if rt <= 0 {
		return 0
	}
	return 1 / rt
}

// PrimingACTs returns the number of activations the Figure 12 kernel spends
// priming the RCT region counter past FTH, and PrimingFraction that cost as
// a fraction of the refresh window's activation budget (the paper notes it
// is under 1% of tREFW).
func PrimingACTs(fth int) int { return fth + 1 }

// PrimingFraction returns priming cost relative to the single-bank
// activation budget of one tREFW.
func PrimingFraction(t dram.Timing, fth int) float64 {
	return float64(PrimingACTs(fth)) / float64(t.MaxACTsPerBankPerTREFW())
}

// BaselineAttackSlowdowns returns the Appendix A (Table XIII) worst-case
// slowdown factors for the PRAC+ABO and MINT+RFM baselines at a target
// TRHD. These are closed forms calibrated to the paper's reported points
// (PRAC: 1.2x/1.1x/1.05x and MINT+RFM: 1.4x/1.2x/1.1x at 500/1K/2K): both
// designs' attack overhead halves as the threshold doubles because the
// attacker needs proportionally more activations per forced stall.
func BaselineAttackSlowdowns(trhd int) (prac, mintRFM float64) {
	if trhd <= 0 {
		return 1, 1
	}
	return 1 + 100/float64(trhd), 1 + 200/float64(trhd)
}
