package attack

import (
	"testing"

	"mirza/internal/dram"
)

func TestAlertOnlySlowdown(t *testing.T) {
	m := NewPerfAttackModel(dram.DDR5())
	// Section IX.A: ~44.7 ACTs per 530ns instead of 1 per 3ns = ~3.8x.
	s := m.AlertOnlySlowdown()
	if s < 3.5 || s > 4.2 {
		t.Errorf("ALERT-saturated slowdown = %.2f, want ~3.8x", s)
	}
}

func TestRelativeThroughputMatchesTableXI(t *testing.T) {
	m := NewPerfAttackModel(dram.DDR5())
	cases := []struct {
		w    int
		want float64 // Table XI
	}{
		{16, 0.634},
		{12, 0.559},
		{8, 0.445},
	}
	for _, c := range cases {
		got := m.RelativeThroughput(c.w)
		if got < c.want-0.05 || got > c.want+0.05 {
			t.Errorf("W=%d: relative throughput %.3f, want %.3f +/- 0.05", c.w, got, c.want)
		}
	}
	// Monotone: larger windows leave more throughput.
	if m.RelativeThroughput(16) <= m.RelativeThroughput(8) {
		t.Error("throughput must grow with W")
	}
}

func TestSlowdownMatchesTableXI(t *testing.T) {
	m := NewPerfAttackModel(dram.DDR5())
	cases := []struct {
		w    int
		want float64
	}{
		{16, 1.6}, {12, 1.8}, {8, 2.25},
	}
	for _, c := range cases {
		got := m.Slowdown(c.w)
		if got < c.want*0.9 || got > c.want*1.12 {
			t.Errorf("W=%d: slowdown %.2fx, want ~%.2fx", c.w, got, c.want)
		}
	}
}

func TestPrimingCostIsSmall(t *testing.T) {
	tm := dram.DDR5()
	// Section IX.B: priming the RCT past FTH costs less than 1% of the
	// refresh window's activation budget.
	for _, fth := range []int{660, 1500, 3330} {
		if f := PrimingFraction(tm, fth); f >= 0.01 {
			t.Errorf("FTH=%d: priming fraction %.4f, want < 1%%", fth, f)
		}
	}
	if PrimingACTs(1500) != 1501 {
		t.Error("priming needs FTH+1 activations")
	}
}

func TestBaselineAttackSlowdowns(t *testing.T) {
	// Appendix A, Table XIII.
	cases := []struct {
		trhd       int
		prac, mint float64
	}{
		{500, 1.2, 1.4},
		{1000, 1.1, 1.2},
		{2000, 1.05, 1.1},
	}
	for _, c := range cases {
		prac, mint := BaselineAttackSlowdowns(c.trhd)
		if prac != c.prac || mint != c.mint {
			t.Errorf("TRHD=%d: got %.2f/%.2f, want %.2f/%.2f", c.trhd, prac, mint, c.prac, c.mint)
		}
	}
	// MIRZA's worst case (Table XIII) comes from the Table XI model and
	// must exceed the baselines' — the documented trade-off.
	m := NewPerfAttackModel(dram.DDR5())
	prac, mint := BaselineAttackSlowdowns(1000)
	if s := m.Slowdown(12); s <= mint || s <= prac {
		t.Errorf("MIRZA attack slowdown %.2f should exceed the baselines %.2f/%.2f", s, prac, mint)
	}
}
