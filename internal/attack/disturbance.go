// Package attack implements the adversarial side of the evaluation: a
// bank-level attack simulator that drives worst-case activation streams
// into any track.Mitigator at DRAM-speed-limited rates (honoring tRC, REF
// and the ABO protocol), Rowhammer attack patterns (single-sided,
// double-sided, many-sided circular, queue-feinting, and the RCT-priming
// performance-attack kernel of Figure 12), a victim-centric disturbance
// tracker that measures the security metric of Section II.A — the maximum
// number of unmitigated activations any row accrues — and the analytic
// performance-attack models of Section IX and Appendix A.
package attack

import (
	"mirza/internal/dram"
)

// victimState accumulates per-victim disturbance: activations by the
// physically adjacent aggressor on each side since the victim was last
// refreshed (by demand refresh or by a mitigation's victim refresh).
type victimState struct {
	left    int  // ACTs by the aggressor at physical index -1
	right   int  // ACTs by the aggressor at physical index +1
	flipped bool // this episode already crossed the row's threshold
}

// Disturbance tracks unmitigated activations victim-by-victim for one
// bank. A successful attack is one where some victim's single side exceeds
// the single-sided threshold, or both sides exceed the double-sided
// threshold (the paper's success criterion).
type Disturbance struct {
	g       dram.Geometry
	mapping dram.R2SAMapping
	victims map[int]*victimState // keyed by logical victim row

	maxSingle int // max over victims of max(left, right)
	maxDouble int // max over victims of min(left, right)

	// threshold, when set, gives each victim row its own double-sided
	// Rowhammer threshold (the fault harness's weak-row model plugs in
	// here). flips counts victims whose live disturbance crossed their
	// threshold — double-sided at thr, or single-sided at 2*thr — each
	// counted once per charge/refresh episode.
	threshold func(row int) int
	flips     int

	// flipObserver, when set, is called once per flip episode with the
	// flipped victim's logical row. Multi-tenant studies attribute the
	// flip here: the row's physical address identifies the tenant whose
	// data was corrupted.
	flipObserver func(row int)
}

// NewDisturbance creates a tracker for one bank.
func NewDisturbance(g dram.Geometry, mapping dram.R2SAMapping) *Disturbance {
	return &Disturbance{g: g, mapping: mapping, victims: make(map[int]*victimState)}
}

// SetRowThreshold installs a per-victim-row threshold function used to
// count online bit flips (see Flips). Pass nil to disable flip counting.
func (d *Disturbance) SetRowThreshold(fn func(row int) int) { d.threshold = fn }

// SetFlipObserver installs a callback invoked with the victim's logical
// row on every flip episode counted by Flips. Pass nil to remove it.
func (d *Disturbance) SetFlipObserver(fn func(row int)) { d.flipObserver = fn }

// OnActivate records an activation of an aggressor row.
func (d *Disturbance) OnActivate(row int) {
	sa := d.g.Subarray(d.mapping, row)
	idx := d.g.PhysicalIndex(d.mapping, row)
	if idx+1 < d.g.SubarrayRows {
		vr := d.g.RowAt(d.mapping, sa, idx+1)
		v := d.victim(vr)
		v.left++ // the aggressor sits on this victim's left side
		d.update(vr, v)
	}
	if idx-1 >= 0 {
		vr := d.g.RowAt(d.mapping, sa, idx-1)
		v := d.victim(vr)
		v.right++
		d.update(vr, v)
	}
}

// OnRefreshRow clears the disturbance of a refreshed victim row.
func (d *Disturbance) OnRefreshRow(row int) {
	delete(d.victims, row)
}

// OnMitigate clears the victims refreshed by mitigating aggressor row:
// two rows on either side (Section V.A).
func (d *Disturbance) OnMitigate(row int) {
	for dist := 1; dist <= 2; dist++ {
		for _, v := range d.g.PhysicalNeighbors(d.mapping, row, dist) {
			delete(d.victims, v)
		}
	}
}

func (d *Disturbance) victim(row int) *victimState {
	v, ok := d.victims[row]
	if !ok {
		v = &victimState{}
		d.victims[row] = v
	}
	return v
}

func (d *Disturbance) update(row int, v *victimState) {
	single := v.left
	if v.right > single {
		single = v.right
	}
	if single > d.maxSingle {
		d.maxSingle = single
	}
	double := v.left
	if v.right < double {
		double = v.right
	}
	if double > d.maxDouble {
		d.maxDouble = double
	}
	if d.threshold != nil && !v.flipped {
		thr := d.threshold(row)
		if thr > 0 && (double >= thr || single >= 2*thr) {
			v.flipped = true
			d.flips++
			if d.flipObserver != nil {
				d.flipObserver(row)
			}
		}
	}
}

// MaxSingleSided returns the highest one-sided unmitigated activation count
// any victim has experienced; it must stay below the single-sided
// Rowhammer threshold for the design to be secure.
func (d *Disturbance) MaxSingleSided() int { return d.maxSingle }

// MaxDoubleSided returns the highest per-side count any victim accrued
// from both sides simultaneously; it must stay below the double-sided
// threshold.
func (d *Disturbance) MaxDoubleSided() int { return d.maxDouble }

// TrackedVictims returns the number of victims with live disturbance.
func (d *Disturbance) TrackedVictims() int { return len(d.victims) }

// Flips returns the number of victim-row flip episodes observed so far: a
// victim crossing its per-row threshold counts once until a refresh or
// mitigation recharges it. Always 0 unless SetRowThreshold was called.
func (d *Disturbance) Flips() int { return d.flips }
