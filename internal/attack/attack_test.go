package attack

import (
	"testing"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
)

func mirzaSim(t *testing.T, trhd int, seed uint64) *BankSim {
	t.Helper()
	cfg, err := core.ForTRHD(trhd)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	return NewBankSim(BankSimConfig{
		Geometry: cfg.Geometry,
		Timing:   dram.DDR5(),
		Mapping:  cfg.Mapping,
		Bank:     0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return core.MustNew(cfg, sink)
		},
	})
}

func TestDisturbanceTracking(t *testing.T) {
	g := dram.Default()
	d := NewDisturbance(g, dram.StridedR2SA)
	agg := g.RowAt(dram.StridedR2SA, 0, 100)
	for i := 0; i < 50; i++ {
		d.OnActivate(agg)
	}
	if d.MaxSingleSided() != 50 {
		t.Fatalf("single-sided = %d, want 50", d.MaxSingleSided())
	}
	if d.MaxDoubleSided() != 0 {
		t.Fatalf("double-sided = %d, want 0 for a single aggressor", d.MaxDoubleSided())
	}
	// The other aggressor of a double-sided pair.
	agg2 := g.RowAt(dram.StridedR2SA, 0, 102)
	for i := 0; i < 30; i++ {
		d.OnActivate(agg2)
	}
	if d.MaxDoubleSided() != 30 {
		t.Errorf("double-sided = %d, want 30 (min of 50/30)", d.MaxDoubleSided())
	}
	// Mitigating agg refreshes the shared victim; new activity counts from 0.
	d.OnMitigate(agg)
	if d.TrackedVictims() != 0 {
		// agg's victims at distance 1 and 2 cover rows 98,99,101,102's..
		// victim rows 99,101 (dist 1) and 98,102 (dist 2); agg2's victims
		// 101,103 -- 103 remains? mitigation clears 98,99,101,102.
		for _, v := range []int{103} {
			_ = v
		}
	}
	// Refreshing both victims resets their live counts: subsequent
	// activations accumulate from zero, so the high-water mark must not
	// grow past the pre-refresh value until the count rebuilds.
	d2 := NewDisturbance(g, dram.StridedR2SA)
	for i := 0; i < 5; i++ {
		d2.OnActivate(agg)
	}
	d2.OnRefreshRow(g.RowAt(dram.StridedR2SA, 0, 99))
	d2.OnRefreshRow(g.RowAt(dram.StridedR2SA, 0, 101))
	for i := 0; i < 3; i++ {
		d2.OnActivate(agg)
	}
	if d2.MaxSingleSided() != 5 {
		t.Errorf("high-water mark = %d, want 5 (refresh resets live counts)", d2.MaxSingleSided())
	}
}

func TestPatternConstructors(t *testing.T) {
	g := dram.Default()
	m := dram.StridedR2SA

	ds := DoubleSided(g, m, 3, 500)
	rows := ds.Rows()
	if len(rows) != 2 {
		t.Fatal("double-sided needs 2 rows")
	}
	if g.PhysicalIndex(m, rows[0]) != 499 || g.PhysicalIndex(m, rows[1]) != 501 {
		t.Errorf("aggressors at %d/%d, want 499/501",
			g.PhysicalIndex(m, rows[0]), g.PhysicalIndex(m, rows[1]))
	}

	c := Circular(g, m, 5, 32)
	seen := map[int]bool{}
	for _, r := range c.Rows() {
		if g.Subarray(m, r) != 5 {
			t.Fatal("circular rows must share a subarray (RCT region)")
		}
		idx := g.PhysicalIndex(m, r)
		if seen[idx] {
			t.Fatal("duplicate physical index")
		}
		seen[idx] = true
	}

	// Rotation cycles.
	rot := NewRotation("x", 1, 2, 3)
	got := []int{rot.Next(), rot.Next(), rot.Next(), rot.Next()}
	if got[0] != 1 || got[3] != 1 {
		t.Errorf("rotation order: %v", got)
	}
}

// TestMIRZASecureAgainstDoubleSided is the paper's core security claim: a
// double-sided attack at full DRAM speed for multiple refresh windows must
// never push any victim's per-side unmitigated count past the SafeTRHD
// bound of Section VI.B.
func TestMIRZASecureAgainstDoubleSided(t *testing.T) {
	model := security.DefaultMINTModel()
	for _, trhd := range []int{500, 1000, 2000} {
		cfg, _ := core.ForTRHD(trhd)
		bound := security.SafeTRHD(cfg, model)
		for seed := uint64(0); seed < 3; seed++ {
			sim := mirzaSim(t, trhd, seed)
			res := sim.RunWindows(DoubleSided(cfg.Geometry, cfg.Mapping, 7, 500), 2)
			if res.MaxDoubleSided >= trhd {
				t.Errorf("TRHD=%d seed=%d: double-sided reached %d unmitigated ACTs (>= target %d): %v",
					trhd, seed, res.MaxDoubleSided, trhd, res)
			}
			if res.MaxDoubleSided >= bound {
				t.Errorf("TRHD=%d seed=%d: exceeded analytic bound %d: %v", trhd, seed, bound, res)
			}
			if res.Alerts == 0 {
				t.Errorf("TRHD=%d: attack triggered no ALERTs", trhd)
			}
		}
	}
}

func TestMIRZASecureAgainstSingleSided(t *testing.T) {
	model := security.DefaultMINTModel()
	cfg, _ := core.ForTRHD(1000)
	bound := security.SafeTRHS(cfg, model)
	sim := mirzaSim(t, 1000, 11)
	res := sim.RunWindows(SingleSided(cfg.Geometry, cfg.Mapping, 3, 700), 2)
	if res.MaxSingleSided >= bound {
		t.Errorf("single-sided reached %d, analytic bound %d: %v", res.MaxSingleSided, bound, res)
	}
}

func TestMIRZASecureAgainstCircular(t *testing.T) {
	// The circular pattern (Section II.F) keeps the whole region hot, so
	// every activation escapes filtering; MIRZA must still cap each row.
	cfg, _ := core.ForTRHD(1000)
	model := security.DefaultMINTModel()
	bound := security.SafeTRHD(cfg, model)
	for _, k := range []int{8, 32, 128} {
		sim := mirzaSim(t, 1000, uint64(100+k))
		res := sim.RunWindows(Circular(cfg.Geometry, cfg.Mapping, 9, k), 2)
		if res.MaxDoubleSided >= bound {
			t.Errorf("circular-%d: max double-sided %d >= bound %d", k, res.MaxDoubleSided, bound)
		}
		if res.MaxSingleSided >= security.SafeTRHS(cfg, model) {
			t.Errorf("circular-%d: max single-sided %d >= bound", k, res.MaxSingleSided)
		}
	}
}

func TestMIRZASecureAgainstFeintingAndEdge(t *testing.T) {
	cfg, _ := core.ForTRHD(500) // 256 regions: edge rows exist
	model := security.DefaultMINTModel()
	bound := security.SafeTRHD(cfg, model)

	sim := mirzaSim(t, 500, 21)
	res := sim.RunWindows(Feinting(cfg.Geometry, cfg.Mapping, 4, cfg.QueueSize), 2)
	if res.MaxDoubleSided >= bound {
		t.Errorf("feinting: %d >= bound %d", res.MaxDoubleSided, bound)
	}

	sim = mirzaSim(t, 500, 22)
	res = sim.RunWindows(EdgeDoubleSided(cfg.Geometry, cfg.Mapping, 6, cfg.RegionRows()), 2)
	// The edge victim's aggressors sit in different regions; the edge-row
	// double increment must keep the combined budget at FTH, not 2*FTH.
	if res.MaxDoubleSided >= bound {
		t.Errorf("edge double-sided: %d >= bound %d", res.MaxDoubleSided, bound)
	}
}

// TestMIRZAWithoutEdgeRuleWouldBeWeaker sanity-checks that the edge-row
// handling is actually load-bearing: the edge attack must reach strictly
// higher unmitigated counts than an interior double-sided attack whose
// aggressors share one region... both must still stay under the bound.
func TestEdgeAttackEngagesBothRegions(t *testing.T) {
	cfg, _ := core.ForTRHD(500)
	sink := track.NopSink{}
	m := core.MustNew(cfg, sink)
	g := cfg.Geometry
	// Hammer the two edge aggressors around the region boundary of
	// subarray 6 (regions 12 and 13).
	a1 := g.RowAt(cfg.Mapping, 6, cfg.RegionRows()-2)
	a2 := g.RowAt(cfg.Mapping, 6, cfg.RegionRows())
	for i := 0; i < cfg.FTH; i++ {
		m.OnActivate(0, a1, 0)
		m.OnActivate(0, a2, 0)
	}
	// Both regions' counters must have saturated: combined filtered budget
	// ~FTH per side, not 2*FTH.
	if m.RegionCount(0, 12) < cfg.FTH || m.RegionCount(0, 13) < cfg.FTH {
		t.Errorf("regions = %d/%d, want both saturated (edge rule)",
			m.RegionCount(0, 12), m.RegionCount(0, 13))
	}
	if m.Stats.Escaped == 0 {
		t.Error("edge attack should escape filtering after ~FTH ACTs per side")
	}
}

func TestPRACSecureAgainstDoubleSided(t *testing.T) {
	g := dram.Default()
	for _, trhd := range []int{500, 1000} {
		ath := track.ATHForTRHD(trhd)
		sim := NewBankSim(BankSimConfig{
			Geometry: g,
			Timing:   dram.PRAC(),
			Mapping:  dram.StridedR2SA,
			Bank:     0,
			NewMitigator: func(sink track.Sink) track.Mitigator {
				return track.NewPRAC(track.PRACConfig{
					Geometry: g, Mapping: dram.StridedR2SA, AlertThreshold: ath,
				}, sink)
			},
		})
		res := sim.RunWindows(DoubleSided(g, dram.StridedR2SA, 2, 300), 1)
		if res.MaxDoubleSided >= trhd {
			t.Errorf("PRAC TRHD=%d: reached %d: %v", trhd, res.MaxDoubleSided, res)
		}
		if res.Alerts == 0 {
			t.Errorf("PRAC attack triggered no ALERTs")
		}
	}
}

// TestUnprotectedBaselineIsVulnerable verifies the simulator can actually
// express a successful attack: with no mitigation, a double-sided pattern
// blows far past any realistic threshold within one refresh window.
func TestUnprotectedBaselineIsVulnerable(t *testing.T) {
	g := dram.Default()
	sim := NewBankSim(BankSimConfig{
		Geometry: g,
		Timing:   dram.DDR5(),
		Mapping:  dram.StridedR2SA,
		Bank:     0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return track.NewNop()
		},
	})
	res := sim.RunWindows(DoubleSided(g, dram.StridedR2SA, 2, 300), 1)
	if res.MaxDoubleSided < 100_000 {
		t.Errorf("unprotected run reached only %d unmitigated ACTs", res.MaxDoubleSided)
	}
}

// TestTRRVulnerableUnderBankSim reproduces the Table XII "not secure"
// verdict end-to-end: the sampler-evading pattern defeats TRR even at the
// current threshold of 4.8K.
func TestTRRVulnerableUnderBankSim(t *testing.T) {
	g := dram.Default()
	sim := NewBankSim(BankSimConfig{
		Geometry: g,
		Timing:   dram.DDR5(),
		Mapping:  dram.StridedR2SA,
		Bank:     0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return track.NewTRR(track.TRRConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				Entries: 28, MitigateEveryREFs: 4, SampleEvery: 16,
			}, sink)
		},
	})
	// 15 hammer ACTs on each aggressor of a double-sided pair, decoy on
	// every 16th slot.
	agg1 := g.RowAt(dram.StridedR2SA, 4, 299)
	agg2 := g.RowAt(dram.StridedR2SA, 4, 301)
	var rows []int
	for i := 0; i < 15; i++ {
		if i%2 == 0 {
			rows = append(rows, agg1)
		} else {
			rows = append(rows, agg2)
		}
	}
	rows = append(rows, g.RowAt(dram.StridedR2SA, 4, 600)) // decoy on the sampled slot
	res := sim.RunWindows(NewRotation("trr-evasion", rows...), 1)
	if res.MaxDoubleSided < 4800 {
		t.Errorf("TRR evasion reached only %d, expected to break the 4.8K threshold", res.MaxDoubleSided)
	}
}

func TestMIRZAAlertRateUnderAttackMatchesWindow(t *testing.T) {
	// Under the circular attack every post-FTH activation participates in
	// MINT, so in steady state MIRZA needs about one mitigation (one
	// ALERT) per W escaping activations.
	cfg, _ := core.ForTRHD(1000)
	sim := mirzaSim(t, 1000, 33)
	res := sim.RunWindows(Circular(cfg.Geometry, cfg.Mapping, 10, 64), 1)
	perAlert := float64(res.ACTs) / float64(res.Alerts)
	w := float64(cfg.MINTWindow)
	if perAlert < w*0.7 || perAlert > w*2.0 {
		t.Errorf("ACTs per ALERT = %.1f, want within [%.1f, %.1f] of W=%d",
			perAlert, w*0.7, w*2.0, cfg.MINTWindow)
	}
}
