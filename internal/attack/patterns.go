package attack

import (
	"fmt"

	"mirza/internal/dram"
)

// Pattern is an adversarial activation stream for one bank: Next returns
// the logical row of the attacker's next activation. Patterns are
// deterministic — the threat model grants the attacker knowledge of the
// defense algorithm but not of its random numbers, so the strongest
// deterministic strategy is the right benchmark.
type Pattern interface {
	Next() int
	Name() string
}

// Rotation cycles through a fixed list of rows — the building block of
// single-sided, double-sided, many-sided and circular patterns.
type Rotation struct {
	rows  []int
	i     int
	label string
}

// NewRotation builds a cyclic pattern over rows.
func NewRotation(label string, rows ...int) *Rotation {
	if len(rows) == 0 {
		panic("attack: rotation needs at least one row")
	}
	return &Rotation{rows: rows, label: label}
}

// Next implements Pattern.
func (r *Rotation) Next() int {
	row := r.rows[r.i]
	r.i = (r.i + 1) % len(r.rows)
	return row
}

// Name implements Pattern.
func (r *Rotation) Name() string { return r.label }

// Rows returns the pattern's row set.
func (r *Rotation) Rows() []int { return append([]int(nil), r.rows...) }

// SingleSided hammers one aggressor row continuously. The victim rows on
// either side each see the full activation stream from one side.
func SingleSided(g dram.Geometry, m dram.R2SAMapping, sa, physIdx int) *Rotation {
	return NewRotation("single-sided", g.RowAt(m, sa, physIdx))
}

// DoubleSided alternates between the two aggressors sandwiching the victim
// at (sa, victimIdx): physical indices victimIdx-1 and victimIdx+1.
func DoubleSided(g dram.Geometry, m dram.R2SAMapping, sa, victimIdx int) *Rotation {
	if victimIdx < 1 || victimIdx+1 >= g.SubarrayRows {
		panic(fmt.Sprintf("attack: victim index %d has no neighbors on both sides", victimIdx))
	}
	return NewRotation("double-sided",
		g.RowAt(m, sa, victimIdx-1),
		g.RowAt(m, sa, victimIdx+1))
}

// Circular builds the worst-case pattern of Section II.F / Figure 12: K
// aggressor rows in the same subarray (hence the same RCT region), spaced
// two physical rows apart so none shares a victim, hammered in a loop.
// Against MIRZA, the loop first primes the region counter past FTH and then
// keeps every activation participating in randomized selection.
func Circular(g dram.Geometry, m dram.R2SAMapping, sa, k int) *Rotation {
	if k < 1 || 2*k >= g.SubarrayRows {
		panic(fmt.Sprintf("attack: circular pattern of %d rows does not fit a subarray", k))
	}
	rows := make([]int, k)
	for i := range rows {
		rows[i] = g.RowAt(m, sa, 1+2*i)
	}
	return NewRotation(fmt.Sprintf("circular-%d", k), rows...)
}

// DoubleSidedMany interleaves p double-sided pairs within one subarray —
// the multi-victim escalation the analysis of Section VI.B covers.
func DoubleSidedMany(g dram.Geometry, m dram.R2SAMapping, sa, pairs int) *Rotation {
	if pairs < 1 || 4*pairs+2 >= g.SubarrayRows {
		panic(fmt.Sprintf("attack: %d double-sided pairs do not fit a subarray", pairs))
	}
	var rows []int
	for p := 0; p < pairs; p++ {
		base := 1 + 4*p
		rows = append(rows, g.RowAt(m, sa, base), g.RowAt(m, sa, base+2))
	}
	return NewRotation(fmt.Sprintf("double-sided-x%d", pairs), rows...)
}

// Feinting approximates the queue-drain attack of Figure 10 against
// MIRZA-Q: queueSize+1 aggressors in one region rotated so that queued
// entries keep accruing tardiness while the attacker forces one ALERT per
// drained entry, maximizing the Phase-D activations of the last entry.
func Feinting(g dram.Geometry, m dram.R2SAMapping, sa, queueSize int) *Rotation {
	rows := make([]int, queueSize+1)
	for i := range rows {
		rows[i] = g.RowAt(m, sa, 1+2*i)
	}
	return NewRotation(fmt.Sprintf("feinting-%d", queueSize), rows...)
}

// EdgeDoubleSided targets a victim on an intra-subarray region boundary:
// the two aggressors fall in different RCT regions, the case footnote 3 of
// Section VI.B defends with the edge-row double increment. regionRows is
// the number of physical rows per region within the subarray.
func EdgeDoubleSided(g dram.Geometry, m dram.R2SAMapping, sa, regionRows int) *Rotation {
	if regionRows < 2 || regionRows >= g.SubarrayRows {
		panic(fmt.Sprintf("attack: bad regionRows %d", regionRows))
	}
	// Victim at the last row of region 0; aggressors at regionRows-2
	// (region 0) and regionRows (region 1).
	return NewRotation("edge-double-sided",
		g.RowAt(m, sa, regionRows-2),
		g.RowAt(m, sa, regionRows))
}
