package attack

import (
	"testing"
	"testing/quick"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/track"
)

func TestDoubleSidedManyPattern(t *testing.T) {
	g := dram.Default()
	p := DoubleSidedMany(g, dram.StridedR2SA, 2, 3)
	rows := p.Rows()
	if len(rows) != 6 {
		t.Fatalf("3 pairs should give 6 aggressors, got %d", len(rows))
	}
	// Pairs sandwich victims: indices 1,3 / 5,7 / 9,11.
	want := []int{1, 3, 5, 7, 9, 11}
	for i, r := range rows {
		if g.PhysicalIndex(dram.StridedR2SA, r) != want[i] {
			t.Errorf("aggressor %d at index %d, want %d", i,
				g.PhysicalIndex(dram.StridedR2SA, r), want[i])
		}
	}
}

func TestPatternPanics(t *testing.T) {
	g := dram.Default()
	cases := []func(){
		func() { NewRotation("empty") },
		func() { DoubleSided(g, dram.StridedR2SA, 0, 0) },
		func() { Circular(g, dram.StridedR2SA, 0, 600) },
		func() { EdgeDoubleSided(g, dram.StridedR2SA, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestPropertyDisturbanceConsistency: for any interleaving of activations
// over a small row set, the single-sided maximum never falls below the
// double-sided maximum, and mitigation clears the right victims.
func TestPropertyDisturbanceConsistency(t *testing.T) {
	g := dram.Default()
	f := func(ops []uint8) bool {
		d := NewDisturbance(g, dram.StridedR2SA)
		for _, op := range ops {
			idx := 10 + int(op%16)
			d.OnActivate(g.RowAt(dram.StridedR2SA, 1, idx))
		}
		return d.MaxSingleSided() >= d.MaxDoubleSided()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBankSimResultString(t *testing.T) {
	r := BankSimResult{ACTs: 10, Alerts: 2, MaxSingleSided: 5}
	if s := r.String(); s == "" {
		t.Error("empty result string")
	}
}

// TestMIRZAMultiWindowStability: exposure bounds hold across many refresh
// windows, not just the first (no state leaks between windows).
func TestMIRZAMultiWindowStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long attack run")
	}
	cfg, _ := core.ForTRHD(1000)
	cfg.Seed = 77
	sim := NewBankSim(BankSimConfig{
		Geometry: cfg.Geometry, Timing: dram.DDR5(), Mapping: cfg.Mapping, Bank: 0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return core.MustNew(cfg, sink)
		},
	})
	pattern := DoubleSided(cfg.Geometry, cfg.Mapping, 9, 512)
	prev := 0
	for window := 1; window <= 4; window++ {
		res := sim.RunWindows(pattern, 1)
		if res.MaxDoubleSided >= 1000 {
			t.Fatalf("window %d: exposure %d reached the threshold", window, res.MaxDoubleSided)
		}
		if window > 1 && res.MaxDoubleSided > prev*3 && prev > 0 {
			t.Errorf("window %d: exposure jumped %d -> %d (state leak?)", window, prev, res.MaxDoubleSided)
		}
		prev = res.MaxDoubleSided
	}
}

// TestNaiveMIRZAStillSecure: filtering is a performance optimization, not a
// security requirement — FTH=0 (Naive MIRZA) must also hold the bound.
func TestNaiveMIRZAStillSecure(t *testing.T) {
	cfg, _ := core.ForTRHD(1000)
	cfg.FTH = 0
	cfg.Seed = 5
	sim := NewBankSim(BankSimConfig{
		Geometry: cfg.Geometry, Timing: dram.DDR5(), Mapping: cfg.Mapping, Bank: 0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return core.MustNew(cfg, sink)
		},
	})
	res := sim.RunWindows(DoubleSided(cfg.Geometry, cfg.Mapping, 4, 500), 1)
	if res.MaxDoubleSided >= 1000 {
		t.Errorf("naive MIRZA exposed %d", res.MaxDoubleSided)
	}
	if res.Alerts == 0 {
		t.Error("naive MIRZA should alert constantly")
	}
}

// TestMoPACUnderAttack: the probabilistic-counting extension must still
// bound a double-sided attack at its derated threshold.
func TestMoPACUnderAttack(t *testing.T) {
	g := dram.Default()
	ath := track.MoPACDeratedATH(1000, 0.25)
	sim := NewBankSim(BankSimConfig{
		Geometry: g, Timing: dram.DDR5(), Mapping: dram.StridedR2SA, Bank: 0,
		NewMitigator: func(sink track.Sink) track.Mitigator {
			return track.NewMoPAC(track.MoPACConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				SampleProb: 0.25, AlertThreshold: ath, Seed: 11,
			}, sink)
		},
	})
	res := sim.RunWindows(DoubleSided(g, dram.StridedR2SA, 2, 300), 1)
	if res.MaxDoubleSided >= 1000 {
		t.Errorf("MoPAC exposed %d unmitigated ACTs (TRHD=1000)", res.MaxDoubleSided)
	}
	if res.Alerts == 0 {
		t.Error("MoPAC should have alerted under hammering")
	}
}
