package attack

import (
	"fmt"

	"mirza/internal/dram"
	"mirza/internal/track"
)

// BankSimConfig configures an attack run against one bank of one
// sub-channel.
type BankSimConfig struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	Mapping  dram.R2SAMapping
	Bank     int // the attacked bank

	// NewMitigator builds the defense under test, wired to the provided
	// sink (the simulator adds its own disturbance bookkeeping around it).
	NewMitigator func(sink track.Sink) track.Mitigator

	// RFMEvery, when > 0, models the memory controller's RAA counter for
	// the attacked bank: after every RFMEvery-th activation the MC issues
	// an RFM to it (the bank is busy for tRFM), granting RFM-driven
	// trackers (MINT+RFM, Loaded Dice) their proactive mitigation
	// opportunity. 0 disables RFM, matching a controller with RFM off.
	RFMEvery int

	// RowThreshold, when set, gives each victim row its own double-sided
	// Rowhammer threshold so the run counts online bit flips (weak-row
	// fault campaigns plug fault.WeakRowModel.ThresholdOf in here).
	RowThreshold func(row int) int
}

// BankSimResult summarizes one attack run.
type BankSimResult struct {
	ACTs           int64
	REFs           int64
	RFMs           int64
	Alerts         int64
	Mitigations    int64
	MaxSingleSided int
	MaxDoubleSided int
	// Flips counts victim rows whose disturbance crossed their per-row
	// threshold online (0 unless RowThreshold was configured).
	Flips   int
	Elapsed dram.Time
}

func (r BankSimResult) String() string {
	s := fmt.Sprintf("acts=%d refs=%d alerts=%d mitig=%d maxSS=%d maxDS=%d over %v",
		r.ACTs, r.REFs, r.Alerts, r.Mitigations, r.MaxSingleSided, r.MaxDoubleSided, r.Elapsed)
	if r.RFMs > 0 {
		s += fmt.Sprintf(" rfms=%d", r.RFMs)
	}
	if r.Flips > 0 {
		s += fmt.Sprintf(" flips=%d", r.Flips)
	}
	return s
}

// BankSim drives a Pattern's activation stream into a mitigator at the
// fastest rate DRAM timing permits — one ACT per tRC to the attacked bank —
// while honoring the REF schedule (REF every tREFI, tRFC execution) and the
// ABO protocol (3 prologue ACTs, a 350ns stall, one mandatory epilogue ACT
// between ALERTs). It is the security-evaluation counterpart of the
// full-system simulator: both drive the identical Mitigator interface.
type BankSim struct {
	cfg  BankSimConfig
	mit  track.Mitigator
	dist *Disturbance

	now           dram.Time
	refDue        dram.Time
	refIndex      int
	actSinceAlert bool
	actsSinceRFM  int

	res BankSimResult
}

// NewBankSim builds an attack simulator.
func NewBankSim(cfg BankSimConfig) *BankSim {
	s := &BankSim{
		cfg:           cfg,
		dist:          NewDisturbance(cfg.Geometry, cfg.Mapping),
		refDue:        cfg.Timing.TREFI,
		actSinceAlert: true,
	}
	if cfg.RowThreshold != nil {
		s.dist.SetRowThreshold(cfg.RowThreshold)
	}
	sink := track.FuncSink(func(bank, row, victims int, now dram.Time) {
		s.res.Mitigations++
		if bank == cfg.Bank {
			s.dist.OnMitigate(row)
		}
	})
	s.mit = cfg.NewMitigator(sink)
	return s
}

// Mitigator exposes the defense under test.
func (s *BankSim) Mitigator() track.Mitigator { return s.mit }

// Disturbance exposes the victim-side bookkeeping so callers can install
// observers (e.g. per-tenant flip attribution) before running.
func (s *BankSim) Disturbance() *Disturbance { return s.dist }

// Result returns the accumulated counters.
func (s *BankSim) Result() BankSimResult {
	r := s.res
	r.Elapsed = s.now
	r.MaxSingleSided = s.dist.MaxSingleSided()
	r.MaxDoubleSided = s.dist.MaxDoubleSided()
	r.Flips = s.dist.Flips()
	return r
}

// Run advances the attack until the given absolute time.
func (s *BankSim) Run(pattern Pattern, until dram.Time) BankSimResult {
	t := s.cfg.Timing
	for s.now < until {
		// Demand refresh has priority.
		if s.now >= s.refDue {
			s.executeREF()
			continue
		}

		// Reactive ALERT (after the mandatory epilogue ACT).
		if s.actSinceAlert && s.mit.WantsALERT() {
			s.runALERT(pattern)
			continue
		}

		// One attacker activation; next ACT to the same bank after tRC.
		s.activate(pattern.Next())
		s.now += t.TRC

		// The MC's RAA counter reached the BAT: the bank takes an RFM.
		if s.cfg.RFMEvery > 0 && s.actsSinceRFM >= s.cfg.RFMEvery {
			s.actsSinceRFM = 0
			s.res.RFMs++
			s.mit.OnRFM(s.cfg.Bank, s.now)
			s.now += t.TRFM
		}
	}
	return s.Result()
}

// RunWindows runs for n full refresh windows.
func (s *BankSim) RunWindows(pattern Pattern, n int) BankSimResult {
	return s.Run(pattern, s.now+dram.Time(n)*s.cfg.Timing.TREFW)
}

func (s *BankSim) executeREF() {
	g := s.cfg.Geometry
	s.res.REFs++
	// The REF refreshes RowsPerREF physical rows in every bank; clear the
	// disturbance of the attacked bank's refreshed rows.
	target := g.RefreshTargetOf(s.refIndex)
	for idx := target.FirstIdx; idx <= target.LastIdx; idx++ {
		s.dist.OnRefreshRow(g.RowAt(s.cfg.Mapping, target.Subarray, idx))
	}
	s.mit.OnREF(s.refIndex, s.now) // 0-based position in the refresh walk
	s.refIndex++
	if s.now < s.refDue {
		s.now = s.refDue
	}
	s.now += s.cfg.Timing.TRFC
	s.refDue += s.cfg.Timing.TREFI
}

// runALERT models Figure 4: the attacker squeezes up to 3 more activations
// into the 180ns prologue, the DRAM is then unavailable for 350ns while the
// back-off RFM performs the mitigation, and one normal ACT must occur
// before the next ALERT can be raised.
func (s *BankSim) runALERT(pattern Pattern) {
	t := s.cfg.Timing
	s.res.Alerts++
	start := s.now
	stallAt := start + t.ABOPrologue
	for s.now+t.TRC <= stallAt && s.now+t.TRC <= s.refDue {
		s.activate(pattern.Next())
		s.now += t.TRC
	}
	s.now = start + t.ABOPrologue + t.ABOStall
	s.mit.ServiceALERT(s.now)
	s.actSinceAlert = false
}

func (s *BankSim) activate(row int) {
	s.res.ACTs++
	s.actSinceAlert = true
	s.actsSinceRFM++
	s.dist.OnActivate(row)
	s.mit.OnActivate(s.cfg.Bank, row, s.now)
}
