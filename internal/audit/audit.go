// Package audit is an opt-in shadow checker for the DDR5 command stream.
//
// An Auditor attaches to a mem.Channel through the mem.CommandObserver hook
// and re-derives, independently of the controller's own bank state, whether
// every issued command honours the protocol invariants the simulator is
// supposed to model: the per-bank row-cycle timings (tRC/tRAS/tRP/tRCD/
// tRTP/tWR), channel-level ACT pacing (tRRD and the four-activation tFAW
// window), REF cadence with bounded postponement, the ALERT-Back-Off
// prologue/stall ordering, and RFM-before-ACT when a proactive RFM is
// pending. At end of run, Finish adds cross-cutting conservation checks
// (every observed command accounted for in mem.Stats, ACTs balanced against
// PREs plus still-open rows, column commands against retired requests, and
// tracker-side mitigation counts consistent with the channel through the
// fault wrapper's Unwrap chain).
//
// Every result in the paper's evaluation is a timing-level phenomenon, so a
// silent violation in the scheduler corrupts all downstream figures without
// failing a golden test — the goldens would simply pin the wrong numbers.
// The auditor makes that failure mode loud. It is pure observation: it
// never mutates controller state, and a disabled (never-constructed)
// auditor costs the simulator one nil test per command site.
package audit

import (
	"fmt"
	"strings"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// distantPast initializes "time of last command" fields so that the first
// real command always satisfies every gap constraint.
const distantPast = -(dram.Time(1) << 61)

// CommandKind identifies one entry in a Violation's command history.
type CommandKind int

// Command kinds, in the order they appear in histories.
const (
	CmdACT CommandKind = iota
	CmdPRE
	CmdForcedPRE
	CmdRead
	CmdWrite
	CmdREF
	CmdRFM
	CmdAlert
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdForcedPRE:
		return "PRE(forced)"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdREF:
		return "REF"
	case CmdRFM:
		return "RFM"
	case CmdAlert:
		return "ALERT"
	default:
		return fmt.Sprintf("CommandKind(%d)", int(k))
	}
}

// Command is one observed command, kept in a bounded per-sub-channel ring
// so a Violation can show what led up to it.
type Command struct {
	Kind CommandKind
	Bank int // -1 for channel-wide commands (REF, ALERT)
	Row  int // row for ACT/RD/WR, refIndex for REF, AlertPhase for ALERT
	At   dram.Time
}

// String renders the command compactly: "ACT b3 r42 @1.234us".
func (c Command) String() string {
	switch c.Kind {
	case CmdREF:
		return fmt.Sprintf("REF #%d @%v", c.Row, c.At)
	case CmdAlert:
		return fmt.Sprintf("ALERT %s @%v", mem.AlertPhase(c.Row), c.At)
	case CmdPRE, CmdForcedPRE, CmdRFM:
		return fmt.Sprintf("%s b%d @%v", c.Kind, c.Bank, c.At)
	default:
		return fmt.Sprintf("%s b%d r%d @%v", c.Kind, c.Bank, c.Row, c.At)
	}
}

// Violation is one detected protocol breach. It is an error; its message
// names the constraint, the location, the offending timestamps and the
// recent command history, in the same spirit as sim.StallError's stall
// diagnostics.
type Violation struct {
	Constraint string // catalogue name, e.g. "tFAW", "REF-postpone"
	Sub        int
	Bank       int       // -1 for channel-level constraints
	Row        int       // -1 when not applicable
	Now        dram.Time // time of the offending command
	Prev       dram.Time // time of the earlier command it conflicts with
	Need       dram.Time // required minimum separation (0 for non-gap checks)
	Detail     string
	History    []Command // recent commands on the sub-channel, oldest first
}

// Error implements error.
func (v *Violation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audit: %s violation on sub %d", v.Constraint, v.Sub)
	if v.Bank >= 0 {
		fmt.Fprintf(&sb, " bank %d", v.Bank)
	}
	if v.Row >= 0 {
		fmt.Fprintf(&sb, " row %d", v.Row)
	}
	fmt.Fprintf(&sb, " at %v", v.Now)
	if v.Need > 0 {
		fmt.Fprintf(&sb, ": %v after command at %v, need >= %v", v.Now-v.Prev, v.Prev, v.Need)
	}
	if v.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", v.Detail)
	}
	if len(v.History) > 0 {
		sb.WriteString("\n  recent commands, oldest first:")
		for _, c := range v.History {
			fmt.Fprintf(&sb, "\n    %s", c)
		}
	}
	return sb.String()
}

// Constraints is the catalogue of violation names the auditor can report.
// Finish registers one sparse audit_violations_total series per entry, so
// raw snapshots enumerate the full catalogue while canonical manifests show
// only the constraints that actually fired.
var Constraints = []string{
	"tRC", "tRP", "tRAS", "tRCD", "tRTP", "tWR", "tRRD", "tFAW",
	"ACT-open-bank", "PRE-closed-bank", "col-row-mismatch", "bank-busy",
	"REF-order", "REF-open-row", "REF-postpone",
	"RFM-open-row", "RFM-spurious", "RFM-before-ACT",
	"alert-order", "alert-window", "alert-stall-command",
	"conservation",
}

// Config configures an Auditor. Timing and Geometry must be the channel's
// effective (defaults-applied, Validate-passing) values — ForChannel takes
// them from mem.Channel.Config so they cannot drift from what the scheduler
// actually uses.
type Config struct {
	Timing   dram.Timing
	Geometry dram.Geometry

	// RFMBAT mirrors mem.Config.RFMBAT: when > 0 the auditor maintains its
	// own per-bank activation counters and demands an RFM before the next
	// ACT once a counter reaches the threshold.
	RFMBAT int

	// MaxREFPostpone bounds how late a REF may execute past its nominal
	// k*tREFI due time. Zero selects one tREFI, which covers the worst
	// backlog a compliant controller accumulates (a full ALERT window plus
	// an RFM plus queue drain, ~930ns against tREFI=3.9us).
	MaxREFPostpone dram.Time

	// MaxViolations caps how many Violation records are retained (counting
	// continues past the cap). Zero selects 64.
	MaxViolations int

	// HistoryDepth is the per-sub-channel command-history ring size
	// attached to each Violation. Zero selects 32.
	HistoryDepth int

	// Telemetry, when enabled, receives audit_violations_total counters
	// (one sparse series per catalogue constraint) at Finish.
	Telemetry *telemetry.Registry
}

// bankShadow is the auditor's independent model of one bank.
type bankShadow struct {
	open       bool
	row        int
	actAt      dram.Time // last ACT
	preAt      dram.Time // last PRE
	lastReadAt dram.Time // last RD issue
	wrReadyAt  dram.Time // earliest legal PRE after the last WR (data + tWR)
	busyUntil  dram.Time // REF/RFM execution end
	rfmPending bool
	actCounter int
}

// subShadow is the auditor's model of one sub-channel.
type subShadow struct {
	banks     []bankShadow
	faw       [4]dram.Time // times of the last 4 ACTs (ring)
	fawIdx    int
	lastActAt dram.Time
	refCount  int

	inPrologue bool
	inStall    bool
	stallAt    dram.Time
	stallEndAt dram.Time

	// Observed command counts, reconciled against mem.Stats at Finish.
	submits, acts, pres, forcedPres          int64
	reads, writes, refs, rfms, alertsStarted int64

	hist    []Command
	histIdx int
	histLen int
}

func (ss *subShadow) push(c Command) {
	ss.hist[ss.histIdx] = c
	ss.histIdx = (ss.histIdx + 1) % len(ss.hist)
	if ss.histLen < len(ss.hist) {
		ss.histLen++
	}
}

// history returns the ring's contents oldest-first.
func (ss *subShadow) history() []Command {
	out := make([]Command, 0, ss.histLen)
	start := ss.histIdx - ss.histLen
	for i := 0; i < ss.histLen; i++ {
		out = append(out, ss.hist[(start+i+len(ss.hist))%len(ss.hist)])
	}
	return out
}

// Auditor implements mem.CommandObserver. It is single-goroutine like the
// kernel that drives it; distinct simulations need distinct Auditors. All
// methods are nil-safe, so callers can hold a *Auditor that is nil when
// auditing is disabled and still call Finish/Count unconditionally.
type Auditor struct {
	cfg          Config
	subs         []subShadow
	violations   []*Violation
	count        int64
	byConstraint map[string]int64
}

// New builds an Auditor from cfg, applying defaults for the zero fields.
func New(cfg Config) *Auditor {
	if cfg.MaxREFPostpone == 0 {
		cfg.MaxREFPostpone = cfg.Timing.TREFI
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 64
	}
	if cfg.HistoryDepth == 0 {
		cfg.HistoryDepth = 32
	}
	a := &Auditor{
		cfg:          cfg,
		subs:         make([]subShadow, cfg.Geometry.SubChannels),
		byConstraint: make(map[string]int64),
	}
	for i := range a.subs {
		ss := &a.subs[i]
		ss.banks = make([]bankShadow, cfg.Geometry.BanksPerSubChannel)
		ss.hist = make([]Command, cfg.HistoryDepth)
		ss.lastActAt = distantPast
		for j := range ss.faw {
			ss.faw[j] = distantPast
		}
		for b := range ss.banks {
			bk := &ss.banks[b]
			bk.actAt = distantPast
			bk.preAt = distantPast
			bk.lastReadAt = distantPast
			bk.wrReadyAt = distantPast
		}
	}
	return a
}

// ForChannel builds an Auditor from ch's effective configuration and
// installs it as the channel's command observer. Call it before any
// simulation time elapses.
func ForChannel(ch *mem.Channel) *Auditor {
	c := ch.Config()
	a := New(Config{
		Timing:    c.Timing,
		Geometry:  c.Geometry,
		RFMBAT:    c.RFMBAT,
		Telemetry: c.Telemetry,
	})
	ch.InstallObserver(a)
	return a
}

// report records one violation, capturing the sub-channel's history ring.
func (a *Auditor) report(sub int, v Violation) {
	v.Sub = sub
	v.History = a.subs[sub].history()
	a.count++
	a.byConstraint[v.Constraint]++
	if len(a.violations) < a.cfg.MaxViolations {
		vc := v
		a.violations = append(a.violations, &vc)
	}
}

// checkStall flags any command issued inside an ALERT stall window.
func (a *Auditor) checkStall(sub int, kind CommandKind, bank int, now dram.Time) {
	ss := &a.subs[sub]
	if ss.inStall && now < ss.stallEndAt {
		a.report(sub, Violation{
			Constraint: "alert-stall-command", Bank: bank, Row: -1, Now: now,
			Prev: ss.stallAt, Need: 0,
			Detail: fmt.Sprintf("%s issued inside ALERT stall window [%v, %v)", kind, ss.stallAt, ss.stallEndAt),
		})
	}
}

// ObserveSubmit implements mem.CommandObserver.
func (a *Auditor) ObserveSubmit(sub int, write bool, now dram.Time) {
	a.subs[sub].submits++
}

// ObserveACT implements mem.CommandObserver.
func (a *Auditor) ObserveACT(sub, bank, row int, now dram.Time) {
	ss := &a.subs[sub]
	bk := &ss.banks[bank]
	t := &a.cfg.Timing
	a.checkStall(sub, CmdACT, bank, now)
	if bk.open {
		a.report(sub, Violation{
			Constraint: "ACT-open-bank", Bank: bank, Row: row, Now: now, Prev: bk.actAt,
			Detail: fmt.Sprintf("row %d still open (ACT at %v never precharged)", bk.row, bk.actAt),
		})
	}
	if bk.rfmPending {
		a.report(sub, Violation{
			Constraint: "RFM-before-ACT", Bank: bank, Row: row, Now: now,
			Detail: fmt.Sprintf("bank hit the BAT threshold (%d) but activated before its RFM", a.cfg.RFMBAT),
		})
	}
	if now < bk.actAt+t.TRC {
		a.report(sub, Violation{Constraint: "tRC", Bank: bank, Row: row, Now: now, Prev: bk.actAt, Need: t.TRC})
	}
	if now < bk.preAt+t.TRP {
		a.report(sub, Violation{Constraint: "tRP", Bank: bank, Row: row, Now: now, Prev: bk.preAt, Need: t.TRP})
	}
	if now < bk.busyUntil {
		a.report(sub, Violation{
			Constraint: "bank-busy", Bank: bank, Row: row, Now: now,
			Detail: fmt.Sprintf("REF/RFM executing until %v", bk.busyUntil),
		})
	}
	if now < ss.lastActAt+t.TRRD {
		a.report(sub, Violation{Constraint: "tRRD", Bank: bank, Row: row, Now: now, Prev: ss.lastActAt, Need: t.TRRD})
	}
	if f := ss.faw[ss.fawIdx]; now < f+t.TFAW {
		a.report(sub, Violation{
			Constraint: "tFAW", Bank: bank, Row: row, Now: now, Prev: f, Need: t.TFAW,
			Detail: "fifth ACT inside one four-activation window",
		})
	}
	bk.open, bk.row, bk.actAt = true, row, now
	ss.faw[ss.fawIdx] = now
	ss.fawIdx = (ss.fawIdx + 1) % len(ss.faw)
	ss.lastActAt = now
	if a.cfg.RFMBAT > 0 {
		bk.actCounter++
		if bk.actCounter >= a.cfg.RFMBAT {
			bk.actCounter = 0
			bk.rfmPending = true
		}
	}
	ss.acts++
	ss.push(Command{Kind: CmdACT, Bank: bank, Row: row, At: now})
}

// ObservePRE implements mem.CommandObserver. Forced closes (the ALERT
// prologue→stall transition) are device-side: they are exempt from the
// controller-side row-cycle minimums but still balance the ACT/PRE books.
func (a *Auditor) ObservePRE(sub, bank int, forced bool, now dram.Time) {
	ss := &a.subs[sub]
	bk := &ss.banks[bank]
	t := &a.cfg.Timing
	kind := CmdPRE
	if forced {
		kind = CmdForcedPRE
	} else {
		a.checkStall(sub, kind, bank, now)
	}
	if !bk.open {
		a.report(sub, Violation{
			Constraint: "PRE-closed-bank", Bank: bank, Row: -1, Now: now, Prev: bk.preAt,
			Detail: "precharge of an already-closed bank",
		})
	}
	if !forced {
		if now < bk.actAt+t.TRAS {
			a.report(sub, Violation{Constraint: "tRAS", Bank: bank, Row: bk.row, Now: now, Prev: bk.actAt, Need: t.TRAS})
		}
		if now < bk.lastReadAt+t.TRTP {
			a.report(sub, Violation{Constraint: "tRTP", Bank: bank, Row: bk.row, Now: now, Prev: bk.lastReadAt, Need: t.TRTP})
		}
		if now < bk.wrReadyAt {
			a.report(sub, Violation{
				Constraint: "tWR", Bank: bank, Row: bk.row, Now: now,
				Detail: fmt.Sprintf("write recovery incomplete until %v", bk.wrReadyAt),
			})
		}
	}
	bk.open = false
	bk.preAt = now
	ss.pres++
	if forced {
		ss.forcedPres++
	}
	ss.push(Command{Kind: kind, Bank: bank, Row: -1, At: now})
}

// ObserveRead implements mem.CommandObserver.
func (a *Auditor) ObserveRead(sub, bank, row int, now dram.Time) {
	a.observeColumn(sub, bank, row, now, false)
}

// ObserveWrite implements mem.CommandObserver.
func (a *Auditor) ObserveWrite(sub, bank, row int, now dram.Time) {
	a.observeColumn(sub, bank, row, now, true)
}

func (a *Auditor) observeColumn(sub, bank, row int, now dram.Time, write bool) {
	ss := &a.subs[sub]
	bk := &ss.banks[bank]
	t := &a.cfg.Timing
	kind := CmdRead
	if write {
		kind = CmdWrite
	}
	a.checkStall(sub, kind, bank, now)
	switch {
	case !bk.open:
		a.report(sub, Violation{
			Constraint: "col-row-mismatch", Bank: bank, Row: row, Now: now,
			Detail: "column command to a precharged bank",
		})
	case bk.row != row:
		a.report(sub, Violation{
			Constraint: "col-row-mismatch", Bank: bank, Row: row, Now: now, Prev: bk.actAt,
			Detail: fmt.Sprintf("open row is %d", bk.row),
		})
	}
	if now < bk.actAt+t.TRCD {
		a.report(sub, Violation{Constraint: "tRCD", Bank: bank, Row: row, Now: now, Prev: bk.actAt, Need: t.TRCD})
	}
	if now < bk.busyUntil {
		a.report(sub, Violation{
			Constraint: "bank-busy", Bank: bank, Row: row, Now: now,
			Detail: fmt.Sprintf("REF/RFM executing until %v", bk.busyUntil),
		})
	}
	if write {
		bk.wrReadyAt = now + t.TCL + t.TBUS + t.TWR
		ss.writes++
	} else {
		bk.lastReadAt = now
		ss.reads++
	}
	ss.push(Command{Kind: kind, Bank: bank, Row: row, At: now})
}

// ObserveREF implements mem.CommandObserver.
func (a *Auditor) ObserveREF(sub, refIndex int, now dram.Time) {
	ss := &a.subs[sub]
	t := &a.cfg.Timing
	a.checkStall(sub, CmdREF, -1, now)
	if refIndex != ss.refCount {
		a.report(sub, Violation{
			Constraint: "REF-order", Bank: -1, Row: refIndex, Now: now,
			Detail: fmt.Sprintf("expected REF #%d", ss.refCount),
		})
	}
	for b := range ss.banks {
		if ss.banks[b].open {
			a.report(sub, Violation{
				Constraint: "REF-open-row", Bank: b, Row: ss.banks[b].row, Now: now,
				Prev:   ss.banks[b].actAt,
				Detail: "all-bank REF with a row still open",
			})
		}
	}
	due := dram.Time(refIndex+1) * t.TREFI
	if now < due {
		a.report(sub, Violation{
			Constraint: "REF-order", Bank: -1, Row: refIndex, Now: now, Prev: due,
			Detail: fmt.Sprintf("REF executed before its due time %v", due),
		})
	} else if now-due > a.cfg.MaxREFPostpone {
		a.report(sub, Violation{
			Constraint: "REF-postpone", Bank: -1, Row: refIndex, Now: now, Prev: due,
			Detail: fmt.Sprintf("postponed %v past due time %v (budget %v)", now-due, due, a.cfg.MaxREFPostpone),
		})
	}
	busy := now + t.TRFC
	for b := range ss.banks {
		if ss.banks[b].busyUntil < busy {
			ss.banks[b].busyUntil = busy
		}
	}
	ss.refCount = refIndex + 1
	ss.refs++
	ss.push(Command{Kind: CmdREF, Bank: -1, Row: refIndex, At: now})
}

// ObserveRFM implements mem.CommandObserver.
func (a *Auditor) ObserveRFM(sub, bank int, now dram.Time) {
	ss := &a.subs[sub]
	bk := &ss.banks[bank]
	t := &a.cfg.Timing
	a.checkStall(sub, CmdRFM, bank, now)
	if bk.open {
		a.report(sub, Violation{
			Constraint: "RFM-open-row", Bank: bank, Row: bk.row, Now: now, Prev: bk.actAt,
			Detail: "RFM with the bank's row still open",
		})
	}
	if now < bk.busyUntil {
		a.report(sub, Violation{
			Constraint: "bank-busy", Bank: bank, Row: -1, Now: now,
			Detail: fmt.Sprintf("REF/RFM executing until %v", bk.busyUntil),
		})
	}
	if a.cfg.RFMBAT > 0 && !bk.rfmPending {
		a.report(sub, Violation{
			Constraint: "RFM-spurious", Bank: bank, Row: -1, Now: now,
			Detail: fmt.Sprintf("RFM issued with activation counter at %d of %d", bk.actCounter, a.cfg.RFMBAT),
		})
	}
	bk.rfmPending = false
	if end := now + t.TRFM; bk.busyUntil < end {
		bk.busyUntil = end
	}
	ss.rfms++
	ss.push(Command{Kind: CmdRFM, Bank: bank, Row: -1, At: now})
}

// ObserveAlert implements mem.CommandObserver.
func (a *Auditor) ObserveAlert(sub int, phase mem.AlertPhase, now dram.Time) {
	ss := &a.subs[sub]
	t := &a.cfg.Timing
	switch phase {
	case mem.AlertPrologueStart:
		if ss.inPrologue || ss.inStall {
			a.report(sub, Violation{
				Constraint: "alert-order", Bank: -1, Row: -1, Now: now,
				Detail: "ALERT accepted while a previous ALERT is still in progress",
			})
		}
		ss.inPrologue = true
		ss.stallAt = now + t.ABOPrologue
		ss.stallEndAt = ss.stallAt + t.ABOStall
		ss.alertsStarted++
	case mem.AlertStallStart:
		if !ss.inPrologue {
			a.report(sub, Violation{
				Constraint: "alert-order", Bank: -1, Row: -1, Now: now,
				Detail: "stall began without a prologue",
			})
		}
		if now < ss.stallAt {
			a.report(sub, Violation{
				Constraint: "alert-window", Bank: -1, Row: -1, Now: now, Prev: ss.stallAt,
				Detail: fmt.Sprintf("stall began before the prologue end %v", ss.stallAt),
			})
		}
		ss.inPrologue = false
		ss.inStall = true
	case mem.AlertEnd:
		if !ss.inStall {
			a.report(sub, Violation{
				Constraint: "alert-order", Bank: -1, Row: -1, Now: now,
				Detail: "ALERT ended without a stall",
			})
		}
		if now < ss.stallEndAt {
			a.report(sub, Violation{
				Constraint: "alert-window", Bank: -1, Row: -1, Now: now, Prev: ss.stallEndAt,
				Detail: fmt.Sprintf("channel resumed before the stall end %v", ss.stallEndAt),
			})
		}
		ss.inStall = false
	}
	ss.push(Command{Kind: CmdAlert, Bank: -1, Row: int(phase), At: now})
}

// Count returns the total number of violations detected (including any past
// the retention cap). Nil-safe.
func (a *Auditor) Count() int64 {
	if a == nil {
		return 0
	}
	return a.count
}

// Violations returns the retained violation records, in detection order.
// Nil-safe.
func (a *Auditor) Violations() []*Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// ByConstraint returns the per-constraint violation counts. Nil-safe.
func (a *Auditor) ByConstraint() map[string]int64 {
	if a == nil {
		return nil
	}
	return a.byConstraint
}

// Err summarizes the violations detected so far as an error (nil when the
// command stream has been clean). Nil-safe.
func (a *Auditor) Err() error {
	switch {
	case a == nil || a.count == 0:
		return nil
	case a.count == 1:
		return a.violations[0]
	default:
		return fmt.Errorf("%d protocol violations; first: %w", a.count, a.violations[0])
	}
}

// Finish runs the end-of-run conservation checks against ch — which must be
// the channel the auditor observed — flushes violation counters to the
// configured telemetry registry, and returns the combined verdict. Call it
// exactly once, after the simulation completes. Nil-safe: a nil auditor
// returns nil.
func (a *Auditor) Finish(ch *mem.Channel) error {
	if a == nil {
		return nil
	}
	for i := range a.subs {
		ss := &a.subs[i]
		sc := ch.SubChannel(i)
		st := sc.Stats()

		var openBanks int64
		for b := range ss.banks {
			if ss.banks[b].open {
				openBanks++
			}
		}
		conserve := func(what string, observed, stats int64) {
			if observed != stats {
				a.report(i, Violation{
					Constraint: "conservation", Bank: -1, Row: -1,
					Detail: fmt.Sprintf("%s: observed %d commands, stats counted %d", what, observed, stats),
				})
			}
		}
		// Every command the observer saw must be in the Stats books, and
		// vice versa: a mismatch means a command path without a hook (or a
		// counter bumped without a command).
		conserve("ACTs", ss.acts, st.ACTs)
		conserve("PREs", ss.pres, st.PREs)
		conserve("Reads", ss.reads, st.Reads)
		conserve("Writes", ss.writes, st.Writes)
		conserve("REFs", ss.refs, st.REFs)
		conserve("RFMs", ss.rfms, st.RFMs)
		conserve("ALERTs", ss.alertsStarted, st.Alerts)
		// Row lifecycle: every ACT is balanced by a PRE or a still-open row.
		if ss.acts != ss.pres+openBanks {
			a.report(i, Violation{
				Constraint: "conservation", Bank: -1, Row: -1,
				Detail: fmt.Sprintf("row lifecycle: %d ACTs vs %d PREs + %d open rows", ss.acts, ss.pres, openBanks),
			})
		}
		// Every column command was classified exactly once as hit or miss.
		if st.RowHits+st.RowMisses != st.Reads+st.Writes {
			a.report(i, Violation{
				Constraint: "conservation", Bank: -1, Row: -1,
				Detail: fmt.Sprintf("hit/miss classification: %d hits + %d misses vs %d column commands",
					st.RowHits, st.RowMisses, st.Reads+st.Writes),
			})
		}
		// Every submitted request was either served or is still queued.
		if pending := int64(sc.PendingRequests()); ss.submits != ss.reads+ss.writes+pending {
			a.report(i, Violation{
				Constraint: "conservation", Bank: -1, Row: -1,
				Detail: fmt.Sprintf("request lifecycle: %d submitted vs %d served + %d pending",
					ss.submits, ss.reads+ss.writes, pending),
			})
		}
		// Tracker-side mitigation counts must be consistent with the
		// channel-side counter through any decorator (fault wrapper) chain.
		// Warmed mitigators arrive with history recorded against a
		// different sink, so the tracker may legitimately exceed the
		// channel — never trail it.
		if src := track.Source(sc.Mitigator()); src != nil {
			if tm := src.TrackStats().Mitigations; tm < st.Mitigations {
				a.report(i, Violation{
					Constraint: "conservation", Bank: -1, Row: -1,
					Detail: fmt.Sprintf("mitigations: tracker counted %d, channel sink recorded %d", tm, st.Mitigations),
				})
			}
		}
	}
	if reg := a.cfg.Telemetry; reg.Enabled() {
		for _, c := range Constraints {
			reg.SparseCounter("audit_violations_total", telemetry.L("constraint", c)).Add(a.byConstraint[c])
		}
	}
	return a.Err()
}
