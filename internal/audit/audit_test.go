package audit_test

import (
	"strings"
	"testing"

	"mirza/internal/audit"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
)

func newAuditor(extra func(*audit.Config)) *audit.Auditor {
	cfg := audit.Config{Timing: dram.DDR5(), Geometry: dram.Default()}
	if extra != nil {
		extra(&cfg)
	}
	return audit.New(cfg)
}

const ns = dram.Nanosecond

// TestInvariantsCatchSyntheticViolations drives the auditor directly with
// hand-crafted command sequences, one per invariant, and checks the named
// constraint fires. Sequences are built so the target constraint is among
// the violations; unrelated constraints firing too (e.g. tRP alongside tRC,
// which share command pairs under the Table I values) is acceptable.
func TestInvariantsCatchSyntheticViolations(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(*audit.Config)
		run  func(a *audit.Auditor)
	}{
		{"tRC", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObservePRE(0, 0, false, 32*ns)
			a.ObserveACT(0, 0, 2, 45*ns) // tRC = 46ns
		}},
		{"tRP", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObservePRE(0, 0, false, 100*ns)
			a.ObserveACT(0, 0, 2, 110*ns) // tRP = 14ns after the PRE
		}},
		{"tRAS", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObservePRE(0, 0, false, 31*ns) // tRAS = 32ns
		}},
		{"tRCD", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveRead(0, 0, 1, 10*ns) // tRCD = 14ns
		}},
		{"tRTP", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveRead(0, 0, 1, 50*ns)
			a.ObservePRE(0, 0, false, 55*ns) // needs 50ns + tRTP(12ns)
		}},
		{"tWR", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveWrite(0, 0, 1, 50*ns)
			a.ObservePRE(0, 0, false, 60*ns) // recovery runs ~49ns past issue
		}},
		{"tRRD", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveACT(0, 1, 1, 2*ns) // tRRD = 3ns
		}},
		{"tFAW", nil, func(a *audit.Auditor) {
			for i := 0; i < 5; i++ { // 5 ACTs in 12ns, window is 13ns
				a.ObserveACT(0, i, 1, dram.Time(i)*3*ns)
			}
		}},
		{"ACT-open-bank", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveACT(0, 0, 2, 50*ns)
		}},
		{"PRE-closed-bank", nil, func(a *audit.Auditor) {
			a.ObservePRE(0, 0, false, 10*ns)
		}},
		{"col-row-mismatch", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveRead(0, 0, 2, 20*ns)
		}},
		{"bank-busy", nil, func(a *audit.Auditor) {
			a.ObserveREF(0, 0, 3900*ns)
			a.ObserveACT(0, 0, 1, 3910*ns) // REF executes for tRFC = 410ns
		}},
		{"REF-order", nil, func(a *audit.Auditor) {
			a.ObserveREF(0, 1, 2*3900*ns) // expected REF #0
		}},
		{"REF-open-row", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveREF(0, 0, 3900*ns)
		}},
		{"REF-postpone", nil, func(a *audit.Auditor) {
			a.ObserveREF(0, 0, 2*3900*ns+1*ns) // 1ns past the one-tREFI budget
		}},
		{"RFM-before-ACT", func(c *audit.Config) { c.RFMBAT = 2 }, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObservePRE(0, 0, false, 32*ns)
			a.ObserveACT(0, 0, 2, 46*ns) // counter hits BAT=2: RFM now due
			a.ObservePRE(0, 0, false, 78*ns)
			a.ObserveACT(0, 0, 3, 92*ns) // ACT before the RFM
		}},
		{"RFM-spurious", func(c *audit.Config) { c.RFMBAT = 2 }, func(a *audit.Auditor) {
			a.ObserveRFM(0, 0, 10*ns)
		}},
		{"RFM-open-row", nil, func(a *audit.Auditor) {
			a.ObserveACT(0, 0, 1, 0)
			a.ObserveRFM(0, 0, 40*ns)
		}},
		{"alert-stall-command", nil, func(a *audit.Auditor) {
			a.ObserveAlert(0, mem.AlertPrologueStart, 0)
			a.ObserveAlert(0, mem.AlertStallStart, 180*ns)
			a.ObserveACT(0, 0, 1, 200*ns) // stall runs until 530ns
		}},
		{"alert-order", nil, func(a *audit.Auditor) {
			a.ObserveAlert(0, mem.AlertStallStart, 0)
		}},
		{"alert-window", nil, func(a *audit.Auditor) {
			a.ObserveAlert(0, mem.AlertPrologueStart, 0)
			a.ObserveAlert(0, mem.AlertStallStart, 180*ns)
			a.ObserveAlert(0, mem.AlertEnd, 400*ns) // stall ends at 530ns
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newAuditor(tc.cfg)
			tc.run(a)
			if a.Count() == 0 {
				t.Fatalf("sequence produced no violations, want %s", tc.name)
			}
			if a.ByConstraint()[tc.name] == 0 {
				t.Fatalf("constraint %s did not fire; got %v", tc.name, a.ByConstraint())
			}
		})
	}
}

// TestCleanSequencesPass drives protocol-legal sequences and expects
// silence, including the forced-PRE exemption during ALERT.
func TestCleanSequencesPass(t *testing.T) {
	t.Run("row-cycle", func(t *testing.T) {
		a := newAuditor(nil)
		a.ObserveACT(0, 0, 1, 0)
		a.ObserveRead(0, 0, 1, 14*ns)
		a.ObservePRE(0, 0, false, 50*ns)
		a.ObserveACT(0, 0, 2, 64*ns)
		if err := a.Err(); err != nil {
			t.Fatalf("legal sequence flagged: %v", err)
		}
	})
	t.Run("forced-pre-exempt", func(t *testing.T) {
		a := newAuditor(nil)
		a.ObserveACT(0, 0, 1, 0)
		a.ObserveAlert(0, mem.AlertPrologueStart, 5*ns)
		// Force-close 10ns after the ACT: tRAS would fail for a normal PRE.
		a.ObservePRE(0, 0, true, 185*ns)
		a.ObserveAlert(0, mem.AlertStallStart, 185*ns)
		a.ObserveAlert(0, mem.AlertEnd, 535*ns)
		a.ObserveACT(0, 0, 2, 540*ns)
		if err := a.Err(); err != nil {
			t.Fatalf("forced close flagged: %v", err)
		}
	})
	t.Run("four-acts-in-faw", func(t *testing.T) {
		a := newAuditor(nil)
		for i := 0; i < 4; i++ { // exactly four ACTs in a window is legal
			a.ObserveACT(0, i, 1, dram.Time(i)*3*ns)
		}
		a.ObserveACT(0, 4, 1, 13*ns) // fifth lands one full window later
		if err := a.Err(); err != nil {
			t.Fatalf("legal pacing flagged: %v", err)
		}
	})
}

func TestViolationErrorNamesConstraintBankAndTimestamps(t *testing.T) {
	a := newAuditor(nil)
	for i := 0; i < 5; i++ {
		a.ObserveACT(0, i, 7, dram.Time(i)*3*ns)
	}
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Constraint != "tFAW" || v.Sub != 0 || v.Bank != 4 {
		t.Errorf("violation = %+v, want tFAW on sub 0 bank 4", v)
	}
	if v.Prev != 0 || v.Now != 12*ns || v.Need != 13*ns {
		t.Errorf("timestamps = prev %v now %v need %v", v.Prev, v.Now, v.Need)
	}
	msg := v.Error()
	for _, want := range []string{"tFAW", "sub 0", "bank 4", "12.000ns", "13.000ns", "recent commands", "ACT b0 r7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestFinishConservationAgainstChannel(t *testing.T) {
	k := &sim.Kernel{}
	ch, err := mem.NewChannel(k, mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("clean", func(t *testing.T) {
		a := audit.ForChannel(ch)
		g := ch.Geometry()
		for i := 0; i < 200; i++ {
			addr := g.Compose(dram.Address{SubChannel: i % 2, Bank: i % 8, Row: i % 64, Col: i % 16})
			ch.Submit(&mem.Request{Addr: addr, Write: i%3 == 0})
		}
		k.RunUntil(50 * dram.Microsecond)
		if err := a.Finish(ch); err != nil {
			t.Fatalf("clean run failed audit: %v", err)
		}
		ch.InstallObserver(nil)
	})
	t.Run("unhooked-command", func(t *testing.T) {
		// An auditor that saw a command the channel never counted models a
		// command path missing its observer hook.
		a := audit.New(audit.Config{Timing: ch.Config().Timing, Geometry: ch.Geometry()})
		a.ObserveACT(0, 0, 1, 0)
		a.ObservePRE(0, 0, false, 32*ns)
		err := a.Finish(ch)
		if err == nil {
			t.Fatal("conservation mismatch not detected")
		}
		if a.ByConstraint()["conservation"] == 0 {
			t.Fatalf("expected conservation violations, got %v", a.ByConstraint())
		}
	})
}

func TestNilAuditorIsSafe(t *testing.T) {
	var a *audit.Auditor
	if a.Count() != 0 || a.Err() != nil || a.Violations() != nil || a.ByConstraint() != nil {
		t.Error("nil auditor accessors not inert")
	}
	if err := a.Finish(nil); err != nil {
		t.Errorf("nil auditor Finish = %v", err)
	}
}

func TestViolationCountersFlushSparse(t *testing.T) {
	k := &sim.Kernel{}
	reg := telemetry.New()
	ch, err := mem.NewChannel(k, mem.Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	a := audit.ForChannel(ch)
	a.ObserveACT(0, 0, 1, 0)
	a.ObserveACT(0, 0, 2, 2*ns) // ACT-open-bank + tRC + tRRD + tFAW-clean
	a.ObservePRE(0, 0, false, 50*ns)
	a.ObservePRE(0, 0, false, 80*ns) // PRE-closed-bank
	if err := a.Finish(ch); err == nil {
		t.Fatal("expected violations")
	}
	snap := reg.Snapshot()
	var total, series int64
	for _, c := range snap.Counters {
		if c.Name == "audit_violations_total" {
			series++
			total += c.Value
			if !c.Sparse {
				t.Errorf("series %v not flagged sparse", c.Labels)
			}
		}
	}
	if series != int64(len(audit.Constraints)) {
		t.Errorf("raw snapshot has %d audit series, want full catalogue of %d", series, len(audit.Constraints))
	}
	if total != a.Count() {
		t.Errorf("flushed %d violations, auditor counted %d", total, a.Count())
	}
	var kept, zeros int64
	for _, c := range snap.Canonical().Counters {
		if c.Name == "audit_violations_total" {
			kept++
			if c.Value == 0 {
				zeros++
			}
		}
	}
	if zeros != 0 {
		t.Errorf("canonical snapshot kept %d zero-valued audit series", zeros)
	}
	if kept == 0 {
		t.Error("canonical snapshot dropped the non-zero audit series")
	}
}
