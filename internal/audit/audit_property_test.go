package audit_test

import (
	"strings"
	"testing"

	"mirza/internal/audit"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// stormMitigator raises an ALERT every `period` activations: an adversarial
// stand-in for a PRAC-style tracker under a hammering workload, used to
// drive dense ALERT prologue/stall/forced-close sequences past the auditor.
type stormMitigator struct {
	track.Nop
	period  int
	acts    int
	pending bool
}

func (m *stormMitigator) OnActivate(bank, row int, now dram.Time) {
	m.acts++
	if m.acts%m.period == 0 {
		m.pending = true
	}
}
func (m *stormMitigator) WantsALERT() bool           { return m.pending }
func (m *stormMitigator) ServiceALERT(now dram.Time) { m.pending = false }

// drive runs a closed-loop randomized workload against ch: `outstanding`
// requests are kept in flight, each completion immediately submitting the
// next address from gen, until horizon. Deterministic for a fixed seed.
func drive(t *testing.T, k *sim.Kernel, ch *mem.Channel, seed uint64, horizon dram.Time, outstanding int,
	gen func(rng *stats.RNG, i int) dram.Address) {
	t.Helper()
	rng := stats.NewRNG(seed)
	g := ch.Geometry()
	i := 0
	var submit func()
	submit = func() {
		addr := gen(rng, i)
		i++
		write := rng.Intn(4) == 0
		ch.Submit(&mem.Request{
			Addr:  g.Compose(addr),
			Write: write,
			Done: func(now dram.Time) {
				if now < horizon {
					submit()
				}
			},
		})
	}
	for j := 0; j < outstanding; j++ {
		submit()
	}
	k.RunUntil(horizon)
}

// TestAuditCleanUnderAdversarialTraffic attaches the auditor to real
// channels and hammers them with the traffic shapes most likely to shake
// out a scheduler timing bug: bursty same-bank storms, tFAW-saturating
// multi-bank sprays, ALERT storms with forced row closes, and REF pressure
// with proactive RFM in the mix. A compliant scheduler must produce zero
// violations under all of them.
func TestAuditCleanUnderAdversarialTraffic(t *testing.T) {
	const horizon = 100 * dram.Microsecond
	profiles := []struct {
		name        string
		cfg         mem.Config
		outstanding int
		gen         func(rng *stats.RNG, i int) dram.Address
		check       func(t *testing.T, st mem.Stats)
	}{
		{
			name:        "bursty-same-bank",
			cfg:         mem.Config{},
			outstanding: 32,
			gen: func(rng *stats.RNG, i int) dram.Address {
				// Row conflicts on one bank per sub-channel: maximum
				// tRC/tRP/tRAS pressure.
				return dram.Address{SubChannel: i % 2, Bank: 0, Row: rng.Intn(512), Col: rng.Intn(16)}
			},
			check: func(t *testing.T, st mem.Stats) {
				if st.ACTs < 500 {
					t.Errorf("profile too gentle: only %d ACTs", st.ACTs)
				}
			},
		},
		{
			name:        "tfaw-saturating",
			cfg:         mem.Config{},
			outstanding: 64,
			gen: func(rng *stats.RNG, i int) dram.Address {
				// Every request misses in a different bank: the scheduler
				// runs at the tRRD/tFAW pacing limit.
				return dram.Address{SubChannel: i % 2, Bank: (i / 2) % 32, Row: rng.Intn(4096), Col: 0}
			},
			check: func(t *testing.T, st mem.Stats) {
				if st.ACTs < 2000 {
					t.Errorf("profile too gentle: only %d ACTs", st.ACTs)
				}
			},
		},
		{
			name: "alert-storm",
			cfg: mem.Config{
				NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
					return &stormMitigator{period: 40}
				},
			},
			outstanding: 64,
			gen: func(rng *stats.RNG, i int) dram.Address {
				return dram.Address{SubChannel: i % 2, Bank: rng.Intn(32), Row: rng.Intn(4096), Col: 0}
			},
			check: func(t *testing.T, st mem.Stats) {
				if st.Alerts < 10 {
					t.Errorf("ALERT storm produced only %d ALERTs", st.Alerts)
				}
			},
		},
		{
			name:        "ref-starved-with-rfm",
			cfg:         mem.Config{RFMBAT: 16},
			outstanding: 64,
			gen: func(rng *stats.RNG, i int) dram.Address {
				return dram.Address{SubChannel: i % 2, Bank: rng.Intn(32), Row: rng.Intn(4096), Col: 0}
			},
			check: func(t *testing.T, st mem.Stats) {
				if st.REFs < 20 {
					t.Errorf("horizon covered only %d REFs", st.REFs)
				}
				if st.RFMs == 0 {
					t.Error("no proactive RFMs issued")
				}
			},
		},
		{
			name:        "rowpress-long-open-rows",
			cfg:         mem.Config{RowPressWeighting: true},
			outstanding: 8,
			gen: func(rng *stats.RNG, i int) dram.Address {
				// Sparse hits keep rows open long enough to trip the
				// RowPress equivalent-ACT weighting on close.
				return dram.Address{SubChannel: i % 2, Bank: rng.Intn(4), Row: rng.Intn(8), Col: rng.Intn(64)}
			},
			check: func(t *testing.T, st mem.Stats) {},
		},
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			k := &sim.Kernel{}
			ch, err := mem.NewChannel(k, p.cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := audit.ForChannel(ch)
			drive(t, k, ch, 42, horizon, p.outstanding, p.gen)
			st := ch.Stats()
			p.check(t, st)
			if err := a.Finish(ch); err != nil {
				t.Errorf("auditor flagged a compliant scheduler: %v", err)
			}
		})
	}
}

// TestAuditorCatchesDisabledFAW disables the scheduler's tFAW pacing via
// the mem debug hook and proves the auditor reports it: a Violation naming
// the constraint, the bank, and both offending ACT timestamps.
func TestAuditorCatchesDisabledFAW(t *testing.T) {
	mem.InstallDebug(&mem.DebugOptions{SkipFAW: true})
	defer mem.InstallDebug(nil)

	k := &sim.Kernel{}
	ch, err := mem.NewChannel(k, mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := audit.ForChannel(ch)
	drive(t, k, ch, 7, 20*dram.Microsecond, 64, func(rng *stats.RNG, i int) dram.Address {
		return dram.Address{SubChannel: i % 2, Bank: (i / 2) % 32, Row: rng.Intn(4096), Col: 0}
	})
	if a.ByConstraint()["tFAW"] == 0 {
		t.Fatalf("tFAW never flagged; violations: %v", a.ByConstraint())
	}
	var v *audit.Violation
	for _, cand := range a.Violations() {
		if cand.Constraint == "tFAW" {
			v = cand
			break
		}
	}
	if v == nil {
		t.Fatal("no retained tFAW violation record")
	}
	tfaw := dram.DDR5().TFAW
	if v.Bank < 0 || v.Need != tfaw || v.Now-v.Prev >= tfaw || v.Prev < 0 {
		t.Errorf("violation lacks diagnostics: %+v", v)
	}
	msg := v.Error()
	for _, want := range []string{"tFAW", "bank", v.Prev.String(), v.Now.String()} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if err := a.Finish(ch); err == nil {
		t.Error("Finish returned nil despite violations")
	}
}

// pacingRecorder is a minimal CommandObserver that collects per-sub ACT
// issue times, for asserting pacing properties independently of the
// auditor's own bookkeeping.
type pacingRecorder struct {
	acts [][]dram.Time
}

func (r *pacingRecorder) ObserveSubmit(sub int, write bool, now dram.Time) {}
func (r *pacingRecorder) ObserveACT(sub, bank, row int, now dram.Time) {
	r.acts[sub] = append(r.acts[sub], now)
}
func (r *pacingRecorder) ObservePRE(sub, bank int, forced bool, now dram.Time)      {}
func (r *pacingRecorder) ObserveRead(sub, bank, row int, now dram.Time)             {}
func (r *pacingRecorder) ObserveWrite(sub, bank, row int, now dram.Time)            {}
func (r *pacingRecorder) ObserveREF(sub, refIndex int, now dram.Time)               {}
func (r *pacingRecorder) ObserveRFM(sub, bank int, now dram.Time)                   {}
func (r *pacingRecorder) ObserveAlert(sub int, phase mem.AlertPhase, now dram.Time) {}

// TestACTPacingProperty asserts, from raw recorded ACT times under
// randomized traffic, that no two ACTs on a sub-channel are closer than
// tRRD and no five ACTs fall inside one tFAW window.
func TestACTPacingProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		k := &sim.Kernel{}
		ch, err := mem.NewChannel(k, mem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rec := &pacingRecorder{acts: make([][]dram.Time, ch.Geometry().SubChannels)}
		ch.InstallObserver(rec)
		drive(t, k, ch, seed, 50*dram.Microsecond, 64, func(rng *stats.RNG, i int) dram.Address {
			return dram.Address{SubChannel: i % 2, Bank: rng.Intn(32), Row: rng.Intn(4096), Col: rng.Intn(16)}
		})
		tm := dram.DDR5()
		for sub, acts := range rec.acts {
			if len(acts) < 100 {
				t.Fatalf("seed %d sub %d: only %d ACTs recorded", seed, sub, len(acts))
			}
			for i := 1; i < len(acts); i++ {
				if acts[i]-acts[i-1] < tm.TRRD {
					t.Fatalf("seed %d sub %d: ACTs %v and %v violate tRRD %v",
						seed, sub, acts[i-1], acts[i], tm.TRRD)
				}
			}
			for i := 4; i < len(acts); i++ {
				if acts[i]-acts[i-4] < tm.TFAW {
					t.Fatalf("seed %d sub %d: five ACTs within %v (< tFAW %v) ending at %v",
						seed, sub, acts[i]-acts[i-4], tm.TFAW, acts[i])
				}
			}
		}
	}
}
