// Package vmap models the OS virtual-to-physical mapping assumed by the
// paper's methodology (Section III.A): pages allocated on first touch by a
// clock-style allocator.
//
// Two properties of real long-running systems matter for DRAM studies and
// are modeled explicitly:
//
//  1. Local contiguity: transparent huge pages and buddy-allocator locality
//     keep virtual locality physically contiguous at multi-megabyte
//     granularity (SuperBytes = 32MB here), so a program's data-structure
//     layout — including the power-of-two stride patterns that create
//     per-subarray hot spots — survives translation.
//  2. Global spread: after uptime the clock hand has swept the whole
//     physical space, so allocations scatter across all of memory rather
//     than packing into the lowest rows. The allocator hands out
//     superblocks along a fixed coprime stride of the physical superblock
//     space, a deterministic stand-in for that steady state.
package vmap

import "fmt"

// PageBytes is the base OS page size.
const PageBytes = 4096

// SuperBytes is the granularity of physical contiguity (and of allocation).
// 512MB — a handful of buddy-allocator zones — preserves a workload's
// spatial structure (both the mod-32MB stride classes that create
// per-subarray hot spots and the page-level contiguity that concentrates
// sequentially-mapped footprints into few subarrays, Table VI), while the
// scattered placement of blocks across all of memory reflects a
// long-running system's occupancy.
const SuperBytes = 512 << 20

// Mapper assigns physical superblocks to (address-space, virtual
// superblock) pairs on first touch.
type Mapper struct {
	totalSuper uint64
	stride     uint64
	next       uint64
	blocks     map[uint64]uint64 // asid<<40 | vsuper -> physical superblock
	used       map[uint64]bool
}

// NewMapper creates a mapper over a physical memory of capacityBytes.
func NewMapper(capacityBytes uint64) *Mapper {
	if capacityBytes < SuperBytes {
		panic(fmt.Sprintf("vmap: capacity %d smaller than one superblock", capacityBytes))
	}
	total := capacityBytes / SuperBytes
	// A stride near the golden ratio of the space, made coprime, visits
	// every superblock exactly once while scattering consecutive
	// allocations across the whole physical range.
	stride := uint64(float64(total)*0.6180339887) | 1
	for gcd(stride, total) != 1 {
		stride += 2
	}
	return &Mapper{
		totalSuper: total,
		stride:     stride,
		blocks:     make(map[uint64]uint64),
		used:       make(map[uint64]bool),
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Translate returns the physical address for vaddr in address space asid,
// allocating a superblock on first touch. Offsets within the superblock
// are preserved.
func (m *Mapper) Translate(asid int, vaddr uint64) uint64 {
	vsuper := vaddr / SuperBytes
	key := uint64(asid)<<40 | (vsuper & (1<<40 - 1))
	block, ok := m.blocks[key]
	if !ok {
		block = (m.next * m.stride) % m.totalSuper
		m.next++
		// After a full sweep the clock hand reclaims; probe linearly for
		// determinism when wrapped.
		for m.used[block] && uint64(len(m.used)) < m.totalSuper {
			block = (block + 1) % m.totalSuper
		}
		m.used[block] = true
		m.blocks[key] = block
	}
	return block*SuperBytes + vaddr%SuperBytes
}

// Mapped returns the number of 4KB pages currently mapped (superblocks are
// accounted as their page equivalents).
func (m *Mapper) Mapped() int { return len(m.blocks) * (SuperBytes / PageBytes) }

// MappedBlocks returns the number of mapped superblocks.
func (m *Mapper) MappedBlocks() int { return len(m.blocks) }

// Frames returns the total number of physical 4KB frames.
func (m *Mapper) Frames() uint64 { return m.totalSuper * (SuperBytes / PageBytes) }
