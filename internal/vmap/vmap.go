// Package vmap models the OS virtual-to-physical mapping assumed by the
// paper's methodology (Section III.A): pages allocated on first touch by a
// clock-style allocator.
//
// Two properties of real long-running systems matter for DRAM studies and
// are modeled explicitly:
//
//  1. Local contiguity: transparent huge pages and buddy-allocator locality
//     keep virtual locality physically contiguous at multi-megabyte
//     granularity (SuperBytes = 32MB here), so a program's data-structure
//     layout — including the power-of-two stride patterns that create
//     per-subarray hot spots — survives translation.
//  2. Global spread: after uptime the clock hand has swept the whole
//     physical space, so allocations scatter across all of memory rather
//     than packing into the lowest rows. The allocator hands out
//     superblocks along a fixed coprime stride of the physical superblock
//     space, a deterministic stand-in for that steady state.
package vmap

import (
	"fmt"
	"sort"
)

// PageBytes is the base OS page size.
const PageBytes = 4096

// SuperBytes is the granularity of physical contiguity (and of allocation).
// 512MB — a handful of buddy-allocator zones — preserves a workload's
// spatial structure (both the mod-32MB stride classes that create
// per-subarray hot spots and the page-level contiguity that concentrates
// sequentially-mapped footprints into few subarrays, Table VI), while the
// scattered placement of blocks across all of memory reflects a
// long-running system's occupancy.
const SuperBytes = 512 << 20

// Key layout: lookups are keyed asid<<asidShift | vsuper, so an address
// space may span at most 1<<asidShift superblocks (512 TB of virtual
// footprint) and at most MaxASID+1 address spaces are representable.
// Both limits are validated — see CheckASID and Translate — because a
// silent wrap of either field would alias two different address spaces
// onto one mapping, which for a RowHammer study silently merges tenants.
const (
	asidShift = 40
	vsuperMax = uint64(1)<<asidShift - 1

	// MaxASID is the largest valid address-space identifier.
	MaxASID = int(uint64(1)<<(64-asidShift) - 1)
)

// Mapper assigns physical superblocks to (address-space, virtual
// superblock) pairs on first touch.
type Mapper struct {
	totalSuper uint64
	stride     uint64
	next       uint64
	blocks     map[uint64]uint64 // asid<<asidShift | vsuper -> physical superblock
	used       map[uint64]bool
	owners     map[uint64]int // physical superblock -> owning asid
}

// NewMapper creates a mapper over a physical memory of capacityBytes.
func NewMapper(capacityBytes uint64) *Mapper {
	if capacityBytes < SuperBytes {
		panic(fmt.Sprintf("vmap: capacity %d smaller than one superblock", capacityBytes))
	}
	total := capacityBytes / SuperBytes
	// A stride near the golden ratio of the space, made coprime, visits
	// every superblock exactly once while scattering consecutive
	// allocations across the whole physical range.
	stride := uint64(float64(total)*0.6180339887) | 1
	for gcd(stride, total) != 1 {
		stride += 2
	}
	return &Mapper{
		totalSuper: total,
		stride:     stride,
		blocks:     make(map[uint64]uint64),
		used:       make(map[uint64]bool),
		owners:     make(map[uint64]int),
	}
}

// CheckASID reports whether asid can be keyed without colliding with
// another address space. Callers that accept ASIDs from configuration
// should validate them here, at setup time, so the per-access Translate
// path stays check-free aside from its own last-resort panic.
func CheckASID(asid int) error {
	if asid < 0 || asid > MaxASID {
		return fmt.Errorf("vmap: asid %d out of range [0, %d]: the mapping key packs the asid above %d bits of virtual superblock index, so a wider asid would alias another address space", asid, MaxASID, asidShift)
	}
	return nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Translate returns the physical address for vaddr in address space asid,
// allocating a superblock on first touch. Offsets within the superblock
// are preserved. Out-of-range inputs panic with the TranslateChecked
// error; validate ASIDs with CheckASID before entering the access path.
func (m *Mapper) Translate(asid int, vaddr uint64) uint64 {
	phys, err := m.TranslateChecked(asid, vaddr)
	if err != nil {
		panic(err)
	}
	return phys
}

// TranslateChecked is Translate with the key-packing bounds enforced as a
// descriptive error instead of a silent collision: an asid wider than the
// key's asid field or a virtual footprint past the vsuper field would
// alias a different address space's mappings.
func (m *Mapper) TranslateChecked(asid int, vaddr uint64) (uint64, error) {
	if err := CheckASID(asid); err != nil {
		return 0, err
	}
	vsuper := vaddr / SuperBytes
	if vsuper > vsuperMax {
		return 0, fmt.Errorf("vmap: asid %d vaddr %#x exceeds the %d-bit virtual superblock field (max superblock index %d)", asid, vaddr, asidShift, vsuperMax)
	}
	key := uint64(asid)<<asidShift | vsuper
	block, ok := m.blocks[key]
	if !ok {
		block = (m.next * m.stride) % m.totalSuper
		m.next++
		// After a full sweep the clock hand reclaims; probe linearly for
		// determinism when wrapped.
		for m.used[block] && uint64(len(m.used)) < m.totalSuper {
			block = (block + 1) % m.totalSuper
		}
		m.used[block] = true
		m.blocks[key] = block
		m.owners[block] = asid
	}
	return block*SuperBytes + vaddr%SuperBytes, nil
}

// OwnerOf returns the asid owning the superblock containing physical
// address phys, or ok=false if that superblock is unallocated. This is
// the attribution primitive for multi-tenant studies: a disturbed row is
// charged to whichever tenant's data lives there.
func (m *Mapper) OwnerOf(phys uint64) (asid int, ok bool) {
	asid, ok = m.owners[phys/SuperBytes]
	return asid, ok
}

// BlocksOf returns the physical superblock indices owned by asid, sorted.
func (m *Mapper) BlocksOf(asid int) []uint64 {
	var out []uint64
	for block, owner := range m.owners {
		if owner == asid {
			out = append(out, block)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mapped returns the number of 4KB pages currently mapped (superblocks are
// accounted as their page equivalents).
func (m *Mapper) Mapped() int { return len(m.blocks) * (SuperBytes / PageBytes) }

// MappedBlocks returns the number of mapped superblocks.
func (m *Mapper) MappedBlocks() int { return len(m.blocks) }

// Frames returns the total number of physical 4KB frames.
func (m *Mapper) Frames() uint64 { return m.totalSuper * (SuperBytes / PageBytes) }
