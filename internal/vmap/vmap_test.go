package vmap

import (
	"testing"
	"testing/quick"
)

func TestTranslateStable(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	a := m.Translate(0, 0x1234)
	b := m.Translate(0, 0x1234)
	if a != b {
		t.Fatal("translation must be stable")
	}
	if a%PageBytes != 0x234 {
		t.Errorf("page offset not preserved: %x", a)
	}
}

func TestDistinctSpacesDistinctFrames(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	a := m.Translate(0, 0)
	b := m.Translate(1, 0)
	if a == b {
		t.Error("different address spaces must get different superblocks")
	}
	if m.MappedBlocks() != 2 {
		t.Errorf("blocks = %d", m.MappedBlocks())
	}
}

func TestSuperblockContiguity(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	// All addresses within one superblock stay physically contiguous
	// (relative offsets preserved), so mod-32MB structure survives.
	base := m.Translate(0, 0)
	for off := uint64(PageBytes); off < SuperBytes; off += 16 << 20 {
		p := m.Translate(0, off)
		if p != base+off {
			t.Fatalf("offset %x: got %x, want %x", off, p, base+off)
		}
	}
}

func TestAllocationsSpreadAcrossMemory(t *testing.T) {
	// 64 superblocks; allocating 16 must cover a wide range of the
	// physical space (steady-state clock spread), not pack low.
	m := NewMapper(64 * SuperBytes)
	var min, max uint64 = 1 << 62, 0
	for i := 0; i < 16; i++ {
		p := m.Translate(0, uint64(i)*SuperBytes)
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if span := max - min; span < uint64(32*SuperBytes) {
		t.Errorf("allocations span only %d bytes of the space", span)
	}
}

func TestNoDoubleAssignmentBeforeWrap(t *testing.T) {
	m := NewMapper(64 * SuperBytes)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		p := m.Translate(0, uint64(i)*SuperBytes) / SuperBytes
		if seen[p] {
			t.Fatalf("superblock %d assigned twice before exhaustion", p)
		}
		seen[p] = true
	}
}

func TestWraparoundReuses(t *testing.T) {
	m := NewMapper(4 * SuperBytes)
	f := func(v uint8) bool {
		p := m.Translate(1, uint64(v)*SuperBytes)
		return p < 4*SuperBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOffsetsWithinPage(t *testing.T) {
	m := NewMapper(2 * SuperBytes)
	f := func(page uint16, off uint16) bool {
		v := uint64(page)*PageBytes + uint64(off)%PageBytes
		p := m.Translate(2, v)
		return p%PageBytes == v%PageBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
