package vmap

import (
	"testing"
	"testing/quick"
)

func TestTranslateStable(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	a := m.Translate(0, 0x1234)
	b := m.Translate(0, 0x1234)
	if a != b {
		t.Fatal("translation must be stable")
	}
	if a%PageBytes != 0x234 {
		t.Errorf("page offset not preserved: %x", a)
	}
}

func TestDistinctSpacesDistinctFrames(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	a := m.Translate(0, 0)
	b := m.Translate(1, 0)
	if a == b {
		t.Error("different address spaces must get different superblocks")
	}
	if m.MappedBlocks() != 2 {
		t.Errorf("blocks = %d", m.MappedBlocks())
	}
}

func TestSuperblockContiguity(t *testing.T) {
	m := NewMapper(8 * SuperBytes)
	// All addresses within one superblock stay physically contiguous
	// (relative offsets preserved), so mod-32MB structure survives.
	base := m.Translate(0, 0)
	for off := uint64(PageBytes); off < SuperBytes; off += 16 << 20 {
		p := m.Translate(0, off)
		if p != base+off {
			t.Fatalf("offset %x: got %x, want %x", off, p, base+off)
		}
	}
}

func TestAllocationsSpreadAcrossMemory(t *testing.T) {
	// 64 superblocks; allocating 16 must cover a wide range of the
	// physical space (steady-state clock spread), not pack low.
	m := NewMapper(64 * SuperBytes)
	var min, max uint64 = 1 << 62, 0
	for i := 0; i < 16; i++ {
		p := m.Translate(0, uint64(i)*SuperBytes)
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if span := max - min; span < uint64(32*SuperBytes) {
		t.Errorf("allocations span only %d bytes of the space", span)
	}
}

func TestNoDoubleAssignmentBeforeWrap(t *testing.T) {
	m := NewMapper(64 * SuperBytes)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		p := m.Translate(0, uint64(i)*SuperBytes) / SuperBytes
		if seen[p] {
			t.Fatalf("superblock %d assigned twice before exhaustion", p)
		}
		seen[p] = true
	}
}

func TestWraparoundReuses(t *testing.T) {
	m := NewMapper(4 * SuperBytes)
	f := func(v uint8) bool {
		p := m.Translate(1, uint64(v)*SuperBytes)
		return p < 4*SuperBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOffsetsWithinPage(t *testing.T) {
	m := NewMapper(2 * SuperBytes)
	f := func(page uint16, off uint16) bool {
		v := uint64(page)*PageBytes + uint64(off)%PageBytes
		p := m.Translate(2, v)
		return p%PageBytes == v%PageBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestASIDBounds is the regression test for the key-packing collision:
// before bounds validation, asid = 1<<24 silently keyed identically to
// asid = 0 (the shifted bits fell off the top of the uint64), merging two
// address spaces into one mapping.
func TestASIDBounds(t *testing.T) {
	m := NewMapper(8 << 30)

	if err := CheckASID(0); err != nil {
		t.Fatalf("CheckASID(0): %v", err)
	}
	if err := CheckASID(MaxASID); err != nil {
		t.Fatalf("CheckASID(MaxASID): %v", err)
	}
	for _, asid := range []int{-1, MaxASID + 1, MaxASID * 2} {
		if err := CheckASID(asid); err == nil {
			t.Errorf("CheckASID(%d): want error, got nil", asid)
		}
		if _, err := m.TranslateChecked(asid, 0); err == nil {
			t.Errorf("TranslateChecked(%d, 0): want error, got nil", asid)
		}
	}

	// The collision itself: the overflowing asid must NOT share asid 0's
	// physical placement (it must be rejected, not aliased).
	p0 := m.Translate(0, 0x1234)
	if p1, err := m.TranslateChecked(MaxASID+1, 0x1234); err == nil && p1 == p0 {
		t.Fatalf("asid %d aliased asid 0 at phys %#x", MaxASID+1, p0)
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Translate with out-of-range asid did not panic")
		}
	}()
	m.Translate(MaxASID+1, 0)
}

// TestOwnership checks the per-superblock owner attribution used by the
// multi-tenant experiments.
func TestOwnership(t *testing.T) {
	m := NewMapper(8 << 30)

	pa := m.Translate(1, 0)
	pb := m.Translate(2, 0)
	pc := m.Translate(2, SuperBytes) // second block of asid 2

	if asid, ok := m.OwnerOf(pa); !ok || asid != 1 {
		t.Errorf("OwnerOf(%#x) = %d,%v want 1,true", pa, asid, ok)
	}
	if asid, ok := m.OwnerOf(pb + 123); !ok || asid != 2 {
		t.Errorf("OwnerOf(%#x) = %d,%v want 2,true", pb+123, asid, ok)
	}
	if len(m.BlocksOf(1)) != 1 || len(m.BlocksOf(2)) != 2 {
		t.Errorf("BlocksOf: got %d,%d blocks want 1,2", len(m.BlocksOf(1)), len(m.BlocksOf(2)))
	}
	blocks := m.BlocksOf(2)
	if want := []uint64{pb / SuperBytes, pc / SuperBytes}; blocks[0] == blocks[1] ||
		(blocks[0] != want[0] && blocks[0] != want[1]) {
		t.Errorf("BlocksOf(2) = %v inconsistent with translations %v", blocks, want)
	}

	// Repeated touches do not reassign ownership.
	m.Translate(1, 100)
	if asid, _ := m.OwnerOf(pa); asid != 1 {
		t.Errorf("ownership changed on repeat touch: %d", asid)
	}
	// Untouched physical space has no owner.
	for block := uint64(0); block < m.totalSuper; block++ {
		if _, used := m.used[block]; !used {
			if _, ok := m.OwnerOf(block * SuperBytes); ok {
				t.Fatalf("free block %d has an owner", block)
			}
			break
		}
	}
}
