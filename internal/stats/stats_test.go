package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, buckets = 100000, 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	f := func(_ int) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var w Running
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %v, want ~1", w.StdDev())
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide: %d/1000", same)
	}
}

func TestRunningMoments(t *testing.T) {
	var w Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v over %d", w.Mean(), w.N())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", w.StdDev())
	}
}

func TestRunningMerge(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				xs[i] = float64(i)
			}
		}
		k := int(split) % len(xs)
		var all, a, b Running
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median = %v, want ~5", med)
	}
	// Clamping.
	h.Add(-5)
	h.Add(1e9)
	if h.Counts[0] == 0 || h.Counts[len(h.Counts)-1] == 0 {
		t.Error("out-of-range values must clamp to the edge buckets")
	}
}

func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(8, 1.0)
	h.Add(math.NaN())
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
	// NaN and -Inf clamp to the first bucket, +Inf to the last; the index
	// must stay in range on every platform (float-to-int conversion of
	// out-of-range values is implementation-defined).
	if h.Counts[0] != 2 {
		t.Errorf("first bucket = %d, want 2 (NaN and -Inf)", h.Counts[0])
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("last bucket = %d, want 1 (+Inf)", h.Counts[len(h.Counts)-1])
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 3 {
		t.Errorf("buckets hold %d observations, want 3 (none lost out of range)", sum)
	}
	// A zero-width histogram divides by zero; the result must still land
	// in a valid bucket.
	z := &Histogram{BucketWidth: 0, Counts: make([]int64, 4)}
	z.Add(1)  // 1/0 = +Inf
	z.Add(0)  // 0/0 = NaN
	z.Add(-1) // -1/0 = -Inf
	if z.Counts[0] != 2 || z.Counts[3] != 1 {
		t.Errorf("zero-width histogram buckets = %v", z.Counts)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: 0 for any q, including garbage q.
	empty := NewHistogram(4, 1.0)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Populated histogram with distinct low/high buckets: bucket 1 holds
	// the low half, bucket 5 the high half (midpoints 1.5 and 5.5).
	h := NewHistogram(8, 1.0)
	for i := 0; i < 10; i++ {
		h.Add(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Add(5.5)
	}
	// q < 0 and NaN clamp to 0: lowest populated bucket midpoint.
	for _, q := range []float64{-0.5, -1e9, math.NaN(), 0} {
		if got := h.Quantile(q); got != 1.5 {
			t.Errorf("Quantile(%v) = %v, want 1.5 (clamped to q=0)", q, got)
		}
	}
	// q > 1 clamps to 1: highest populated bucket midpoint, not the last
	// bucket of the array.
	for _, q := range []float64{1, 1.5, 1e9, math.Inf(1)} {
		if got := h.Quantile(q); got != 5.5 {
			t.Errorf("Quantile(%v) = %v, want 5.5 (clamped to q=1)", q, got)
		}
	}

	// Single-bucket histogram: every quantile is the one midpoint.
	one := NewHistogram(1, 2.0)
	one.Add(0.3)
	one.Add(1.7)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := one.Quantile(q); got != 1.0 {
			t.Errorf("single-bucket Quantile(%v) = %v, want 1.0", q, got)
		}
	}
}

func TestHistogramFromCounts(t *testing.T) {
	counts := []int64{2, 0, 3, 1}
	h := HistogramFromCounts(10, counts)
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	// Median: cumulative 2,2,5 -> the 3rd observation (target 3) is in
	// bucket 2, midpoint 25.
	if got := h.Quantile(0.5); got != 25 {
		t.Errorf("Quantile(0.5) = %v, want 25", got)
	}
	if got := h.Quantile(1); got != 35 {
		t.Errorf("Quantile(1) = %v, want 35 (highest populated bucket)", got)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
