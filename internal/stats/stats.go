// Package stats provides small statistics helpers used across the simulator:
// deterministic pseudo-random number generation, running moments, counters,
// and histograms. Everything is allocation-light so it can sit on the
// per-activation hot path of the memory-system simulator.
package stats

import "math"

// RNG is a deterministic 64-bit pseudo-random number generator
// (xorshift128+). It is the only source of randomness in the repository:
// MINT sampling, workload generators and Monte-Carlo security runs all draw
// from explicitly seeded RNG values, which keeps every experiment
// reproducible.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns an RNG seeded from seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state from seed using splitmix64, which
// guarantees a well-mixed nonzero internal state for any seed value.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] so the log is finite.
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split returns a new RNG whose stream is independent of (but a
// deterministic function of) the parent stream. Useful for giving each core
// or bank its own generator without correlated draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Running accumulates a running mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates sample x.
func (w *Running) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Running) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Running) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than two samples.
func (w *Running) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Running) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds other into w, as if all of other's samples had been added.
func (w *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	w.n = n
}

// Histogram is a fixed-width bucket histogram over [0, BucketWidth*len).
// Values beyond the last bucket are clamped into it.
type Histogram struct {
	BucketWidth float64
	Counts      []int64
	total       int64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	return &Histogram{BucketWidth: width, Counts: make([]int64, n)}
}

// HistogramFromCounts reconstructs a histogram from externally accumulated
// bucket counts (e.g. a telemetry snapshot), so Quantile and Total work on
// data that was not collected through Add. The counts slice is used
// directly, not copied.
func HistogramFromCounts(width float64, counts []int64) *Histogram {
	h := &Histogram{BucketWidth: width, Counts: counts}
	for _, c := range counts {
		h.total += c
	}
	return h
}

// Add records one observation of x. Non-finite observations are clamped —
// NaN and -Inf into the first bucket, +Inf into the last — before the
// float-to-int conversion, whose behaviour for out-of-range values is
// implementation-defined in Go.
func (h *Histogram) Add(x float64) {
	last := len(h.Counts) - 1
	i := 0
	// NaN fails both comparisons and stays in the first bucket.
	if f := x / h.BucketWidth; f >= float64(last) {
		i = last
	} else if f > 0 {
		i = int(f)
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an approximation of the q-quantile using bucket
// midpoints.
//
// Clamping contract: q is clamped into [0, 1] before use — q < 0 behaves
// like 0 (the midpoint of the lowest populated bucket), q > 1 like 1 (the
// midpoint of the highest populated bucket), and NaN like 0 (it is not a
// quantile, but a deterministic answer beats an implementation-defined
// float-to-int conversion). With no samples Quantile returns 0 for any q.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	// NaN fails the first comparison and is clamped to 0.
	if !(q > 0) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1 // q == 1: land in the highest populated bucket
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return (float64(i) + 0.5) * h.BucketWidth
		}
	}
	return (float64(len(h.Counts)) - 0.5) * h.BucketWidth
}
