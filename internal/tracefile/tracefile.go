// Package tracefile ingests recorded memory traces and turns them into
// the same trace.Op stream the synthetic generators produce, so external
// workloads — DRAMSim3-style request traces or this repository's native
// NDJSON format — drive the cycle-level simulator and the fast replayer
// with zero changes to either hot path.
//
// Two formats are supported, sniffed from the first payload line:
//
//   - DRAMSim3: whitespace-separated "address command cycle" per line,
//     e.g. "0x2A3F4B80 READ 100". Addresses are hex with an 0x prefix or
//     plain decimal; commands are READ/WRITE (RD/WR accepted); cycles are
//     non-decreasing memory-clock timestamps whose deltas become Op.Gap.
//   - NDJSON: one JSON object per line mirroring trace.Op, e.g.
//     {"gap":12,"line":81502,"write":false}; "addr" (byte address, number
//     or "0x..." string) may replace "line".
//
// Lines that are empty or start with '#' are skipped in both formats.
//
// Parsing is strict by default: the first malformed line aborts with a
// line-numbered error. Lenient mode instead records a bounded list of
// line-numbered diagnostics, skips the offending lines, and clamps
// out-of-order cycles. Reading is bounded (line length and operation
// count) so a malformed or hostile file cannot exhaust memory.
//
// Loading is deterministic: the same file yields a byte-identical
// manifest (see Trace.ManifestJSON), which is what lets run manifests and
// the serve cache key trace-driven jobs by content.
package tracefile

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mirza/internal/trace"
)

// Format identifies a trace file format.
type Format int

const (
	// FormatAuto sniffs the format from the first payload line.
	FormatAuto Format = iota
	// FormatDRAMSim3 is the "address command cycle" text format.
	FormatDRAMSim3
	// FormatNDJSON is one trace.Op JSON object per line.
	FormatNDJSON
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatDRAMSim3:
		return "dramsim3"
	case FormatNDJSON:
		return "ndjson"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Defaults for Options fields left zero.
const (
	DefaultMaxLineBytes = 1 << 20  // longest accepted input line
	DefaultMaxOps       = 16 << 20 // most operations retained per trace
	DefaultMaxDiags     = 64       // most diagnostics retained (lenient mode)
)

// Options configures parsing.
type Options struct {
	// Format forces a format; FormatAuto sniffs.
	Format Format
	// Lenient skips malformed lines with diagnostics instead of failing
	// on the first one.
	Lenient bool
	// MaxLineBytes bounds a single input line (default 1MB).
	MaxLineBytes int
	// MaxOps bounds the number of retained operations (default 16M);
	// exceeding it is an error in either mode — a truncated trace would
	// silently change the experiment.
	MaxOps int
	// MaxDiags bounds retained diagnostics in lenient mode (default 64);
	// further skipped lines are still counted in Trace.Skipped.
	MaxDiags int
}

func (o *Options) setDefaults() {
	if o.MaxLineBytes == 0 {
		o.MaxLineBytes = DefaultMaxLineBytes
	}
	if o.MaxOps == 0 {
		o.MaxOps = DefaultMaxOps
	}
	if o.MaxDiags == 0 {
		o.MaxDiags = DefaultMaxDiags
	}
}

// Diag is one line-numbered parse diagnostic from lenient mode.
type Diag struct {
	Line int    // 1-based line number in the input
	Msg  string // what was wrong
}

// String implements fmt.Stringer.
func (d Diag) String() string { return fmt.Sprintf("line %d: %s", d.Line, d.Msg) }

// Trace is a parsed trace file.
type Trace struct {
	Name    string     // base name of the source file (or the Parse name)
	Format  Format     // detected or forced format
	Ops     []trace.Op // the operation stream, in file order
	Diags   []Diag     // lenient-mode diagnostics (bounded by MaxDiags)
	Skipped int        // total malformed lines skipped (lenient mode)
	Lines   int        // total payload lines read (excluding blanks/comments)
	Hash    string     // sha256 over the canonical operation encoding
}

// Load reads and parses the trace file at path.
func Load(path string, opts Options) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	return Parse(filepath.Base(path), f, opts)
}

// Parse parses a trace from r. name labels errors and the resulting
// generators.
func Parse(name string, r io.Reader, opts Options) (*Trace, error) {
	opts.setDefaults()
	t := &Trace{Name: name, Format: opts.Format}

	br := bufio.NewReaderSize(r, 64*1024)

	var (
		lineNo    int
		prevCycle uint64
		haveCycle bool
	)
	fail := func(msg string) error {
		return fmt.Errorf("tracefile: %s: line %d: %s", name, lineNo, msg)
	}
	skip := func(msg string) {
		t.Skipped++
		if len(t.Diags) < opts.MaxDiags {
			t.Diags = append(t.Diags, Diag{Line: lineNo, Msg: msg})
		}
	}

	for {
		rawLine, tooLong, rerr := readLine(br, opts.MaxLineBytes)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("tracefile: %s: %w", name, rerr)
		}
		lineNo++
		if tooLong {
			// The oversized line was consumed through its newline, so the
			// stream — and the line count — stays in sync for whatever
			// follows. (bufio.Scanner's ErrTooLong wedges mid-line instead,
			// which both kills lenient mode and mis-numbers the error.)
			t.Lines++
			msg := fmt.Sprintf("line exceeds the %d-byte bound", opts.MaxLineBytes)
			if !opts.Lenient {
				return nil, fail(msg)
			}
			skip(msg)
			continue
		}
		line := bytes.TrimSuffix(rawLine, []byte("\r")) // CRLF input
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 || trimmed[0] == '#' {
			continue
		}
		if t.Format == FormatAuto {
			t.Format = sniff(trimmed)
		}
		t.Lines++
		if len(t.Ops) >= opts.MaxOps {
			return nil, fail(fmt.Sprintf("trace exceeds the %d-operation bound (raise Options.MaxOps to ingest it whole; truncating silently would change the experiment)", opts.MaxOps))
		}

		var (
			op  trace.Op
			err error
		)
		switch t.Format {
		case FormatDRAMSim3:
			var cycle uint64
			op, cycle, err = parseDRAMSim3(trimmed)
			if err == nil {
				switch {
				case !haveCycle:
					op.Gap = 0
				case cycle < prevCycle:
					msg := fmt.Sprintf("cycle %d precedes previous cycle %d", cycle, prevCycle)
					if !opts.Lenient {
						return nil, fail(msg)
					}
					skip(msg + " (gap clamped to 0)")
					t.Skipped-- // the line is kept, only its gap is clamped
					op.Gap = 0
				default:
					op.Gap = int64(cycle - prevCycle)
				}
				if cycle > prevCycle || !haveCycle {
					prevCycle = cycle
				}
				haveCycle = true
			}
		case FormatNDJSON:
			op, err = parseNDJSON(trimmed, opts.Lenient)
		}
		if err != nil {
			if !opts.Lenient {
				return nil, fail(err.Error())
			}
			skip(err.Error())
			continue
		}
		t.Ops = append(t.Ops, op)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("tracefile: %s: no operations (%d payload lines, %d skipped)", name, t.Lines, t.Skipped)
	}
	t.Hash = opsHash(t.Ops)
	return t, nil
}

// readLine returns the next line from br without its trailing '\n',
// accumulating across internal buffer refills. A line longer than max
// bytes is consumed through its newline and reported as tooLong with no
// content, so the caller can skip it and every later line still carries
// its true number. err is io.EOF only when no bytes remain at all.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var (
		buf   []byte
		total int
	)
	for {
		frag, rerr := br.ReadSlice('\n')
		if rerr == nil {
			frag = frag[:len(frag)-1] // drop the delimiter
		}
		total += len(frag)
		if !tooLong {
			buf = append(buf, frag...)
			if len(buf) > max {
				tooLong, buf = true, nil
			}
		}
		switch rerr {
		case nil:
			return buf, tooLong, nil
		case bufio.ErrBufferFull:
			continue // mid-line: keep draining the same line
		case io.EOF:
			if total == 0 {
				return nil, false, io.EOF
			}
			return buf, tooLong, nil // final line without a newline
		default:
			return nil, false, rerr
		}
	}
}

// sniff decides the format from the first payload line: NDJSON objects
// start with '{', anything else is treated as the DRAMSim3 text format.
func sniff(trimmed []byte) Format {
	if trimmed[0] == '{' {
		return FormatNDJSON
	}
	return FormatDRAMSim3
}

// parseDRAMSim3 parses one "address command cycle" line.
func parseDRAMSim3(line []byte) (trace.Op, uint64, error) {
	fields := strings.Fields(string(line))
	if len(fields) != 3 {
		return trace.Op{}, 0, fmt.Errorf("want 3 fields (address command cycle), got %d", len(fields))
	}
	addr, err := parseAddr(fields[0])
	if err != nil {
		return trace.Op{}, 0, err
	}
	var write bool
	switch strings.ToUpper(fields[1]) {
	case "READ", "RD":
		write = false
	case "WRITE", "WR":
		write = true
	default:
		return trace.Op{}, 0, fmt.Errorf("unknown command %q (want READ or WRITE)", fields[1])
	}
	cycle, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return trace.Op{}, 0, fmt.Errorf("bad cycle %q: not a non-negative integer", fields[2])
	}
	return trace.Op{Line: addr / trace.LineBytes, Write: write}, cycle, nil
}

// parseAddr accepts 0x-prefixed hex or plain decimal byte addresses.
// Un-prefixed hex is rejected rather than guessed: "123" is ambiguous and
// a wrong guess silently remaps the whole trace.
func parseAddr(s string) (uint64, error) {
	if len(s) > 2 && (s[0:2] == "0x" || s[0:2] == "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad hex address %q", s)
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q (want 0x-prefixed hex or decimal)", s)
	}
	return v, nil
}

// ndjsonOp is the native per-line record. Exactly one of Line/Addr must
// be present (Line may be 0 with Addr absent — the zero value is line 0).
type ndjsonOp struct {
	Gap   *int64           `json:"gap"`
	Line  *uint64          `json:"line"`
	Addr  *json.RawMessage `json:"addr"`
	Write bool             `json:"write"`
}

// parseNDJSON parses one native JSON operation line.
func parseNDJSON(line []byte, lenient bool) (trace.Op, error) {
	var rec ndjsonOp
	dec := json.NewDecoder(bytes.NewReader(line))
	if !lenient {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&rec); err != nil {
		return trace.Op{}, fmt.Errorf("bad JSON: %v", err)
	}
	if dec.More() {
		return trace.Op{}, fmt.Errorf("trailing data after JSON object")
	}
	var op trace.Op
	if rec.Gap != nil {
		if *rec.Gap < 0 {
			return trace.Op{}, fmt.Errorf("negative gap %d", *rec.Gap)
		}
		op.Gap = *rec.Gap
	}
	switch {
	case rec.Line != nil && rec.Addr != nil:
		return trace.Op{}, fmt.Errorf(`both "line" and "addr" present`)
	case rec.Line != nil:
		op.Line = *rec.Line
	case rec.Addr != nil:
		addr, err := parseJSONAddr(*rec.Addr)
		if err != nil {
			return trace.Op{}, err
		}
		op.Line = addr / trace.LineBytes
	default:
		return trace.Op{}, fmt.Errorf(`missing "line" or "addr"`)
	}
	op.Write = rec.Write
	return op, nil
}

// parseJSONAddr accepts a JSON number or an "0x..."/decimal string.
func parseJSONAddr(raw json.RawMessage) (uint64, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return parseAddr(s)
	}
	var n uint64
	if err := json.Unmarshal(raw, &n); err != nil {
		return 0, fmt.Errorf(`bad "addr" %s (want number or address string)`, raw)
	}
	return n, nil
}

// opsHash is the canonical content hash: sha256 over each op encoded as
// 17 fixed little-endian bytes (gap, line, write). Two parses agree on
// the hash iff they produced the same operation stream.
func opsHash(ops []trace.Op) string {
	h := sha256.New()
	var buf [17]byte
	for i := range ops {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(ops[i].Gap))
		binary.LittleEndian.PutUint64(buf[8:16], ops[i].Line)
		buf[16] = 0
		if ops[i].Write {
			buf[16] = 1
		}
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// manifest is the deterministic summary serialized by ManifestJSON.
// Field order is fixed by the struct; no timestamps, no absolute paths.
type manifest struct {
	Name    string `json:"name"`
	Format  string `json:"format"`
	Ops     int    `json:"ops"`
	Lines   int    `json:"lines"`
	Skipped int    `json:"skipped"`
	Hash    string `json:"hash"`
}

// ManifestJSON returns the trace's canonical manifest: same file (and
// options) in, byte-identical manifest out. It carries the content hash
// that run manifests and the serve cache embed for trace-driven jobs.
func (t *Trace) ManifestJSON() []byte {
	b, err := json.Marshal(manifest{
		Name:    t.Name,
		Format:  t.Format.String(),
		Ops:     len(t.Ops),
		Lines:   t.Lines,
		Skipped: t.Skipped,
		Hash:    t.Hash,
	})
	if err != nil { // a fixed struct of scalars cannot fail to marshal
		panic(err)
	}
	return b
}

// Generator returns a looping generator replaying the whole trace.
func (t *Trace) Generator() *trace.Ops {
	g, err := trace.NewOps("trace:"+t.Name, t.Ops)
	if err != nil { // Parse never returns an empty Trace
		panic(err)
	}
	return g
}

// PerCore shards the trace across cores round-robin by operation,
// accumulating the gaps of operations dealt to other cores so each
// shard's timeline matches its share of the original stream. All shards
// index one shared address space: run them with a common ASID.
func (t *Trace) PerCore(cores int) ([]trace.Generator, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("tracefile: %s: need cores > 0, got %d", t.Name, cores)
	}
	if cores == 1 {
		return []trace.Generator{t.Generator()}, nil
	}
	shards := make([][]trace.Op, cores)
	carry := make([]int64, cores)
	for i, op := range t.Ops {
		c := i % cores
		for k := range carry {
			carry[k] += op.Gap
		}
		op.Gap = carry[c]
		carry[c] = 0
		shards[c] = append(shards[c], op)
	}
	gens := make([]trace.Generator, cores)
	for c := range shards {
		if len(shards[c]) == 0 {
			// Fewer ops than cores: idle shards replay the full trace's
			// quietest possible stand-in — the first op with the whole
			// loop's gap — to keep core counts uniform.
			shards[c] = []trace.Op{t.Ops[0]}
		}
		g, err := trace.NewOps(fmt.Sprintf("trace:%s#%d", t.Name, c), shards[c])
		if err != nil {
			return nil, err
		}
		gens[c] = g
	}
	return gens, nil
}
