package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"mirza/internal/trace"
)

// TestParseCorners is the table-driven corner-case sweep: CRLF endings,
// hex vs decimal addresses, malformed and truncated lines, out-of-order
// cycles, empty files — each in strict and (where behaviour differs)
// lenient mode.
func TestParseCorners(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		opts    Options
		wantErr string     // non-empty: Parse must fail containing this
		wantOps []trace.Op // nil: don't check ops
		format  Format
		skipped int
		diags   int
	}{
		{
			name:    "dramsim3 basic hex",
			in:      "0x2A3F4B80 READ 100\n0x2A3F4BC0 WRITE 110\n",
			wantOps: []trace.Op{{Gap: 0, Line: 0x2A3F4B80 / 64}, {Gap: 10, Line: 0x2A3F4BC0 / 64, Write: true}},
			format:  FormatDRAMSim3,
		},
		{
			name:    "dramsim3 decimal address",
			in:      "4096 READ 5\n8192 rd 9\n",
			wantOps: []trace.Op{{Line: 64}, {Gap: 4, Line: 128}},
			format:  FormatDRAMSim3,
		},
		{
			name:    "crlf line endings",
			in:      "0x40 READ 1\r\n0x80 WRITE 2\r\n",
			wantOps: []trace.Op{{Line: 1}, {Gap: 1, Line: 2, Write: true}},
			format:  FormatDRAMSim3,
		},
		{
			name:    "comments and blanks skipped",
			in:      "# header\n\n  \n0x40 READ 1\n# trailing\n",
			wantOps: []trace.Op{{Line: 1}},
			format:  FormatDRAMSim3,
		},
		{
			name:    "unprefixed hex rejected",
			in:      "DEADBEEF READ 1\n",
			wantErr: "line 1",
		},
		{
			name:    "truncated line strict",
			in:      "0x40 READ 1\n0x80 WRITE\n",
			wantErr: "line 2: want 3 fields",
		},
		{
			name:    "truncated line lenient",
			in:      "0x40 READ 1\n0x80 WRITE\n0xC0 READ 7\n",
			opts:    Options{Lenient: true},
			wantOps: []trace.Op{{Line: 1}, {Gap: 6, Line: 3}},
			skipped: 1,
			diags:   1,
		},
		{
			name:    "unknown command",
			in:      "0x40 FLUSH 1\n",
			wantErr: `unknown command "FLUSH"`,
		},
		{
			name:    "bad cycle",
			in:      "0x40 READ -3\n",
			wantErr: "bad cycle",
		},
		{
			name:    "out-of-order cycles strict",
			in:      "0x40 READ 100\n0x80 READ 90\n",
			wantErr: "line 2: cycle 90 precedes previous cycle 100",
		},
		{
			name:    "out-of-order cycles lenient clamps",
			in:      "0x40 READ 100\n0x80 READ 90\n0xC0 READ 105\n",
			opts:    Options{Lenient: true},
			wantOps: []trace.Op{{Line: 1}, {Gap: 0, Line: 2}, {Gap: 5, Line: 3}},
			skipped: 0, // line kept, only its gap clamped
			diags:   1,
		},
		{
			name:    "empty file",
			in:      "",
			wantErr: "no operations",
		},
		{
			name:    "comments only",
			in:      "# nothing\n# here\n",
			wantErr: "no operations",
		},
		{
			name:    "all lines malformed lenient",
			in:      "junk\nmore junk here too much\n",
			opts:    Options{Lenient: true},
			wantErr: "no operations",
		},
		{
			name:    "ndjson basic",
			in:      `{"gap":5,"line":42,"write":true}` + "\n" + `{"line":43}` + "\n",
			wantOps: []trace.Op{{Gap: 5, Line: 42, Write: true}, {Line: 43}},
			format:  FormatNDJSON,
		},
		{
			name:    "ndjson addr string and number",
			in:      `{"addr":"0x1000"}` + "\n" + `{"addr":128}` + "\n",
			wantOps: []trace.Op{{Line: 64}, {Line: 2}},
			format:  FormatNDJSON,
		},
		{
			name:    "ndjson line and addr conflict",
			in:      `{"line":1,"addr":64}` + "\n",
			wantErr: `both "line" and "addr"`,
		},
		{
			name:    "ndjson missing address",
			in:      `{"gap":3}` + "\n",
			wantErr: `missing "line" or "addr"`,
		},
		{
			name:    "ndjson negative gap",
			in:      `{"gap":-1,"line":0}` + "\n",
			wantErr: "negative gap",
		},
		{
			name:    "ndjson unknown field strict",
			in:      `{"line":1,"bogus":true}` + "\n",
			wantErr: "line 1",
		},
		{
			name:    "ndjson unknown field lenient ignored",
			in:      `{"line":1,"bogus":true}` + "\n",
			opts:    Options{Lenient: true},
			wantOps: []trace.Op{{Line: 1}},
			format:  FormatNDJSON,
		},
		{
			name:    "ndjson truncated object lenient",
			in:      `{"line":1}` + "\n" + `{"line":` + "\n" + `{"line":3}` + "\n",
			opts:    Options{Lenient: true},
			wantOps: []trace.Op{{Line: 1}, {Line: 3}},
			skipped: 1,
			diags:   1,
		},
		{
			name:    "forced format overrides sniff",
			in:      "0x40 READ 1\n",
			opts:    Options{Format: FormatDRAMSim3},
			wantOps: []trace.Op{{Line: 1}},
			format:  FormatDRAMSim3,
		},
		{
			name:    "max ops bound",
			in:      "0x40 READ 1\n0x80 READ 2\n0xC0 READ 3\n",
			opts:    Options{MaxOps: 2},
			wantErr: "2-operation bound",
		},
		{
			name:    "overlong line",
			in:      "0x40 READ 1\n0x" + strings.Repeat("A", 300) + " READ 2\n",
			opts:    Options{MaxLineBytes: 128},
			wantErr: "128-byte bound",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Parse(tc.name, strings.NewReader(tc.in), tc.opts)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got ops=%v", tc.wantErr, tr.Ops)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if tc.format != FormatAuto && tr.Format != tc.format {
				t.Errorf("format = %v want %v", tr.Format, tc.format)
			}
			if tr.Skipped != tc.skipped {
				t.Errorf("skipped = %d want %d", tr.Skipped, tc.skipped)
			}
			if len(tr.Diags) != tc.diags {
				t.Errorf("diags = %v want %d entries", tr.Diags, tc.diags)
			}
			if tc.wantOps != nil {
				if len(tr.Ops) != len(tc.wantOps) {
					t.Fatalf("ops = %v want %v", tr.Ops, tc.wantOps)
				}
				for i := range tc.wantOps {
					if tr.Ops[i] != tc.wantOps[i] {
						t.Errorf("op[%d] = %+v want %+v", i, tr.Ops[i], tc.wantOps[i])
					}
				}
			}
		})
	}
}

// TestDiagLineNumbers checks diagnostics carry 1-based input line numbers
// counting blanks and comments.
func TestDiagLineNumbers(t *testing.T) {
	in := "# header\n0x40 READ 1\nbroken\n\n0x80 also broken here\n0xC0 READ 9\n"
	tr, err := Parse("diag", strings.NewReader(in), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Diags) != 2 || tr.Diags[0].Line != 3 || tr.Diags[1].Line != 5 {
		t.Fatalf("diags = %v want lines 3 and 5", tr.Diags)
	}
	if got := tr.Diags[0].String(); !strings.HasPrefix(got, "line 3: ") {
		t.Errorf("Diag.String() = %q", got)
	}
	if tr.Skipped != 2 || len(tr.Ops) != 2 {
		t.Errorf("skipped=%d ops=%d want 2 and 2", tr.Skipped, len(tr.Ops))
	}
}

// TestOversizedLineRecovery is the regression for the scanner-era bug:
// bufio.Scanner cannot resume after ErrTooLong, so an oversized line used
// to abort even lenient parses and left the reported line number drifting
// from the real one. The reader must instead discard the oversized line
// through its newline and keep numbering every later line correctly —
// including a garbage line immediately after it.
func TestOversizedLineRecovery(t *testing.T) {
	long := "0x" + strings.Repeat("A", 400) + " READ 2"
	in := "0x40 READ 1\n" + // line 1: good
		long + "\n" + //         line 2: oversized
		"garbage here\n" + //    line 3: malformed
		"0x80 READ 5\n" //       line 4: good

	t.Run("lenient-skips-both-with-true-line-numbers", func(t *testing.T) {
		tr, err := Parse("oversize", strings.NewReader(in), Options{Lenient: true, MaxLineBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Ops) != 2 || tr.Ops[0].Line != 1 || tr.Ops[1].Line != 2 {
			t.Fatalf("ops = %v, want lines 1 and 2 (0x40 and 0x80)", tr.Ops)
		}
		if tr.Skipped != 2 || len(tr.Diags) != 2 {
			t.Fatalf("skipped=%d diags=%v, want 2 skips with 2 diagnostics", tr.Skipped, tr.Diags)
		}
		if tr.Diags[0].Line != 2 || !strings.Contains(tr.Diags[0].Msg, "128-byte bound") {
			t.Errorf("oversized diag = %v, want line 2 mentioning the 128-byte bound", tr.Diags[0])
		}
		if tr.Diags[1].Line != 3 {
			t.Errorf("garbage diag = %v, want line 3 (numbering drifted after the oversized line)", tr.Diags[1])
		}
		// Gap math must bridge the skipped lines: 0x80's cycle 5 follows
		// 0x40's cycle 1 directly.
		if tr.Ops[1].Gap != 4 {
			t.Errorf("op[1].Gap = %d, want 4 (cycle 5 - cycle 1)", tr.Ops[1].Gap)
		}
	})

	t.Run("strict-fails-at-the-oversized-line", func(t *testing.T) {
		_, err := Parse("oversize", strings.NewReader(in), Options{MaxLineBytes: 128})
		if err == nil || !strings.Contains(err.Error(), "line 2: line exceeds the 128-byte bound") {
			t.Fatalf("err = %v, want a line-2 oversize failure", err)
		}
	})

	t.Run("oversized-final-line-without-newline", func(t *testing.T) {
		tr, err := Parse("tail", strings.NewReader("0x40 READ 1\n"+long),
			Options{Lenient: true, MaxLineBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Ops) != 1 || tr.Skipped != 1 || tr.Diags[0].Line != 2 {
			t.Fatalf("ops=%d skipped=%d diags=%v, want 1 op and a line-2 skip", len(tr.Ops), tr.Skipped, tr.Diags)
		}
	})

	t.Run("oversized-first-line-then-sniffable", func(t *testing.T) {
		tr, err := Parse("first", strings.NewReader(long+"\n"+`{"line":7}`+"\n"),
			Options{Lenient: true, MaxLineBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Format != FormatNDJSON || len(tr.Ops) != 1 || tr.Ops[0].Line != 7 {
			t.Fatalf("format=%v ops=%v, want NDJSON sniffed from line 2", tr.Format, tr.Ops)
		}
		if tr.Diags[0].Line != 1 {
			t.Errorf("diag = %v, want line 1", tr.Diags[0])
		}
	})
}

// TestMaxDiagsBound checks the diagnostic list is bounded while the skip
// counter keeps counting.
func TestMaxDiagsBound(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("0x40 READ 1\n")
	for i := 0; i < 10; i++ {
		sb.WriteString("junk\n")
	}
	tr, err := Parse("bound", strings.NewReader(sb.String()), Options{Lenient: true, MaxDiags: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Diags) != 3 || tr.Skipped != 10 {
		t.Fatalf("diags=%d skipped=%d want 3 and 10", len(tr.Diags), tr.Skipped)
	}
}

// TestManifestDeterminism is the acceptance property: parsing the same
// bytes twice yields byte-identical manifests, and any content change
// changes the hash.
func TestManifestDeterminism(t *testing.T) {
	in := "0x2A3F4B80 READ 100\n0x2A3F4BC0 WRITE 110\n0x11112000 READ 250\n"
	a, err := Parse("same.trace", strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("same.trace", strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := a.ManifestJSON(), b.ManifestJSON()
	if !bytes.Equal(ma, mb) {
		t.Fatalf("manifests differ:\n%s\n%s", ma, mb)
	}
	c, err := Parse("same.trace", strings.NewReader(in+"0x11112040 READ 260\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatalf("hash unchanged after content change")
	}
	for _, want := range []string{`"name":"same.trace"`, `"format":"dramsim3"`, `"ops":3`, `"hash":"` + a.Hash + `"`} {
		if !strings.Contains(string(ma), want) {
			t.Errorf("manifest %s missing %s", ma, want)
		}
	}
}

// TestGeneratorLoop checks the looping generator replays the exact
// sequence periodically and reports the right footprint.
func TestGeneratorLoop(t *testing.T) {
	tr, err := Parse("loop", strings.NewReader("0x40 READ 1\n0x1000 WRITE 5\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Generator()
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if want := uint64(4096 + 4096 - 64 + 64); g.FootprintBytes()%4096 != 0 || g.FootprintBytes() < 0x1000+64 {
		t.Fatalf("FootprintBytes = %d (not page-rounded past the last line, want >= %d)", g.FootprintBytes(), want)
	}
	var op trace.Op
	for round := 0; round < 3; round++ {
		g.Next(&op)
		if op.Line != 1 || op.Write {
			t.Fatalf("round %d op0 = %+v", round, op)
		}
		g.Next(&op)
		if op.Line != 0x1000/64 || !op.Write || op.Gap != 4 {
			t.Fatalf("round %d op1 = %+v", round, op)
		}
	}
}

// TestPerCoreSharding checks round-robin sharding preserves each shard's
// share of the timeline (gaps of other cores' ops are accumulated) and
// stays deterministic.
func TestPerCoreSharding(t *testing.T) {
	in := "0x40 READ 0\n0x80 READ 10\n0xC0 READ 15\n0x100 READ 35\n"
	tr, err := Parse("shard", strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gens, err := tr.PerCore(2)
	if err != nil {
		t.Fatal(err)
	}
	var op trace.Op
	// Core 0 gets ops 0 and 2: gaps 0 and 10+5.
	gens[0].Next(&op)
	if op.Line != 1 || op.Gap != 0 {
		t.Fatalf("core0 op0 = %+v", op)
	}
	gens[0].Next(&op)
	if op.Line != 3 || op.Gap != 15 {
		t.Fatalf("core0 op1 = %+v", op)
	}
	// Core 1 gets ops 1 and 3: gaps 0+10 and 5+20.
	gens[1].Next(&op)
	if op.Line != 2 || op.Gap != 10 {
		t.Fatalf("core1 op0 = %+v", op)
	}
	gens[1].Next(&op)
	if op.Line != 4 || op.Gap != 25 {
		t.Fatalf("core1 op1 = %+v", op)
	}

	// More cores than ops: every shard still yields a generator.
	gens, err = tr.PerCore(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 8 {
		t.Fatalf("PerCore(8) = %d generators", len(gens))
	}
	for _, g := range gens {
		g.Next(&op) // must not panic
	}
	if _, err := tr.PerCore(0); err == nil {
		t.Fatal("PerCore(0): want error")
	}
}
