package sim

import (
	"fmt"
	"testing"

	"mirza/internal/dram"
)

// The BenchmarkKernel suite measures the scheduler hot path — pop one
// event, fire it, schedule its successor — at several steady-state queue
// depths, pairing the new reusable-event API (impl=event) against the
// preserved pre-redesign container/heap closure scheduler (impl=legacy,
// legacy_test.go). `make bench-smoke` runs it and cmd/benchjson turns the
// output into BENCH_kernel.json with per-depth speedups and an
// alloc-regression gate: impl=event must report 0 allocs/op.

// benchDeltas returns depth deterministic reschedule intervals (an LCG, so
// heap paths vary without math/rand in the timed loop).
func benchDeltas(depth int) []dram.Time {
	deltas := make([]dram.Time, depth)
	x := uint64(88172645463325252)
	for i := range deltas {
		x = x*6364136223846793005 + 1442695040888963407
		deltas[i] = dram.Time(x%977) + 1
	}
	return deltas
}

// benchTick is a self-rescheduling handler: the steady-state pattern of
// every simulated actor (subchannel wakes, core timers, refresh).
type benchTick struct {
	k     *Kernel
	ev    Event
	delta dram.Time
}

func (t *benchTick) Fire(now dram.Time) { t.k.ScheduleEvent(&t.ev, now+t.delta) }

func BenchmarkKernel(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("impl=event/depth=%d", depth), func(b *testing.B) {
			var k Kernel
			deltas := benchDeltas(depth)
			ticks := make([]benchTick, depth)
			for i := range ticks {
				ticks[i].k = &k
				ticks[i].delta = deltas[i]
				ticks[i].ev.Bind(&ticks[i])
				k.ScheduleEvent(&ticks[i].ev, dram.Time(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
		b.Run(fmt.Sprintf("impl=legacy/depth=%d", depth), func(b *testing.B) {
			var k legacyKernel
			deltas := benchDeltas(depth)
			// The old hot path: every schedule boxes a fresh closure into
			// container/heap, exactly as mem.requestWake and cpu timed
			// wakes did before the redesign.
			var tick func(idx int) func()
			tick = func(idx int) func() {
				return func() { k.Schedule(k.now+deltas[idx], tick(idx)) }
			}
			for i := 0; i < depth; i++ {
				k.Schedule(dram.Time(i), tick(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
	}
}

// BenchmarkKernelReschedule measures the requestWake pattern — pulling a
// pending timer earlier — which the old API could only express by piling
// up superseded closures.
func BenchmarkKernelReschedule(b *testing.B) {
	const depth = 256
	b.Run("impl=event", func(b *testing.B) {
		var k Kernel
		deltas := benchDeltas(depth)
		ticks := make([]benchTick, depth)
		for i := range ticks {
			ticks[i].k = &k
			ticks[i].delta = deltas[i]
			ticks[i].ev.Bind(&ticks[i])
			k.ScheduleEvent(&ticks[i].ev, dram.Time(i+1))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := &ticks[i%depth]
			k.Reschedule(&t.ev, k.Now()+t.delta)
		}
	})
	b.Run("impl=legacy", func(b *testing.B) {
		var k legacyKernel
		deltas := benchDeltas(depth)
		for i := 0; i < depth; i++ {
			k.scheduleID(dram.Time(i+1), i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.rescheduleID(k.now+deltas[i%depth], i%depth)
		}
	})
}

// TestScheduleEventAllocFree pins the zero-allocation contract: a
// steady-state pop+fire+reschedule cycle over reusable events performs no
// heap allocations at all.
func TestScheduleEventAllocFree(t *testing.T) {
	var k Kernel
	deltas := benchDeltas(64)
	ticks := make([]benchTick, 64)
	for i := range ticks {
		ticks[i].k = &k
		ticks[i].delta = deltas[i]
		ticks[i].ev.Bind(&ticks[i])
		k.ScheduleEvent(&ticks[i].ev, dram.Time(i))
	}
	if allocs := testing.AllocsPerRun(10000, func() { k.Step() }); allocs != 0 {
		t.Fatalf("steady-state Step+ScheduleEvent allocated %v times per event, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10000, func() {
		k.Reschedule(&ticks[0].ev, k.Now()+ticks[0].delta)
	}); allocs != 0 {
		t.Fatalf("Reschedule allocated %v times per call, want 0", allocs)
	}
}
