package sim

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mirza/internal/dram"
)

// Watchdog detects a stalled or livelocked simulation: event processing
// that burns wall-clock time without meaningfully advancing the simulated
// clock. The classic failure mode it guards against is a pathological
// zero-delay (or picosecond-delay) event loop — e.g. an ALERT back-off
// cycle that re-arms itself at now+1ps forever — which would otherwise
// hang a run silently.
//
// A Watchdog is attached to a single RunUntilWatched call; reuse across
// calls is fine (it keeps no state between calls). The zero value with a
// positive Budget is ready to use.
type Watchdog struct {
	// Budget is the wall-clock allowance between observations of forward
	// progress. A non-positive Budget disables the watchdog entirely.
	Budget time.Duration

	// MinAdvance is the simulated-time advance that counts as progress.
	// Defaults to 1ns: a loop re-arming events picoseconds apart is still
	// a livelock even though the clock technically moves.
	MinAdvance dram.Time

	// CheckEvery is the number of executed events between wall-clock
	// samples (default 4096). Sampling keeps time.Now off the per-event
	// hot path.
	CheckEvery int

	// clock overrides time.Now in tests.
	clock func() time.Time

	// samples counts progress checks across all watched runs. It is a
	// pure function of the executed-event sequence (one sample per
	// CheckEvery events), so it is deterministic and safe to export in
	// run manifests.
	samples uint64
}

// Samples returns the number of progress checks performed so far.
func (w *Watchdog) Samples() uint64 {
	if w == nil {
		return 0
	}
	return w.samples
}

func (w *Watchdog) now() time.Time {
	if w.clock != nil {
		return w.clock()
	}
	return time.Now()
}

// StallError is returned when the watchdog aborts a run. It carries a
// diagnostic snapshot of the kernel: the stuck simulation time, the
// pending-event queue depth and earliest deadlines, and the times of the
// most recently executed events.
type StallError struct {
	Now      dram.Time     // simulated time at abort
	Stalled  time.Duration // wall-clock elapsed without progress
	Executed uint64        // total events the kernel has run
	Pending  int           // events still queued
	Next     []dram.Time   // earliest pending event times, soonest first
	Recent   []dram.Time   // most recently executed event times, oldest first
}

// Error implements error.
func (e *StallError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim: watchdog abort: no event-time advance for %v at t=%v (%d events executed, %d pending)",
		e.Stalled.Round(time.Millisecond), e.Now, e.Executed, e.Pending)
	if len(e.Next) > 0 {
		fmt.Fprintf(&sb, "; next events at %v", e.Next)
	}
	if len(e.Recent) > 0 {
		fmt.Fprintf(&sb, "; recent events at %v", e.Recent)
	}
	return sb.String()
}

// RunUntilWatched is RunUntil under watchdog supervision: it executes
// events until the clock would pass deadline or the queue empties, but
// aborts with a *StallError if the simulated clock stops advancing (by at
// least w.MinAdvance) for longer than w.Budget of wall-clock time. A nil
// watchdog or a non-positive budget degrades to plain RunUntil.
//
// On abort the kernel is left mid-run (clock at the stall point, pending
// events still queued) so the caller can inspect it; it must not be
// resumed.
func (k *Kernel) RunUntilWatched(deadline dram.Time, w *Watchdog) error {
	return k.RunUntilCtx(context.Background(), deadline, w)
}

// RunUntilCtx is RunUntilWatched with cooperative cancellation: ctx is
// sampled between event batches (every CheckEvery events, the same cadence
// as watchdog progress checks), so a cancelled or deadline-blown context
// stops the simulation mid-run instead of only at run boundaries. The
// kernel is left resumable at the point of cancellation (clock and queue
// intact); the returned error is ctx.Err().
//
// With a Background context and no armed watchdog this is plain RunUntil:
// the per-event hot path never touches the context.
func (k *Kernel) RunUntilCtx(ctx context.Context, deadline dram.Time, w *Watchdog) error {
	watched := w != nil && w.Budget > 0
	done := ctx.Done()
	if !watched && done == nil {
		k.RunUntil(deadline)
		return nil
	}
	checkEvery := 4096
	var minAdvance dram.Time
	if watched {
		if w.CheckEvery > 0 {
			checkEvery = w.CheckEvery
		}
		minAdvance = w.MinAdvance
		if minAdvance <= 0 {
			minAdvance = dram.Nanosecond
		}
	}

	var lastProgress time.Time
	if watched {
		lastProgress = w.now()
	}
	lastNow := k.now
	sinceCheck := 0
	for (k.laneLive > 0 && k.now <= deadline) ||
		(len(k.events) > 0 && k.events[0].at <= deadline) {
		k.Step()
		sinceCheck++
		if sinceCheck < checkEvery {
			continue
		}
		sinceCheck = 0
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !watched {
			continue
		}
		w.samples++
		if k.now-lastNow >= minAdvance {
			lastNow = k.now
			lastProgress = w.now()
			continue
		}
		if elapsed := w.now().Sub(lastProgress); elapsed > w.Budget {
			return &StallError{
				Now:      k.now,
				Stalled:  elapsed,
				Executed: k.executed,
				Pending:  k.Pending(),
				Next:     k.NextTimes(8),
				Recent:   k.RecentTimes(),
			}
		}
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}
