package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"mirza/internal/dram"
)

// selfTick reschedules itself delta after every fire, counting fires.
type selfTick struct {
	k     *Kernel
	ev    Event
	delta dram.Time
	fires int
}

func (t *selfTick) Fire(now dram.Time) {
	t.fires++
	t.k.ScheduleEvent(&t.ev, now+t.delta)
}

// A canceled context stops RunUntilCtx mid-run with ctx.Err(), leaving the
// kernel resumable: clock intact, pending events still queued.
func TestRunUntilCtxCancel(t *testing.T) {
	var k Kernel
	tick := &selfTick{k: &k, delta: dram.Nanosecond}
	tick.ev.Bind(tick)
	k.ScheduleEvent(&tick.ev, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := k.RunUntilCtx(ctx, dram.Millisecond, &Watchdog{Budget: 0, CheckEvery: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (kernel must stay resumable)", k.Pending())
	}
	if k.Now() >= dram.Millisecond {
		t.Fatalf("clock ran to %v despite cancellation", k.Now())
	}

	// Resuming with a live context finishes the run.
	if err := k.RunUntilCtx(context.Background(), dram.Millisecond, nil); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if k.Now() != dram.Millisecond {
		t.Fatalf("clock = %v, want %v", k.Now(), dram.Millisecond)
	}
}

// Cancellation is polled at the CheckEvery cadence, so a context canceled
// mid-run stops within one batch.
func TestRunUntilCtxCancelMidRun(t *testing.T) {
	var k Kernel
	tick := &selfTick{k: &k, delta: dram.Nanosecond}
	tick.ev.Bind(tick)
	k.ScheduleEvent(&tick.ev, 0)

	ctx, cancel := context.WithCancel(context.Background())
	var ev Event
	ev.Bind(&cancelAt{cancel: cancel})
	k.ScheduleEvent(&ev, 100*dram.Nanosecond)

	err := k.RunUntilCtx(ctx, dram.Millisecond, &Watchdog{Budget: time.Hour, CheckEvery: 16})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most one CheckEvery batch after the canceling event.
	if k.Now() > 200*dram.Nanosecond {
		t.Fatalf("run continued to %v after cancellation", k.Now())
	}
}

type cancelAt struct {
	cancel context.CancelFunc
}

func (c *cancelAt) Fire(dram.Time) { c.cancel() }

// With a Background context and no watchdog, RunUntilCtx is plain
// RunUntil (and must not sample anything per event).
func TestRunUntilCtxBackground(t *testing.T) {
	var k Kernel
	tick := &selfTick{k: &k, delta: dram.Microsecond}
	tick.ev.Bind(tick)
	k.ScheduleEvent(&tick.ev, 0)
	if err := k.RunUntilCtx(context.Background(), 10*dram.Microsecond, nil); err != nil {
		t.Fatal(err)
	}
	if tick.fires != 11 {
		t.Fatalf("fires = %d, want 11", tick.fires)
	}
}
