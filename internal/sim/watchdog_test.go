package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mirza/internal/dram"
)

// fakeClock advances a fixed step on every reading, simulating wall-clock
// time passing while the simulated clock is stuck.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

func TestWatchdogAbortsLivelock(t *testing.T) {
	var k Kernel
	// A pathological back-off loop: every event re-arms itself at now+1ps,
	// so simulated time crawls while wall-clock time burns.
	var spinEv Event
	spinEv.Bind(HandlerFunc(func(now dram.Time) { k.ScheduleEvent(&spinEv, now+dram.Picosecond) }))
	k.ScheduleEvent(&spinEv, 0)

	clock := &fakeClock{now: time.Unix(0, 0), step: 50 * time.Millisecond}
	w := &Watchdog{Budget: time.Second, CheckEvery: 4, clock: clock.Now}
	err := k.RunUntilWatched(dram.Millisecond, w)
	if err == nil {
		t.Fatal("livelocked run must be aborted")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error type = %T, want *StallError", err)
	}
	if stall.Pending == 0 {
		t.Error("diagnostic should report pending events")
	}
	if len(stall.Recent) == 0 || len(stall.Next) == 0 {
		t.Errorf("diagnostic snapshot incomplete: recent=%v next=%v", stall.Recent, stall.Next)
	}
	if stall.Stalled < time.Second {
		t.Errorf("stalled = %v, want >= budget", stall.Stalled)
	}
	for _, msg := range []string{"watchdog abort", "pending", "recent events"} {
		if !strings.Contains(err.Error(), msg) {
			t.Errorf("error %q lacks %q", err, msg)
		}
	}
}

func TestWatchdogAbortsZeroAdvanceLoop(t *testing.T) {
	var k Kernel
	// Same-time rescheduling: the clock never moves at all.
	var spinEv Event
	spinEv.Bind(HandlerFunc(func(now dram.Time) { k.ScheduleEvent(&spinEv, now) }))
	k.ScheduleEvent(&spinEv, 5*dram.Nanosecond)

	clock := &fakeClock{now: time.Unix(0, 0), step: 100 * time.Millisecond}
	w := &Watchdog{Budget: time.Second, CheckEvery: 8, clock: clock.Now}
	if err := k.RunUntilWatched(dram.Microsecond, w); err == nil {
		t.Fatal("zero-advance loop must be aborted")
	}
	if k.Now() != 5*dram.Nanosecond {
		t.Errorf("clock = %v, want stuck at 5ns", k.Now())
	}
}

func TestWatchdogPassesHealthyRun(t *testing.T) {
	var k Kernel
	count := 0
	var tickEv Event
	tickEv.Bind(HandlerFunc(func(now dram.Time) {
		count++
		k.ScheduleEvent(&tickEv, now+10*dram.Nanosecond)
	}))
	k.ScheduleEvent(&tickEv, 0)

	// Wall clock jumps far past the budget between checks, but simulated
	// time advances healthily, so progress resets the allowance.
	clock := &fakeClock{now: time.Unix(0, 0), step: 10 * time.Second}
	w := &Watchdog{Budget: time.Second, CheckEvery: 2, clock: clock.Now}
	if err := k.RunUntilWatched(dram.Microsecond, w); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
	if k.Now() != dram.Microsecond {
		t.Errorf("clock = %v, want deadline", k.Now())
	}
	if count != 101 {
		t.Errorf("events = %d, want 101", count)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	var k Kernel
	fired := false
	scheduleFunc(&k, 10, func() { fired = true })
	if err := k.RunUntilWatched(100, nil); err != nil {
		t.Fatal(err)
	}
	if !fired || k.Now() != 100 {
		t.Errorf("nil watchdog must behave like RunUntil (fired=%v now=%v)", fired, k.Now())
	}
	var k2 Kernel
	scheduleFunc(&k2, 10, func() {})
	if err := k2.RunUntilWatched(100, &Watchdog{}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelDiagnosticAccessors(t *testing.T) {
	var k Kernel
	if got := k.RecentTimes(); len(got) != 0 {
		t.Errorf("fresh kernel recent = %v", got)
	}
	if got := k.NextTimes(4); len(got) != 0 {
		t.Errorf("fresh kernel next = %v", got)
	}
	for i := 1; i <= 20; i++ {
		scheduleFunc(&k, dram.Time(i), func() {})
	}
	if got := k.NextTimes(3); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("next = %v, want [1 2 3]", got)
	}
	if k.Pending() != 20 {
		t.Errorf("NextTimes must not consume events: pending = %d", k.Pending())
	}
	for k.Step() {
	}
	if k.Executed() != 20 {
		t.Errorf("executed = %d", k.Executed())
	}
	recent := k.RecentTimes()
	if len(recent) != 16 || recent[0] != 5 || recent[15] != 20 {
		t.Errorf("recent = %v, want times 5..20", recent)
	}
}
