package sim

import (
	"math/rand"
	"testing"

	"mirza/internal/dram"
)

// The property test drives the new 4-ary heap and the legacy
// container/heap reference (legacy_test.go) through an identical randomized
// op sequence — schedules clustered into a narrow time range to force
// same-time FIFO ties, interleaved Cancel and Reschedule, and pops mixed
// into the mutation stream — and demands bit-identical pop order. Both
// sides consume sequence numbers at the same call sites, so any divergence
// is a heap bug, not a modeling artifact.

type popRec struct {
	id int
	at dram.Time
}

// idHandler records its id and fire time into a shared log.
type idHandler struct {
	id  int
	log *[]popRec
}

func (h *idHandler) Fire(now dram.Time) { *h.log = append(*h.log, popRec{h.id, now}) }

func TestHeapMatchesLegacyPopOrder(t *testing.T) {
	const (
		nEvents = 64
		nOps    = 4000
	)
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var k Kernel
		var ref legacyKernel
		var got []popRec

		events := make([]*Event, nEvents)
		for i := range events {
			events[i] = new(Event)
			events[i].Bind(&idHandler{id: i, log: &got})
		}

		popBoth := func() {
			wantID, wantAt := ref.popID()
			if !k.Step() {
				t.Fatalf("seed %d: kernel empty, reference had event %d at %v", seed, wantID, wantAt)
			}
			last := got[len(got)-1]
			if last.id != wantID || last.at != wantAt {
				t.Fatalf("seed %d: pop %d: got event %d at %v, reference popped %d at %v",
					seed, len(got), last.id, last.at, wantID, wantAt)
			}
			if k.Now() != ref.now {
				t.Fatalf("seed %d: clock skew: kernel %v, reference %v", seed, k.Now(), ref.now)
			}
		}

		for op := 0; op < nOps; op++ {
			id := rng.Intn(nEvents)
			// A narrow window above now maximizes same-time collisions.
			at := k.Now() + dram.Time(rng.Intn(16))
			switch r := rng.Intn(100); {
			case r < 40:
				if events[id].Scheduled() {
					k.Reschedule(events[id], at)
					ref.rescheduleID(at, id)
				} else {
					k.ScheduleEvent(events[id], at)
					ref.scheduleID(at, id)
				}
			case r < 55:
				if gotC, wantC := k.Cancel(events[id]), ref.cancelID(id); gotC != wantC {
					t.Fatalf("seed %d: op %d: Cancel(%d) = %v, reference %v", seed, op, id, gotC, wantC)
				}
			case r < 70:
				// Reschedule regardless of state (schedules when idle).
				k.Reschedule(events[id], at)
				ref.rescheduleID(at, id)
			default:
				if k.Pending() > 0 {
					popBoth()
				}
			}
			if k.Pending() != len(ref.events) {
				t.Fatalf("seed %d: op %d: pending %d, reference %d", seed, op, k.Pending(), len(ref.events))
			}
		}

		for k.Pending() > 0 {
			popBoth()
		}
		if len(ref.events) != 0 {
			t.Fatalf("seed %d: reference has %d events left after kernel drained", seed, len(ref.events))
		}
	}
}
