package sim

import (
	"fmt"

	"mirza/internal/dram"
)

// Handler is the target of a reusable Event: Fire is invoked when the
// event's scheduled time is reached, with now equal to the event's time
// (and to Kernel.Now()). Implementations are typically small adapter
// types over the simulated actor, so the kernel's hot path never boxes a
// closure.
type Handler interface {
	Fire(now dram.Time)
}

// Event is a reusable scheduled-event handle. Callers allocate one Event
// per logical timer (usually embedded in the actor it wakes), Bind it to
// its Handler once, and then Schedule/Reschedule/Cancel it any number of
// times without further allocation. The kernel owns the event while it is
// scheduled: the pos field is its position in the kernel's heap, so
// cancellation and rescheduling are O(log n) with no search.
//
// An Event belongs to at most one Kernel at a time and, like the Kernel
// itself, is not safe for concurrent use.
type Event struct {
	h   Handler
	at  dram.Time
	seq uint64
	pos int32 // 1-based heap position; 0 when idle

	// poked/pokeSeq track a pending PokeNow firing (see Kernel.PokeNow):
	// an extra same-instant firing that rides the kernel's lane instead of
	// the heap, independent of the scheduled slot above.
	poked   bool
	pokeSeq uint64
}

// Bind sets the event's fire target. It must be called before the first
// ScheduleEvent/Reschedule and must not be called while the event is
// scheduled. Rebinding an idle event is allowed (pooled objects rebind on
// reuse).
func (e *Event) Bind(h Handler) {
	if e.pos != 0 || e.poked {
		panic("sim: Bind on a scheduled event")
	}
	if h == nil {
		panic("sim: Bind with nil handler")
	}
	e.h = h
}

// Scheduled reports whether the event is currently queued.
func (e *Event) Scheduled() bool { return e.pos != 0 }

// When returns the time the event is scheduled to fire. It is only
// meaningful while Scheduled() is true.
func (e *Event) When() dram.Time { return e.at }

// HandlerFunc adapts a plain function to the Handler interface, for call
// sites (mostly tests) where a dedicated adapter type is overkill. The
// caller still owns and reuses the Event it binds the function to — unlike
// the retired Schedule(at, func()) shim, nothing is allocated per firing.
type HandlerFunc func(now dram.Time)

// Fire implements Handler.
func (f HandlerFunc) Fire(now dram.Time) { f(now) }

// The event queue is a monomorphic 4-ary min-heap of *Event ordered by
// (at, seq): no container/heap, no interface boxing, and a shallower tree
// than a binary heap (fewer cache-missing levels per sift for the queue
// depths a full-system simulation produces). Each element's 1-based
// position is mirrored into Event.pos so Cancel/Reschedule locate their
// node in O(1).

// eventBefore is the strict heap order: earlier time first, then FIFO by
// sequence number among simultaneous events.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and restores the heap property.
func (k *Kernel) push(e *Event) {
	k.events = append(k.events, e)
	k.siftUp(len(k.events) - 1)
}

// popRoot removes the earliest event, leaving it idle (pos 0).
func (k *Kernel) popRoot() *Event {
	root := k.events[0]
	n := len(k.events) - 1
	last := k.events[n]
	k.events[n] = nil // release the reference; events outlive the queue
	k.events = k.events[:n]
	if n > 0 {
		k.events[0] = last
		k.siftDown(0)
	}
	root.pos = 0
	return root
}

// remove deletes the event at heap index i, leaving it idle.
func (k *Kernel) remove(i int) {
	e := k.events[i]
	n := len(k.events) - 1
	last := k.events[n]
	k.events[n] = nil
	k.events = k.events[:n]
	if i < n {
		k.events[i] = last
		k.fix(i)
	}
	e.pos = 0
}

// fix restores the heap property for a node whose key changed in either
// direction (Reschedule, remove).
func (k *Kernel) fix(i int) {
	if !k.siftDown(i) {
		k.siftUp(i)
	}
}

func (k *Kernel) siftUp(i int) {
	e := k.events[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(e, k.events[p]) {
			break
		}
		k.events[i] = k.events[p]
		k.events[i].pos = int32(i + 1)
		i = p
	}
	k.events[i] = e
	e.pos = int32(i + 1)
}

// siftDown reports whether the node moved.
func (k *Kernel) siftDown(i int) bool {
	e := k.events[i]
	n := len(k.events)
	start := i
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(k.events[j], k.events[m]) {
				m = j
			}
		}
		if !eventBefore(k.events[m], e) {
			break
		}
		k.events[i] = k.events[m]
		k.events[i].pos = int32(i + 1)
		i = m
	}
	k.events[i] = e
	e.pos = int32(i + 1)
	return i != start
}

// ScheduleEvent queues e to fire at time at. The event must be bound and
// idle: scheduling an already-scheduled event panics (use Reschedule to
// move a pending timer). Scheduling in the past panics with the same
// diagnostic snapshot a StallError carries, so causality bugs surface
// with context instead of a bare pair of timestamps.
func (k *Kernel) ScheduleEvent(e *Event, at dram.Time) {
	if e.pos != 0 {
		panic("sim: ScheduleEvent on an already-scheduled event (use Reschedule)")
	}
	if e.h == nil {
		panic("sim: ScheduleEvent on an unbound event (call Bind first)")
	}
	if at < k.now {
		panic(k.pastTimeDiagnostic(at))
	}
	k.seq++
	e.at = at
	e.seq = k.seq
	k.push(e)
}

// Reschedule moves e to fire at time at, scheduling it if idle. The event
// is assigned a fresh FIFO sequence number, exactly as if it had been
// cancelled and scheduled anew: among simultaneous events it fires after
// everything already queued for that time.
func (k *Kernel) Reschedule(e *Event, at dram.Time) {
	if e.pos == 0 {
		k.ScheduleEvent(e, at)
		return
	}
	if at < k.now {
		panic(k.pastTimeDiagnostic(at))
	}
	k.seq++
	e.at = at
	e.seq = k.seq
	k.fix(int(e.pos) - 1)
}

// Cancel removes e from the queue — and voids any pending poke — reporting
// whether anything was pending. It is a no-op on an idle event.
func (k *Kernel) Cancel(e *Event) bool {
	was := false
	if e.poked {
		e.poked = false
		k.laneLive--
		was = true
	}
	if e.pos != 0 {
		k.remove(int(e.pos) - 1)
		was = true
	}
	return was
}

// pastTimeDiagnostic builds the panic message for scheduling before now.
func (k *Kernel) pastTimeDiagnostic(at dram.Time) string {
	return fmt.Sprintf("sim: schedule at %v before now %v (%d events pending, %d executed; recent event times %v)",
		at, k.now, len(k.events), k.executed, k.RecentTimes())
}
