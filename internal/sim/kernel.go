// Package sim provides the discrete-event simulation kernel shared by the
// memory controller and CPU models: a time-ordered event queue with a
// monotonic picosecond clock.
package sim

import (
	"container/heap"
	"fmt"

	"mirza/internal/dram"
)

// event is one scheduled callback.
type event struct {
	at  dram.Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// recentEvents is the size of the executed-event ring kept for watchdog
// diagnostics.
const recentEvents = 16

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now    dram.Time
	seq    uint64
	events eventHeap

	// recent is a ring of the times of the most recently executed events,
	// reported in watchdog stall diagnostics.
	recent   [recentEvents]dram.Time
	executed uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() dram.Time { return k.now }

// Schedule runs fn at time at. Scheduling in the past panics: it would
// silently corrupt causality.
func (k *Kernel) Schedule(at dram.Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn delay after the current time.
func (k *Kernel) After(delay dram.Time, fn func()) {
	k.Schedule(k.now+delay, fn)
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Step executes the earliest event, advancing the clock. It returns false
// if no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.recent[k.executed%recentEvents] = e.at
	k.executed++
	e.fn()
	return true
}

// Executed returns the number of events the kernel has run.
func (k *Kernel) Executed() uint64 { return k.executed }

// RecentTimes returns the execution times of up to the last 16 events,
// oldest first (watchdog diagnostics).
func (k *Kernel) RecentTimes() []dram.Time {
	n := k.executed
	if n > recentEvents {
		n = recentEvents
	}
	out := make([]dram.Time, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, k.recent[(k.executed-n+i)%recentEvents])
	}
	return out
}

// NextTimes returns the times of up to the n earliest pending events,
// soonest first, without disturbing the queue (watchdog diagnostics). It
// walks the queue through an auxiliary heap of candidate indices — the
// root, then the children of each visited node — so the cost is
// O(n log n) rather than a copy of the whole queue, which matters when a
// watchdog fires against a simulation with a large event backlog.
func (k *Kernel) NextTimes(n int) []dram.Time {
	if n > len(k.events) {
		n = len(k.events)
	}
	out := make([]dram.Time, 0, n)
	if n == 0 {
		return out
	}
	cand := candidateHeap{events: k.events, idx: make([]int, 0, n+1)}
	cand.idx = append(cand.idx, 0)
	for len(out) < n {
		i := heap.Pop(&cand).(int)
		out = append(out, k.events[i].at)
		if l := 2*i + 1; l < len(k.events) {
			heap.Push(&cand, l)
		}
		if r := 2*i + 2; r < len(k.events) {
			heap.Push(&cand, r)
		}
	}
	return out
}

// candidateHeap orders event-queue indices by their event's (time, seq)
// key. NextTimes uses it to visit events soonest-first without mutating
// the queue; it never holds more than n+1 indices.
type candidateHeap struct {
	events eventHeap
	idx    []int
}

func (c candidateHeap) Len() int           { return len(c.idx) }
func (c candidateHeap) Less(i, j int) bool { return c.events.Less(c.idx[i], c.idx[j]) }
func (c candidateHeap) Swap(i, j int)      { c.idx[i], c.idx[j] = c.idx[j], c.idx[i] }
func (c *candidateHeap) Push(x any)        { c.idx = append(c.idx, x.(int)) }
func (c *candidateHeap) Pop() any {
	old := c.idx
	n := len(old)
	v := old[n-1]
	c.idx = old[:n-1]
	return v
}

// RunUntil executes events until the clock would pass deadline or the queue
// empties, leaving later events queued. The clock is left at
// min(deadline, last-event time).
func (k *Kernel) RunUntil(deadline dram.Time) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Drain runs all remaining events. Intended for test teardown; simulations
// with self-rescheduling actors should use RunUntil.
func (k *Kernel) Drain(maxEvents int) error {
	for i := 0; i < maxEvents; i++ {
		if !k.Step() {
			return nil
		}
	}
	return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
}
