// Package sim provides the discrete-event simulation kernel shared by the
// memory controller and CPU models: a time-ordered event queue with a
// monotonic picosecond clock.
//
// The queue is a monomorphic 4-ary min-heap of typed *Event handles (see
// event.go). Callers allocate an Event once, Bind it to a Handler, and
// ScheduleEvent/Reschedule/Cancel it for the lifetime of the simulation:
// steady-state scheduling performs zero heap allocations (the contract is
// pinned by testing.AllocsPerRun in kernel_bench_test.go). One-shot
// closures can be bound through HandlerFunc; the caller still owns the
// Event.
package sim

import (
	"fmt"

	"mirza/internal/dram"
)

// recentEvents is the size of the executed-event ring kept for watchdog
// diagnostics.
const recentEvents = 16

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now    dram.Time
	seq    uint64
	events []*Event // 4-ary min-heap ordered by (at, seq)

	// lane holds PokeNow firings pending at the current instant, FIFO by
	// the sequence number each poke allocated. Entries merge with the heap
	// in exact (time, seq) order in Step; the backing array is reused once
	// drained, so steady-state pokes allocate nothing.
	lane     []laneEntry
	laneHead int
	laneLive int

	// recent is a ring of the times of the most recently executed events,
	// reported in watchdog stall diagnostics.
	recent   [recentEvents]dram.Time
	executed uint64
}

// laneEntry is one pending PokeNow firing. The seq snapshot doubles as the
// tombstone check: a poke cancelled (or consumed) before the entry drains
// no longer matches the event's pokeSeq and is skipped.
type laneEntry struct {
	e   *Event
	seq uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() dram.Time { return k.now }

// Pending returns the number of queued firings: heap events plus pending
// pokes.
func (k *Kernel) Pending() int { return len(k.events) + k.laneLive }

// PokeNow fires e once at the current instant, ordered exactly as if it
// had been rescheduled to now — it allocates a fresh FIFO sequence number,
// so it fires after every event already queued for this instant — but
// WITHOUT disturbing e's scheduled slot: the event stays queued at its
// future time, where a later Reschedule can move it for the cost of a
// short heap fix instead of a full pull-to-now-and-back round trip.
//
// A second poke while one is pending coalesces (no sequence number is
// allocated), mirroring how a reschedule-to-now coalesces against a wake
// already due at the current instant. Poking an event whose scheduled
// time IS the current instant is the caller's responsibility to avoid
// (it would fire twice); the intended pattern guards with
// e.Scheduled() && e.When() <= now first.
func (k *Kernel) PokeNow(e *Event) {
	if e.h == nil {
		panic("sim: PokeNow on an unbound event (call Bind first)")
	}
	if e.poked {
		return
	}
	k.seq++
	e.poked = true
	e.pokeSeq = k.seq
	k.lane = append(k.lane, laneEntry{e, k.seq})
	k.laneLive++
}

// Step executes the earliest event, advancing the clock. It returns false
// if no events remain. The fired event is idle (and may be rescheduled,
// including from inside its own Fire) by the time Fire runs; a poked
// event keeps its scheduled slot.
func (k *Kernel) Step() bool {
	for k.laneHead < len(k.lane) {
		le := k.lane[k.laneHead]
		if !le.e.poked || le.e.pokeSeq != le.seq {
			// Tombstone: the poke was cancelled before draining.
			k.laneDrop()
			continue
		}
		if len(k.events) > 0 && (k.events[0].at < k.now ||
			(k.events[0].at == k.now && k.events[0].seq < le.seq)) {
			break // an older same-instant heap event fires first
		}
		k.laneDrop()
		k.laneLive--
		le.e.poked = false
		k.recent[k.executed%recentEvents] = k.now
		k.executed++
		le.e.h.Fire(k.now)
		return true
	}
	if len(k.events) == 0 {
		return false
	}
	e := k.popRoot()
	k.now = e.at
	k.recent[k.executed%recentEvents] = e.at
	k.executed++
	e.h.Fire(e.at)
	return true
}

// laneDrop consumes the head lane entry, recycling the backing array once
// the lane drains.
func (k *Kernel) laneDrop() {
	k.laneHead++
	if k.laneHead == len(k.lane) {
		k.lane = k.lane[:0]
		k.laneHead = 0
	}
}

// Executed returns the number of events the kernel has run.
func (k *Kernel) Executed() uint64 { return k.executed }

// RecentTimes returns the execution times of up to the last 16 events,
// oldest first (watchdog diagnostics).
func (k *Kernel) RecentTimes() []dram.Time {
	n := k.executed
	if n > recentEvents {
		n = recentEvents
	}
	out := make([]dram.Time, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, k.recent[(k.executed-n+i)%recentEvents])
	}
	return out
}

// NextTimes returns the times of up to the n earliest pending events,
// soonest first, without disturbing the queue (watchdog diagnostics). It
// walks the queue through an auxiliary heap of candidate indices — the
// root, then the children of each visited node — so the cost is
// O(n log n) rather than a copy of the whole queue, which matters when a
// watchdog fires against a simulation with a large event backlog.
func (k *Kernel) NextTimes(n int) []dram.Time {
	if n > len(k.events) {
		n = len(k.events)
	}
	out := make([]dram.Time, 0, n)
	if n == 0 {
		return out
	}
	// cand is a small binary min-heap of event-queue indices ordered by
	// their event's (time, seq) key; it never holds more than n+3 entries
	// (each pop of the 4-ary queue exposes at most four children).
	cand := make([]int, 0, n+4)
	candLess := func(i, j int) bool { return eventBefore(k.events[cand[i]], k.events[cand[j]]) }
	candPush := func(v int) {
		cand = append(cand, v)
		for i := len(cand) - 1; i > 0; {
			p := (i - 1) / 2
			if !candLess(i, p) {
				break
			}
			cand[i], cand[p] = cand[p], cand[i]
			i = p
		}
	}
	candPop := func() int {
		v := cand[0]
		last := len(cand) - 1
		cand[0] = cand[last]
		cand = cand[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(cand) {
				break
			}
			if c+1 < len(cand) && candLess(c+1, c) {
				c++
			}
			if !candLess(c, i) {
				break
			}
			cand[i], cand[c] = cand[c], cand[i]
			i = c
		}
		return v
	}
	candPush(0)
	for len(out) < n {
		i := candPop()
		out = append(out, k.events[i].at)
		for c := 4*i + 1; c <= 4*i+4 && c < len(k.events); c++ {
			candPush(c)
		}
	}
	return out
}

// RunUntil executes events until the clock would pass deadline or the queue
// empties, leaving later events queued. The clock is left at
// min(deadline, last-event time).
func (k *Kernel) RunUntil(deadline dram.Time) {
	for (k.laneLive > 0 && k.now <= deadline) ||
		(len(k.events) > 0 && k.events[0].at <= deadline) {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Drain runs all remaining events. Intended for test teardown; simulations
// with self-rescheduling actors should use RunUntil.
func (k *Kernel) Drain(maxEvents int) error {
	for i := 0; i < maxEvents; i++ {
		if !k.Step() {
			return nil
		}
	}
	return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
}
