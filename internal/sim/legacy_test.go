package sim

import (
	"container/heap"

	"mirza/internal/dram"
)

// This file preserves the pre-redesign scheduler — a container/heap binary
// heap of one-shot closures — as a reference model. It serves two duties:
// the property test checks that the monomorphic 4-ary heap pops events in
// exactly the order the old implementation did (including same-time FIFO
// ties and interleaved Cancel/Reschedule), and the benchmark suite uses it
// as the baseline the new kernel's speedup is measured against.

// legacyEvent is one scheduled callback, keyed by (at, seq) with id
// carried for order comparison in the property test.
type legacyEvent struct {
	at  dram.Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	id  int
	fn  func()
}

type legacyHeap []legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x any)   { *h = append(*h, x.(legacyEvent)) }
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// legacyKernel is the old closure-based scheduler verbatim (modulo the
// past-time panic, which the reference never triggers).
type legacyKernel struct {
	now    dram.Time
	seq    uint64
	events legacyHeap
}

func (k *legacyKernel) Schedule(at dram.Time, fn func()) {
	k.seq++
	heap.Push(&k.events, legacyEvent{at: at, seq: k.seq, fn: fn})
}

// scheduleID queues an id-tagged event (property-test reference mirror).
func (k *legacyKernel) scheduleID(at dram.Time, id int) {
	k.seq++
	heap.Push(&k.events, legacyEvent{at: at, seq: k.seq, id: id})
}

// cancelID removes the queued event with the given id, reporting whether
// it was found. O(n) search is fine for a reference model.
func (k *legacyKernel) cancelID(id int) bool {
	for i := range k.events {
		if k.events[i].id == id {
			heap.Remove(&k.events, i)
			return true
		}
	}
	return false
}

// rescheduleID moves id to a new time with a fresh sequence number —
// exactly the semantics of Kernel.Reschedule — scheduling it if absent.
func (k *legacyKernel) rescheduleID(at dram.Time, id int) {
	for i := range k.events {
		if k.events[i].id == id {
			k.seq++
			k.events[i].at = at
			k.events[i].seq = k.seq
			heap.Fix(&k.events, i)
			return
		}
	}
	k.scheduleID(at, id)
}

func (k *legacyKernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(legacyEvent)
	k.now = e.at
	if e.fn != nil {
		e.fn()
	}
	return true
}

// popID pops the earliest event, returning its (id, time).
func (k *legacyKernel) popID() (int, dram.Time) {
	e := heap.Pop(&k.events).(legacyEvent)
	k.now = e.at
	return e.id, e.at
}
