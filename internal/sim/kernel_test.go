package sim

import (
	"sort"
	"testing"

	"mirza/internal/dram"
)

// scheduleFunc schedules a one-shot fn at time at through a typed Event
// handle. Test convenience: each call allocates its own handle, which is
// exactly what the retired Schedule(at, func()) shim did implicitly —
// production callers embed and reuse their Events instead.
func scheduleFunc(k *Kernel, at dram.Time, fn func()) {
	e := &Event{}
	e.Bind(HandlerFunc(func(dram.Time) { fn() }))
	k.ScheduleEvent(e, at)
}

func TestKernelOrdering(t *testing.T) {
	var k Kernel
	var got []int
	scheduleFunc(&k, 30, func() { got = append(got, 3) })
	scheduleFunc(&k, 10, func() { got = append(got, 1) })
	scheduleFunc(&k, 20, func() { got = append(got, 2) })
	scheduleFunc(&k, 10, func() { got = append(got, 11) }) // FIFO at equal times
	for k.Step() {
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("now = %v", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	var k Kernel
	fired := 0
	scheduleFunc(&k, 100, func() { fired++ })
	scheduleFunc(&k, 200, func() { fired++ })
	k.RunUntil(150)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 150 {
		t.Errorf("clock = %v, want 150 (advanced to deadline)", k.Now())
	}
	k.RunUntil(300)
	if fired != 2 || k.Now() != 300 {
		t.Errorf("fired=%d now=%v", fired, k.Now())
	}
}

func TestKernelSelfScheduling(t *testing.T) {
	// The idiomatic self-rescheduling pattern: one reusable Event handle,
	// bound once, rescheduled from inside its own Fire.
	var k Kernel
	count := 0
	var tickEv Event
	tickEv.Bind(HandlerFunc(func(now dram.Time) {
		count++
		if count < 10 {
			k.ScheduleEvent(&tickEv, now+5*dram.Nanosecond)
		}
	}))
	k.ScheduleEvent(&tickEv, 0)
	k.RunUntil(dram.Millisecond)
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	if k.Now() != dram.Millisecond {
		t.Errorf("now = %v", k.Now())
	}
}

func TestRunUntilEmptyQueue(t *testing.T) {
	var k Kernel
	k.RunUntil(500 * dram.Nanosecond)
	if k.Now() != 500*dram.Nanosecond {
		t.Errorf("empty-queue RunUntil must still advance the clock: now = %v", k.Now())
	}
	// Running backwards-compatible: a second RunUntil with an earlier
	// deadline is a no-op (the clock never rewinds).
	k.RunUntil(100 * dram.Nanosecond)
	if k.Now() != 500*dram.Nanosecond {
		t.Errorf("clock rewound to %v", k.Now())
	}
	if k.Pending() != 0 || k.Step() {
		t.Error("queue should remain empty")
	}
}

func TestSameTimeFIFOInterleaved(t *testing.T) {
	// Events scheduled for the same instant — including from inside
	// running events — must execute in submission order.
	var k Kernel
	var got []int
	scheduleFunc(&k, 10, func() {
		got = append(got, 0)
		// Same-time events enqueued mid-execution run after the ones
		// already queued for this instant, in submission order.
		scheduleFunc(&k, 10, func() { got = append(got, 3) })
		scheduleFunc(&k, k.Now(), func() { got = append(got, 4) })
	})
	scheduleFunc(&k, 10, func() { got = append(got, 1) })
	scheduleFunc(&k, 10, func() { got = append(got, 2) })
	k.RunUntil(20)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var k Kernel
	scheduleFunc(&k, 100, func() {})
	k.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	scheduleFunc(&k, 50, func() {})
}

func TestDrain(t *testing.T) {
	var k Kernel
	for i := 0; i < 5; i++ {
		scheduleFunc(&k, dram.Time(i), func() {})
	}
	if err := k.Drain(10); err != nil {
		t.Errorf("drain: %v", err)
	}
	var k2 Kernel
	var spinEv Event
	spinEv.Bind(HandlerFunc(func(now dram.Time) { k2.ScheduleEvent(&spinEv, now+1) }))
	k2.ScheduleEvent(&spinEv, 0)
	if err := k2.Drain(100); err == nil {
		t.Error("unbounded drain should report an error")
	}
}

func TestNextTimes(t *testing.T) {
	var k Kernel
	// Schedule in an order that leaves the heap internally unsorted, with
	// duplicates to exercise the (time, seq) tie-break.
	for _, at := range []dram.Time{50, 10, 40, 10, 30, 20, 60, 5} {
		scheduleFunc(&k, at, func() {})
	}
	got := k.NextTimes(5)
	want := []dram.Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("NextTimes(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextTimes(5) = %v, want %v", got, want)
		}
	}
	// Asking for more than pending clamps; the queue must be undisturbed.
	if all := k.NextTimes(100); len(all) != 8 {
		t.Fatalf("NextTimes(100) returned %d times", len(all))
	}
	if k.NextTimes(0) == nil || len(k.NextTimes(0)) != 0 {
		t.Error("NextTimes(0) should be an empty slice")
	}
	if k.Pending() != 8 {
		t.Fatalf("NextTimes disturbed the queue: %d pending", k.Pending())
	}
	// Execution order is still intact after peeking.
	var ran []dram.Time
	prev := dram.Time(-1)
	for k.Step() {
		ran = append(ran, k.Now())
		if k.Now() < prev {
			t.Fatalf("events out of order after NextTimes: %v", ran)
		}
		prev = k.Now()
	}
	if len(ran) != 8 {
		t.Fatalf("ran %d events, want 8", len(ran))
	}
}

func TestNextTimesLargeBacklog(t *testing.T) {
	// The candidate-heap walk must return the true n smallest against a
	// reference sort for a large pseudo-random backlog.
	var k Kernel
	state := uint64(0x9E3779B97F4A7C15)
	var ref []dram.Time
	for i := 0; i < 5000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		at := dram.Time(state % 100000)
		ref = append(ref, at)
		scheduleFunc(&k, at, func() {})
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	got := k.NextTimes(64)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("NextTimes[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}
