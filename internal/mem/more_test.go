package mem

import (
	"testing"

	"mirza/internal/dram"
)

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, ACTs: 2, BusBusy: 3, Mitigations: 4}
	b := Stats{Reads: 10, ACTs: 20, BusBusy: 30, Mitigations: 40}
	a.Add(b)
	if a.Reads != 11 || a.ACTs != 22 || a.BusBusy != 33 || a.Mitigations != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{RFMBAT: 48, WindowDepth: 64}
	if s := c.String(); s == "" {
		t.Error("empty string")
	}
}

func TestPendingRequestsDrains(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	for i := 0; i < 10; i++ {
		var d dram.Time
		submitLine(ch, 0, i%4, 100+i, 0, &d)
	}
	if ch.PendingRequests() == 0 {
		t.Error("requests should be queued before the scheduler runs")
	}
	k.RunUntil(10 * dram.Microsecond)
	if ch.PendingRequests() != 0 {
		t.Errorf("%d requests stuck in queue", ch.PendingRequests())
	}
}

func TestWindowDepthBoundsScheduling(t *testing.T) {
	// A tiny window still drains everything; it just limits visibility.
	k, ch := newTestChannel(t, Config{WindowDepth: 2})
	done := make([]dram.Time, 40)
	for i := range done {
		submitLine(ch, 0, i%8, 100+i, 0, &done[i])
	}
	k.RunUntil(50 * dram.Microsecond)
	for i, d := range done {
		if d == 0 {
			t.Fatalf("request %d never completed with WindowDepth=2", i)
		}
	}
}

func TestTFAWPacing(t *testing.T) {
	// 8 activations to 8 different banks cannot all issue within one tFAW.
	k, ch := newTestChannel(t, Config{})
	var dones [8]dram.Time
	for i := 0; i < 8; i++ {
		submitLine(ch, 0, i, 100, 0, &dones[i])
	}
	k.RunUntil(10 * dram.Microsecond)
	tm := dram.DDR5()
	// The 5th ACT waits for the tFAW window: its data completes at least
	// ~tFAW after the first.
	if gap := dones[4] - dones[0]; gap < tm.TFAW-2*tm.TBUS {
		t.Errorf("5th completion only %v after 1st; tFAW=%v not enforced?", gap, tm.TFAW)
	}
	// But bank parallelism still beats serial tRC x 8.
	if total := dones[7] - dones[0]; total > 8*tm.TRC {
		t.Errorf("8 banks took %v, worse than serial", total)
	}
}

func TestMitigatorsExposed(t *testing.T) {
	_, ch := newTestChannel(t, Config{})
	mits := ch.Mitigators()
	if len(mits) != 2 {
		t.Fatalf("expected 2 sub-channel mitigators, got %d", len(mits))
	}
	for _, m := range mits {
		if m.Name() != "Unprotected" {
			t.Errorf("default mitigator = %s", m.Name())
		}
	}
	if ch.SubChannel(0).Mitigator() != mits[0] {
		t.Error("SubChannel accessor mismatch")
	}
	if ch.SubChannel(1).RefIndex() != 0 {
		t.Error("fresh channel should have no REFs")
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	g := ch.Geometry()
	var readDone dram.Time
	// A burst of writes to one bank, then a read to another bank: the
	// read's latency must stay near the unloaded value.
	for i := 0; i < 8; i++ {
		addr := g.Compose(dram.Address{Bank: 0, Row: 5, Col: i})
		ch.Submit(&Request{Addr: addr, Write: true})
	}
	submitLine(ch, 0, 7, 100, 0, &readDone)
	k.RunUntil(5 * dram.Microsecond)
	tm := dram.DDR5()
	unloaded := tm.TRCD + tm.TCL + tm.TBUS
	if readDone > 4*unloaded {
		t.Errorf("read behind writes took %v (unloaded %v)", readDone, unloaded)
	}
	if ch.Stats().Writes != 8 {
		t.Errorf("writes = %d", ch.Stats().Writes)
	}
}
