package mem_test

// End-to-end fig3 benchmark: eight trace-driven cores running a Table-IV
// workload against the MINT+RFM configuration of Figure 3, wired either to
// the redesigned SubChannel command path (impl=event) or to the preserved
// pre-redesign reference in legacy_ref_test.go (impl=legacy). Both builds
// share one kernel/core/trace stack, so the measured difference is the
// command path alone. `make bench-mem` pipes these results (plus the
// direct-drive replay pairs of bench_replay_test.go) through cmd/benchjson,
// which enforces 0 allocs/op on every impl=event benchmark and the same
// >= 1.5x paired speedup gate as the kernel's bench-smoke, recorded in
// BENCH_mem.json.

import (
	"testing"

	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/trace"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register mint-rfm
	"mirza/internal/vmap"
)

const (
	benchCores = 8
	benchSeed  = 12345
	// 300us lets every pool and queue reach its high-water mark: the
	// command queue's write depth keeps setting new maxima (one append
	// per ~20us slice) until roughly 300us in, then never again.
	benchWarmup = 300 * dram.Microsecond
	benchSlice  = 20 * dram.Microsecond
)

// benchSystem is the minimal full-system harness: NewSystem hard-codes the
// production mem.Channel, so the legacy pairing replicates its wiring with
// the submit hook swapped.
type benchSystem struct {
	k     *sim.Kernel
	cores []*cpu.Core
	clock dram.Time
}

// newBenchSystem builds the system; a non-nil tap sees every request the
// cores submit (with its arrival time) before the channel does, so the
// command-path replay benchmark can record fig3 request streams.
func newBenchSystem(tb testing.TB, impl, workload string, tap func(*mem.Request, dram.Time)) *benchSystem {
	tb.Helper()
	spec, err := trace.Lookup(workload)
	if err != nil {
		tb.Fatal(err)
	}
	built, err := track.Build("mint-rfm", nil, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     1000,
		Seed:     benchSeed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := mem.Config{
		Timing:       built.Timing(),
		Mapping:      dram.StridedR2SA,
		RFMBAT:       built.RFMBAT(),
		NewMitigator: built.Factory(),
	}

	k := &sim.Kernel{}
	var submit func(*mem.Request)
	var geom dram.Geometry
	switch impl {
	case "event":
		ch, err := mem.NewChannel(k, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		submit = ch.Submit
		geom = ch.Geometry()
	case "legacy":
		ch, err := mem.NewLegacyChannel(k, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		submit = ch.Submit
		geom = ch.Geometry()
	default:
		tb.Fatalf("unknown impl %q", impl)
	}

	if tap != nil {
		inner := submit
		submit = func(r *mem.Request) {
			tap(r, k.Now())
			inner(r)
		}
	}

	gens, err := trace.PerCore(spec, benchCores, benchSeed)
	if err != nil {
		tb.Fatal(err)
	}
	mapper := vmap.NewMapper(geom.CapacityBytes())
	translate := func(core int, vaddr uint64) uint64 {
		return mapper.Translate(core, vaddr)
	}
	s := &benchSystem{k: k}
	for i, g := range gens {
		if fp, ok := g.(interface{ FootprintBytes() uint64 }); ok {
			for off := uint64(0); off < fp.FootprintBytes(); off += vmap.SuperBytes {
				mapper.Translate(i, off)
			}
		}
		s.cores = append(s.cores, cpu.NewCore(i, cpu.CoreConfig{}, k, g, translate, submit, nil))
	}
	return s
}

// run starts the cores and simulates the warmup window, leaving the system
// in steady state: queues at working depth, every pool primed.
func (s *benchSystem) run() {
	for _, c := range s.cores {
		c.Start()
	}
	s.advance(benchWarmup)
}

// advance simulates d more time.
func (s *benchSystem) advance(d dram.Time) {
	s.clock += d
	s.k.RunUntil(s.clock)
}

// BenchmarkFig3 measures one steady-state simulated-time slice per op, so
// ns/op is directly comparable between impls (same simulated work per op).
// fotonik3d is the bandwidth-heavy case (62% bus utilisation: the command
// scans dominate); blender is the low-MPKI case (16%: idle fast-forward
// dominates).
func BenchmarkFig3(b *testing.B) {
	for _, workload := range []string{"fotonik3d", "blender"} {
		for _, impl := range []string{"event", "legacy"} {
			b.Run("impl="+impl+"/workload="+workload, func(b *testing.B) {
				s := newBenchSystem(b, impl, workload, nil)
				s.run()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.advance(benchSlice)
				}
			})
		}
	}
}

// TestFig3SteadyStateAllocFree pins the pooled-request contract directly
// (the benchjson alloc gate pins it per benchmark run): once warm, whole
// simulated-time slices of the fig3 system execute without a single heap
// allocation.
func TestFig3SteadyStateAllocFree(t *testing.T) {
	for _, workload := range []string{"fotonik3d", "blender"} {
		t.Run(workload, func(t *testing.T) {
			s := newBenchSystem(t, "event", workload, nil)
			s.run()
			if allocs := testing.AllocsPerRun(20, func() { s.advance(benchSlice) }); allocs != 0 {
				t.Errorf("steady-state %s slice allocates %.1f times, want 0", workload, allocs)
			}
		})
	}
}
