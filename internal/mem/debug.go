package mem

// DebugOptions bundles every test-only instrumentation hook the command
// path exposes. The hot path carries exactly one package-level pointer
// (nil in production): each hook site loads it once and pays a single nil
// test, so an uninstalled hook set costs nothing measurable.
type DebugOptions struct {
	// Wake, when non-nil, receives the number of pass transitions each
	// scheduler wake performed (0 = the wake made no progress).
	Wake func(progress int)

	// SkipFAW disables the four-activation-window pacing check. It exists
	// solely so the audit tests can prove the auditor catches a controller
	// that stops honouring tFAW.
	SkipFAW bool
}

// debugOpts is the single active hook set. Plain (unsynchronized)
// package-level state: install before the simulation starts, from the
// same goroutine that runs it, and never while the job engine fans
// simulations out across workers. debugSkipFAW mirrors
// debugOpts.SkipFAW as a plain bool so the scheduling scan reads one
// global instead of chasing the pointer per pass.
var (
	debugOpts    *DebugOptions
	debugSkipFAW bool
)

// InstallDebug makes o the active hook set for every sub-channel in the
// process. Passing nil uninstalls. Test instrumentation only — never
// install in production runs.
func InstallDebug(o *DebugOptions) {
	debugOpts = o
	debugSkipFAW = o != nil && o.SkipFAW
}
