package mem

import "mirza/internal/dram"

// Test-only instrumentation counters, populated only after
// InstallDebugHooks. They are plain (unsynchronized) package-level state,
// so they must never be armed while simulations run on multiple
// goroutines — the job engine runs one simulation per worker, and the
// hooks would race. Production runs leave the hook pointers nil, which
// also keeps the per-wake overhead off the hot path.
var (
	DebugWakes, DebugNoProgress, DebugSteps int64
	DebugClamps                             = map[string]int64{}
	DebugArmLabel                           = map[string]int64{}
	DebugArmDelta                           = map[string]dram.Time{}
)

// InstallDebugHooks arms the instrumentation counters above. Call it only
// from single-goroutine tests that need wake/clamp/arm telemetry.
func InstallDebugHooks() {
	debugHook = func(progress int) {
		DebugWakes++
		DebugSteps += int64(progress)
		if progress == 0 {
			DebugNoProgress++
		}
	}
	debugClamp = func(label string) { DebugClamps[label]++ }
	debugArm = func(label string, delta dram.Time) {
		DebugArmLabel[label]++
		DebugArmDelta[label] += delta
	}
}

// RemoveDebugHooks disarms the instrumentation installed by
// InstallDebugHooks and leaves the counters at their current values.
func RemoveDebugHooks() {
	debugHook, debugClamp, debugArm = nil, nil, nil
}

// SetDebugSkipFAW toggles the deliberate-breakage hook that makes the
// scheduler stop honouring the four-activation window. It exists solely so
// the protocol-auditor tests can prove a tFAW-violating controller is
// caught; like the other debug hooks it is unsynchronized and must only be
// flipped from single-goroutine tests.
func SetDebugSkipFAW(skip bool) { debugSkipFAW = skip }
