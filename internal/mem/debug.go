package mem

import "mirza/internal/dram"

// Test-only instrumentation counters.
var (
	DebugWakes, DebugNoProgress, DebugSteps int64
	DebugClamps                             = map[string]int64{}
	DebugArmLabel                           = map[string]int64{}
	DebugArmDelta                           = map[string]dram.Time{}
)

func init() {
	debugHook = func(progress int) {
		DebugWakes++
		DebugSteps += int64(progress)
		if progress == 0 {
			DebugNoProgress++
		}
	}
	debugClamp = func(label string) { DebugClamps[label]++ }
	debugArm = func(label string, delta dram.Time) {
		DebugArmLabel[label]++
		DebugArmDelta[label] += delta
	}
}
