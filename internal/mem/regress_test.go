package mem

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/track"
)

// TestWideBankGeometry is the regression test for the arm() scratch arrays:
// they were fixed-size [64]bool, so any geometry with more than 64 banks per
// sub-channel panicked with an index out of range as soon as two requests
// targeted a high bank. The arrays are now sized from the geometry.
func TestWideBankGeometry(t *testing.T) {
	g := dram.Geometry{
		SubChannels:        1,
		BanksPerSubChannel: 128,
		RowsPerBank:        8192,
		RowBytes:           4096,
		LineBytes:          64,
		MOPLines:           4,
		SubarrayRows:       1024,
		RowsPerREF:         16,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	k, ch := newTestChannel(t, Config{Geometry: g})
	// Two waves over every bank: the second wave row-conflicts in every
	// bank, so arm() marks conflictBank entries all the way up to bank 127.
	done := make([]dram.Time, 2*g.BanksPerSubChannel)
	for wave := 0; wave < 2; wave++ {
		for b := 0; b < g.BanksPerSubChannel; b++ {
			addr := g.Compose(dram.Address{Bank: b, Row: 100 + wave, Col: 0})
			i := wave*g.BanksPerSubChannel + b
			ch.Submit(&Request{Addr: addr, Done: func(at dram.Time) { done[i] = at }})
		}
	}
	k.RunUntil(100 * dram.Microsecond)
	for i, d := range done {
		if d == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
	if st := ch.Stats(); st.ACTs < int64(2*g.BanksPerSubChannel) {
		t.Errorf("ACTs = %d, want >= %d (a conflict per bank per wave)", st.ACTs, 2*g.BanksPerSubChannel)
	}
}

// TestDequeueReleasesQueueSlot verifies the FR-FCFS dequeue nils the vacated
// backing-array slot so a retired *Request is not pinned by the queue's spare
// capacity until a later enqueue happens to overwrite it.
func TestDequeueReleasesQueueSlot(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var done [16]dram.Time
	for i := range done {
		i := i
		addr := ch.Geometry().Compose(dram.Address{Bank: i % 4, Row: i, Col: 0})
		ch.Submit(&Request{Addr: addr, Done: func(at dram.Time) { done[i] = at }})
	}
	k.RunUntil(10 * dram.Microsecond)
	for i, d := range done {
		if d == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
	for _, s := range ch.subs {
		if len(s.queue) != 0 {
			t.Fatalf("sub %d: %d requests still queued", s.id, len(s.queue))
		}
		spare := s.queue[:cap(s.queue)]
		for i, r := range spare {
			if r != nil {
				t.Errorf("sub %d: vacated queue slot %d still references a request", s.id, i)
			}
		}
	}
}

// TestForcedClosePREAccounting pins the ALERT forced-close accounting
// decision (DESIGN.md section 12): rows closed by the prologue-to-stall
// transition go through the normal precharge path, so they appear in
// Stats.PREs and reach observers flagged as forced. Before the fix the
// forced closes reset bank state directly, under-counting PREs and skipping
// RowPress weighting.
func TestForcedClosePREAccounting(t *testing.T) {
	aa := &alwaysAlert{after: 2}
	k, ch := newTestChannel(t, Config{
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			if sub == 0 {
				return aa
			}
			return track.NewNop()
		},
	})
	rec := &preRecorder{}
	ch.InstallObserver(rec)
	// A long burst of row hits keeps bank 0's row open through the 180ns
	// ALERT prologue; the bank-1 ACT raises the ALERT. At stall start the
	// open row must be force-closed.
	done := make([]dram.Time, 64)
	for i := range done {
		i := i
		addr := ch.Geometry().Compose(dram.Address{Bank: 0, Row: 100, Col: i % 16})
		ch.Submit(&Request{Addr: addr, Done: func(at dram.Time) { done[i] = at }})
	}
	var dAlert dram.Time
	submitLine(ch, 0, 1, 100, 0, &dAlert)
	k.RunUntil(10 * dram.Microsecond)
	if aa.serviced == 0 {
		t.Fatal("ALERT never serviced")
	}
	if dAlert == 0 {
		t.Fatal("bank-1 request never completed")
	}
	if rec.forced == 0 {
		t.Fatal("no forced close observed at ALERT stall start")
	}
	if st := ch.SubChannel(0).Stats(); st.PREs != rec.pres[0] {
		t.Errorf("Stats.PREs = %d but observer saw %d precharges: forced closes not routed through precharge",
			st.PREs, rec.pres[0])
	}
}

// preRecorder counts observed precharges per sub-channel and forced closes
// overall.
type preRecorder struct {
	pres   [2]int64
	forced int64
}

func (r *preRecorder) ObserveSubmit(sub int, write bool, now dram.Time) {}
func (r *preRecorder) ObserveACT(sub, bank, row int, now dram.Time)     {}
func (r *preRecorder) ObservePRE(sub, bank int, forced bool, now dram.Time) {
	r.pres[sub]++
	if forced {
		r.forced++
	}
}
func (r *preRecorder) ObserveRead(sub, bank, row int, now dram.Time)         {}
func (r *preRecorder) ObserveWrite(sub, bank, row int, now dram.Time)        {}
func (r *preRecorder) ObserveREF(sub, refIndex int, now dram.Time)           {}
func (r *preRecorder) ObserveRFM(sub, bank int, now dram.Time)               {}
func (r *preRecorder) ObserveAlert(sub int, phase AlertPhase, now dram.Time) {}
