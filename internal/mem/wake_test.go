package mem

import (
	"testing"

	"mirza/internal/dram"
)

// The sub-channel owns exactly one persistent wake event; requestWake must
// coalesce onto it. The audited contract (DESIGN.md §11): an
// earlier-or-equal pending wake wins, a later one is pulled forward with a
// fresh FIFO sequence number — the exact behavior of the retired
// generation-counter scheme, minus the superseded no-op events it left in
// the queue.
func TestRequestWakeCoalesces(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	s := ch.SubChannel(0)

	// newSubChannel arms the first REF: the wake event is pending.
	if !s.wakeEv.Scheduled() {
		t.Fatal("no wake armed after construction")
	}
	if got, want := s.wakeEv.When(), s.cfg.Timing.TREFI; got != want {
		t.Fatalf("initial wake at %v, want first REF due %v", got, want)
	}
	base := k.Pending()

	// A later wake request coalesces into the pending earlier one.
	s.requestWake(s.wakeEv.When() + dram.Microsecond)
	if k.Pending() != base {
		t.Fatalf("later requestWake grew the queue: %d -> %d", base, k.Pending())
	}

	// An equal-time request is also absorbed.
	s.requestWake(s.wakeEv.When())
	if k.Pending() != base {
		t.Fatalf("equal-time requestWake grew the queue: %d -> %d", base, k.Pending())
	}

	// An earlier request pulls the single event forward — never a second
	// event.
	earlier := s.wakeEv.When() / 2
	s.requestWake(earlier)
	if k.Pending() != base {
		t.Fatalf("earlier requestWake grew the queue: %d -> %d", base, k.Pending())
	}
	if got := s.wakeEv.When(); got != earlier {
		t.Fatalf("wake at %v, want pulled forward to %v", got, earlier)
	}

	// Past-time requests clamp to now.
	k.RunUntil(earlier / 2)
	s.requestWake(0)
	if got := s.wakeEv.When(); got != k.Now() {
		t.Fatalf("past requestWake at %v, want clamped to now %v", got, k.Now())
	}
	if k.Pending() != base {
		t.Fatalf("past requestWake grew the queue: %d -> %d", base, k.Pending())
	}
}

// A full simulated window must keep exactly one wake event live per
// sub-channel: the queue never accumulates superseded wakes.
func TestSingleWakeEventUnderLoad(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var dones int
	for i := 0; i < 32; i++ {
		addr := ch.Geometry().Compose(dram.Address{SubChannel: 0, Bank: i % 8, Row: i, Col: 0})
		ch.Submit(&Request{Addr: addr, Done: func(dram.Time) { dones++ }})
		// Pending: at most the one wake per sub-channel plus in-flight
		// read-done events.
		if max := ch.Geometry().SubChannels + 32; k.Pending() > max {
			t.Fatalf("queue grew to %d events (> %d): superseded wakes accumulating", k.Pending(), max)
		}
	}
	k.RunUntil(10 * dram.Microsecond)
	if dones != 32 {
		t.Fatalf("%d of 32 requests completed", dones)
	}
}
