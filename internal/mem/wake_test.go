package mem

import (
	"testing"

	"mirza/internal/dram"
)

// The sub-channel owns exactly one persistent wake event. arm moves it
// with Reschedule (fresh FIFO sequence number, so the wake fires after
// events already queued for the armed instant), and submit fires it at
// the arrival instant through the kernel's poke lane without disturbing
// the armed slot — so the kernel queue never accumulates superseded
// wakes (the audited contract, DESIGN.md §11/§16).
func TestWakeEventSingleAndCoalesced(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	s := ch.SubChannel(0)

	// newSubChannel arms the first REF: the wake event is pending.
	if !s.wakeEv.Scheduled() {
		t.Fatal("no wake armed after construction")
	}
	if got, want := s.wakeEv.When(), s.cfg.Timing.TREFI; got != want {
		t.Fatalf("initial wake at %v, want first REF due %v", got, want)
	}
	base := k.Pending()

	// Re-arming moves the single event; it never schedules a second one.
	s.arm(s.wakeEv.When() / 2)
	if k.Pending() != base {
		t.Fatalf("re-arm grew the queue: %d -> %d", base, k.Pending())
	}
	if got, want := s.wakeEv.When(), s.cfg.Timing.TREFI/2; got != want {
		t.Fatalf("wake at %v, want re-armed to %v", got, want)
	}

	// An arrival-instant poke adds one pending firing without moving the
	// armed slot; a second poke in the same instant coalesces.
	k.PokeNow(&s.wakeEv)
	if k.Pending() != base+1 {
		t.Fatalf("poke pending: %d, want %d", k.Pending(), base+1)
	}
	k.PokeNow(&s.wakeEv)
	if k.Pending() != base+1 {
		t.Fatalf("second poke did not coalesce: %d, want %d", k.Pending(), base+1)
	}
	if got, want := s.wakeEv.When(), s.cfg.Timing.TREFI/2; got != want {
		t.Fatalf("poke moved the armed slot to %v, want %v untouched", got, want)
	}

	// The poked firing drains at the current instant; the armed slot
	// survives it.
	if !k.Step() {
		t.Fatal("no poked firing to execute")
	}
	if k.Now() != 0 {
		t.Fatalf("poked firing advanced the clock to %v, want 0", k.Now())
	}
	if !s.wakeEv.Scheduled() {
		t.Fatal("armed slot lost after poked firing")
	}
}

// A full simulated window must keep exactly one wake event live per
// sub-channel: the queue never accumulates superseded wakes.
func TestSingleWakeEventUnderLoad(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var dones int
	for i := 0; i < 32; i++ {
		addr := ch.Geometry().Compose(dram.Address{SubChannel: 0, Bank: i % 8, Row: i, Col: 0})
		ch.Submit(&Request{Addr: addr, Done: func(dram.Time) { dones++ }})
		// Pending: at most the one wake (plus one pending poked firing)
		// per sub-channel plus in-flight read-done events.
		if max := 2*ch.Geometry().SubChannels + 32; k.Pending() > max {
			t.Fatalf("queue grew to %d events (> %d): superseded wakes accumulating", k.Pending(), max)
		}
	}
	k.RunUntil(10 * dram.Microsecond)
	if dones != 32 {
		t.Fatalf("%d of 32 requests completed", dones)
	}
}
