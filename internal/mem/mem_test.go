package mem

import (
	"testing"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/track"
)

func newTestChannel(t *testing.T, cfg Config) (*sim.Kernel, *Channel) {
	t.Helper()
	k := &sim.Kernel{}
	ch, err := NewChannel(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, ch
}

// submitLine submits a read for (sub, bank, row, col) and returns a pointer
// to its completion time (zero until done).
func submitLine(ch *Channel, sub, bank, row, col int, done *dram.Time) {
	g := ch.Geometry()
	addr := g.Compose(dram.Address{SubChannel: sub, Bank: bank, Row: row, Col: col})
	ch.Submit(&Request{Addr: addr, Done: func(at dram.Time) { *done = at }})
}

func TestReadCompletesWithExpectedLatency(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var done dram.Time
	submitLine(ch, 0, 0, 100, 0, &done)
	k.RunUntil(dram.Microsecond)
	tm := dram.DDR5()
	want := tm.TRCD + tm.TCL + tm.TBUS // ACT at t=0, data after tRCD+tCL+tBUS
	if done != want {
		t.Errorf("read done at %v, want %v", done, want)
	}
}

func TestRowHitsShareOneActivation(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var d1, d2, d3 dram.Time
	submitLine(ch, 0, 0, 100, 0, &d1)
	submitLine(ch, 0, 0, 100, 1, &d2)
	submitLine(ch, 0, 0, 100, 2, &d3)
	k.RunUntil(dram.Microsecond)
	if d1 == 0 || d2 == 0 || d3 == 0 {
		t.Fatal("requests not completed")
	}
	st := ch.Stats()
	if st.ACTs != 1 {
		t.Errorf("ACTs = %d, want 1 (row hits)", st.ACTs)
	}
	if st.Reads != 3 {
		t.Errorf("reads = %d", st.Reads)
	}
	// Back-to-back data transfers: one tBUS apart.
	tbus := dram.DDR5().TBUS
	if d2-d1 != tbus || d3-d2 != tbus {
		t.Errorf("data spacing %v / %v, want %v", d2-d1, d3-d2, tbus)
	}
}

func TestRowConflictPaysPrechargeAndTRC(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var d1, d2 dram.Time
	submitLine(ch, 0, 0, 100, 0, &d1)
	submitLine(ch, 0, 0, 200, 0, &d2)
	k.RunUntil(10 * dram.Microsecond)
	tm := dram.DDR5()
	// Second ACT cannot happen before tRC after the first.
	gap := d2 - d1
	if gap < tm.TRC-tm.TBUS {
		t.Errorf("conflict gap %v too small (tRC=%v)", gap, tm.TRC)
	}
	if ch.Stats().ACTs != 2 {
		t.Errorf("ACTs = %d, want 2", ch.Stats().ACTs)
	}
}

func TestSoftClosePageClosesAfterTRAS(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	var d1 dram.Time
	submitLine(ch, 0, 0, 100, 0, &d1)
	k.RunUntil(dram.Microsecond)
	// After tRAS with no pending requests the row is precharged; a new
	// request to the same row needs a fresh ACT.
	var d2 dram.Time
	submitLine(ch, 0, 0, 100, 1, &d2)
	k.RunUntil(2 * dram.Microsecond)
	if ch.Stats().ACTs != 2 {
		t.Errorf("ACTs = %d, want 2 (row was soft-closed)", ch.Stats().ACTs)
	}
}

func TestREFCadenceAndDemandRows(t *testing.T) {
	k, ch := newTestChannel(t, Config{})
	horizon := 10 * dram.DDR5().TREFI
	k.RunUntil(horizon + dram.Microsecond)
	st := ch.Stats()
	// Both sub-channels: 10 REFs each.
	if st.REFs != 20 {
		t.Errorf("REFs = %d, want 20", st.REFs)
	}
	g := ch.Geometry()
	want := int64(20 * g.RowsPerREF * g.BanksPerSubChannel)
	if st.DemandRefreshRows != want {
		t.Errorf("demand rows = %d, want %d", st.DemandRefreshRows, want)
	}
}

func TestProactiveRFMEveryBAT(t *testing.T) {
	k, ch := newTestChannel(t, Config{RFMBAT: 4})
	// 12 conflicting rows to one bank: 12 ACTs => 3 RFMs.
	var dones [12]dram.Time
	for i := 0; i < 12; i++ {
		submitLine(ch, 0, 0, 100+i, 0, &dones[i])
	}
	k.RunUntil(20 * dram.Microsecond)
	st := ch.Stats()
	if st.ACTs != 12 {
		t.Fatalf("ACTs = %d", st.ACTs)
	}
	if st.RFMs != 3 {
		t.Errorf("RFMs = %d, want 3 (BAT=4)", st.RFMs)
	}
}

func TestMINTRFMMitigates(t *testing.T) {
	g := dram.Default()
	k, ch := newTestChannel(t, Config{
		RFMBAT: 4,
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			return track.NewMINT(track.MINTConfig{
				Geometry: g, Mapping: dram.StridedR2SA,
				Window: 4, MitigateOnRFM: true, Seed: uint64(sub),
			}, sink)
		},
	})
	var dones [16]dram.Time
	for i := 0; i < 16; i++ {
		submitLine(ch, 0, 0, 100+i, 0, &dones[i])
	}
	k.RunUntil(20 * dram.Microsecond)
	st := ch.Stats()
	if st.RFMs != 4 {
		t.Fatalf("RFMs = %d, want 4", st.RFMs)
	}
	if st.Mitigations == 0 || st.VictimRows != st.Mitigations*track.MitigationVictims {
		t.Errorf("mitigations=%d victims=%d", st.Mitigations, st.VictimRows)
	}
}

// alwaysAlert is a test mitigator that requests one ALERT after the n-th
// activation.
type alwaysAlert struct {
	track.Nop
	after    int
	acts     int
	want     bool
	serviced int
}

func (a *alwaysAlert) OnActivate(bank, row int, now dram.Time) {
	a.acts++
	if a.acts >= a.after {
		a.want = true
	}
}
func (a *alwaysAlert) WantsALERT() bool { return a.want }
func (a *alwaysAlert) ServiceALERT(now dram.Time) {
	a.want = false
	a.serviced++
}

func TestABOProtocolTiming(t *testing.T) {
	aa := &alwaysAlert{after: 2}
	k, ch := newTestChannel(t, Config{
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			if sub == 0 {
				return aa
			}
			return track.NewNop()
		},
	})
	var d1, d2, d3 dram.Time
	submitLine(ch, 0, 0, 100, 0, &d1)
	submitLine(ch, 0, 1, 100, 0, &d2)
	k.RunUntil(dram.Microsecond)
	if aa.serviced != 1 {
		t.Fatalf("ALERT serviced %d times, want 1", aa.serviced)
	}
	st := ch.SubChannel(0).Stats()
	if st.Alerts != 1 {
		t.Fatalf("alerts = %d", st.Alerts)
	}
	if st.AlertStall != dram.DDR5().ABOStall {
		t.Errorf("alert stall = %v", st.AlertStall)
	}
	// A request issued during the stall must wait for the ALERT to end.
	start := k.Now()
	submitLine(ch, 0, 2, 100, 0, &d3)
	k.RunUntil(start + 2*dram.Microsecond)
	if d3 == 0 {
		t.Fatal("post-ALERT request never completed")
	}

	// The epilogue rule: a second ALERT requires an ACT in between. The
	// mitigator re-raised want on the post-ALERT activation (acts
	// continued), so a second service must have happened after d3's ACT.
	if aa.serviced < 2 {
		t.Errorf("second ALERT (after epilogue ACT) not serviced: %d", aa.serviced)
	}
}

func TestMIRZAUnderChannelTraffic(t *testing.T) {
	cfg, _ := core.ForTRHD(1000)
	cfg.FTH = 30 // tiny FTH so the test triggers ALERTs quickly
	k, ch := newTestChannel(t, Config{
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			c := cfg
			c.Seed = uint64(sub)
			return core.MustNew(c, sink)
		},
	})
	// Hammer conflicting rows in one bank of sub-channel 0.
	done := make([]dram.Time, 4000)
	for i := range done {
		submitLine(ch, 0, 0, i%64, 0, &done[i])
	}
	k.RunUntil(dram.Millisecond)
	st := ch.SubChannel(0).Stats()
	if st.Alerts == 0 {
		t.Fatal("no ALERTs under hammering with tiny FTH")
	}
	if st.Mitigations == 0 {
		t.Fatal("no mitigations")
	}
	for i, d := range done {
		if d == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
}

func TestPRACTimingSlowdown(t *testing.T) {
	// A dependent chain of row conflicts (each request issued only after
	// the previous completes) exposes the PRAC timing inflation: the
	// row-cycle path is bounded by tRC for baseline DDR5 (46ns) but by
	// precharge + tRP for PRAC (26ns + 36ns = 62ns), since PRAC's counter
	// update inflates tRP from 14ns to 36ns (Table I).
	run := func(tm dram.Timing) dram.Time {
		k, ch := newTestChannel(t, Config{Timing: tm})
		const n = 100
		var issue func(i int)
		var last dram.Time
		issue = func(i int) {
			if i == n {
				return
			}
			g := ch.Geometry()
			addr := g.Compose(dram.Address{Bank: 0, Row: 100 + i%2, Col: 0})
			ch.Submit(&Request{Addr: addr, Done: func(at dram.Time) {
				last = at
				issue(i + 1)
			}})
		}
		issue(0)
		k.RunUntil(dram.Millisecond)
		return last
	}
	base := run(dram.DDR5())
	prac := run(dram.PRAC())
	ratio := float64(prac) / float64(base)
	if ratio < 1.25 || ratio > 1.42 {
		t.Errorf("PRAC dependent-conflict slowdown = %.3f, want ~1.35 (62ns vs 46ns cycle)", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	k := &sim.Kernel{}
	bad := Config{Geometry: dram.Geometry{SubChannels: 1, BanksPerSubChannel: 2, RowsPerBank: 100, RowBytes: 4096, LineBytes: 64, MOPLines: 4, SubarrayRows: 7, RowsPerREF: 3}}
	if _, err := NewChannel(k, bad); err == nil {
		t.Error("invalid geometry must be rejected")
	}
}
