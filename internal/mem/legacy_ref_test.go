package mem

import (
	"strconv"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// This file preserves the pre-redesign command path — array-of-structs
// bank state, per-bank boolean scratch arrays, a wake at every timing
// boundary — verbatim (minus the debug hooks, which were nil in
// production). It serves two duties: the differential property test
// checks that the struct-of-arrays fast-forward path issues exactly the
// command stream the old implementation did, and the end-to-end fig3
// benchmark uses it as the baseline BENCH_mem.json speedups are measured
// against. Test-only: it is never linked into production binaries.

// legacyBankState is the old controller view of one DRAM bank.
type legacyBankState struct {
	openRow    int
	openedAt   dram.Time
	colReadyAt dram.Time
	preReadyAt dram.Time
	actReadyAt dram.Time
	idleAt     dram.Time
	rfmPending bool
	actCounter int
}

// LegacySubChannel is the pre-redesign sub-channel, kept as the reference
// model. Exported (test-scope) so the external benchmark package can
// drive it through cpu cores.
type LegacySubChannel struct {
	k   *sim.Kernel
	cfg Config
	id  int
	mit track.Mitigator

	banks   []legacyBankState
	queue   []*Request
	nextEnq int64

	faw       []dram.Time
	fawIdx    int
	lastActAt dram.Time
	busFreeAt dram.Time

	refDue       dram.Time
	refBusyUntil dram.Time
	refIndex     int

	alertState    int
	alertStallAt  dram.Time
	alertEndAt    dram.Time
	actSinceAlert bool

	wakeEv sim.Event
	stats  Stats

	hitBank, conflictBank []bool

	obs CommandObserver

	teleBankActs []int64
	teleActHist  *telemetry.Histogram
}

func newLegacySubChannel(k *sim.Kernel, cfg Config, id int) *LegacySubChannel {
	s := &LegacySubChannel{
		k:             k,
		cfg:           cfg,
		id:            id,
		banks:         make([]legacyBankState, cfg.Geometry.BanksPerSubChannel),
		hitBank:       make([]bool, cfg.Geometry.BanksPerSubChannel),
		conflictBank:  make([]bool, cfg.Geometry.BanksPerSubChannel),
		faw:           make([]dram.Time, 4),
		refDue:        cfg.Timing.TREFI,
		actSinceAlert: true,
	}
	s.wakeEv.Bind((*legacySubWake)(s))
	for i := range s.banks {
		s.banks[i].openRow = -1
	}
	for i := range s.faw {
		s.faw[i] = -cfg.Timing.TFAW
	}
	s.lastActAt = -cfg.Timing.TRRD
	sink := track.FuncSink(func(bank, row, victims int, now dram.Time) {
		s.stats.Mitigations++
		s.stats.VictimRows += int64(victims)
	})
	if cfg.NewMitigator != nil {
		s.mit = cfg.NewMitigator(id, sink)
	} else {
		s.mit = track.NewNop()
	}
	if cfg.Telemetry.Enabled() {
		s.teleBankActs = make([]int64, cfg.Geometry.BanksPerSubChannel)
		s.teleActHist = cfg.Telemetry.Histogram("mem_bank_acts_per_ref", 32, 4,
			telemetry.L("sub", strconv.Itoa(id)))
	}
	s.requestWake(s.refDue)
	return s
}

// Stats returns a copy of the sub-channel's counters.
func (s *LegacySubChannel) Stats() Stats { return s.stats }

func (s *LegacySubChannel) submit(r *Request) {
	if r.Done != nil {
		r.doneEv.Bind((*requestDone)(r))
	}
	r.arrive = s.k.Now()
	r.enqueue = s.nextEnq
	s.nextEnq++
	s.queue = append(s.queue, r)
	if s.obs != nil {
		s.obs.ObserveSubmit(s.id, r.Write, r.arrive)
	}
	s.requestWake(s.k.Now())
}

type legacySubWake LegacySubChannel

func (w *legacySubWake) Fire(dram.Time) { (*LegacySubChannel)(w).wake() }

func (s *LegacySubChannel) requestWake(at dram.Time) {
	now := s.k.Now()
	if at < now {
		at = now
	}
	if s.wakeEv.Scheduled() && s.wakeEv.When() <= at {
		return
	}
	s.k.Reschedule(&s.wakeEv, at)
}

func (s *LegacySubChannel) wake() {
	for s.step() {
	}
	s.arm()
}

func (s *LegacySubChannel) step() bool {
	now := s.k.Now()
	t := &s.cfg.Timing

	switch s.alertState {
	case alertStall:
		if now < s.alertEndAt {
			return false
		}
		s.mit.ServiceALERT(now)
		s.alertState = alertIdle
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertEnd, now)
		}
		return true
	case alertPrologue:
		if now >= s.alertStallAt {
			for b := range s.banks {
				bk := &s.banks[b]
				if bk.openRow >= 0 {
					s.precharge(b, now, true)
				}
				if bk.actReadyAt < s.alertEndAt {
					bk.actReadyAt = s.alertEndAt
				}
				if bk.idleAt < s.alertEndAt {
					bk.idleAt = s.alertEndAt
				}
			}
			s.alertState = alertStall
			if s.obs != nil {
				s.obs.ObserveAlert(s.id, AlertStallStart, now)
			}
			return true
		}
	}

	if now < s.refBusyUntil {
		return false
	}

	if now >= s.refDue && s.alertState == alertIdle {
		return s.stepRefresh(now)
	}

	if s.alertState == alertIdle && s.actSinceAlert && s.mit.WantsALERT() {
		s.alertState = alertPrologue
		s.alertStallAt = now + t.ABOPrologue
		s.alertEndAt = s.alertStallAt + t.ABOStall
		s.actSinceAlert = false
		s.stats.Alerts++
		s.stats.AlertStall += t.ABOStall
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertPrologueStart, now)
		}
		return true
	}

	for b := range s.banks {
		bk := &s.banks[b]
		if !bk.rfmPending {
			continue
		}
		if bk.openRow >= 0 {
			if now >= bk.preReadyAt {
				s.precharge(b, now, false)
				return true
			}
			continue
		}
		if now >= bk.idleAt {
			bk.rfmPending = false
			bk.actReadyAt = now + t.TRFM
			bk.idleAt = now + t.TRFM
			s.stats.RFMs++
			s.stats.RFMBusy += t.TRFM
			if s.obs != nil {
				s.obs.ObserveRFM(s.id, b, now)
			}
			s.mit.OnRFM(b, now)
			return true
		}
	}

	window := s.queue
	if len(window) > s.cfg.WindowDepth {
		window = window[:s.cfg.WindowDepth]
	}

	for i, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow != r.addr.Row || now < bk.colReadyAt {
			continue
		}
		if s.busFreeAt > now+t.TCL {
			continue
		}
		s.issueColumn(r, bk, now)
		copy(s.queue[i:], s.queue[i+1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		return true
	}

	for b := range s.banks {
		bk := &s.banks[b]
		if bk.openRow < 0 || now < bk.preReadyAt {
			continue
		}
		hasHit, hasConflict := false, false
		for _, r := range window {
			if r.addr.Bank != b {
				continue
			}
			if r.addr.Row == bk.openRow {
				hasHit = true
				break
			}
			hasConflict = true
		}
		if hasHit {
			continue
		}
		if hasConflict || now-bk.openedAt >= t.TRAS {
			s.precharge(b, now, false)
			return true
		}
	}

	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow >= 0 || bk.rfmPending {
			continue
		}
		if now < bk.actReadyAt || now < bk.idleAt {
			continue
		}
		if now < s.lastActAt+t.TRRD {
			break
		}
		if now < s.faw[s.fawIdx]+t.TFAW {
			break
		}
		s.activate(r.addr.Bank, r.addr.Row, now)
		return true
	}

	return false
}

func (s *LegacySubChannel) stepRefresh(now dram.Time) bool {
	t := &s.cfg.Timing
	g := &s.cfg.Geometry
	allIdle := true
	var latestIdle dram.Time
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.openRow >= 0 {
			allIdle = false
			if now >= bk.preReadyAt {
				s.precharge(b, now, false)
				return true
			}
			continue
		}
		if bk.idleAt > latestIdle {
			latestIdle = bk.idleAt
		}
	}
	if !allIdle || now < latestIdle {
		return false
	}
	s.refBusyUntil = now + t.TRFC
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.actReadyAt < s.refBusyUntil {
			bk.actReadyAt = s.refBusyUntil
		}
		if bk.idleAt < s.refBusyUntil {
			bk.idleAt = s.refBusyUntil
		}
	}
	s.stats.REFs++
	s.stats.RefBusy += t.TRFC
	s.stats.DemandRefreshRows += int64(g.RowsPerREF) * int64(g.BanksPerSubChannel)
	if s.teleBankActs != nil {
		for b, acts := range s.teleBankActs {
			s.teleActHist.Observe(float64(acts))
			s.teleBankActs[b] = 0
		}
	}
	if s.obs != nil {
		s.obs.ObserveREF(s.id, s.refIndex, now)
	}
	s.mit.OnREF(s.refIndex, now)
	s.refIndex++
	s.refDue += t.TREFI
	return true
}

func (s *LegacySubChannel) precharge(bank int, now dram.Time, forced bool) {
	t := &s.cfg.Timing
	bk := &s.banks[bank]
	if s.cfg.RowPressWeighting && bk.openRow >= 0 {
		extra := int((now-bk.openedAt)/t.TRAS) - 1
		if extra > 8 {
			extra = 8
		}
		for i := 0; i < extra; i++ {
			s.mit.OnActivate(bank, bk.openRow, now)
		}
	}
	bk.openRow = -1
	if bk.actReadyAt < now+t.TRP {
		bk.actReadyAt = now + t.TRP
	}
	bk.idleAt = now + t.TRP
	s.stats.PREs++
	if s.obs != nil {
		s.obs.ObservePRE(s.id, bank, forced, now)
	}
}

func (s *LegacySubChannel) activate(bank, row int, now dram.Time) {
	t := &s.cfg.Timing
	bk := &s.banks[bank]
	bk.openRow = row
	bk.openedAt = now
	bk.colReadyAt = now + t.TRCD
	bk.preReadyAt = now + t.TRAS
	bk.actReadyAt = now + t.TRC
	s.faw[s.fawIdx] = now
	s.fawIdx = (s.fawIdx + 1) % len(s.faw)
	s.lastActAt = now
	s.stats.ACTs++
	s.actSinceAlert = true
	if s.teleBankActs != nil {
		s.teleBankActs[bank]++
	}

	if s.cfg.RFMBAT > 0 {
		bk.actCounter++
		if bk.actCounter >= s.cfg.RFMBAT {
			bk.actCounter = 0
			bk.rfmPending = true
		}
	}
	if s.obs != nil {
		s.obs.ObserveACT(s.id, bank, row, now)
	}
	s.mit.OnActivate(bank, row, now)
}

func (s *LegacySubChannel) issueColumn(r *Request, bk *legacyBankState, now dram.Time) {
	t := &s.cfg.Timing
	dataDone := now + t.TCL + t.TBUS
	s.busFreeAt = dataDone
	s.stats.BusBusy += t.TBUS
	if bk.openedAt <= r.arrive {
		s.stats.RowHits++
	} else {
		s.stats.RowMisses++
	}
	if r.Write {
		s.stats.Writes++
		if bk.preReadyAt < dataDone+t.TWR {
			bk.preReadyAt = dataDone + t.TWR
		}
		if s.obs != nil {
			s.obs.ObserveWrite(s.id, r.addr.Bank, r.addr.Row, now)
		}
		if r.Done != nil {
			r.Done(now)
		}
		return
	}
	s.stats.Reads++
	if bk.preReadyAt < now+t.TRTP {
		bk.preReadyAt = now + t.TRTP
	}
	if s.obs != nil {
		s.obs.ObserveRead(s.id, r.addr.Bank, r.addr.Row, now)
	}
	if r.Done != nil {
		s.k.ScheduleEvent(&r.doneEv, dataDone)
	}
}

func (s *LegacySubChannel) arm() {
	now := s.k.Now()
	t := &s.cfg.Timing
	const never = dram.Time(1) << 62
	next := never

	consider := func(at dram.Time, label string) {
		if at <= now {
			at = now + dram.Picosecond
		}
		if at < next {
			next = at
		}
	}

	switch s.alertState {
	case alertPrologue:
		consider(s.alertStallAt, "alertStallAt")
	case alertStall:
		consider(s.alertEndAt, "alertEndAt")
	}
	if now < s.refBusyUntil {
		consider(s.refBusyUntil, "refBusy")
	}
	if s.refDue > now {
		consider(s.refDue, "refDue")
	}

	refPending := now >= s.refDue && s.alertState == alertIdle && now >= s.refBusyUntil
	if refPending {
		var latestIdle dram.Time
		for b := range s.banks {
			bk := &s.banks[b]
			if bk.openRow >= 0 {
				consider(bk.preReadyAt, "ref-pre")
			} else if bk.idleAt > latestIdle {
				latestIdle = bk.idleAt
			}
		}
		if latestIdle > now {
			consider(latestIdle, "ref-idle")
		}
		if next < never {
			s.requestWake(next)
		}
		return
	}

	if s.alertState == alertStall {
		s.requestWake(next)
		return
	}

	window := s.queue
	if len(window) > s.cfg.WindowDepth {
		window = window[:s.cfg.WindowDepth]
	}
	hitBank, conflictBank := s.hitBank, s.conflictBank
	for i := range hitBank {
		hitBank[i] = false
		conflictBank[i] = false
	}
	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow == r.addr.Row {
			hitBank[r.addr.Bank] = true
		} else if bk.openRow >= 0 {
			conflictBank[r.addr.Bank] = true
		}
	}

	for b := range s.banks {
		bk := &s.banks[b]
		if bk.rfmPending {
			if bk.openRow >= 0 {
				if !hitBank[b] {
					consider(bk.preReadyAt, "rfm-pre")
				}
			} else {
				consider(bk.idleAt, "rfm-idle")
			}
		}
		if bk.openRow >= 0 && !hitBank[b] {
			at := bk.preReadyAt
			if !conflictBank[b] && bk.openedAt+t.TRAS > at {
				at = bk.openedAt + t.TRAS
			}
			consider(at, "pre")
		}
	}
	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		switch {
		case bk.openRow == r.addr.Row:
			at := bk.colReadyAt
			if s.busFreeAt-t.TCL > at {
				at = s.busFreeAt - t.TCL
			}
			consider(at, "col")
		case bk.openRow >= 0:
			if !hitBank[r.addr.Bank] {
				consider(bk.preReadyAt, "conf-pre")
			}
		default:
			at := bk.actReadyAt
			if bk.idleAt > at {
				at = bk.idleAt
			}
			if f := s.faw[s.fawIdx] + t.TFAW; f > at {
				at = f
			}
			if rr := s.lastActAt + t.TRRD; rr > at {
				at = rr
			}
			consider(at, "act")
		}
	}

	if next < never {
		s.requestWake(next)
	}
}

// LegacyChannel is the pre-redesign channel: the same geometry/address
// plumbing over LegacySubChannels.
type LegacyChannel struct {
	cfg  Config
	subs []*LegacySubChannel
}

// NewLegacyChannel builds the reference channel on kernel k.
func NewLegacyChannel(k *sim.Kernel, cfg Config) (*LegacyChannel, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ch := &LegacyChannel{cfg: cfg}
	for i := 0; i < cfg.Geometry.SubChannels; i++ {
		ch.subs = append(ch.subs, newLegacySubChannel(k, cfg, i))
	}
	return ch, nil
}

// Geometry returns the channel's geometry.
func (ch *LegacyChannel) Geometry() dram.Geometry { return ch.cfg.Geometry }

// Submit enqueues a request.
func (ch *LegacyChannel) Submit(r *Request) {
	r.addr = ch.cfg.Geometry.DecomposeWith(ch.cfg.AddrMapping, r.Addr)
	ch.subs[r.addr.SubChannel].submit(r)
}

// InstallObserver attaches obs to every sub-channel.
func (ch *LegacyChannel) InstallObserver(obs CommandObserver) {
	for _, s := range ch.subs {
		s.obs = obs
	}
}

// Stats returns the sum of all sub-channel stats.
func (ch *LegacyChannel) Stats() Stats {
	var total Stats
	for _, s := range ch.subs {
		total.Add(s.stats)
	}
	return total
}

// PendingRequests returns the number of requests still queued.
func (ch *LegacyChannel) PendingRequests() int {
	n := 0
	for _, s := range ch.subs {
		n += len(s.queue)
	}
	return n
}
