package mem

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/track"
)

// TestAddressMappingAblation demonstrates why MOP4 is the baseline policy
// (Section III.A): for 4-line bursts, line-interleaving wastes row-buffer
// locality (4 ACTs per burst) while MOP4 serves the burst from one
// activation.
func TestAddressMappingAblation(t *testing.T) {
	actsFor := func(m dram.AddressMapping) int64 {
		k, ch := newTestChannel(t, Config{AddrMapping: m})
		var dones [16]dram.Time
		for i := range dones {
			ch.Submit(&Request{Addr: uint64(i * 64), Done: func(at dram.Time) {}})
		}
		k.RunUntil(10 * dram.Microsecond)
		return ch.Stats().ACTs
	}
	mop := actsFor(dram.MOP4Mapping)
	line := actsFor(dram.LineInterleaved)
	row := actsFor(dram.RowInterleaved)
	if mop >= line {
		t.Errorf("MOP4 ACTs (%d) should be below line-interleaved (%d) for sequential bursts", mop, line)
	}
	if row > mop {
		t.Errorf("row-interleaved ACTs (%d) should not exceed MOP4 (%d) for one stream", row, mop)
	}
}

// TestRowPressWeighting verifies the IMPRESS-style extension: a row held
// open for a long time is reported to the tracker as extra equivalent
// activations when it finally closes.
func TestRowPressWeighting(t *testing.T) {
	counting := track.NewNop()
	k, ch := newTestChannel(t, Config{
		RowPressWeighting: true,
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			if sub == 0 {
				return counting
			}
			return track.NewNop()
		},
	})
	// One read opens the row; no further traffic, so the soft-close
	// policy closes it after tRAS: barely one tRAS of open time, no
	// extra equivalent ACTs expected.
	var d dram.Time
	submitLine(ch, 0, 0, 100, 0, &d)
	k.RunUntil(dram.Microsecond)
	if counting.Stats.ACTs != 1 {
		t.Fatalf("short open: tracker saw %d ACTs, want 1", counting.Stats.ACTs)
	}
	// A burst of queued row hits keeps the row open for many tRAS (the
	// scheduler serves pending hits before closing); on the eventual
	// close the tracker must see extra equivalent activations.
	before := counting.Stats.ACTs
	for i := 0; i < 50; i++ {
		addr := ch.Geometry().Compose(dram.Address{Bank: 1, Row: 7, Col: i % 60})
		ch.Submit(&Request{Addr: addr})
	}
	k.RunUntil(20 * dram.Microsecond)
	extra := counting.Stats.ACTs - before
	if extra < 4 {
		t.Errorf("long open row: tracker saw %d ACT-equivalents, want >= 4 (1 ACT + RowPress extras)", extra)
	}
}

// TestRowPressOffByDefault pins the default behaviour.
func TestRowPressOffByDefault(t *testing.T) {
	counting := track.NewNop()
	k, ch := newTestChannel(t, Config{
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			if sub == 0 {
				return counting
			}
			return track.NewNop()
		},
	})
	for i := 0; i < 50; i++ {
		addr := ch.Geometry().Compose(dram.Address{Bank: 1, Row: 7, Col: i % 60})
		ch.Submit(&Request{Addr: addr})
	}
	k.RunUntil(20 * dram.Microsecond)
	if counting.Stats.ACTs != 1 {
		t.Errorf("default config: %d tracker ACTs for one queued hit burst, want exactly 1", counting.Stats.ACTs)
	}
}
