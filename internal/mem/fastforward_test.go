package mem

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/track"
)

// Boundary tests for the idle fast-forward wake contract (DESIGN.md §16):
// arm() schedules exactly one wake at the next interesting timestamp, so
// the sub-channel must neither miss work scheduled exactly on a computed
// wake nor generate events during provably dead spans.

// TestFastForwardIdleTREFW runs an empty-queue sub-channel across a full
// tREFW (32ms, 8205 REF intervals) and requires exactly one wake per REF —
// zero intermediate events. Before the redesign each REF produced two
// wakes (one to execute it, one at refBusyUntil to discover there was
// nothing to resume).
func TestFastForwardIdleTREFW(t *testing.T) {
	k := &sim.Kernel{}
	ch, err := NewChannel(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	progress := []int{}
	InstallDebug(&DebugOptions{Wake: func(n int) { progress = append(progress, n) }})
	defer InstallDebug(nil)

	tm := dram.DDR5()
	k.RunUntil(tm.TREFW)

	wantREFs := int64(tm.TREFW / tm.TREFI) // one REF per tREFI, none delayed
	for _, s := range ch.subs {
		if s.Stats().REFs != wantREFs {
			t.Errorf("sub %d REFs = %d, want %d", s.id, s.Stats().REFs, wantREFs)
		}
		if s.wakes != wantREFs {
			t.Errorf("sub %d wakes = %d, want %d (one per REF, no intermediate events)",
				s.id, s.wakes, wantREFs)
		}
		if s.steps != wantREFs {
			t.Errorf("sub %d steps = %d, want %d", s.id, s.steps, wantREFs)
		}
	}
	// Every wake made exactly one transition (the REF): no no-progress
	// wakes anywhere in the window.
	for i, n := range progress {
		if n != 1 {
			t.Fatalf("wake %d performed %d transitions, want 1", i, n)
		}
	}
}

// TestFastForwardREFOnComputedWake lines a REF up exactly on a computed
// wake: a single read is timed so its soft close-page point (openedAt +
// tRAS) coincides with refDue to the picosecond. The coalesced wake must
// perform both transitions — precharge, then (after tRP) the REF — and
// the REF must not slip by more than the precharge it had to wait out.
func TestFastForwardREFOnComputedWake(t *testing.T) {
	k := &sim.Kernel{}
	ch, err := NewChannel(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	obs := &diffObs{}
	ch.InstallObserver(obs)
	tm := dram.DDR5()

	// Submit at refDue-tRAS: the bank is idle so the ACT issues
	// immediately, making the close-page point exactly refDue.
	at := tm.TREFI - tm.TRAS
	var done dram.Time
	var submitEv sim.Event
	submitEv.Bind(sim.HandlerFunc(func(now dram.Time) {
		submitLine(ch, 0, 0, 100, 0, &done)
	}))
	k.ScheduleEvent(&submitEv, at)
	k.RunUntil(2 * tm.TREFI)

	if done == 0 {
		t.Fatal("read never completed")
	}
	var pre, ref dram.Time = -1, -1
	for _, c := range obs.cmds {
		if c.sub != 0 {
			continue
		}
		switch c.kind {
		case "pre":
			if pre < 0 {
				pre = c.at
			}
		case "ref":
			if ref < 0 {
				ref = c.at
			}
		}
	}
	if pre != tm.TREFI {
		t.Errorf("PRE at %v, want exactly refDue %v", pre, tm.TREFI)
	}
	if want := tm.TREFI + tm.TRP; ref != want {
		t.Errorf("REF at %v, want %v (refDue + the tRP it waited out)", ref, want)
	}
	if s := ch.subs[0]; s.refIndex != 2 {
		t.Errorf("refIndex = %d, want 2 by 2*tREFI", s.refIndex)
	}
}

// alertOnce asserts WantsALERT after a fixed ACT count, once.
type alertOnce struct {
	*track.Nop
	acts, at int
	want     bool
	serviced dram.Time
}

func (a *alertOnce) OnActivate(bank, row int, now dram.Time) {
	a.acts++
	if a.acts == a.at {
		a.want = true
	}
}
func (a *alertOnce) WantsALERT() bool { return a.want }
func (a *alertOnce) ServiceALERT(now dram.Time) {
	a.want = false
	a.serviced = now
}

// TestFastForwardALERTWindows opens and closes an ALERT stall window
// between wakes and checks the three protocol transitions land at their
// exact computed instants, with requests submitted mid-stall held until
// the window closes.
func TestFastForwardALERTWindows(t *testing.T) {
	k := &sim.Kernel{}
	mit := &alertOnce{Nop: track.NewNop(), at: 1}
	ch, err := NewChannel(k, Config{
		NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
			if sub == 0 {
				return mit
			}
			return track.NewNop()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := &diffObs{}
	ch.InstallObserver(obs)
	tm := dram.DDR5()

	var d1, d2 dram.Time
	submitLine(ch, 0, 0, 100, 0, &d1) // ACT at 0 trips the ALERT
	// Second request arrives in the middle of the stall window.
	midStall := tm.ABOPrologue + tm.ABOStall/2
	var submitEv sim.Event
	submitEv.Bind(sim.HandlerFunc(func(now dram.Time) {
		submitLine(ch, 0, 0, 200, 0, &d2)
	}))
	k.ScheduleEvent(&submitEv, midStall)
	k.RunUntil(tm.TREFI)

	var phases []diffCmd
	for _, c := range obs.cmds {
		if c.kind == "alert" && c.sub == 0 {
			phases = append(phases, c)
		}
	}
	if len(phases) != 3 {
		t.Fatalf("alert transitions = %+v, want prologue/stall/end", phases)
	}
	stallStart := tm.ABOPrologue         // prologue opened at the ACT, t=0
	stallEnd := stallStart + tm.ABOStall // window closes
	wants := []struct {
		phase AlertPhase
		at    dram.Time
	}{
		{AlertPrologueStart, 0},
		{AlertStallStart, stallStart},
		{AlertEnd, stallEnd},
	}
	for i, w := range wants {
		if phases[i].phase != w.phase || phases[i].at != w.at {
			t.Errorf("transition %d = %v@%v, want %v@%v",
				i, phases[i].phase, phases[i].at, w.phase, w.at)
		}
	}
	if mit.serviced != stallEnd {
		t.Errorf("ServiceALERT at %v, want stall end %v", mit.serviced, stallEnd)
	}
	if d2 == 0 {
		t.Fatal("mid-stall request never completed")
	}
	// The mid-stall request's ACT cannot begin before the window closes.
	if earliest := stallEnd + tm.TRCD + tm.TCL + tm.TBUS; d2 < earliest {
		t.Errorf("mid-stall request done at %v, before the stall closed (earliest %v)", d2, earliest)
	}
}
