// Package mem implements the memory controller and channel model: per
// sub-channel FR-FCFS scheduling over a DDR5 bank state machine, the MOP4
// address layout, soft close-page policy, demand refresh (REF every tREFI),
// proactive Refresh Management (RFM via per-bank activation counters), and
// the reactive ALERT-Back-Off protocol. It drives a track.Mitigator with
// every ACT/REF/RFM event, so any tracker (MINT, PRAC, MIRZA, ...) plugs in
// unchanged.
package mem

import (
	"fmt"
	"strconv"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// Request is one 64-byte memory transaction.
type Request struct {
	Addr  uint64 // physical byte address (line aligned)
	Write bool
	// Done, if non-nil, is invoked when the request's data transfer
	// completes (reads) or the write is accepted by the device.
	Done func(now dram.Time)

	addr    dram.Address
	arrive  dram.Time
	enqueue int64 // arrival order for FCFS tie-breaking

	// doneEv is the reusable data-transfer completion event: the
	// sub-channel schedules it at the request's data-done time and its
	// Fire invokes Done. Owning the event inside the request means a
	// pooled Request costs zero allocations per completion.
	doneEv sim.Event
}

// requestDone adapts a Request to sim.Handler: firing invokes Done.
type requestDone Request

func (e *requestDone) Fire(now dram.Time) { (*Request)(e).Done(now) }

// AlertPhase identifies one transition of the ALERT-Back-Off state machine
// as seen by a CommandObserver.
type AlertPhase int

const (
	// AlertPrologueStart: the controller accepted an ALERT request; normal
	// operation continues for the prologue window.
	AlertPrologueStart AlertPhase = iota
	// AlertStallStart: the stall window begins; every open row has just
	// been force-closed and the channel is unavailable until AlertEnd.
	AlertStallStart
	// AlertEnd: the back-off RFM completed and the channel resumes.
	AlertEnd
)

// String implements fmt.Stringer.
func (p AlertPhase) String() string {
	switch p {
	case AlertPrologueStart:
		return "prologue"
	case AlertStallStart:
		return "stall"
	case AlertEnd:
		return "end"
	default:
		return fmt.Sprintf("AlertPhase(%d)", int(p))
	}
}

// CommandObserver receives every command a sub-channel issues, in issue
// order: the shadow-audit hook (internal/audit) and test instrumentation
// attach here. Observers must be passive — they may not mutate controller
// state — and are invoked synchronously on the scheduling hot path, so
// implementations should be cheap. A nil observer costs one pointer test
// per command site (the same discipline as the teleBankActs telemetry
// hook).
//
// ObservePRE's forced flag distinguishes a device-side forced row close
// (the prologue→stall transition of the ALERT protocol closes every open
// row for the back-off RFM) from a controller-issued precharge: forced
// closes are exempt from the MC-side tRAS/tRTP/tWR checks but still count
// as precharges for conservation (see DESIGN.md §12).
type CommandObserver interface {
	// ObserveSubmit sees a request enter the sub-channel queue.
	ObserveSubmit(sub int, write bool, now dram.Time)
	// ObserveACT sees an activate of (bank, row).
	ObserveACT(sub, bank, row int, now dram.Time)
	// ObservePRE sees a precharge of bank (forced: ALERT-forced close).
	ObservePRE(sub, bank int, forced bool, now dram.Time)
	// ObserveRead / ObserveWrite see a column command to (bank, row).
	ObserveRead(sub, bank, row int, now dram.Time)
	ObserveWrite(sub, bank, row int, now dram.Time)
	// ObserveREF sees the refIndex-th all-bank REF begin executing.
	ObserveREF(sub, refIndex int, now dram.Time)
	// ObserveRFM sees a proactive per-bank RFM begin executing.
	ObserveRFM(sub, bank int, now dram.Time)
	// ObserveAlert sees one ALERT state-machine transition.
	ObserveAlert(sub int, phase AlertPhase, now dram.Time)
}

// Config configures a Channel.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	Mapping  dram.R2SAMapping
	// AddrMapping selects the physical-address-to-bank layout
	// (MOP4 by default, Table III).
	AddrMapping dram.AddressMapping

	// WindowDepth bounds how many queued requests the scheduler
	// considers (models a finite command queue). Default 64.
	WindowDepth int

	// RowPressWeighting, when true, converts row-open time into
	// equivalent activations for the mitigation engine (the IMPRESS-style
	// defense the threat model assumes against RowPress, Section II.A):
	// when a row closes after being held open, the tracker observes one
	// extra activation per tRAS of open time beyond the first.
	RowPressWeighting bool

	// RFMBAT, when > 0, enables proactive Refresh Management: the MC
	// counts activations per bank and issues an RFM to a bank whenever
	// its counter reaches this Bank Activation Threshold. The counter is
	// not decremented on REF (Section II.F).
	RFMBAT int

	// NewMitigator constructs the in-DRAM mitigation logic for
	// sub-channel sub, reporting mitigations to sink. nil selects the
	// unprotected baseline.
	NewMitigator func(sub int, sink track.Sink) track.Mitigator

	// Telemetry, when non-nil, receives the channel's metrics: the
	// per-bank ACT histogram is fed live (once per REF), everything else
	// when FlushTelemetry is called at the end of a run. nil keeps the
	// hot path free of telemetry entirely.
	Telemetry *telemetry.Registry
}

func (c *Config) setDefaults() error {
	if c.Geometry.SubChannels == 0 {
		c.Geometry = dram.Default()
	}
	if c.Timing.TRC == 0 {
		c.Timing = dram.DDR5()
	}
	if c.WindowDepth <= 0 {
		c.WindowDepth = 64
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	return c.Timing.Validate()
}

// Stats aggregates one sub-channel's activity counters.
type Stats struct {
	Reads  int64
	Writes int64
	ACTs   int64
	PREs   int64
	REFs   int64
	RFMs   int64
	Alerts int64

	RowHits   int64 // column commands served from an already-open row
	RowMisses int64 // column commands that had to wait for an ACT

	DemandRefreshRows int64 // rows refreshed by REF commands
	Mitigations       int64 // aggressor rows mitigated by the tracker
	VictimRows        int64 // victim rows refreshed by mitigations

	BusBusy    dram.Time // data-bus occupancy
	AlertStall dram.Time // time spent in the ALERT unavailable window
	RefBusy    dram.Time // time spent executing REF
	RFMBusy    dram.Time // bank-time spent executing RFM
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ACTs += other.ACTs
	s.PREs += other.PREs
	s.REFs += other.REFs
	s.RFMs += other.RFMs
	s.Alerts += other.Alerts
	s.RowHits += other.RowHits
	s.RowMisses += other.RowMisses
	s.DemandRefreshRows += other.DemandRefreshRows
	s.Mitigations += other.Mitigations
	s.VictimRows += other.VictimRows
	s.BusBusy += other.BusBusy
	s.AlertStall += other.AlertStall
	s.RefBusy += other.RefBusy
	s.RFMBusy += other.RFMBusy
}

// Sub returns s minus other, field by field (for measurement windows).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Reads:             s.Reads - other.Reads,
		Writes:            s.Writes - other.Writes,
		ACTs:              s.ACTs - other.ACTs,
		PREs:              s.PREs - other.PREs,
		REFs:              s.REFs - other.REFs,
		RFMs:              s.RFMs - other.RFMs,
		Alerts:            s.Alerts - other.Alerts,
		RowHits:           s.RowHits - other.RowHits,
		RowMisses:         s.RowMisses - other.RowMisses,
		DemandRefreshRows: s.DemandRefreshRows - other.DemandRefreshRows,
		Mitigations:       s.Mitigations - other.Mitigations,
		VictimRows:        s.VictimRows - other.VictimRows,
		BusBusy:           s.BusBusy - other.BusBusy,
		AlertStall:        s.AlertStall - other.AlertStall,
		RefBusy:           s.RefBusy - other.RefBusy,
		RFMBusy:           s.RFMBusy - other.RFMBusy,
	}
}

// Channel is one DDR5 channel: a set of independent sub-channels sharing
// nothing but the address decomposition.
type Channel struct {
	cfg  Config
	subs []*SubChannel
}

// NewChannel builds a channel on kernel k.
func NewChannel(k *sim.Kernel, cfg Config) (*Channel, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ch := &Channel{cfg: cfg}
	for i := 0; i < cfg.Geometry.SubChannels; i++ {
		ch.subs = append(ch.subs, newSubChannel(k, cfg, i))
	}
	return ch, nil
}

// Geometry returns the channel's geometry.
func (ch *Channel) Geometry() dram.Geometry { return ch.cfg.Geometry }

// Submit enqueues a request. The request's address is decomposed with the
// configured MOP4 layout and routed to its sub-channel.
func (ch *Channel) Submit(r *Request) {
	r.addr = ch.cfg.Geometry.DecomposeWith(ch.cfg.AddrMapping, r.Addr)
	ch.subs[r.addr.SubChannel].submit(r)
}

// SubChannel returns sub-channel i (for inspection in tests and tools).
func (ch *Channel) SubChannel(i int) *SubChannel { return ch.subs[i] }

// Config returns the channel's effective configuration (defaults applied).
func (ch *Channel) Config() Config { return ch.cfg }

// InstallObserver attaches obs to every sub-channel. It must be called
// before any simulation time elapses: commands issued earlier are not
// replayed to the observer, which would break its shadow state. A nil obs
// detaches the observer.
func (ch *Channel) InstallObserver(obs CommandObserver) {
	for _, s := range ch.subs {
		s.obs = obs
	}
}

// Stats returns the sum of all sub-channel stats.
func (ch *Channel) Stats() Stats {
	var total Stats
	for _, s := range ch.subs {
		total.Add(s.stats)
	}
	return total
}

// Mitigators returns the per-sub-channel mitigation engines.
func (ch *Channel) Mitigators() []track.Mitigator {
	out := make([]track.Mitigator, len(ch.subs))
	for i, s := range ch.subs {
		out[i] = s.mit
	}
	return out
}

// Telemetry returns the registry the channel was configured with (nil when
// telemetry is disabled).
func (ch *Channel) Telemetry() *telemetry.Registry { return ch.cfg.Telemetry }

// FlushTelemetry folds the accumulated per-sub-channel counters and each
// mitigator's tracker stats into the configured registry. Counters are
// cumulative: call it exactly once, after a run completes. With no
// registry configured it is a no-op.
func (ch *Channel) FlushTelemetry(extra ...telemetry.Label) {
	reg := ch.cfg.Telemetry
	if !reg.Enabled() {
		return
	}
	for i, s := range ch.subs {
		labels := append([]telemetry.Label{telemetry.L("sub", strconv.Itoa(i))}, extra...)
		st := s.stats
		reg.Counter("mem_acts_total", labels...).Add(st.ACTs)
		reg.Counter("mem_pres_total", labels...).Add(st.PREs)
		reg.Counter("mem_reads_total", labels...).Add(st.Reads)
		reg.Counter("mem_writes_total", labels...).Add(st.Writes)
		reg.Counter("mem_refs_total", labels...).Add(st.REFs)
		reg.Counter("mem_rfms_total", labels...).Add(st.RFMs)
		reg.Counter("mem_alerts_total", labels...).Add(st.Alerts)
		reg.Counter("mem_row_hits_total", labels...).Add(st.RowHits)
		reg.Counter("mem_row_misses_total", labels...).Add(st.RowMisses)
		reg.Counter("mem_demand_refresh_rows_total", labels...).Add(st.DemandRefreshRows)
		reg.Counter("mem_mitigations_total", labels...).Add(st.Mitigations)
		reg.Counter("mem_victim_rows_total", labels...).Add(st.VictimRows)
		reg.Counter("mem_bus_busy_ps_total", labels...).Add(int64(st.BusBusy))
		reg.Counter("mem_alert_stall_ps_total", labels...).Add(int64(st.AlertStall))
		reg.Counter("mem_ref_busy_ps_total", labels...).Add(int64(st.RefBusy))
		reg.Counter("mem_rfm_busy_ps_total", labels...).Add(int64(st.RFMBusy))
		reg.Counter("mem_wakes_total", labels...).Add(s.wakes)
		reg.Counter("mem_wake_steps_total", labels...).Add(s.steps)
		track.FlushTelemetry(reg, s.mit, labels...)
	}
}

// PendingRequests returns the number of requests queued across
// sub-channels (for drain checks).
func (ch *Channel) PendingRequests() int {
	n := 0
	for _, s := range ch.subs {
		n += len(s.queue)
	}
	return n
}

func (c Config) String() string {
	return fmt.Sprintf("mem.Config{mapping=%s bat=%d window=%d}", c.Mapping, c.RFMBAT, c.WindowDepth)
}
