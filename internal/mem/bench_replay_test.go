package mem_test

// Command-path replay benchmark: the fig3 request streams of bench_e2e_test
// recorded once from the full system and then replayed open-loop straight
// into a Channel, so the measured cost is the redesigned mem subsystem end
// to end — pooled requests, sub-channel scheduling, bank planes, kernel —
// with the core/trace front end out of the denominator. Both impls replay
// the identical recorded stream (the differential test proves the two
// command paths are behaviour-identical, so a stream recorded against one
// is a faithful open-loop load for both), which makes every
// impl=event/impl=legacy pairing an apples-to-apples measurement of the
// command path alone.

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register mint-rfm
)

// replayWindow is the length of recorded stream that loops during replay:
// several refresh intervals' worth of traffic, so the replayed load
// exercises the full REF/RFM cadence, not one arrival burst.
const replayWindow = 100 * dram.Microsecond

// recordedReq is one request of a recorded fig3 stream: arrival offset
// within the window plus the request fields the cores set.
type recordedReq struct {
	at    dram.Time
	addr  uint64
	write bool
}

// recordFig3Stream runs the full fig3 system (event impl) past warmup and
// records one replayWindow of steady-state arrivals, normalised to offsets
// within the window.
func recordFig3Stream(tb testing.TB, workload string) []recordedReq {
	tb.Helper()
	var stream []recordedReq
	start := benchWarmup
	s := newBenchSystem(tb, "event", workload, func(r *mem.Request, now dram.Time) {
		if now >= start && now < start+replayWindow {
			stream = append(stream, recordedReq{at: now - start, addr: r.Addr, write: r.Write})
		}
	})
	s.run()
	s.advance(replayWindow)
	if len(stream) == 0 {
		tb.Fatalf("no %s requests recorded in %v", workload, replayWindow)
	}
	return stream
}

// replayer feeds a recorded stream into a channel open-loop, looping the
// window forever. One persistent feeder event fires at each distinct
// arrival instant; completed requests return to a free list, so a warm
// replay runs allocation-free exactly like the closed-loop system.
type replayer struct {
	k      *sim.Kernel
	submit func(*mem.Request)
	stream []recordedReq
	next   int       // index of the next stream entry to submit
	epoch  dram.Time // simulated start time of the current loop iteration
	free   []*mem.Request
	ev     sim.Event
}

func (r *replayer) get() *mem.Request {
	if n := len(r.free); n > 0 {
		req := r.free[n-1]
		r.free = r.free[:n-1]
		return req
	}
	req := &mem.Request{}
	req.Done = func(dram.Time) { r.free = append(r.free, req) }
	return req
}

// Fire submits every stream entry due at now and re-arms for the next
// arrival instant, wrapping the window when the stream is exhausted.
func (r *replayer) Fire(now dram.Time) {
	for r.next < len(r.stream) && r.epoch+r.stream[r.next].at <= now {
		rec := &r.stream[r.next]
		req := r.get()
		req.Addr, req.Write = rec.addr, rec.write
		r.submit(req)
		r.next++
	}
	if r.next == len(r.stream) {
		r.next = 0
		r.epoch += replayWindow
	}
	r.k.Reschedule(&r.ev, r.epoch+r.stream[r.next].at)
}

// replaySystem is the direct-drive counterpart of benchSystem: the same
// fig3 channel configuration, loaded by a replayer instead of cores.
type replaySystem struct {
	k     *sim.Kernel
	clock dram.Time
}

func newReplaySystem(tb testing.TB, impl string, stream []recordedReq) *replaySystem {
	tb.Helper()
	built, err := track.Build("mint-rfm", nil, track.Config{
		Geometry: dram.Default(),
		Mapping:  dram.StridedR2SA,
		TRHD:     1000,
		Seed:     benchSeed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := mem.Config{
		Timing:       built.Timing(),
		Mapping:      dram.StridedR2SA,
		RFMBAT:       built.RFMBAT(),
		NewMitigator: built.Factory(),
	}

	k := &sim.Kernel{}
	var submit func(*mem.Request)
	switch impl {
	case "event":
		ch, err := mem.NewChannel(k, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		submit = ch.Submit
	case "legacy":
		ch, err := mem.NewLegacyChannel(k, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		submit = ch.Submit
	default:
		tb.Fatalf("unknown impl %q", impl)
	}

	r := &replayer{k: k, submit: submit, stream: stream}
	// Pre-size the free list far past any in-flight high-water mark
	// (closed-loop MLP is a few hundred) so the timed loop never grows it.
	r.free = make([]*mem.Request, 0, replayPoolSize)
	for i := 0; i < replayPoolSize; i++ {
		req := &mem.Request{}
		req.Done = func(dram.Time) { r.free = append(r.free, req) }
		r.free = append(r.free, req)
	}
	r.ev.Bind(r)
	k.ScheduleEvent(&r.ev, stream[0].at)
	s := &replaySystem{k: k}
	// The warmup must outlast the closed-loop system's 300us queue
	// settling AND cycle the REF phase against the looping window (the
	// window is not a multiple of tREFI, so each epoch replays under a
	// shifted refresh alignment): ten epochs covers the queue high-water
	// marks those alignments produce.
	s.advance(10 * replayWindow)
	return s
}

// replayPoolSize is the pre-allocated request pool per replay system.
const replayPoolSize = 4096

// advance simulates d more time.
func (s *replaySystem) advance(d dram.Time) {
	s.clock += d
	s.k.RunUntil(s.clock)
}

// BenchmarkFig3MemPath measures one steady-state simulated-time slice per
// op (the same slice as BenchmarkFig3) of the mem command path serving a
// recorded fig3 request stream.
func BenchmarkFig3MemPath(b *testing.B) {
	for _, workload := range []string{"blender", "xalancbmk", "cactuBSSN", "omnetpp", "fotonik3d"} {
		stream := recordFig3Stream(b, workload)
		for _, impl := range []string{"event", "legacy"} {
			b.Run("impl="+impl+"/workload="+workload, func(b *testing.B) {
				s := newReplaySystem(b, impl, stream)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.advance(benchSlice)
				}
			})
		}
	}
}
