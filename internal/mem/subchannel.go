package mem

import (
	"math/bits"
	"strconv"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// alert protocol states.
const (
	alertIdle = iota
	alertPrologue
	alertStall
)

// SubChannel is one independently scheduled DDR5 sub-channel.
//
// Bank state lives in struct-of-arrays timing planes (DESIGN.md §16)
// rather than a []bankState: each scheduling scan — "oldest request with a
// closed, ready bank", "raise every bank to the REF end" — walks only the
// one or two flat slices it actually reads, and whole-plane updates
// (RaiseAll at REF/ALERT) vectorize over contiguous memory. Set-valued
// bank properties (row open, RFM pending) are dram.BankSets, so emptiness
// tests are word compares and iteration visits only set members.
type SubChannel struct {
	k   *sim.Kernel
	cfg Config
	id  int
	mit track.Mitigator

	// Per-bank planes, indexed by bank.
	openRow    []int32        // open row, -1 when precharged
	openedAt   dram.TimePlane // time of the last ACT
	colReadyAt dram.TimePlane // earliest column command (tRCD after ACT)
	preReadyAt dram.TimePlane // earliest precharge (tRAS / read-to-pre / write recovery)
	actReadyAt dram.TimePlane // earliest next ACT (tRC after ACT, tRP after PRE, RFM/REF end)
	idleAt     dram.TimePlane // time the bank is fully precharged/idle (REF/RFM gating)
	actCounter []int32        // BAT counter for proactive RFM

	open       dram.BankSet // banks with openRow >= 0
	rfmPending dram.BankSet // banks owing a proactive RFM before their next ACT
	rfmCount   int          // popcount of rfmPending, kept for O(1) emptiness

	// bankBit[b] is 1<<b for banks below 64 and 0 above: the per-bank
	// dedup-mask bit, computed once per request at submit.
	bankBit []uint64

	queue []*Request
	// qKey and qBit mirror queue[i] into flat per-entry words — the
	// packed (row, bank) key (row<<32|bank) and the bank's dedup-mask
	// bit — so the scheduling scan streams two sequential slices
	// instead of chasing *Request pointers or random-indexing a
	// per-bank table.
	qKey    []uint64
	qBit    []uint64
	nextEnq int64

	faw       []dram.Time // times of the last 4 ACTs (ring)
	fawIdx    int
	lastActAt dram.Time
	busFreeAt dram.Time

	refDue       dram.Time
	refBusyUntil dram.Time
	refIndex     int

	alertState    int
	alertStallAt  dram.Time
	alertEndAt    dram.Time
	actSinceAlert bool

	// wakeEv is the single persistent scheduler-wake event. It coalesces
	// every wake source — request arrival, bank/bus timing, refresh due,
	// ALERT windows — into one reusable handle: arm() reschedules it to
	// the next provably interesting time and nothing sooner, so an idle
	// sub-channel fast-forwards straight to its next REF with no
	// intermediate events, and submit fires it at the arrival instant
	// through the kernel's O(1) poke lane instead of pulling the slot
	// through the heap and back.
	wakeEv sim.Event
	stats  Stats

	// nextAction is the earliest instant anything can issue, as armed by
	// the last scheduling scan and min-merged with the enable time of
	// every arrival since (see submit). A wake that fires strictly before
	// it is an arrival-coalescing wake: the scheduler re-arms in O(1)
	// instead of scanning, because the merged candidate set already
	// proves the scan would be a no-op.
	nextAction dram.Time

	wakes int64 // kernel wakes delivered (mem_wakes_total)
	steps int64 // step transitions across all wakes (mem_wake_steps_total)

	// hitSet/confSet classify banks against the current scheduling window
	// (pending row hit / pending row conflict). They are rebuilt per pass;
	// resetting costs one word write per 64 banks.
	hitSet, confSet dram.BankSet

	// obs, when non-nil, shadows every command the sub-channel issues
	// (protocol auditing, test instrumentation). Each command site pays
	// one nil test, the same discipline as teleBankActs.
	obs CommandObserver

	// teleBankActs counts ACTs per bank since the last REF; at each REF
	// every bank's count is observed into teleActHist and reset. Both are
	// nil when telemetry is disabled, so the hot path pays one nil test.
	teleBankActs []int64
	teleActHist  *telemetry.Histogram
}

func newSubChannel(k *sim.Kernel, cfg Config, id int) *SubChannel {
	nb := cfg.Geometry.BanksPerSubChannel
	s := &SubChannel{
		k:             k,
		cfg:           cfg,
		id:            id,
		openRow:       make([]int32, nb),
		openedAt:      dram.NewTimePlane(nb),
		colReadyAt:    dram.NewTimePlane(nb),
		preReadyAt:    dram.NewTimePlane(nb),
		actReadyAt:    dram.NewTimePlane(nb),
		idleAt:        dram.NewTimePlane(nb),
		actCounter:    make([]int32, nb),
		open:          dram.NewBankSet(nb),
		rfmPending:    dram.NewBankSet(nb),
		hitSet:        dram.NewBankSet(nb),
		confSet:       dram.NewBankSet(nb),
		faw:           make([]dram.Time, 4),
		refDue:        cfg.Timing.TREFI,
		actSinceAlert: true,
	}
	s.wakeEv.Bind((*subWake)(s))
	s.bankBit = make([]uint64, nb)
	for b := 0; b < nb && b < 64; b++ {
		s.bankBit[b] = 1 << uint(b)
	}
	for i := range s.openRow {
		s.openRow[i] = -1
	}
	for i := range s.faw {
		s.faw[i] = -cfg.Timing.TFAW
	}
	s.lastActAt = -cfg.Timing.TRRD
	sink := track.FuncSink(func(bank, row, victims int, now dram.Time) {
		s.stats.Mitigations++
		s.stats.VictimRows += int64(victims)
	})
	if cfg.NewMitigator != nil {
		s.mit = cfg.NewMitigator(id, sink)
	} else {
		s.mit = track.NewNop()
	}
	if cfg.Telemetry.Enabled() {
		s.teleBankActs = make([]int64, nb)
		s.teleActHist = cfg.Telemetry.Histogram("mem_bank_acts_per_ref", 32, 4,
			telemetry.L("sub", strconv.Itoa(id)))
	}
	// Refresh is self-sustaining: arm the first REF.
	s.arm(s.refDue)
	return s
}

// Stats returns a copy of the sub-channel's counters.
func (s *SubChannel) Stats() Stats { return s.stats }

// Mitigator returns the attached mitigation engine.
func (s *SubChannel) Mitigator() track.Mitigator { return s.mit }

// RefIndex returns the number of REF commands executed so far.
func (s *SubChannel) RefIndex() int { return s.refIndex }

// PendingRequests returns the number of requests still queued on this
// sub-channel (for drain and conservation checks).
func (s *SubChannel) PendingRequests() int { return len(s.queue) }

func (s *SubChannel) submit(r *Request) {
	if r.Done != nil {
		r.doneEv.Bind((*requestDone)(r))
	}
	r.arrive = s.k.Now()
	r.enqueue = s.nextEnq
	s.nextEnq++
	s.queue = append(s.queue, r)
	s.qKey = append(s.qKey, uint64(uint32(r.addr.Row))<<32|uint64(uint32(r.addr.Bank)))
	s.qBit = append(s.qBit, s.bankBit[r.addr.Bank])
	if s.obs != nil {
		s.obs.ObserveSubmit(s.id, r.Write, r.arrive)
	}
	if c := s.arrivalWake(int(r.addr.Bank), int32(r.addr.Row)); c < s.nextAction {
		s.nextAction = c
	}
	// Fire the wake at the submit instant. Unless it is already due right
	// now, poke it: the wake fires with a fresh FIFO sequence number —
	// after every event already queued for this instant, exactly as the
	// old pull-forward Reschedule ordered it — while its heap slot stays
	// parked at the armed time, where the post-wake re-arm moves it with a
	// short fix instead of a full to-now-and-back round trip.
	if !(s.wakeEv.Scheduled() && s.wakeEv.When() <= r.arrive) {
		s.k.PokeNow(&s.wakeEv)
	}
}

// arrivalWake returns the earliest time at which this arrival can change
// the scheduler's next action, for submit to min-merge into nextAction.
// The wake itself still fires at the submit instant — that keeps the
// kernel event sequencing identical to an always-scan controller, which
// closed-loop runs observe through same-instant completion ordering —
// but when the merged time is still in the future the wake re-arms in
// O(1) instead of walking the window and the bank planes.
//
// For an in-window arrival in the normal (unblocked) state, the entry
// only ever *enables* its own command sort: demand precharge at
// preReadyAt for a row conflict, activate at the bank/pacing gates for a
// closed bank — mirrored exactly from pass()'s candidate formulas. Every
// other case must force a full scan at the submit instant (return now),
// because the arrival changes the candidate set in a way a single
// formula does not capture:
//
//   - a row hit vetoes the bank's soft close-page and RFM-precharge
//     candidates, so the armed time may now be too early — only a rescan
//     restores exactness;
//   - while a demand REF is due or executing, or an ALERT stall is
//     pending, the scheduler's next action belongs to the refresh/ALERT
//     machinery, and an arrival flips the idle-through-REF decision —
//     pass() re-decides through armBlocked/passRefresh, which are O(1)
//     and O(banks) respectively, so forcing the scan costs nothing;
//   - beyond the scheduling window the entry is invisible to the command
//     ladder and contributes nothing — the armed time stays exact (the
//     queue was already non-empty, so no idle-through decision flips) and
//     the wake stays lazy.
func (s *SubChannel) arrivalWake(b int, row int32) dram.Time {
	t := &s.cfg.Timing
	now := s.k.Now()
	if s.alertState == alertStall || now < s.refBusyUntil || s.refDue <= now ||
		s.rfmCount > 0 {
		// Blocked states, a due REF, or a pending proactive RFM: the next
		// action belongs to machinery whose issue rules are more permissive
		// than the armed candidates (the RFM precharge, in particular,
		// overrides the pending-hit veto the arm honours), so only a rescan
		// keeps the armed time exact.
		return now
	}
	if len(s.queue) > s.cfg.WindowDepth {
		return s.nextAction
	}
	switch or := s.openRow[b]; {
	case or == row:
		return now
	case or >= 0:
		if s.hitSet.Test(b) {
			// The open row has a pending hit, which vetoes every precharge
			// candidate on this bank — the armed time may include sorts this
			// conflict cannot unlock; rescan for exactness.
			return now
		}
		// A conflict drops the bank's precharge time from the soft
		// close-page point to preReadyAt.
		return s.preReadyAt[b]
	default:
		at := s.actReadyAt[b]
		if s.idleAt[b] > at {
			at = s.idleAt[b]
		}
		if f := s.faw[s.fawIdx] + t.TFAW; f > at && !debugSkipFAW {
			at = f
		}
		if rr := s.lastActAt + t.TRRD; rr > at {
			at = rr
		}
		return at
	}
}

// dequeue removes queue slot i, keeping the flat mirrors in step. The
// vacated pointer slot is cleared so the retired *Request (and its bound
// done event) does not stay reachable through the backing array.
func (s *SubChannel) dequeue(i int) {
	last := len(s.queue) - 1
	copy(s.queue[i:], s.queue[i+1:])
	s.queue[last] = nil
	s.queue = s.queue[:last]
	copy(s.qKey[i:], s.qKey[i+1:])
	s.qKey = s.qKey[:last]
	copy(s.qBit[i:], s.qBit[i+1:])
	s.qBit = s.qBit[:last]
}

// subWake adapts a SubChannel to sim.Handler for its wake event.
type subWake SubChannel

func (w *subWake) Fire(dram.Time) { (*SubChannel)(w).wake() }

func (s *SubChannel) wake() {
	if s.nextAction > s.k.Now() {
		// Arrival-coalescing wake: everything merged into nextAction since
		// the last scan lies strictly in the future, so a scan would issue
		// nothing and re-arm at exactly nextAction — do that re-arm (with
		// this instant's event ordering, like the scan would) and skip the
		// window/bank walk.
		s.wakes++
		if d := debugOpts; d != nil && d.Wake != nil {
			d.Wake(0)
		}
		s.k.Reschedule(&s.wakeEv, s.nextAction)
		return
	}
	n := 0
	for s.pass() {
		n++
	}
	s.wakes++
	s.steps += int64(n)
	if d := debugOpts; d != nil && d.Wake != nil {
		d.Wake(n)
	}
}

// arm records the next provably interesting instant and schedules the
// wake there. Every scheduling scan ends here (or in a blocked-state
// equivalent); submit min-merges arrival enable times into nextAction
// between scans. The Reschedule is unconditional — arm always runs as a
// wake concludes, and the fresh FIFO sequence number it assigns is what
// keeps the wake firing after events already queued for the armed
// instant, exactly as the retired pop-and-reschedule shape ordered it.
func (s *SubChannel) arm(at dram.Time) {
	s.nextAction = at
	if at < never {
		s.k.Reschedule(&s.wakeEv, at)
	} else {
		s.k.Cancel(&s.wakeEv)
	}
}

// never is the sentinel "no candidate" wake time.
const never = dram.Time(1) << 62

// pass attempts the single highest-priority transition available at the
// current instant — ALERT bookkeeping, demand REF, ALERT initiation, RFM,
// column, precharge, activate, in that strict order — and reports whether
// one fired (zero-delay actions chain until quiescent). When nothing
// fires, the very same traversals have already collected the earliest
// future candidate time for every transition sort, and pass arms the wake
// there before returning false. Fusing the issue scan and the arm scan is
// the second half of the fast-forward redesign: the old shape paid a full
// window walk per issued command plus a classify-and-rescan in arm(); the
// fused pass pays one window traversal that issues, classifies and
// collects candidates in a single sweep.
func (s *SubChannel) pass() bool {
	now := s.k.Now()
	t := &s.cfg.Timing

	// ALERT protocol bookkeeping.
	switch s.alertState {
	case alertStall:
		if now < s.alertEndAt {
			s.armBlocked(now)
			return false
		}
		// The back-off RFM executed during the stall window; mitigation
		// completes as the stall ends.
		s.mit.ServiceALERT(now)
		s.alertState = alertIdle
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertEnd, now)
		}
		return true
	case alertPrologue:
		if now >= s.alertStallAt {
			// Stall begins: all banks are precharged for the back-off RFM.
			// Open rows are force-closed through precharge so the close is
			// fully accounted (RowPress equivalent-ACT weighting, stats.PREs;
			// see DESIGN.md §12) — these device-side closes may cut tRAS
			// short, which the auditor exempts via the forced flag. The
			// per-bank timers are then raised to the stall end, which always
			// dominates the tRP that precharge just applied (the stall is
			// 350ns, tRP at most 36ns).
			s.open.ForEach(func(b int) { s.precharge(b, now, true) })
			s.actReadyAt.RaiseAll(s.alertEndAt)
			s.idleAt.RaiseAll(s.alertEndAt)
			s.alertState = alertStall
			if s.obs != nil {
				s.obs.ObserveAlert(s.id, AlertStallStart, now)
			}
			return true
		}
	}

	// Sub-channel blocked while a REF executes.
	if now < s.refBusyUntil {
		s.armBlocked(now)
		return false
	}

	// Demand refresh has strict priority once due.
	if now >= s.refDue && s.alertState == alertIdle {
		return s.passRefresh(now)
	}

	// Reactive ALERT initiation: requires at least one ACT since the
	// previous ALERT completed (the mandatory epilogue activation).
	if s.alertState == alertIdle && s.actSinceAlert && s.mit.WantsALERT() {
		s.alertState = alertPrologue
		s.alertStallAt = now + t.ABOPrologue
		s.alertEndAt = s.alertStallAt + t.ABOStall
		s.actSinceAlert = false
		s.stats.Alerts++
		s.stats.AlertStall += t.ABOStall
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertPrologueStart, now)
		}
		return true
	}

	// Proactive RFM execution. Wake candidates for still-blocked pending
	// banks need the hit classification, so they are collected after the
	// window traversal below.
	if s.rfmCount > 0 {
		for wi, w := range s.rfmPending.Words() {
			for base := wi << 6; w != 0; w &= w - 1 {
				b := base + bits.TrailingZeros64(w)
				if s.openRow[b] >= 0 {
					if now >= s.preReadyAt[b] {
						s.precharge(b, now, false)
						return true
					}
					continue
				}
				if now >= s.idleAt[b] {
					s.rfmPending.Clear(b)
					s.rfmCount--
					s.actReadyAt[b] = now + t.TRFM
					s.idleAt[b] = now + t.TRFM
					s.stats.RFMs++
					s.stats.RFMBusy += t.TRFM
					if s.obs != nil {
						s.obs.ObserveRFM(s.id, b, now)
					}
					s.mit.OnRFM(b, now)
					return true
				}
			}
		}
	}

	window := len(s.queue)
	if window > s.cfg.WindowDepth {
		window = s.cfg.WindowDepth
	}

	next := never
	if s.alertState == alertPrologue {
		next = s.alertStallAt
	}
	if s.refDue > now && s.refDue < next {
		next = s.refDue // refresh is self-sustaining
	}

	// One traversal of the scheduling window does triple duty: issue the
	// oldest ready column command, classify banks against the window
	// (pending row hit / pending row conflict) for the precharge policy,
	// and collect the column/activate wake candidates. The bus test for
	// column issue is loop-invariant; a hit behind a busy bus wakes when
	// the bus frees (busFreeAt - tCL), a blocked activate at the latest of
	// its bank timers and the channel-level pacing gates.
	hitW := s.hitSet.Words()
	confW := s.confSet.Words()
	if len(hitW) > 1 {
		s.hitSet.Reset()
		s.confSet.Reset()
	}
	busOK := s.busFreeAt <= now+t.TCL
	busEarliest := s.busFreeAt - t.TCL
	skipFAW := debugSkipFAW
	trrdGate := s.lastActAt + t.TRRD
	fawGate := s.faw[s.fawIdx] + t.TFAW
	actIdx := -1
	// Per-bank dedup: the window (up to 64 entries) repeats banks heavily,
	// and every entry after the first of its class on a bank is fully
	// redundant — the bank state is identical, so it reaches the same
	// issue decision and the same wake candidate, and FR-FCFS age order
	// already favoured the earlier entry. The register masks cover banks
	// < 64 and double as word zero of hitSet/confSet, stored once when
	// the traversal completes; larger geometries keep per-entry set
	// updates for the excess banks (still correct, just slower). Between
	// scans the sets stay valid — arrivalWake reads hitSet for the
	// pending-hit precharge veto — because only the final (arming) pass
	// of a wake is observable out there and it always completes the
	// traversal.
	// resolved accumulates banks no further entry can say anything new
	// about — closed banks after their first entry, open banks once both
	// a hit and a conflict are recorded — so the dense tail of a deep
	// window skips in two instructions without touching the bank planes.
	var seenHit, seenConf, seenClosed, resolved uint64
	qKey := s.qKey[:window]
	qBit := s.qBit[:window]
	// Reslicing every timing plane to the openRow length lets the first
	// openRow[b] access prove b in range for the rest (one bounds check
	// per entry instead of one per plane).
	openRow := s.openRow
	colReadyAt := s.colReadyAt[:len(openRow)]
	actReadyAt := s.actReadyAt[:len(openRow)]
	idleAt := s.idleAt[:len(openRow)]
	for i := 0; i < window; i++ {
		key := qKey[i]
		bit := qBit[i]
		if resolved&bit != 0 {
			continue
		}
		b := int(uint32(key))
		switch row := openRow[b]; {
		case row == int32(key>>32):
			if seenHit&bit != 0 {
				continue
			}
			seenHit |= bit
			resolved |= seenConf & bit
			at := colReadyAt[b]
			if busOK && now >= at {
				r := s.queue[i]
				s.issueColumn(r, b, now)
				s.dequeue(i)
				return true
			}
			if bit == 0 {
				s.hitSet.Set(b)
			}
			if busEarliest > at {
				at = busEarliest
			}
			if at < next {
				next = at
			}
		case row >= 0:
			if seenConf&bit != 0 {
				continue
			}
			seenConf |= bit
			resolved |= seenHit & bit
			if bit == 0 {
				s.confSet.Set(b)
			}
		default:
			seenClosed |= bit
			resolved |= bit
			at := actReadyAt[b]
			if ia := idleAt[b]; ia > at {
				at = ia
			}
			if actIdx < 0 && now >= at && !s.rfmPending.Test(b) {
				actIdx = i
			}
			if fawGate > at && !skipFAW {
				at = fawGate
			}
			if trrdGate > at {
				at = trrdGate
			}
			if at < next {
				next = at
			}
		}
	}
	hitW[0] = seenHit
	confW[0] = seenConf

	// RFM wake candidates: a pending bank fires at preReady (open, no
	// hit) or at idle (closed).
	if s.rfmCount > 0 {
		for wi, w := range s.rfmPending.Words() {
			hw := hitW[wi]
			for base := wi << 6; w != 0; w &= w - 1 {
				b := base + bits.TrailingZeros64(w)
				if s.openRow[b] >= 0 {
					if hw&(w&-w) == 0 && s.preReadyAt[b] < next {
						next = s.preReadyAt[b]
					}
				} else if s.idleAt[b] < next {
					next = s.idleAt[b]
				}
			}
		}
	}

	// Precharge: oldest-conflict demand or soft close-page after tRAS.
	// A non-issuable open bank contributes its close time — immediately
	// at preReady for a pending conflict, the soft close-page point
	// otherwise — as a wake candidate. Hit-bearing banks are masked out
	// wholesale (soft close-page: pending hits are served first).
	for wi, w := range s.open.Words() {
		w &^= hitW[wi]
		cw := confW[wi]
		for base := wi << 6; w != 0; w &= w - 1 {
			b := base + bits.TrailingZeros64(w)
			conf := cw&(w&-w) != 0
			if now >= s.preReadyAt[b] && (conf || now-s.openedAt[b] >= t.TRAS) {
				s.precharge(b, now, false)
				return true
			}
			at := s.preReadyAt[b]
			if !conf && s.openedAt[b]+t.TRAS > at {
				at = s.openedAt[b] + t.TRAS
			}
			if at < next {
				next = at
			}
		}
	}

	// Activate the oldest eligible request, gated by the channel-level
	// ACT pacing (tRRD and the four-activation window).
	if actIdx >= 0 && now >= trrdGate && (skipFAW || now >= fawGate) {
		key := s.qKey[actIdx]
		s.activate(int(uint32(key)), int(key>>32), now)
		return true
	}

	if next < never && next <= now {
		// Defensive only: an on-time candidate cannot reach here (it
		// would have issued above); the clamp keeps the wake monotonic
		// regardless.
		next = now + dram.Picosecond
	}
	s.arm(next)
	return false
}

// armBlocked arms the wake while the sub-channel cannot issue at all (an
// ALERT prologue/stall wait or a REF busy window). No bank or queue scan
// is needed: REF raised every bank timer to at least refBusyUntil and
// closed every row, so every command candidate lands at or after the
// block ends — only the block end itself, the next REF, and the idle
// fast-forward decision matter.
func (s *SubChannel) armBlocked(now dram.Time) {
	next := never
	switch s.alertState {
	case alertPrologue:
		next = s.alertStallAt
	case alertStall:
		next = s.alertEndAt
	}
	if now < s.refBusyUntil {
		// The wake at refBusyUntil exists only to resume work the REF
		// blocked. With provably nothing to resume — no queued requests,
		// no pending RFM, no ALERT initiation owed, no open rows (there
		// cannot be: REF requires all banks idle) — the next interesting
		// time is refDue itself, so skip the intermediate wake and let the
		// sub-channel sleep a whole tREFI. Mitigator state cannot change
		// during the busy window (it only sees ACT/REF/RFM events, and
		// none issue before refBusyUntil), so WantsALERT sampled here
		// holds until then.
		idleThrough := len(s.queue) == 0 && s.rfmCount == 0 &&
			!(s.alertState == alertIdle && s.actSinceAlert && s.mit.WantsALERT()) &&
			s.refDue > s.refBusyUntil && s.open.None()
		if !idleThrough && s.refBusyUntil < next {
			next = s.refBusyUntil
		}
	}
	if s.refDue > now && s.refDue < next {
		next = s.refDue
	}
	s.arm(next)
}

// passRefresh makes progress toward (or executes) a due REF; while the
// REF is gated it arms the wake at the gating bank's time.
func (s *SubChannel) passRefresh(now dram.Time) bool {
	t := &s.cfg.Timing
	g := &s.cfg.Geometry
	if !s.open.None() {
		// Close open rows first; the earliest preReady bank goes now.
		// Banks already closed still gate the REF through idleAt (tRP,
		// RFM), so the latest of those is a candidate too.
		next := never
		var latestIdle dram.Time
		for b := range s.openRow {
			if s.openRow[b] >= 0 {
				if now >= s.preReadyAt[b] {
					s.precharge(b, now, false)
					return true
				}
				if s.preReadyAt[b] < next {
					next = s.preReadyAt[b]
				}
			} else if s.idleAt[b] > latestIdle {
				latestIdle = s.idleAt[b]
			}
		}
		if latestIdle > now && latestIdle < next {
			next = latestIdle
		}
		s.arm(next)
		return false
	}
	if m := s.idleAt.Max(); now < m {
		s.arm(m)
		return false
	}
	// Execute the all-bank REF.
	s.refBusyUntil = now + t.TRFC
	s.actReadyAt.RaiseAll(s.refBusyUntil)
	s.idleAt.RaiseAll(s.refBusyUntil)
	s.stats.REFs++
	s.stats.RefBusy += t.TRFC
	s.stats.DemandRefreshRows += int64(g.RowsPerREF) * int64(g.BanksPerSubChannel)
	if s.teleBankActs != nil {
		for b, acts := range s.teleBankActs {
			s.teleActHist.Observe(float64(acts))
			s.teleBankActs[b] = 0
		}
	}
	if s.obs != nil {
		s.obs.ObserveREF(s.id, s.refIndex, now)
	}
	s.mit.OnREF(s.refIndex, now) // 0-based position in the refresh walk
	s.refIndex++
	s.refDue += t.TREFI
	return true
}

// precharge closes the row open in bank. forced marks a device-side close
// during the ALERT prologue→stall transition, which is exempt from the
// controller-side row-cycle minimums (tRAS/tRTP/tWR) but still counted in
// stats.PREs and still subject to RowPress equivalent-ACT weighting.
func (s *SubChannel) precharge(bank int, now dram.Time, forced bool) {
	t := &s.cfg.Timing
	if s.cfg.RowPressWeighting && s.openRow[bank] >= 0 {
		// RowPress mitigation (Section II.A): a long-open row disturbs
		// its neighbours like extra activations; report one equivalent
		// ACT to the tracker per additional tRAS the row stayed open.
		extra := int((now-s.openedAt[bank])/t.TRAS) - 1
		if extra > 8 {
			extra = 8
		}
		for i := 0; i < extra; i++ {
			s.mit.OnActivate(bank, int(s.openRow[bank]), now)
		}
	}
	s.openRow[bank] = -1
	s.open.Clear(bank)
	s.actReadyAt.Raise(bank, now+t.TRP)
	s.idleAt[bank] = now + t.TRP
	s.stats.PREs++
	if s.obs != nil {
		s.obs.ObservePRE(s.id, bank, forced, now)
	}
}

func (s *SubChannel) activate(bank, row int, now dram.Time) {
	t := &s.cfg.Timing
	s.openRow[bank] = int32(row)
	s.open.Set(bank)
	s.openedAt[bank] = now
	s.colReadyAt[bank] = now + t.TRCD
	s.preReadyAt[bank] = now + t.TRAS
	s.actReadyAt[bank] = now + t.TRC
	s.faw[s.fawIdx] = now
	s.fawIdx = (s.fawIdx + 1) % len(s.faw)
	s.lastActAt = now
	s.stats.ACTs++
	s.actSinceAlert = true
	if s.teleBankActs != nil {
		s.teleBankActs[bank]++
	}

	if s.cfg.RFMBAT > 0 {
		s.actCounter[bank]++
		if int(s.actCounter[bank]) >= s.cfg.RFMBAT {
			s.actCounter[bank] = 0
			if !s.rfmPending.Test(bank) {
				s.rfmPending.Set(bank)
				s.rfmCount++
			}
		}
	}
	if s.obs != nil {
		s.obs.ObserveACT(s.id, bank, row, now)
	}
	s.mit.OnActivate(bank, row, now)
}

func (s *SubChannel) issueColumn(r *Request, bank int, now dram.Time) {
	t := &s.cfg.Timing
	dataDone := now + t.TCL + t.TBUS
	s.busFreeAt = dataDone
	s.stats.BusBusy += t.TBUS
	if s.openedAt[bank] <= r.arrive {
		// The row was already open when the request arrived.
		s.stats.RowHits++
	} else {
		s.stats.RowMisses++
	}
	if r.Write {
		s.stats.Writes++
		s.preReadyAt.Raise(bank, dataDone+t.TWR)
		if s.obs != nil {
			s.obs.ObserveWrite(s.id, r.addr.Bank, r.addr.Row, now)
		}
		if r.Done != nil {
			r.Done(now) // posted write
		}
		return
	}
	s.stats.Reads++
	s.preReadyAt.Raise(bank, now+t.TRTP)
	if s.obs != nil {
		s.obs.ObserveRead(s.id, r.addr.Bank, r.addr.Row, now)
	}
	if r.Done != nil {
		s.k.ScheduleEvent(&r.doneEv, dataDone)
	}
}
