package mem

import (
	"strconv"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// alert protocol states.
const (
	alertIdle = iota
	alertPrologue
	alertStall
)

// bankState is the controller's view of one DRAM bank.
type bankState struct {
	openRow    int       // -1 when precharged
	openedAt   dram.Time // time of the last ACT
	colReadyAt dram.Time // earliest column command (tRCD after ACT)
	preReadyAt dram.Time // earliest precharge (tRAS / read-to-pre / write recovery)
	actReadyAt dram.Time // earliest next ACT (tRC after ACT, tRP after PRE, RFM/REF end)
	idleAt     dram.Time // time the bank is fully precharged/idle (REF/RFM gating)
	rfmPending bool      // a proactive RFM must execute before the next ACT
	actCounter int       // BAT counter for proactive RFM
}

// SubChannel is one independently scheduled DDR5 sub-channel.
type SubChannel struct {
	k   *sim.Kernel
	cfg Config
	id  int
	mit track.Mitigator

	banks   []bankState
	queue   []*Request
	nextEnq int64

	faw       []dram.Time // times of the last 4 ACTs (ring)
	fawIdx    int
	lastActAt dram.Time
	busFreeAt dram.Time

	refDue       dram.Time
	refBusyUntil dram.Time
	refIndex     int

	alertState    int
	alertStallAt  dram.Time
	alertEndAt    dram.Time
	actSinceAlert bool

	// wakeEv is the single persistent scheduler-wake event. It coalesces
	// every wake source — request arrival, bank/bus timing, refresh due,
	// ALERT windows — into one reusable handle: requestWake moves it
	// earlier with Reschedule instead of piling up superseded closures.
	wakeEv sim.Event
	stats  Stats

	// hitBank/conflictBank are arm()'s per-bank scratch flags, sized from
	// the geometry (a fixed [64]bool here once indexed out of range for
	// configs with more than 64 banks per sub-channel). They are zeroed at
	// the top of every arm pass.
	hitBank, conflictBank []bool

	// obs, when non-nil, shadows every command the sub-channel issues
	// (protocol auditing, test instrumentation). Each command site pays
	// one nil test, the same discipline as teleBankActs.
	obs CommandObserver

	// teleBankActs counts ACTs per bank since the last REF; at each REF
	// every bank's count is observed into teleActHist and reset. Both are
	// nil when telemetry is disabled, so the hot path pays one nil test.
	teleBankActs []int64
	teleActHist  *telemetry.Histogram
}

func newSubChannel(k *sim.Kernel, cfg Config, id int) *SubChannel {
	s := &SubChannel{
		k:             k,
		cfg:           cfg,
		id:            id,
		banks:         make([]bankState, cfg.Geometry.BanksPerSubChannel),
		hitBank:       make([]bool, cfg.Geometry.BanksPerSubChannel),
		conflictBank:  make([]bool, cfg.Geometry.BanksPerSubChannel),
		faw:           make([]dram.Time, 4),
		refDue:        cfg.Timing.TREFI,
		actSinceAlert: true,
	}
	s.wakeEv.Bind((*subWake)(s))
	for i := range s.banks {
		s.banks[i].openRow = -1
	}
	for i := range s.faw {
		s.faw[i] = -cfg.Timing.TFAW
	}
	s.lastActAt = -cfg.Timing.TRRD
	sink := track.FuncSink(func(bank, row, victims int, now dram.Time) {
		s.stats.Mitigations++
		s.stats.VictimRows += int64(victims)
	})
	if cfg.NewMitigator != nil {
		s.mit = cfg.NewMitigator(id, sink)
	} else {
		s.mit = track.NewNop()
	}
	if cfg.Telemetry.Enabled() {
		s.teleBankActs = make([]int64, cfg.Geometry.BanksPerSubChannel)
		s.teleActHist = cfg.Telemetry.Histogram("mem_bank_acts_per_ref", 32, 4,
			telemetry.L("sub", strconv.Itoa(id)))
	}
	// Refresh is self-sustaining: arm the first REF.
	s.requestWake(s.refDue)
	return s
}

// Stats returns a copy of the sub-channel's counters.
func (s *SubChannel) Stats() Stats { return s.stats }

// Mitigator returns the attached mitigation engine.
func (s *SubChannel) Mitigator() track.Mitigator { return s.mit }

// RefIndex returns the number of REF commands executed so far.
func (s *SubChannel) RefIndex() int { return s.refIndex }

// PendingRequests returns the number of requests still queued on this
// sub-channel (for drain and conservation checks).
func (s *SubChannel) PendingRequests() int { return len(s.queue) }

func (s *SubChannel) submit(r *Request) {
	if r.Done != nil {
		r.doneEv.Bind((*requestDone)(r))
	}
	r.arrive = s.k.Now()
	r.enqueue = s.nextEnq
	s.nextEnq++
	s.queue = append(s.queue, r)
	if s.obs != nil {
		s.obs.ObserveSubmit(s.id, r.Write, r.arrive)
	}
	s.requestWake(s.k.Now())
}

// subWake adapts a SubChannel to sim.Handler for its wake event.
type subWake SubChannel

func (w *subWake) Fire(dram.Time) { (*SubChannel)(w).wake() }

// requestWake ensures the wake event is scheduled no later than at. A
// pending wake at an earlier-or-equal time wins (coalescing); a later one
// is pulled forward with Reschedule, which — matching the retired
// generation-counter scheme — assigns a fresh FIFO sequence number, so the
// wake still fires after events already queued for the same instant.
func (s *SubChannel) requestWake(at dram.Time) {
	now := s.k.Now()
	if at < now {
		at = now
	}
	if s.wakeEv.Scheduled() && s.wakeEv.When() <= at {
		return
	}
	s.k.Reschedule(&s.wakeEv, at)
}

func (s *SubChannel) wake() {
	n := 0
	for s.step() {
		n++
	}
	if debugHook != nil {
		debugHook(n)
	}
	s.arm()
}

// step attempts one state transition at the current time; it reports
// whether progress was made (zero-delay actions chain until quiescent).
func (s *SubChannel) step() bool {
	now := s.k.Now()
	t := &s.cfg.Timing

	// ALERT protocol bookkeeping.
	switch s.alertState {
	case alertStall:
		if now < s.alertEndAt {
			return false
		}
		// The back-off RFM executed during the stall window; mitigation
		// completes as the stall ends.
		s.mit.ServiceALERT(now)
		s.alertState = alertIdle
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertEnd, now)
		}
		return true
	case alertPrologue:
		if now >= s.alertStallAt {
			// Stall begins: all banks are precharged for the back-off RFM.
			// Open rows are force-closed through precharge so the close is
			// fully accounted (RowPress equivalent-ACT weighting, stats.PREs;
			// see DESIGN.md §12) — these device-side closes may cut tRAS
			// short, which the auditor exempts via the forced flag. The
			// per-bank timers are then raised to the stall end, which always
			// dominates the tRP that precharge just applied (the stall is
			// 350ns, tRP at most 36ns).
			for b := range s.banks {
				bk := &s.banks[b]
				if bk.openRow >= 0 {
					s.precharge(b, now, true)
				}
				if bk.actReadyAt < s.alertEndAt {
					bk.actReadyAt = s.alertEndAt
				}
				if bk.idleAt < s.alertEndAt {
					bk.idleAt = s.alertEndAt
				}
			}
			s.alertState = alertStall
			if s.obs != nil {
				s.obs.ObserveAlert(s.id, AlertStallStart, now)
			}
			return true
		}
	}

	// Sub-channel blocked while a REF executes.
	if now < s.refBusyUntil {
		return false
	}

	// Demand refresh has strict priority once due.
	if now >= s.refDue && s.alertState == alertIdle {
		return s.stepRefresh(now)
	}

	// Reactive ALERT initiation: requires at least one ACT since the
	// previous ALERT completed (the mandatory epilogue activation).
	if s.alertState == alertIdle && s.actSinceAlert && s.mit.WantsALERT() {
		s.alertState = alertPrologue
		s.alertStallAt = now + t.ABOPrologue
		s.alertEndAt = s.alertStallAt + t.ABOStall
		s.actSinceAlert = false
		s.stats.Alerts++
		s.stats.AlertStall += t.ABOStall
		if s.obs != nil {
			s.obs.ObserveAlert(s.id, AlertPrologueStart, now)
		}
		return true
	}

	// Proactive RFM execution.
	for b := range s.banks {
		bk := &s.banks[b]
		if !bk.rfmPending {
			continue
		}
		if bk.openRow >= 0 {
			if now >= bk.preReadyAt {
				s.precharge(b, now, false)
				return true
			}
			continue
		}
		if now >= bk.idleAt {
			bk.rfmPending = false
			bk.actReadyAt = now + t.TRFM
			bk.idleAt = now + t.TRFM
			s.stats.RFMs++
			s.stats.RFMBusy += t.TRFM
			if s.obs != nil {
				s.obs.ObserveRFM(s.id, b, now)
			}
			s.mit.OnRFM(b, now)
			return true
		}
	}

	window := s.queue
	if len(window) > s.cfg.WindowDepth {
		window = window[:s.cfg.WindowDepth]
	}

	// Column command for the oldest row hit.
	for i, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow != r.addr.Row || now < bk.colReadyAt {
			continue
		}
		if s.busFreeAt > now+t.TCL {
			continue // data bus not free at data time
		}
		s.issueColumn(r, bk, now)
		// Shift-and-truncate, clearing the vacated tail slot so the retired
		// *Request (and its bound done event) does not stay reachable for
		// the rest of the run through the slice's backing array.
		copy(s.queue[i:], s.queue[i+1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		return true
	}

	// Precharge: oldest-conflict demand or soft close-page after tRAS.
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.openRow < 0 || now < bk.preReadyAt {
			continue
		}
		hasHit, hasConflict := false, false
		for _, r := range window {
			if r.addr.Bank != b {
				continue
			}
			if r.addr.Row == bk.openRow {
				hasHit = true
				break
			}
			hasConflict = true
		}
		if hasHit {
			continue // soft close-page: pending hits are served first
		}
		if hasConflict || now-bk.openedAt >= t.TRAS {
			s.precharge(b, now, false)
			return true
		}
	}

	// Activate for the oldest request with a closed, ready bank.
	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow >= 0 || bk.rfmPending {
			continue
		}
		if now < bk.actReadyAt || now < bk.idleAt {
			continue
		}
		if now < s.lastActAt+t.TRRD {
			break // channel-level ACT pacing blocks all activates
		}
		if !debugSkipFAW && now < s.faw[s.fawIdx]+t.TFAW {
			break // four-activation window blocks all activates
		}
		s.activate(r.addr.Bank, r.addr.Row, now)
		return true
	}

	return false
}

// stepRefresh makes progress toward (or executes) a due REF.
func (s *SubChannel) stepRefresh(now dram.Time) bool {
	t := &s.cfg.Timing
	g := &s.cfg.Geometry
	allIdle := true
	var latestIdle dram.Time
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.openRow >= 0 {
			allIdle = false
			if now >= bk.preReadyAt {
				s.precharge(b, now, false)
				return true
			}
			continue
		}
		if bk.idleAt > latestIdle {
			latestIdle = bk.idleAt
		}
	}
	if !allIdle || now < latestIdle {
		return false
	}
	// Execute the all-bank REF.
	s.refBusyUntil = now + t.TRFC
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.actReadyAt < s.refBusyUntil {
			bk.actReadyAt = s.refBusyUntil
		}
		if bk.idleAt < s.refBusyUntil {
			bk.idleAt = s.refBusyUntil
		}
	}
	s.stats.REFs++
	s.stats.RefBusy += t.TRFC
	s.stats.DemandRefreshRows += int64(g.RowsPerREF) * int64(g.BanksPerSubChannel)
	if s.teleBankActs != nil {
		for b, acts := range s.teleBankActs {
			s.teleActHist.Observe(float64(acts))
			s.teleBankActs[b] = 0
		}
	}
	if s.obs != nil {
		s.obs.ObserveREF(s.id, s.refIndex, now)
	}
	s.mit.OnREF(s.refIndex, now) // 0-based position in the refresh walk
	s.refIndex++
	s.refDue += t.TREFI
	return true
}

// precharge closes the row open in bank. forced marks a device-side close
// during the ALERT prologue→stall transition, which is exempt from the
// controller-side row-cycle minimums (tRAS/tRTP/tWR) but still counted in
// stats.PREs and still subject to RowPress equivalent-ACT weighting.
func (s *SubChannel) precharge(bank int, now dram.Time, forced bool) {
	t := &s.cfg.Timing
	bk := &s.banks[bank]
	if s.cfg.RowPressWeighting && bk.openRow >= 0 {
		// RowPress mitigation (Section II.A): a long-open row disturbs
		// its neighbours like extra activations; report one equivalent
		// ACT to the tracker per additional tRAS the row stayed open.
		extra := int((now-bk.openedAt)/t.TRAS) - 1
		if extra > 8 {
			extra = 8
		}
		for i := 0; i < extra; i++ {
			s.mit.OnActivate(bank, bk.openRow, now)
		}
	}
	bk.openRow = -1
	if bk.actReadyAt < now+t.TRP {
		bk.actReadyAt = now + t.TRP
	}
	bk.idleAt = now + t.TRP
	s.stats.PREs++
	if s.obs != nil {
		s.obs.ObservePRE(s.id, bank, forced, now)
	}
}

func (s *SubChannel) activate(bank, row int, now dram.Time) {
	t := &s.cfg.Timing
	bk := &s.banks[bank]
	bk.openRow = row
	bk.openedAt = now
	bk.colReadyAt = now + t.TRCD
	bk.preReadyAt = now + t.TRAS
	bk.actReadyAt = now + t.TRC
	s.faw[s.fawIdx] = now
	s.fawIdx = (s.fawIdx + 1) % len(s.faw)
	s.lastActAt = now
	s.stats.ACTs++
	s.actSinceAlert = true
	if s.teleBankActs != nil {
		s.teleBankActs[bank]++
	}

	if s.cfg.RFMBAT > 0 {
		bk.actCounter++
		if bk.actCounter >= s.cfg.RFMBAT {
			bk.actCounter = 0
			bk.rfmPending = true
		}
	}
	if s.obs != nil {
		s.obs.ObserveACT(s.id, bank, row, now)
	}
	s.mit.OnActivate(bank, row, now)
}

func (s *SubChannel) issueColumn(r *Request, bk *bankState, now dram.Time) {
	t := &s.cfg.Timing
	dataDone := now + t.TCL + t.TBUS
	s.busFreeAt = dataDone
	s.stats.BusBusy += t.TBUS
	if bk.openedAt <= r.arrive {
		// The row was already open when the request arrived.
		s.stats.RowHits++
	} else {
		s.stats.RowMisses++
	}
	if r.Write {
		s.stats.Writes++
		if bk.preReadyAt < dataDone+t.TWR {
			bk.preReadyAt = dataDone + t.TWR
		}
		if s.obs != nil {
			s.obs.ObserveWrite(s.id, r.addr.Bank, r.addr.Row, now)
		}
		if r.Done != nil {
			r.Done(now) // posted write
		}
		return
	}
	s.stats.Reads++
	if bk.preReadyAt < now+t.TRTP {
		bk.preReadyAt = now + t.TRTP
	}
	if s.obs != nil {
		s.obs.ObserveRead(s.id, r.addr.Bank, r.addr.Row, now)
	}
	if r.Done != nil {
		s.k.ScheduleEvent(&r.doneEv, dataDone)
	}
}

// arm computes the earliest future time at which step could make progress
// and schedules a wake there.
func (s *SubChannel) arm() {
	now := s.k.Now()
	t := &s.cfg.Timing
	const never = dram.Time(1) << 62
	next := never

	chosen := ""
	consider := func(at dram.Time, label string) {
		if at <= now {
			at = now + dram.Picosecond
			if debugClamp != nil {
				debugClamp(label)
			}
		}
		if at < next {
			next = at
			chosen = label
		}
	}
	defer func() {
		if debugArm != nil && next < never {
			debugArm(chosen, next-now)
		}
	}()

	switch s.alertState {
	case alertPrologue:
		consider(s.alertStallAt, "alertStallAt")
	case alertStall:
		consider(s.alertEndAt, "alertEndAt")
	}
	if now < s.refBusyUntil {
		consider(s.refBusyUntil, "refBusy")
	}
	if s.refDue > now {
		consider(s.refDue, "refDue") // refresh is self-sustaining
	}

	refPending := now >= s.refDue && s.alertState == alertIdle && now >= s.refBusyUntil
	if refPending {
		// Only the latest idle time gates the REF; banks already idle
		// need no wake of their own.
		var latestIdle dram.Time
		for b := range s.banks {
			bk := &s.banks[b]
			if bk.openRow >= 0 {
				consider(bk.preReadyAt, "ref-pre")
			} else if bk.idleAt > latestIdle {
				latestIdle = bk.idleAt
			}
		}
		if latestIdle > now {
			consider(latestIdle, "ref-idle")
		}
		// While refresh is pending nothing else issues.
		if next < never {
			s.requestWake(next)
		}
		return
	}

	if s.alertState == alertStall {
		s.requestWake(next)
		return
	}

	window := s.queue
	if len(window) > s.cfg.WindowDepth {
		window = window[:s.cfg.WindowDepth]
	}
	hitBank, conflictBank := s.hitBank, s.conflictBank
	for i := range hitBank {
		hitBank[i] = false
		conflictBank[i] = false
	}
	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		if bk.openRow == r.addr.Row {
			hitBank[r.addr.Bank] = true
		} else if bk.openRow >= 0 {
			conflictBank[r.addr.Bank] = true
		}
	}

	for b := range s.banks {
		bk := &s.banks[b]
		if bk.rfmPending {
			if bk.openRow >= 0 {
				if !hitBank[b] {
					consider(bk.preReadyAt, "rfm-pre")
				}
			} else {
				consider(bk.idleAt, "rfm-idle")
			}
		}
		if bk.openRow >= 0 && !hitBank[b] {
			// Precharge timer: immediately at preReady for a pending
			// conflict, at the soft close-page point otherwise.
			at := bk.preReadyAt
			if !conflictBank[b] && bk.openedAt+t.TRAS > at {
				at = bk.openedAt + t.TRAS
			}
			consider(at, "pre")
		}
	}
	for _, r := range window {
		bk := &s.banks[r.addr.Bank]
		switch {
		case bk.openRow == r.addr.Row:
			at := bk.colReadyAt
			if s.busFreeAt-t.TCL > at {
				at = s.busFreeAt - t.TCL
			}
			consider(at, "col")
		case bk.openRow >= 0:
			if !hitBank[r.addr.Bank] {
				consider(bk.preReadyAt, "conf-pre")
			}
		default:
			at := bk.actReadyAt
			if bk.idleAt > at {
				at = bk.idleAt
			}
			if f := s.faw[s.fawIdx] + t.TFAW; f > at && !debugSkipFAW {
				at = f
			}
			if rr := s.lastActAt + t.TRRD; rr > at {
				at = rr
			}
			consider(at, "act")
		}
	}

	if next < never {
		s.requestWake(next)
	}
}

// debugHook, when non-nil, receives the number of step transitions each
// wake performed (test instrumentation). debugClamp receives the label of
// any candidate that had to be clamped into the future. debugSkipFAW
// disables the four-activation-window pacing check — it exists solely so
// the audit tests can prove the auditor catches a controller that stops
// honouring tFAW.
var (
	debugHook    func(progress int)
	debugClamp   func(label string)
	debugArm     func(label string, delta dram.Time)
	debugSkipFAW bool
)
