package mem

import (
	"testing"

	"mirza/internal/dram"
	"mirza/internal/sim"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// Differential test: the redesigned struct-of-arrays fast-forward command
// path must issue exactly the command stream — same commands, same banks,
// same rows, same picosecond timestamps — as the preserved legacy
// implementation (legacy_ref_test.go), for every protocol feature at
// once: row hits/conflicts, tFAW storms, soft close-page, REF, proactive
// RFM, ALERT-Back-Off, writes, RowPress weighting, and a geometry wider
// than one bitset word.

// diffCmd is one observed command, comparable with ==.
type diffCmd struct {
	kind   string
	sub    int
	bank   int
	row    int
	forced bool
	write  bool
	phase  AlertPhase
	at     dram.Time
}

// diffObs records every command into a flat stream.
type diffObs struct{ cmds []diffCmd }

func (o *diffObs) ObserveSubmit(sub int, write bool, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "submit", sub: sub, write: write, at: now})
}
func (o *diffObs) ObserveACT(sub, bank, row int, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "act", sub: sub, bank: bank, row: row, at: now})
}
func (o *diffObs) ObservePRE(sub, bank int, forced bool, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "pre", sub: sub, bank: bank, forced: forced, at: now})
}
func (o *diffObs) ObserveRead(sub, bank, row int, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "read", sub: sub, bank: bank, row: row, at: now})
}
func (o *diffObs) ObserveWrite(sub, bank, row int, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "write", sub: sub, bank: bank, row: row, at: now})
}
func (o *diffObs) ObserveREF(sub, refIndex int, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "ref", sub: sub, bank: refIndex, at: now})
}
func (o *diffObs) ObserveRFM(sub, bank int, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "rfm", sub: sub, bank: bank, at: now})
}
func (o *diffObs) ObserveAlert(sub int, phase AlertPhase, now dram.Time) {
	o.cmds = append(o.cmds, diffCmd{kind: "alert", sub: sub, phase: phase, at: now})
}

// submitter is a mem-facing request source: both channel flavours satisfy
// it.
type submitter interface {
	Submit(r *Request)
	Geometry() dram.Geometry
}

// diffFeeder replays a fixed pseudo-random request schedule into a
// channel, one typed event rescheduled per batch.
type diffFeeder struct {
	k     *sim.Kernel
	ch    submitter
	rng   *stats.RNG
	ev    sim.Event
	left  int
	gap   dram.Time
	hot   int // rows hammered to trip trackers
	dones []dram.Time
}

func newDiffFeeder(k *sim.Kernel, ch submitter, seed uint64, n int, gap dram.Time) *diffFeeder {
	f := &diffFeeder{k: k, ch: ch, rng: stats.NewRNG(seed), left: n, gap: gap, hot: 4}
	f.ev.Bind(f)
	k.ScheduleEvent(&f.ev, 0)
	return f
}

func (f *diffFeeder) Fire(now dram.Time) {
	g := f.ch.Geometry()
	// A small batch per firing keeps several requests in flight, creating
	// hits, conflicts, and cross-bank tFAW pressure.
	batch := 1 + f.rng.Intn(4)
	for i := 0; i < batch && f.left > 0; i++ {
		f.left--
		var addr dram.Address
		addr.SubChannel = f.rng.Intn(g.SubChannels)
		addr.Bank = f.rng.Intn(g.BanksPerSubChannel)
		switch f.rng.Intn(4) {
		case 0: // hammer a hot row (trips PRAC / BAT counters)
			addr.Row = f.rng.Intn(f.hot)
		case 1: // revisit a warm set (row hits)
			addr.Row = 64 + f.rng.Intn(8)
		default: // scatter (conflicts, close-page)
			addr.Row = f.rng.Intn(g.RowsPerBank)
		}
		idx := len(f.dones)
		f.dones = append(f.dones, 0)
		r := &Request{
			Addr:  g.Compose(addr),
			Write: f.rng.Intn(5) == 0,
			Done:  func(at dram.Time) { f.dones[idx] = at },
		}
		f.ch.Submit(r)
	}
	if f.left > 0 {
		jitter := dram.Time(f.rng.Int63n(int64(f.gap)))
		f.k.ScheduleEvent(&f.ev, now+f.gap+jitter)
	}
}

// diffScenario runs one traffic schedule against a channel flavour and
// returns the observed command stream, final stats, and completion times.
func diffScenario(t *testing.T, cfg Config, build func(*sim.Kernel, Config) (submitter, func() Stats), seed uint64, n int, gap, horizon dram.Time) ([]diffCmd, Stats, []dram.Time) {
	t.Helper()
	k := &sim.Kernel{}
	ch, stats := build(k, cfg)
	obs := &diffObs{}
	switch c := ch.(type) {
	case *Channel:
		c.InstallObserver(obs)
	case *LegacyChannel:
		c.InstallObserver(obs)
	}
	newDiffFeeder(k, ch, seed, n, gap)
	k.RunUntil(horizon)
	return obs.cmds, stats(), nil
}

func buildNew(k *sim.Kernel, cfg Config) (submitter, func() Stats) {
	ch, err := NewChannel(k, cfg)
	if err != nil {
		panic(err)
	}
	return ch, ch.Stats
}

func buildLegacy(k *sim.Kernel, cfg Config) (submitter, func() Stats) {
	ch, err := NewLegacyChannel(k, cfg)
	if err != nil {
		panic(err)
	}
	return ch, ch.Stats
}

func TestDifferentialCommandStream(t *testing.T) {
	geomWide := dram.Default()
	geomWide.BanksPerSubChannel = 128 // > 64: spans multiple bitset words
	pracFactory := func(sub int, sink track.Sink) track.Mitigator {
		return track.NewPRAC(track.PRACConfig{
			Geometry:       dram.Default(),
			AlertThreshold: 24, // low enough that the hot rows trip ALERT
		}, sink)
	}
	cases := []struct {
		name string
		cfg  Config
		n    int
		gap  dram.Time
	}{
		{
			name: "baseline-mixed",
			cfg:  Config{},
			n:    4000,
			gap:  20 * dram.Nanosecond,
		},
		{
			name: "rfm-rowpress",
			cfg:  Config{RFMBAT: 16, RowPressWeighting: true},
			n:    4000,
			gap:  15 * dram.Nanosecond,
		},
		{
			name: "prac-alert",
			cfg:  Config{NewMitigator: pracFactory, Timing: dram.PRAC(), RowPressWeighting: true},
			n:    5000,
			gap:  10 * dram.Nanosecond,
		},
		{
			name: "wide-geometry",
			cfg:  Config{Geometry: geomWide, RFMBAT: 12},
			n:    3000,
			gap:  12 * dram.Nanosecond,
		},
		{
			name: "idle-bursts", // long empty-queue spans exercise fast-forward
			cfg:  Config{RFMBAT: 24},
			n:    600,
			gap:  600 * dram.Nanosecond,
		},
	}
	const horizon = 300 * dram.Microsecond
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotCmds, gotStats, _ := diffScenario(t, tc.cfg, buildNew, 99, tc.n, tc.gap, horizon)
			wantCmds, wantStats, _ := diffScenario(t, tc.cfg, buildLegacy, 99, tc.n, tc.gap, horizon)
			if len(gotCmds) == 0 {
				t.Fatal("scenario produced no commands")
			}
			if gotStats != wantStats {
				t.Errorf("stats diverged:\n new: %+v\n old: %+v", gotStats, wantStats)
			}
			n := len(gotCmds)
			if len(wantCmds) != n {
				t.Errorf("command count: new %d, legacy %d", n, len(wantCmds))
				if len(wantCmds) < n {
					n = len(wantCmds)
				}
			}
			mismatches := 0
			for i := 0; i < n; i++ {
				if gotCmds[i] != wantCmds[i] {
					t.Errorf("cmd %d diverged:\n new: %+v\n old: %+v", i, gotCmds[i], wantCmds[i])
					if mismatches++; mismatches > 5 {
						t.Fatal("too many divergences; stopping")
					}
				}
			}
			// Sanity: the scenarios must actually exercise their features.
			assertCoverage(t, tc.name, gotStats)
		})
	}
}

func assertCoverage(t *testing.T, name string, st Stats) {
	t.Helper()
	checks := []struct {
		label string
		ok    bool
	}{
		{"reads", st.Reads > 0},
		{"writes", st.Writes > 0},
		{"acts", st.ACTs > 0},
		{"refs", st.REFs > 0},
	}
	switch name {
	case "rfm-rowpress", "wide-geometry":
		checks = append(checks, struct {
			label string
			ok    bool
		}{"rfms", st.RFMs > 0})
	case "prac-alert":
		checks = append(checks, struct {
			label string
			ok    bool
		}{"alerts", st.Alerts > 0})
	}
	for _, c := range checks {
		if !c.ok {
			t.Errorf("scenario %s never exercised %s: %+v", name, c.label, st)
		}
	}
}

// TestDifferentialDrain checks completion-time equality request by request
// on a drain-to-empty run (every submitted request completes, so the Done
// streams line up index for index).
func TestDifferentialDrain(t *testing.T) {
	cfg := Config{RFMBAT: 20, RowPressWeighting: true}
	run := func(build func(*sim.Kernel, Config) (submitter, func() Stats)) []dram.Time {
		k := &sim.Kernel{}
		ch, _ := build(k, cfg)
		f := newDiffFeeder(k, ch, 7, 2000, 25*dram.Nanosecond)
		k.RunUntil(2 * dram.Millisecond)
		return f.dones
	}
	got := run(buildNew)
	want := run(buildLegacy)
	if len(got) != len(want) {
		t.Fatalf("request count: new %d, legacy %d", len(got), len(want))
	}
	for i := range got {
		if got[i] == 0 {
			t.Fatalf("request %d never completed on the new path", i)
		}
		if got[i] != want[i] {
			t.Fatalf("request %d completion: new %v, legacy %v", i, got[i], want[i])
		}
	}
}
