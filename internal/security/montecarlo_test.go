package security

import (
	"math"
	"testing"

	"mirza/internal/dram"
	"mirza/internal/stats"
	"mirza/internal/track"
)

// TestMonteCarloEscapeProbability validates the analytic core of the MINT
// model empirically: against a real MINTSampler, a row receiving t of its
// window's activations escapes selection with probability (1-1/W)^t.
func TestMonteCarloEscapeProbability(t *testing.T) {
	const (
		w      = 12
		target = 60 // attacker ACTs on the victim row per trial
		trials = 30000
	)
	rng := stats.NewRNG(5)
	escapes := 0
	for trial := 0; trial < trials; trial++ {
		s := track.NewMINTSampler(w, rng.Split())
		escaped := true
		// The attacker interleaves its row with decoys, one per window
		// slot, giving the row `target` total observations.
		for i := 0; i < target; i++ {
			if s.ObserveRolling(1) {
				escaped = false
				break
			}
			for j := 0; j < w-1; j++ {
				s.ObserveRolling(1000 + j)
			}
		}
		if escaped {
			escapes++
		}
	}
	got := float64(escapes) / trials
	want := EscapeProbability(target, w)
	if math.Abs(got-want) > 0.015 {
		t.Errorf("empirical escape %.4f vs analytic %.4f", got, want)
	}
}

// TestMonteCarloSelectionUniform confirms the sampler's uniformity, the
// assumption underlying T = W*ln(K/T).
func TestMonteCarloSelectionUniform(t *testing.T) {
	const w = 8
	rng := stats.NewRNG(9)
	s := track.NewMINTSampler(w, rng)
	counts := make([]int, w)
	const windows = 80000
	for k := 0; k < windows; k++ {
		for i := 0; i < w; i++ {
			if s.ObserveRolling(i) {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		frac := float64(c) / windows
		if math.Abs(frac-1.0/w) > 0.01 {
			t.Errorf("slot %d selected %.4f, want %.4f", i, frac, 1.0/w)
		}
	}
}

// TestMithrilModelAgainstSimulation cross-checks the affine Mithril fit
// against a feinting-style attack on the actual Space-Saving tracker: the
// measured worst-case exposure of a churn pattern must stay within the
// same order as the model's tolerated threshold (scaled for the smaller
// table used here).
func TestMithrilModelAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	model := DefaultMithrilModel()
	g := dram.Default()
	for _, w := range []int{75, 151} {
		tolerated := model.ToleratedTRHD(w)
		perRow := make(map[int]int)
		worst := 0
		tr := track.NewMithril(track.MithrilConfig{
			Geometry: g, Mapping: dram.StridedR2SA, Entries: 64, MitigateEveryREFs: 1,
		}, track.FuncSink(func(bank, row, victims int, now dram.Time) {
			perRow[row] = 0
		}))
		// Feinting-style churn: one more row than the table holds.
		rows := make([]int, 65)
		for i := range rows {
			rows[i] = 1000 + 2*i
		}
		acts, ref := 0, 0
		for acts < 300000 {
			for _, r := range rows {
				tr.OnActivate(0, r, 0)
				perRow[r]++
				if perRow[r] > worst {
					worst = perRow[r]
				}
				acts++
				if acts%w == 0 {
					tr.OnREF(ref%8192, 0)
					ref++
				}
			}
		}
		if worst > 4*tolerated {
			t.Errorf("W=%d: simulated worst %d far exceeds model bound %d", w, worst, tolerated)
		}
		if worst == 0 {
			t.Errorf("W=%d: no exposure recorded", w)
		}
	}
}
