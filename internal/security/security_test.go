package security

import (
	"testing"

	"mirza/internal/core"
	"mirza/internal/dram"
)

func TestMINTModelReproducesTableII(t *testing.T) {
	m := DefaultMINTModel()
	tm := dram.DDR5()
	// Table II: TRHD tolerated by MINT at 1/2/4/8 REF mitigation rates.
	cases := []struct {
		refs      int
		wantW     int
		wantTRHD  int
		tolerance float64
	}{
		{1, 75, 1500, 0.03},
		{2, 151, 2900, 0.05},
		{4, 303, 5800, 0.05},
		{8, 606, 11600, 0.05},
	}
	for _, c := range cases {
		w := WindowPerREFs(tm, c.refs)
		if w != c.wantW && w != c.wantW+1 {
			t.Errorf("refs=%d: W=%d, want ~%d", c.refs, w, c.wantW)
		}
		got := m.ToleratedTRHD(w)
		lo := float64(c.wantTRHD) * (1 - c.tolerance)
		hi := float64(c.wantTRHD) * (1 + c.tolerance)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("refs=%d W=%d: TRHD=%d, want %d +/- %.0f%%",
				c.refs, w, got, c.wantTRHD, c.tolerance*100)
		}
	}
}

func TestMithrilModelReproducesTableII(t *testing.T) {
	m := DefaultMithrilModel()
	cases := []struct{ w, want int }{
		{75, 1000}, {151, 1700}, {303, 2900}, {607, 5400},
	}
	for _, c := range cases {
		got := m.ToleratedTRHD(c.w)
		if float64(got) < 0.93*float64(c.want) || float64(got) > 1.07*float64(c.want) {
			t.Errorf("W=%d: Mithril TRHD=%d, want ~%d", c.w, got, c.want)
		}
	}
}

func TestWindowForTRHDMatchesRFMRates(t *testing.T) {
	m := DefaultMINTModel()
	// Figure 3: MINT tolerates TRHD 500/1K/2K with RFM every 24/48/96
	// activations.
	cases := []struct{ trhd, want, slack int }{
		{500, 24, 1},
		{1000, 48, 2},
		{2000, 96, 5},
	}
	for _, c := range cases {
		got := m.WindowForTRHD(c.trhd)
		if got < c.want-c.slack || got > c.want+c.slack {
			t.Errorf("WindowForTRHD(%d) = %d, want %d +/- %d", c.trhd, got, c.want, c.slack)
		}
	}
}

func TestToleratedTRHDMonotone(t *testing.T) {
	m := DefaultMINTModel()
	prev := 0
	for w := 4; w <= 1024; w *= 2 {
		cur := m.ToleratedTRHD(w)
		if cur <= prev {
			t.Fatalf("TRHD(W=%d)=%d not increasing (prev %d)", w, cur, prev)
		}
		prev = cur
	}
	if m.ToleratedTRHS(0) != 0 {
		t.Error("W=0 should tolerate nothing")
	}
}

func TestEscapeProbability(t *testing.T) {
	if p := EscapeProbability(0, 10); p != 1 {
		t.Errorf("escape(0) = %v", p)
	}
	// e^{-T/W} approximation: T=W gives ~1/e.
	p := EscapeProbability(100, 100)
	if p < 0.35 || p > 0.38 {
		t.Errorf("escape(W,W) = %v, want ~0.366", p)
	}
}

func TestABOActs(t *testing.T) {
	// Figure 10: with a 4-entry queue the last entry receives QTH+7
	// activations, so the ABO slack is 7.
	if got := ABOActs(4); got != 7 {
		t.Errorf("ABOActs(4) = %d, want 7", got)
	}
	if ABOActs(1) != 1 || ABOActs(0) != 0 {
		t.Error("degenerate queue sizes wrong")
	}
}

func TestSafeTRHDMatchesPresets(t *testing.T) {
	m := DefaultMINTModel()
	// Each Table VII preset must tolerate (approximately) its target: the
	// bound composed from the preset parameters should come out within a
	// few percent of the nominal TRHD.
	for _, trhd := range []int{500, 1000, 2000} {
		cfg, err := core.ForTRHD(trhd)
		if err != nil {
			t.Fatal(err)
		}
		bound := SafeTRHD(cfg, m)
		lo, hi := float64(trhd)*0.94, float64(trhd)*1.08
		if float64(bound) < lo || float64(bound) > hi {
			t.Errorf("TRHD=%d: SafeTRHD=%d, want within [%.0f, %.0f]", trhd, bound, lo, hi)
		}
		// Single-sided bound is roughly twice the double-sided one.
		ss := SafeTRHS(cfg, m)
		if ss < bound || ss > 2*bound+cfg.QTH+64 {
			t.Errorf("TRHD=%d: SafeTRHS=%d vs SafeTRHD=%d", trhd, ss, bound)
		}
	}
}

func TestFTHForTRHDInvertsBound(t *testing.T) {
	m := DefaultMINTModel()
	for _, c := range []struct{ trhd, w int }{{500, 8}, {1000, 12}, {2000, 16}} {
		fth := FTHForTRHD(c.trhd, c.w, core.DefaultQueueSize, core.DefaultQTH, m)
		if fth <= 0 {
			t.Fatalf("FTH(%d, W=%d) = %d", c.trhd, c.w, fth)
		}
		cfg, _ := core.ForTRHD(c.trhd)
		cfg.FTH = fth
		cfg.MINTWindow = c.w
		if got := SafeTRHD(cfg, m); got > c.trhd {
			t.Errorf("derived FTH=%d gives SafeTRHD=%d > target %d", fth, got, c.trhd)
		}
		// And it should be close to the paper's choice.
		paper := map[int]int{500: 660, 1000: 1500, 2000: 3330}[c.trhd]
		if float64(fth) < 0.9*float64(paper) || float64(fth) > 1.1*float64(paper) {
			t.Errorf("FTH(%d) = %d, paper uses %d", c.trhd, fth, paper)
		}
	}
	if FTHForTRHD(10, 1024, 4, 16, m) != 0 {
		t.Error("impossible budget must clamp FTH to 0")
	}
}

func TestFTHMonotoneInWindow(t *testing.T) {
	m := DefaultMINTModel()
	// Table IX: larger MINT-W leaves less budget for FTH.
	prev := 1 << 30
	for _, w := range []int{4, 8, 12, 16} {
		fth := FTHForTRHD(1000, w, 4, 16, m)
		if fth >= prev {
			t.Errorf("FTH not decreasing in W: W=%d FTH=%d prev=%d", w, fth, prev)
		}
		prev = fth
	}
}
