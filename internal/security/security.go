// Package security implements the analytic security models of the paper:
// the tolerated-threshold model for MINT's uniform random sampling, a
// counter-tracker (Mithril) bound, and MIRZA's safe-TRH composition over
// its four phases (RCT filtering, MINT selection, MIRZA-Q residency, and
// the non-instantaneous ABO protocol — Section VI).
package security

import (
	"math"

	"mirza/internal/core"
	"mirza/internal/dram"
)

// MINTModel computes the Rowhammer threshold safely tolerated by MINT's
// uniform window sampling.
//
// Each window of W activations selects exactly one uniformly at random, so
// an activation escapes mitigation with probability (1-1/W) and a row
// needs T unmitigated activations to flip a bit with probability about
// e^(-T/W). The attacker gets many attempts (many rows, many refresh
// windows, a long system lifetime), so the tolerated threshold solves
//
//	T = W * ln(K / T)
//
// where K aggregates the attempt budget over the target failure
// probability. K is calibrated so that MINT-75 tolerates a double-sided
// threshold of 1.5K, the paper's published point (Section II.E); the same
// K then reproduces the rest of Table II's MINT column (2.9K/5.8K/11.6K at
// one mitigation per 2/4/8 REF) because the ln(K/T) term supplies exactly
// the sub-linear growth the paper reports.
type MINTModel struct {
	// K is the attempt budget over failure probability (see above).
	K float64
}

// DefaultMINTModel returns the model calibrated to MINT-75 => TRHD 1.5K.
func DefaultMINTModel() MINTModel {
	// 3000 = 75 * ln(K/3000)  =>  K = 3000 * e^40.
	return MINTModel{K: 3000 * math.Exp(40)}
}

// ToleratedTRHS returns the single-sided threshold tolerated by MINT with
// window W: the fixed point of T = W*ln(K/T).
func (m MINTModel) ToleratedTRHS(w int) int {
	if w < 1 {
		return 0
	}
	t := 20.0 * float64(w)
	for i := 0; i < 100; i++ {
		next := float64(w) * math.Log(m.K/t)
		if math.Abs(next-t) < 0.5 {
			t = next
			break
		}
		t = next
	}
	return int(math.Ceil(t))
}

// ToleratedTRHD returns the double-sided threshold tolerated by MINT with
// window W. In a double-sided pattern both aggressors hammer the shared
// victim and mitigating either one refreshes it, so each side affords half
// the single-sided budget.
func (m MINTModel) ToleratedTRHD(w int) int {
	return (m.ToleratedTRHS(w) + 1) / 2
}

// WindowForTRHD returns the largest MINT window whose tolerated
// double-sided threshold does not exceed trhd — i.e. the slowest mitigation
// rate that is still safe at trhd. For 500/1000/2000 this yields the
// paper's RFM rates of one mitigation per ~24/48/96 activations.
func (m MINTModel) WindowForTRHD(trhd int) int {
	w := 1
	for m.ToleratedTRHD(w+1) <= trhd {
		w++
		if w > 1<<20 {
			break
		}
	}
	return w
}

// EscapeProbability returns the probability that a row receiving t of its
// window's activations escapes selection across those activations.
func EscapeProbability(t, w int) float64 {
	if w < 1 {
		return 0
	}
	return math.Pow(1-1/float64(w), float64(t))
}

// MithrilModel bounds the threshold tolerated by a counter-based tracker
// with k entries mitigating once per window of W activations. The paper's
// Table II figures for Mithril-2K follow an affine law in W — the linear
// term is the per-window accrual an attacker sustains against the
// highest-counter eviction policy, and the offset is the feinting headroom
// from filling the k-entry table (Marazzi et al., ProTRR; Kim et al.,
// Mithril). Alpha and Beta are fitted to the published points
// (1K/1.7K/2.9K/5.4K at W=75/151/303/607).
type MithrilModel struct {
	Alpha float64 // per-window-activation accrual
	Beta  float64 // feinting offset from table occupancy
}

// DefaultMithrilModel returns the fit to the paper's Table II column.
func DefaultMithrilModel() MithrilModel {
	return MithrilModel{Alpha: 8.2, Beta: 420}
}

// ToleratedTRHD returns the double-sided threshold tolerated at window W.
func (m MithrilModel) ToleratedTRHD(w int) int {
	if w < 1 {
		return 0
	}
	return int(math.Round(m.Alpha*float64(w) + m.Beta))
}

// WindowPerREFs returns the MINT/Mithril window size available when one
// mitigation is performed every refs REF commands: the activations that
// fit in refs*tREFI minus the REF execution time (75 per REF for the
// default DDR5 timings).
func WindowPerREFs(t dram.Timing, refs int) int {
	return int(float64(refs) * float64(t.TREFI-t.TRFC) / float64(t.TRC))
}

// ABOActs is the worst-case number of unmitigated activations an attacker
// lands on a queued row after its ALERT is raised (Phase-D, Figure 10):
// the ABO protocol permits up to 3 activations during the 180ns prologue
// plus one mandatory epilogue activation between consecutive ALERTs, and
// with a queue of Q entries the attacker can force Q-1 earlier entries to
// drain first, collecting 2 activations per drained entry plus a final
// prologue activation: 2(Q-1)+1, which is the paper's QTH+7 worst case for
// the default 4-entry queue.
func ABOActs(queueSize int) int {
	if queueSize < 1 {
		return 0
	}
	return 2*(queueSize-1) + 1
}

// SafeTRHS returns the single-sided threshold MIRZA tolerates with the
// given configuration (Section VI.A): any threshold strictly greater than
// FTH + MINT_TRHS + QTH + ABO_ACTS is safe, so the bound itself is that
// sum plus one.
func SafeTRHS(cfg core.Config, m MINTModel) int {
	return cfg.FTH + m.ToleratedTRHS(cfg.MINTWindow) + cfg.QTH + ABOActs(cfg.QueueSize) + 1
}

// SafeTRHD returns the double-sided threshold MIRZA tolerates
// (Section VI.B): FTH/2 + MINT_TRHD + QTH + ABO_ACTS, plus one.
func SafeTRHD(cfg core.Config, m MINTModel) int {
	return cfg.FTH/2 + m.ToleratedTRHD(cfg.MINTWindow) + cfg.QTH + ABOActs(cfg.QueueSize) + 1
}

// FTHForTRHD returns the largest filtering threshold that keeps MIRZA safe
// at the target double-sided threshold for a given MINT window, inverting
// the SafeTRHD bound. Higher FTH filters more benign activations but
// consumes more of the threshold budget (Table IX).
func FTHForTRHD(trhd, window, queueSize, qth int, m MINTModel) int {
	fth := 2 * (trhd - m.ToleratedTRHD(window) - qth - ABOActs(queueSize) - 1)
	if fth < 0 {
		fth = 0
	}
	return fth
}
