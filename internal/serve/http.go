package serve

import (
	"net/http"
	"net/http/pprof"
	"time"

	"mirza/internal/telemetry"
)

// Timeouts for NewHTTPServer. A bare http.ListenAndServe has none of
// these, so one slow-loris client (or an orphaned socket that never
// finishes its headers) holds a goroutine and a file descriptor forever.
const (
	// httpReadHeaderTimeout bounds how long a connection may dribble its
	// request headers — the slow-loris window.
	httpReadHeaderTimeout = 10 * time.Second

	// httpReadTimeout bounds reading the whole request (headers + body).
	// Job submissions are small JSON documents; a minute is generous.
	httpReadTimeout = time.Minute

	// httpWriteTimeout bounds writing the response. It must comfortably
	// exceed the longest legitimate response: long-polls (?wait=1) and
	// /debug/pprof/profile (30s default) both stream for a while.
	httpWriteTimeout = 15 * time.Minute

	// httpIdleTimeout reaps idle keep-alive connections.
	httpIdleTimeout = 2 * time.Minute

	// httpMaxHeaderBytes bounds header memory per connection.
	httpMaxHeaderBytes = 1 << 20
)

// NewHTTPServer returns an http.Server over handler with the hardening
// every mirza daemon endpoint uses: read-header/read/write/idle timeouts
// and a header size cap, so a misbehaving client cannot wedge the
// process or hold unbounded memory. Callers own listening and shutdown
// (srv.Serve / srv.Shutdown).
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: httpReadHeaderTimeout,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
		MaxHeaderBytes:    httpMaxHeaderBytes,
	}
}

// ObservabilityMux returns a mux serving the live introspection
// endpoints shared by mirza-bench -listen and mirza-serve: /metrics
// (Prometheus text exposition of snap), /manifest (the JSON RunManifest
// built by manifest on each request), and the /debug/pprof suite.
func ObservabilityMux(snap func() telemetry.Snapshot, manifest func() *telemetry.RunManifest) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.PrometheusHandler(snap))
	mux.Handle("/manifest", telemetry.ManifestHandler(manifest))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
