// Package serve is the robustness envelope that turns the experiment
// pipeline into a long-running simulation-as-a-service daemon
// (cmd/mirza-serve). Clients POST experiment jobs as JSON, poll or
// long-poll their progress, and fetch the resulting canonical
// telemetry.RunManifest.
//
// The envelope, not the simulation, is the point of this package:
//
//   - Admission control: a bounded queue with explicit backpressure. When
//     the queue is full a submission is shed with 429 and a Retry-After
//     estimate instead of growing memory without bound.
//   - Deadlines and cancellation: every job runs under a context derived
//     from the server's lifetime plus a per-request deadline; a client
//     that disconnects mid-wait cancels the underlying job once nobody
//     else is waiting on it.
//   - Single-flight coalescing: identical in-flight requests (same
//     content-addressed key) attach to the one running job instead of
//     re-simulating.
//   - Content-addressed result cache: results are cached under
//     ConfigHash(config) + seed with LRU bounds and hit/miss telemetry, so
//     a repeated sweep is served byte-for-byte from cache. Only clean
//     full-fidelity results are cached — a degraded-fidelity retry or a
//     failure is reported, never cached.
//   - Panic isolation: a panicking job becomes a structured error
//     response; the daemon keeps serving.
//   - Graceful drain: on SIGTERM the server stops admitting, finishes (or
//     cancels, once the budget expires) queued and in-flight work, and
//     flushes metrics. /healthz and /readyz report the state honestly:
//     readiness degrades under overload and during drain.
//
// The HTTP endpoints are documented in DESIGN.md §13.
package serve

import (
	"context"
)

// Request is the JSON body of POST /v1/jobs: one experiment job. Zero
// fields take the backend's defaults; all fidelity knobs participate in
// the job's content-addressed identity after Prepare resolves them.
type Request struct {
	// Experiment is the experiment id (see mirza-bench -list). Required.
	Experiment string `json:"experiment"`

	// Seed keys every RNG stream of the run. 0 means the default seed
	// (1), matching the CLIs.
	Seed uint64 `json:"seed,omitempty"`

	// Quick applies the smoke-run preset before the explicit knobs below.
	Quick bool `json:"quick,omitempty"`

	MeasureMS     float64  `json:"measure_ms,omitempty"`
	WarmupMS      float64  `json:"warmup_ms,omitempty"`
	ReplayWindows int      `json:"replay_windows,omitempty"`
	Workloads     []string `json:"workloads,omitempty"`

	// Mitigations restricts the policy grid of experiments that sweep
	// mitigation policies (currently "baselines") to these registered
	// names. Names are validated against the internal/track registry at
	// admission — an unknown name is a 400, not a burned queue slot —
	// and canonicalized, so "PRAC" and "prac" key identically.
	// GET /v1/mitigations lists what is available.
	Mitigations []string `json:"mitigations,omitempty"`

	// Tenants selects the multi-tenant scenario of the intervm experiment
	// (internal/tenant spec grammar, e.g. "xz:6+attack=edge:2"). Validated
	// and canonicalized at admission, so equivalent spellings key
	// identically.
	Tenants string `json:"tenants,omitempty"`

	// Trace lists recorded trace files by reference: server-side paths the
	// tracereplay experiment replays. Every file is parsed at admission —
	// a missing or malformed file is a 400, not a burned queue slot — and
	// the job's identity pins the trace content (sha256), not the path.
	Trace []string `json:"trace,omitempty"`

	// Faults is a fault-injection plan in internal/fault syntax
	// ("seed=7,alertdrop=0.5"); empty injects nothing.
	Faults string `json:"faults,omitempty"`

	// Audit attaches the DDR5 protocol auditor to every simulated channel.
	Audit bool `json:"audit,omitempty"`

	// NoRetry disables the reduced-fidelity retry after a failed attempt.
	NoRetry bool `json:"no_retry,omitempty"`

	// TimeoutMS bounds the job's wall-clock execution. 0 means the
	// server's default; values above the server's maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Prepared is a validated request plus its content-addressed identity.
type Prepared struct {
	Req *Request

	// Config is the canonical flattened run configuration: every resolved
	// fidelity knob as a string, the same shape RunManifest.Config uses.
	// It is the hashed part of the job's identity.
	Config map[string]string

	// Seed is the resolved seed (request seed, or the default).
	Seed uint64

	// Key is the content-addressed cache/coalescing key:
	// telemetry.ConfigHash(Config) + "-" + Seed. Two requests with equal
	// keys are the same deterministic computation.
	Key string

	// Opaque carries backend-private precomputed state from Prepare to
	// Run (e.g. resolved experiments.Options).
	Opaque any
}

// Outcome is the terminal result of running one prepared job.
type Outcome struct {
	// Manifest is the canonical RunManifest JSON (nil when the job
	// produced no usable result). For equal Prepared.Key inputs it is
	// byte-identical across runs, which is what makes the result cache
	// transparent.
	Manifest []byte

	// Degraded marks a result from the reduced-fidelity retry. Degraded
	// outcomes are returned flagged but never cached.
	Degraded bool

	// Canceled marks a job cut short by cancellation or a deadline.
	Canceled bool

	// Panicked marks an Err recovered from a panic; Stack carries the
	// recovered goroutine's stack trace.
	Panicked bool
	Stack    string

	// Err is the terminal error message ("" on success).
	Err string
}

// ok reports whether the outcome is a clean success.
func (o *Outcome) ok() bool { return o.Err == "" && o.Manifest != nil }

// cacheable reports whether the outcome may be stored in the result
// cache: only clean, full-fidelity results qualify.
func (o *Outcome) cacheable() bool { return o.ok() && !o.Degraded && !o.Canceled }

// Backend prepares and executes jobs. Implementations must be safe for
// concurrent use: the server calls Run from Config.Workers goroutines.
type Backend interface {
	// Prepare validates req and resolves its content-addressed identity.
	// Errors are reported to the client as 400 Bad Request.
	Prepare(req *Request) (*Prepared, error)

	// Run executes the job. It must honor ctx (the server cancels it on
	// client abandonment, per-request deadline, and drain) and must
	// report failures in the Outcome rather than panicking — though the
	// server recovers panics anyway.
	Run(ctx context.Context, p *Prepared) *Outcome
}

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
)

// Status is the JSON document describing one job, returned by submission
// and polling endpoints.
type Status struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Experiment string   `json:"experiment"`
	Key        string   `json:"key"`

	// Cached marks a submission served from the result cache without
	// running; Coalesced marks one attached to an identical in-flight job.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`

	// Terminal outcome (meaningful once State == StateDone).
	Degraded  bool   `json:"degraded,omitempty"`
	Canceled  bool   `json:"canceled,omitempty"`
	Panicked  bool   `json:"panicked,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`

	QueueDepth int     `json:"queue_depth"`
	WaitedMS   float64 `json:"waited_ms,omitempty"`
	RanMS      float64 `json:"ran_ms,omitempty"`
}

// ServerState is the daemon lifecycle reported by /healthz.
type ServerState string

const (
	StateServing  ServerState = "serving"
	StateDraining ServerState = "draining"
	StateDrained  ServerState = "drained"
)

// Health is the /healthz JSON document.
type Health struct {
	State      ServerState `json:"state"`
	QueueDepth int         `json:"queue_depth"`
	QueueCap   int         `json:"queue_cap"`
	InFlight   int         `json:"in_flight"`
	CacheLen   int         `json:"cache_entries"`
	UptimeSec  float64     `json:"uptime_seconds"`
}

// errorDoc is the structured JSON error body every non-2xx response uses.
type errorDoc struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
	Panicked   bool   `json:"panicked,omitempty"`
	Canceled   bool   `json:"canceled,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Stack      string `json:"stack,omitempty"`
}
