package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, 1<<20)
	c.Put("a", []byte("aa"))
	c.Put("b", []byte("bb"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity was exceeded")
	}
	// a was just touched, so b is the LRU victim.
	c.Put("c", []byte("cc"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order not respected")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(100, 10)
	c.Put("a", []byte("0123"))
	c.Put("b", []byte("4567"))
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 8/2", c.Bytes(), c.Len())
	}
	// 4 more bytes exceeds the 10-byte bound: oldest entries go.
	c.Put("c", []byte("89ab"))
	if c.Bytes() > 10 {
		t.Errorf("Bytes = %d, exceeds the bound", c.Bytes())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry a should have been evicted for space")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("entry that triggered eviction must itself survive")
	}
}

func TestCacheOversizedEntry(t *testing.T) {
	c := NewCache(10, 4)
	c.Put("big", []byte("012345678")) // bigger than the whole cache
	if got, ok := c.Get("big"); ok {
		// Either policy (reject or keep-alone) is fine as long as the
		// bound holds and the bytes are right.
		if !bytes.Equal(got, []byte("012345678")) {
			t.Errorf("corrupted entry: %q", got)
		}
	}
	if c.Len() > 1 {
		t.Errorf("Len = %d after oversized insert", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(4, 1<<20)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("newer"))
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("newer")) {
		t.Fatalf("Get after update = %q, %v", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != 5 {
		t.Errorf("len=%d bytes=%d after update, want 1/5", c.Len(), c.Bytes())
	}
}

func TestCacheMissAndChurn(t *testing.T) {
	c := NewCache(8, 1<<20)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on an empty cache")
	}
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d after churn, want 8", c.Len())
	}
	for i := 92; i < 100; i++ {
		got, ok := c.Get(fmt.Sprintf("k%d", i))
		if !ok || got[0] != byte(i) {
			t.Errorf("k%d missing or wrong after churn", i)
		}
	}
}
