package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a Server over backend plus an httptest front end.
// Cleanup drains the server (releasing its workers) and closes the
// listener.
func newTestServer(t *testing.T, cfg Config, backend Backend) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Backend = backend
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.DrainBudget == 0 {
		cfg.DrainBudget = 2 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		_ = s.Drain(0)
		ts.Close()
	})
	return s, ts
}

// doJSON performs a request and decodes the JSON response body.
func doJSON(t *testing.T, method, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s %s: non-JSON response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, doc, resp.Header
}

func submit(t *testing.T, ts *httptest.Server, body string, wait bool) (int, map[string]any, http.Header) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	return doJSON(t, http.MethodPost, url, body)
}

// fetchResult returns the raw /result body and response for a job id.
func fetchResult(t *testing.T, ts *httptest.Server, id string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// waitNoGoroutineLeak retries until the goroutine count settles back to
// (roughly) the baseline: HTTP keep-alives and test plumbing wind down
// asynchronously.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitWaitRoundTrip(t *testing.T) {
	fb := newFakeBackend()
	s, ts := newTestServer(t, Config{Workers: 2}, fb)

	code, doc, _ := submit(t, ts, `{"experiment":"alpha","seed":7}`, true)
	if code != http.StatusOK {
		t.Fatalf("submit: code %d doc %v", code, doc)
	}
	if doc["state"] != "done" || doc["cached"] == true {
		t.Fatalf("unexpected status: %v", doc)
	}
	id := doc["id"].(string)
	rcode, body, hdr := fetchResult(t, ts, id)
	if rcode != http.StatusOK {
		t.Fatalf("result: code %d body %s", rcode, body)
	}
	if hdr.Get("X-Mirza-Cache") != "miss" {
		t.Errorf("fresh result should be a cache miss, header %q", hdr.Get("X-Mirza-Cache"))
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if m["seed"] != float64(7) {
		t.Errorf("manifest seed = %v, want 7", m["seed"])
	}

	// Identical resubmission: served from cache, byte-for-byte.
	code2, doc2, _ := submit(t, ts, `{"experiment":"alpha","seed":7}`, true)
	if code2 != http.StatusOK || doc2["cached"] != true {
		t.Fatalf("resubmit not cached: code %d doc %v", code2, doc2)
	}
	_, body2, hdr2 := fetchResult(t, ts, doc2["id"].(string))
	if !bytes.Equal(body, body2) {
		t.Errorf("cached result differs from fresh:\n%s\nvs\n%s", body, body2)
	}
	if hdr2.Get("X-Mirza-Cache") != "hit" {
		t.Errorf("want cache hit header, got %q", hdr2.Get("X-Mirza-Cache"))
	}
	if got := fb.runCount(doc["key"].(string)); got != 1 {
		t.Errorf("backend ran %d times, want 1", got)
	}
	snap := s.Registry().Snapshot()
	if snap.CounterTotal("serve_cache_hits_total") != 1 || snap.CounterTotal("serve_cache_misses_total") != 1 {
		t.Errorf("cache counters off: hits=%d misses=%d",
			snap.CounterTotal("serve_cache_hits_total"), snap.CounterTotal("serve_cache_misses_total"))
	}
	// A different seed is a different computation.
	code3, doc3, _ := submit(t, ts, `{"experiment":"alpha","seed":8}`, true)
	if code3 != http.StatusOK || doc3["cached"] == true {
		t.Fatalf("different seed must not hit the cache: %v", doc3)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, newFakeBackend())
	for _, body := range []string{
		``,                              // empty
		`{`,                             // malformed
		`{"experiment":""}`,             // missing id
		`{"experiment":"invalid-x"}`,    // backend rejects
		`{"experiment":"a","zzz":true}`, // unknown field
	} {
		code, doc, _ := submit(t, ts, body, false)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: code %d (doc %v), want 400", body, code, doc)
		}
		if code == http.StatusBadRequest && doc["error"] == "" {
			t.Errorf("body %q: empty error message", body)
		}
	}
}

func TestBackpressureShedsWith429(t *testing.T) {
	fb := newFakeBackend()
	release := fb.blockOn("blocked")
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2}, fb)

	// First job occupies the worker...
	_, doc1, _ := submit(t, ts, `{"experiment":"blocked"}`, false)
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	// ...two more fill the queue...
	submit(t, ts, `{"experiment":"blocked","seed":2}`, false)
	submit(t, ts, `{"experiment":"blocked","seed":3}`, false)
	// Regression: with sub-second jobs the EWMA wall-clock is tiny; the
	// Retry-After computed from it must still clamp to >= 1 second, or
	// shed clients retry immediately and re-shed in a tight loop.
	s.avgRunMS.Store(1)
	// ...and the fourth is shed with explicit backpressure.
	code, doc, hdr := submit(t, ts, `{"experiment":"blocked","seed":4}`, false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d (%v)", code, doc)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1 even with a sub-second job EWMA", hdr.Get("Retry-After"))
	}
	if ra, ok := doc["retry_after_seconds"].(float64); !ok || ra < 1 {
		t.Errorf("429 doc retry_after_seconds = %v, want >= 1", doc["retry_after_seconds"])
	}
	// Overload is reported honestly.
	rcode, rdoc, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if rcode != http.StatusServiceUnavailable {
		t.Errorf("readyz under overload: code %d doc %v, want 503", rcode, rdoc)
	}
	snap := s.Registry().Snapshot()
	if snap.CounterTotal("serve_shed_total") != 1 {
		t.Errorf("serve_shed_total = %d, want 1", snap.CounterTotal("serve_shed_total"))
	}
	if snap.GaugeTotal("serve_queue_depth") != 2 {
		t.Errorf("serve_queue_depth = %d, want 2", snap.GaugeTotal("serve_queue_depth"))
	}

	close(release)
	// Everything admitted completes; readiness recovers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc1["id"].(string)+"?wait=1", "")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked jobs never completed after release")
		}
	}
	if rcode, _, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", ""); rcode != http.StatusOK {
		t.Errorf("readyz after recovery: %d, want 200", rcode)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	fb := newFakeBackend()
	release := fb.blockOn("shared")
	s, ts := newTestServer(t, Config{Workers: 2}, fb)

	type res struct {
		code int
		doc  map[string]any
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, doc, _ := submit(t, ts, `{"experiment":"shared"}`, true)
			results <- res{code, doc}
		}()
	}
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	// Hold the job until the second submission has demonstrably
	// coalesced onto it, then release.
	deadline := time.Now().Add(2 * time.Second)
	for s.Registry().Snapshot().CounterTotal("serve_coalesced_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second submission never coalesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	var ids, keys []string
	coalesced := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK || r.doc["state"] != "done" {
			t.Fatalf("waiter got %d %v", r.code, r.doc)
		}
		ids = append(ids, r.doc["id"].(string))
		keys = append(keys, r.doc["key"].(string))
		if r.doc["coalesced"] == true {
			coalesced++
		}
	}
	if ids[0] != ids[1] || keys[0] != keys[1] {
		t.Fatalf("coalesced submissions got different jobs: %v %v", ids, keys)
	}
	if got := fb.runCount(keys[0]); got != 1 {
		t.Errorf("backend ran %d times for one key, want 1 (single-flight)", got)
	}
	if coalesced != 1 {
		t.Errorf("%d submissions flagged coalesced, want exactly 1", coalesced)
	}
	snap := s.Registry().Snapshot()
	if snap.CounterTotal("serve_coalesced_total") != 1 {
		t.Errorf("serve_coalesced_total = %d, want 1", snap.CounterTotal("serve_coalesced_total"))
	}
}

func TestClientDisconnectCancelsJob(t *testing.T) {
	fb := newFakeBackend()
	fb.blockOn("lonely") // never released: only cancellation ends it
	s, ts := newTestServer(t, Config{Workers: 1}, fb)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/jobs?wait=1", strings.NewReader(`{"experiment":"lonely"}`))
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	cancel() // client walks away mid-flight
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled request to error")
	}

	// The abandoned job is canceled and recorded as such.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, doc, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j1", "")
		if doc["state"] == "done" {
			if doc["canceled"] != true {
				t.Fatalf("abandoned job not canceled: %v", doc)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned job never finished: %v", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.Registry().Snapshot().CounterTotal("serve_abandoned_total"); n != 1 {
		t.Errorf("serve_abandoned_total = %d, want 1", n)
	}
	// The key was released from single-flight: an identical submission
	// starts a fresh run rather than attaching to the canceled record.
	fb.mu.Lock()
	delete(fb.blocked, "lonely")
	fb.mu.Unlock()
	code, doc, _ := submit(t, ts, `{"experiment":"lonely"}`, true)
	if code != http.StatusOK || doc["state"] != "done" || doc["error"] != nil {
		t.Fatalf("resubmit after abandonment failed: %d %v", code, doc)
	}
	if got := fb.runCount(doc["key"].(string)); got != 2 {
		t.Errorf("backend ran %d times, want 2 (fresh run after abandonment)", got)
	}
}

func TestPanicIsolation(t *testing.T) {
	fb := newFakeBackend()
	s, ts := newTestServer(t, Config{Workers: 1}, fb)

	code, doc, _ := submit(t, ts, `{"experiment":"panic-now"}`, true)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %v", code, doc)
	}
	if doc["state"] != "done" || doc["panicked"] != true || doc["error"] == nil {
		t.Fatalf("panic not surfaced in status: %v", doc)
	}
	rcode, body, _ := fetchResult(t, ts, doc["id"].(string))
	if rcode != http.StatusInternalServerError {
		t.Fatalf("result of panicked job: code %d, want 500", rcode)
	}
	var edoc map[string]any
	if err := json.Unmarshal(body, &edoc); err != nil || edoc["panicked"] != true || edoc["stack"] == nil {
		t.Fatalf("panic error doc incomplete: %s", body)
	}
	// The daemon survived: the next job runs fine on the same worker.
	code, doc, _ = submit(t, ts, `{"experiment":"fine"}`, true)
	if code != http.StatusOK || doc["error"] != nil {
		t.Fatalf("server did not survive the panic: %d %v", code, doc)
	}
	if n := s.Registry().Snapshot().CounterTotal("serve_jobs_total"); n != 2 {
		t.Errorf("serve_jobs_total = %d, want 2", n)
	}
}

func TestDegradedResultIsFlaggedAndNeverCached(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newTestServer(t, Config{Workers: 1}, fb)

	code, doc, _ := submit(t, ts, `{"experiment":"degraded-a"}`, true)
	if code != http.StatusOK || doc["degraded"] != true {
		t.Fatalf("degraded flag missing: %d %v", code, doc)
	}
	_, body, hdr := fetchResult(t, ts, doc["id"].(string))
	if hdr.Get("X-Mirza-Degraded") != "true" {
		t.Errorf("degraded result lacks the header")
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil || m["degraded"] != true {
		t.Fatalf("manifest itself must carry the degraded flag: %s", body)
	}
	// Resubmission must re-run: degraded results are never cached.
	code, doc2, _ := submit(t, ts, `{"experiment":"degraded-a"}`, true)
	if code != http.StatusOK || doc2["cached"] == true {
		t.Fatalf("degraded result was served from cache: %v", doc2)
	}
	if got := fb.runCount(doc["key"].(string)); got != 2 {
		t.Errorf("backend ran %d times, want 2 (no caching of degraded results)", got)
	}
}

func TestFailedJobStructuredError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, newFakeBackend())
	code, doc, _ := submit(t, ts, `{"experiment":"fail-x"}`, true)
	if code != http.StatusOK || doc["state"] != "done" {
		t.Fatalf("submit: %d %v", code, doc)
	}
	if doc["error"] == nil || doc["result_url"] != nil {
		t.Fatalf("failed job status wrong: %v", doc)
	}
	rcode, body, _ := fetchResult(t, ts, doc["id"].(string))
	if rcode != http.StatusInternalServerError || !strings.Contains(string(body), "deliberate") {
		t.Fatalf("failed job result: %d %s", rcode, body)
	}
}

func TestDrainStateMachine(t *testing.T) {
	fb := newFakeBackend()
	release := fb.blockOn("slow")
	s, ts := newTestServer(t, Config{Workers: 1, DrainBudget: 5 * time.Second}, fb)

	submit(t, ts, `{"experiment":"slow"}`, false)
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(2 * time.Second) }()
	// Admission stops immediately...
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _, _ := submit(t, ts, `{"experiment":"late"}`, false)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server still admits work")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/readyz", ""); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	hcode, hdoc, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if hcode != http.StatusOK || hdoc["state"] != "draining" {
		t.Errorf("healthz while draining: %d %v", hcode, hdoc)
	}
	// ...in-flight work finishes within the budget and drain completes.
	close(release)
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("drain never completed")
	}
	if s.State() != StateDrained {
		t.Errorf("state after drain = %s", s.State())
	}
	// Reads still work; a second Drain is an idempotent no-op.
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j1", ""); code != http.StatusOK {
		t.Errorf("status read after drain: %d", code)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestDrainBudgetCancelsStragglers(t *testing.T) {
	fb := newFakeBackend()
	fb.blockOn("stuck") // only cancellation ends it
	s, ts := newTestServer(t, Config{Workers: 1}, fb)
	submit(t, ts, `{"experiment":"stuck"}`, false)
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	if err := s.Drain(50 * time.Millisecond); err != nil {
		t.Fatalf("drain should cancel the straggler and succeed: %v", err)
	}
	_, doc, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j1", "")
	if doc["state"] != "done" || doc["canceled"] != true {
		t.Errorf("straggler not canceled by drain: %v", doc)
	}
}

func TestRetentionEvictsOldRecords(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newTestServer(t, Config{Workers: 1, Retention: 2}, fb)
	for i := 1; i <= 3; i++ {
		code, doc, _ := submit(t, ts, fmt.Sprintf(`{"experiment":"r%d"}`, i), true)
		if code != http.StatusOK {
			t.Fatalf("submit %d: %d %v", i, code, doc)
		}
	}
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j1", ""); code != http.StatusNotFound {
		t.Errorf("oldest record should be evicted: code %d, want 404", code)
	}
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j3", ""); code != http.StatusOK {
		t.Errorf("recent record evicted too early: code %d", code)
	}
}

func TestExplicitCancel(t *testing.T) {
	fb := newFakeBackend()
	fb.blockOn("victim")
	_, ts := newTestServer(t, Config{Workers: 1}, fb)
	_, doc, _ := submit(t, ts, `{"experiment":"victim"}`, false)
	id := doc["id"].(string)
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	if code, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, ""); code != http.StatusAccepted {
		t.Fatalf("cancel: code %d", code)
	}
	code, doc, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"?wait=1", "")
	if code != http.StatusOK || doc["canceled"] != true {
		t.Fatalf("canceled job: %d %v", code, doc)
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2}, newFakeBackend())
	submit(t, ts, `{"experiment":"l1"}`, true)
	submit(t, ts, `{"experiment":"l2"}`, true)
	code, doc, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	jobs := doc["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(jobs))
	}
	if jobs[0].(map[string]any)["id"] != "j1" || jobs[1].(map[string]any)["id"] != "j2" {
		t.Errorf("list not in submission order: %v", jobs)
	}
}

func TestWatchStreamsUntilDone(t *testing.T) {
	fb := newFakeBackend()
	release := fb.blockOn("watched")
	_, ts := newTestServer(t, Config{Workers: 1}, fb)
	_, doc, _ := submit(t, ts, `{"experiment":"watched"}`, false)
	id := doc["id"].(string)
	select {
	case <-fb.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 1 {
		t.Fatalf("watch produced no updates: %q", raw)
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("watch line not JSON: %q", lines[len(lines)-1])
	}
	if last["state"] != "done" {
		t.Errorf("watch did not end with the terminal status: %v", last)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{}, newFakeBackend())
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/watch"} {
		if code, _, _ := doJSON(t, http.MethodGet, ts.URL+path, ""); code != http.StatusNotFound {
			t.Errorf("%s: code %d, want 404", path, code)
		}
	}
}

func TestMitigationsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, newFakeBackend())
	for _, path := range []string{"/v1/mitigations", "/mitigations"} {
		code, doc, _ := doJSON(t, http.MethodGet, ts.URL+path, "")
		if code != http.StatusOK {
			t.Fatalf("%s: code %d, want 200", path, code)
		}
		list, ok := doc["mitigations"].([]any)
		if !ok || len(list) < 10 {
			t.Fatalf("%s: expected a list of registered policies, got %v", path, doc["mitigations"])
		}
		byName := map[string]map[string]any{}
		for _, item := range list {
			m := item.(map[string]any)
			byName[m["name"].(string)] = m
		}
		for _, want := range []string{"mirza", "prac", "graphene", "oracle", "loaded-dice"} {
			if _, ok := byName[want]; !ok {
				t.Errorf("%s: policy %q missing from listing", path, want)
			}
		}
		if doc := byName["prac"]["doc"]; doc == nil || doc == "" {
			t.Errorf("prac has no doc string")
		}
		if params, ok := byName["prac"]["params"].([]any); !ok || len(params) == 0 {
			t.Errorf("prac listing has no params schema")
		}
		if byName["trr"]["insecure"] != true {
			t.Errorf("trr not flagged insecure in listing")
		}
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, newFakeBackend())
	for _, path := range []string{"/v1/experiments", "/experiments"} {
		code, doc, _ := doJSON(t, http.MethodGet, ts.URL+path, "")
		if code != http.StatusOK {
			t.Fatalf("%s: code %d, want 200", path, code)
		}
		list, ok := doc["experiments"].([]any)
		if !ok || len(list) < 15 {
			t.Fatalf("%s: expected the experiment registry, got %v", path, doc["experiments"])
		}
		byID := map[string]map[string]any{}
		for _, item := range list {
			m := item.(map[string]any)
			byID[m["id"].(string)] = m
		}
		for _, want := range []string{"table8", "fig3", "baselines", "intervm", "tracereplay"} {
			if _, ok := byID[want]; !ok {
				t.Errorf("%s: experiment %q missing from listing", path, want)
			}
		}
		if desc := byID["intervm"]["description"]; desc == nil || desc == "" {
			t.Errorf("intervm has no description")
		}
	}
}

func TestSubmitUnknownMitigationIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{}, &ExperimentsBackend{})
	code, doc, _ := submit(t, ts, `{"experiment":"baselines","mitigations":["zilch"]}`, false)
	if code != http.StatusBadRequest {
		t.Fatalf("code %d, want 400 (doc %v)", code, doc)
	}
	msg, _ := doc["error"].(string)
	if !strings.Contains(msg, "unknown mitigation") || !strings.Contains(msg, "zilch") {
		t.Errorf("error %q does not name the unknown mitigation", msg)
	}
}

func TestResultBeforeDoneIs409(t *testing.T) {
	fb := newFakeBackend()
	release := fb.blockOn("pending")
	_, ts := newTestServer(t, Config{Workers: 1}, fb)
	_, doc, _ := submit(t, ts, `{"experiment":"pending"}`, false)
	code, _, _ := fetchResult(t, ts, doc["id"].(string))
	if code != http.StatusConflict {
		t.Errorf("result of unfinished job: code %d, want 409", code)
	}
	close(release)
}
