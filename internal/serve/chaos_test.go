package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaosSoak is the deterministic chaos/soak test of the robustness
// envelope: concurrent clients hammering one daemon with a mix of
// shared-key waits (coalescing + cache), async uniques, mid-flight
// client disconnects, injected panics, failures and degraded results,
// followed by a deliberate queue-saturation burst and a SIGTERM-style
// drain. Afterwards the server must be fully drained with zero leaked
// goroutines, every response accounted for, and cached results
// byte-identical to fresh ones. Run it under -race (make serve-check
// does).
func TestChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()

	fb := newFakeBackend()
	fb.started = nil // high volume; nobody listens
	s, err := New(Config{
		Backend:     fb,
		Workers:     4,
		QueueDepth:  32,
		Retention:   4096, // keep every record: the audit below reads them
		DrainBudget: 5 * time.Second,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const (
		clients          = 8
		perClient        = 25
		disconnectEveryN = 10
	)
	var (
		mu        sync.Mutex
		codes     = map[int]int{}
		anomalies []string
	)
	note := func(format string, args ...any) {
		mu.Lock()
		anomalies = append(anomalies, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Deterministic per-iteration mix, no randomness: every
				// client interleaves shared cacheable work, unique work,
				// failures, panics, degraded runs and disconnects.
				var body string
				wait := false
				disconnect := false
				switch i % 5 {
				case 0: // shared key across all clients: coalesce or cache
					body = fmt.Sprintf(`{"experiment":"soak-shared","seed":%d}`, 1+i/5)
					wait = true
				case 1: // unique fire-and-forget
					body = fmt.Sprintf(`{"experiment":"soak-c%d-i%d"}`, c, i)
				case 2: // injected failure
					body = fmt.Sprintf(`{"experiment":"fail-c%d-i%d"}`, c, i)
					wait = true
				case 3: // injected panic
					body = fmt.Sprintf(`{"experiment":"panic-c%d-i%d"}`, c, i)
					wait = true
				case 4: // degraded result, must never be cached
					body = `{"experiment":"degraded-soak"}`
					wait = true
				}
				if wait && i%disconnectEveryN == disconnectEveryN-1 {
					disconnect = true
				}

				url := ts.URL + "/v1/jobs"
				if wait {
					url += "?wait=1"
				}
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
				if disconnect {
					// Walk away mid-flight: the server must cancel or
					// complete the job without leaking anything.
					go func() {
						time.Sleep(time.Millisecond)
						cancel()
					}()
				}
				resp, err := ts.Client().Do(req)
				if err != nil {
					cancel()
					if !disconnect {
						note("client %d iter %d: %v", c, i, err)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cancel()
				mu.Lock()
				codes[resp.StatusCode]++
				mu.Unlock()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted &&
					resp.StatusCode != http.StatusTooManyRequests {
					note("client %d iter %d: unexpected code %d", c, i, resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()

	// Every shared-key run is finished and cached by now, so this
	// resubmission is a guaranteed cache hit (during the storm itself,
	// duplicates may all coalesce instead — both are fine, but the hit
	// path must be exercised deterministically).
	resp0, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"experiment":"soak-shared","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	hitDoc, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if !strings.Contains(string(hitDoc), `"cached": true`) {
		t.Errorf("post-soak shared resubmission not served from cache: %s", hitDoc)
	}

	// Saturation burst: block the workers, then overfill the queue. At
	// least one submission must be shed with 429 + Retry-After.
	release := fb.blockOn("burst")
	sheds := 0
	for i := 0; i < 4+32+8; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"experiment":"burst","seed":%d}`, i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			sheds++
			// Chaos runs produce sub-second jobs, driving the EWMA wall
			// clock below 1s: the advertised Retry-After must still be a
			// whole second or more, never 0.
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if sheds == 0 {
		t.Error("saturation burst produced no 429s")
	}
	close(release)

	// SIGTERM-style drain: everything admitted must reach a terminal
	// state within the budget.
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.State() != StateDrained {
		t.Fatalf("state after drain = %s", s.State())
	}

	// Audit the records: nothing stuck queued/running, panics isolated,
	// degraded results flagged.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := strings.Count(string(raw), `"state": "queued"`) + strings.Count(string(raw), `"state": "running"`); n != 0 {
		t.Errorf("%d jobs still non-terminal after drain", n)
	}

	snap := s.Registry().Snapshot()
	for _, m := range []string{"serve_submitted_total", "serve_jobs_total", "serve_cache_hits_total", "serve_shed_total"} {
		if snap.CounterTotal(m) == 0 {
			t.Errorf("soak exercised no %s", m)
		}
	}
	if snap.GaugeTotal("serve_queue_depth") != 0 || snap.GaugeTotal("serve_inflight") != 0 {
		t.Errorf("gauges nonzero after drain: queue=%d inflight=%d",
			snap.GaugeTotal("serve_queue_depth"), snap.GaugeTotal("serve_inflight"))
	}
	// The degraded experiment ran with one shared key for the whole soak;
	// every run must have been a real run (never served from cache).
	if n := fb.runCount(degradedKey(t, fb)); n < 2 {
		t.Errorf("degraded-soak ran %d times; looks cached", n)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, a := range anomalies {
		t.Error(a)
	}
	t.Logf("soak status codes: %v", codes)

	ts.Close()
	waitNoGoroutineLeak(t, before)
}

// degradedKey recomputes the content key the soak's degraded submissions
// used.
func degradedKey(t *testing.T, fb *fakeBackend) string {
	t.Helper()
	p, err := fb.Prepare(&Request{Experiment: "degraded-soak"})
	if err != nil {
		t.Fatal(err)
	}
	return p.Key
}

// TestCachedEqualsFresh pins the byte-for-byte cache guarantee under
// concurrency: one fresh run, then many concurrent resubmissions of the
// same request, all of which must return identical bytes.
func TestCachedEqualsFresh(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newTestServer(t, Config{Workers: 4}, fb)

	const body = `{"experiment":"soak-pin","seed":42,"measure_ms":0.25}`
	code, doc, _ := submit(t, ts, body, true)
	if code != http.StatusOK || doc["state"] != "done" {
		t.Fatalf("fresh run: %d %v", code, doc)
	}
	_, fresh, _ := fetchResult(t, ts, doc["id"].(string))

	var wg sync.WaitGroup
	results := make([][]byte, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, doc, _ := submit(t, ts, body, true)
			if code != http.StatusOK {
				t.Errorf("resubmit %d: code %d", i, code)
				return
			}
			_, b, _ := fetchResult(t, ts, doc["id"].(string))
			results[i] = b
		}(i)
	}
	wg.Wait()
	for i, b := range results {
		if !bytes.Equal(b, fresh) {
			t.Errorf("resubmit %d returned different bytes than the fresh run:\n%s\nvs\n%s", i, b, fresh)
		}
	}
	if got := fb.runCount(doc["key"].(string)); got != 1 {
		t.Errorf("backend ran %d times, want exactly 1", got)
	}
}
