package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestExperimentsBackendPrepareValidation(t *testing.T) {
	b := &ExperimentsBackend{}
	cases := []struct {
		name    string
		req     Request
		wantErr string // substring; "" means valid
	}{
		{"missing experiment", Request{}, "required"},
		{"unknown experiment", Request{Experiment: "figNaN"}, "unknown id"},
		{"bad fault plan", Request{Experiment: "fig3", Faults: "zzzz"}, "faults"},
		{"negative measure", Request{Experiment: "fig3", MeasureMS: -1}, ">= 0"},
		{"negative warmup", Request{Experiment: "fig3", WarmupMS: -0.5}, ">= 0"},
		{"one replay window", Request{Experiment: "fig3", ReplayWindows: 1}, "replay_windows"},
		{"negative timeout", Request{Experiment: "fig3", TimeoutMS: -3}, "timeout_ms"},
		{"unknown workload", Request{Experiment: "fig3", Workloads: []string{"quake"}}, "quake"},
		{"unknown mitigation", Request{Experiment: "baselines", Mitigations: []string{"zilch"}}, "unknown mitigation"},
		{"bad tenants spec", Request{Experiment: "intervm", Tenants: "quake:2"}, "unknown workload"},
		{"two attackers", Request{Experiment: "intervm", Tenants: "attack=edge+attack=double"}, "more than one attacker"},
		{"missing trace file", Request{Experiment: "tracereplay", Trace: []string{"/no/such/file.trace"}}, "trace"},
		{"valid tenants", Request{Experiment: "intervm", Tenants: "xz:2+attack=edge:2"}, ""},
		{"valid mitigations", Request{Experiment: "baselines", Mitigations: []string{"PRAC", "graphene"}}, ""},
		{"valid minimal", Request{Experiment: "fig3"}, ""},
		{"valid full", Request{Experiment: "fig3", Quick: true, Seed: 9,
			Workloads: []string{"xz", "mcf"}, MeasureMS: 0.5, ReplayWindows: 2,
			Faults: "seed=7"}, ""},
	}
	for _, tc := range cases {
		p, err := b.Prepare(&tc.req)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
				continue
			}
			if p.Key == "" || p.Seed == 0 || len(p.Config) == 0 {
				t.Errorf("%s: incomplete Prepared: %+v", tc.name, p)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestExperimentsBackendKeyIsConfigSensitive(t *testing.T) {
	b := &ExperimentsBackend{}
	base := Request{Experiment: "fig3", Seed: 1, Workloads: []string{"xz"}}
	p0, err := b.Prepare(&base)
	if err != nil {
		t.Fatal(err)
	}
	// Same request → same key (and a fresh Prepare, so no shared state).
	again := base
	p1, _ := b.Prepare(&again)
	if p0.Key != p1.Key {
		t.Errorf("identical requests got different keys: %s vs %s", p0.Key, p1.Key)
	}
	// Every result-affecting knob must move the key.
	variants := []Request{
		{Experiment: "fig6", Seed: 1, Workloads: []string{"xz"}},
		{Experiment: "fig3", Seed: 2, Workloads: []string{"xz"}},
		{Experiment: "fig3", Seed: 1, Workloads: []string{"mcf"}},
		{Experiment: "fig3", Seed: 1, Workloads: []string{"xz"}, MeasureMS: 0.5},
		{Experiment: "fig3", Seed: 1, Workloads: []string{"xz"}, Faults: "seed=3"},
		{Experiment: "fig3", Seed: 1, Workloads: []string{"xz"}, Audit: true},
		{Experiment: "fig3", Seed: 1, Workloads: []string{"xz"}, Mitigations: []string{"oracle"}},
	}
	for i, v := range variants {
		req := v
		p, err := b.Prepare(&req)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if p.Key == p0.Key {
			t.Errorf("variant %d (%+v) did not change the key", i, v)
		}
	}
	// Wall-clock-only knobs must NOT move the key: they cannot change the
	// deterministic result, and splitting the cache on them would defeat it.
	timed := base
	timed.TimeoutMS = 60000
	p2, _ := b.Prepare(&timed)
	if p2.Key != p0.Key {
		t.Errorf("timeout_ms changed the key: %s vs %s", p2.Key, p0.Key)
	}
	// Mitigation names are canonicalized before hashing: casing must not
	// split the cache.
	upper := base
	upper.Mitigations = []string{"ORACLE"}
	lower := base
	lower.Mitigations = []string{"oracle"}
	pu, _ := b.Prepare(&upper)
	pl, _ := b.Prepare(&lower)
	if pu.Key != pl.Key {
		t.Errorf("mitigation casing changed the key: %s vs %s", pu.Key, pl.Key)
	}
	if pu.Config["mitigations"] != "oracle" {
		t.Errorf("mitigations not canonicalized: %q", pu.Config["mitigations"])
	}
}

// TestExperimentsBackendTraceAndTenantKeys pins the admission semantics
// of the two by-reference inputs: the tenant spec is canonicalized before
// hashing, and a trace job's identity is the trace *content*, so renaming
// or moving a file never splits (or wrongly serves) the cache.
func TestExperimentsBackendTraceAndTenantKeys(t *testing.T) {
	b := &ExperimentsBackend{}

	spelled := Request{Experiment: "intervm", Tenants: "xz + attack=edge : 2"}
	canonical := Request{Experiment: "intervm", Tenants: "xz:1+attack=edge:2"}
	ps, err := b.Prepare(&spelled)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := b.Prepare(&canonical)
	if ps.Key != pc.Key {
		t.Errorf("equivalent tenant spellings keyed differently: %s vs %s", ps.Key, pc.Key)
	}
	if ps.Config["tenants"] != "xz:1+attack=edge:2" {
		t.Errorf("tenants not canonicalized: %q", ps.Config["tenants"])
	}

	dir := t.TempDir()
	a := filepath.Join(dir, "a.trace")
	if err := os.WriteFile(a, []byte("0x0 READ 0\n0x1000 READ 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p0, err := b.Prepare(&Request{Experiment: "tracereplay", Trace: []string{a}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p0.Config["traces"], "a.trace:") {
		t.Errorf("trace config %q lacks the content id", p0.Config["traces"])
	}
	// Same bytes under the same basename elsewhere: same computation.
	other := filepath.Join(dir, "sub")
	if err := os.Mkdir(other, 0o755); err != nil {
		t.Fatal(err)
	}
	copied := filepath.Join(other, "a.trace")
	if err := os.WriteFile(copied, []byte("0x0 READ 0\n0x1000 READ 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p1, _ := b.Prepare(&Request{Experiment: "tracereplay", Trace: []string{copied}})
	if p0.Key != p1.Key {
		t.Errorf("identical trace content keyed differently: %s vs %s", p0.Key, p1.Key)
	}
	// Different content at the same path: different computation.
	if err := os.WriteFile(a, []byte("0x0 READ 0\n0x2000 WRITE 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, _ := b.Prepare(&Request{Experiment: "tracereplay", Trace: []string{a}})
	if p2.Key == p0.Key {
		t.Errorf("changed trace content did not change the key")
	}
}

// TestExperimentsBackendRoundTrip drives a real (tiny) fig3 run through
// the full daemon stack twice and pins the cache guarantee end to end:
// the second submission is a hit and its bytes equal the fresh run's.
func TestExperimentsBackendRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation round trip; skipped in -short")
	}
	backend := &ExperimentsBackend{Parallelism: 2}
	_, ts := newTestServer(t, Config{Workers: 1, DrainBudget: 30 * time.Second}, backend)

	body := `{"experiment":"fig3","seed":1,"quick":true,"workloads":["xz"],"measure_ms":0.2,"warmup_ms":0.1}`
	code, doc, _ := submit(t, ts, body, true)
	if code != http.StatusOK || doc["state"] != "done" || doc["error"] != nil {
		t.Fatalf("fresh run: %d %v", code, doc)
	}
	if doc["degraded"] == true {
		t.Fatal("tiny fig3 run unexpectedly degraded")
	}
	key := doc["key"].(string)
	_, fresh, hdr := fetchResult(t, ts, doc["id"].(string))
	if hdr.Get("X-Mirza-Cache") != "miss" {
		t.Errorf("first run: cache header %q, want miss", hdr.Get("X-Mirza-Cache"))
	}

	var m map[string]any
	if err := json.Unmarshal(fresh, &m); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if m["tool"] != "mirza-serve" || m["seed"] != float64(1) {
		t.Errorf("manifest tool/seed = %v/%v", m["tool"], m["seed"])
	}
	// The served key is derived from the manifest's own config hash.
	if hash, ok := m["config_hash"].(string); !ok || key != fmt.Sprintf("%s-1", hash) {
		t.Errorf("key %q does not match manifest config_hash %v", key, m["config_hash"])
	}
	// Canonical form: wall-clock fields are stripped before serving.
	if m["wall_clock_seconds"] != nil && m["wall_clock_seconds"] != float64(0) {
		t.Errorf("served manifest carries wall clock: %v", m["wall_clock_seconds"])
	}

	code, doc2, _ := submit(t, ts, body, true)
	if code != http.StatusOK || doc2["cached"] != true {
		t.Fatalf("second run not cached: %d %v", code, doc2)
	}
	_, cached, hdr2 := fetchResult(t, ts, doc2["id"].(string))
	if hdr2.Get("X-Mirza-Cache") != "hit" {
		t.Errorf("second run: cache header %q, want hit", hdr2.Get("X-Mirza-Cache"))
	}
	if !bytes.Equal(fresh, cached) {
		t.Errorf("cached bytes differ from fresh run:\nfresh: %s\ncached: %s", fresh, cached)
	}
}
