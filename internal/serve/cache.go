package serve

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU result cache, content-addressed by
// Prepared.Key. Values are the canonical manifest bytes of a clean
// full-fidelity run; because the key hashes the complete resolved
// configuration plus seed, a hit is byte-for-byte what re-running the
// job would produce. The bound is explicit (entries and bytes), so a
// long-lived daemon's memory stays flat however many distinct sweeps
// pass through it.
type Cache struct {
	mu       sync.Mutex
	maxEnt   int
	maxBytes int64
	bytes    int64
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *cacheEntry
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache bounded to maxEntries entries and maxBytes
// total value bytes (<= 0 disables the respective bound; both disabled
// still caches, unbounded — callers should bound at least one).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEnt:   maxEntries,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and marks the entry most recently
// used. The returned slice is shared: callers must treat it as
// read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key (replacing any previous value) and evicts
// least-recently-used entries until both bounds hold again. The cache
// keeps a reference to val: callers must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.over() {
		oldest := c.ll.Back()
		if oldest == nil || oldest == c.ll.Front() {
			// Never evict the entry just touched: a single value larger
			// than maxBytes is still served (once), it just won't keep
			// neighbours.
			break
		}
		e := c.ll.Remove(oldest).(*cacheEntry)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val))
	}
}

// over reports whether either bound is exceeded.
func (c *Cache) over() bool {
	if c.maxEnt > 0 && c.ll.Len() > c.maxEnt {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed size of cached values.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
