package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mirza/internal/telemetry"
)

// fakeBackend is a scriptable backend for server tests. Behaviour is
// directed by the request's experiment name:
//
//	"fail*"     -> terminal error
//	"panic*"    -> panics inside Run
//	"degraded*" -> clean result flagged Degraded
//	anything else -> clean deterministic manifest
//
// A key registered with blockOn blocks in Run until released (or the
// job context is canceled), which is how tests hold jobs in flight to
// exercise saturation, coalescing, disconnects and drain.
type fakeBackend struct {
	mu      sync.Mutex
	runs    map[string]int           // key -> times Run executed
	blocked map[string]chan struct{} // experiment -> release channel

	// started receives each run's experiment name at entry (buffered;
	// nil disables).
	started chan string
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		runs:    make(map[string]int),
		blocked: make(map[string]chan struct{}),
		started: make(chan string, 128),
	}
}

// blockOn makes runs of exp block until the returned channel is closed.
func (f *fakeBackend) blockOn(exp string) chan struct{} {
	ch := make(chan struct{})
	f.mu.Lock()
	f.blocked[exp] = ch
	f.mu.Unlock()
	return ch
}

func (f *fakeBackend) runCount(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs[key]
}

func (f *fakeBackend) Prepare(req *Request) (*Prepared, error) {
	if req.Experiment == "" {
		return nil, errors.New("experiment id is required")
	}
	if strings.HasPrefix(req.Experiment, "invalid") {
		return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	config := map[string]string{
		"exp":     req.Experiment,
		"measure": fmt.Sprintf("%g", req.MeasureMS),
	}
	return &Prepared{
		Req:    req,
		Config: config,
		Seed:   seed,
		Key:    fmt.Sprintf("%s-%d", telemetry.ConfigHash(config), seed),
	}, nil
}

func (f *fakeBackend) Run(ctx context.Context, p *Prepared) *Outcome {
	exp := p.Req.Experiment
	f.mu.Lock()
	f.runs[p.Key]++
	release := f.blocked[exp]
	f.mu.Unlock()
	if f.started != nil {
		select {
		case f.started <- exp:
		default:
		}
	}
	if release != nil {
		select {
		case <-release:
		case <-ctx.Done():
			return &Outcome{Err: ctx.Err().Error(), Canceled: true}
		}
	}
	// A tiny deterministic delay for soak-* jobs keeps the chaos test's
	// workers genuinely concurrent without slowing the suite.
	if strings.HasPrefix(exp, "soak") {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return &Outcome{Err: ctx.Err().Error(), Canceled: true}
		}
	}
	switch {
	case strings.HasPrefix(exp, "panic"):
		panic("deliberate fake-backend panic")
	case strings.HasPrefix(exp, "fail"):
		return &Outcome{Err: "deliberate fake-backend failure"}
	}
	m := telemetry.NewManifest("fake", p.Config)
	m.Seed = p.Seed
	m.Degraded = strings.HasPrefix(exp, "degraded")
	body, err := m.Canonical().JSON()
	if err != nil {
		return &Outcome{Err: err.Error()}
	}
	return &Outcome{Manifest: body, Degraded: m.Degraded}
}
