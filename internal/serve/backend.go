package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mirza/internal/dram"
	"mirza/internal/experiments"
	"mirza/internal/fault"
	"mirza/internal/telemetry"
	"mirza/internal/tenant"
	"mirza/internal/trace"
	"mirza/internal/tracefile"
	"mirza/internal/track"
	_ "mirza/internal/track/policies" // register every mitigation policy
)

// ExperimentsBackend runs submitted jobs through the hardened
// experiments.Suite: panic isolation, per-engine-job deadlines, the
// livelock watchdog, and the reduced-fidelity retry. Every job gets a
// private telemetry registry, so its canonical manifest is a pure
// function of (config, seed, fault plan) — the property the result
// cache's byte-for-byte guarantee rests on.
type ExperimentsBackend struct {
	// StallBudget arms the livelock watchdog on every simulation
	// (0 = disabled).
	StallBudget time.Duration

	// Parallelism is the experiment engine's worker count per job
	// (0 = GOMAXPROCS). With several serve workers, keep the product
	// near the core count.
	Parallelism int

	// EngineTimeout bounds each engine job inside a suite run
	// (0 = none). The whole-request deadline is enforced by the server
	// through the context regardless.
	EngineTimeout time.Duration

	// Logf receives suite progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// preparedExperiment is the backend-private payload of Prepared.Opaque.
type preparedExperiment struct {
	exp  experiments.Experiment
	opts experiments.Options
	plan fault.Plan
}

// Prepare validates req and resolves its full configuration — including
// the daemon's fidelity defaults and presets — so the content-addressed
// key pins every knob that can influence the result. Wall-clock-only
// knobs (timeouts, stall budget, parallelism) are deliberately excluded:
// the engine's determinism contract makes them result-neutral.
func (b *ExperimentsBackend) Prepare(req *Request) (*Prepared, error) {
	if req.Experiment == "" {
		return nil, fmt.Errorf("experiment id is required (try \"fig3\"; mirza-bench -list enumerates all)")
	}
	exp, err := experiments.Lookup(req.Experiment)
	if err != nil {
		return nil, err
	}
	plan, err := fault.Parse(req.Faults)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	if req.MeasureMS < 0 || req.WarmupMS < 0 {
		return nil, fmt.Errorf("measure_ms/warmup_ms must be >= 0")
	}
	if req.ReplayWindows != 0 && req.ReplayWindows < 2 {
		return nil, fmt.Errorf("replay_windows must be 0 (default) or >= 2, got %d", req.ReplayWindows)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be >= 0")
	}

	opts := experiments.DefaultOptions()
	if req.Quick {
		opts = opts.Quick()
	}
	if req.MeasureMS > 0 {
		opts.Measure = dram.Time(req.MeasureMS * float64(dram.Millisecond))
	}
	if req.WarmupMS > 0 {
		opts.Warmup = dram.Time(req.WarmupMS * float64(dram.Millisecond))
	}
	if req.ReplayWindows >= 2 {
		opts.ReplayWindows = req.ReplayWindows
	}
	if len(req.Workloads) > 0 {
		opts.Workloads = nil
		for _, name := range req.Workloads {
			name = strings.TrimSpace(name)
			if _, err := trace.Lookup(name); err != nil {
				return nil, err
			}
			opts.Workloads = append(opts.Workloads, name)
		}
	}
	// Resolve mitigation names through the registry so an unknown policy
	// is refused here (a structured 400) instead of failing inside the
	// job after burning a queue slot. Canonicalizing the names keeps the
	// content-addressed key insensitive to the client's casing.
	var mitigations []string
	for _, name := range req.Mitigations {
		d, err := track.Lookup(name)
		if err != nil {
			return nil, err
		}
		mitigations = append(mitigations, d.Name)
	}
	// Canonicalize the tenant spec so equivalent spellings ("xz:1" and
	// "xz") are the same computation under the content-addressed key.
	tenants := ""
	if req.Tenants != "" {
		spec, err := tenant.Parse(req.Tenants)
		if err != nil {
			return nil, err
		}
		tenants = spec.String()
	}
	// Trace files travel by reference; admission parses each one (strict)
	// so a missing or malformed file is refused here, and the cache key
	// pins the content hash — moving or renaming a file never serves a
	// stale result, and two paths to identical bytes coalesce.
	var traceIDs []string
	for _, path := range req.Trace {
		tr, err := tracefile.Load(path, tracefile.Options{})
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		traceIDs = append(traceIDs, tr.Name+":"+tr.Hash)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opts.Seed = seed
	opts.Faults = plan
	opts.Mitigations = mitigations
	opts.Audit = req.Audit
	opts.Tenants = tenants
	opts.TraceFiles = req.Trace
	opts.StallBudget = b.StallBudget
	opts.Parallelism = b.Parallelism

	// workloads records the resolved set: a request naming all 24
	// explicitly and one naming none are the same computation.
	workloads := opts.Workloads
	if len(workloads) == 0 {
		for _, w := range trace.Workloads() {
			workloads = append(workloads, w.Name)
		}
	}
	config := map[string]string{
		"exp":            exp.ID,
		"measure-ps":     strconv.FormatInt(int64(opts.Measure), 10),
		"warmup-ps":      strconv.FormatInt(int64(opts.Warmup), 10),
		"replay-windows": strconv.Itoa(opts.ReplayWindows),
		"calibration-ps": strconv.FormatInt(int64(opts.CalibrationWindow), 10),
		"cores":          strconv.Itoa(opts.Cores),
		"workloads":      strings.Join(workloads, ","),
		"mitigations":    strings.Join(mitigations, ","),
		"tenants":        tenants,
		"traces":         strings.Join(traceIDs, ","),
		"audit":          strconv.FormatBool(opts.Audit),
		"faults":         plan.String(),
	}
	return &Prepared{
		Req:    req,
		Config: config,
		Seed:   seed,
		Key:    fmt.Sprintf("%s-%d", telemetry.ConfigHash(config), seed),
		Opaque: &preparedExperiment{exp: exp, opts: opts, plan: plan},
	}, nil
}

// Run executes the prepared experiment under the hardened suite and
// renders the canonical manifest. A reduced-fidelity retry is reported
// as Degraded — flagged in both the Outcome and the manifest itself —
// and the server refuses to cache it.
func (b *ExperimentsBackend) Run(ctx context.Context, p *Prepared) *Outcome {
	pe, ok := p.Opaque.(*preparedExperiment)
	if !ok {
		return &Outcome{Err: fmt.Sprintf("serve: Prepared.Opaque is %T, not a prepared experiment", p.Opaque)}
	}
	reg := telemetry.New()
	opts := pe.opts
	opts.Telemetry = reg
	suite := experiments.NewSuite(opts, experiments.SuiteConfig{
		Timeout: b.EngineTimeout,
		NoRetry: p.Req.NoRetry,
		Logf:    b.Logf,
	})
	res := suite.Run(ctx, pe.exp)
	if res.Failed() {
		return &Outcome{
			Err:      res.Err.Error(),
			Canceled: res.Canceled,
			Panicked: res.Panicked,
			Stack:    res.Stack,
		}
	}

	m := telemetry.NewManifest("mirza-serve", p.Config)
	m.Seed = p.Seed
	m.FaultPlan = pe.plan.String()
	m.Degraded = res.Degraded
	m.FillFromSnapshot(reg.Snapshot())
	// Canonical zeroes the wall-clock fields and strips wall-clock
	// metrics: what is served (and cached) is exactly the deterministic
	// core, so a cache hit is byte-identical to a fresh recomputation.
	body, err := m.Canonical().JSON()
	if err != nil {
		return &Outcome{Err: fmt.Sprintf("rendering manifest: %v", err)}
	}
	return &Outcome{Manifest: body, Degraded: res.Degraded}
}
